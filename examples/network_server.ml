(* The network-server scenario from the paper's introduction: an
   event-driven server (acceptor + poller + worker pool) over the kernel
   socket layer, against a load generator holding many concurrent
   connections.  Serving may need file (disk) I/O; the architectures
   differ in whether a disk wait stalls one request or the whole server.

   Run with:  dune exec examples/network_server.exe *)

module S = Sunos_workloads.Net_server

let () =
  let p = S.default_params in
  Format.printf
    "Network server: %d connections x %d requests, 1/%d need a cold disk \
     read@\n\
     model        | served | LWPs | p50 latency | p99 latency | throughput@\n\
     -------------+--------+------+-------------+-------------+-----------@\n"
    p.S.connections p.S.requests_per_conn p.S.disk_every;
  List.iter
    (fun (module M : Sunos_baselines.Model.S) ->
      let r = S.run (module M) ~cpus:1 p in
      let pct q =
        if Sunos_sim.Histogram.count r.S.latency = 0 then nan
        else Sunos_sim.Time.to_ms (Sunos_sim.Histogram.percentile r.S.latency q)
      in
      Format.printf "%-12s | %6d | %4d | %8.2f ms | %8.2f ms | %6.0f rps@\n"
        M.name r.S.served r.S.lwps_created (pct 0.5) (pct 0.99)
        r.S.throughput_rps)
    Sunos_baselines.Model.all;
  Format.printf
    "@\nReading: with M:N (and activations), a disk wait blocks one LWP \
     while other requests@\nproceed; with liblwp the whole server stalls \
     behind every cold read; with 1:1 each@\nrequest pays a kernel thread \
     creation (~2.3ms on the 1991 cost model).@."
