(* thrsan: the deterministic runtime sanitizer.  Each test enables the
   sanitizer programmatically (the @sanitize alias exercises the THRSAN
   env path over the whole tier-1 suite) and disables it on the way out
   so the switches never leak between tests. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Condvar = Sunos_threads.Condvar
module Rwlock = Sunos_threads.Rwlock
module Pool = Sunos_threads.Pool
module Ttypes = Sunos_threads.Ttypes
module Thrsan = Sunos_threads.Thrsan

let with_san f =
  Thrsan.reset ();
  Thrsan.enable ();
  Fun.protect ~finally:(fun () ->
      Thrsan.set_lock_order_mode false;
      Thrsan.disable ())
    f

(* An ABBA deadlock between two threads on two mutexes: the second
   blocked_on closes the waits-for cycle, the sanitizer raises its
   structured report, and the process dies of the uncaught exception
   (status 139) instead of hanging forever. *)
let test_waits_for_deadlock_report () =
  with_san (fun () ->
      let k = Kernel.boot ~cpus:1 () in
      ignore
        (Kernel.spawn k ~name:"abba"
           ~main:
             (Libthread.boot (fun () ->
                  let ma = Mutex.create () and mb = Mutex.create () in
                  let t1 =
                    T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                        Mutex.enter ma;
                        T.yield ();
                        Mutex.enter mb;
                        Mutex.exit mb;
                        Mutex.exit ma)
                  in
                  let t2 =
                    T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                        Mutex.enter mb;
                        T.yield ();
                        Mutex.enter ma;
                        Mutex.exit ma;
                        Mutex.exit mb)
                  in
                  ignore (T.wait ~thread:t1 ());
                  ignore (T.wait ~thread:t2 ()))));
      Kernel.run ~until:(Time.s 5) k;
      Alcotest.(check (option int)) "process died of the deadlock"
        (Some 139) (Kernel.exit_status k 1);
      match Thrsan.last_deadlock () with
      | None -> Alcotest.fail "no deadlock report"
      | Some r ->
          Alcotest.(check int) "two links in the cycle" 2
            (List.length r.Thrsan.dl_links);
          List.iter
            (fun l ->
              Alcotest.(check string) "both links are mutexes" "mutex"
                l.Thrsan.wl_obj_kind;
              Alcotest.(check bool) "each held lock has one holder" true
                (List.length l.Thrsan.wl_holders = 1))
            r.Thrsan.dl_links;
          Alcotest.(check bool) "report names the cycle" true
            (String.length r.Thrsan.dl_text > 0))

(* Lock-order mode catches a 3-lock cycle transitively: a<b and b<c are
   recorded on clean runs, so c-then-a trips the DFS even though a and c
   were never held together before. *)
let test_lock_order_transitive_cycle () =
  with_san (fun () ->
      Thrsan.set_lock_order_mode true;
      let caught = ref false in
      let k = Kernel.boot ~cpus:1 () in
      ignore
        (Kernel.spawn k ~name:"order"
           ~main:
             (Libthread.boot (fun () ->
                  let a = Mutex.create ()
                  and b = Mutex.create ()
                  and c = Mutex.create () in
                  let lock2 x y =
                    Mutex.enter x; Mutex.enter y; Mutex.exit y; Mutex.exit x
                  in
                  lock2 a b;
                  lock2 b c;
                  Mutex.enter c;
                  (try Mutex.enter a
                   with Thrsan.Lock_order_violation _ -> caught := true);
                  Mutex.exit c)));
      Kernel.run k;
      Alcotest.(check bool) "transitive inversion caught" true !caught)

(* Hang diagnosis on the A2 ablation scenario: with pool growth disabled
   the only LWP blocks in a pipe read while a runnable thread (holding
   the write side's work) starves.  The drain hook must name both the
   starved thread and the sleeping LWP. *)
let test_hang_report_auto_grow_off () =
  with_san (fun () ->
      let k = Kernel.boot ~cpus:2 () in
      Thrsan.watch k;
      ignore
        (Kernel.spawn k ~name:"a2"
           ~main:
             (Libthread.boot ~auto_grow:false (fun () ->
                  let rfd, wfd = Uctx.pipe () in
                  ignore (T.create (fun () -> ignore (Uctx.write wfd "go")));
                  ignore (Uctx.read rfd ~len:10))));
      Kernel.run ~until:(Time.s 5) k;
      match Thrsan.last_hang () with
      | None -> Alcotest.fail "no hang report"
      | Some h ->
          Alcotest.(check bool) "a runnable thread is starving" true
            (List.exists
               (fun t -> t.Thrsan.ht_state = "runnable")
               h.Thrsan.hr_threads);
          Alcotest.(check bool) "the LWP sleeps indefinitely in the pipe"
            true
            (List.exists
               (fun l ->
                 l.Thrsan.hl_indefinite
                 && l.Thrsan.hl_wchan = "pipe_read")
               h.Thrsan.hr_lwps);
          Alcotest.(check bool) "report is rendered" true
            (String.length h.Thrsan.hr_text > 0))

(* Hang diagnosis knows what a blocked thread is blocked ON: a condvar
   wait that is never signalled shows up with the object description. *)
let test_hang_report_names_condvar () =
  with_san (fun () ->
      let k = Kernel.boot ~cpus:1 () in
      Thrsan.watch k;
      ignore
        (Kernel.spawn k ~name:"lost-signal"
           ~main:
             (Libthread.boot (fun () ->
                  let m = Mutex.create () and cv = Condvar.create () in
                  let w =
                    T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                        Mutex.enter m;
                        Condvar.wait cv m;
                        Mutex.exit m)
                  in
                  ignore (T.wait ~thread:w ()))));
      Kernel.run ~until:(Time.s 5) k;
      match Thrsan.last_hang () with
      | None -> Alcotest.fail "no hang report"
      | Some h ->
          Alcotest.(check bool) "waiter reported blocked on the condvar"
            true
            (List.exists
               (fun t ->
                 t.Thrsan.ht_state = "blocked"
                 && String.length t.Thrsan.ht_on >= 7
                 && String.sub t.Thrsan.ht_on 0 7 = "condvar")
               h.Thrsan.hr_threads))

(* The bare-park audit: a thread that parks Tblocked without registering
   cancel_wait anywhere (and without a waits-for edge) is invisible to
   wakers and to signal routing; the scheduler flags it. *)
let test_bare_park_flagged () =
  with_san (fun () ->
      let k = Kernel.boot ~cpus:1 () in
      ignore
        (Kernel.spawn k ~name:"bare"
           ~main:
             (Libthread.boot (fun () ->
                  let lost =
                    T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                        ignore
                          (Pool.suspend ~park:(fun tcb ->
                               tcb.Ttypes.tstate <- Ttypes.Tblocked)))
                  in
                  ignore (T.wait ~thread:lost ()))));
      Kernel.run ~until:(Time.s 5) k;
      Alcotest.(check bool) "bare park recorded" true
        (Thrsan.bare_parks () <> []))

(* Zero-cost-off sanity: with tracking off, the hooks record nothing. *)
let test_disabled_records_nothing () =
  Thrsan.reset ();
  Thrsan.disable ();
  let k = Kernel.boot ~cpus:1 () in
  ignore
    (Kernel.spawn k ~name:"quiet"
       ~main:
         (Libthread.boot (fun () ->
              let m = Mutex.create () in
              Mutex.enter m;
              Mutex.exit m)));
  Kernel.run k;
  Alcotest.(check bool) "no reports when off" true
    (Thrsan.last_deadlock () = None
    && Thrsan.last_hang () = None
    && Thrsan.bare_parks () = [])

let () =
  Alcotest.run "thrsan"
    [
      ( "deadlock",
        [
          Alcotest.test_case "ABBA waits-for cycle" `Quick
            test_waits_for_deadlock_report;
        ] );
      ( "lock-order",
        [
          Alcotest.test_case "transitive 3-lock cycle" `Quick
            test_lock_order_transitive_cycle;
        ] );
      ( "hang",
        [
          Alcotest.test_case "A2 pool starvation" `Quick
            test_hang_report_auto_grow_off;
          Alcotest.test_case "names the condvar" `Quick
            test_hang_report_names_condvar;
        ] );
      ( "audit",
        [
          Alcotest.test_case "bare park" `Quick test_bare_park_flagged;
          Alcotest.test_case "off records nothing" `Quick
            test_disabled_records_nothing;
        ] );
    ]
