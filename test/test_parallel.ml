(* Parallel-engine determinism: the simulated outcome must be a pure
   function of the seed — never of how many real domains execute it.

   Each workload runs with [work_spin] > 0 so every compute phase
   carries real busy-work offloaded to the worker pool; across
   domains in {1, 2, 4} the trace tag digest, the dispatch/preemption
   counters AND the per-LWP /proc utime/stime tables must be
   bit-identical.  A chaos (network-heavy) run is held to the same
   standard at domains = 2: fault injection draws from its own
   deterministic stream, so it composes with the pool like everything
   else.  Finally the pool and shard counters themselves are sanity
   checked: every submitted task completed, and per-shard fired counts
   add up to the queue total. *)

module Kernel = Sunos_kernel.Kernel
module Procfs = Sunos_kernel.Procfs
module Machine = Sunos_hw.Machine
module Eventq = Sunos_sim.Eventq
module Parexec = Sunos_sim.Parexec
module Faultgen = Sunos_sim.Faultgen
module S = Sunos_workloads.Net_server
module Db = Sunos_workloads.Database
module KV = Sunos_workloads.Kv_store

let domain_counts = [ 1; 2; 4 ]

type probe = {
  tag_digest : string;
  tag_count : int;
  dispatches : int;
  preemptions : int;
  lwp_times : string;  (* rendered per-LWP /proc utime/stime table *)
}

let probe_of_kernel k =
  let tags =
    List.map (fun r -> r.Sunos_sim.Tracebuf.tag) (Kernel.trace_records k)
  in
  let lwp_times =
    Procfs.snapshot k
    |> List.concat_map (fun pi ->
           List.map
             (fun li ->
               Printf.sprintf "pid%d/lwp%d u=%Ld s=%Ld" pi.Procfs.pi_pid
                 li.Procfs.li_lwpid li.Procfs.li_utime li.Procfs.li_stime)
             pi.Procfs.pi_lwps)
    |> String.concat "\n"
  in
  {
    tag_digest = Digest.to_hex (Digest.string (String.concat "," tags));
    tag_count = List.length tags;
    dispatches = Kernel.dispatch_count k;
    preemptions = Kernel.preemption_count k;
    lwp_times;
  }

let check name (a : probe) (b : probe) =
  Alcotest.(check string) (name ^ " trace tag digest") a.tag_digest b.tag_digest;
  Alcotest.(check int) (name ^ " trace tag count") a.tag_count b.tag_count;
  Alcotest.(check int) (name ^ " dispatches") a.dispatches b.dispatches;
  Alcotest.(check int) (name ^ " preemptions") a.preemptions b.preemptions;
  Alcotest.(check string) (name ^ " per-LWP utime/stime") a.lwp_times b.lwp_times

let across_domains name run =
  match List.map (fun d -> (d, run ~domains:d)) domain_counts with
  | [] | [ _ ] -> assert false
  | (_, base) :: rest ->
      List.iter
        (fun (d, p) -> check (Printf.sprintf "%s domains=%d" name d) base p)
        rest

(* --- workload probes (all with real offloaded work) ------------------- *)

let net_probe ~domains =
  let p =
    {
      S.default_params with
      connections = 12;
      requests_per_conn = 2;
      think_time_us = 20_000;
      connect_stagger_us = 500;
      disk_every = 8;
      workers = 4;
      concurrency = 4;
      client_concurrency = 12;
      listen_backlog = 32;
      work_spin = 500;
    }
  in
  let out = ref None in
  ignore
    (S.run
       (module Sunos_baselines.Mt)
       ~cpus:2 ~domains ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let db_probe ~domains =
  let p =
    {
      Db.default_params with
      processes = 2;
      threads_per_process = 4;
      records = 16;
      transactions_per_thread = 10;
      work_spin = 500;
    }
  in
  let out = ref None in
  ignore
    (Db.run ~cpus:2 ~domains ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let kv_probe ~domains =
  let p =
    {
      KV.default_params with
      server_procs = 2;
      shards = 4;
      clients = 6;
      requests_per_client = 4;
      workers_per_server = 3;
      think_time_us = 500;
      work_spin = 500;
    }
  in
  let out = ref None in
  ignore
    (KV.run ~cpus:2 ~domains ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let test_net () = across_domains "net-server" net_probe
let test_db () = across_domains "database" db_probe
let test_kv () = across_domains "kv-store" kv_probe

(* Chaos composes with the pool: network-heavy fault injection on the
   hardened server, domains = 2 vs 1, bit-identical. *)
let chaos_probe ~domains =
  let p =
    {
      S.default_params with
      connections = 10;
      requests_per_conn = 3;
      think_time_us = 1_000;
      connect_stagger_us = 500;
      workers = 4;
      concurrency = 4;
      client_concurrency = 10;
      listen_backlog = 8;
      hardened = true;
      connect_retry_limit = 12;
      retry_base_us = 300;
      request_deadline_us = 250_000;
      shed_queue_limit = 6;
      work_spin = 500;
    }
  in
  let out = ref None in
  ignore
    (S.run
       (module Sunos_baselines.Mt)
       ~cpus:2 ~domains ~chaos:Faultgen.network_heavy ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let test_chaos () =
  check "net-server chaos network-heavy" (chaos_probe ~domains:1)
    (chaos_probe ~domains:2)

(* --- engine counters --------------------------------------------------- *)

(* At quiescence every offloaded task has been retired (awaited, stolen,
   or drained by its worker) and the shard fired counts partition the
   queue total.  Cross-shard traffic must exist on a 2-CPU box: wakeups
   and dispatches land on the other CPU's shard. *)
let test_counters () =
  let shards = ref [] and lanes = ref [||] and fired = ref 0 in
  let p =
    { S.default_params with connections = 8; work_spin = 500; concurrency = 4 }
  in
  ignore
    (S.run
       (module Sunos_baselines.Mt)
       ~cpus:2 ~domains:2
       ~debrief:(fun k ->
         shards := Procfs.shards k;
         lanes := Procfs.pool_lanes k;
         fired := Eventq.events_fired (Kernel.machine k).Machine.eventq)
       p);
  Alcotest.(check int) "shards = cpus + 1" 3 (List.length !shards);
  let by_shard =
    List.fold_left (fun acc sh -> acc + sh.Procfs.sh_fired) 0 !shards
  in
  Alcotest.(check int) "shard fired counts partition the total" !fired by_shard;
  Alcotest.(check bool) "cross-shard traffic observed" true
    (List.exists (fun sh -> sh.Procfs.sh_cross_in > 0) !shards);
  Alcotest.(check int) "one lane at domains=2" 1 (Array.length !lanes);
  let l = !lanes.(0) in
  Alcotest.(check bool) "offloads were submitted" true (l.Parexec.ls_submitted > 0);
  Alcotest.(check int) "every submitted task completed" l.Parexec.ls_submitted
    l.Parexec.ls_completed

let () =
  Alcotest.run "parallel"
    [
      ( "domains",
        [
          Alcotest.test_case "net-server bit-identical x domains" `Quick
            test_net;
          Alcotest.test_case "database bit-identical x domains" `Quick test_db;
          Alcotest.test_case "kv-store bit-identical x domains" `Quick test_kv;
          Alcotest.test_case "chaos network-heavy domains=2" `Quick test_chaos;
        ] );
      ( "engine",
        [ Alcotest.test_case "shard + pool counters" `Quick test_counters ] );
    ]
