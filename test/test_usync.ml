(* USYNC_PROCESS: process-shared synchronization.  Cross-fork mutual
   exclusion and wakeups through shared anonymous segments, the
   MAP_PRIVATE/MAP_SHARED fork semantics of anonymous mappings, robust
   (OWNERDEAD) lock recovery when a holder dies — cleanly or by chaos
   proc-kill — and the observability hooks: /proc wait channels and
   sanitizer objects named by their shared placement. *)

module Time = Sunos_sim.Time
module Faultgen = Sunos_sim.Faultgen
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Procfs = Sunos_kernel.Procfs
module Signo = Sunos_kernel.Signo
module Sysdefs = Sunos_kernel.Sysdefs
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Condvar = Sunos_threads.Condvar
module Rwlock = Sunos_threads.Rwlock
module Syncvar = Sunos_threads.Syncvar
module Semaphore = Sunos_threads.Semaphore
module Thrsan = Sunos_threads.Thrsan

(* ------------------- anon mapping semantics at fork ------------------- *)

(* The observable difference between MAP_SHARED and MAP_PRIVATE anon
   segments is whether a kwait/kwake channel crosses the fork: a private
   mapping is snapshot-cloned into the child, so parent and child wait
   on different channels. *)
let wake_crosses ~shared =
  let k = Kernel.boot ~cpus:2 () in
  let woken = ref false and timed_out = ref false in
  ignore
    (Kernel.spawn k ~name:"wk" ~main:(fun () ->
         let seg = Uctx.mmap_anon ~size:4096 ~shared in
         ignore
           (Uctx.fork1 ~child_main:(fun () ->
                match Uctx.kwait ~seg ~offset:0 ~timeout:(Time.ms 50) () with
                | `Woken -> woken := true
                | `Timeout -> timed_out := true));
         Uctx.sleep (Time.ms 10);
         ignore (Uctx.kwake ~seg ~offset:0 ~count:1);
         ignore (Uctx.waitpid ())));
  Kernel.run k;
  (!woken, !timed_out)

let test_shared_anon_aliases_across_fork () =
  let woken, timed_out = wake_crosses ~shared:true in
  Alcotest.(check (pair bool bool))
    "shared: parent's wake reaches the child" (true, false)
    (woken, timed_out)

let test_private_anon_not_aliased_across_fork () =
  let woken, timed_out = wake_crosses ~shared:false in
  Alcotest.(check (pair bool bool))
    "private: the child waits on its own clone and times out" (false, true)
    (woken, timed_out)

(* ---------------------- cross-fork exclusion -------------------------- *)

let test_mutex_excludes_across_fork () =
  let k = Kernel.boot ~cpus:2 () in
  let depth = ref 0 and overlap = ref false and entries = ref 0 in
  let critical m () =
    for _ = 1 to 10 do
      Mutex.enter m;
      incr depth;
      if !depth > 1 then overlap := true;
      incr entries;
      Uctx.charge_us 40;
      decr depth;
      Mutex.exit m
    done
  in
  ignore
    (Kernel.spawn k ~name:"mx"
       ~main:
         (Libthread.boot (fun () ->
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
              ignore
                (Uctx.fork1 ~child_main:(Libthread.boot (critical m)));
              critical m ();
              ignore (Uctx.waitpid ()))));
  Kernel.run k;
  Alcotest.(check bool) "no overlapping critical sections" false !overlap;
  Alcotest.(check int) "both processes got through" 20 !entries

let test_rwlock_across_fork () =
  let k = Kernel.boot ~cpus:2 () in
  let readers = ref 0
  and max_readers = ref 0
  and writers = ref 0
  and overlap = ref false in
  let work l () =
    for i = 1 to 12 do
      if i mod 4 = 0 then begin
        Rwlock.enter l Rwlock.Writer;
        incr writers;
        if !writers > 1 || !readers > 0 then overlap := true;
        Uctx.charge_us 50;
        decr writers;
        Rwlock.exit l
      end
      else begin
        Rwlock.enter l Rwlock.Reader;
        incr readers;
        if !writers > 0 then overlap := true;
        (* linger so the other process's readers pile in *)
        Uctx.sleep (Time.ms 1);
        if !readers > !max_readers then max_readers := !readers;
        decr readers;
        Rwlock.exit l
      end
    done
  in
  ignore
    (Kernel.spawn k ~name:"rw"
       ~main:
         (Libthread.boot (fun () ->
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let l = Rwlock.create_shared (Syncvar.place seg ~offset:0) in
              ignore (Uctx.fork1 ~child_main:(Libthread.boot (work l)));
              work l ();
              ignore (Uctx.waitpid ()))));
  Kernel.run k;
  Alcotest.(check bool) "writers excluded everyone" false !overlap;
  Alcotest.(check bool) "readers from both processes overlapped" true
    (!max_readers >= 2)

let test_condvar_wakes_across_fork () =
  let k = Kernel.boot ~cpus:2 () in
  let observed = ref false in
  let flag = ref false in
  ignore
    (Kernel.spawn k ~name:"cv"
       ~main:
         (Libthread.boot (fun () ->
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
              let cv = Condvar.create_shared (Syncvar.place seg ~offset:64) in
              ignore
                (Uctx.fork1
                   ~child_main:
                     (Libthread.boot (fun () ->
                          Mutex.enter m;
                          while not !flag do
                            Condvar.wait cv m
                          done;
                          observed := true;
                          Mutex.exit m)));
              Uctx.sleep (Time.ms 5);
              Mutex.enter m;
              flag := true;
              Condvar.signal cv;
              Mutex.exit m;
              ignore (Uctx.waitpid ()))));
  Kernel.run k;
  Alcotest.(check bool) "child saw the flag via the shared condvar" true
    !observed

(* ------------------------- robust recovery ---------------------------- *)

let test_robust_mutex_owner_death () =
  let k = Kernel.boot ~cpus:2 () in
  let flagged = ref false and repaired = ref false and reusable = ref false in
  ignore
    (Kernel.spawn k ~name:"rb"
       ~main:
         (Libthread.boot (fun () ->
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let m =
                Mutex.create_shared ~robust:true (Syncvar.place seg ~offset:0)
              in
              let pid =
                (* the child dies holding the lock *)
                Uctx.fork1
                  ~child_main:(Libthread.boot (fun () -> Mutex.enter m))
              in
              ignore (Uctx.waitpid ~pid ());
              flagged := Mutex.owner_dead m;
              (* an un-repaired robust lock refuses try_enter *)
              Alcotest.(check bool) "try_enter refuses OWNERDEAD" false
                (Mutex.try_enter m);
              (match Mutex.enter_robust m with
              | `Owner_dead ->
                  repaired := true;
                  Mutex.set_consistent m
              | `Locked -> ());
              Mutex.exit m;
              (* consistent again: plain enter works *)
              Mutex.enter m;
              reusable := true;
              Mutex.exit m)));
  Kernel.run k;
  Alcotest.(check bool) "OWNERDEAD flagged after the owner died" true
    !flagged;
  Alcotest.(check bool) "next acquirer got `Owner_dead to repair" true
    !repaired;
  Alcotest.(check bool) "lock usable after set_consistent" true !reusable

let test_robust_rwlock_writer_death () =
  let k = Kernel.boot ~cpus:2 () in
  let repaired = ref false and reusable = ref false in
  ignore
    (Kernel.spawn k ~name:"rbw"
       ~main:
         (Libthread.boot (fun () ->
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let l =
                Rwlock.create_shared ~robust:true
                  (Syncvar.place seg ~offset:0)
              in
              let pid =
                Uctx.fork1
                  ~child_main:
                    (Libthread.boot (fun () ->
                         Rwlock.enter l Rwlock.Writer))
              in
              ignore (Uctx.waitpid ~pid ());
              (* asking for the read side still admits us as the writer:
                 repair needs exclusion *)
              (match Rwlock.enter_robust l Rwlock.Reader with
              | `Owner_dead ->
                  repaired := Rwlock.has_writer l;
                  Rwlock.set_consistent l;
                  Rwlock.downgrade l;
                  Alcotest.(check int) "a reader after downgrade" 1
                    (Rwlock.readers l)
              | `Locked -> ());
              Rwlock.exit l;
              Rwlock.enter l Rwlock.Writer;
              reusable := true;
              Rwlock.exit l)));
  Kernel.run k;
  Alcotest.(check bool) "reader admitted as writer to repair" true !repaired;
  Alcotest.(check bool) "rwlock usable after set_consistent" true !reusable

let test_plain_enter_raises_owner_dead () =
  let k = Kernel.boot ~cpus:2 () in
  let raised = ref false in
  ignore
    (Kernel.spawn k ~name:"re"
       ~main:
         (Libthread.boot (fun () ->
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let m =
                Mutex.create_shared ~robust:true (Syncvar.place seg ~offset:0)
              in
              let pid =
                Uctx.fork1
                  ~child_main:(Libthread.boot (fun () -> Mutex.enter m))
              in
              ignore (Uctx.waitpid ~pid ());
              (match Mutex.enter m with
              | () -> ()
              | exception Mutex.Owner_dead -> raised := true);
              (* the exception path released the lock un-repaired; a
                 robust acquirer can still pick it up *)
              (match Mutex.enter_robust m with
              | `Owner_dead -> Mutex.set_consistent m
              | `Locked -> ());
              Mutex.exit m)));
  Kernel.run k;
  Alcotest.(check bool) "plain enter raised Owner_dead" true !raised

(* A chaos proc-kill must land while the child holds the lock: the
   kernel sweeps the robust registry at proc_exit and leaves it
   OWNERDEAD.  The child's critical section loops over [touch] syscalls
   so in-section rolls vastly outnumber the few the thread library makes
   at startup; the rate is tuned so the deterministic roll sequence
   gets past those and kills mid-section (the simulation is seeded, so
   this is a fixed outcome, asserted below). *)
let test_chaos_prockill_mid_critical_section () =
  let profile =
    { Faultgen.off with Faultgen.label = "kill-child"; proc_kill = 0.05 }
  in
  let k = Kernel.boot ~cpus:2 ~chaos:profile () in
  let status = ref (-1) and repaired = ref false in
  ignore
    (Kernel.spawn k ~name:"ck"
       ~main:
         (Libthread.boot (fun () ->
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let m =
                Mutex.create_shared ~robust:true (Syncvar.place seg ~offset:0)
              in
              let pid =
                Uctx.fork1
                  ~child_main:
                    (Libthread.boot (fun () ->
                         Mutex.enter m;
                         for _ = 1 to 200 do
                           Uctx.touch seg ~offset:0
                         done;
                         Mutex.exit m))
              in
              let _, st = Uctx.waitpid ~pid () in
              status := st;
              (match Mutex.enter_robust m with
              | `Owner_dead ->
                  repaired := true;
                  Mutex.set_consistent m
              | `Locked -> ());
              Mutex.exit m)));
  Kernel.run k;
  Alcotest.(check int) "child killed by chaos (137)" 137 !status;
  Alcotest.(check bool) "lock repaired after the kill" true !repaired;
  Alcotest.(check bool) "proc-kill site counted" true
    (List.mem_assoc "proc-kill" (Kernel.chaos_counts k))

(* ------------------------- observability ------------------------------ *)

(* While a child blocks on a shared mutex, /proc names the wait channel
   (segment + offset) and lists the cross-process waiter. *)
let test_procfs_wait_channels () =
  let k = Kernel.boot ~cpus:2 () in
  ignore
    (Kernel.spawn k ~name:"wc"
       ~main:
         (Libthread.boot (fun () ->
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
              Mutex.enter m;
              ignore
                (Uctx.fork1
                   ~child_main:
                     (Libthread.boot (fun () ->
                          Mutex.enter m;
                          Mutex.exit m)));
              Uctx.sleep (Time.ms 50);
              Mutex.exit m;
              ignore (Uctx.waitpid ()))));
  (* stop mid-run while the child is parked on the channel *)
  Kernel.run ~until:(Time.ms 20) k;
  let wcs = Procfs.wait_channels k in
  let ours =
    List.find_opt
      (fun wc -> wc.Procfs.wc_seg_name = "[anon]" && wc.Procfs.wc_offset = 0)
      wcs
  in
  (match ours with
  | None -> Alcotest.fail "no wait channel for the shared mutex"
  | Some wc ->
      Alcotest.(check bool) "a waiter from another process listed" true
        (List.exists (fun (pid, _) -> pid <> 1) wc.Procfs.wc_waiters));
  let txt = Format.asprintf "%a" Procfs.pp_wait_channels k in
  Alcotest.(check bool) "pp_wait_channels names the channel" true
    (String.length txt > 0);
  (* and the run completes once resumed *)
  Kernel.run k;
  Alcotest.(check (list Alcotest.reject)) "no channel left behind" []
    (Procfs.wait_channels k)

(* Shared locks get their sanitizer identity from their placement, so
   thrsan reports name them "segment+offset" — and both processes land
   on the same graph node, letting a cross-process lock-order inversion
   close the cycle. *)
let test_thrsan_names_shared_objects () =
  Thrsan.reset ();
  Thrsan.enable ();
  Thrsan.set_lock_order_mode true;
  Fun.protect
    ~finally:(fun () ->
      Thrsan.set_lock_order_mode false;
      Thrsan.disable ())
    (fun () ->
      let k = Kernel.boot ~cpus:2 () in
      let names = ref None in
      ignore
        (Kernel.spawn k ~name:"abba"
           ~main:
             (Libthread.boot (fun () ->
                  let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
                  let m1 =
                    Mutex.create_shared (Syncvar.place seg ~offset:0)
                  in
                  let m2 =
                    Mutex.create_shared (Syncvar.place seg ~offset:64)
                  in
                  (* record the order m1 -> m2 in this process *)
                  Mutex.enter m1;
                  Mutex.enter m2;
                  Mutex.exit m2;
                  Mutex.exit m1;
                  (* the child tries the inverse order *)
                  ignore
                    (Uctx.fork1
                       ~child_main:
                         (Libthread.boot (fun () ->
                              Mutex.enter m2;
                              (match Mutex.enter m1 with
                              | () -> Mutex.exit m1
                              | exception Thrsan.Lock_order_violation
                                  (held, wanted) ->
                                  names := Some (held, wanted));
                              Mutex.exit m2)));
                  ignore (Uctx.waitpid ()))));
      Kernel.run k;
      match !names with
      | None -> Alcotest.fail "no cross-process lock-order violation"
      | Some (held, wanted) ->
          Alcotest.(check string) "held named by placement" "[anon]+64" held;
          Alcotest.(check string) "wanted named by placement" "[anon]+0"
            wanted)

(* ------------- thread-signal delivery in shared-sync loops ------------ *)

(* The missing-checkpoint class of BUG 13/14, shared-mutex edition: a
   thread cycling on a process-shared mutex must pass a thread-level
   delivery point on every acquisition, so a pending thread_kill
   reaches its handler mid-loop.  Kernel-level kwait wakeups keep
   tstate Trunning — thread_kill can only queue the signal — so
   enter_shared's own checkpoint is the only delivery point the loop
   has. *)
let test_shared_mutex_loop_delivers_thread_kill () =
  let k = Kernel.boot ~cpus:2 () in
  let handled = ref false and handled_mid_loop = ref false in
  ignore
    (Kernel.spawn k ~name:"mxsig"
       ~main:
         (Libthread.boot (fun () ->
              ignore
                (T.sigaction Signo.sigusr1
                   (Sysdefs.Sig_handler (fun _ -> handled := true)));
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
              let started = Semaphore.create () in
              let victim =
                T.create
                  ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
                  (fun () ->
                    Semaphore.v started;
                    for _ = 1 to 100 do
                      Mutex.enter m;
                      Uctx.charge_us 20;
                      Mutex.exit m
                    done;
                    (* recorded by the victim itself, before any
                       delivery point that thread exit might add *)
                    handled_mid_loop := !handled)
              in
              Semaphore.p started;
              Uctx.sleep (Time.us 200);
              T.kill victim Signo.sigusr1;
              ignore (T.wait ~thread:victim ()))));
  Kernel.run k;
  Alcotest.(check bool) "thread_kill delivered inside the lock loop" true
    !handled_mid_loop

(* Same class, bare syncvar edition: a thread polling Syncvar.wait with
   short kwait timeouts never leaves Trunning, so without a checkpoint
   at wait entry a pending thread_kill starves for the whole loop. *)
let test_syncvar_wait_loop_delivers_thread_kill () =
  let k = Kernel.boot ~cpus:2 () in
  let handled = ref false and handled_mid_loop = ref false in
  ignore
    (Kernel.spawn k ~name:"svsig"
       ~main:
         (Libthread.boot (fun () ->
              ignore
                (T.sigaction Signo.sigusr1
                   (Sysdefs.Sig_handler (fun _ -> handled := true)));
              let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
              let pl = Syncvar.place seg ~offset:0 in
              let started = Semaphore.create () in
              let victim =
                T.create
                  ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
                  (fun () ->
                    Semaphore.v started;
                    let rounds = ref 0 in
                    while (not !handled) && !rounds < 200 do
                      incr rounds;
                      ignore
                        (Syncvar.wait pl ~timeout:(Time.us 100)
                           ~expect:(fun () -> true)
                           ())
                    done;
                    handled_mid_loop := !handled)
              in
              Semaphore.p started;
              Uctx.sleep (Time.us 300);
              T.kill victim Signo.sigusr1;
              ignore (T.wait ~thread:victim ()))));
  Kernel.run k;
  Alcotest.(check bool) "thread_kill delivered inside the kwait loop" true
    !handled_mid_loop

let () =
  Alcotest.run "usync"
    [
      ( "anon-fork",
        [
          Alcotest.test_case "shared anon aliases across fork" `Quick
            test_shared_anon_aliases_across_fork;
          Alcotest.test_case "private anon cloned at fork" `Quick
            test_private_anon_not_aliased_across_fork;
        ] );
      ( "cross-process",
        [
          Alcotest.test_case "mutex excludes across fork" `Quick
            test_mutex_excludes_across_fork;
          Alcotest.test_case "rwlock shares readers across fork" `Quick
            test_rwlock_across_fork;
          Alcotest.test_case "condvar wakes across fork" `Quick
            test_condvar_wakes_across_fork;
        ] );
      ( "robust",
        [
          Alcotest.test_case "mutex owner death -> repair" `Quick
            test_robust_mutex_owner_death;
          Alcotest.test_case "rwlock writer death -> repair" `Quick
            test_robust_rwlock_writer_death;
          Alcotest.test_case "plain enter raises Owner_dead" `Quick
            test_plain_enter_raises_owner_dead;
          Alcotest.test_case "chaos proc-kill mid critical section" `Quick
            test_chaos_prockill_mid_critical_section;
        ] );
      ( "observability",
        [
          Alcotest.test_case "/proc wait channels" `Quick
            test_procfs_wait_channels;
          Alcotest.test_case "thrsan names shared objects" `Quick
            test_thrsan_names_shared_objects;
        ] );
      ( "signal-delivery",
        [
          Alcotest.test_case "shared-mutex loop delivers thread_kill" `Quick
            test_shared_mutex_loop_delivers_thread_kill;
          Alcotest.test_case "syncvar-wait loop delivers thread_kill" `Quick
            test_syncvar_wait_loop_delivers_thread_kill;
        ] );
    ]
