(* The kernel socket layer: connection admission, stream semantics
   (EOF, reset, backpressure), poll integration, trace and /proc
   visibility.  All tests drive sockets through the syscall layer from
   plain LWPs — no threads library — so failures localize to the
   kernel. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Errno = Sunos_kernel.Errno
module Sysdefs = Sunos_kernel.Sysdefs
module Procfs = Sunos_kernel.Procfs

let pf fd = { Sysdefs.pfd = fd; want_in = true; want_out = false }

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

(* One listener with backlog 2 that never accepts; five clients connect
   simultaneously.  Admission happens at SYN arrival, so exactly the
   backlog is admitted and the rest are refused — and the split is the
   same on every run. *)
let overflow_run () =
  let k = Kernel.boot () in
  let admitted = ref 0 and refused = ref 0 in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:2 in
         Uctx.sleep (Time.ms 50);
         Uctx.close lfd));
  for i = 1 to 5 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "c%d" i) ~main:(fun () ->
           Uctx.sleep (Time.ms 1);
           match Uctx.connect "svc" with
           | fd ->
               incr admitted;
               Uctx.sleep (Time.ms 10);
               Uctx.close fd
           | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
               incr refused))
  done;
  Kernel.run k;
  (!admitted, !refused, Kernel.now k)

let test_backlog_overflow () =
  let a1, r1, t1 = overflow_run () in
  Alcotest.(check int) "backlog admitted" 2 a1;
  Alcotest.(check int) "overflow refused" 3 r1;
  let a2, r2, t2 = overflow_run () in
  Alcotest.(check int) "same admitted" a1 a2;
  Alcotest.(check int) "same refused" r1 r2;
  Alcotest.(check bool) "same makespan" true (Time.compare t1 t2 = 0)

let test_addr_in_use () =
  let k = Kernel.boot () in
  let second = ref `Unset in
  ignore
    (Kernel.spawn k ~name:"dup" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:4 in
         (match Uctx.listen ~name:"svc" ~backlog:4 with
         | _ -> second := `Listened
         | exception Errno.Unix_error (Errno.EADDRINUSE, _) ->
             second := `Addr_in_use);
         Uctx.close lfd;
         (* the name is free again after close *)
         Uctx.close (Uctx.listen ~name:"svc" ~backlog:4)));
  Kernel.run k;
  Alcotest.(check bool) "second listen refused" true (!second = `Addr_in_use)

(* ------------------------------------------------------------------ *)
(* Stream semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_eof_after_peer_close () =
  let k = Kernel.boot () in
  let got = ref "" and eof = ref "unset" in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:1 in
         let fd = Uctx.accept lfd in
         got := Uctx.read_exact fd ~len:5;
         (* peer has closed: ordered EOF after all data, then again *)
         eof :=
           if Uctx.read fd ~len:10 = "" && Uctx.read fd ~len:10 = "" then
             "eof"
           else "data";
         Uctx.close fd;
         Uctx.close lfd));
  ignore
    (Kernel.spawn k ~name:"client" ~main:(fun () ->
         Uctx.sleep (Time.ms 1);
         let fd = Uctx.connect "svc" in
         Uctx.write_all fd "hello";
         Uctx.close fd));
  Kernel.run k;
  Alcotest.(check string) "data before EOF" "hello" !got;
  Alcotest.(check string) "EOF is sticky" "eof" !eof

let test_close_wakes_blocked_acceptor () =
  let k = Kernel.boot () in
  let outcome = ref "unset" in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:1 in
         ignore
           (Uctx.lwp_create
              ~entry:(fun () ->
                match Uctx.accept lfd with
                | _ -> outcome := "accepted"
                | exception Errno.Unix_error (Errno.ECONNABORTED, _) ->
                    outcome := "aborted")
              ());
         Uctx.sleep (Time.ms 5);
         Uctx.close lfd));
  Kernel.run k;
  Alcotest.(check string) "acceptor woken with abort" "aborted" !outcome

let test_backpressure_blocks_writer () =
  let k = Kernel.boot () in
  let chunk = 8192 (* = Socket.default_capacity: one chunk fills it *) in
  let write_done = ref Time.zero and drained = ref 0 in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:1 in
         let fd = Uctx.accept lfd in
         (* don't drain for 50ms: the writer's window stays shut *)
         Uctx.sleep (Time.ms 50);
         for _ = 1 to 3 do
           drained := !drained + String.length (Uctx.read_exact fd ~len:chunk)
         done;
         Uctx.close fd;
         Uctx.close lfd));
  ignore
    (Kernel.spawn k ~name:"client" ~main:(fun () ->
         Uctx.sleep (Time.ms 1);
         let fd = Uctx.connect "svc" in
         Uctx.write_all fd (String.make (3 * chunk) 'x');
         write_done := Uctx.gettime ();
         Uctx.close fd));
  Kernel.run k;
  Alcotest.(check int) "all bytes arrived" (3 * 8192) !drained;
  Alcotest.(check bool) "writer blocked until the reader drained" true
    Time.(!write_done >= Time.ms 50)

(* ------------------------------------------------------------------ *)
(* poll over a mixed fd set                                            *)
(* ------------------------------------------------------------------ *)

let test_poll_mixed_fds () =
  let k = Kernel.boot () in
  let log = ref [] in
  let note s = log := s :: !log in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:4 in
         let pr, pw = Uctx.pipe () in
         ignore
           (Uctx.lwp_create
              ~entry:(fun () ->
                Uctx.sleep (Time.ms 2);
                ignore (Uctx.write pw "ping"))
              ());
         (* pipe side fires first *)
         let r1 = Uctx.poll [ pf lfd; pf pr ] in
         if r1 = [ pr ] then note "pipe";
         ignore (Uctx.read pr ~len:16);
         (* then the listener becomes acceptable *)
         let r2 = Uctx.poll [ pf lfd; pf pr ] in
         if r2 = [ lfd ] then note "listen";
         let fd = Uctx.accept lfd in
         (* and finally the connected stream carries data *)
         let r3 = Uctx.poll [ pf fd; pf lfd; pf pr ] in
         if r3 = [ fd ] then note "stream";
         note (Uctx.read_exact fd ~len:2);
         Uctx.close fd;
         Uctx.close pr;
         Uctx.close pw;
         Uctx.close lfd));
  ignore
    (Kernel.spawn k ~name:"client" ~main:(fun () ->
         Uctx.sleep (Time.ms 5);
         let fd = Uctx.connect "svc" in
         Uctx.sleep (Time.ms 3);
         Uctx.write_all fd "hi";
         Uctx.sleep (Time.ms 2);
         Uctx.close fd));
  Kernel.run k;
  Alcotest.(check (list string))
    "readiness arrived in order"
    [ "pipe"; "listen"; "stream"; "hi" ]
    (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Observability: trace records and /proc counts                       *)
(* ------------------------------------------------------------------ *)

let test_trace_and_procfs () =
  let k = Kernel.boot () in
  Kernel.set_tracing k true;
  let counts = ref (0, 0) in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:1 in
         let fd = Uctx.accept lfd in
         ignore (Uctx.read_exact fd ~len:2);
         (* one connected socket + one listener open right now *)
         (counts :=
            match Procfs.snapshot k with
            | pi :: _ -> (pi.Procfs.pi_nsocks, pi.Procfs.pi_nlisten)
            | [] -> (-1, -1));
         Uctx.close fd;
         Uctx.close lfd));
  ignore
    (Kernel.spawn k ~name:"client" ~main:(fun () ->
         Uctx.sleep (Time.ms 1);
         let fd = Uctx.connect "svc" in
         Uctx.write_all fd "hi";
         Uctx.sleep (Time.ms 2);
         Uctx.close fd));
  Kernel.run k;
  Alcotest.(check (pair int int)) "procfs socket counts" (1, 1) !counts;
  let tags =
    List.sort_uniq compare
      (List.map
         (fun r -> r.Sunos_sim.Tracebuf.tag)
         (Kernel.trace_records k))
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " traced") true (List.mem t tags))
    [ "listen"; "connect"; "accept" ]

let () =
  Alcotest.run "sunos_socket"
    [
      ( "admission",
        [
          Alcotest.test_case "backlog overflow deterministic" `Quick
            test_backlog_overflow;
          Alcotest.test_case "name in use" `Quick test_addr_in_use;
        ] );
      ( "streams",
        [
          Alcotest.test_case "EOF after peer close" `Quick
            test_eof_after_peer_close;
          Alcotest.test_case "close wakes acceptor" `Quick
            test_close_wakes_blocked_acceptor;
          Alcotest.test_case "backpressure" `Quick
            test_backpressure_blocks_writer;
        ] );
      ( "poll",
        [ Alcotest.test_case "mixed fd set" `Quick test_poll_mixed_fds ] );
      ( "observability",
        [
          Alcotest.test_case "trace + procfs" `Quick test_trace_and_procfs;
        ] );
    ]
