(* Chaos suite: deterministic fault injection end to end.

   Four claims are pinned here:
   1. Chaos off is inert — the determinism goldens (recorded before the
      fault injector existed) still hold bit-for-bit when a run is
      booted with the explicit [off] profile.
   2. Chaos on is deterministic — same (seed, profile) replays the same
      fault schedule, trace digest and request accounting.
   3. Hardened workloads degrade, never lose — under every canned
      profile each request is accounted for (served + shed + aborted)
      and each transaction commits.
   4. The kernel/runtime fixes that hardening exposed stay fixed —
      EINTR'd sleeps still sleep their full span, a timeout-EINTR
      re-arms the SIGWAITING edge, non-blocking socket outcomes are
      distinguishable, and the LWP pool replenishes itself when the
      injector kills its members.

   Fault-count goldens re-record with SUNOS_PRINT_GOLDENS=1. *)

module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Errno = Sunos_kernel.Errno
module Signo = Sunos_kernel.Signo
module Sigset = Sunos_kernel.Sigset
module Sysdefs = Sunos_kernel.Sysdefs
module Time = Sunos_sim.Time
module Faultgen = Sunos_sim.Faultgen
module S = Sunos_workloads.Net_server
module Db = Sunos_workloads.Database
module W = Sunos_workloads.Window_system
module A = Sunos_workloads.Array_compute

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

type probe = {
  tag_digest : string;
  tag_count : int;
  dispatches : int;
  preemptions : int;
}

let probe_of_kernel k =
  let tags =
    List.map (fun r -> r.Sunos_sim.Tracebuf.tag) (Kernel.trace_records k)
  in
  {
    tag_digest = Digest.to_hex (Digest.string (String.concat "," tags));
    tag_count = List.length tags;
    dispatches = Kernel.dispatch_count k;
    preemptions = Kernel.preemption_count k;
  }

let check_probe name golden actual =
  Alcotest.(check string)
    (name ^ " trace tag digest") golden.tag_digest actual.tag_digest;
  Alcotest.(check int) (name ^ " trace tag count") golden.tag_count
    actual.tag_count;
  Alcotest.(check int) (name ^ " dispatches") golden.dispatches
    actual.dispatches;
  Alcotest.(check int) (name ^ " preemptions") golden.preemptions
    actual.preemptions

(* ------------------------------------------------------------------ *)
(* 1. Chaos off is inert                                               *)
(* ------------------------------------------------------------------ *)

(* The exact configurations and goldens of test_determinism: booting
   with the explicit [off] profile must reproduce them bit-for-bit.
   If these fail while test_determinism passes, the chaos plumbing
   perturbs disabled runs — the one thing it must never do. *)

let det_net_params =
  {
    S.default_params with
    connections = 12;
    requests_per_conn = 2;
    think_time_us = 20_000;
    connect_stagger_us = 500;
    disk_every = 8;
    workers = 4;
    concurrency = 4;
    client_concurrency = 12;
    listen_backlog = 32;
  }

let det_db_params =
  {
    Db.default_params with
    processes = 2;
    threads_per_process = 4;
    records = 16;
    transactions_per_thread = 10;
  }

let golden_net =
  {
    tag_digest = "8fffe7b5bfb695c486aa300e034e1cb7";
    tag_count = 544;
    dispatches = 223;
    preemptions = 31;
  }

let golden_db =
  {
    tag_digest = "ce1dad7ea79bac69892ce0bd4b57df7a";
    tag_count = 128;
    dispatches = 64;
    preemptions = 0;
  }

let net_probe_off () =
  let out = ref None in
  ignore
    (S.run
       (module Sunos_baselines.Mt)
       ~cpus:2 ~chaos:Faultgen.off ~trace:true
       ~debrief:(fun k ->
         Alcotest.(check int) "off injects nothing" 0 (Kernel.chaos_total k);
         out := Some (probe_of_kernel k))
       det_net_params);
  Option.get !out

let db_probe_off () =
  let out = ref None in
  ignore
    (Db.run ~cpus:2 ~chaos:Faultgen.off ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       det_db_params);
  Option.get !out

let test_off_inert_net () =
  check_probe "chaos-off net-server" golden_net (net_probe_off ())

let test_off_inert_db () =
  check_probe "chaos-off database" golden_db (db_probe_off ())

(* ------------------------------------------------------------------ *)
(* 2 + 3. Hardened workloads under the canned profiles                 *)
(* ------------------------------------------------------------------ *)

let hardened_params =
  {
    S.default_params with
    connections = 10;
    requests_per_conn = 3;
    think_time_us = 1_000;
    connect_stagger_us = 500;
    workers = 4;
    concurrency = 4;
    client_concurrency = 10;
    listen_backlog = 8;
    hardened = true;
    connect_retry_limit = 12;
    retry_base_us = 300;
    request_deadline_us = 250_000;
    shed_queue_limit = 6;
  }

let run_net profile =
  let counts = ref [] and pr = ref None in
  let r =
    S.run
      (module Sunos_baselines.Mt)
      ~cpus:2 ~chaos:profile ~trace:true
      ~debrief:(fun k ->
        counts := Kernel.chaos_counts k;
        pr := Some (probe_of_kernel k))
      hardened_params
  in
  (r, !counts, Option.get !pr)

let total_requests p = p.S.connections * p.S.requests_per_conn

let check_conservation name (r : S.results) =
  Alcotest.(check int)
    (name ^ ": served+shed+aborted accounts for every request")
    (total_requests hardened_params)
    (r.S.served + r.S.shed + r.S.aborted);
  Alcotest.(check bool) (name ^ ": some requests served") true (r.S.served > 0)

let test_profiles_net () =
  List.iter
    (fun profile ->
      let r, _, _ = run_net profile in
      check_conservation profile.Faultgen.label r)
    [ Faultgen.light; Faultgen.network_heavy; Faultgen.scheduler_heavy ]

let test_profiles_db () =
  List.iter
    (fun profile ->
      let p =
        {
          Db.default_params with
          processes = 2;
          threads_per_process = 4;
          records = 8;
          transactions_per_thread = 6;
        }
      in
      let r = Db.run ~cpus:2 ~chaos:profile p in
      Alcotest.(check int)
        (profile.Faultgen.label ^ ": every transaction commits")
        (p.Db.processes * p.Db.threads_per_process
       * p.Db.transactions_per_thread)
        r.Db.committed)
    [ Faultgen.light; Faultgen.network_heavy; Faultgen.scheduler_heavy ]

let test_profiles_windows () =
  List.iter
    (fun profile ->
      let p = { W.default_params with widgets = 20; events = 60 } in
      let r = W.run (module Sunos_baselines.Mt) ~cpus:2 ~chaos:profile p in
      Alcotest.(check int)
        (profile.Faultgen.label ^ ": every event handled")
        p.W.events r.W.handled)
    [ Faultgen.light; Faultgen.network_heavy; Faultgen.scheduler_heavy ]

let test_profiles_array () =
  List.iter
    (fun profile ->
      let p =
        { A.default_params with rows = 16; sweeps = 4; mode = A.Unbound 8 }
      in
      let r = A.run ~cpus:2 ~chaos:profile p in
      Alcotest.(check bool)
        (profile.Faultgen.label ^ ": sweeps completed")
        true
        Time.(r.A.makespan > 0L))
    [ Faultgen.light; Faultgen.network_heavy; Faultgen.scheduler_heavy ]

(* Same (seed, profile) must replay the identical run: fault schedule,
   trace digest and request accounting all bit-equal. *)
let test_chaos_deterministic () =
  let r1, c1, p1 = run_net Faultgen.network_heavy in
  let r2, c2, p2 = run_net Faultgen.network_heavy in
  check_probe "chaos replay" p1 p2;
  Alcotest.(check (list (pair string int))) "fault schedule replays" c1 c2;
  Alcotest.(check (list int)) "request accounting replays"
    [ r1.S.served; r1.S.shed; r1.S.aborted; r1.S.gaveup; r1.S.refused ]
    [ r2.S.served; r2.S.shed; r2.S.aborted; r2.S.gaveup; r2.S.refused ]

(* ------------------------------------------------------------------ *)
(* Pinned fault-count goldens                                          *)
(* ------------------------------------------------------------------ *)

(* The light-profile fault schedule for the fixed hardened config: a
   change here means the chaos stream or an injection site moved —
   legitimate only with an intentional Faultgen/kernel change
   (re-record with SUNOS_PRINT_GOLDENS=1). *)
let golden_light_counts =
  [
    ("conn-refuse", 1);
    ("conn-rst", 1);
    ("eintr-sleep", 3);
    ("enomem-lwp", 2);
    ("fault-spike", 1);
    ("peer-stall", 1);
    ("preempt-storm", 9);
  ]

let golden_light_accounting = (27, 0, 3)

let light_run () =
  let r, counts, _ = run_net Faultgen.light in
  (r, counts)

let test_fault_count_golden () =
  let r, counts = light_run () in
  Alcotest.(check (list (pair string int)))
    "light-profile fault counts" golden_light_counts counts;
  let served, shed, aborted = golden_light_accounting in
  Alcotest.(check (list int)) "light-profile accounting"
    [ served; shed; aborted ]
    [ r.S.served; r.S.shed; r.S.aborted ]

let print_goldens () =
  let r, counts = light_run () in
  Printf.printf "let golden_light_counts =\n  [ %s ]\n"
    (String.concat "; "
       (List.map (fun (s, n) -> Printf.sprintf "(%S, %d)" s n) counts));
  Printf.printf "let golden_light_accounting = (%d, %d, %d)\n" r.S.served
    r.S.shed r.S.aborted

(* ------------------------------------------------------------------ *)
(* 4. Kernel semantics under injected faults                           *)
(* ------------------------------------------------------------------ *)

let eintr_all =
  { Faultgen.off with label = "eintr-all"; eintr_sleep = 1.0 }

(* SA_RESTART contract: a sleep that is EINTR'd (here: on every single
   nanosleep) still sleeps its full requested span before returning. *)
let test_eintr_sleep_full_span () =
  let k = Kernel.boot ~cpus:1 ~chaos:eintr_all () in
  let elapsed = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"sleeper" ~main:(fun () ->
         let t0 = Uctx.gettime () in
         Uctx.sleep (Time.us 300);
         elapsed := Time.diff (Uctx.gettime ()) t0));
  Kernel.run k;
  Alcotest.(check bool) "slept at least the requested span" true
    Time.(!elapsed >= Time.us 300);
  Alcotest.(check bool) "the sleep was actually interrupted" true
    (Faultgen.count (Kernel.chaos k) "eintr-sleep" >= 1)

(* The SIGWAITING re-arm fix: an EINTR that arrives by *timeout* (chaos)
   is an ordinary wakeup and must re-arm the all-LWPs-blocked edge; only
   signal-caused EINTRs skip the re-arm (storm prevention).

   Construction: LWP2 blocks forever on an empty pipe with SIGUSR1
   masked.  Main blocks on a second pipe — first all-indefinite edge
   fires (count 1) and disarms.  A watcher process SIGUSR1s the main
   LWP out of its read (signal path: no re-arm), main then runs a
   chaos-EINTR'd sleep (timeout path: must re-arm) and blocks again.
   The second all-indefinite edge can only fire — count 2 — if the
   timeout-EINTR wake re-armed it. *)
let test_timeout_eintr_rearms_sigwaiting () =
  let k = Kernel.boot ~cpus:1 ~chaos:eintr_all () in
  let target_pid = ref 0 in
  let got_eintr = ref false in
  let main () =
    ignore
      (Uctx.sigaction Signo.sigusr1 (Sysdefs.Sig_handler (fun _ -> ())));
    let b_r, _b_w = Uctx.pipe () in
    let a_r, _a_w = Uctx.pipe () in
    ignore
      (Uctx.lwp_create
         ~entry:(fun () ->
           Uctx.sigprocmask Sigset.Sig_block
             (Sigset.of_list [ Signo.sigusr1 ]);
           ignore (Uctx.read b_r ~len:1))
         ());
    (match Uctx.syscall (Sysdefs.Sys_read (a_r, 1)) with
    | Sysdefs.R_err Errno.EINTR -> got_eintr := true
    | _ -> ());
    Uctx.sleep (Time.us 200);
    ignore (Uctx.syscall (Sysdefs.Sys_read (a_r, 1)))
  in
  target_pid := Kernel.spawn k ~name:"blocker" ~main;
  ignore
    (Kernel.spawn k ~name:"watcher" ~main:(fun () ->
         Uctx.sleep (Time.ms 2);
         Uctx.kill ~pid:!target_pid Signo.sigusr1));
  Kernel.run k;
  Alcotest.(check bool) "signal interrupted the pipe read" true !got_eintr;
  Alcotest.(check bool)
    "second all-blocked edge fired after the timeout-EINTR re-arm" true
    (Kernel.sigwaiting_count k >= 2)

(* Non-blocking socket outcomes are a closed variant: not-ready, EOF,
   and reset are three different answers (plus EINVAL off sockets). *)
let test_nb_socket_variants () =
  let k = Kernel.boot ~cpus:1 () in
  let obs : (string * bool) list ref = ref [] in
  let note tag ok = obs := (tag, ok) :: !obs in
  ignore
    (Kernel.spawn k ~name:"sockets" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"vx" ~backlog:4 in
         note "accept-empty-is-again" (Uctx.accept_nb lfd = `Again);
         let cfd = Uctx.connect "vx" in
         let sfd =
           match Uctx.accept_nb lfd with
           | `Conn fd ->
               note "accept-pending-is-conn" true;
               fd
           | `Again | `Aborted ->
               note "accept-pending-is-conn" false;
               -1
         in
         note "read-empty-is-again" (Uctx.try_read cfd ~len:8 = `Again);
         ignore (Uctx.write sfd "hello");
         Uctx.sleep (Time.ms 2);
         note "read-delivered-is-data"
           (match Uctx.try_read cfd ~len:8 with
           | `Data "hello" -> true
           | _ -> false);
         Uctx.close sfd;
         Uctx.sleep (Time.ms 2);
         note "read-after-close-is-eof" (Uctx.try_read cfd ~len:8 = `Eof);
         Uctx.close cfd;
         (* abortive close: undelivered inbound data turns into an RST *)
         let cfd2 = Uctx.connect "vx" in
         (match Uctx.accept_nb lfd with
         | `Conn sfd2 ->
             ignore (Uctx.write cfd2 "boom");
             Uctx.close sfd2;
             note "read-after-rst-is-reset"
               (Uctx.try_read cfd2 ~len:8 = `Reset);
             note "write-after-rst-raises"
               (match Uctx.write cfd2 "x" with
               | _ -> false
               | exception Errno.Unix_error (Errno.ECONNRESET, _) -> true)
         | `Again | `Aborted -> note "read-after-rst-is-reset" false);
         let pr, _pw = Uctx.pipe () in
         note "non-socket-is-einval"
           (match Uctx.try_read pr ~len:1 with
           | _ -> false
           | exception Errno.Unix_error (Errno.EINVAL, _) -> true)));
  Kernel.run k;
  List.iter (fun (tag, ok) -> Alcotest.(check bool) tag true ok) !obs

(* Injected EAGAIN is spurious, not lossy: the data/connection stays put
   and a blocking call (not an injection site) still collects it. *)
let test_injected_eagain_is_spurious () =
  let eagain_all =
    { Faultgen.off with label = "eagain-all"; eagain_sock = 1.0 }
  in
  let k = Kernel.boot ~cpus:1 ~chaos:eagain_all () in
  let obs : (string * bool) list ref = ref [] in
  let note tag ok = obs := (tag, ok) :: !obs in
  ignore
    (Kernel.spawn k ~name:"eagain" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"ea" ~backlog:4 in
         let cfd = Uctx.connect "ea" in
         note "pending-conn-reported-again" (Uctx.accept_nb lfd = `Again);
         let sfd = Uctx.accept lfd in
         ignore (Uctx.write sfd "x");
         Uctx.sleep (Time.ms 2);
         note "buffered-data-reported-again"
           (Uctx.try_read cfd ~len:1 = `Again);
         note "blocking-read-still-collects" (Uctx.read cfd ~len:1 = "x")));
  Kernel.run k;
  List.iter (fun (tag, ok) -> Alcotest.(check bool) tag true ok) !obs;
  Alcotest.(check bool) "eagain faults were injected" true
    (Faultgen.count (Kernel.chaos k) "eagain-sock" >= 2)

(* LWP death + replenishment: with the injector killing parked pool
   LWPs (and starving creation with transient ENOMEM), the SIGWAITING /
   ESRCH-repair / backoff machinery must still finish every
   transaction. *)
let test_pool_replenishment () =
  let reaper =
    {
      Faultgen.off with
      label = "reaper";
      lwp_reap = 0.3;
      enomem_lwp = 0.3;
    }
  in
  let p =
    {
      Db.default_params with
      processes = 1;
      threads_per_process = 6;
      records = 8;
      transactions_per_thread = 8;
    }
  in
  let reaped = ref 0 and starved = ref 0 in
  let r =
    Db.run ~cpus:2 ~chaos:reaper
      ~debrief:(fun k ->
        reaped := Faultgen.count (Kernel.chaos k) "lwp-reap";
        starved := Faultgen.count (Kernel.chaos k) "enomem-lwp")
      p
  in
  Alcotest.(check int) "every transaction commits despite reaping"
    (p.Db.processes * p.Db.threads_per_process * p.Db.transactions_per_thread)
    r.Db.committed;
  Alcotest.(check bool) "LWPs actually died" true (!reaped > 0);
  Alcotest.(check bool) "LWP creation actually failed" true (!starved > 0)

(* ------------------------------------------------------------------ *)
(* Burst windows                                                       *)
(* ------------------------------------------------------------------ *)

(* Burst gating is a pure function of the clock: with rate 1.0 a fault
   fires exactly when [now mod period] falls in the window's active
   prefix — never outside it, always inside it. *)
let burst_profile =
  {
    Faultgen.off with
    label = "bursty";
    burst_period_us = 1_000;
    burst_len_us = 100;
  }

let test_burst_faults_cluster_in_window () =
  let g = Faultgen.create ~seed:42L burst_profile in
  let period = 1_000_000L and len = 100_000L in
  let in_window = ref 0 and out_window = ref 0 in
  (* sweep several periods at sub-window steps, straddling both edges *)
  let now = ref 0L in
  while Int64.compare !now 5_000_000L < 0 do
    let fired = Faultgen.fire g ~now:!now ~site:"probe" 1.0 in
    let inside = Int64.compare (Int64.unsigned_rem !now period) len < 0 in
    Alcotest.(check bool)
      (Printf.sprintf "fire at t=%Ldns agrees with the window" !now)
      inside fired;
    if inside then incr in_window else incr out_window;
    now := Int64.add !now 12_500L
  done;
  (* the sweep really saw both sides of the gate *)
  Alcotest.(check bool) "sweep crossed active windows" true (!in_window > 0);
  Alcotest.(check bool) "sweep crossed quiet spans" true (!out_window > 0)

(* The fault schedule is a pure function of (seed, profile): two
   generators built alike answer an identical probe sequence alike,
   and a different seed gives a different schedule. *)
let test_burst_schedule_pure_in_seed () =
  let sweep seed =
    let p = { burst_profile with burst_len_us = 1_000 (* always in *) } in
    let g = Faultgen.create ~seed p in
    List.init 200 (fun i ->
        Faultgen.fire g ~now:(Int64.of_int (i * 7_000)) ~site:"probe" 0.5)
  in
  Alcotest.(check (list bool))
    "same (seed, profile): same fire sequence" (sweep 7L) (sweep 7L);
  Alcotest.(check bool) "different seed: different fire sequence" true
    (sweep 7L <> sweep 8L)

let () =
  if Sys.getenv_opt "SUNOS_PRINT_GOLDENS" <> None then print_goldens ()
  else
    Alcotest.run "chaos"
      [
        ( "inert-off",
          [
            Alcotest.test_case "net-server matches determinism golden"
              `Quick test_off_inert_net;
            Alcotest.test_case "database matches determinism golden" `Quick
              test_off_inert_db;
          ] );
        ( "profiles",
          [
            Alcotest.test_case "net-server conserves requests" `Quick
              test_profiles_net;
            Alcotest.test_case "database commits everything" `Quick
              test_profiles_db;
            Alcotest.test_case "window-system handles everything" `Quick
              test_profiles_windows;
            Alcotest.test_case "array-compute completes" `Quick
              test_profiles_array;
            Alcotest.test_case "same (seed, profile) replays" `Quick
              test_chaos_deterministic;
            Alcotest.test_case "light-profile fault counts pinned" `Quick
              test_fault_count_golden;
          ] );
        ( "semantics",
          [
            Alcotest.test_case "EINTR'd sleep keeps its span" `Quick
              test_eintr_sleep_full_span;
            Alcotest.test_case "timeout-EINTR re-arms SIGWAITING" `Quick
              test_timeout_eintr_rearms_sigwaiting;
            Alcotest.test_case "non-blocking socket variants" `Quick
              test_nb_socket_variants;
            Alcotest.test_case "injected EAGAIN is spurious" `Quick
              test_injected_eagain_is_spurious;
            Alcotest.test_case "pool replenishes reaped LWPs" `Quick
              test_pool_replenishment;
          ] );
        ( "burst-windows",
          [
            Alcotest.test_case "faults cluster inside the window" `Quick
              test_burst_faults_cluster_in_window;
            Alcotest.test_case "schedule pure in (seed, profile)" `Quick
              test_burst_schedule_pure_in_seed;
          ] );
      ]
