(* The log-bucketed histogram behind the C100k latency figures: exact
   small values, bounded relative error above, exact merge.  These are
   the properties the server-scaling figure leans on — a p99 that moved
   because of bucketing (rather than the server) would invalidate the
   whole plot. *)

module H = Sunos_sim.Histogram
module Time = Sunos_sim.Time

let span_i64 (s : Time.span) = (s : int64)
let add_i h v = H.add h (Time.ns v)
let pct_i h p = Int64.to_int (span_i64 (H.percentile h p))

(* Values 0..63 live in singleton buckets: every quantile is exact. *)
let test_exact_region () =
  let h = H.create "exact" in
  for v = 0 to 63 do
    add_i h v
  done;
  Alcotest.(check int) "count" 64 (H.count h);
  Alcotest.(check int) "p0 = min" 0 (pct_i h 0.);
  Alcotest.(check int) "median of 0..63" 31 (pct_i h 0.5);
  Alcotest.(check int) "p100 = max" 63 (pct_i h 1.0);
  Alcotest.(check int) "min exact" 0 (Int64.to_int (span_i64 (H.min h)));
  Alcotest.(check int) "max exact" 63 (Int64.to_int (span_i64 (H.max h)))

(* Above 63 a bucket spans [2^k/64] values: the reported quantile is an
   upper bound within 1/64 relative error.  Exercise the boundaries on
   both sides of several powers of two — where an off-by-one in the
   index or upper-bound arithmetic would bite. *)
let test_bucket_boundaries () =
  List.iter
    (fun v ->
      let h = H.create "bound" in
      add_i h v;
      let r = pct_i h 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "upper bound for %d (got %d)" v r)
        true (r >= v);
      let slack = (v / 64) + 1 in
      Alcotest.(check bool)
        (Printf.sprintf "within one subbucket of %d (got %d)" v r)
        true
        (r - v <= slack))
    [
      63;
      64;
      65;
      127;
      128;
      129;
      255;
      256;
      4095;
      4096;
      4097;
      1_000_000;
      1_048_575;
      1_048_576;
      123_456_789;
      max_int / 2;
    ]

(* Negative spans (clock skew upstream) clamp to zero instead of
   corrupting an index. *)
let test_negative_clamps () =
  let h = H.create "neg" in
  add_i h (-5);
  add_i h 10;
  Alcotest.(check int) "count" 2 (H.count h);
  Alcotest.(check int) "min clamped" 0 (Int64.to_int (span_i64 (H.min h)))

(* percentile is clamped to the observed max: a lone sample in a wide
   bucket must not report the bucket's upper edge. *)
let test_max_clamp () =
  let h = H.create "clamp" in
  add_i h 1_000_000;
  Alcotest.(check int) "p99 clamped to max" 1_000_000 (pct_i h 0.99)

(* Monotonicity: for any recorded distribution, p <= q implies
   percentile p <= percentile q. *)
let test_quantile_monotone () =
  let h = H.create "mono" in
  (* a lumpy, multi-decade distribution *)
  let seed = ref 12345 in
  for _ = 1 to 5_000 do
    seed := (!seed * 1103515245) + 12345;
    let r = abs !seed in
    add_i h (1 + (r mod 1_000_000))
  done;
  let ps = [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999; 1.0 ] in
  let _ =
    List.fold_left
      (fun prev p ->
        let v = pct_i h p in
        Alcotest.(check bool)
          (Printf.sprintf "p%.3f (%d) >= previous (%d)" p v prev)
          true (v >= prev);
        v)
      0 ps
  in
  ()

(* Merge is exact: two shards' histograms merged must equal one
   histogram that saw every sample — same count, mean, and every
   percentile. *)
let test_merge_exact () =
  let a = H.create "shard-a" and b = H.create "shard-b" in
  let all = H.create "all" in
  let seed = ref 999 in
  for i = 1 to 4_000 do
    seed := (!seed * 1103515245) + 12345;
    let v = abs !seed mod 2_000_000 in
    add_i (if i mod 2 = 0 then a else b) v;
    add_i all v
  done;
  H.merge ~into:a b;
  Alcotest.(check int) "merged count" (H.count all) (H.count a);
  Alcotest.(check (float 1e-9)) "merged mean" (H.mean all) (H.mean a);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "merged p%.2f" p)
        (pct_i all p) (pct_i a p))
    [ 0.; 0.5; 0.9; 0.95; 0.99; 1.0 ];
  Alcotest.(check int) "merged max"
    (Int64.to_int (span_i64 (H.max all)))
    (Int64.to_int (span_i64 (H.max a)))

let test_empty_and_reset () =
  let h = H.create "empty" in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (H.mean h));
  (match H.percentile h 0.5 with
  | _ -> Alcotest.fail "percentile on empty must raise"
  | exception Invalid_argument _ -> ());
  add_i h 42;
  (match H.percentile h 1.5 with
  | _ -> Alcotest.fail "percentile out of range must raise"
  | exception Invalid_argument _ -> ());
  H.reset h;
  Alcotest.(check int) "reset count" 0 (H.count h);
  Alcotest.(check string) "name survives reset" "empty" (H.name h)

(* ---------------------- qcheck properties ---------------------------- *)

let qt = QCheck_alcotest.to_alcotest
let probe_ps = [ 0.; 0.25; 0.5; 0.9; 0.99; 1.0 ]

(* Merging an empty histogram is the identity in both directions:
   count, mean, max, and every percentile are those of the populated
   side alone. *)
let prop_merge_empty_identity =
  QCheck.Test.make ~count:200 ~name:"merge with empty is identity"
    QCheck.(small_list (int_bound 2_000_000))
    (fun vs ->
      let a = H.create "a" and b = H.create "b" in
      List.iter
        (fun v ->
          add_i a v;
          add_i b v)
        vs;
      H.merge ~into:a (H.create "empty-src");
      let into_empty = H.create "empty-dst" in
      H.merge ~into:into_empty b;
      let same x y =
        H.count x = H.count y
        && (vs = []
           || H.mean x = H.mean y
              && span_i64 (H.max x) = span_i64 (H.max y)
              && List.for_all (fun p -> pct_i x p = pct_i y p) probe_ps)
      in
      same a b && same into_empty b)

(* One sample: every percentile in [0,1] is that sample (negatives
   recorded as 0), because the quantile's bucket upper bound clamps to
   the exact observed max. *)
let prop_single_sample_percentiles =
  QCheck.Test.make ~count:500 ~name:"single-sample percentile edges"
    QCheck.(pair (int_range (-5) 3_000_000) (float_bound_inclusive 1.0))
    (fun (v, p) ->
      let h = H.create "one" in
      add_i h v;
      let clamped = if v < 0 then 0 else v in
      H.count h = 1
      && Int64.to_int (span_i64 (H.min h)) = clamped
      && Int64.to_int (span_i64 (H.max h)) = clamped
      && pct_i h p = clamped
      && pct_i h 0. = clamped
      && pct_i h 1. = clamped)

let () =
  Alcotest.run "histogram"
    [
      ( "buckets",
        [
          Alcotest.test_case "exact below 64" `Quick test_exact_region;
          Alcotest.test_case "power-of-two boundaries" `Quick
            test_bucket_boundaries;
          Alcotest.test_case "negative clamps to 0" `Quick
            test_negative_clamps;
          Alcotest.test_case "clamped to observed max" `Quick test_max_clamp;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "monotone in p" `Quick test_quantile_monotone;
          Alcotest.test_case "merge is exact" `Quick test_merge_exact;
          Alcotest.test_case "empty/reset/raises" `Quick test_empty_and_reset;
        ] );
      ( "properties",
        [ qt prop_merge_empty_identity; qt prop_single_sample_percentiles ] );
    ]
