(* Tests of the threads library: the paper's Figure 4 interface, the M:N
   machinery, synchronization (private and process-shared), thread-level
   signals, and the SIGWAITING pool growth. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Sysdefs = Sunos_kernel.Sysdefs
module Signo = Sunos_kernel.Signo
module Sigset = Sunos_kernel.Sigset
module Fs = Sunos_kernel.Fs
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Condvar = Sunos_threads.Condvar
module Semaphore = Sunos_threads.Semaphore
module Rwlock = Sunos_threads.Rwlock
module Tls = Sunos_threads.Tls
module Syncvar = Sunos_threads.Syncvar

(* Run [main] as a threaded app on a fresh kernel; return the kernel. *)
let run_app ?(cpus = 1) main =
  let k = Kernel.boot ~cpus () in
  ignore (Kernel.spawn k ~name:"app" ~main:(Libthread.boot main));
  Kernel.run k;
  k

let test_boot_and_create () =
  let child_ran = ref false and joined = ref 0 in
  ignore
    (run_app (fun () ->
         let tid =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () -> child_ran := true)
         in
         joined := T.wait ~thread:tid ()));
  Alcotest.(check bool) "child ran" true !child_ran;
  Alcotest.(check int) "joined the child" 2 !joined

let test_thousand_threads_one_lwp () =
  let n = 1000 in
  let count = ref 0 in
  let k =
    run_app (fun () ->
        let tids =
          List.init n (fun _ ->
              T.create ~flags:[ T.THREAD_WAIT ] (fun () -> incr count))
        in
        List.iter (fun tid -> ignore (T.wait ~thread:tid ())) tids)
  in
  Alcotest.(check int) "all ran" n !count;
  (* the whole point: thousands of threads, almost no LWPs *)
  Alcotest.(check bool) "few LWPs" true (Kernel.lwp_create_count k <= 3)

let test_thread_ids_and_self () =
  let ids = ref [] in
  ignore
    (run_app (fun () ->
         let a = T.create ~flags:[ T.THREAD_WAIT ] (fun () -> ()) in
         let b = T.create ~flags:[ T.THREAD_WAIT ] (fun () -> ()) in
         ids := [ T.get_id (); a; b ];
         ignore (T.wait ~thread:a ());
         ignore (T.wait ~thread:b ())));
  match !ids with
  | [ me; a; b ] ->
      Alcotest.(check int) "main is 1" 1 me;
      Alcotest.(check bool) "distinct" true (a <> b && a <> me && b <> me)
  | _ -> Alcotest.fail "bad ids"

let test_wait_errors () =
  ignore
    (run_app (fun () ->
         (* non-waitable target *)
         let t = T.create (fun () -> T.yield ()) in
         (try
            ignore (T.wait ~thread:t ());
            Alcotest.fail "expected Invalid_argument"
          with Invalid_argument _ -> ());
         (* self-wait *)
         try
           ignore (T.wait ~thread:(T.get_id ()) ());
           Alcotest.fail "expected self-wait error"
         with Invalid_argument _ -> ()))

let test_wait_any () =
  let got = ref [] in
  ignore
    (run_app (fun () ->
         let _a = T.create ~flags:[ T.THREAD_WAIT ] (fun () -> ()) in
         let _b = T.create ~flags:[ T.THREAD_WAIT ] (fun () -> ()) in
         got := [ T.wait (); T.wait () ]));
  Alcotest.(check int) "reaped both" 2 (List.length !got);
  Alcotest.(check bool) "distinct tids" true
    (match !got with [ a; b ] -> a <> b | _ -> false)

let test_thread_exit_only_kills_thread () =
  let after = ref false in
  ignore
    (run_app (fun () ->
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               T.exit () (* terminates this thread only *))
         in
         ignore (T.wait ~thread:t ());
         after := true));
  Alcotest.(check bool) "main continued" true !after

let test_stop_flag_and_continue () =
  let ran = ref false in
  ignore
    (run_app (fun () ->
         let t =
           T.create
             ~flags:[ T.THREAD_STOP; T.THREAD_WAIT ]
             (fun () -> ran := true)
         in
         T.yield ();
         Alcotest.(check bool) "not started while stopped" false !ran;
         Alcotest.(check (option string)) "state stopped" (Some "stopped")
           (T.state t);
         T.continue t;
         ignore (T.wait ~thread:t ())));
  Alcotest.(check bool) "ran after continue" true !ran

let test_yield_interleaves () =
  let log = ref [] in
  ignore
    (run_app (fun () ->
         let worker tag () =
           for _ = 1 to 3 do
             log := tag :: !log;
             T.yield ()
           done
         in
         let a = T.create ~flags:[ T.THREAD_WAIT ] (worker "a") in
         let b = T.create ~flags:[ T.THREAD_WAIT ] (worker "b") in
         ignore (T.wait ~thread:a ());
         ignore (T.wait ~thread:b ())));
  let l = List.rev !log in
  (* cooperative alternation on one LWP *)
  Alcotest.(check (list string)) "alternation"
    [ "a"; "b"; "a"; "b"; "a"; "b" ]
    l

let test_priority_scheduling () =
  let order = ref [] in
  ignore
    (run_app (fun () ->
         (* created stopped so both join the runq before any runs *)
         let lo =
           T.create
             ~flags:[ T.THREAD_STOP; T.THREAD_WAIT ]
             (fun () -> order := "lo" :: !order)
         in
         let hi =
           T.create
             ~flags:[ T.THREAD_STOP; T.THREAD_WAIT ]
             (fun () -> order := "hi" :: !order)
         in
         ignore (T.priority ~thread:hi 60);
         ignore (T.priority ~thread:lo 5);
         T.continue lo;
         T.continue hi;
         ignore (T.wait ~thread:lo ());
         ignore (T.wait ~thread:hi ())));
  Alcotest.(check (list string)) "high priority first" [ "hi"; "lo" ]
    (List.rev !order)

(* ------------------------- mutex ------------------------- *)

let test_mutex_mutual_exclusion () =
  let counter = ref 0 and in_cs = ref 0 and max_in_cs = ref 0 in
  ignore
    (run_app (fun () ->
         let m = Mutex.create () in
         let worker () =
           for _ = 1 to 20 do
             Mutex.enter m;
             incr in_cs;
             if !in_cs > !max_in_cs then max_in_cs := !in_cs;
             T.yield ();
             (* deliberately switch inside the critical section *)
             incr counter;
             decr in_cs;
             Mutex.exit m
           done
         in
         let ts =
           List.init 5 (fun _ -> T.create ~flags:[ T.THREAD_WAIT ] worker)
         in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  Alcotest.(check int) "all increments" 100 !counter;
  Alcotest.(check int) "never two inside" 1 !max_in_cs

let test_mutex_bracketing () =
  let raised = ref false in
  ignore
    (run_app (fun () ->
         let m = Mutex.create () in
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               try Mutex.exit m with Mutex.Not_owner -> raised := true)
         in
         Mutex.enter m;
         ignore (T.wait ~thread:t ());
         Mutex.exit m));
  Alcotest.(check bool) "release by non-owner raises" true !raised

let test_mutex_try_enter () =
  ignore
    (run_app (fun () ->
         let m = Mutex.create () in
         Alcotest.(check bool) "uncontended try" true (Mutex.try_enter m);
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Alcotest.(check bool) "contended try fails" false
                 (Mutex.try_enter m))
         in
         ignore (T.wait ~thread:t ());
         Mutex.exit m))

let test_mutex_spin_variant () =
  (* two bound threads on two CPUs: spin mutex works and excludes *)
  let counter = ref 0 in
  ignore
    (run_app ~cpus:2 (fun () ->
         let m = Mutex.create ~variant:Mutex.Spin () in
         let worker () =
           for _ = 1 to 10 do
             Mutex.enter m;
             let v = !counter in
             Uctx.charge_us 5;
             counter := v + 1;
             Mutex.exit m
           done
         in
         let a =
           T.create ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ] worker
         in
         let b =
           T.create ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ] worker
         in
         ignore (T.wait ~thread:a ());
         ignore (T.wait ~thread:b ())));
  Alcotest.(check int) "no lost updates" 20 !counter

let test_mutex_adaptive_variant () =
  let counter = ref 0 in
  ignore
    (run_app ~cpus:2 (fun () ->
         let m = Mutex.create ~variant:Mutex.Adaptive () in
         let worker () =
           for _ = 1 to 10 do
             Mutex.enter m;
             incr counter;
             Uctx.charge_us 3;
             Mutex.exit m
           done
         in
         let ts =
           List.init 4 (fun i ->
               let flags =
                 if i < 2 then [ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
                 else [ T.THREAD_WAIT ]
               in
               T.create ~flags worker)
         in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  Alcotest.(check int) "adaptive excludes" 40 !counter

(* ------------------------- condvar ------------------------- *)

let test_condvar_producer_consumer () =
  let produced = ref [] and consumed = ref [] in
  ignore
    (run_app (fun () ->
         let m = Mutex.create () in
         let cv = Condvar.create () in
         let queue = Queue.create () in
         let done_flag = ref false in
         let consumer () =
           let stop = ref false in
           while not !stop do
             Mutex.enter m;
             while Queue.is_empty queue && not !done_flag do
               Condvar.wait cv m
             done;
             (match Queue.take_opt queue with
             | Some x -> consumed := x :: !consumed
             | None -> if !done_flag then stop := true);
             Mutex.exit m
           done
         in
         let producer () =
           for i = 1 to 10 do
             Mutex.enter m;
             Queue.add i queue;
             produced := i :: !produced;
             Condvar.signal cv;
             Mutex.exit m;
             T.yield ()
           done;
           Mutex.enter m;
           done_flag := true;
           Condvar.broadcast cv;
           Mutex.exit m
         in
         let c = T.create ~flags:[ T.THREAD_WAIT ] consumer in
         let p = T.create ~flags:[ T.THREAD_WAIT ] producer in
         ignore (T.wait ~thread:p ());
         ignore (T.wait ~thread:c ())));
  Alcotest.(check int) "all consumed" 10 (List.length !consumed);
  Alcotest.(check (list int)) "in order" (List.init 10 (fun i -> i + 1))
    (List.rev !consumed)

let test_condvar_broadcast_wakes_all () =
  let woke = ref 0 in
  ignore
    (run_app (fun () ->
         let m = Mutex.create () in
         let cv = Condvar.create () in
         let go = ref false in
         let waiter () =
           Mutex.enter m;
           while not !go do
             Condvar.wait cv m
           done;
           incr woke;
           Mutex.exit m
         in
         let ts =
           List.init 5 (fun _ -> T.create ~flags:[ T.THREAD_WAIT ] waiter)
         in
         T.yield ();
         Mutex.enter m;
         go := true;
         Condvar.broadcast cv;
         Mutex.exit m;
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  Alcotest.(check int) "all woke" 5 !woke

(* ------------------------- semaphore ------------------------- *)

let test_semaphore_counting () =
  let order = ref [] in
  ignore
    (run_app (fun () ->
         let s = Semaphore.create ~count:2 () in
         let worker i () =
           Semaphore.p s;
           order := (i, "in") :: !order;
           T.yield ();
           order := (i, "out") :: !order;
           Semaphore.v s
         in
         let ts =
           List.init 4 (fun i ->
               T.create ~flags:[ T.THREAD_WAIT ] (worker i))
         in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  (* at most 2 concurrently inside *)
  let depth = ref 0 and maxd = ref 0 in
  List.iter
    (fun (_, what) ->
      if what = "in" then begin
        incr depth;
        if !depth > !maxd then maxd := !depth
      end
      else decr depth)
    (List.rev !order);
  Alcotest.(check int) "max concurrency 2" 2 !maxd

let test_semaphore_pingpong () =
  (* the Figure 6 microbenchmark structure *)
  let rounds = ref 0 in
  ignore
    (run_app (fun () ->
         let s1 = Semaphore.create () and s2 = Semaphore.create () in
         let t2 =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               for _ = 1 to 10 do
                 Semaphore.p s2;
                 Semaphore.v s1
               done)
         in
         for _ = 1 to 10 do
           Semaphore.v s2;
           Semaphore.p s1;
           incr rounds
         done;
         ignore (T.wait ~thread:t2 ())));
  Alcotest.(check int) "10 round trips" 10 !rounds

let test_semaphore_try_p () =
  ignore
    (run_app (fun () ->
         let s = Semaphore.create ~count:1 () in
         Alcotest.(check bool) "first try" true (Semaphore.try_p s);
         Alcotest.(check bool) "second fails" false (Semaphore.try_p s);
         Semaphore.v s;
         Alcotest.(check bool) "after v" true (Semaphore.try_p s)))

(* ------------------------- rwlock ------------------------- *)

let test_rwlock_readers_concurrent () =
  let max_readers = ref 0 in
  ignore
    (run_app (fun () ->
         let l = Rwlock.create () in
         let reader () =
           Rwlock.enter l Rwlock.Reader;
           if Rwlock.readers l > !max_readers then
             max_readers := Rwlock.readers l;
           T.yield ();
           Rwlock.exit l
         in
         let ts =
           List.init 4 (fun _ -> T.create ~flags:[ T.THREAD_WAIT ] reader)
         in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  Alcotest.(check bool) "readers overlapped" true (!max_readers >= 2)

let test_rwlock_writer_excludes () =
  let violations = ref 0 in
  ignore
    (run_app (fun () ->
         let l = Rwlock.create () in
         let shared = ref 0 in
         let writer () =
           for _ = 1 to 5 do
             Rwlock.enter l Rwlock.Writer;
             if Rwlock.readers l > 0 then incr violations;
             shared := !shared + 1;
             T.yield ();
             Rwlock.exit l
           done
         in
         let reader () =
           for _ = 1 to 5 do
             Rwlock.enter l Rwlock.Reader;
             if Rwlock.has_writer l then incr violations;
             T.yield ();
             Rwlock.exit l
           done
         in
         let ts =
           T.create ~flags:[ T.THREAD_WAIT ] writer
           :: List.init 3 (fun _ -> T.create ~flags:[ T.THREAD_WAIT ] reader)
         in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  Alcotest.(check int) "no reader/writer overlap" 0 !violations

let test_rwlock_downgrade () =
  ignore
    (run_app (fun () ->
         let l = Rwlock.create () in
         Rwlock.enter l Rwlock.Writer;
         Rwlock.downgrade l;
         Alcotest.(check int) "now a reader" 1 (Rwlock.readers l);
         Alcotest.(check bool) "no writer" false (Rwlock.has_writer l);
         (* another reader can now come in *)
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Alcotest.(check bool) "concurrent read ok" true
                 (Rwlock.try_enter l Rwlock.Reader);
               Rwlock.exit l)
         in
         ignore (T.wait ~thread:t ());
         Rwlock.exit l))

let test_rwlock_try_upgrade () =
  ignore
    (run_app (fun () ->
         let l = Rwlock.create () in
         Rwlock.enter l Rwlock.Reader;
         Alcotest.(check bool) "sole reader upgrades" true
           (Rwlock.try_upgrade l);
         Alcotest.(check bool) "is writer" true (Rwlock.has_writer l);
         Rwlock.exit l))

let test_rwlock_writer_preference () =
  let order = ref [] in
  ignore
    (run_app (fun () ->
         let l = Rwlock.create () in
         Rwlock.enter l Rwlock.Reader;
         let w =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Rwlock.enter l Rwlock.Writer;
               order := "w" :: !order;
               Rwlock.exit l)
         in
         T.yield ();
         (* writer is now queued: a new reader must NOT slip in *)
         let r =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Rwlock.enter l Rwlock.Reader;
               order := "r" :: !order;
               Rwlock.exit l)
         in
         T.yield ();
         Rwlock.exit l;
         ignore (T.wait ~thread:w ());
         ignore (T.wait ~thread:r ())));
  Alcotest.(check (list string)) "writer before late reader" [ "w"; "r" ]
    (List.rev !order)

(* A pending upgrade parks until the other readers drain, blocks new
   readers while it pends, and is promoted by the last reader's exit. *)
let test_rwlock_upgrade_under_contention () =
  let order = ref [] in
  ignore
    (run_app (fun () ->
         let l = Rwlock.create () in
         Rwlock.enter l Rwlock.Reader;
         let up =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Rwlock.enter l Rwlock.Reader;
               (* main still reads: this pends and parks *)
               let ok = Rwlock.try_upgrade l in
               order := (if ok then "upgraded" else "refused") :: !order;
               Alcotest.(check bool) "is writer after upgrade" true
                 (Rwlock.has_writer l);
               Rwlock.exit l)
         in
         let late =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               (* must NOT be admitted while the upgrade pends *)
               Rwlock.enter l Rwlock.Reader;
               order := "late-reader" :: !order;
               Rwlock.exit l)
         in
         T.yield ();
         order := "main-exit" :: !order;
         Rwlock.exit l;
         (* our exit promotes the upgrader ahead of the queued reader *)
         ignore (T.wait ~thread:up ());
         ignore (T.wait ~thread:late ())));
  Alcotest.(check (list string)) "upgrader promoted before late reader"
    [ "main-exit"; "upgraded"; "late-reader" ]
    (List.rev !order)

(* Downgrading mid-hold admits the readers queued behind the writer and
   keeps the caller among them: all three must overlap. *)
let test_rwlock_downgrade_under_contention () =
  let max_readers = ref 0 in
  ignore
    (run_app (fun () ->
         let l = Rwlock.create () in
         Rwlock.enter l Rwlock.Writer;
         let reader () =
           Rwlock.enter l Rwlock.Reader;
           if Rwlock.readers l > !max_readers then
             max_readers := Rwlock.readers l;
           T.yield ();
           Rwlock.exit l
         in
         let r1 = T.create ~flags:[ T.THREAD_WAIT ] reader in
         let r2 = T.create ~flags:[ T.THREAD_WAIT ] reader in
         T.yield ();
         (* both readers are queued on the write hold; downgrade lets
            them in alongside us *)
         Rwlock.downgrade l;
         T.yield ();
         Rwlock.exit l;
         ignore (T.wait ~thread:r1 ());
         ignore (T.wait ~thread:r2 ())));
  Alcotest.(check int) "downgrader and both readers overlapped" 3 !max_readers

(* Shared-variant writer preference: while a writer waits
   ([s_wwaiters > 0]), a new reader can neither barge in with try_enter
   nor be admitted by enter before the writer gets its turn. *)
let test_rwlock_shared_writer_preference () =
  let order = ref [] in
  let k = Kernel.boot ~cpus:1 () in
  (match Fs.create_file (Kernel.fs k) ~path:"/rwfile" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  ignore
    (Kernel.spawn k ~name:"app"
       ~main:
         (Libthread.boot (fun () ->
              let fd = Uctx.open_file "/rwfile" in
              let seg = Uctx.mmap fd in
              let l = Rwlock.create_shared (Syncvar.place seg ~offset:0) in
              Rwlock.enter l Rwlock.Reader;
              let w =
                T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                    Rwlock.enter l Rwlock.Writer;
                    order := "writer-in" :: !order;
                    Rwlock.exit l)
              in
              T.yield ();
              (* the writer now waits in kwait with s_wwaiters = 1 *)
              let r2 =
                T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                    order :=
                      (if Rwlock.try_enter l Rwlock.Reader then "barged"
                       else "barge-refused")
                      :: !order;
                    Rwlock.enter l Rwlock.Reader;
                    order := "reader2-in" :: !order;
                    Rwlock.exit l)
              in
              T.yield ();
              order := "main-exit" :: !order;
              Rwlock.exit l;
              ignore (T.wait ~thread:w ());
              ignore (T.wait ~thread:r2 ()))));
  Kernel.run k;
  Alcotest.(check (list string)) "writer preferred over barging reader"
    [ "barge-refused"; "main-exit"; "writer-in"; "reader2-in" ]
    (List.rev !order)

(* try_enter runs a signal checkpoint: a thread spinning on try-lock
   acquisition must handle a pending thread_kill during the spin, not
   after the lock finally frees. *)
let test_rwlock_try_enter_checkpoint () =
  let handled_at = ref (Time.s 999) and released_at = ref Time.zero in
  ignore
    (run_app ~cpus:4 (fun () ->
         (* four cpus: the holder and killer each charge/sleep on their own
            bound LWP while the pool LWP runs the spinner, so nothing
            serialises behind the holder's 5ms charge *)
         ignore
           (T.sigaction Signo.sigusr1
              (Sysdefs.Sig_handler (fun _ -> handled_at := Uctx.gettime ())));
         let l = Rwlock.create () in
         let locked = Semaphore.create () in
         let spinning = Semaphore.create () in
         let holder =
           T.create
             ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
             (fun () ->
               Rwlock.enter l Rwlock.Writer;
               Semaphore.v locked;
               (* hold for 5ms measured from when the spinner is actually
                  spinning — thread creation costs mean the spinner may
                  not get the pool LWP until several ms in *)
               Semaphore.p spinning;
               Uctx.charge_us 5000;
               released_at := Uctx.gettime ();
               Rwlock.exit l)
         in
         let spinner =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               (* don't start spinning until the writer holds the lock *)
               Semaphore.p locked;
               Semaphore.v spinning;
               Semaphore.v spinning;
               while not (Rwlock.try_enter l Rwlock.Reader) do
                 ()
               done;
               Rwlock.exit l)
         in
         let killer =
           T.create
             ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
             (fun () ->
               (* aim the kill at the middle of the spin *)
               Semaphore.p spinning;
               Uctx.sleep (Time.us 500);
               T.kill spinner Signo.sigusr1)
         in
         ignore (T.wait ~thread:holder ());
         ignore (T.wait ~thread:spinner ());
         ignore (T.wait ~thread:killer ())));
  Alcotest.(check bool) "signal handled during the spin, not after" true
    (Time.compare !handled_at !released_at < 0)

(* ------------------------- TLS ------------------------- *)

let test_tls_isolation () =
  let seen = ref [] in
  ignore
    (run_app (fun () ->
         let worker v () =
           Tls.set Tls.errno v;
           T.yield ();
           (* another thread ran in between; our errno must be intact *)
           seen := Tls.get Tls.errno :: !seen
         in
         let a = T.create ~flags:[ T.THREAD_WAIT ] (worker 7) in
         let b = T.create ~flags:[ T.THREAD_WAIT ] (worker 13) in
         ignore (T.wait ~thread:a ());
         ignore (T.wait ~thread:b ());
         seen := Tls.get Tls.errno :: !seen));
  Alcotest.(check bool) "values isolated" true
    (List.sort compare !seen = [ 0; 7; 13 ])

let test_tls_zero_initialized () =
  ignore
    (run_app (fun () ->
         let key = Tls.key ~default:0 in
         Tls.set key 99;
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Alcotest.(check int) "fresh thread sees zero" 0 (Tls.get key))
         in
         ignore (T.wait ~thread:t ())))

(* ------------------------- bound threads ------------------------- *)

let test_bound_thread_runs () =
  let ran_on_lwp = ref 0 in
  let k =
    run_app ~cpus:2 (fun () ->
        let t =
          T.create
            ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
            (fun () -> ran_on_lwp := Uctx.getlwpid ())
        in
        ignore (T.wait ~thread:t ()))
  in
  Alcotest.(check bool) "bound thread on its own LWP" true (!ran_on_lwp >= 2);
  Alcotest.(check bool) "extra LWP was created" true
    (Kernel.lwp_create_count k >= 2)

let test_bound_unbound_sync () =
  (* the paper: bound and unbound threads synchronize in the usual way *)
  let rounds = ref 0 in
  ignore
    (run_app ~cpus:2 (fun () ->
         let s1 = Semaphore.create () and s2 = Semaphore.create () in
         let bound =
           T.create
             ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
             (fun () ->
               for _ = 1 to 5 do
                 Semaphore.p s2;
                 Semaphore.v s1
               done)
         in
         for _ = 1 to 5 do
           Semaphore.v s2;
           Semaphore.p s1;
           incr rounds
         done;
         ignore (T.wait ~thread:bound ())));
  Alcotest.(check int) "bound/unbound ping-pong" 5 !rounds

(* ------------------------- concurrency control ------------------------- *)

let test_setconcurrency_grows_lwps () =
  let k =
    run_app ~cpus:4 (fun () ->
        T.setconcurrency 3;
        let stats = Libthread.stats () in
        Alcotest.(check int) "pool has 3 LWPs" 3 stats.Libthread.pool_lwps;
        (* real parallelism: three compute threads overlap on the CPUs *)
        let t0 = Uctx.gettime () in
        let ts =
          List.init 3 (fun _ ->
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  Uctx.charge (Time.ms 50)))
        in
        List.iter (fun t -> ignore (T.wait ~thread:t ())) ts;
        let elapsed = Time.diff (Uctx.gettime ()) t0 in
        Alcotest.(check bool) "parallel speedup" true
          (Time.to_ms elapsed < 120.))
  in
  Alcotest.(check bool) "kernel saw LWP creates" true
    (Kernel.lwp_create_count k >= 3)

let test_sigwaiting_grows_pool_automatically () =
  (* One LWP; the main thread blocks reading an empty pipe while another
     thread is runnable.  SIGWAITING must grow the pool so the runnable
     thread executes and feeds the pipe. *)
  let fed = ref false and got = ref "" in
  let k =
    run_app ~cpus:2 (fun () ->
        let rfd, wfd = Uctx.pipe () in
        ignore
          (T.create (fun () ->
               fed := true;
               ignore (Uctx.write wfd "data")));
        (* block in the kernel before the helper ever runs *)
        got := Uctx.read rfd ~len:10)
  in
  Alcotest.(check bool) "helper ran" true !fed;
  Alcotest.(check string) "reader unblocked" "data" !got;
  Alcotest.(check bool) "SIGWAITING was used" true
    (Kernel.sigwaiting_count k >= 1)

(* ------------------------- thread signals ------------------------- *)

let test_thread_kill_targets_one_thread () =
  let handled_in = ref 0 in
  ignore
    (run_app (fun () ->
         ignore
           (T.sigaction Signo.sigusr1
              (Sysdefs.Sig_handler (fun _ -> handled_in := T.get_id ())));
         let victim =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               for _ = 1 to 5 do
                 T.yield ()
               done)
         in
         T.yield ();
         T.kill victim Signo.sigusr1;
         ignore (T.wait ~thread:victim ())));
  Alcotest.(check bool) "handled by the victim" true (!handled_in >= 2)

let test_thread_kill_wakes_blocked_thread () =
  let handled = ref false in
  ignore
    (run_app (fun () ->
         ignore
           (T.sigaction Signo.sigusr2
              (Sysdefs.Sig_handler (fun _ -> handled := true)));
         let s = Semaphore.create () in
         let sleeper =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () -> Semaphore.p s)
         in
         T.yield ();
         Alcotest.(check (option string)) "blocked" (Some "blocked")
           (T.state sleeper);
         T.kill sleeper Signo.sigusr2;
         T.yield ();
         Alcotest.(check bool) "handler ran in sleeper" true !handled;
         (* sleeper re-blocked on the semaphore after the handler *)
         Semaphore.v s;
         ignore (T.wait ~thread:sleeper ())))

let test_thread_mask_blocks_delivery () =
  let handled_by = ref 0 in
  ignore
    (run_app ~cpus:1 (fun () ->
         ignore
           (T.sigaction Signo.sigusr1
              (Sysdefs.Sig_handler (fun _ -> handled_by := T.get_id ())));
         (* main masks SIGUSR1; helper leaves it open and blocks *)
         ignore
           (T.sigsetmask Sigset.Sig_block (Sigset.of_list [ Signo.sigusr1 ]));
         let s = Semaphore.create () in
         let open_thread =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               ignore
                 (T.sigsetmask Sigset.Sig_unblock
                    (Sigset.of_list [ Signo.sigusr1 ]));
               Semaphore.p s)
         in
         T.yield ();
         (* a process-directed signal must go to the open thread *)
         Uctx.kill ~pid:(Uctx.getpid ()) Signo.sigusr1;
         T.yield ();
         Semaphore.v s;
         ignore (T.wait ~thread:open_thread ())));
  Alcotest.(check int) "unmasked thread handled it" 2 !handled_by

let test_sigsend_all_threads () =
  let count = ref 0 in
  ignore
    (run_app (fun () ->
         ignore
           (T.sigaction Signo.sigusr2
              (Sysdefs.Sig_handler (fun _ -> incr count)));
         let barrier = Semaphore.create () in
         let ts =
           List.init 3 (fun _ ->
               T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                   Semaphore.p barrier))
         in
         T.yield ();
         T.sigsend_all Signo.sigusr2;
         T.yield ();
         for _ = 1 to 3 do
           Semaphore.v barrier
         done;
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  (* main + 3 helpers *)
  Alcotest.(check int) "every thread handled it" 4 !count

(* ------------------------- cross-process sync (Figure 1) ----------- *)

let test_shared_mutex_across_processes () =
  let k = Kernel.boot ~cpus:2 () in
  (match Fs.create_file (Kernel.fs k) ~path:"/lockfile" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  let log = ref [] in
  let proc name delay =
    Libthread.boot (fun () ->
        let fd = Uctx.open_file "/lockfile" in
        let seg = Uctx.mmap fd in
        let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
        Uctx.sleep delay;
        for _ = 1 to 3 do
          Mutex.enter m;
          log := (name, "in") :: !log;
          Uctx.charge_us 500;
          log := (name, "out") :: !log;
          Mutex.exit m
        done)
  in
  ignore (Kernel.spawn k ~name:"p1" ~main:(proc "p1" (Time.us 1)));
  ignore (Kernel.spawn k ~name:"p2" ~main:(proc "p2" (Time.us 2)));
  Kernel.run k;
  (* mutual exclusion across processes: in/out strictly alternate *)
  let depth = ref 0 and bad = ref false in
  List.iter
    (fun (_, w) ->
      if w = "in" then begin
        incr depth;
        if !depth > 1 then bad := true
      end
      else decr depth)
    (List.rev !log);
  Alcotest.(check bool) "no overlap across processes" false !bad;
  Alcotest.(check int) "all sections ran" 12 (List.length !log)

let test_shared_semaphore_across_processes () =
  let k = Kernel.boot ~cpus:2 () in
  (match Fs.create_file (Kernel.fs k) ~path:"/semfile" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  let got = ref 0 in
  ignore
    (Kernel.spawn k ~name:"waiter"
       ~main:
         (Libthread.boot (fun () ->
              let fd = Uctx.open_file "/semfile" in
              let seg = Uctx.mmap fd in
              let s =
                Semaphore.create_shared (Syncvar.place seg ~offset:64)
              in
              for _ = 1 to 3 do
                Semaphore.p s;
                incr got
              done)));
  ignore
    (Kernel.spawn k ~name:"poster"
       ~main:
         (Libthread.boot (fun () ->
              Uctx.sleep (Time.ms 5);
              let fd = Uctx.open_file "/semfile" in
              let seg = Uctx.mmap fd in
              let s =
                Semaphore.create_shared (Syncvar.place seg ~offset:64)
              in
              for _ = 1 to 3 do
                Semaphore.v s;
                Uctx.sleep (Time.ms 1)
              done)));
  Kernel.run k;
  Alcotest.(check int) "posts crossed the process boundary" 3 !got

let test_shared_condvar_across_processes () =
  let k = Kernel.boot ~cpus:2 () in
  (match Fs.create_file (Kernel.fs k) ~path:"/cvfile" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  let observed = ref (-1) in
  ignore
    (Kernel.spawn k ~name:"watcher"
       ~main:
         (Libthread.boot (fun () ->
              let fd = Uctx.open_file "/cvfile" in
              let seg = Uctx.mmap fd in
              let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
              let cv = Condvar.create_shared (Syncvar.place seg ~offset:64) in
              let cell = Syncvar.place seg ~offset:128 in
              let data =
                Syncvar.locate cell
                  ~key:(Sunos_sim.Univ.key () : int ref Sunos_sim.Univ.key)
                  ~make:(fun () -> ref 0)
              in
              ignore data;
              (* simple protocol: wait until the poster bumps the cv *)
              Mutex.enter m;
              Condvar.wait cv m;
              observed := 42;
              Mutex.exit m)));
  ignore
    (Kernel.spawn k ~name:"poster"
       ~main:
         (Libthread.boot (fun () ->
              Uctx.sleep (Time.ms 10);
              let fd = Uctx.open_file "/cvfile" in
              let seg = Uctx.mmap fd in
              let _m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
              let cv = Condvar.create_shared (Syncvar.place seg ~offset:64) in
              Condvar.signal cv)));
  Kernel.run k;
  Alcotest.(check int) "cross-process condvar wake" 42 !observed

(* ------------------------- stack cache ------------------------- *)

let test_stack_cache_reuse () =
  ignore
    (run_app (fun () ->
         (* first thread: cold stack; after it exits, the next should hit *)
         let a = T.create ~flags:[ T.THREAD_WAIT ] (fun () -> ()) in
         ignore (T.wait ~thread:a ());
         let before = (Libthread.stats ()).Libthread.stack_cache_hits in
         let b = T.create ~flags:[ T.THREAD_WAIT ] (fun () -> ()) in
         ignore (T.wait ~thread:b ());
         let after = (Libthread.stats ()).Libthread.stack_cache_hits in
         Alcotest.(check bool) "cache hit on reuse" true (after > before)))

let test_caller_stack_no_cache () =
  ignore
    (run_app (fun () ->
         let before = (Libthread.stats ()).Libthread.stack_cache_misses in
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] ~stack:(`Caller 8192) (fun () ->
               ())
         in
         ignore (T.wait ~thread:t ());
         let after = (Libthread.stats ()).Libthread.stack_cache_misses in
         Alcotest.(check int) "caller stack bypasses the cache" before after))

let () =
  Alcotest.run "sunos_threads"
    [
      ( "basics",
        [
          Alcotest.test_case "boot+create+wait" `Quick test_boot_and_create;
          Alcotest.test_case "1000 threads, 1 LWP" `Quick
            test_thousand_threads_one_lwp;
          Alcotest.test_case "ids" `Quick test_thread_ids_and_self;
          Alcotest.test_case "wait errors" `Quick test_wait_errors;
          Alcotest.test_case "wait any" `Quick test_wait_any;
          Alcotest.test_case "thread_exit" `Quick
            test_thread_exit_only_kills_thread;
          Alcotest.test_case "STOP flag + continue" `Quick
            test_stop_flag_and_continue;
          Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
          Alcotest.test_case "priorities" `Quick test_priority_scheduling;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_mutex_mutual_exclusion;
          Alcotest.test_case "bracketing" `Quick test_mutex_bracketing;
          Alcotest.test_case "try_enter" `Quick test_mutex_try_enter;
          Alcotest.test_case "spin variant" `Quick test_mutex_spin_variant;
          Alcotest.test_case "adaptive variant" `Quick
            test_mutex_adaptive_variant;
        ] );
      ( "condvar",
        [
          Alcotest.test_case "producer/consumer" `Quick
            test_condvar_producer_consumer;
          Alcotest.test_case "broadcast" `Quick
            test_condvar_broadcast_wakes_all;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "counting" `Quick test_semaphore_counting;
          Alcotest.test_case "ping-pong" `Quick test_semaphore_pingpong;
          Alcotest.test_case "try_p" `Quick test_semaphore_try_p;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers concurrent" `Quick
            test_rwlock_readers_concurrent;
          Alcotest.test_case "writer excludes" `Quick
            test_rwlock_writer_excludes;
          Alcotest.test_case "downgrade" `Quick test_rwlock_downgrade;
          Alcotest.test_case "try_upgrade" `Quick test_rwlock_try_upgrade;
          Alcotest.test_case "writer preference" `Quick
            test_rwlock_writer_preference;
          Alcotest.test_case "upgrade under contention" `Quick
            test_rwlock_upgrade_under_contention;
          Alcotest.test_case "downgrade under contention" `Quick
            test_rwlock_downgrade_under_contention;
          Alcotest.test_case "shared writer preference" `Quick
            test_rwlock_shared_writer_preference;
          Alcotest.test_case "try_enter checkpoint" `Quick
            test_rwlock_try_enter_checkpoint;
        ] );
      ( "tls",
        [
          Alcotest.test_case "isolation" `Quick test_tls_isolation;
          Alcotest.test_case "zeroed" `Quick test_tls_zero_initialized;
        ] );
      ( "bound",
        [
          Alcotest.test_case "bound runs" `Quick test_bound_thread_runs;
          Alcotest.test_case "bound/unbound sync" `Quick
            test_bound_unbound_sync;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "setconcurrency" `Quick
            test_setconcurrency_grows_lwps;
          Alcotest.test_case "SIGWAITING auto-grow" `Quick
            test_sigwaiting_grows_pool_automatically;
        ] );
      ( "signals",
        [
          Alcotest.test_case "thread_kill" `Quick
            test_thread_kill_targets_one_thread;
          Alcotest.test_case "kill wakes blocked" `Quick
            test_thread_kill_wakes_blocked_thread;
          Alcotest.test_case "mask routes" `Quick
            test_thread_mask_blocks_delivery;
          Alcotest.test_case "sigsend all" `Quick test_sigsend_all_threads;
        ] );
      ( "cross_process",
        [
          Alcotest.test_case "shared mutex" `Quick
            test_shared_mutex_across_processes;
          Alcotest.test_case "shared semaphore" `Quick
            test_shared_semaphore_across_processes;
          Alcotest.test_case "shared condvar" `Quick
            test_shared_condvar_across_processes;
        ] );
      ( "stacks",
        [
          Alcotest.test_case "cache reuse" `Quick test_stack_cache_reuse;
          Alcotest.test_case "caller stack" `Quick test_caller_stack_no_cache;
        ] );
    ]
