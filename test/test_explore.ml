(* The schedule explorer (Explore + Schedctl) over the scenario set.

   Three things are under test.  First, exhaustion itself: the correct
   scenarios pass under EVERY interleaving (and the space is actually
   non-trivial — we assert the explored counts), while the cyclic
   lock-chain scenario's real deadlocks are FOUND, not merely possible.
   Second, the reduction: DPOR must prune work without changing
   verdicts.  Third, the teeth: seeding either schedule-sensitive bug
   back in (the BUG 14 bare upgrader, the SIGWAITING no-re-arm) must
   make the explorer find a failing schedule, write a repro file, and
   replay it standalone to the same failure. *)

module Explore = Sunos_sim.Explore
module Schedctl = Sunos_sim.Schedctl
module Kernel = Sunos_kernel.Kernel
module Rwlock = Sunos_threads.Rwlock
module Sc = Sunos_workloads.Explore_scenarios

let find name =
  match Sc.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s not registered" name

let exhaust ?max_schedules name =
  Sc.explore ?max_schedules (find name)

let check_clean name ~min_explored =
  let st = exhaust name in
  Alcotest.(check bool)
    (Printf.sprintf "%s: full exhaustion (no budget cap)" name)
    false st.Explore.capped;
  Alcotest.(check bool)
    (Printf.sprintf "%s: explored >= %d (got %d)" name min_explored
       st.Explore.explored)
    true
    (st.Explore.explored >= min_explored);
  Alcotest.(check int)
    (Printf.sprintf "%s: no failing schedule" name)
    0
    (List.length st.Explore.failures)

(* ----------------------- clean scenarios ----------------------------- *)

let test_mutex_condvar () = check_clean "mutex-condvar" ~min_explored:2
let test_semaphore_handoff () = check_clean "semaphore-handoff" ~min_explored:20
let test_rwlock_upgrade () = check_clean "rwlock-upgrade" ~min_explored:2
let test_robust_ownerdead () = check_clean "robust-ownerdead" ~min_explored:2
let test_lock_ordered () = check_clean "lock-ordered" ~min_explored:50
let test_sigwaiting_rearm () = check_clean "sigwaiting-rearm" ~min_explored:2

(* ----------------------- deadlock discovery -------------------------- *)

(* The cyclic chain is the point of the exercise: exhaustion must find
   the schedules that really deadlock (thrsan's waits-for cycle kills
   the process), among many that complete. *)
let test_lock_chain_deadlocks_found () =
  let sc = find "lock-chain" in
  Alcotest.(check bool) "scenario expects failures" true sc.Sc.sc_expect_fail;
  let st = Sc.explore sc in
  Alcotest.(check bool) "full exhaustion" false st.Explore.capped;
  Alcotest.(check bool)
    (Printf.sprintf "explored a real tree (%d)" st.Explore.explored)
    true
    (st.Explore.explored >= 50);
  Alcotest.(check bool)
    (Printf.sprintf "found deadlocking schedules (%d)"
       (List.length st.Explore.failures))
    true
    (List.length st.Explore.failures > 0);
  List.iter
    (fun f ->
      Alcotest.(check bool) "every failure is the waits-for deadlock" true
        (let s = f.Explore.f_reason in
         let sub = "deadlock" in
         let n = String.length s and m = String.length sub in
         let rec scan i =
           i + m <= n && (String.sub s i m = sub || scan (i + 1))
         in
         scan 0))
    st.Explore.failures

(* DPOR prunes schedules but must not change the verdict: the raw tree
   and the reduced tree agree on whether failures exist, and the
   reduction actually did something on the scenario with footprints. *)
let test_dpor_parity () =
  let sc = find "lock-chain" in
  let reduced = Explore.explore ~dpor:true sc.Sc.sc_run in
  let raw = Explore.explore ~dpor:false sc.Sc.sc_run in
  Alcotest.(check bool) "reduced tree found deadlocks" true
    (reduced.Explore.failures <> []);
  Alcotest.(check bool) "raw tree found deadlocks" true
    (raw.Explore.failures <> []);
  Alcotest.(check bool)
    (Printf.sprintf "reduction explored no more than raw (%d <= %d)"
       reduced.Explore.explored raw.Explore.explored)
    true
    (reduced.Explore.explored <= raw.Explore.explored);
  Alcotest.(check bool) "reduction pruned something" true
    (reduced.Explore.pruned > 0);
  Alcotest.(check int) "raw tree prunes nothing" 0 raw.Explore.pruned

(* ----------------------- seeded-bug teeth ---------------------------- *)

let with_knob knob f =
  knob := true;
  Fun.protect ~finally:(fun () -> knob := false) f

(* Re-introduce BUG 14 (bare-parked upgrader, promotion through the
   TCB): the explorer must find a failing schedule, leave a repro file,
   and the repro must replay standalone to a failure. *)
let test_bug14_reintroduction_caught () =
  let sc = find "rwlock-upgrade" in
  let repro = Explore.repro_path ~scenario:sc.Sc.sc_name in
  if Sys.file_exists repro then Sys.remove repro;
  with_knob Rwlock.bug14_bare_upgrader (fun () ->
      let st = Sc.explore ~max_schedules:2_000 sc in
      Alcotest.(check bool) "explorer caught the seeded BUG 14" true
        (st.Explore.failures <> []);
      Alcotest.(check bool) "repro file written" true (Sys.file_exists repro);
      let scenario, vector = Explore.read_repro repro in
      Alcotest.(check string) "repro names the scenario" sc.Sc.sc_name
        scenario;
      let outcome, _ = Sc.replay sc ~vector in
      Alcotest.(check bool) "failure reproduces standalone" true
        (match outcome with Explore.Fail _ -> true | Explore.Pass -> false));
  Sys.remove repro;
  (* and with the fix back in, the same exhaustion is clean *)
  let st = Sc.explore sc in
  Alcotest.(check int) "fixed code: no failing schedule" 0
    (List.length st.Explore.failures)

let test_sigwaiting_reintroduction_caught () =
  let sc = find "sigwaiting-rearm" in
  let repro = Explore.repro_path ~scenario:sc.Sc.sc_name in
  if Sys.file_exists repro then Sys.remove repro;
  with_knob Kernel.bug_sigwaiting_no_rearm (fun () ->
      let st = Sc.explore ~max_schedules:500 sc in
      Alcotest.(check bool) "explorer caught the seeded no-re-arm bug" true
        (st.Explore.failures <> []);
      Alcotest.(check bool) "repro file written" true (Sys.file_exists repro);
      let _, vector = Explore.read_repro repro in
      let outcome, _ = Sc.replay sc ~vector in
      Alcotest.(check bool) "failure reproduces standalone" true
        (match outcome with Explore.Fail _ -> true | Explore.Pass -> false));
  Sys.remove repro;
  let st = Sc.explore sc in
  Alcotest.(check int) "fixed code: no failing schedule" 0
    (List.length st.Explore.failures)

(* ----------------------- plumbing ------------------------------------ *)

(* Outside the explorer every scenario must pass as plain code: the
   passive Schedctl path is the engine's normal behavior. *)
let test_scenarios_pass_undriven () =
  List.iter
    (fun sc ->
      if not sc.Sc.sc_expect_fail then
        match sc.Sc.sc_run () with
        | Explore.Pass -> ()
        | Explore.Fail r ->
            Alcotest.failf "%s failed undriven: %s" sc.Sc.sc_name r)
    Sc.all

let test_repro_roundtrip () =
  let path = Filename.temp_file "explore" ".repro" in
  Explore.write_repro ~path ~scenario:"demo" ~reason:"because"
    ~vector:[| 0; 3; 1 |];
  let scenario, vector = Explore.read_repro path in
  Sys.remove path;
  Alcotest.(check string) "scenario survives" "demo" scenario;
  Alcotest.(check (array int)) "vector survives" [| 0; 3; 1 |] vector

(* A driven run that goes off-script reports divergence instead of
   crashing: feed a vector with an out-of-range choice. *)
let test_divergence_reported () =
  let sc = find "mutex-condvar" in
  let _, diverged = Sc.replay sc ~vector:[| 9 |] in
  Alcotest.(check bool) "divergence diagnosed" true (diverged <> None)

let () =
  Alcotest.run "explore"
    [
      ( "exhaustion",
        [
          Alcotest.test_case "mutex-condvar" `Quick test_mutex_condvar;
          Alcotest.test_case "semaphore-handoff" `Quick
            test_semaphore_handoff;
          Alcotest.test_case "rwlock-upgrade" `Quick test_rwlock_upgrade;
          Alcotest.test_case "robust-ownerdead" `Quick test_robust_ownerdead;
          Alcotest.test_case "lock-ordered" `Quick test_lock_ordered;
          Alcotest.test_case "sigwaiting-rearm" `Quick test_sigwaiting_rearm;
        ] );
      ( "discovery",
        [
          Alcotest.test_case "lock-chain deadlocks found" `Quick
            test_lock_chain_deadlocks_found;
          Alcotest.test_case "dpor parity" `Quick test_dpor_parity;
        ] );
      ( "seeded bugs",
        [
          Alcotest.test_case "BUG 14 reintroduction caught" `Quick
            test_bug14_reintroduction_caught;
          Alcotest.test_case "SIGWAITING reintroduction caught" `Quick
            test_sigwaiting_reintroduction_caught;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "scenarios pass undriven" `Quick
            test_scenarios_pass_undriven;
          Alcotest.test_case "repro roundtrip" `Quick test_repro_roundtrip;
          Alcotest.test_case "divergence reported" `Quick
            test_divergence_reported;
        ] );
    ]
