(* C100k smoke: a scaled-down (5k-connection) run of the epoll server
   under open-loop Poisson load.

   Checks, in one run:
   - conservation: served + shed + aborted = issued, even with arrivals
     that never find a free pipeline slot and stragglers cut off by the
     drain grace;
   - the epoll plumbing actually carried the run (wakeups and
     deliveries happened, readiness was batched);
   - determinism: the trace-tag digest and scheduler counters match the
     recorded golden — the same values on every run, every host, every
     SUNOS_DOMAINS setting (compute is offloaded when work_spin > 0,
     never rescheduled).

   To re-record (only after an *intentional* scheduling change): run
   with SUNOS_PRINT_GOLDENS=1 and paste the output. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module S = Sunos_workloads.Net_server
module Procfs = Sunos_kernel.Procfs

type probe = {
  tag_digest : string;
  tag_count : int;
  dispatches : int;
  preemptions : int;
}

let probe_of_kernel k =
  let tags =
    List.map (fun r -> r.Sunos_sim.Tracebuf.tag) (Kernel.trace_records k)
  in
  {
    tag_digest = Digest.to_hex (Digest.string (String.concat "," tags));
    tag_count = List.length tags;
    dispatches = Kernel.dispatch_count k;
    preemptions = Kernel.preemption_count k;
  }

let smoke_params =
  {
    S.default_params with
    connections = 5_000;
    requests_per_conn = 2;
    (* this smoke is about plumbing and accounting, not the overload
       knee (that belongs to the figure): keep the server off the
       22ms-per-access 1991 disk (disk_every = 0: the file is faulted
       in once and stays resident) and give the drain a generous grace
       — the sender's drain loop exits early once pending hits zero *)
    parse_compute_us = 5;
    reply_compute_us = 5;
    work_spin = 20;
    disk_every = 0;
    epoll = true;
    open_loop = true;
    pollers = 4;
    workers = 32;
    concurrency = 40;
    connectors = 8;
    arrival_rate_rps = 600.;
    max_pending = 4;
    drain_grace_us = 5_000_000;
    listen_backlog = 64;
  }

let smoke_run () =
  let out = ref None in
  let r =
    S.run
      (module Sunos_baselines.Mt)
      ~cpus:4 ~trace:true
      ~debrief:(fun k -> out := Some (probe_of_kernel k))
      smoke_params
  in
  (r, Option.get !out)

let golden =
  {
    tag_digest = "df9702018ede799a171064066f167bf8";
    tag_count = 65_536;
    dispatches = 66_039;
    preemptions = 569;
  }

let print_goldens () =
  let r, p = smoke_run () in
  Printf.printf
    "c100k: issued=%d served=%d shed=%d aborted=%d gaveup=%d refused=%d\n"
    r.S.issued r.S.served r.S.shed r.S.aborted r.S.gaveup r.S.refused;
  Printf.printf "c100k: maxconc=%d makespan=%Ldns thr=%.0f rps\n"
    r.S.max_concurrent r.S.makespan r.S.throughput_rps;
  List.iter
    (fun ei ->
      Printf.printf
        "c100k: epoll pid=%d fd=%d interest=%d ready=%d edges=%d wakeups=%d \
         delivered=%d\n"
        ei.Procfs.ei_pid ei.Procfs.ei_fd ei.Procfs.ei_interest
        ei.Procfs.ei_ready ei.Procfs.ei_edges ei.Procfs.ei_wakeups
        ei.Procfs.ei_delivered)
    r.S.epoll_stats;
  Printf.printf "c100k: digest=%S tag_count=%d dispatches=%d preemptions=%d\n"
    p.tag_digest p.tag_count p.dispatches p.preemptions

let check_conservation (r : S.results) =
  Alcotest.(check int)
    "served + shed + aborted accounts for every arrival" r.S.issued
    (r.S.served + r.S.shed + r.S.aborted);
  Alcotest.(check bool) "most arrivals served" true
    (r.S.served > r.S.issued / 2);
  Alcotest.(check int) "peak connections = all of them" 5_000
    r.S.max_concurrent

let check_epoll_carried (r : S.results) =
  (* 4 server shards + 4 client reader shards *)
  Alcotest.(check int) "epoll instances debriefed" 8
    (List.length r.S.epoll_stats);
  List.iter
    (fun ei ->
      Alcotest.(check bool)
        (Printf.sprintf "epoll pid%d/fd%d saw edges" ei.Procfs.ei_pid
           ei.Procfs.ei_fd)
        true
        (ei.Procfs.ei_edges > 0);
      Alcotest.(check bool)
        (Printf.sprintf "epoll pid%d/fd%d delivered >= wakeups"
           ei.Procfs.ei_pid ei.Procfs.ei_fd)
        true
        (ei.Procfs.ei_delivered >= ei.Procfs.ei_wakeups))
    r.S.epoll_stats

let test_smoke () =
  let r, p = smoke_run () in
  check_conservation r;
  check_epoll_carried r;
  Alcotest.(check string) "trace tag digest" golden.tag_digest p.tag_digest;
  Alcotest.(check int) "trace tag count" golden.tag_count p.tag_count;
  Alcotest.(check int) "dispatches" golden.dispatches p.dispatches;
  Alcotest.(check int) "preemptions" golden.preemptions p.preemptions

let () =
  if Sys.getenv_opt "SUNOS_PRINT_GOLDENS" <> None then print_goldens ()
  else
    Alcotest.run "c100k"
      [
        ( "smoke",
          [ Alcotest.test_case "5k epoll open-loop" `Quick test_smoke ] );
      ]
