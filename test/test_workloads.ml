(* Integration tests: the workload generators complete, conserve their
   work counts, and show the architectural effects the paper predicts. *)

module Time = Sunos_sim.Time
module Hist = Sunos_sim.Stats.Hist
module W = Sunos_workloads.Window_system
module S = Sunos_workloads.Net_server
module D = Sunos_workloads.Database
module A = Sunos_workloads.Array_compute

let small_w = { W.default_params with widgets = 25; events = 80 }

let test_windows_all_models_complete () =
  List.iter
    (fun (module M : Sunos_baselines.Model.S) ->
      let r = W.run (module M) ~cpus:2 small_w in
      Alcotest.(check int) (M.name ^ ": all events handled") small_w.W.events
        r.W.handled;
      Alcotest.(check int)
        (M.name ^ ": latency samples")
        small_w.W.events
        (Hist.count r.W.latency))
    Sunos_baselines.Model.all

let test_windows_mn_uses_few_lwps () =
  let mt = W.run (module Sunos_baselines.Mt) ~cpus:2 small_w in
  let one2one = W.run (module Sunos_baselines.Cthreads) ~cpus:2 small_w in
  Alcotest.(check bool) "M:N uses far fewer LWPs" true
    (mt.W.lwps_created * 5 < one2one.W.lwps_created);
  Alcotest.(check int) "1:1 pays one LWP per thread + boot"
    (one2one.W.threads_created)
    one2one.W.lwps_created

let test_windows_deterministic () =
  let a = W.run (module Sunos_baselines.Mt) ~cpus:2 small_w in
  let b = W.run (module Sunos_baselines.Mt) ~cpus:2 small_w in
  Alcotest.(check bool) "same seed, same makespan" true
    (Time.compare a.W.makespan b.W.makespan = 0)

let small_s =
  { S.default_params with connections = 10; requests_per_conn = 2; workers = 4 }

let test_server_all_models_complete () =
  List.iter
    (fun (module M : Sunos_baselines.Model.S) ->
      let r = S.run (module M) ~cpus:1 small_s in
      Alcotest.(check int) (M.name ^ ": all served")
        (small_s.S.connections * small_s.S.requests_per_conn)
        r.S.served)
    Sunos_baselines.Model.all

let test_server_mn_beats_1to1_throughput () =
  let mt = S.run (module Sunos_baselines.Mt) ~cpus:1 small_s in
  let one2one = S.run (module Sunos_baselines.Cthreads) ~cpus:1 small_s in
  Alcotest.(check bool) "M:N throughput higher" true
    (mt.S.throughput_rps > one2one.S.throughput_rps)

let test_database_conserves_transactions () =
  let p = { D.default_params with transactions_per_thread = 10 } in
  let r = D.run ~cpus:2 p in
  Alcotest.(check int) "all committed"
    (p.D.processes * p.D.threads_per_process * 10)
    r.D.committed;
  Alcotest.(check bool) "disk was exercised" true (r.D.majflt > 0)

let test_database_warm_start_no_faults () =
  let p =
    {
      D.default_params with
      transactions_per_thread = 5;
      io_every = max_int;
      start_cold = false;
    }
  in
  let r = D.run ~cpus:2 p in
  Alcotest.(check int) "no major faults when pre-warmed" 0 r.D.majflt

let test_array_bound_beats_oversubscribed () =
  let base = A.default_params in
  let many = A.run ~cpus:4 { base with mode = A.Unbound 64 } in
  let bound = A.run ~cpus:4 { base with mode = A.Bound } in
  Alcotest.(check bool) "bound 1/CPU faster than 64 unbound" true
    (Time.compare bound.A.makespan many.A.makespan < 0);
  Alcotest.(check bool) "and with fewer switches" true
    (bound.A.thread_switches < many.A.thread_switches)

let test_array_gang_helps_spinners_under_load () =
  let base = { A.default_params with spin_barrier = true } in
  let plain = A.run ~cpus:4 ~background_load:true { base with mode = A.Bound } in
  let gang =
    A.run ~cpus:4 ~background_load:true { base with mode = A.Bound_gang }
  in
  Alcotest.(check bool) "gang >= 1.5x faster with spinning barriers" true
    (Time.to_ms plain.A.makespan > 1.5 *. Time.to_ms gang.A.makespan)

let test_array_work_independent_of_mode () =
  (* same rows x sweeps everywhere; only the schedule changes *)
  let base = { A.default_params with sweeps = 4 } in
  List.iter
    (fun mode ->
      let r = A.run ~cpus:4 { base with mode } in
      Alcotest.(check bool) "completed" true Time.(r.A.makespan > 0L))
    [ A.Unbound 8; A.Bound; A.Bound_gang ]

module M = Sunos_workloads.Microtask

let test_microtask_raw_lwps () =
  let p = M.default_params in
  let r = M.run ~cpus:4 p in
  Alcotest.(check int) "all iterations, all doalls"
    (p.M.iterations * p.M.doalls) r.M.iterations_done;
  Alcotest.(check int) "one LWP per worker + master"
    (p.M.workers + 1) r.M.lwps_created

let test_microtask_modes_agree () =
  let p = M.default_params in
  let raw = M.run ~cpus:4 { p with mode = M.Raw_lwps } in
  let thr = M.run ~cpus:4 { p with mode = M.Bound_threads } in
  Alcotest.(check int) "same work done" raw.M.iterations_done
    thr.M.iterations_done;
  (* both parallelize: within 3x of each other *)
  let a = Time.to_ms raw.M.makespan and b = Time.to_ms thr.M.makespan in
  Alcotest.(check bool) "comparable makespans" true (a < 3. *. b && b < 3. *. a)

let () =
  Alcotest.run "sunos_workloads"
    [
      ( "windows",
        [
          Alcotest.test_case "all models complete" `Quick
            test_windows_all_models_complete;
          Alcotest.test_case "M:N uses few LWPs" `Quick
            test_windows_mn_uses_few_lwps;
          Alcotest.test_case "deterministic" `Quick test_windows_deterministic;
        ] );
      ( "server",
        [
          Alcotest.test_case "all models complete" `Quick
            test_server_all_models_complete;
          Alcotest.test_case "M:N beats 1:1" `Quick
            test_server_mn_beats_1to1_throughput;
        ] );
      ( "database",
        [
          Alcotest.test_case "conserves txns" `Quick
            test_database_conserves_transactions;
          Alcotest.test_case "warm start" `Quick
            test_database_warm_start_no_faults;
        ] );
      ( "array",
        [
          Alcotest.test_case "bound beats oversubscribed" `Quick
            test_array_bound_beats_oversubscribed;
          Alcotest.test_case "gang helps spinners" `Quick
            test_array_gang_helps_spinners_under_load;
          Alcotest.test_case "all modes complete" `Quick
            test_array_work_independent_of_mode;
        ] );
      ( "microtask",
        [
          Alcotest.test_case "raw LWP runtime" `Quick test_microtask_raw_lwps;
          Alcotest.test_case "modes agree" `Quick test_microtask_modes_agree;
        ] );
    ]
