(* Regression suite: each test pins a bug found (and fixed) while
   building this reproduction.  Comments name the failure mode so the
   test stays meaningful if it ever fires again. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Sysdefs = Sunos_kernel.Sysdefs
module Signo = Sunos_kernel.Signo
module Fs = Sunos_kernel.Fs
module Eventq = Sunos_sim.Eventq
module Machine = Sunos_hw.Machine
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Semaphore = Sunos_threads.Semaphore
module Syncvar = Sunos_threads.Syncvar
module Rwlock = Sunos_threads.Rwlock
module Lockdebug = Sunos_threads.Lockdebug

let run_app ?(cpus = 1) main =
  let k = Kernel.boot ~cpus () in
  ignore (Kernel.spawn k ~name:"app" ~main:(Libthread.boot main));
  Kernel.run k;
  k

(* BUG 1: the "current thread register" was only restored on dispatcher
   resumes, not at charge boundaries, so whenever two LWPs interleaved
   mid-charge, library calls on the first LWP read the *other* LWP's
   current thread ("no current thread" crashes / wrong-owner errors).
   The fix restores it in every busy-completion. *)
let test_current_register_across_interleaving () =
  let ids_seen = ref [] in
  ignore
    (run_app ~cpus:2 (fun () ->
         let bound =
           T.create
             ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
             (fun () ->
               for _ = 1 to 20 do
                 Uctx.charge_us 30;
                 ids_seen := T.get_id () :: !ids_seen
               done)
         in
         for _ = 1 to 20 do
           Uctx.charge_us 30;
           ids_seen := T.get_id () :: !ids_seen
         done;
         ignore (T.wait ~thread:bound ())));
  let mine, theirs = List.partition (fun i -> i = 1) !ids_seen in
  Alcotest.(check int) "main always saw itself" 20 (List.length mine);
  Alcotest.(check bool) "bound always saw itself" true
    (List.for_all (fun i -> i = 2) theirs && List.length theirs = 20)

(* BUG 2: SIGWAITING was level-triggered; a process whose handler could
   not make progress (e.g. both sides of a cross-process ping-pong
   blocked in kwait) was interrupted in an infinite EINTR storm and the
   simulation never drained.  Now edge-triggered. *)
let test_no_sigwaiting_storm () =
  let k = Kernel.boot ~cpus:1 () in
  (match Fs.create_file (Kernel.fs k) ~path:"/s" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  let rounds = ref 0 in
  let peer name first () =
    let fd = Uctx.open_file "/s" in
    let seg = Uctx.mmap fd in
    let s1 = Semaphore.create_shared (Syncvar.place seg ~offset:0) in
    let s2 = Semaphore.create_shared (Syncvar.place seg ~offset:64) in
    ignore name;
    for _ = 1 to 20 do
      if first then begin
        Semaphore.v s2;
        Semaphore.p s1
      end
      else begin
        Semaphore.p s2;
        Semaphore.v s1
      end;
      incr rounds
    done
  in
  ignore (Kernel.spawn k ~name:"a" ~main:(Libthread.boot (peer "a" true)));
  ignore (Kernel.spawn k ~name:"b" ~main:(Libthread.boot (peer "b" false)));
  Kernel.run ~max_events:200_000 k;
  Alcotest.(check int) "both sides completed" 40 !rounds;
  Alcotest.(check bool) "no signal storm (bounded SIGWAITINGs)" true
    (Kernel.sigwaiting_count k < 50)

(* BUG 3: processor_bind of a *running* LWP never migrated it; the charge
   following the bind ran entirely on the old CPU. *)
let test_processor_bind_migrates_before_charging () =
  let k = Kernel.boot ~cpus:2 () in
  ignore
    (Kernel.spawn k ~name:"bind" ~main:(fun () ->
         Uctx.processor_bind (Some 1);
         Uctx.charge (Time.ms 8)));
  Kernel.run k;
  let m = Kernel.machine k in
  let busy c = Sunos_hw.Cpu.busy_time m.Machine.cpus.(c) ~now:(Kernel.now k) in
  Alcotest.(check bool) "work landed on cpu1" true Time.(busy 1 >= Time.ms 8)

(* BUG 4: structural equality on cyclic TCB records (owner = Some self)
   either always-false boxed comparisons or OOM on deep compare.  The
   fix uses physical comparisons; this test exercises the paths that
   crashed: mutex handoff and rwlock writer identification. *)
let test_ownership_identity_paths () =
  let order = ref [] in
  ignore
    (run_app (fun () ->
         let m = Mutex.create () in
         Mutex.enter m;
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Mutex.enter m;
               order := "waiter" :: !order;
               Mutex.exit m)
         in
         T.yield ();
         order := "owner" :: !order;
         Mutex.exit m;
         ignore (T.wait ~thread:t ());
         Alcotest.(check bool) "not holding after exit" false (Mutex.holding m)));
  Alcotest.(check (list string)) "handoff order" [ "owner"; "waiter" ]
    (List.rev !order)

(* BUG 5: a long *finite* kernel sleep (nanosleep/poll-with-timeout) did
   not count as "indefinite", so it pinned its LWP while runnable
   threads starved — SIGWAITING never fired.  User-duration waits now
   count as indefinite. *)
let test_finite_sleep_does_not_starve_runnables () =
  let helper_ran_at = ref Time.zero in
  ignore
    (run_app ~cpus:2 (fun () ->
         ignore
           (T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                helper_ran_at := Uctx.gettime ()));
         (* the main thread parks its LWP in a 5-second kernel sleep
            before the helper ever runs *)
         Uctx.sleep (Time.s 5)));
  Alcotest.(check bool) "helper ran during the sleep, not after" true
    (Time.to_s !helper_ran_at < 1.)

(* BUG 6: the window-system pipeline lost events when shutdown tokens
   were delivered directly to downstream stages; kept as a workload-level
   conservation check. *)
let test_pipeline_conservation () =
  let module W = Sunos_workloads.Window_system in
  let p = { W.default_params with widgets = 10; events = 40 } in
  let r = W.run (module Sunos_baselines.Mt) ~cpus:1 p in
  Alcotest.(check int) "every event rendered" 40 r.W.handled

(* BUG 7: waking a thread blocked on a sync object via a routed signal
   left a stale waitq entry; a subsequent wake could then be consumed by
   the stale entry (double-wake / lost-wake).  The cancel-closure scheme
   prevents it. *)
let test_signal_wake_leaves_no_stale_waitq_entry () =
  let handled = ref false in
  ignore
    (run_app (fun () ->
         ignore
           (T.sigaction Signo.sigusr1
              (Sysdefs.Sig_handler (fun _ -> handled := true)));
         let s = Semaphore.create () in
         let sleeper =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Semaphore.p s;
               Semaphore.p s)
         in
         T.yield ();
         (* wake it out-of-band: it runs the handler and re-blocks *)
         T.kill sleeper Signo.sigusr1;
         T.yield ();
         (* two real tokens must satisfy exactly its two Ps *)
         Semaphore.v s;
         Semaphore.v s;
         ignore (T.wait ~thread:sleeper ());
         Alcotest.(check int) "no token lost or duplicated" 0
           (Semaphore.count s)));
  Alcotest.(check bool) "handler ran" true !handled

(* BUG 8: kwait raced with kwake between the user-level check and the
   kernel-level sleep (lost wakeup).  The futex-style [expect] predicate
   closes it; this hammers the race window cross-process. *)
let test_kwait_expect_closes_race () =
  let k = Kernel.boot ~cpus:2 () in
  (match Fs.create_file (Kernel.fs k) ~path:"/race" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  let done_rounds = ref 0 in
  let locker name () =
    let fd = Uctx.open_file "/race" in
    let seg = Uctx.mmap fd in
    let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
    ignore name;
    for _ = 1 to 50 do
      Mutex.enter m;
      Uctx.charge_us 7;
      Mutex.exit m;
      incr done_rounds
    done
  in
  ignore (Kernel.spawn k ~name:"l1" ~main:(Libthread.boot (locker "l1")));
  ignore (Kernel.spawn k ~name:"l2" ~main:(Libthread.boot (locker "l2")));
  Kernel.run ~max_events:500_000 k;
  Alcotest.(check int) "no lost wakeup: all rounds completed" 100 !done_rounds

(* BUG 9: lwp_main's idle registration raced with wakers: registering
   after the final runq check could park forever despite queued work.
   The unpark-token protocol absorbs the race; this test forces the
   window by waking from an external event at a charge boundary. *)
let test_idle_park_race () =
  let served = ref 0 in
  let k = Kernel.boot ~cpus:1 () in
  let chan = Sunos_kernel.Netchan.create ~name:"c" in
  ignore
    (Kernel.spawn k ~name:"racer"
       ~main:
         (Libthread.boot (fun () ->
              let fd = Uctx.open_net chan in
              for _ = 1 to 25 do
                let _ = Uctx.read fd ~len:16 in
                incr served
              done)));
  let eventq = (Kernel.machine k).Machine.eventq in
  let rec inject n at =
    if n > 0 then
      ignore
        (Eventq.at eventq at (fun () ->
             Sunos_kernel.Netchan.inject chan
               { Sunos_kernel.Netchan.payload = "x"; reply_to = ignore };
             inject (n - 1) (Time.add (Eventq.now eventq) (Time.us 123))))
  in
  inject 25 (Time.us 1);
  Kernel.run k;
  Alcotest.(check int) "all messages served" 25 !served

(* BUG 10: a signal that became deliverable while an LWP was running was
   missed if the LWP then entered an interruptible sleep — the sleep
   must fail with EINTR on entry when signals are already pending (found
   by the timers property test: SIGALRM posted while the pool LWP was
   mid-park-dance; it then parked forever). *)
let test_pending_signal_fails_sleep_entry () =
  let module Timers = Sunos_threads.Timers in
  let woke = ref 0 in
  ignore
    (run_app (fun () ->
         let ts =
           List.map
             (fun ms ->
               T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                   Timers.sleep (Time.ms ms);
                   incr woke))
             [ 0; 1; 1 ]
         in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  Alcotest.(check int) "all sleepers woke" 3 !woke

(* BUG 11: Sys_lwp_park checked the unpark token only at syscall entry;
   an unpark landing during the sleep-queue-insertion busy interval saw
   parked=false, left a token, and the park then blocked anyway — the
   token was never re-examined and the LWP slept forever (surfaced as a
   lost semaphore V in the 1:1 window-system run: the waker had already
   popped the waitq entry, so later V's just piled onto the count).  The
   park now re-checks the token after the busy interval.  Scan the
   unpark across the whole window to pin the race. *)
let test_unpark_during_park_entry () =
  (* one run where the parker parks and the unparker fires at [at]
     (absolute); returns (park entry time, woke) *)
  let run_at at =
    let woke = ref false and t_park = ref Time.zero in
    let k = Kernel.boot ~cpus:2 () in
    ignore
      (Kernel.spawn k ~name:"parker" ~main:(fun () ->
           let lid = Uctx.getlwpid () in
           ignore
             (Uctx.lwp_create
                ~entry:(fun () ->
                  let d = Time.diff at (Uctx.gettime ()) in
                  if Time.(d > 0L) then Uctx.sleep d;
                  Uctx.lwp_unpark lid)
                ());
           t_park := Uctx.gettime ();
           (match Uctx.lwp_park () with `Parked | `Timeout -> ());
           woke := true));
    Kernel.run k;
    (!t_park, !woke)
  in
  (* calibrate: find when the park entry happens (the unpark fires long
     after, so this run always completes), then sweep the unparker's
     start time across the park entry.  The sweep is wide because the
     unpark takes effect a dispatch + a couple of syscalls after the
     unparker wakes; with the race present, ~20 of these offsets landed
     the unpark inside the park's sleep-enqueue interval and the parker
     slept forever. *)
  let t_park, _ = run_at (Time.ms 50) in
  let lost = ref [] in
  for d = 0 to 50 do
    let off = (8 * d) - 300 in
    let _, woke = run_at (Time.add t_park (Time.us off)) in
    if not woke then lost := off :: !lost
  done;
  Alcotest.(check (list int)) "every unpark offset wakes the parker" []
    (List.rev !lost)

(* BUG 12: the net-server workload must be bit-identical across same-seed
   runs — the event-driven server (poller + acceptor + worker pool over
   sockets) must not depend on wall-clock, hash order, or any other
   nondeterminism. *)
let test_net_server_same_seed_identical () =
  let module S = Sunos_workloads.Net_server in
  let p =
    { S.default_params with connections = 12; requests_per_conn = 2 }
  in
  let a = S.run (module Sunos_baselines.Mt) ~cpus:2 p in
  let b = S.run (module Sunos_baselines.Mt) ~cpus:2 p in
  Alcotest.(check int) "served equal" a.S.served b.S.served;
  Alcotest.(check int) "refused equal" a.S.refused b.S.refused;
  Alcotest.(check int) "peak connections equal" a.S.max_concurrent
    b.S.max_concurrent;
  Alcotest.(check int) "lwps equal" a.S.lwps_created b.S.lwps_created;
  Alcotest.(check int) "syscalls equal" a.S.syscalls b.S.syscalls;
  Alcotest.(check bool) "makespan identical" true
    (Time.compare a.S.makespan b.S.makespan = 0)

(* BUG 13: Lockdebug's order check only caught a *direct* ABBA
   inversion: it looked for an already-recorded (wanted, held) edge.  A
   three-lock cycle A->B, B->C, then C->A recorded the closing edge
   silently — lockdep-style transitive reachability was missing.  The
   order graph (now shared with Thrsan) does a DFS, so the cycle raises
   on the acquisition that would close it. *)
let test_lockdebug_transitive_order_cycle () =
  let caught = ref false in
  ignore
    (run_app (fun () ->
         Lockdebug.reset_order_graph ();
         let a = Lockdebug.create ~name:"A" in
         let b = Lockdebug.create ~name:"B" in
         let c = Lockdebug.create ~name:"C" in
         let lock2 x y =
           Lockdebug.enter x;
           Lockdebug.enter y;
           Lockdebug.exit y;
           Lockdebug.exit x
         in
         lock2 a b;
         lock2 b c;
         Lockdebug.enter c;
         (try Lockdebug.enter a
          with Lockdebug.Lock_order_violation _ -> caught := true);
         Lockdebug.exit c));
  Alcotest.(check bool) "A->B->C->A raises on the closing edge" true !caught

(* BUG 14: a pending rwlock upgrader parked *bare* — no cancel_wait
   registration, so nothing could find or cancel its park.  If a signal
   woke it while the last other reader exited, the exit path re-readied
   the upgrader through its TCB even though it was RUNNING its handler
   on another LWP: the phantom runq entry passed the stale-entry check
   (tstate stays Trunnable until dispatch) and an idle LWP dispatched a
   thread with no continuation — assert failure, process dies with 139.
   The upgrader now parks on a real wait queue that the promotion path
   pops (empty while the upgrader is awake). *)
let test_rwlock_upgrader_signal_promotion_race () =
  let upgraded = ref false in
  let k = Kernel.boot ~cpus:2 () in
  ignore
    (Kernel.spawn k ~name:"app"
       ~main:
         (Libthread.boot (fun () ->
              (* three LWPs: main sleeps on one while the reader charges
                 and the upgrader parks on the others *)
              T.setconcurrency 3;
              ignore
                (T.sigaction Signo.sigusr1
                   (Sysdefs.Sig_handler (fun _ -> Uctx.charge_us 3000)));
              let rw = Rwlock.create () in
              let helper =
                T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                    Rwlock.enter rw Rwlock.Reader;
                    Uctx.charge_us 2000;
                    Rwlock.exit rw)
              in
              let w =
                T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                    Rwlock.enter rw Rwlock.Reader;
                    (* pends: helper still reads; parks until promoted *)
                    if Rwlock.try_upgrade rw then begin
                      upgraded := true;
                      Rwlock.exit rw
                    end)
              in
              (* signal the parked upgrader just before the helper's
                 exit promotes it: the handler is still running (it
                 charges 3000us) when the promotion happens at ~2000us *)
              Uctx.sleep (Time.us 500);
              T.kill w Signo.sigusr1;
              ignore (T.wait ~thread:helper ());
              ignore (T.wait ~thread:w ()))));
  Kernel.run ~until:(Time.ms 100) k;
  Alcotest.(check (option int)) "no phantom-runq crash" (Some 0)
    (Kernel.exit_status k 1);
  Alcotest.(check bool) "upgrade completed" true !upgraded

let () =
  Alcotest.run "regressions"
    [
      ( "fixed-bugs",
        [
          Alcotest.test_case "current register across interleaving" `Quick
            test_current_register_across_interleaving;
          Alcotest.test_case "no SIGWAITING storm" `Quick
            test_no_sigwaiting_storm;
          Alcotest.test_case "processor_bind migrates" `Quick
            test_processor_bind_migrates_before_charging;
          Alcotest.test_case "ownership identity" `Quick
            test_ownership_identity_paths;
          Alcotest.test_case "finite sleep doesn't starve" `Quick
            test_finite_sleep_does_not_starve_runnables;
          Alcotest.test_case "pipeline conservation" `Quick
            test_pipeline_conservation;
          Alcotest.test_case "no stale waitq entry" `Quick
            test_signal_wake_leaves_no_stale_waitq_entry;
          Alcotest.test_case "kwait expect race" `Quick
            test_kwait_expect_closes_race;
          Alcotest.test_case "idle park race" `Quick test_idle_park_race;
          Alcotest.test_case "pending signal fails sleep entry" `Quick
            test_pending_signal_fails_sleep_entry;
          Alcotest.test_case "unpark during park entry" `Quick
            test_unpark_during_park_entry;
          Alcotest.test_case "net server same-seed identical" `Quick
            test_net_server_same_seed_identical;
          Alcotest.test_case "lockdebug transitive order cycle" `Quick
            test_lockdebug_transitive_order_cycle;
          Alcotest.test_case "rwlock upgrader signal promotion race" `Quick
            test_rwlock_upgrader_signal_promotion_race;
        ] );
    ]
