(* The epoll readiness layer: edge-triggered delivery, coalescing,
   ONESHOT disarm/re-arm (including the lost-wakeup re-check), interest
   removal and stale-fd collection, EOF/RST arriving while an entry is
   already queued, and blocking-wait wakeup.  Driven through the syscall
   layer from plain LWPs so failures localize to the kernel. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Errno = Sunos_kernel.Errno
module Sysdefs = Sunos_kernel.Sysdefs
module Procfs = Sunos_kernel.Procfs

(* --- edge delivery on a pipe, single fiber ---------------------------- *)

let test_edge_and_coalesce () =
  let k = Kernel.boot () in
  let first = ref [] and second = ref [] and after_drain = ref [] in
  let coalesced = ref (-1) in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         let ep = Uctx.epoll_create () in
         let r, w = Uctx.pipe () in
         Uctx.epoll_add ep r ~want_in:true ();
         (* two writes before anyone waits: one queued entry, the second
            edge is absorbed (coalesced), not delivered twice *)
         ignore (Uctx.write w "a");
         ignore (Uctx.write w "b");
         first := Uctx.epoll_wait ep ~max_events:8;
         second := Uctx.epoll_wait ep ~max_events:8 ~timeout:(Time.ms 1);
         (match Procfs.epolls k with
         | [ ei ] -> coalesced := ei.Procfs.ei_coalesced
         | _ -> ());
         (* non-ONESHOT entry stays armed: drain, then a new write is a
            fresh edge *)
         ignore (Uctx.read r ~len:16);
         ignore (Uctx.write w "c");
         after_drain := Uctx.epoll_wait ep ~max_events:8;
         Uctx.close ep));
  Kernel.run k;
  (match !first with
  | [ _ ] -> ()
  | l -> Alcotest.failf "expected one ready fd, got %d" (List.length l));
  Alcotest.(check (list int)) "second wait empty (edge, not level)" [] !second;
  Alcotest.(check int) "second write coalesced" 1 !coalesced;
  Alcotest.(check int) "fresh edge after drain" 1 (List.length !after_drain)

(* --- ONESHOT: disarm on delivery, re-arm re-checks readiness ---------- *)

let test_oneshot_rearm () =
  let k = Kernel.boot () in
  let while_disarmed = ref [ -1 ] and after_rearm = ref [] in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         let ep = Uctx.epoll_create () in
         let r, w = Uctx.pipe () in
         Uctx.epoll_add ep r ~want_in:true ~oneshot:true ();
         ignore (Uctx.write w "x");
         (match Uctx.epoll_wait ep ~max_events:8 with
         | [ fd ] when fd = r -> ()
         | _ -> Alcotest.fail "oneshot first delivery");
         (* delivered -> disarmed: more data is NOT delivered again *)
         ignore (Uctx.write w "y");
         while_disarmed :=
           Uctx.epoll_wait ep ~max_events:8 ~timeout:(Time.ms 1);
         (* re-arm re-checks readiness: the bytes that arrived while the
            entry was disarmed must surface now, with no further edge —
            this is the lost-wakeup case *)
         Uctx.epoll_mod ep r ~want_in:true ~oneshot:true ();
         after_rearm := Uctx.epoll_wait ep ~max_events:8;
         Uctx.close ep));
  Kernel.run k;
  Alcotest.(check (list int)) "nothing while disarmed" [] !while_disarmed;
  Alcotest.(check int) "re-arm recovered buffered data" 1
    (List.length !after_rearm)

(* --- interest removal with readiness already pending ------------------ *)

let test_del_with_pending () =
  let k = Kernel.boot () in
  let got = ref [ -1 ] in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         let ep = Uctx.epoll_create () in
         let r, w = Uctx.pipe () in
         Uctx.epoll_add ep r ~want_in:true ();
         ignore (Uctx.write w "x");
         (* the entry is sitting in the ready queue; deleting the
            interest must also kill the queued readiness *)
         Uctx.epoll_del ep r;
         got := Uctx.epoll_wait ep ~max_events:8 ~timeout:(Time.ms 1);
         Uctx.close ep));
  Kernel.run k;
  Alcotest.(check (list int)) "deleted interest never delivered" [] !got

(* --- fd closed without epoll_del: stale entry collected --------------- *)

let test_stale_fd_collected () =
  let k = Kernel.boot () in
  let got = ref [ -1 ] and interest_after = ref (-1) in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         let ep = Uctx.epoll_create () in
         let r, w = Uctx.pipe () in
         Uctx.epoll_add ep r ~want_in:true ();
         ignore (Uctx.write w "x");
         Uctx.close r;
         got := Uctx.epoll_wait ep ~max_events:8 ~timeout:(Time.ms 1);
         (match Procfs.epolls k with
         | [ ei ] -> interest_after := ei.Procfs.ei_interest
         | _ -> ());
         Uctx.close ep));
  Kernel.run k;
  Alcotest.(check (list int)) "stale readiness dropped" [] !got;
  Alcotest.(check int) "stale entry collected from interest set" 0
    !interest_after

(* --- blocking wait is woken by a later edge --------------------------- *)

let test_blocking_wakeup () =
  let k = Kernel.boot () in
  let woke_at = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         let ep = Uctx.epoll_create () in
         let r, w = Uctx.pipe () in
         Uctx.epoll_add ep r ~want_in:true ();
         ignore
           (Uctx.lwp_create
              ~entry:(fun () ->
                Uctx.sleep (Time.ms 5);
                ignore (Uctx.write w "late"))
              ());
         (match Uctx.epoll_wait ep ~max_events:8 with
         | [ fd ] when fd = r -> woke_at := Uctx.gettime ()
         | _ -> Alcotest.fail "expected wake with ready fd");
         Uctx.close ep));
  Kernel.run k;
  Alcotest.(check bool) "woke after the 5ms write, not before" true
    Time.(!woke_at >= Time.add Time.zero (Time.ms 5))

(* --- timeout: empty wait returns [] after the budget ------------------ *)

let test_wait_timeout () =
  let k = Kernel.boot () in
  let got = ref [ -1 ] and elapsed = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         let ep = Uctx.epoll_create () in
         let r, _w = Uctx.pipe () in
         Uctx.epoll_add ep r ~want_in:true ();
         let t0 = Uctx.gettime () in
         got := Uctx.epoll_wait ep ~max_events:8 ~timeout:(Time.ms 2);
         elapsed := Time.diff (Uctx.gettime ()) t0;
         Uctx.close ep));
  Kernel.run k;
  Alcotest.(check (list int)) "timeout yields []" [] !got;
  Alcotest.(check bool) "waited the full budget" true
    Time.(Time.add Time.zero !elapsed >= Time.add Time.zero (Time.ms 2))

(* --- EOF while an entry is already queued ----------------------------- *)

let test_eof_while_ready () =
  let k = Kernel.boot () in
  let data = ref "" and tail = ref `Unset in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:4 in
         let ep = Uctx.epoll_create () in
         Uctx.epoll_add ep lfd ~want_in:true ();
         (match Uctx.epoll_wait ep ~max_events:8 with
         | [ fd ] when fd = lfd -> ()
         | _ -> Alcotest.fail "listener readiness");
         let cfd =
           match Uctx.accept_nb lfd with
           | `Conn fd -> fd
           | _ -> Alcotest.fail "accept after readiness"
         in
         Uctx.epoll_add ep cfd ~want_in:true ();
         (* sleep past both the client's write and its clean close: the
            data edge and the EOF edge coalesce into one queued entry *)
         Uctx.sleep (Time.ms 20);
         (match Uctx.epoll_wait ep ~max_events:8 with
         | [ fd ] when fd = cfd -> ()
         | _ -> Alcotest.fail "conn readiness");
         (match Uctx.try_read cfd ~len:64 with
         | `Data s -> data := s
         | _ -> Alcotest.fail "expected buffered data before EOF");
         (match Uctx.try_read cfd ~len:64 with
         | `Eof -> tail := `Eof
         | `Data _ -> tail := `Data
         | `Again -> tail := `Again
         | `Reset -> tail := `Reset);
         Uctx.close cfd;
         Uctx.close ep;
         Uctx.close lfd));
  ignore
    (Kernel.spawn k ~name:"client" ~main:(fun () ->
         Uctx.sleep (Time.ms 1);
         let fd = Uctx.connect "svc" in
         Uctx.write_all fd "hello";
         (* clean close: nothing unread inbound on this side *)
         Uctx.close fd));
  Kernel.run k;
  Alcotest.(check string) "data survives the queued EOF" "hello" !data;
  Alcotest.(check bool) "then clean EOF" true (!tail = `Eof)

(* --- RST while an entry is already queued ----------------------------- *)

let test_rst_while_ready () =
  let k = Kernel.boot () in
  let outcome = ref `Unset in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let lfd = Uctx.listen ~name:"svc" ~backlog:4 in
         let ep = Uctx.epoll_create () in
         Uctx.epoll_add ep lfd ~want_in:true ();
         ignore (Uctx.epoll_wait ep ~max_events:8);
         let cfd =
           match Uctx.accept_nb lfd with
           | `Conn fd -> fd
           | _ -> Alcotest.fail "accept after readiness"
         in
         Uctx.epoll_add ep cfd ~want_in:true ();
         (* answer, then wait: the client never reads the reply and
            closes — an abortive close (RST) that fires the same edge
            path as data *)
         (match Uctx.try_read cfd ~len:64 with
         | `Data _ -> ()
         | _ -> ignore (Uctx.epoll_wait ep ~max_events:8));
         Uctx.write_all cfd "reply";
         (match Uctx.epoll_wait ep ~max_events:8 with
         | [ fd ] when fd = cfd -> (
             match Uctx.try_read cfd ~len:64 with
             | `Reset -> outcome := `Reset
             | `Eof -> outcome := `Eof
             | `Data _ -> outcome := `Data
             | `Again -> outcome := `Again)
         | _ -> Alcotest.fail "reset readiness");
         Uctx.close cfd;
         Uctx.close ep;
         Uctx.close lfd));
  ignore
    (Kernel.spawn k ~name:"client" ~main:(fun () ->
         Uctx.sleep (Time.ms 1);
         let fd = Uctx.connect "svc" in
         Uctx.write_all fd "ping";
         (* leave the reply unread long enough for it to be delivered,
            then close: closing with unread inbound data is abortive *)
         Uctx.sleep (Time.ms 10);
         Uctx.close fd));
  Kernel.run k;
  Alcotest.(check bool)
    (Printf.sprintf "reset surfaced through readiness (got %s)"
       (match !outcome with
       | `Reset -> "reset"
       | `Eof -> "eof"
       | `Data -> "data"
       | `Again -> "again"
       | `Unset -> "unset"))
    true (!outcome = `Reset)

(* --- error paths ------------------------------------------------------ *)

let test_errors () =
  let k = Kernel.boot () in
  let eexist = ref false
  and enoent = ref false
  and einval = ref false
  and ebadf = ref false in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         let ep = Uctx.epoll_create () in
         let r, _w = Uctx.pipe () in
         Uctx.epoll_add ep r ~want_in:true ();
         (try Uctx.epoll_add ep r ~want_in:true ()
          with Errno.Unix_error (Errno.EEXIST, _) -> eexist := true);
         (try Uctx.epoll_del ep 999
          with Errno.Unix_error (Errno.ENOENT, _) -> enoent := true);
         (* plain files have no edge sources: registering one is an error *)
         let dfd = Uctx.open_file "/tmp/f" in
         (try Uctx.epoll_add ep dfd ~want_in:true ()
          with Errno.Unix_error (Errno.EINVAL, _) -> einval := true);
         (* an epoll fd is not a stream: read/write are EBADF *)
         (try ignore (Uctx.read ep ~len:1)
          with Errno.Unix_error (Errno.EBADF, _) -> ebadf := true);
         Uctx.close ep));
  (match
     Sunos_kernel.Fs.create_file (Kernel.fs k) ~path:"/tmp/f" ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "fs setup");
  Kernel.run k;
  Alcotest.(check bool) "double add is EEXIST" true !eexist;
  Alcotest.(check bool) "del of unknown is ENOENT" true !enoent;
  Alcotest.(check bool) "plain file is EINVAL" true !einval;
  Alcotest.(check bool) "read on epoll fd is EBADF" true !ebadf

let () =
  Alcotest.run "epoll"
    [
      ( "edges",
        [
          Alcotest.test_case "edge delivery + coalescing" `Quick
            test_edge_and_coalesce;
          Alcotest.test_case "oneshot disarm and re-arm re-check" `Quick
            test_oneshot_rearm;
          Alcotest.test_case "del with pending readiness" `Quick
            test_del_with_pending;
          Alcotest.test_case "stale fd collected" `Quick
            test_stale_fd_collected;
        ] );
      ( "waiting",
        [
          Alcotest.test_case "blocking wait wakes on edge" `Quick
            test_blocking_wakeup;
          Alcotest.test_case "timeout returns empty" `Quick test_wait_timeout;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "EOF while ready" `Quick test_eof_while_ready;
          Alcotest.test_case "RST while ready" `Quick test_rst_while_ready;
          Alcotest.test_case "error paths" `Quick test_errors;
        ] );
    ]
