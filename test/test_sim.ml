(* Unit + property tests for the simulation engine. *)

module Time = Sunos_sim.Time
module Pheap = Sunos_sim.Pheap
module Eventq = Sunos_sim.Eventq
module Rng = Sunos_sim.Rng
module Stats = Sunos_sim.Stats
module Tracebuf = Sunos_sim.Tracebuf
module Univ = Sunos_sim.Univ

let span = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

(* ------------------------------ Time ------------------------------ *)

let test_time_units () =
  Alcotest.check span "us" 1_000L (Time.us 1);
  Alcotest.check span "ms" 1_000_000L (Time.ms 1);
  Alcotest.check span "s" 1_000_000_000L (Time.s 1);
  Alcotest.check span "us_f rounds" 1_500L (Time.us_f 1.5);
  Alcotest.check span "add" 3L (Time.add 1L 2L);
  Alcotest.check span "diff" 5L (Time.diff 8L 3L)

let test_time_compare () =
  Alcotest.(check bool) "lt" true Time.(1L < 2L);
  Alcotest.(check bool) "le eq" true Time.(2L <= 2L);
  Alcotest.(check bool) "gt" false Time.(1L > 2L);
  Alcotest.check span "max" 9L (Time.max 9L 3L);
  Alcotest.check span "min" 3L (Time.min 9L 3L)

let test_time_pp () =
  let s t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "ns" "500ns" (s 500L);
  Alcotest.(check string) "us" "2.00us" (s (Time.us 2));
  Alcotest.(check string) "ms" "3.50ms" (s (Time.us 3500));
  Alcotest.(check string) "s" "2.000s" (s (Time.s 2))

(* ------------------------------ Pheap ------------------------------ *)

let test_pheap_basic () =
  let h = Pheap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Pheap.is_empty h);
  List.iter (Pheap.insert h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "size" 5 (Pheap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Pheap.peek_min h);
  let rec drain acc =
    match Pheap.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (drain [])

let prop_pheap_sorted =
  QCheck.Test.make ~name:"pheap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Pheap.create ~cmp:compare in
      List.iter (Pheap.insert h) xs;
      let rec drain acc =
        match Pheap.pop_min h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* ------------------------------ Eventq ------------------------------ *)

let test_eventq_order () =
  let q = Eventq.create () in
  let log = ref [] in
  ignore (Eventq.at q 30L (fun () -> log := 3 :: !log));
  ignore (Eventq.at q 10L (fun () -> log := 1 :: !log));
  ignore (Eventq.at q 20L (fun () -> log := 2 :: !log));
  Eventq.run q;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.check span "clock at last event" 30L (Eventq.now q)

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Eventq.at q 10L (fun () -> log := i :: !log))
  done;
  Eventq.run q;
  Alcotest.(check (list int)) "FIFO at same instant" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_eventq_cancel () =
  let q = Eventq.create () in
  let fired = ref false in
  let h = Eventq.at q 10L (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Eventq.is_pending h);
  Eventq.cancel h;
  Alcotest.(check bool) "not pending" false (Eventq.is_pending h);
  Eventq.run q;
  Alcotest.(check bool) "cancelled did not fire" false !fired

let test_eventq_past_rejected () =
  let q = Eventq.create () in
  ignore (Eventq.at q 10L (fun () -> ()));
  Eventq.run q;
  Alcotest.check_raises "past" (Invalid_argument "Eventq.at: scheduling in the past")
    (fun () -> ignore (Eventq.at q 5L (fun () -> ())))

let test_eventq_until () =
  let q = Eventq.create () in
  let log = ref [] in
  ignore (Eventq.at q 10L (fun () -> log := 1 :: !log));
  ignore (Eventq.at q 100L (fun () -> log := 2 :: !log));
  Eventq.run ~until:50L q;
  Alcotest.(check (list int)) "only first" [ 1 ] (List.rev !log);
  Alcotest.check span "clock at horizon" 50L (Eventq.now q);
  Eventq.run q;
  Alcotest.(check (list int)) "rest runs" [ 1; 2 ] (List.rev !log)

let test_eventq_cascade () =
  (* events scheduling events *)
  let q = Eventq.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then ignore (Eventq.after q 5L tick)
  in
  ignore (Eventq.after q 5L tick);
  Eventq.run q;
  Alcotest.(check int) "10 ticks" 10 !count;
  Alcotest.check span "clock" 50L (Eventq.now q)

let test_eventq_pending_exact () =
  let q = Eventq.create () in
  let hs = List.init 5 (fun i -> Eventq.at q (Int64.of_int (10 + i)) ignore) in
  Alcotest.(check int) "all pending" 5 (Eventq.pending_count q);
  (* cancel two *back* entries: the count must drop immediately even
     though the heap deletes lazily and nothing has pruned the front *)
  Eventq.cancel (List.nth hs 3);
  Eventq.cancel (List.nth hs 4);
  Alcotest.(check int) "cancels accounted" 3 (Eventq.pending_count q);
  Eventq.run q;
  Alcotest.(check int) "drained" 0 (Eventq.pending_count q)

let test_eventq_cancel_churn () =
  (* the net server's timer re-arm pattern at 10k scale: every handle is
     cancelled before it can fire.  Compaction must keep the heap
     population bounded near the live count instead of letting 10k dead
     handles accumulate. *)
  let q = Eventq.create () in
  for _ = 1 to 10_000 do
    let h = Eventq.after q 1_000_000L ignore in
    Eventq.cancel h
  done;
  Alcotest.(check int) "live exact" 0 (Eventq.pending_count q);
  Alcotest.(check bool)
    (Printf.sprintf "heap bounded (%d)" (Eventq.heap_population q))
    true
    (Eventq.heap_population q <= 128);
  (* interleaved live + cancelled: population stays within ~2x of live *)
  let fired = ref 0 in
  let live = List.init 100 (fun i ->
      Eventq.at q (Int64.of_int (2_000_000 + i)) (fun () -> incr fired))
  in
  for _ = 1 to 10_000 do
    let h = Eventq.after q 3_000_000L ignore in
    Eventq.cancel h
  done;
  Alcotest.(check int) "live exact under churn" 100 (Eventq.pending_count q);
  Alcotest.(check bool)
    (Printf.sprintf "heap within 2x of live (%d)" (Eventq.heap_population q))
    true
    (Eventq.heap_population q <= 2 * List.length live + 128);
  Eventq.run q;
  Alcotest.(check int) "live handles all fired" 100 !fired

let prop_eventq_monotonic =
  QCheck.Test.make ~name:"eventq fires in nondecreasing time order" ~count:100
    QCheck.(list (int_bound 1000))
    (fun delays ->
      let q = Eventq.create () in
      let times = ref [] in
      List.iter
        (fun d ->
          ignore
            (Eventq.at q (Int64.of_int d) (fun () ->
                 times := Eventq.now q :: !times)))
        delays;
      Eventq.run q;
      let ts = List.rev !times in
      let rec mono = function
        | a :: (b :: _ as rest) -> Time.(a <= b) && mono rest
        | _ -> true
      in
      mono ts)

(* ------------------------------ Rng ------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:42L in
  let b = Rng.split a in
  let b_first = Rng.int64 b in
  (* advancing [a] must not change what [b] would have produced *)
  let a' = Rng.create ~seed:42L in
  let b' = Rng.split a' in
  for _ = 1 to 10 do
    ignore (Rng.int64 a')
  done;
  Alcotest.(check bool) "split stream stable" true (Int64.equal b_first (Rng.int64 b'))

let prop_rng_int_bound =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_exponential_positive () =
  let rng = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    let v = Rng.exponential rng ~mean:10. in
    Alcotest.(check bool) "positive" true (v >= 0.)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:3L in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

(* ------------------------------ Stats ------------------------------ *)

let test_counter () =
  let c = Stats.Counter.create "c" in
  Stats.Counter.incr c;
  Stats.Counter.add c 5;
  Alcotest.(check int) "value" 6 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

let test_hist_exact () =
  let h = Stats.Hist.create "h" in
  List.iter (fun x -> Stats.Hist.add h (Int64.of_int x)) [ 10; 20; 30; 40; 50 ];
  Alcotest.(check int) "count" 5 (Stats.Hist.count h);
  Alcotest.(check (float 0.001)) "mean" 30. (Stats.Hist.mean h);
  Alcotest.check span "min" 10L (Stats.Hist.min h);
  Alcotest.check span "max" 50L (Stats.Hist.max h);
  Alcotest.check span "p50" 30L (Stats.Hist.percentile h 0.5);
  Alcotest.check span "p0" 10L (Stats.Hist.percentile h 0.0);
  Alcotest.check span "p100" 50L (Stats.Hist.percentile h 1.0)

let test_hist_decimation () =
  let h = Stats.Hist.create ~capacity:128 "h" in
  for i = 1 to 10_000 do
    Stats.Hist.add h (Int64.of_int i)
  done;
  Alcotest.(check int) "count tracks all" 10_000 (Stats.Hist.count h);
  Alcotest.check span "max exact" 10_000L (Stats.Hist.max h);
  Alcotest.check span "min exact" 1L (Stats.Hist.min h);
  let p50 = Int64.to_float (Stats.Hist.percentile h 0.5) in
  Alcotest.(check bool) "p50 approximately mid" true (p50 > 3000. && p50 < 7000.)

let test_hist_empty () =
  let h = Stats.Hist.create "h" in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Hist.mean h));
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.Hist.percentile: empty") (fun () ->
      ignore (Stats.Hist.percentile h 0.5))

(* ------------------------------ Tracebuf ------------------------------ *)

let test_tracebuf_basic () =
  let t = Tracebuf.create ~capacity:4 () in
  for i = 1 to 6 do
    Tracebuf.emit t ~time:(Int64.of_int i) ~tag:"x" (string_of_int i)
  done;
  let recs = Tracebuf.records t in
  Alcotest.(check int) "capacity bounds" 4 (List.length recs);
  Alcotest.(check int) "dropped" 2 (Tracebuf.dropped t);
  Alcotest.(check string) "oldest kept" "3" (List.hd recs).Tracebuf.msg

let test_tracebuf_find_disable () =
  let t = Tracebuf.create () in
  Tracebuf.emit t ~time:1L ~tag:"a" "one";
  Tracebuf.emit t ~time:2L ~tag:"b" "two";
  Tracebuf.set_enabled t false;
  Tracebuf.emit t ~time:3L ~tag:"a" "three";
  Alcotest.(check int) "find a" 1 (List.length (Tracebuf.find t ~tag:"a"));
  Tracebuf.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Tracebuf.records t))

(* ------------------------------ Univ ------------------------------ *)

let test_univ_roundtrip () =
  let ki : int Univ.key = Univ.key () in
  let ks : string Univ.key = Univ.key () in
  let u = Univ.pack ki 42 in
  Alcotest.(check (option int)) "same key" (Some 42) (Univ.unpack ki u);
  Alcotest.(check (option string)) "other key" None (Univ.unpack ks u);
  let ki2 : int Univ.key = Univ.key () in
  Alcotest.(check (option int)) "distinct keys of same type" None
    (Univ.unpack ki2 u)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sunos_sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "compare" `Quick test_time_compare;
          Alcotest.test_case "pp" `Quick test_time_pp;
        ] );
      ( "pheap",
        [
          Alcotest.test_case "basic" `Quick test_pheap_basic;
          qt prop_pheap_sorted;
        ] );
      ( "eventq",
        [
          Alcotest.test_case "order" `Quick test_eventq_order;
          Alcotest.test_case "fifo ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_eventq_cancel;
          Alcotest.test_case "past rejected" `Quick test_eventq_past_rejected;
          Alcotest.test_case "until" `Quick test_eventq_until;
          Alcotest.test_case "cascade" `Quick test_eventq_cascade;
          Alcotest.test_case "pending exact" `Quick test_eventq_pending_exact;
          Alcotest.test_case "cancel churn" `Quick test_eventq_cancel_churn;
          qt prop_eventq_monotonic;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential" `Quick test_rng_exponential_positive;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          qt prop_rng_int_bound;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "hist exact" `Quick test_hist_exact;
          Alcotest.test_case "hist decimation" `Quick test_hist_decimation;
          Alcotest.test_case "hist empty" `Quick test_hist_empty;
        ] );
      ( "tracebuf",
        [
          Alcotest.test_case "ring" `Quick test_tracebuf_basic;
          Alcotest.test_case "find/disable" `Quick test_tracebuf_find_disable;
        ] );
      ("univ", [ Alcotest.test_case "roundtrip" `Quick test_univ_roundtrip ]);
    ]
