(* Same-seed determinism regression for the dispatcher rewrite.

   The golden values below were recorded from the pre-rewrite dispatcher
   (the PR 1 tree, which scanned and rebuilt a per-priority Queue on every
   dispatch).  The O(1) run-queue rewrite must be behaviour-preserving:
   on fixed seeds the network-server and database workloads must produce
   byte-identical trace tag sequences and identical dispatch/preemption
   counter values.

   To re-record (only legitimate after an *intentional* scheduling-policy
   change): run with SUNOS_PRINT_GOLDENS=1 and paste the output. *)

module Kernel = Sunos_kernel.Kernel
module S = Sunos_workloads.Net_server
module Db = Sunos_workloads.Database
module KV = Sunos_workloads.Kv_store

type probe = {
  tag_digest : string;
  tag_count : int;
  dispatches : int;
  preemptions : int;
}

let probe_of_kernel k =
  let tags =
    List.map (fun r -> r.Sunos_sim.Tracebuf.tag) (Kernel.trace_records k)
  in
  {
    tag_digest = Digest.to_hex (Digest.string (String.concat "," tags));
    tag_count = List.length tags;
    dispatches = Kernel.dispatch_count k;
    preemptions = Kernel.preemption_count k;
  }

let net_probe () =
  let p =
    {
      S.default_params with
      connections = 12;
      requests_per_conn = 2;
      think_time_us = 20_000;
      connect_stagger_us = 500;
      disk_every = 8;
      workers = 4;
      concurrency = 4;
      client_concurrency = 12;
      listen_backlog = 32;
    }
  in
  let out = ref None in
  ignore
    (S.run
       (module Sunos_baselines.Mt)
       ~cpus:2 ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

(* The epoll server under the open-loop Poisson generator: readiness
   lists, ONESHOT re-arms and the catch-up sender all on the golden
   path.  Small enough to stay well under the trace-ring cap. *)
let net_epoll_probe () =
  let p =
    {
      S.default_params with
      connections = 12;
      requests_per_conn = 2;
      disk_every = 8;
      workers = 4;
      concurrency = 8;
      listen_backlog = 32;
      epoll = true;
      open_loop = true;
      pollers = 2;
      connectors = 2;
      arrival_rate_rps = 400.;
      max_pending = 2;
      drain_grace_us = 2_000_000;
    }
  in
  let out = ref None in
  ignore
    (S.run
       (module Sunos_baselines.Mt)
       ~cpus:2 ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let db_probe () =
  let p =
    {
      Db.default_params with
      processes = 2;
      threads_per_process = 4;
      records = 16;
      transactions_per_thread = 10;
    }
  in
  let out = ref None in
  ignore
    (Db.run ~cpus:2 ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let kv_probe ~procs () =
  let p =
    {
      KV.default_params with
      server_procs = procs;
      shards = 4;
      clients = 6;
      requests_per_client = 4;
      workers_per_server = 3;
      think_time_us = 500;
    }
  in
  let out = ref None in
  ignore
    (KV.run ~cpus:2 ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let print_goldens () =
  let show name p =
    Printf.printf
      "%s: digest=%S tag_count=%d dispatches=%d preemptions=%d\n" name
      p.tag_digest p.tag_count p.dispatches p.preemptions
  in
  show "net" (net_probe ());
  show "net-epoll" (net_epoll_probe ());
  show "db" (db_probe ());
  show "kv" (kv_probe ~procs:2 ())

(* --- recorded goldens (pre-rewrite dispatcher, fixed seeds) ----------- *)

let golden_net =
  {
    tag_digest = "8fffe7b5bfb695c486aa300e034e1cb7";
    tag_count = 544;
    dispatches = 223;
    preemptions = 31;
  }

let golden_db =
  {
    tag_digest = "ce1dad7ea79bac69892ce0bd4b57df7a";
    tag_count = 128;
    dispatches = 64;
    preemptions = 0;
  }

(* Recorded when the epoll server + open-loop generator landed. *)
let golden_net_epoll =
  {
    tag_digest = "c2ca74fcfda3833e951a1f91804d96fd";
    tag_count = 732;
    dispatches = 276;
    preemptions = 13;
  }

(* Recorded when the kv store landed (process-shared synchronization). *)
let golden_kv =
  {
    tag_digest = "3078f6e4f062459f550fc3c01a64eedf";
    tag_count = 473;
    dispatches = 190;
    preemptions = 17;
  }

let check name golden actual =
  Alcotest.(check string)
    (name ^ " trace tag digest") golden.tag_digest actual.tag_digest;
  Alcotest.(check int) (name ^ " trace tag count") golden.tag_count
    actual.tag_count;
  Alcotest.(check int) (name ^ " dispatches") golden.dispatches
    actual.dispatches;
  Alcotest.(check int) (name ^ " preemptions") golden.preemptions
    actual.preemptions

let test_net () = check "net-server" golden_net (net_probe ())

let test_net_epoll () =
  check "net-server-epoll" golden_net_epoll (net_epoll_probe ())
let test_db () = check "database" golden_db (db_probe ())
let test_kv () = check "kv-store" golden_kv (kv_probe ~procs:2 ())

(* The kv store forks server processes and synchronizes them through a
   shared segment; same-seed runs must stay bit-identical at any process
   count — more processes change the schedule, never make it random. *)
let test_kv_run_to_run () =
  List.iter
    (fun procs ->
      let a = kv_probe ~procs () and b = kv_probe ~procs () in
      check (Printf.sprintf "kv procs=%d run-to-run" procs) a b)
    [ 2; 3 ]

let () =
  if Sys.getenv_opt "SUNOS_PRINT_GOLDENS" <> None then print_goldens ()
  else
    Alcotest.run "determinism"
      [
        ( "golden",
          [
            Alcotest.test_case "net-server same-seed" `Quick test_net;
            Alcotest.test_case "net-server epoll+open-loop same-seed" `Quick
              test_net_epoll;
            Alcotest.test_case "database same-seed" `Quick test_db;
            Alcotest.test_case "kv-store same-seed" `Quick test_kv;
            Alcotest.test_case "kv-store run-to-run x procs" `Quick
              test_kv_run_to_run;
          ] );
      ]
