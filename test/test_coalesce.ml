(* Run-ahead charge coalescing must be invisible to the simulation: the
   kernel grants a resumed fiber a CPU budget bounded by its remaining
   quantum, the next pending event, and the cost model's coalesce
   window, and settles the accumulated slice in one event — so with the
   budget capped strictly below every observable horizon, a coalesced
   run and a charge-by-charge run must produce byte-identical traces and
   identical per-LWP accounted CPU.

   This suite pins that equivalence on the three paper workloads and on
   targeted budget edges: quantum expiry mid-ledger, a signal landing
   during the run-ahead window, and parking with an unsettled ledger. *)

module Time = Sunos_sim.Time
module Eventq = Sunos_sim.Eventq
module Cost = Sunos_hw.Cost_model
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Procfs = Sunos_kernel.Procfs
module Sysdefs = Sunos_kernel.Sysdefs
module Signo = Sunos_kernel.Signo
module Libthread = Sunos_threads.Libthread
module T = Sunos_threads.Thread
module S = Sunos_workloads.Net_server
module Db = Sunos_workloads.Database
module W = Sunos_workloads.Window_system

let cost_off = { Cost.default with coalesce = false }
let cost_of ~coalesce = if coalesce then Cost.default else cost_off

(* Everything the optimization could plausibly disturb: the trace tag
   stream, scheduling counters, the clock, and each LWP's accounted
   user/system CPU as /proc reports it. *)
type probe = {
  tag_digest : string;
  tag_count : int;
  dispatches : int;
  preemptions : int;
  end_time : Time.t;
  cpu : (int * string * (int * Time.span * Time.span) list) list;
      (* pid, "utime/stime", per-LWP (lwpid, utime, stime) *)
}

let probe_of_kernel k =
  let tags =
    List.map (fun r -> r.Sunos_sim.Tracebuf.tag) (Kernel.trace_records k)
  in
  {
    tag_digest = Digest.to_hex (Digest.string (String.concat "," tags));
    tag_count = List.length tags;
    dispatches = Kernel.dispatch_count k;
    preemptions = Kernel.preemption_count k;
    end_time = Kernel.now k;
    cpu =
      List.map
        (fun pi ->
          ( pi.Procfs.pi_pid,
            Printf.sprintf "%Ld/%Ld" pi.Procfs.pi_utime pi.Procfs.pi_stime,
            List.map
              (fun li ->
                ( li.Procfs.li_lwpid,
                  li.Procfs.li_utime,
                  li.Procfs.li_stime ))
              pi.Procfs.pi_lwps ))
        (Procfs.snapshot k);
  }

let check_equal name (off : probe) (on : probe) =
  Alcotest.(check string) (name ^ " trace digest") off.tag_digest on.tag_digest;
  Alcotest.(check int) (name ^ " trace count") off.tag_count on.tag_count;
  Alcotest.(check int) (name ^ " dispatches") off.dispatches on.dispatches;
  Alcotest.(check int) (name ^ " preemptions") off.preemptions on.preemptions;
  Alcotest.(check int64) (name ^ " end time") off.end_time on.end_time;
  Alcotest.(check int)
    (name ^ " process count")
    (List.length off.cpu) (List.length on.cpu);
  List.iter2
    (fun (pid0, t0, lwps0) (pid1, t1, lwps1) ->
      Alcotest.(check int) (name ^ " pid") pid0 pid1;
      Alcotest.(check string)
        (Printf.sprintf "%s pid %d proc cpu" name pid0)
        t0 t1;
      List.iter2
        (fun (id0, u0, s0) (id1, u1, s1) ->
          Alcotest.(check int) (name ^ " lwpid") id0 id1;
          Alcotest.(check int64)
            (Printf.sprintf "%s pid %d lwp %d utime" name pid0 id0)
            u0 u1;
          Alcotest.(check int64)
            (Printf.sprintf "%s pid %d lwp %d stime" name pid0 id0)
            s0 s1)
        lwps0 lwps1)
    off.cpu on.cpu

(* --- the three pinned workloads, coalescing off vs on ---------------- *)

let net_probe ~coalesce =
  let p =
    {
      S.default_params with
      connections = 12;
      requests_per_conn = 2;
      think_time_us = 20_000;
      connect_stagger_us = 500;
      compute_steps = 4;
      disk_every = 8;
      workers = 4;
      concurrency = 4;
      client_concurrency = 12;
      listen_backlog = 32;
    }
  in
  let out = ref None in
  ignore
    (S.run
       (module Sunos_baselines.Mt)
       ~cpus:2 ~cost:(cost_of ~coalesce) ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let db_probe ~mmap ~coalesce =
  let p =
    {
      Db.default_params with
      processes = 2;
      threads_per_process = 4;
      records = 16;
      transactions_per_thread = 10;
      mmap_io = mmap;
    }
  in
  let out = ref None in
  ignore
    (Db.run ~cpus:2 ~cost:(cost_of ~coalesce) ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let window_probe ~coalesce =
  let p = { W.default_params with widgets = 30; events = 120 } in
  let out = ref None in
  ignore
    (W.run
       (module Sunos_baselines.Mt)
       ~cpus:2 ~cost:(cost_of ~coalesce) ~trace:true
       ~debrief:(fun k -> out := Some (probe_of_kernel k))
       p);
  Option.get !out

let test_net () =
  check_equal "net-server" (net_probe ~coalesce:false) (net_probe ~coalesce:true)

let test_db () =
  check_equal "database"
    (db_probe ~mmap:false ~coalesce:false)
    (db_probe ~mmap:false ~coalesce:true)

let test_db_mmap () =
  check_equal "database-mmap"
    (db_probe ~mmap:true ~coalesce:false)
    (db_probe ~mmap:true ~coalesce:true)

let test_window () =
  check_equal "window-system"
    (window_probe ~coalesce:false)
    (window_probe ~coalesce:true)

(* --- budget edges ---------------------------------------------------- *)

(* Run a two-process program under both modes and compare probes. *)
let edge_probe prog ~coalesce =
  let k = Kernel.boot ~cpus:1 ~cost:(cost_of ~coalesce) () in
  prog k;
  Kernel.run k;
  probe_of_kernel k

let check_edge name prog =
  check_equal name (edge_probe prog ~coalesce:false)
    (edge_probe prog ~coalesce:true)

(* Quantum expiry mid-ledger: two competing CPU hogs on one CPU charge
   in 1ms slices, far past the timeshare quantum, so run-ahead windows
   end on quantum exhaustion and expiry lands mid-accumulation.  The
   preemption count and both LWPs' accounted CPU must not move. *)
let test_quantum_expiry () =
  check_edge "quantum-expiry" (fun k ->
      for i = 1 to 2 do
        ignore
          (Kernel.spawn k
             ~name:(Printf.sprintf "hog%d" i)
             ~main:(fun () ->
               for _ = 1 to 400 do
                 Uctx.charge_us 1_000
               done))
      done)

(* A signal posted during run-ahead: a real-timer expiry (an event, so
   it bounds the granted budget) fires while the fiber is mid-window;
   the handler must run at the same instant and see the same accounted
   CPU in both modes. *)
let test_signal_during_runahead () =
  check_edge "signal-during-runahead" (fun k ->
      ignore
        (Kernel.spawn k ~name:"alarmed" ~main:(fun () ->
             let fired = ref 0 in
             ignore
               (Uctx.sigaction Signo.sigalrm
                  (Sysdefs.Sig_handler (fun _ -> incr fired)));
             Uctx.setitimer Sysdefs.Timer_real (Some (Time.ms 5));
             for _ = 1 to 40 do
               Uctx.charge_us 500
             done;
             if !fired <> 1 then failwith "alarm did not fire exactly once")))

(* Parking with an unsettled ledger: user-level threads charge and then
   block in the kernel, so their LWP parks while the ledger holds an
   unsettled prefix; the settle event must land before the park in both
   modes. *)
let test_park_unsettled () =
  check_edge "park-unsettled" (fun k ->
      ignore
        (Kernel.spawn k ~name:"parker"
           ~main:
             (Libthread.boot (fun () ->
                  T.setconcurrency 2;
                  let ts =
                    List.init 3 (fun i ->
                        T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                            for _ = 1 to 10 do
                              Uctx.charge_us (300 + (i * 70));
                              Uctx.sleep (Time.us 900)
                            done))
                  in
                  List.iter (fun t -> ignore (T.wait ~thread:t ())) ts))))

(* --- the event queue micro-fix: on_drain fires in registration order *)

let test_on_drain_order () =
  let q = Eventq.create () in
  let order = ref [] in
  List.iter
    (fun i -> Eventq.on_drain q (fun () -> order := i :: !order))
    [ 1; 2; 3 ];
  ignore (Eventq.at q 5L ignore);
  Eventq.run q;
  Alcotest.(check (list int)) "registration order" [ 1; 2; 3 ]
    (List.rev !order)

let () =
  Alcotest.run "coalesce"
    [
      ( "equivalence",
        [
          Alcotest.test_case "net-server off=on" `Quick test_net;
          Alcotest.test_case "database off=on" `Quick test_db;
          Alcotest.test_case "database-mmap off=on" `Quick test_db_mmap;
          Alcotest.test_case "window-system off=on" `Quick test_window;
        ] );
      ( "budget-edges",
        [
          Alcotest.test_case "quantum expiry mid-ledger" `Quick
            test_quantum_expiry;
          Alcotest.test_case "signal during run-ahead" `Quick
            test_signal_during_runahead;
          Alcotest.test_case "park with unsettled ledger" `Quick
            test_park_unsettled;
        ] );
      ( "eventq",
        [
          Alcotest.test_case "on_drain registration order" `Quick
            test_on_drain_order;
        ] );
    ]
