module Shm = Sunos_hw.Shared_memory

type file = {
  path : string;
  seg : Shm.t;
  mutable data : Bytes.t;
  mutable len : int;
}

type t = { files : (string, file) Hashtbl.t }

let create () = { files = Hashtbl.create 32 }
let lookup t p = Hashtbl.find_opt t.files p

let create_file t ~path ?(size = 1 lsl 20) () =
  if Hashtbl.mem t.files path then Error Errno.EEXIST
  else begin
    let f =
      {
        path;
        seg = Shm.create ~name:path ~size;
        data = Bytes.create 256;
        len = 0;
      }
    in
    Hashtbl.replace t.files path f;
    Ok f
  end

let unlink t p =
  if Hashtbl.mem t.files p then begin
    Hashtbl.remove t.files p;
    Ok ()
  end
  else Error Errno.ENOENT

let path f = f.path
let segment f = f.seg
let size f = f.len

let ensure_capacity f n =
  if n > Bytes.length f.data then begin
    let cap = ref (Bytes.length f.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit f.data 0 bigger 0 f.len;
    f.data <- bigger
  end

let read f ~pos ~len =
  if pos >= f.len || len <= 0 then ""
  else
    let n = min len (f.len - pos) in
    Bytes.sub_string f.data pos n

let write f ~pos s =
  let n = String.length s in
  if n = 0 then 0
  else begin
    ensure_capacity f (pos + n);
    if pos > f.len then Bytes.fill f.data f.len (pos - f.len) '\000';
    Bytes.blit_string s 0 f.data pos n;
    f.len <- max f.len (pos + n);
    n
  end

let pages_touched ~pos ~len =
  if len <= 0 then []
  else begin
    let first = Shm.page_of_offset ~offset:pos in
    let last = Shm.page_of_offset ~offset:(pos + len - 1) in
    List.init (last - first + 1) (fun i -> first + i)
  end

let file_count t = Hashtbl.length t.files
let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.files []
