(** Signal numbers and their architecture-level classification.

    The paper divides signals into {e traps} — caused synchronously by the
    operation of a thread and handled only by that thread — and
    {e interrupts} — caused asynchronously from outside the process and
    handled by any one thread that has the signal enabled in its mask.
    [SIGWAITING] is the paper's new signal, sent when all LWPs of a
    process are blocked in indefinite waits. *)

type t = int

val sighup : t
val sigint : t
val sigquit : t
val sigill : t
val sigtrap : t
val sigabrt : t
val sigfpe : t
val sigkill : t
val sigbus : t
val sigsegv : t
val sigsys : t
val sigpipe : t
val sigalrm : t
val sigterm : t
val sigusr1 : t
val sigusr2 : t
val sigchld : t
val sigstop : t
val sigtstp : t
val sigcont : t
val sigvtalrm : t
val sigprof : t
val sigio : t
val sigxcpu : t
val sigwaiting : t

val max_sig : t
val all : t list

type kind = Trap | Interrupt

val kind : t -> kind
(** Per the paper: SIGILL, SIGTRAP, SIGFPE, SIGBUS, SIGSEGV, SIGSYS (and
    SIGPIPE) are traps; everything else is an interrupt. *)

type default_action = Act_exit | Act_core | Act_ignore | Act_stop | Act_continue

val default_action : t -> default_action
val name : t -> string
val pp : Format.formatter -> t -> unit
