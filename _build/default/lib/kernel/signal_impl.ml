(* Signal policy, per the paper's model:

   - Traps are caused synchronously and handled only by the faulting
     thread (LWP-directed posting).
   - Interrupts are process-directed; the kernel picks ONE LWP with the
     signal unmasked (preferring one in an interruptible sleep so that
     delivery is prompt); if every LWP masks it, the signal pends on the
     process until some LWP unmasks it.  Received count <= sent count.
   - SIG_DFL / SIG_IGN actions apply to the whole process.
   - Delivery happens at return-to-user-mode points: the kernel marks the
     signal deliverable on the chosen LWP and (if sleeping interruptibly)
     interrupts the sleep with EINTR; the user-side wrappers pick the
     handler closures up via Sys_sig_pickup and run them in-context. *)

open Ktypes
module K = Kernel_impl

let rec default_action k proc signo =
  match Signo.default_action signo with
  | Signo.Act_ignore -> ()
  | Signo.Act_exit | Signo.Act_core ->
      K.proc_exit k proc ~status:(128 + signo)
  | Signo.Act_stop -> stop_proc k proc
  | Signo.Act_continue -> cont_proc k proc

and stop_proc k proc =
  if (not proc.stopped) && proc.pstate = Palive then begin
    proc.stopped <- true;
    K.trace k "stop" "pid%d stopped" proc.pid;
    List.iter
      (fun l ->
        match l.lstate with
        | Lrunnable -> l.lstate <- Lstopped (* queue entry goes stale *)
        | Lrunning c ->
            Sunos_hw.Cpu.set_need_resched k.machine.Sunos_hw.Machine.cpus.(c)
              true
        | Lsleeping | Lstopped | Lzombie -> ())
      proc.lwps;
    K.kick k
  end

and cont_proc k proc =
  if proc.stopped && proc.pstate = Palive then begin
    proc.stopped <- false;
    K.trace k "continue" "pid%d continued" proc.pid;
    List.iter
      (fun l -> if l.lstate = Lstopped then K.make_runnable k l)
      proc.lwps
  end

(* Mark [signo] deliverable on [lwp] and make sure it will reach a
   delivery point soon. *)
let make_deliverable k lwp signo =
  Queue.add signo lwp.deliverable;
  K.interrupt_sleep k lwp

(* Choose the LWP an interrupt is handed to.  Preference order: sleeping
   interruptible (prompt delivery), then running/runnable.  Within a
   class, the first in LWP order — deterministic. *)
let pick_recipient proc signo =
  let eligible =
    List.filter
      (fun l -> lwp_alive l && not (Sigset.mem signo l.sigmask))
      proc.lwps
  in
  let sleeping_interruptible =
    List.find_opt
      (fun l ->
        match (l.lstate, l.sleep) with
        | Lsleeping, Some sl -> sl.sl_interruptible
        | _ -> false)
      eligible
  in
  match sleeping_interruptible with
  | Some l -> Some l
  | None -> (
      match
        List.find_opt
          (fun l ->
            match l.lstate with
            | Lrunnable | Lrunning _ -> true
            | Lsleeping | Lstopped | Lzombie -> false)
          eligible
      with
      | Some l -> Some l
      | None -> List.nth_opt eligible 0)

(* Process-directed signal (an "interrupt" in the paper's terms). *)
let post_proc k proc signo =
  if proc.pstate = Palive then begin
    K.trace k "signal" "pid%d <- %s" proc.pid (Signo.name signo);
    if signo = Signo.sigkill then K.proc_exit k proc ~status:(128 + signo)
    else begin
      if signo = Signo.sigcont then cont_proc k proc;
      match proc.handlers.(signo) with
      | Sysdefs.Sig_ignore -> ()
      | Sysdefs.Sig_default -> default_action k proc signo
      | Sysdefs.Sig_handler _ -> (
          match pick_recipient proc signo with
          | Some lwp -> make_deliverable k lwp signo
          | None ->
              (* everyone masks it: pend on the process *)
              proc.proc_sig_pending <- proc.proc_sig_pending @ [ signo ])
    end
  end

(* LWP-directed signal (a trap, thread_kill target, or per-LWP timer). *)
let post_lwp k lwp signo =
  let proc = lwp.proc in
  if proc.pstate = Palive && lwp_alive lwp then begin
    K.trace k "signal" "pid%d/lwp%d <- %s" proc.pid lwp.lid (Signo.name signo);
    if signo = Signo.sigkill then K.proc_exit k proc ~status:(128 + signo)
    else
      match proc.handlers.(signo) with
      | Sysdefs.Sig_ignore -> ()
      | Sysdefs.Sig_default -> default_action k proc signo
      | Sysdefs.Sig_handler _ ->
          if Sigset.mem signo lwp.sigmask then
            lwp.lwp_sig_pending <- lwp.lwp_sig_pending @ [ signo ]
          else make_deliverable k lwp signo
  end

(* After a mask change, formerly pended signals may become deliverable:
   LWP-directed ones first, then process-wide pended ones (any unmasking
   LWP may take those). *)
let mask_changed k lwp =
  let deliverable_now, still_masked =
    List.partition
      (fun s -> not (Sigset.mem s lwp.sigmask))
      lwp.lwp_sig_pending
  in
  lwp.lwp_sig_pending <- still_masked;
  List.iter (fun s -> make_deliverable k lwp s) deliverable_now;
  let proc = lwp.proc in
  let taken, remaining =
    List.partition
      (fun s ->
        (not (Sigset.mem s lwp.sigmask))
        &&
        match proc.handlers.(s) with
        | Sysdefs.Sig_handler _ -> true
        | Sysdefs.Sig_default | Sysdefs.Sig_ignore -> false)
      proc.proc_sig_pending
  in
  proc.proc_sig_pending <- remaining;
  List.iter (fun s -> make_deliverable k lwp s) taken

(* The Sys_sig_pickup payload: drain the LWP's deliverable queue,
   re-evaluating dispositions at delivery time (a handler may have been
   reset since posting). *)
let pickup k lwp =
  let proc = lwp.proc in
  let rec drain acc =
    match Queue.take_opt lwp.deliverable with
    | None -> List.rev acc
    | Some signo -> (
        match proc.handlers.(signo) with
        | Sysdefs.Sig_handler _ as d -> drain ((signo, d) :: acc)
        | Sysdefs.Sig_ignore -> drain acc
        | Sysdefs.Sig_default ->
            default_action k proc signo;
            drain acc)
  in
  drain []

let install k =
  k.hook_post_proc <- post_proc k;
  k.hook_post_lwp <- post_lwp k
