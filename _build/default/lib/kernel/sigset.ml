type t = int64

let bit s = Int64.shift_left 1L s
let empty = 0L
let full = -1L
let add s t = Int64.logor t (bit s)
let remove s t = Int64.logand t (Int64.lognot (bit s))

let mem s t =
  if s = Signo.sigkill || s = Signo.sigstop then false
  else Int64.logand t (bit s) <> 0L

let of_list l = List.fold_left (fun acc s -> add s acc) empty l

let to_list t =
  List.filter (fun s -> Int64.logand t (bit s) <> 0L) Signo.all

let union = Int64.logor
let inter = Int64.logand
let diff a b = Int64.logand a (Int64.lognot b)
let equal = Int64.equal

type how = Sig_block | Sig_unblock | Sig_setmask

let apply how set ~old =
  match how with
  | Sig_block -> union old set
  | Sig_unblock -> diff old set
  | Sig_setmask -> set

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Signo.pp)
    (to_list t)
