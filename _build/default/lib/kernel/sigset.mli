(** Signal sets as 64-bit masks, plus the [sigprocmask]-style operations. *)

type t

val empty : t
val full : t
(** All signals.  SIGKILL and SIGSTOP are unmaskable: [mem] treats them as
    never blocked regardless of the set contents. *)

val add : Signo.t -> t -> t
val remove : Signo.t -> t -> t
val mem : Signo.t -> t -> bool
val of_list : Signo.t list -> t
val to_list : t -> Signo.t list
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool

type how = Sig_block | Sig_unblock | Sig_setmask

val apply : how -> t -> old:t -> t
val pp : Format.formatter -> t -> unit
