lib/kernel/uctx.ml: Effect Errno Format List Printexc Sunos_sim Sysdefs
