lib/kernel/fs.mli: Errno Sunos_hw
