lib/kernel/syscall_impl.ml: Array Errno Fs Hashtbl Int64 Kernel_impl Ktypes List Netchan Pipe Queue Signal_impl Signo Sigset String Sunos_hw Sunos_sim Sysdefs
