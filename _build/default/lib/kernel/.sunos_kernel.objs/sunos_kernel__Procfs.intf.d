lib/kernel/procfs.mli: Format Ktypes Sunos_sim
