lib/kernel/pipe.mli:
