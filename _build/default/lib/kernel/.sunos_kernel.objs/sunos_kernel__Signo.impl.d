lib/kernel/signo.ml: Format
