lib/kernel/procfs.ml: Format Hashtbl Int64 Kernel_impl Ktypes List Option Printf Sunos_sim
