lib/kernel/signal_impl.ml: Array Kernel_impl Ktypes List Queue Signo Sigset Sunos_hw Sysdefs
