lib/kernel/netchan.mli:
