lib/kernel/kernel_impl.ml: Array Effect Errno Fs Hashtbl Int64 Ktypes List Pipe Printexc Queue Signo Sigset Sunos_hw Sunos_sim Sysdefs Uctx
