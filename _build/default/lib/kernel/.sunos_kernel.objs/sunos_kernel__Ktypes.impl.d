lib/kernel/ktypes.ml: Effect Fs Hashtbl List Netchan Pipe Queue Signo Sigset Sunos_hw Sunos_sim Sysdefs Uctx
