lib/kernel/kernel.mli: Fs Ktypes Sunos_hw Sunos_sim
