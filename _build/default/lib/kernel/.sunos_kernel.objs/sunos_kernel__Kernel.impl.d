lib/kernel/kernel.ml: Kernel_impl Ktypes Signal_impl Sunos_hw Sunos_sim Syscall_impl
