lib/kernel/uctx.mli: Effect Netchan Printexc Signo Sigset Sunos_hw Sunos_sim Sysdefs
