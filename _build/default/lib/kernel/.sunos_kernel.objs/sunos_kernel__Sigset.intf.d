lib/kernel/sigset.mli: Format Signo
