lib/kernel/pipe.ml: Buffer List String
