lib/kernel/signo.mli: Format
