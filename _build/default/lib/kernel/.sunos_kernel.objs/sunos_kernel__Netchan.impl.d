lib/kernel/netchan.ml: List Queue
