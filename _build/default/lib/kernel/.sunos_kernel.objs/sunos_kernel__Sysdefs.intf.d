lib/kernel/sysdefs.mli: Errno Format Netchan Signo Sigset Sunos_hw Sunos_sim
