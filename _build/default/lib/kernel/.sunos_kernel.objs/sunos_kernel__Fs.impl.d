lib/kernel/fs.ml: Bytes Errno Hashtbl List String Sunos_hw
