lib/kernel/sysdefs.ml: Errno Format List Netchan Signo Sigset Sunos_hw Sunos_sim
