lib/kernel/errno.ml: Format Printexc Printf
