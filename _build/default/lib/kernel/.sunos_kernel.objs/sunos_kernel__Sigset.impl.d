lib/kernel/sigset.ml: Format Int64 List Signo
