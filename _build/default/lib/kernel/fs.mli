(** In-memory filesystem with mappable files.

    Files live in a flat path namespace.  Each file owns a backing
    {!Sunos_hw.Shared_memory} segment: [mmap]ing the file hands that very
    segment to the caller, which is how synchronization variables placed
    in files are shared between processes and outlive their creator (the
    paper's Figure 1).  The segment's page-residency bits double as the
    page cache: reads and writes of non-resident pages cost disk I/O. *)

type file

type t
(** The filesystem (one per machine). *)

val create : unit -> t
val lookup : t -> string -> file option

val create_file : t -> path:string -> ?size:int -> unit -> (file, Errno.t) result
(** Default mappable size: 1 MiB.  [Error EEXIST] if the path exists. *)

val unlink : t -> string -> (unit, Errno.t) result
(** The file disappears from the namespace; its segment (and any mapped
    sync variables) lives on for processes that still map it. *)

val path : file -> string
val segment : file -> Sunos_hw.Shared_memory.t
val size : file -> int
(** Current data length (not the mappable size). *)

val read : file -> pos:int -> len:int -> string
(** Bytes actually available; may be shorter than [len] (EOF). *)

val write : file -> pos:int -> string -> int
(** Returns bytes written; extends the file as needed. *)

val pages_touched : pos:int -> len:int -> int list
(** Page indexes covered by a byte range (for residency charging). *)

val file_count : t -> int
val paths : t -> string list
