type t = int

let sighup = 1
let sigint = 2
let sigquit = 3
let sigill = 4
let sigtrap = 5
let sigabrt = 6
let sigfpe = 8
let sigkill = 9
let sigbus = 10
let sigsegv = 11
let sigsys = 12
let sigpipe = 13
let sigalrm = 14
let sigterm = 15
let sigusr1 = 16
let sigusr2 = 17
let sigchld = 18
let sigstop = 23
let sigtstp = 24
let sigcont = 25
let sigvtalrm = 28
let sigprof = 29
let sigio = 22
let sigxcpu = 30
let sigwaiting = 32
let max_sig = 32

let all =
  [
    sighup; sigint; sigquit; sigill; sigtrap; sigabrt; sigfpe; sigkill;
    sigbus; sigsegv; sigsys; sigpipe; sigalrm; sigterm; sigusr1; sigusr2;
    sigchld; sigio; sigstop; sigtstp; sigcont; sigvtalrm; sigprof; sigxcpu;
    sigwaiting;
  ]

type kind = Trap | Interrupt

let kind s =
  if s = sigill || s = sigtrap || s = sigfpe || s = sigbus || s = sigsegv
     || s = sigsys || s = sigpipe
  then Trap
  else Interrupt

type default_action = Act_exit | Act_core | Act_ignore | Act_stop | Act_continue

let default_action s =
  if s = sigchld || s = sigwaiting || s = sigio then Act_ignore
  else if s = sigstop || s = sigtstp then Act_stop
  else if s = sigcont then Act_continue
  else if s = sigill || s = sigtrap || s = sigabrt || s = sigfpe || s = sigbus
          || s = sigsegv || s = sigsys || s = sigquit
  then Act_core
  else Act_exit

let name s =
  if s = sighup then "SIGHUP"
  else if s = sigint then "SIGINT"
  else if s = sigquit then "SIGQUIT"
  else if s = sigill then "SIGILL"
  else if s = sigtrap then "SIGTRAP"
  else if s = sigabrt then "SIGABRT"
  else if s = sigfpe then "SIGFPE"
  else if s = sigkill then "SIGKILL"
  else if s = sigbus then "SIGBUS"
  else if s = sigsegv then "SIGSEGV"
  else if s = sigsys then "SIGSYS"
  else if s = sigpipe then "SIGPIPE"
  else if s = sigalrm then "SIGALRM"
  else if s = sigterm then "SIGTERM"
  else if s = sigusr1 then "SIGUSR1"
  else if s = sigusr2 then "SIGUSR2"
  else if s = sigchld then "SIGCHLD"
  else if s = sigio then "SIGIO"
  else if s = sigstop then "SIGSTOP"
  else if s = sigtstp then "SIGTSTP"
  else if s = sigcont then "SIGCONT"
  else if s = sigvtalrm then "SIGVTALRM"
  else if s = sigprof then "SIGPROF"
  else if s = sigxcpu then "SIGXCPU"
  else if s = sigwaiting then "SIGWAITING"
  else "SIG#" ^ string_of_int s

let pp ppf s = Format.pp_print_string ppf (name s)
