(** Measurement plumbing: counters, gauges and duration histograms.

    Benchmarks report simulated-time distributions, so the histogram
    stores exact nanosecond samples (capped reservoir) alongside streaming
    aggregates — exact percentiles matter more than memory here. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit
end

module Hist : sig
  type t

  val create : ?capacity:int -> string -> t
  (** [capacity] bounds the stored samples (default 100_000); past it, a
      deterministic every-k-th decimation keeps the reservoir bounded. *)

  val add : t -> Time.span -> unit
  val count : t -> int
  val mean : t -> float
  (** In nanoseconds; [nan] when empty. *)

  val min : t -> Time.span
  val max : t -> Time.span
  val percentile : t -> float -> Time.span
  (** [percentile h 0.99] etc.; raises [Invalid_argument] when empty or
      when the fraction lies outside [0,1]. *)

  val name : t -> string
  val reset : t -> unit

  val pp_summary : Format.formatter -> t -> unit
  (** One line: name, n, mean, p50, p90, p99, max. *)
end
