type handle = {
  time : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable fired : bool;
}

type t = {
  heap : handle Pheap.t;
  mutable now : Time.t;
  mutable next_seq : int;
  mutable live : int;
  mutable fired_count : int;
}

let cmp a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { heap = Pheap.create ~cmp; now = Time.zero; next_seq = 0; live = 0;
    fired_count = 0 }

let now q = q.now

let at q time action =
  if Time.(time < q.now) then
    invalid_arg "Eventq.at: scheduling in the past";
  let h = { time; seq = q.next_seq; action; cancelled = false; fired = false } in
  q.next_seq <- q.next_seq + 1;
  Pheap.insert q.heap h;
  q.live <- q.live + 1;
  h

let after q d action = at q (Time.add q.now d) action

let cancel h =
  if (not h.cancelled) && not h.fired then begin
    h.cancelled <- true
  end

let is_pending h = (not h.cancelled) && not h.fired

(* Lazy deletion: cancelled events stay in the heap and are skipped when
   popped.  [live] tracks the non-cancelled population. *)
let rec run_one q =
  match Pheap.pop_min q.heap with
  | None -> false
  | Some h ->
      if h.cancelled then run_one q
      else begin
        q.now <- h.time;
        h.fired <- true;
        q.live <- q.live - 1;
        q.fired_count <- q.fired_count + 1;
        h.action ();
        true
      end

let rec peek_live q =
  match Pheap.peek_min q.heap with
  | None -> None
  | Some h ->
      if h.cancelled then begin
        ignore (Pheap.pop_min q.heap);
        peek_live q
      end
      else Some h

let run ?until ?max_events q =
  let fired = ref 0 in
  let continue () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let rec loop () =
    if continue () then
      match peek_live q with
      | None -> ()
      | Some h -> (
          match until with
          | Some horizon when Time.(h.time > horizon) -> q.now <- horizon
          | _ ->
              if run_one q then begin
                incr fired;
                loop ()
              end)
  in
  loop ();
  (* If we stopped on the horizon with an empty queue, still advance. *)
  match until with
  | Some horizon when Pheap.is_empty q.heap && Time.(q.now < horizon) ->
      q.now <- horizon
  | _ -> ()

let pending_count q =
  (* Prune stale cancelled entries at the front for a tighter answer. *)
  ignore (peek_live q);
  q.live

let events_fired q = q.fired_count
