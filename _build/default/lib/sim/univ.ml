(* The standard existential-by-extensible-variant encoding: each key adds
   a constructor carrying 'a, plus a projection that only matches its own
   constructor. *)

type t = exn

type 'a key = { pack : 'a -> exn; unpack : exn -> 'a option }

let key (type a) () : a key =
  let module M = struct
    exception E of a
  end in
  {
    pack = (fun x -> M.E x);
    unpack = (function M.E x -> Some x | _ -> None);
  }

let pack k v = k.pack v
let unpack k u = k.unpack u
