lib/sim/univ.mli:
