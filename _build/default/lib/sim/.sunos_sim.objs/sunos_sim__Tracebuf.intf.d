lib/sim/tracebuf.mli: Format Time
