lib/sim/pheap.ml:
