lib/sim/pheap.mli:
