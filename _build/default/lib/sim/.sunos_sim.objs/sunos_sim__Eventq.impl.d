lib/sim/eventq.ml: Pheap Time
