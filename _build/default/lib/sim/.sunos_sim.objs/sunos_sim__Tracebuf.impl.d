lib/sim/tracebuf.ml: Array Format List Time
