lib/sim/univ.ml:
