lib/sim/stats.ml: Array Float Format Int64 Stdlib Time
