lib/sim/rng.mli:
