type t = int64
type span = int64

let zero = 0L
let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let s n = Int64.mul (Int64.of_int n) 1_000_000_000L
let us_f x = Int64.of_float (Float.round (x *. 1_000.))
let add t d = Int64.add t d
let diff later earlier = Int64.sub later earlier
let compare = Int64.compare
let ( <= ) a b = Int64.compare a b <= 0
let ( < ) a b = Int64.compare a b < 0
let ( >= ) a b = Int64.compare a b >= 0
let ( > ) a b = Int64.compare a b > 0
let max a b = if a >= b then a else b
let min a b = if a <= b then a else b
let to_us t = Int64.to_float t /. 1_000.
let to_ms t = Int64.to_float t /. 1_000_000.
let to_s t = Int64.to_float t /. 1_000_000_000.

let pp ppf t =
  let f = Int64.to_float t in
  if Stdlib.( < ) f 1_000. then Format.fprintf ppf "%Ldns" t
  else if Stdlib.( < ) f 1_000_000. then
    Format.fprintf ppf "%.2fus" (f /. 1_000.)
  else if Stdlib.( < ) f 1_000_000_000. then
    Format.fprintf ppf "%.2fms" (f /. 1_000_000.)
  else Format.fprintf ppf "%.3fs" (f /. 1_000_000_000.)

let pp_us ppf t = Format.fprintf ppf "%.2fus" (to_us t)
