module Counter = struct
  type t = { name : string; mutable v : int }

  let create name = { name; v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let name t = t.name
  let reset t = t.v <- 0
end

module Hist = struct
  type t = {
    name : string;
    capacity : int;
    mutable samples : Time.span array;
    mutable len : int;
    mutable stride : int; (* keep every [stride]-th sample once full *)
    mutable skip : int;
    mutable count : int;
    mutable sum : float;
    mutable min_v : Time.span;
    mutable max_v : Time.span;
    mutable sorted : bool;
  }

  let create ?(capacity = 100_000) name =
    {
      name;
      capacity;
      samples = Array.make (Stdlib.min 1024 capacity) 0L;
      len = 0;
      stride = 1;
      skip = 0;
      count = 0;
      sum = 0.;
      min_v = Int64.max_int;
      max_v = Int64.min_int;
      sorted = true;
    }

  let store t x =
    if t.len = Array.length t.samples then
      if t.len < t.capacity then begin
        let bigger =
          Array.make (Stdlib.min t.capacity (2 * t.len)) 0L
        in
        Array.blit t.samples 0 bigger 0 t.len;
        t.samples <- bigger
      end
      else begin
        (* Reservoir is full: halve it deterministically (keep the even
           positions) and double the stride so future samples thin out. *)
        let half = t.len / 2 in
        for i = 0 to half - 1 do
          t.samples.(i) <- t.samples.(2 * i)
        done;
        t.len <- half;
        t.stride <- t.stride * 2
      end;
    if t.len < Array.length t.samples then begin
      t.samples.(t.len) <- x;
      t.len <- t.len + 1;
      t.sorted <- false
    end

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. Int64.to_float x;
    if Time.(x < t.min_v) then t.min_v <- x;
    if Time.(x > t.max_v) then t.max_v <- x;
    if t.skip = 0 then begin
      store t x;
      t.skip <- t.stride - 1
    end
    else t.skip <- t.skip - 1

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
  let min t = t.min_v
  let max t = t.max_v

  let ensure_sorted t =
    if not t.sorted then begin
      let sub = Array.sub t.samples 0 t.len in
      Array.sort Int64.compare sub;
      Array.blit sub 0 t.samples 0 t.len;
      t.sorted <- true
    end

  let percentile t p =
    if t.len = 0 then invalid_arg "Stats.Hist.percentile: empty";
    if p < 0. || p > 1. then invalid_arg "Stats.Hist.percentile: fraction";
    ensure_sorted t;
    let idx = int_of_float (Float.round (p *. float_of_int (t.len - 1))) in
    t.samples.(idx)

  let name t = t.name

  let reset t =
    t.len <- 0;
    t.stride <- 1;
    t.skip <- 0;
    t.count <- 0;
    t.sum <- 0.;
    t.min_v <- Int64.max_int;
    t.max_v <- Int64.min_int;
    t.sorted <- true

  let pp_summary ppf t =
    if t.count = 0 then Format.fprintf ppf "%s: (no samples)" t.name
    else
      Format.fprintf ppf
        "%s: n=%d mean=%.2fus p50=%a p90=%a p99=%a max=%a" t.name t.count
        (mean t /. 1_000.) Time.pp_us (percentile t 0.5) Time.pp_us
        (percentile t 0.9) Time.pp_us (percentile t 0.99) Time.pp_us t.max_v
end
