type record = { time : Time.t; tag : string; msg : string }

type t = {
  buf : record option array;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable dropped : int;
  mutable enabled : bool;
}

let create ?(capacity = 65536) () =
  { buf = Array.make capacity None; head = 0; len = 0; dropped = 0;
    enabled = true }

let emit t ~time ~tag msg =
  if t.enabled then begin
    let cap = Array.length t.buf in
    if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
    t.buf.(t.head) <- Some { time; tag; msg };
    t.head <- (t.head + 1) mod cap
  end

let emitf t ~time ~tag fmt =
  Format.kasprintf (fun msg -> emit t ~time ~tag msg) fmt

let records t =
  let cap = Array.length t.buf in
  let start = (t.head - t.len + cap) mod cap in
  let rec go i acc =
    if i = t.len then List.rev acc
    else
      match t.buf.((start + i) mod cap) with
      | None -> go (i + 1) acc
      | Some r -> go (i + 1) (r :: acc)
  in
  go 0 []

let find t ~tag = List.filter (fun r -> r.tag = tag) (records t)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let dropped t = t.dropped

let pp ppf t =
  List.iter
    (fun r -> Format.fprintf ppf "[%a] %-12s %s@." Time.pp r.time r.tag r.msg)
    (records t)

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
