(* splitmix64: tiny, fast, passes BigCrush for this usage; the classic
   constants below are from Steele et al., "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next
let split t = create ~seed:(next t)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible with a
     64-bit source and the small bounds used in workloads. *)
  let v = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int bound))

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
