(** Simulated time.

    Time is an absolute instant measured in integer nanoseconds since
    simulation boot; [span] is a (non-negative, unless stated otherwise)
    duration in nanoseconds.  Nanosecond granularity leaves ample headroom
    for the microsecond-scale costs of the 1991 cost model while keeping
    arithmetic exact. *)

type t = int64
(** An absolute instant, in nanoseconds since boot. *)

type span = int64
(** A duration, in nanoseconds. *)

val zero : t

val ns : int -> span
val us : int -> span
val ms : int -> span
val s : int -> span

val us_f : float -> span
(** [us_f x] is [x] microseconds rounded to the nearest nanosecond. *)

val add : t -> span -> t
val diff : t -> t -> span
(** [diff later earlier] is [later - earlier]. *)

val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t

val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val pp : Format.formatter -> t -> unit
(** Pretty-prints with an adaptive unit (ns/µs/ms/s). *)

val pp_us : Format.formatter -> t -> unit
(** Pretty-prints as microseconds with two decimals. *)
