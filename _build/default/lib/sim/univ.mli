(** Universal type with typed keys.

    Lets lower layers (shared-memory segments, LWP annotation slots) store
    values whose types are defined by higher layers, without [Obj]. *)

type t
type 'a key

val key : unit -> 'a key
val pack : 'a key -> 'a -> t
val unpack : 'a key -> t -> 'a option
