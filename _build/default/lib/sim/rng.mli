(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator (workload arrival jitter,
    tie-breaking policies under test, fault injection) draws from an
    explicitly seeded [Rng.t], so a run is a pure function of its seeds. *)

type t

val create : seed:int64 -> t

val split : t -> t
(** An independent stream derived from the current state; advancing one
    stream never perturbs the other. *)

val int64 : t -> int64
val bits : t -> int
(** 30 uniform bits, like [Random.bits]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed, for Poisson arrival processes. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
