module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Semaphore = Sunos_threads.Semaphore

type mode = Raw_lwps | Bound_threads

type params = {
  iterations : int;
  grain_us : int;
  workers : int;
  mode : mode;
  doalls : int;
}

let default_params =
  { iterations = 64; grain_us = 200; workers = 4; mode = Raw_lwps; doalls = 5 }

type results = {
  makespan : Sunos_sim.Time.span;
  iterations_done : int;
  lwps_created : int;
}

let chunk_of p w =
  let per = p.iterations / p.workers and extra = p.iterations mod p.workers in
  per + (if w < extra then 1 else 0)

(* The "Fortran runtime": raw LWPs, park/unpark as the only coordination
   (unpark tokens make the handshake race-free), shared refs as the
   shared address space.  No threads library anywhere in this path. *)
let raw_main p done_count makespan () =
  let master = Uctx.getlwpid () in
  let work_gen = ref 0 in
  let remaining = ref 0 in
  let worker_gen = Array.make p.workers 0 in
  let worker_lids = Array.make p.workers 0 in
  let shutdown = ref false in
  let worker w () =
    worker_lids.(w) <- Uctx.getlwpid ();
    let rec serve () =
      if !shutdown then Uctx.lwp_exit ()
      else if worker_gen.(w) < !work_gen then begin
        worker_gen.(w) <- worker_gen.(w) + 1;
        for _ = 1 to chunk_of p w do
          Uctx.charge_us p.grain_us;
          incr done_count
        done;
        remaining := !remaining - 1;
        if !remaining = 0 then Uctx.lwp_unpark master;
        serve ()
      end
      else begin
        (match Uctx.lwp_park () with `Parked | `Timeout -> ());
        serve ()
      end
    in
    serve ()
  in
  for w = 0 to p.workers - 1 do
    ignore (Uctx.lwp_create ~entry:(worker w) ())
  done;
  (* give the workers a beat to record their lwpids *)
  Uctx.sleep (Time.ms 1);
  for _ = 1 to p.doalls do
    remaining := p.workers;
    incr work_gen;
    Array.iter (fun lid -> Uctx.lwp_unpark lid) worker_lids;
    while !remaining > 0 do
      match Uctx.lwp_park () with `Parked | `Timeout -> ()
    done
  done;
  makespan := Uctx.gettime ();
  shutdown := true;
  Array.iter (fun lid -> Uctx.lwp_unpark lid) worker_lids;
  Uctx.sleep (Time.ms 1);
  Uctx.exit 0

(* The same loop as bound threads for comparison. *)
let threads_main p done_count makespan () =
  let start = Semaphore.create () and fin = Semaphore.create () in
  let stop = ref false in
  let ts =
    List.init p.workers (fun w ->
        T.create
          ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
          (fun () ->
            let continue_ = ref true in
            while !continue_ do
              Semaphore.p start;
              if !stop then continue_ := false
              else begin
                for _ = 1 to chunk_of p w do
                  Uctx.charge_us p.grain_us;
                  incr done_count
                done;
                Semaphore.v fin
              end
            done))
  in
  for _ = 1 to p.doalls do
    for _ = 1 to p.workers do
      Semaphore.v start
    done;
    for _ = 1 to p.workers do
      Semaphore.p fin
    done
  done;
  makespan := Uctx.gettime ();
  stop := true;
  for _ = 1 to p.workers do
    Semaphore.v start
  done;
  List.iter (fun t -> ignore (T.wait ~thread:t ())) ts

let run ?(cpus = 4) ?cost p =
  let k = Kernel.boot ~cpus ?cost () in
  Kernel.set_tracing k false;
  let done_count = ref 0 and makespan = ref Time.zero in
  (match p.mode with
  | Raw_lwps ->
      ignore
        (Kernel.spawn k ~name:"microtask-raw"
           ~main:(raw_main p done_count makespan))
  | Bound_threads ->
      ignore
        (Kernel.spawn k ~name:"microtask-threads"
           ~main:(Libthread.boot ?cost (threads_main p done_count makespan))));
  Kernel.run k;
  {
    makespan = !makespan;
    iterations_done = !done_count;
    lwps_created = Kernel.lwp_create_count k;
  }

let pp_results ppf r =
  Format.fprintf ppf "makespan=%a iterations=%d lwps=%d" Time.pp r.makespan
    r.iterations_done r.lwps_created
