module Time = Sunos_sim.Time
module Hist = Sunos_sim.Stats.Hist
module Rng = Sunos_sim.Rng
module Eventq = Sunos_sim.Eventq
module Shm = Sunos_hw.Shared_memory
module Machine = Sunos_hw.Machine
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Fs = Sunos_kernel.Fs
module Netchan = Sunos_kernel.Netchan

type params = {
  requests : int;
  mean_interarrival_us : int;
  parse_compute_us : int;
  reply_compute_us : int;
  disk_every : int;
  seed : int64;
}

let default_params =
  {
    requests = 200;
    mean_interarrival_us = 2_000;
    parse_compute_us = 150;
    reply_compute_us = 100;
    disk_every = 4;
    seed = 31L;
  }

type results = {
  served : int;
  latency : Hist.t;
  makespan : Time.span;
  throughput_rps : float;
  lwps_created : int;
}

let data_path = "/srv/data"

let run (module M : Sunos_baselines.Model.S) ?(cpus = 1) ?cost p =
  let k = Kernel.boot ~cpus ?cost () in
  Kernel.set_tracing k false;
  (match Fs.create_file (Kernel.fs k) ~path:data_path () with
  | Ok f ->
      ignore (Fs.write f ~pos:0 (String.make 65536 's'));
      Shm.evict_all (Fs.segment f)
  | Error _ -> invalid_arg "Net_server.run: setup failed");
  let chan = Netchan.create ~name:"service" in
  let latency = Hist.create "request latency" in
  let served = ref 0 and makespan = ref Time.zero in
  let inject_times = Hashtbl.create 64 in
  let app () =
    let fd = Uctx.open_net chan in
    let data_fd = Uctx.open_file data_path in
    let file =
      match Fs.lookup (Kernel.fs k) data_path with
      | Some f -> f
      | None -> assert false
    in
    let handle reqno () =
      Uctx.charge_us p.parse_compute_us;
      if reqno mod p.disk_every = 0 then begin
        (* cold read: evict the page first so the disk path is real *)
        let off = reqno * 512 mod 65536 in
        Shm.evict (Fs.segment file) ~page:(Shm.page_of_offset ~offset:off);
        Uctx.lseek data_fd off;
        ignore (Uctx.read data_fd ~len:512)
      end
      else begin
        Uctx.lseek data_fd (reqno * 512 mod 65536);
        ignore (Uctx.read data_fd ~len:512)
      end;
      Uctx.charge_us p.reply_compute_us;
      ignore (Uctx.write fd (Printf.sprintf "done:%d" reqno));
      (match Hashtbl.find_opt inject_times reqno with
      | Some t0 -> Hist.add latency (Time.diff (Uctx.gettime ()) t0)
      | None -> ());
      incr served
    in
    let rec dispatch workers remaining =
      if remaining = 0 then workers
      else
        let msg = Uctx.read fd ~len:64 in
        match int_of_string_opt msg with
        | Some reqno ->
            let t = M.spawn (handle reqno) in
            dispatch (t :: workers) (remaining - 1)
        | None -> dispatch workers remaining
    in
    let workers = dispatch [] p.requests in
    List.iter M.join workers;
    makespan := Uctx.gettime ()
  in
  ignore (Kernel.spawn k ~name:"server" ~main:(M.boot ?cost app));
  let rng = Rng.create ~seed:p.seed in
  let eventq = (Kernel.machine k).Machine.eventq in
  let rec inject n at =
    if n <= p.requests then
      ignore
        (Eventq.at eventq at (fun () ->
             Hashtbl.replace inject_times n (Eventq.now eventq);
             Netchan.inject chan
               { Netchan.payload = string_of_int n; reply_to = ignore };
             let gap =
               Time.us_f
                 (Rng.exponential rng
                    ~mean:(float_of_int p.mean_interarrival_us))
             in
             inject (n + 1) (Time.add (Eventq.now eventq) gap)))
  in
  inject 1 (Time.us 1);
  Kernel.run k;
  {
    served = !served;
    latency;
    makespan = !makespan;
    throughput_rps =
      (if Time.(!makespan > 0L) then
         float_of_int !served /. Time.to_s !makespan
       else 0.);
    lwps_created = Kernel.lwp_create_count k;
  }

let pp_results ppf r =
  Format.fprintf ppf
    "served=%d makespan=%a throughput=%.0f req/s lwps=%d latency: %a" r.served
    Time.pp r.makespan r.throughput_rps r.lwps_created Hist.pp_summary
    r.latency
