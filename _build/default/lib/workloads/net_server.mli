(** The network-server workload from the paper's introduction: requests
    arrive over the network; serving one may require file I/O (and, in
    the paper's words, the server "may indirectly need its own service —
    and therefore another thread of control").

    A dispatcher thread reads the wire and hands each request to a fresh
    thread, which parses (CPU), reads a file (disk when cold), and
    replies.  Runs on any {!Sunos_baselines.Model.S}: the M:N model gives
    cheap per-request threads whose disk waits block only an LWP; the
    user-level-only model stalls the whole server on every cold read;
    the 1:1 model pays a kernel thread creation per request. *)

type params = {
  requests : int;
  mean_interarrival_us : int;
  parse_compute_us : int;
  reply_compute_us : int;
  disk_every : int;  (** every n-th request needs a cold file read *)
  seed : int64;
}

val default_params : params

type results = {
  served : int;
  latency : Sunos_sim.Stats.Hist.t;
  makespan : Sunos_sim.Time.span;
  throughput_rps : float;
  lwps_created : int;
}

val run :
  (module Sunos_baselines.Model.S) ->
  ?cpus:int ->
  ?cost:Sunos_hw.Cost_model.t ->
  params ->
  results

val pp_results : Format.formatter -> results -> unit
