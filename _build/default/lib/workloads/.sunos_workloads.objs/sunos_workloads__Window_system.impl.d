lib/workloads/window_system.ml: Array Format Int64 List Printf String Sunos_baselines Sunos_hw Sunos_kernel Sunos_sim
