lib/workloads/array_compute.mli: Format Sunos_hw Sunos_sim
