lib/workloads/database.ml: Array Format Int64 List Printf String Sunos_hw Sunos_kernel Sunos_sim Sunos_threads
