lib/workloads/microtask.mli: Format Sunos_hw Sunos_sim
