lib/workloads/array_compute.ml: Format List Sunos_kernel Sunos_sim Sunos_threads
