lib/workloads/microbench.ml: List Sunos_hw Sunos_kernel Sunos_sim Sunos_threads
