lib/workloads/database.mli: Format Sunos_hw Sunos_sim
