lib/workloads/microbench.mli: Sunos_hw
