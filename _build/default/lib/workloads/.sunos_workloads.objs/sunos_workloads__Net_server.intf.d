lib/workloads/net_server.mli: Format Sunos_baselines Sunos_hw Sunos_sim
