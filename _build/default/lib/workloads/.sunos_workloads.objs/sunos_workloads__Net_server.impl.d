lib/workloads/net_server.ml: Format Hashtbl List Printf String Sunos_baselines Sunos_hw Sunos_kernel Sunos_sim
