lib/workloads/microtask.ml: Array Format List Sunos_kernel Sunos_sim Sunos_threads
