lib/workloads/window_system.mli: Format Sunos_baselines Sunos_hw Sunos_sim
