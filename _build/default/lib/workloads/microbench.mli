(** The paper's measurement microbenchmarks (Figures 5 and 6) as reusable
    measurements, so the benchmark harness prints them and the test suite
    asserts their shape.

    All results are simulated microseconds on the machine's cost model. *)

type creation = { unbound_us : float; bound_us : float }

val creation : ?cost:Sunos_hw.Cost_model.t -> unit -> creation
(** Figure 5: mean creation time with cached default stacks, no first
    context switch; bound creation includes the LWP. *)

type sync = {
  setjmp_us : float;  (** the baseline row (a cost-model constant) *)
  unbound_us : float;
  bound_us : float;
  cross_process_us : float;
}

val sync : ?cost:Sunos_hw.Cost_model.t -> unit -> sync
(** Figure 6: semaphore ping-pong, per-synchronization time (total /
    2 / rounds): unbound pair, bound pair, and two processes through a
    mapped file. *)
