(** Fortran-style microtasking directly on the LWP interface.

    The paper: "Some languages define concurrency mechanisms that are
    different from threads.  An example is a Fortran compiler that
    provides loop level parallelism.  In such cases, the language library
    may implement its own notion of concurrency using LWPs."

    This module is that language runtime: a DOALL loop whose iterations
    are partitioned over worker contexts, in two builds —
    [`Raw_lwps]: workers are raw kernel LWPs driven with
    `lwp_park`/`lwp_unpark`, no threads library at all;
    [`Threads]: the same loop on bound threads, for comparison. *)

type mode = Raw_lwps | Bound_threads

type params = {
  iterations : int;
  grain_us : int;  (** compute per iteration *)
  workers : int;
  mode : mode;
  doalls : int;  (** how many successive parallel loops (runtime reuse) *)
}

val default_params : params

type results = {
  makespan : Sunos_sim.Time.span;
  iterations_done : int;
  lwps_created : int;
}

val run : ?cpus:int -> ?cost:Sunos_hw.Cost_model.t -> params -> results
val pp_results : Format.formatter -> results -> unit
