module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Fs = Sunos_kernel.Fs
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Semaphore = Sunos_threads.Semaphore
module Syncvar = Sunos_threads.Syncvar

let us = Time.to_us

type creation = { unbound_us : float; bound_us : float }

let creation ?cost () =
  let unbound = ref 0. and bound = ref 0. in
  let k = Kernel.boot ?cost () in
  Kernel.set_tracing k false;
  ignore
    (Kernel.spawn k ~name:"fig5"
       ~main:
         (Libthread.boot ?cost (fun () ->
              let n = 200 in
              (* warm the default-stack cache, as the paper measures *)
              let warm =
                List.init n (fun _ ->
                    T.create ~flags:[ T.THREAD_WAIT ] (fun () -> ()))
              in
              List.iter (fun t -> ignore (T.wait ~thread:t ())) warm;
              let t0 = Uctx.gettime () in
              let ts =
                List.init n (fun _ ->
                    T.create ~flags:[ T.THREAD_STOP; T.THREAD_WAIT ]
                      (fun () -> ()))
              in
              let t1 = Uctx.gettime () in
              unbound := us (Time.diff t1 t0) /. float_of_int n;
              List.iter T.continue ts;
              List.iter (fun t -> ignore (T.wait ~thread:t ())) ts;
              let nb = 25 in
              let t0 = Uctx.gettime () in
              let ts =
                List.init nb (fun _ ->
                    T.create
                      ~flags:[ T.THREAD_STOP; T.THREAD_BIND_LWP; T.THREAD_WAIT ]
                      (fun () -> ()))
              in
              let t1 = Uctx.gettime () in
              bound := us (Time.diff t1 t0) /. float_of_int nb;
              List.iter T.continue ts;
              List.iter (fun t -> ignore (T.wait ~thread:t ())) ts)));
  Kernel.run k;
  { unbound_us = !unbound; bound_us = !bound }

type sync = {
  setjmp_us : float;
  unbound_us : float;
  bound_us : float;
  cross_process_us : float;
}

let sync_unbound ?cost () =
  let per = ref 0. in
  let k = Kernel.boot ?cost () in
  Kernel.set_tracing k false;
  ignore
    (Kernel.spawn k ~name:"sync-unbound"
       ~main:
         (Libthread.boot ?cost (fun () ->
              let s1 = Semaphore.create () and s2 = Semaphore.create () in
              let rounds = 400 in
              let t2 =
                T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                    for _ = 1 to rounds do
                      Semaphore.p s2;
                      Semaphore.v s1
                    done)
              in
              T.yield ();
              let t0 = Uctx.gettime () in
              for _ = 1 to rounds do
                Semaphore.v s2;
                Semaphore.p s1
              done;
              let t1 = Uctx.gettime () in
              per := us (Time.diff t1 t0) /. (2. *. float_of_int rounds);
              ignore (T.wait ~thread:t2 ()))));
  Kernel.run k;
  !per

let sync_bound ?cost () =
  let per = ref 0. in
  let k = Kernel.boot ?cost () in
  Kernel.set_tracing k false;
  ignore
    (Kernel.spawn k ~name:"sync-bound"
       ~main:
         (Libthread.boot ?cost (fun () ->
              let s1 = Semaphore.create () and s2 = Semaphore.create () in
              let rounds = 200 in
              let t2 =
                T.create
                  ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
                  (fun () ->
                    for _ = 1 to rounds do
                      Semaphore.p s2;
                      Semaphore.v s1
                    done)
              in
              let t1b =
                T.create
                  ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
                  (fun () ->
                    let t0 = Uctx.gettime () in
                    for _ = 1 to rounds do
                      Semaphore.v s2;
                      Semaphore.p s1
                    done;
                    let t1 = Uctx.gettime () in
                    per := us (Time.diff t1 t0) /. (2. *. float_of_int rounds))
              in
              ignore (T.wait ~thread:t2 ());
              ignore (T.wait ~thread:t1b ()))));
  Kernel.run k;
  !per

let sync_cross ?cost () =
  let per = ref 0. in
  let k = Kernel.boot ?cost () in
  Kernel.set_tracing k false;
  (match Fs.create_file (Kernel.fs k) ~path:"/sem" () with
  | Ok _ -> ()
  | Error _ -> invalid_arg "Microbench.sync: setup failed");
  let rounds = 200 in
  ignore
    (Kernel.spawn k ~name:"peer"
       ~main:
         (Libthread.boot ?cost (fun () ->
              let fd = Uctx.open_file "/sem" in
              let seg = Uctx.mmap fd in
              let s1 = Semaphore.create_shared (Syncvar.place seg ~offset:0) in
              let s2 = Semaphore.create_shared (Syncvar.place seg ~offset:64) in
              for _ = 1 to rounds do
                Semaphore.p s2;
                Semaphore.v s1
              done)));
  ignore
    (Kernel.spawn k ~name:"timer"
       ~main:
         (Libthread.boot ?cost (fun () ->
              let fd = Uctx.open_file "/sem" in
              let seg = Uctx.mmap fd in
              let s1 = Semaphore.create_shared (Syncvar.place seg ~offset:0) in
              let s2 = Semaphore.create_shared (Syncvar.place seg ~offset:64) in
              Uctx.sleep (Time.ms 1);
              let t0 = Uctx.gettime () in
              for _ = 1 to rounds do
                Semaphore.v s2;
                Semaphore.p s1
              done;
              let t1 = Uctx.gettime () in
              per := us (Time.diff t1 t0) /. (2. *. float_of_int rounds))));
  Kernel.run k;
  !per

let sync ?cost () =
  let model =
    match cost with Some c -> c | None -> Sunos_hw.Cost_model.default
  in
  {
    setjmp_us = us model.Sunos_hw.Cost_model.setjmp_longjmp;
    unbound_us = sync_unbound ?cost ();
    bound_us = sync_bound ?cost ();
    cross_process_us = sync_cross ?cost ();
  }
