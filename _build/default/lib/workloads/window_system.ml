module Time = Sunos_sim.Time
module Hist = Sunos_sim.Stats.Hist
module Rng = Sunos_sim.Rng
module Eventq = Sunos_sim.Eventq
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Netchan = Sunos_kernel.Netchan
module Machine = Sunos_hw.Machine

type params = {
  widgets : int;
  events : int;
  input_compute_us : int;
  render_compute_us : int;
  mean_interarrival_us : int;
  seed : int64;
}

let default_params =
  {
    widgets = 100;
    events = 500;
    input_compute_us = 120;
    render_compute_us = 250;
    mean_interarrival_us = 1500;
    seed = 11L;
  }

type results = {
  handled : int;
  latency : Hist.t;
  makespan : Time.span;
  lwps_created : int;
  threads_created : int;
}

(* One widget = an input handler and an output handler, coupled by a
   semaphore pair and a mailbox of pending event timestamps. *)
let run (module M : Sunos_baselines.Model.S) ?(cpus = 1) ?cost p =
  let k = Kernel.boot ~cpus ?cost () in
  Kernel.set_tracing k false;
  let chan = Netchan.create ~name:"xwire" in
  let latency = Hist.create "event latency" in
  let handled = ref 0 in
  let threads_created = ref 0 in
  let makespan = ref Time.zero in
  let app () =
    let fd = Uctx.open_net chan in
    (* per-widget plumbing *)
    let in_sem = Array.init p.widgets (fun _ -> M.Sem.create 0) in
    let out_sem = Array.init p.widgets (fun _ -> M.Sem.create 0) in
    let in_box = Array.make p.widgets [] in
    let out_box = Array.make p.widgets [] in
    let input_handler w () =
      let rec loop () =
        M.Sem.p in_sem.(w);
        match in_box.(w) with
        | [] ->
            (* shutdown: forward it down the pipeline so the output
               handler drains every forwarded event first *)
            M.Sem.v out_sem.(w)
        | stamp :: rest ->
            in_box.(w) <- rest;
            Uctx.charge_us p.input_compute_us;
            out_box.(w) <- out_box.(w) @ [ stamp ];
            M.Sem.v out_sem.(w);
            loop ()
      in
      loop ()
    in
    let output_handler w () =
      let rec loop () =
        M.Sem.p out_sem.(w);
        match out_box.(w) with
        | [] -> ()
        | stamp :: rest ->
            out_box.(w) <- rest;
            Uctx.charge_us p.render_compute_us;
            Hist.add latency (Time.diff (Uctx.gettime ()) stamp);
            incr handled;
            loop ()
      in
      loop ()
    in
    let handlers =
      List.concat_map
        (fun w ->
          [ M.spawn (input_handler w); M.spawn (output_handler w) ])
        (List.init p.widgets (fun w -> w))
    in
    threads_created := (2 * p.widgets) + 1;
    (* the wire reader: demultiplex events to widgets *)
    let rec serve remaining =
      if remaining > 0 then begin
        let msg = Uctx.read fd ~len:64 in
        (* "widget stamp": latency is measured from injection time *)
        match String.split_on_char ' ' msg with
        | [ ws; ts ] -> (
            match (int_of_string_opt ws, Int64.of_string_opt ts) with
            | Some w, Some stamp when w >= 0 && w < p.widgets ->
                in_box.(w) <- in_box.(w) @ [ stamp ];
                M.Sem.v in_sem.(w);
                serve (remaining - 1)
            | _ -> serve remaining)
        | _ -> serve remaining
      end
    in
    serve p.events;
    (* drain: an empty-box wakeup is the shutdown token; it propagates
       through each widget's pipeline *)
    for w = 0 to p.widgets - 1 do
      M.Sem.v in_sem.(w)
    done;
    List.iter M.join handlers;
    makespan := Uctx.gettime ()
  in
  ignore (Kernel.spawn k ~name:"windows" ~main:(M.boot ?cost app));
  (* event injection: Poisson arrivals addressed to random widgets *)
  let rng = Rng.create ~seed:p.seed in
  let eventq = (Kernel.machine k).Machine.eventq in
  let rec inject n at =
    if n > 0 then
      ignore
        (Eventq.at eventq at (fun () ->
             Netchan.inject chan
               {
                 Netchan.payload =
                   Printf.sprintf "%d %Ld" (Rng.int rng p.widgets)
                     (Eventq.now eventq);
                 reply_to = ignore;
               };
             let gap =
               Time.us_f
                 (Rng.exponential rng
                    ~mean:(float_of_int p.mean_interarrival_us))
             in
             inject (n - 1) (Time.add (Eventq.now eventq) gap)))
  in
  inject p.events (Time.us 1);
  Kernel.run k;
  {
    handled = !handled;
    latency;
    makespan = !makespan;
    lwps_created = Kernel.lwp_create_count k;
    threads_created = !threads_created;
  }

let pp_results ppf r =
  Format.fprintf ppf
    "handled=%d threads=%d lwps=%d makespan=%a latency: %a" r.handled
    r.threads_created r.lwps_created Time.pp r.makespan Hist.pp_summary
    r.latency
