lib/baselines/model.ml: Activations Cthreads Liblwp List Mt Sunos_hw
