lib/baselines/mt.ml: Sunos_threads
