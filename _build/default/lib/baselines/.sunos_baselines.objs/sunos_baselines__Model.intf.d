lib/baselines/model.mli: Sunos_hw
