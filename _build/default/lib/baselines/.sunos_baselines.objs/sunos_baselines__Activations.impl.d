lib/baselines/activations.ml: Sunos_threads
