lib/baselines/liblwp.ml: Sunos_kernel Sunos_sim Sunos_threads
