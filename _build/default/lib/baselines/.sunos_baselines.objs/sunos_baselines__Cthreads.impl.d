lib/baselines/cthreads.ml: Sunos_threads
