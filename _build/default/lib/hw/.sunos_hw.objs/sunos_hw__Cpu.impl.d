lib/hw/cpu.ml: Format Int64 Sunos_sim
