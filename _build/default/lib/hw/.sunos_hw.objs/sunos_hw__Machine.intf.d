lib/hw/machine.mli: Cost_model Cpu Devices Format Sunos_sim
