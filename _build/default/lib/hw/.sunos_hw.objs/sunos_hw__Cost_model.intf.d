lib/hw/cost_model.mli: Sunos_sim
