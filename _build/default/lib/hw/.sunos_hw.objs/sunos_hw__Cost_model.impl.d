lib/hw/cost_model.ml: Float Int64 Sunos_sim
