lib/hw/devices.mli: Sunos_sim
