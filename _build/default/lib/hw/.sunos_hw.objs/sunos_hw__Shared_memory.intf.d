lib/hw/shared_memory.mli: Sunos_sim
