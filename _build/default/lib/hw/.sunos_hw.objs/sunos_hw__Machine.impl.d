lib/hw/machine.ml: Array Cost_model Cpu Devices Format Sunos_sim
