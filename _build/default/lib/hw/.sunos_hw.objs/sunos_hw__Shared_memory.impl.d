lib/hw/shared_memory.ml: Array Hashtbl Sunos_sim
