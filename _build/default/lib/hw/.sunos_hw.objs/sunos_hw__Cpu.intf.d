lib/hw/cpu.mli: Format Sunos_sim
