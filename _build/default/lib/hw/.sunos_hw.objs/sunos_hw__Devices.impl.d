lib/hw/devices.ml: Int64 List Queue Sunos_sim
