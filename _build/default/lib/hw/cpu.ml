module Time = Sunos_sim.Time

type t = {
  id : int;
  mutable occupant : int option;
  mutable need_resched : bool;
  mutable last_change : Time.t;
  mutable busy : Time.span;
  mutable idle : Time.span;
}

let create ~id =
  { id; occupant = None; need_resched = false; last_change = Time.zero;
    busy = 0L; idle = 0L }

let id t = t.id
let occupant t = t.occupant

let account t ~now =
  let d = Time.diff now t.last_change in
  (match t.occupant with
  | Some _ -> t.busy <- Int64.add t.busy d
  | None -> t.idle <- Int64.add t.idle d);
  t.last_change <- now

let set_occupant t ~now occ =
  account t ~now;
  t.occupant <- occ

let need_resched t = t.need_resched
let set_need_resched t b = t.need_resched <- b

let busy_time t ~now =
  let extra =
    match t.occupant with Some _ -> Time.diff now t.last_change | None -> 0L
  in
  Int64.add t.busy extra

let idle_time t ~now =
  let extra =
    match t.occupant with None -> Time.diff now t.last_change | Some _ -> 0L
  in
  Int64.add t.idle extra

let utilization t ~now =
  let b = Int64.to_float (busy_time t ~now)
  and i = Int64.to_float (idle_time t ~now) in
  if b +. i <= 0. then 0. else b /. (b +. i)

let pp ppf t =
  Format.fprintf ppf "cpu%d[%s]" t.id
    (match t.occupant with None -> "idle" | Some l -> "lwp" ^ string_of_int l)
