(** A simulated processor.

    The CPU itself is mostly an accounting record — which kernel entity
    occupies it and for how long it has been busy/idle.  The dispatcher in
    the kernel layer decides occupancy; the occupant is identified by the
    kernel's LWP id (an int here to keep the layering acyclic). *)

type t

val create : id:int -> t
val id : t -> int

val occupant : t -> int option
(** LWP id currently executing on this CPU, if any. *)

val set_occupant : t -> now:Sunos_sim.Time.t -> int option -> unit
(** Also folds the elapsed interval into busy/idle accounting. *)

val need_resched : t -> bool
val set_need_resched : t -> bool -> unit
(** Set when a preemption decision is pending; honored by the kernel at
    the next charge boundary of the running LWP. *)

val busy_time : t -> now:Sunos_sim.Time.t -> Sunos_sim.Time.span
val idle_time : t -> now:Sunos_sim.Time.t -> Sunos_sim.Time.span

val utilization : t -> now:Sunos_sim.Time.t -> float
(** Busy fraction since boot, in [0,1]; 0 when no time has passed. *)

val pp : Format.formatter -> t -> unit
