(** Condition variables ([cv_wait] / [cv_signal] / [cv_broadcast]).

    Always used with a mutex: [wait] releases it before blocking and
    reacquires it before returning, so the condition must be re-tested in
    a loop — wakeup order is not guaranteed, reacquisition races with
    other contenders, and a signal handler interruption surfaces as a
    spurious wakeup.

    A condvar created with {!create_shared} synchronizes across processes
    (pair it with a shared mutex at a different offset). *)

type t

val create : unit -> t
val create_shared : Syncvar.place -> t

val wait : t -> Mutex.t -> unit
(** Atomically release the mutex and block; the mutex is held again when
    [wait] returns.  Typical use:
    {[
      Mutex.enter m;
      while not (condition ()) do Condvar.wait cv m done;
      ...;
      Mutex.exit m
    ]} *)

val signal : t -> unit
(** Wake one waiter (no-op when none). *)

val broadcast : t -> unit
(** Wake every waiter; they re-contend for the mutex, so use with care
    (appropriate when variable amounts of resource are released). *)
