module Time = Sunos_sim.Time
module Uctx = Sunos_kernel.Uctx
module Cost = Sunos_hw.Cost_model

type t = {
  name : string;
  id : int;
  mu : Mutex.t;
  mutable acquisitions : int;
  mutable contentions : int;
  mutable acquired_at : Time.t;
  mutable max_hold : Time.span;
}

exception Self_deadlock of string
exception Lock_order_violation of string * string

let () =
  Printexc.register_printer (function
    | Self_deadlock n -> Some (Printf.sprintf "Lockdebug: relock of %S" n)
    | Lock_order_violation (held, wanted) ->
        Some
          (Printf.sprintf
             "Lockdebug: taking %S while holding %S contradicts recorded \
              order"
             wanted held)
    | _ -> None)

let next_id = ref 0

(* The lock-order graph: an edge (a, b) means "a was held while b was
   acquired".  Acquiring b while holding a when (b, a) is already
   recorded is a potential ABBA deadlock.  Process-global, like a real
   lockdep. *)
let order_edges : (int * int, string * string) Hashtbl.t = Hashtbl.create 64

let reset_order_graph () = Hashtbl.reset order_edges

(* Locks the calling thread currently holds, most recent first. *)
let held_stack : (int * string) list Tls.key = Tls.key ~default:[]

let create ~name =
  incr next_id;
  {
    name;
    id = !next_id;
    mu = Mutex.create ();
    acquisitions = 0;
    contentions = 0;
    acquired_at = Time.zero;
    max_hold = 0L;
  }

let name t = t.name
let held_by_self t = Mutex.holding t.mu

let charge_check () =
  (* the debugging variant pays for its bookkeeping *)
  Uctx.charge (Current.pool ()).Ttypes.cost.Cost.sync_slow_extra

let check_order t =
  let held = Tls.get held_stack in
  List.iter
    (fun (held_id, held_name) ->
      if Hashtbl.mem order_edges (t.id, held_id) then
        raise (Lock_order_violation (held_name, t.name));
      if not (Hashtbl.mem order_edges (held_id, t.id)) then
        Hashtbl.replace order_edges (held_id, t.id) (held_name, t.name))
    held

let note_acquired t =
  t.acquisitions <- t.acquisitions + 1;
  t.acquired_at <- Uctx.gettime ();
  Tls.set held_stack ((t.id, t.name) :: Tls.get held_stack)

let enter t =
  charge_check ();
  if Mutex.holding t.mu then raise (Self_deadlock t.name);
  check_order t;
  if not (Mutex.try_enter t.mu) then begin
    t.contentions <- t.contentions + 1;
    Mutex.enter t.mu
  end;
  note_acquired t

let try_enter t =
  charge_check ();
  if Mutex.holding t.mu then raise (Self_deadlock t.name);
  if Mutex.try_enter t.mu then begin
    check_order t;
    note_acquired t;
    true
  end
  else false

let exit t =
  charge_check ();
  let hold = Time.diff (Uctx.gettime ()) t.acquired_at in
  if Time.(hold > t.max_hold) then t.max_hold <- hold;
  Tls.set held_stack
    (List.filter (fun (id, _) -> id <> t.id) (Tls.get held_stack));
  Mutex.exit t.mu

let acquisitions t = t.acquisitions
let contentions t = t.contentions
let max_hold t = t.max_hold
