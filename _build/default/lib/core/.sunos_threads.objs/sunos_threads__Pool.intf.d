lib/core/pool.mli: Sunos_hw Sunos_kernel Ttypes
