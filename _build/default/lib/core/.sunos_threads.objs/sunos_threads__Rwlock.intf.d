lib/core/rwlock.mli: Syncvar
