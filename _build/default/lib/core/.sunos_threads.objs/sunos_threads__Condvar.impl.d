lib/core/condvar.ml: Current List Mutex Pool Sunos_hw Sunos_kernel Sunos_sim Syncvar Ttypes Waitq
