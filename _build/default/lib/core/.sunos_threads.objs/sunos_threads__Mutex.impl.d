lib/core/mutex.ml: Current Pool Printexc Sunos_hw Sunos_kernel Sunos_sim Syncvar Ttypes Waitq
