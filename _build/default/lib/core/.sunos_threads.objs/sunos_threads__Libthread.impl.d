lib/core/libthread.ml: Current Debugger Hashtbl List Pool Sunos_hw Sunos_kernel Ttypes
