lib/core/lockdebug.ml: Current Hashtbl List Mutex Printexc Printf Sunos_hw Sunos_kernel Sunos_sim Tls Ttypes
