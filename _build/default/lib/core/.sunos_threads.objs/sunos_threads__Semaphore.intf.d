lib/core/semaphore.mli: Syncvar
