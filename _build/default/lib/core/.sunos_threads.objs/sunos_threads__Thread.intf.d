lib/core/thread.mli: Sunos_kernel Ttypes
