lib/core/current.ml: Ttypes
