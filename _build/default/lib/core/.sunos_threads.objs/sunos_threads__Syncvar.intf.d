lib/core/syncvar.mli: Sunos_hw Sunos_sim
