lib/core/debugger.ml: Format Hashtbl List Printf Sunos_kernel Ttypes
