lib/core/debugger.mli: Format Sunos_kernel Ttypes
