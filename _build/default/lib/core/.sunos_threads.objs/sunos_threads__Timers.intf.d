lib/core/timers.mli: Sunos_sim
