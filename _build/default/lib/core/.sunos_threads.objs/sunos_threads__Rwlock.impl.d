lib/core/rwlock.ml: Current List Pool Sunos_hw Sunos_kernel Sunos_sim Syncvar Ttypes Waitq
