lib/core/tls.mli:
