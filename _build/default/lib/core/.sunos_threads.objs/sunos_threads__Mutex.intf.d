lib/core/mutex.mli: Syncvar Ttypes
