lib/core/waitq.ml: List Queue Ttypes
