lib/core/pool.ml: Array Current Effect Hashtbl List Queue Sunos_hw Sunos_kernel Sunos_sim Sysdefs Ttypes
