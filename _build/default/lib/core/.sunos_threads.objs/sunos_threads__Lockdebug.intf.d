lib/core/lockdebug.mli: Sunos_sim
