lib/core/sigdeliver.ml: Array Current Hashtbl List Pool Queue Sunos_hw Sunos_kernel Ttypes
