lib/core/libthread.mli: Sunos_hw
