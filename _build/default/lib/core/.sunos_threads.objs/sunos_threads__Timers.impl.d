lib/core/timers.ml: Current List Pool Sigdeliver Sunos_kernel Sunos_sim Ttypes
