lib/core/thread.ml: Current Hashtbl List Pool Sigdeliver Sunos_hw Sunos_kernel Ttypes
