lib/core/current.mli: Ttypes
