lib/core/syncvar.ml: Printf Sunos_hw Sunos_kernel Sunos_sim
