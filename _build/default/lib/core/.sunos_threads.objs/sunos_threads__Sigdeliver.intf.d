lib/core/sigdeliver.mli: Sunos_kernel Ttypes
