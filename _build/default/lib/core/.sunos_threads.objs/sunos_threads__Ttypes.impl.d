lib/core/ttypes.ml: Effect Hashtbl Queue Sunos_hw Sunos_kernel Sunos_sim
