lib/core/waitq.mli: Ttypes
