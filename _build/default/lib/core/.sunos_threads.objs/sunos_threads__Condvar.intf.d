lib/core/condvar.mli: Mutex Syncvar
