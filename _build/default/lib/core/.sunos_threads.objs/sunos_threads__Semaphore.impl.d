lib/core/semaphore.ml: Current Pool Sunos_hw Sunos_kernel Sunos_sim Syncvar Ttypes Waitq
