lib/core/tls.ml: Array Current Sunos_hw Sunos_kernel Sunos_sim Ttypes
