(** Thread-local storage.

    The paper's [#pragma unshared] declares statically-allocated, zeroed
    per-thread variables (the canonical example is [errno]); the OCaml
    rendering is a typed key created at program scope with its "zero"
    value.  Each thread sees its own copy; a thread that never wrote a
    key reads the default.  Access is deliberately priced ([tls_access])
    — the paper warns it is "potentially expensive". *)

type 'a key

val key : default:'a -> 'a key
(** Create at program scope (the analogue of link-time allocation). *)

val get : 'a key -> 'a
(** This thread's value (the default if never set here). *)

val set : 'a key -> 'a -> unit

val errno : int key
(** The classic example, pre-declared: per-thread errno, initially 0. *)
