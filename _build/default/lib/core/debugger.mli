(** Debugger support: the paper's /proc + library cooperation.

    "Of necessity, a kernel process model interface can provide access
    only to kernel-supported threads of control, namely LWPs.  Debugger
    control of library threads is accomplished by cooperation between
    the debugger and the threads library, with the aid of the /proc file
    system to control the kernel-supported LWPs."

    The debugger runs {e outside} the simulated machine (like a real
    debugger in another process): it stops the target through the kernel
    (as /proc's PIOCSTOP would), reads LWP state from {!Sunos_kernel.Procfs},
    and reads the thread table that the threads library publishes for it
    (the analogue of reading libthread's data structures out of the
    inferior's address space). *)

type thread_view = {
  dt_tid : int;
  dt_state : string;  (** library state: runnable/running/blocked/... *)
  dt_bound_lwp : int option;  (** the dedicated LWP, for bound threads *)
}

type snapshot = {
  d_pid : int;
  d_pname : string;
  d_lwps : Sunos_kernel.Procfs.lwp_info list;  (** the kernel half *)
  d_threads : thread_view list;  (** the library half *)
}

val publish : Ttypes.pool -> unit
(** Called by {!Libthread.boot}: register the pool's thread table for
    debugger reads (the inferior exposing its library structures). *)

val attach : Sunos_kernel.Kernel.t -> int -> (unit, string) result
(** Stop every LWP of the process (as /proc PIOCSTOP).  The simulation
    must then be advanced (e.g. [Kernel.run ~until]) for running LWPs to
    reach their stop points. *)

val snapshot : Sunos_kernel.Kernel.t -> int -> (snapshot, string) result
(** Merged kernel + library view.  The library half is present only for
    processes running the threads library. *)

val detach : Sunos_kernel.Kernel.t -> int -> (unit, string) result
(** Resume the process (as /proc PIOCRUN). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
