(** Multiple-readers, single-writer locks ([rw_enter] / [rw_exit] /
    [rw_tryenter] / [rw_downgrade] / [rw_tryupgrade]).

    Many simultaneous readers or one writer; good for objects searched
    far more often than changed.  Waiting writers block new readers
    (writer preference), so readers cannot starve writers. *)

type t

type rw = Reader | Writer

val create : unit -> t
val create_shared : Syncvar.place -> t

val enter : t -> rw -> unit
val exit : t -> unit
(** Releases whichever side the calling thread holds.  Raises
    [Mutex.Not_owner]-style [Failure] if it holds neither. *)

val try_enter : t -> rw -> bool

val downgrade : t -> unit
(** Atomically turn the calling thread's writer lock into a reader lock.
    Waiting writers keep waiting; with no waiting writer, pending readers
    are admitted. *)

val try_upgrade : t -> bool
(** Attempt to turn a reader lock into a writer lock atomically.  Fails
    (returning [false], still holding the reader lock) when another
    upgrade is in progress or writers are waiting. *)

val readers : t -> int
val has_writer : t -> bool
