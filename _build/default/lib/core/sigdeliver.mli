(** Library-level signal routing (internal).

    Implements the paper's thread-level signal model over the kernel's
    LWP-level delivery: one shared vector of handlers, per-thread masks,
    interrupts handled by exactly one eligible thread, thread_kill as a
    trap delivered only to its target.  See the implementation header for
    the routing rules. *)

val route : Ttypes.pool -> Sunos_kernel.Signo.t -> unit
(** The closure installed as the kernel disposition for every
    application-handled signal: finds an eligible thread by per-thread
    masks and runs or pends the handler there. *)

val set_disposition :
  Ttypes.pool ->
  Sunos_kernel.Signo.t ->
  Sunos_kernel.Sysdefs.disposition ->
  Sunos_kernel.Sysdefs.disposition
(** Install an application disposition; handlers are wrapped with
    {!route}, default/ignore pass through to the kernel.  Returns the
    previous library-level disposition. *)

val mask_changed : Ttypes.tcb -> unit
(** A thread's mask opened: claim newly-eligible pended signals. *)

val thread_kill : Ttypes.tcb -> Sunos_kernel.Signo.t -> unit
(** Trap-like: only the target thread handles it; wakes it from a
    user-level block if eligible. *)

val sigsend_all : Ttypes.pool -> Sunos_kernel.Signo.t -> unit
(** sigsend(P_THREAD_ALL): the signal goes to every thread. *)

val eligible : Sunos_kernel.Signo.t -> Ttypes.tcb -> bool
