(** Thread wait queues (turnstiles) for the user-level sync primitives.

    Entries are lazily removable: signal delivery may pull a thread out
    of the middle of the queue, so [add] returns a cancel closure and
    [pop] skips cancelled entries.  Ordering is FIFO; the paper
    guarantees no particular wakeup order. *)

type t

val create : unit -> t

val add : t -> Ttypes.tcb -> unit -> unit
(** Returns the cancel closure; idempotent. *)

val pop : t -> Ttypes.tcb option
(** Next live entry (its cancel closure becomes a no-op). *)

val pop_all : t -> Ttypes.tcb list
val is_empty : t -> bool
(** True when no live entry remains. *)

val length : t -> int
