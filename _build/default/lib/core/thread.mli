(** The thread interface — the paper's Figure 4 in OCaml.

    Threads are execution resources of a process, invisible outside it.
    They share the address space, file descriptors and signal handler
    vector; each has its own ID, priority, signal mask, stack and
    thread-local storage.  Most operations never enter the kernel. *)

type id = int

type flag =
  | THREAD_STOP  (** created suspended; runs after {!continue} *)
  | THREAD_NEW_LWP  (** also add an LWP to the pool serving unbound threads *)
  | THREAD_BIND_LWP  (** create an LWP and bind the thread to it permanently *)
  | THREAD_WAIT  (** joinable: another thread will {!wait} for it; the id
                     is not reused until then *)

val create :
  ?flags:flag list ->
  ?stack:[ `Default | `Caller of int ] ->
  (unit -> unit) ->
  id
(** [thread_create].  The new thread inherits the creator's priority and
    signal mask.  [`Caller n] models programmer-supplied stack storage of
    [n] bytes (the library then leaves allocation alone, as the paper
    requires for language runtimes with their own allocators). *)

val exit : unit -> 'a
(** [thread_exit]: terminate the calling thread only.  When the last
    thread exits, the process exits. *)

val wait : ?thread:id -> unit -> id
(** [thread_wait]: block until the given thread (or, with no argument,
    any THREAD_WAIT thread) exits; returns the id, which is dead
    afterwards.  Errors (raised as [Invalid_argument]): waiting for a
    non-THREAD_WAIT thread, for yourself, or double-waiting. *)

val get_id : unit -> id
(** [thread_get_id]. *)

val sigsetmask :
  Sunos_kernel.Sigset.how -> Sunos_kernel.Sigset.t -> Sunos_kernel.Sigset.t
(** [thread_sigsetmask]: change the calling thread's mask; returns the
    old mask.  Unblocking makes eligible pended signals deliverable. *)

val kill : id -> Sunos_kernel.Signo.t -> unit
(** [thread_kill]: send a signal to one thread of this process; it
    behaves like a trap — only that thread handles it. *)

val sigsend_all : Sunos_kernel.Signo.t -> unit
(** [sigsend(P_THREAD_ALL)]: the signal goes to every thread. *)

val stop : ?thread:id -> unit -> unit
(** [thread_stop].  Stopping yourself suspends immediately; stopping
    another thread takes effect at its next scheduling boundary (the
    call returns once the stop is recorded). *)

val continue : id -> unit
(** [thread_continue]: start a THREAD_STOP thread or restart a stopped
    one. *)

val priority : ?thread:id -> int -> int
(** [thread_priority]: set the (user-level) scheduling priority, 0..63;
    higher runs first.  Returns the old priority. *)

val setconcurrency : int -> unit
(** [thread_setconcurrency]: set the number of LWPs multiplexing unbound
    threads.  0 restores automatic mode (grow on SIGWAITING). *)

val yield : unit -> unit
(** Offer the LWP to another runnable thread (pure user-level switch). *)

val sigaction :
  Sunos_kernel.Signo.t ->
  Sunos_kernel.Sysdefs.disposition ->
  Sunos_kernel.Sysdefs.disposition
(** Install a process-wide disposition whose handler runs in an eligible
    {e thread}'s context, routed by per-thread masks. *)

val sigaltstack : bool -> unit
(** Enable an alternate signal stack for the calling thread.  Per the
    paper, only THREAD_BIND_LWP threads may use one (the state lives in
    the LWP); raises [Invalid_argument] for unbound threads. *)

val self_pool : unit -> Ttypes.pool
(** Introspection for tests/benchmarks: the calling thread's pool. *)

val state : id -> string option
(** "runnable" | "running" | "blocked" | "stopped" | "zombie". *)
