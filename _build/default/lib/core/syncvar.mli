(** Synchronization-variable placement.

    The paper lets synchronization variables live in ordinary memory, in
    shared memory, or in mapped files; variables in shared mappings
    synchronize threads of every process that maps them, regardless of
    the virtual address, and can outlive their creator.  Here, "placing"
    a variable in a segment installs its state record at a segment
    offset; any process that locates the same (segment, offset) gets the
    very same record.  The kernel only learns about the variable when a
    thread blocks on it ([kwait]/[kwake]), exactly as the paper says. *)

type place = {
  seg : Sunos_hw.Shared_memory.t;
  offset : int;
}

val place : Sunos_hw.Shared_memory.t -> offset:int -> place
val place_auto : Sunos_hw.Shared_memory.t -> place
(** Allocate a fresh offset in the segment. *)

val locate :
  place -> key:'a Sunos_sim.Univ.key -> make:(unit -> 'a) -> 'a
(** The state record at this placement: created on first use (by any
    process), found thereafter.  Raises [Invalid_argument] if the offset
    holds a different kind of variable. *)

val wait :
  place ->
  ?timeout:Sunos_sim.Time.span ->
  expect:(unit -> bool) ->
  unit ->
  [ `Woken | `Timeout ]
(** Kernel-assisted block on the variable ([kwait]): sleeps only if
    [expect ()] still holds at sleep time. *)

val wake : place -> count:int -> int
(** Wake up to [count] waiters across all processes ([kwake]). *)

val wake_all : place -> int
