(* Library-level signal routing, per the paper's model:

   - All threads share one vector of handlers (the pool's mirror of the
     process disposition table).
   - Each thread has its own signal mask.
   - An interrupt (process-directed signal) is handled by ONE thread
     that has it unmasked: the kernel hands the signal to some LWP (see
     Signal_impl); the closure the library installed there routes it to
     an eligible thread — running it inline if the current thread
     qualifies, waking a blocked eligible thread otherwise, or leaving
     it pending until some thread unmasks it.
   - thread_kill() signals behave like traps: only the named thread runs
     the handler. *)

open Ttypes
module Uctx = Sunos_kernel.Uctx
module Sysdefs = Sunos_kernel.Sysdefs
module Sigset = Sunos_kernel.Sigset
module Signo = Sunos_kernel.Signo
module Cost = Sunos_hw.Cost_model

let eligible signo tcb =
  tcb.tstate <> Tzombie && not (Sigset.mem signo tcb.tsigmask)

let threads_by_tid pool =
  Hashtbl.fold (fun _ t acc -> t :: acc) pool.threads []
  |> List.sort (fun a b -> compare a.tid b.tid)

(* Route one process-directed signal.  Runs inside whichever thread's (or
   idle LWP's) fiber picked the kernel delivery up. *)
let route pool signo =
  match pool.handlers.(signo) with
  | Sysdefs.Sig_default | Sysdefs.Sig_ignore ->
      () (* resolved kernel-side; nothing for the library to do *)
  | Sysdefs.Sig_handler h -> (
      match Current.get_opt () with
      | Some me when me.pool == pool && eligible signo me ->
          Uctx.charge pool.cost.Cost.signal_deliver;
          h signo
      | _ -> (
          let all = threads_by_tid pool in
          match
            List.find_opt
              (fun t -> eligible signo t && t.tstate = Tblocked)
              all
          with
          | Some t ->
              Queue.add signo t.pending_tsigs;
              Pool.make_ready t (Wake_signal signo)
          | None -> (
              match List.find_opt (eligible signo) all with
              | Some t ->
                  (* running or runnable: picked up at its next
                     delivery point *)
                  Queue.add signo t.pending_tsigs
              | None ->
                  (* every thread masks it: pend on the process *)
                  pool.proc_pending_tsigs <-
                    pool.proc_pending_tsigs @ [ signo ])))

(* Install an application-level disposition for [signo].  Handlers run in
   an eligible thread's context; default/ignore pass straight through to
   the kernel. *)
let set_disposition pool signo disp =
  let old = pool.handlers.(signo) in
  pool.handlers.(signo) <- disp;
  (match disp with
  | Sysdefs.Sig_handler _ ->
      ignore
        (Uctx.sigaction signo (Sysdefs.Sig_handler (fun s -> route pool s)))
  | Sysdefs.Sig_default | Sysdefs.Sig_ignore ->
      ignore (Uctx.sigaction signo disp));
  old

(* A thread's mask just opened up: claim any process-pended signals it is
   now eligible for and run them here, plus its own pended trap-likes. *)
let mask_changed tcb =
  let pool = tcb.pool in
  let claimed, still_pending =
    List.partition (fun s -> eligible s tcb) pool.proc_pending_tsigs
  in
  pool.proc_pending_tsigs <- still_pending;
  List.iter (fun s -> Queue.add s tcb.pending_tsigs) claimed;
  match Current.get_opt () with
  | Some me when me == tcb -> Pool.run_pending_tsigs ()
  | Some _ | None -> ()

(* thread_kill: trap-like, handled only by the named thread. *)
let thread_kill target signo =
  let pool = target.pool in
  match pool.handlers.(signo) with
  | Sysdefs.Sig_ignore -> ()
  | Sysdefs.Sig_default ->
      (* the default action applies to the whole process: let the kernel
         take it *)
      Uctx.kill ~pid:pool.pid signo
  | Sysdefs.Sig_handler _ -> (
      Queue.add signo target.pending_tsigs;
      match Current.get_opt () with
      | Some me when me == target -> Pool.run_pending_tsigs ()
      | _ ->
          if target.tstate = Tblocked && eligible signo target then
            Pool.make_ready target (Wake_signal signo))

(* sigsend(P_THREAD_ALL): the signal goes to every thread. *)
let sigsend_all pool signo =
  List.iter (fun t -> thread_kill t signo) (threads_by_tid pool)
