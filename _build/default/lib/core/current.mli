(** The current-thread register.

    The simulation analogue of the dedicated register (SPARC %g7) that
    always points at the running thread's TCB.  Maintained by the pool
    scheduler on every thread switch and restored by the kernel's
    per-LWP resume hook, so it is correct at any point inside a thread's
    code no matter how LWPs interleave. *)

val get : unit -> Ttypes.tcb
(** Raises [Failure] outside a thread context (before Libthread.boot). *)

val get_opt : unit -> Ttypes.tcb option
val set : Ttypes.tcb option -> unit

val pool : unit -> Ttypes.pool
(** The calling thread's pool. *)
