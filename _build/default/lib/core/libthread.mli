(** Bootstrap of the threads library inside a simulated process.

    The kernel starts a process with one LWP running its main function
    (the paper: "it starts executing the thread compiled as the main
    program").  [boot main] turns that LWP into the first pool LWP and
    [main] into thread 1; if [main] returns, the process exits (C main
    semantics) — call {!Thread.exit} inside it to terminate only the
    main thread.

    Typical use:
    {[
      Kernel.spawn k ~name:"app" ~main:(Libthread.boot app_main)
    ]} *)

val boot :
  ?cost:Sunos_hw.Cost_model.t ->
  ?concurrency:int ->
  ?auto_grow:bool ->
  ?activations:bool ->
  (unit -> unit) ->
  unit ->
  unit
(** [cost] calibrates the library's charged path lengths (defaults to
    {!Sunos_hw.Cost_model.default}; benchmarks pass the machine's).
    [concurrency] pre-sizes the LWP pool (as thread_setconcurrency);
    [auto_grow] (default true) installs the SIGWAITING handler that adds
    an LWP when every LWP is blocked and runnable threads wait — the
    paper's deadlock-avoidance mechanism.  [activations] (default false)
    additionally enables scheduler-activations mode: the kernel hands
    the pool a running LWP on {e every} application block (the
    University of Washington comparison / "faster events" future
    work). *)

(** {1 Introspection (tests, benchmarks, debugger support)} *)

type stats = {
  creates_unbound : int;
  creates_bound : int;
  switches : int;  (** user-level thread context switches *)
  lwps_grown : int;  (** LWPs added by SIGWAITING *)
  pool_lwps : int;
  live_threads : int;
  runnable : int;
  stack_cache_hits : int;
  stack_cache_misses : int;
}

val stats : unit -> stats
(** Statistics of the calling thread's pool. *)

val threads_snapshot : unit -> (int * string) list
(** (tid, state) pairs — the library half of the paper's debugger story
    (the kernel half being /proc; see {!Sunos_kernel.Procfs}). *)
