(** Mutual exclusion locks ([mutex_enter] / [mutex_exit] /
    [mutex_tryenter]).

    Low overhead in space and time; strictly bracketing — releasing a
    lock the calling thread does not hold raises.  The implementation
    variant is chosen at initialization, as in the paper:

    - [Sleep] (the default): contenders context-switch away at user
      level.
    - [Spin]: contenders burn CPU until the lock frees.  Only sensible
      for bound threads on a multiprocessor.
    - [Adaptive]: spin briefly while the owner is running on another
      LWP, otherwise sleep — the classic SunOS adaptive lock.

    A mutex created with {!create_shared} lives in a shared segment or
    mapped file and synchronizes threads across processes; contended
    operations then go through the kernel ([kwait]/[kwake]). *)

type t

type variant = Sleep | Spin | Adaptive

val create : ?variant:variant -> unit -> t
(** A process-private mutex ("statically allocated as zero": usable
    immediately, default variant). *)

val create_shared : Syncvar.place -> t
(** The mutex at this shared placement — creating it if this is the
    first process to look, finding the existing state otherwise. *)

val enter : t -> unit
val exit : t -> unit
val try_enter : t -> bool

val is_locked : t -> bool
(** Racy snapshot; for tests and assertions. *)

val holding : t -> bool
(** Whether the calling thread owns the mutex. *)

exception Not_owner
(** Raised by {!exit} when the caller does not hold the lock (mutexes
    are strictly bracketing). *)

(**/**)

val release_from : t -> Ttypes.tcb -> unit
(** Internal (Condvar): release on behalf of [tcb] while it parks. *)
