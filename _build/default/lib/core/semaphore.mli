(** Counting semaphores ([sema_p] / [sema_v] / [sema_tryp]).

    Not as cheap as mutexes, but unbracketed: they carry state, so they
    suit asynchronous event notification — a [v] never blocks and needs
    no lock held, which is why the paper points to them for signal
    handlers. *)

type t

val create : ?count:int -> unit -> t
(** Default initial count: 0. *)

val create_shared : ?count:int -> Syncvar.place -> t
(** [count] applies only if this process creates the variable. *)

val p : t -> unit
(** Decrement; blocks while the count is zero. *)

val v : t -> unit
(** Increment; wakes a waiter if any.  Never blocks. *)

val try_p : t -> bool
(** Decrement if that needs no blocking. *)

val count : t -> int
(** Racy snapshot, for tests. *)
