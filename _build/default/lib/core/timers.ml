open Ttypes
module Time = Sunos_sim.Time
module Uctx = Sunos_kernel.Uctx
module Signo = Sunos_kernel.Signo
module Sysdefs = Sunos_kernel.Sysdefs

type id = int

type entry = {
  e_id : id;
  deadline : Time.t;
  action : [ `Wake of tcb | `Call of unit -> unit ];
  mutable cancelled : bool;
}

(* Per-process timer state, stored in the pool itself (each simulated
   process has its own single kernel timer to multiplex). *)
type state = {
  mutable entries : entry list;  (* sorted by deadline *)
  mutable next_id : int;
  mutable armed_for : Time.t option;
  mutable handler_installed : bool;
}

let state_key : state Sunos_sim.Univ.key = Sunos_sim.Univ.key ()

let get_state () =
  let pool = Current.pool () in
  match pool.timer_slot with
  | Some u -> (
      match Sunos_sim.Univ.unpack state_key u with
      | Some s -> s
      | None -> assert false)
  | None ->
      let s =
        { entries = []; next_id = 1; armed_for = None;
          handler_installed = false }
      in
      pool.timer_slot <- Some (Sunos_sim.Univ.pack state_key s);
      s

let insert_sorted s e =
  let rec go = function
    | [] -> [ e ]
    | x :: rest as l ->
        if Time.(e.deadline < x.deadline) then e :: l else x :: go rest
  in
  s.entries <- go s.entries

(* Re-arm the kernel timer for the earliest pending deadline. *)
let rearm s =
  match s.entries with
  | [] ->
      if s.armed_for <> None then begin
        s.armed_for <- None;
        Uctx.setitimer Sysdefs.Timer_real None
      end
  | e :: _ ->
      if s.armed_for <> Some e.deadline then begin
        s.armed_for <- Some e.deadline;
        let now = Uctx.gettime () in
        let span = Time.max 1L (Time.diff e.deadline now) in
        Uctx.setitimer Sysdefs.Timer_real (Some span)
      end

(* SIGALRM arrives in whichever thread the router picks: expire what is
   due, wake sleepers, run callbacks, re-arm for the rest. *)
let on_alarm s _signo =
  s.armed_for <- None;
  let now = Uctx.gettime () in
  let due, rest =
    List.partition (fun e -> Time.(e.deadline <= now)) s.entries
  in
  s.entries <- rest;
  List.iter
    (fun e ->
      if not e.cancelled then
        match e.action with
        | `Wake tcb -> Pool.make_ready tcb Wake_normal
        | `Call f -> f ())
    due;
  rearm s

let ensure_handler s =
  if not s.handler_installed then begin
    s.handler_installed <- true;
    ignore
      (Sigdeliver.set_disposition (Current.pool ()) Signo.sigalrm
         (Sysdefs.Sig_handler (on_alarm s)))
  end

let add s action span =
  let e =
    {
      e_id = s.next_id;
      deadline = Time.add (Uctx.gettime ()) span;
      action;
      cancelled = false;
    }
  in
  s.next_id <- s.next_id + 1;
  insert_sorted s e;
  rearm s;
  e

let sleep span =
  let s = get_state () in
  ensure_handler s;
  let deadline = Time.add (Uctx.gettime ()) span in
  let rec go () =
    let now = Uctx.gettime () in
    if Time.(now < deadline) then begin
      let self = Current.get () in
      let e = add s (`Wake self) (Time.diff deadline now) in
      (match
         Pool.suspend ~park:(fun tcb ->
             tcb.tstate <- Tblocked;
             tcb.cancel_wait <- (fun () -> e.cancelled <- true))
       with
      | Wake_normal -> ()
      | Wake_signal _ -> Pool.run_pending_tsigs ());
      e.cancelled <- true;
      go ()
    end
  in
  go ()

let after span f =
  let s = get_state () in
  ensure_handler s;
  let e = add s (`Call f) span in
  e.e_id

let cancel id =
  let s = get_state () in
  let found = ref false in
  List.iter
    (fun e ->
      if e.e_id = id && not e.cancelled then begin
        e.cancelled <- true;
        found := true
      end)
    s.entries;
  !found

let pending () =
  let s = get_state () in
  List.length (List.filter (fun e -> not e.cancelled) s.entries)
