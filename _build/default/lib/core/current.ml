let cur : Ttypes.tcb option ref = ref None

let get () =
  match !cur with
  | Some t -> t
  | None -> failwith "Sunos_threads: no current thread (Libthread.boot missing?)"

let get_opt () = !cur
let set t = cur := t
let pool () = (get ()).Ttypes.pool
