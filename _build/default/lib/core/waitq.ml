type entry = { e_tcb : Ttypes.tcb; e_alive : bool ref }

type t = entry Queue.t

let create () = Queue.create ()

let add q tcb =
  let alive = ref true in
  Queue.add { e_tcb = tcb; e_alive = alive } q;
  fun () -> alive := false

let rec pop q =
  match Queue.take_opt q with
  | None -> None
  | Some e ->
      if !(e.e_alive) then begin
        e.e_alive := false;
        Some e.e_tcb
      end
      else pop q

let pop_all q =
  let rec go acc =
    match pop q with None -> List.rev acc | Some t -> go (t :: acc)
  in
  go []

let is_empty q = Queue.fold (fun acc e -> acc && not !(e.e_alive)) true q

let length q = Queue.fold (fun acc e -> if !(e.e_alive) then acc + 1 else acc) 0 q
