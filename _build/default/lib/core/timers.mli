(** Per-thread timers multiplexed over the per-process real-time timer.

    The paper: "There is only one real-time interval timer per process…
    Library routines may implement multiple per-thread timers using the
    per-address space timer when that functionality is required."  This
    module is that library routine: any number of concurrent thread
    sleeps and timeout callbacks share the single kernel timer, re-armed
    for the earliest pending deadline, with SIGALRM routed through the
    thread-level signal machinery.

    The point of {!sleep} over {!Sunos_kernel.Uctx.sleep}: it blocks the
    {e thread} at user level instead of pinning an LWP in a kernel sleep,
    so a thousand sleeping threads cost one timer and zero LWPs. *)

val sleep : Sunos_sim.Time.span -> unit
(** Block the calling thread for the duration.  Other threads (and the
    LWP) keep running.  Restarts after signal handlers (SA_RESTART
    style). *)

type id

val after : Sunos_sim.Time.span -> (unit -> unit) -> id
(** Run a callback after the duration.  The callback executes in the
    context of whichever thread handles the timer signal, so it should be
    short and must not block indefinitely; to do real work, wake a thread
    (e.g. [Semaphore.v]). *)

val cancel : id -> bool
(** [true] if the callback had not fired yet. *)

val pending : unit -> int
(** Armed per-thread timers in this process (sleeps + callbacks). *)
