module Time = Sunos_sim.Time
module T = Sunos_threads.Thread
module Smutex = Sunos_threads.Mutex
module Scond = Sunos_threads.Condvar
module Ssem = Sunos_threads.Semaphore
module Srw = Sunos_threads.Rwlock
module Tls = Sunos_threads.Tls
module Uctx = Sunos_kernel.Uctx

(* ------------------------------------------------------------------ *)
(* Thread-specific data plumbing (needed by the thread wrapper)        *)
(* ------------------------------------------------------------------ *)

(* Destructors registered by Key.set, keyed by a unique key id so a
   second set for the same key replaces the cleanup rather than adding
   one.  POSIX runs destructors for keys with non-NULL values when the
   thread exits. *)
let tsd_cleanups : (int * (unit -> unit)) list Tls.key = Tls.key ~default:[]

let run_tsd_destructors () =
  let cleanups = Tls.get tsd_cleanups in
  Tls.set tsd_cleanups [];
  List.iter (fun (_, f) -> f ()) cleanups

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)
(* ------------------------------------------------------------------ *)

type attr = {
  detached : bool;
  bound : bool;
  priority : int option;
  stack_size : int option;
}

let default_attr =
  { detached = false; bound = false; priority = None; stack_size = None }

(* The layer does its own join bookkeeping (a done-flag monitor per
   thread) so detach() works at any time without zombie juggling. *)
type t = {
  mutable tid : int;
  m : Smutex.t;
  cv : Scond.t;
  mutable finished : bool;
  mutable detached_flag : bool;
  mutable joined : bool;
}

let create ?(attr = default_attr) f =
  let m = Smutex.create () in
  let cv = Scond.create () in
  let handle =
    { tid = 0; m; cv; finished = false; detached_flag = attr.detached;
      joined = false }
  in
  let body () =
    Fun.protect
      ~finally:(fun () ->
        run_tsd_destructors ();
        Smutex.enter m;
        handle.finished <- true;
        Scond.broadcast cv;
        Smutex.exit m)
      f
  in
  let flags = if attr.bound then [ T.THREAD_BIND_LWP ] else [] in
  let stack =
    match attr.stack_size with Some n -> `Caller n | None -> `Default
  in
  let tid = T.create ~flags ~stack body in
  (match attr.priority with
  | Some p -> ignore (T.priority ~thread:tid p)
  | None -> ());
  handle.tid <- tid;
  handle

let join h =
  if h.detached_flag then invalid_arg "Pthread.join: thread is detached";
  if h.joined then invalid_arg "Pthread.join: already joined";
  Smutex.enter h.m;
  while not h.finished do
    Scond.wait h.cv h.m
  done;
  Smutex.exit h.m;
  h.joined <- true

let detach h = h.detached_flag <- true
let self () = T.get_id ()
let equal a b = a.tid = b.tid

let exit () =
  run_tsd_destructors ();
  T.exit ()

let yield = T.yield

(* ------------------------------------------------------------------ *)
(* Once                                                                *)
(* ------------------------------------------------------------------ *)

type once_state = Not_started | Running | Done

type once = {
  o_m : Smutex.t;
  o_cv : Scond.t;
  mutable o_state : once_state;
}

let once_init () =
  { o_m = Smutex.create (); o_cv = Scond.create (); o_state = Not_started }

let once o f =
  Smutex.enter o.o_m;
  match o.o_state with
  | Done -> Smutex.exit o.o_m
  | Running ->
      while o.o_state <> Done do
        Scond.wait o.o_cv o.o_m
      done;
      Smutex.exit o.o_m
  | Not_started ->
      o.o_state <- Running;
      Smutex.exit o.o_m;
      Fun.protect
        ~finally:(fun () ->
          Smutex.enter o.o_m;
          o.o_state <- Done;
          Scond.broadcast o.o_cv;
          Smutex.exit o.o_m)
        f

(* ------------------------------------------------------------------ *)
(* Mutexes                                                             *)
(* ------------------------------------------------------------------ *)

module Mutex = struct
  type kind = Normal | Errorcheck

  type t = { kind : kind; mu : Smutex.t }

  let create ?(kind = Normal) ?(spin = false) () =
    let variant = if spin then Smutex.Spin else Smutex.Sleep in
    { kind; mu = Smutex.create ~variant () }

  let lock t =
    (match t.kind with
    | Errorcheck ->
        if Smutex.holding t.mu then
          invalid_arg "Pthread.Mutex.lock: relock of an errorcheck mutex"
    | Normal -> () (* relocking a Normal mutex self-deadlocks, as POSIX *));
    Smutex.enter t.mu

  let unlock t =
    match t.kind with
    | Errorcheck ->
        if not (Smutex.holding t.mu) then
          invalid_arg "Pthread.Mutex.unlock: not the owner"
        else Smutex.exit t.mu
    | Normal -> Smutex.exit t.mu

  let trylock t = Smutex.try_enter t.mu
end

(* ------------------------------------------------------------------ *)
(* Condition variables                                                 *)
(* ------------------------------------------------------------------ *)

module Cond = struct
  type t = { cv : Scond.t }

  let create () = { cv = Scond.create () }
  let wait t (m : Mutex.t) = Scond.wait t.cv m.Mutex.mu
  let signal t = Scond.signal t.cv
  let broadcast t = Scond.broadcast t.cv

  (* Timed wait, built with a helper thread that converts the timeout
     into a broadcast.  The waiter can be woken by either source; the
     generation counter tells whether a real signal arrived.  Spurious
     wakeups are inherent to condvars, so waking every waiter of this
     cond at the timeout is correct if blunt. *)
  let timedwait t (m : Mutex.t) span =
    let fired = ref false in
    ignore
      (T.create (fun () ->
           Uctx.sleep span;
           fired := true;
           Scond.broadcast t.cv));
    Scond.wait t.cv m.Mutex.mu;
    if !fired then `Timeout else `Signaled
end

(* ------------------------------------------------------------------ *)
(* Semaphores                                                          *)
(* ------------------------------------------------------------------ *)

module Sem = struct
  type t = Ssem.t

  let create count = Ssem.create ~count ()
  let wait = Ssem.p
  let trywait = Ssem.try_p
  let post = Ssem.v
  let getvalue = Ssem.count
end

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)
(* ------------------------------------------------------------------ *)

module Barrier = struct
  type t = {
    b_m : Smutex.t;
    b_cv : Scond.t;
    parties : int;
    mutable waiting : int;
    mutable generation : int;
  }

  let create parties =
    if parties <= 0 then invalid_arg "Pthread.Barrier.create";
    { b_m = Smutex.create (); b_cv = Scond.create (); parties; waiting = 0;
      generation = 0 }

  let wait t =
    Smutex.enter t.b_m;
    let gen = t.generation in
    t.waiting <- t.waiting + 1;
    let serial = t.waiting = t.parties in
    if serial then begin
      t.waiting <- 0;
      t.generation <- t.generation + 1;
      Scond.broadcast t.b_cv
    end
    else
      while t.generation = gen do
        Scond.wait t.b_cv t.b_m
      done;
    Smutex.exit t.b_m;
    serial
end

(* ------------------------------------------------------------------ *)
(* Reader/writer locks                                                 *)
(* ------------------------------------------------------------------ *)

module Rwlock = struct
  type t = Srw.t

  let create () = Srw.create ()
  let rdlock t = Srw.enter t Srw.Reader
  let wrlock t = Srw.enter t Srw.Writer
  let tryrdlock t = Srw.try_enter t Srw.Reader
  let trywrlock t = Srw.try_enter t Srw.Writer
  let unlock t = Srw.exit t
end

(* ------------------------------------------------------------------ *)
(* Thread-specific data                                                *)
(* ------------------------------------------------------------------ *)

module Key = struct
  type 'a t = {
    id : int;
    slot : 'a option Tls.key;
    destructor : ('a -> unit) option;
    mutable deleted : bool;
  }

  let next_id = ref 0

  let create ?destructor () =
    incr next_id;
    { id = !next_id; slot = Tls.key ~default:None; destructor; deleted = false }

  let get k = if k.deleted then None else Tls.get k.slot

  let set k v =
    if k.deleted then invalid_arg "Pthread.Key.set: deleted key";
    Tls.set k.slot (Some v);
    match k.destructor with
    | None -> ()
    | Some d ->
        let cleanups = List.remove_assoc k.id (Tls.get tsd_cleanups) in
        let cleanup () =
          if not k.deleted then
            match Tls.get k.slot with
            | Some v -> d v
            | None -> ()
        in
        Tls.set tsd_cleanups ((k.id, cleanup) :: cleanups)

  let delete k = k.deleted <- true
end
