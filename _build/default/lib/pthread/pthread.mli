(** POSIX P1003.4a-style threads implemented on top of the SunOS MT
    architecture — the layering the paper's summary calls out ("a
    minimalist translation of the UNIX environment to threads allows
    higher-level interfaces such as POSIX Pthreads to be implemented on
    top of SunOS threads").

    Everything here is user-level sugar over {!Sunos_threads}: pthreads
    map to THREAD_WAIT threads (detached ones drop the flag), mutex
    attributes select the implementation variant, condition timedwait is
    built from condvars plus thread_kill-driven wakeups, and
    thread-specific data is the dynamic mechanism the paper says can be
    built over thread-local storage. *)

type t
(** A pthread handle. *)

type attr = {
  detached : bool;  (** detached threads cannot be joined *)
  bound : bool;  (** PTHREAD_SCOPE_SYSTEM: bind to an LWP *)
  priority : int option;
  stack_size : int option;  (** caller-managed stack of this size *)
}

val default_attr : attr

val create : ?attr:attr -> (unit -> unit) -> t
val join : t -> unit
(** Raises [Invalid_argument] on a detached thread or double join. *)

val detach : t -> unit
val self : unit -> int
val equal : t -> t -> bool
val exit : unit -> 'a
val yield : unit -> unit

(** {1 Once-only initialization} *)

type once

val once_init : unit -> once
val once : once -> (unit -> unit) -> unit
(** The first caller runs [f]; concurrent callers wait for it to finish. *)

(** {1 Mutexes} *)

module Mutex : sig
  type t

  type kind =
    | Normal  (** self-deadlock on relock, like PTHREAD_MUTEX_NORMAL *)
    | Errorcheck  (** relock and wrong-owner unlock raise *)

  val create : ?kind:kind -> ?spin:bool -> unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  val trylock : t -> bool
end

(** {1 Condition variables} *)

module Cond : sig
  type t

  val create : unit -> t
  val wait : t -> Mutex.t -> unit

  val timedwait : t -> Mutex.t -> Sunos_sim.Time.span -> [ `Signaled | `Timeout ]
  (** Returns [`Timeout] if the timeout elapses first; the mutex is held
      again either way. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

(** {1 Semaphores (POSIX 1003.1b style)} *)

module Sem : sig
  type t

  val create : int -> t
  val wait : t -> unit
  val trywait : t -> bool
  val post : t -> unit
  val getvalue : t -> int
end

(** {1 Barriers} *)

module Barrier : sig
  type t

  val create : int -> t

  val wait : t -> bool
  (** [true] for exactly one thread per generation (the
      PTHREAD_BARRIER_SERIAL_THREAD return). *)
end

(** {1 Reader/writer locks} *)

module Rwlock : sig
  type t

  val create : unit -> t
  val rdlock : t -> unit
  val wrlock : t -> unit
  val tryrdlock : t -> bool
  val trywrlock : t -> bool
  val unlock : t -> unit
end

(** {1 Thread-specific data}

    The dynamic mechanism the paper says can be built over thread-local
    storage: keys created at any time, with optional destructors run at
    thread exit (here: at [join]/normal return of threads created by this
    layer). *)

module Key : sig
  type 'a t

  val create : ?destructor:('a -> unit) -> unit -> 'a t
  val get : 'a t -> 'a option
  val set : 'a t -> 'a -> unit
  val delete : 'a t -> unit
  (** Existing values are dropped without running destructors (POSIX). *)
end
