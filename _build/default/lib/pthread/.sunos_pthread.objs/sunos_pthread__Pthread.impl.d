lib/pthread/pthread.ml: Fun List Sunos_kernel Sunos_sim Sunos_threads
