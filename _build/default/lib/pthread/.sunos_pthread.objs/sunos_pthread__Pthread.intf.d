lib/pthread/pthread.mli: Sunos_sim
