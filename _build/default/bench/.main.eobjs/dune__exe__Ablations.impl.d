bench/ablations.ml: Int64 List Printf Sunos_baselines Sunos_hw Sunos_kernel Sunos_sim Sunos_threads Sunos_workloads
