bench/wallclock.ml: Analyze Bechamel Benchmark Effect Hashtbl Instance Int64 List Measure Printf Staged Sunos_kernel Sunos_sim Sunos_threads Test Toolkit
