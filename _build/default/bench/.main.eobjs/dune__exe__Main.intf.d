bench/main.mli:
