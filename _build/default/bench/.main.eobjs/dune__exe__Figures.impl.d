bench/figures.ml: Format List Printf String Sunos_hw Sunos_kernel Sunos_sim Sunos_threads Sunos_workloads
