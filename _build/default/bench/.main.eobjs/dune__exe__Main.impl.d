bench/main.ml: Ablations Array Figures List Printf Sys Wallclock
