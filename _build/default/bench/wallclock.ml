(* Bechamel wall-clock microbenchmarks of the real engine underneath the
   simulation: fiber spawn/suspend (OCaml effects), the event queue, and
   a complete simulated thread create+join.  These measure the
   reproduction's own implementation, not the 1991 cost model. *)

module Time = Sunos_sim.Time
module Eventq = Sunos_sim.Eventq
module Pheap = Sunos_sim.Pheap
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
open Bechamel
open Toolkit

let test_pheap =
  Test.make ~name:"pheap insert+pop x100"
    (Staged.stage (fun () ->
         let h = Pheap.create ~cmp:compare in
         for i = 0 to 99 do
           Pheap.insert h ((i * 7919) mod 100)
         done;
         for _ = 0 to 99 do
           ignore (Pheap.pop_min h)
         done))

let test_eventq =
  Test.make ~name:"eventq schedule+fire x100"
    (Staged.stage (fun () ->
         let q = Eventq.create () in
         for i = 1 to 100 do
           ignore (Eventq.at q (Int64.of_int i) ignore)
         done;
         Eventq.run q))

let test_fiber =
  Test.make ~name:"effect fiber spawn+2 suspends"
    (Staged.stage (fun () ->
         let step =
           Sunos_kernel.Uctx.run_fiber (fun () ->
               Uctx.charge 1L;
               Uctx.charge 1L)
         in
         (* drive the two charges by hand *)
         let rec drive = function
           | Sunos_kernel.Uctx.Step_charge (_, k) ->
               drive (Effect.Deep.continue k false)
           | Sunos_kernel.Uctx.Step_done -> ()
           | Sunos_kernel.Uctx.Step_sys _ | Sunos_kernel.Uctx.Step_raised _ ->
               assert false
         in
         drive step))

let test_sim_thread_roundtrip =
  Test.make ~name:"simulated create+join (whole machine)"
    (Staged.stage (fun () ->
         let k = Kernel.boot () in
         Kernel.set_tracing k false;
         ignore
           (Kernel.spawn k ~name:"b"
              ~main:
                (Libthread.boot (fun () ->
                     let t =
                       T.create ~flags:[ T.THREAD_WAIT ] (fun () -> ())
                     in
                     ignore (T.wait ~thread:t ()))));
         Kernel.run k))

let benchmark () =
  let tests =
    [ test_pheap; test_eventq; test_fiber; test_sim_thread_roundtrip ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Bechamel.Time.second 0.5) () in
  let results =
    List.map
      (fun test ->
        (Test.Elt.name (List.hd (Test.elements test)),
         Benchmark.all cfg instances test))
      tests
  in
  Printf.printf "\n=== W1: wall-clock microbenchmarks of the engine ===\n\n";
  List.iter
    (fun (name, raw) ->
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) raw
      in
      Hashtbl.iter
        (fun _k v ->
          match Analyze.OLS.estimates v with
          | Some [ est ] ->
              Printf.printf "  %-42s %12.0f ns/iter\n" name est
          | _ -> Printf.printf "  %-42s (no estimate)\n" name)
        analyzed)
    results
