(* The parallel-array scenario from the paper's "why have both threads
   and LWPs" section: with compute-bound work, it is better to have one
   thread per processor, each bound to its own LWP, than many unbound
   threads paying user-level switches for nothing.

   Run with:  dune exec examples/parallel_array.exe *)

module A = Sunos_workloads.Array_compute

let () =
  let cpus = 4 in
  Format.printf
    "Parallel array (%d CPUs): %d rows x %d sweeps, %dus per row@\n@\n" cpus
    A.default_params.A.rows A.default_params.A.sweeps
    A.default_params.A.row_compute_us;
  List.iter
    (fun (label, mode) ->
      let r = A.run ~cpus { A.default_params with mode } in
      Format.printf "%-24s %a@\n" label A.pp_results r)
    [
      ("unbound, 64 threads", A.Unbound 64);
      ("unbound, 16 threads", A.Unbound 16);
      ("unbound, 4 threads", A.Unbound 4);
      ("bound, 1/CPU", A.Bound);
      ("bound + gang class", A.Bound_gang);
    ];
  Format.printf
    "@\nWith spinning barriers and a competing CPU hog (gang scheduling \
     matters):@\n";
  List.iter
    (fun (label, mode) ->
      let r =
        A.run ~cpus ~background_load:true
          { A.default_params with mode; spin_barrier = true }
      in
      Format.printf "%-24s %a@\n" label A.pp_results r)
    [ ("bound, 1/CPU", A.Bound); ("bound + gang class", A.Bound_gang) ];
  Format.printf
    "@\nReading: dividing rows among fewer threads (one per LWP/CPU) \
     removes pointless@\nthread switches, exactly the paper's argument \
     for programmer-controlled binding.@."
