examples/window_system.mli:
