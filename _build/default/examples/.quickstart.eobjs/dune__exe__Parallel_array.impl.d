examples/parallel_array.ml: Format List Sunos_workloads
