examples/window_system.ml: Format List Sunos_baselines Sunos_sim Sunos_workloads
