examples/network_server.mli:
