examples/posix_layer.mli:
