examples/posix_layer.ml: Array Format List Printf Queue Sunos_kernel Sunos_pthread Sunos_sim Sunos_threads
