examples/network_server.ml: Format List Sunos_baselines Sunos_sim Sunos_workloads
