examples/database_server.mli:
