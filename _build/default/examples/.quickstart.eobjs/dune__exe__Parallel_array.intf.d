examples/parallel_array.mli:
