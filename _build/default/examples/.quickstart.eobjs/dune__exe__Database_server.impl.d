examples/database_server.ml: Format List Sunos_sim Sunos_workloads
