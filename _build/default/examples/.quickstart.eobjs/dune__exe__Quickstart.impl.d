examples/quickstart.ml: List Printf Sunos_kernel Sunos_sim Sunos_threads
