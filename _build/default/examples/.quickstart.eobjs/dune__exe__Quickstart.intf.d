examples/quickstart.mli:
