(* Quickstart: boot a simulated machine, start a multi-threaded process,
   and exercise the core of the paper's API — thread creation, joining,
   mutex/condvar synchronization, and the two-level model.

   Run with:  dune exec examples/quickstart.exe *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Condvar = Sunos_threads.Condvar

let app () =
  Printf.printf "[%.2fms] main thread %d on pid %d\n"
    (Time.to_ms (Uctx.gettime ()))
    (T.get_id ()) (Uctx.getpid ());

  (* A shared counter protected by a mutex, with a condvar to announce
     completion — the monitor pattern from the paper. *)
  let m = Mutex.create () in
  let cv = Condvar.create () in
  let counter = ref 0 in
  let workers = 8 and increments = 100 in

  let worker i () =
    for _ = 1 to increments do
      Mutex.enter m;
      incr counter;
      Mutex.exit m
    done;
    Printf.printf "[%.2fms] worker %d done (thread %d)\n"
      (Time.to_ms (Uctx.gettime ()))
      i (T.get_id ());
    Mutex.enter m;
    Condvar.signal cv;
    Mutex.exit m
  in

  (* Unbound threads: created without any kernel involvement. *)
  let ts =
    List.init workers (fun i -> T.create ~flags:[ T.THREAD_WAIT ] (worker i))
  in

  (* Wait on the monitor until every increment landed. *)
  Mutex.enter m;
  while !counter < workers * increments do
    Condvar.wait cv m
  done;
  Mutex.exit m;

  List.iter (fun t -> ignore (T.wait ~thread:t ())) ts;

  let stats = Libthread.stats () in
  Printf.printf "counter = %d (expected %d)\n" !counter (workers * increments);
  Printf.printf
    "threads created: %d unbound / %d bound; user-level switches: %d; \
     LWPs in pool: %d\n"
    stats.Libthread.creates_unbound stats.Libthread.creates_bound
    stats.Libthread.switches stats.Libthread.pool_lwps;
  Printf.printf
    "note: %d threads ran on %d LWP(s) — synchronization and switching \
     never entered the kernel\n"
    (workers + 1) stats.Libthread.pool_lwps

let () =
  let k = Kernel.boot ~cpus:1 () in
  ignore (Kernel.spawn k ~name:"quickstart" ~main:(Libthread.boot app));
  Kernel.run k;
  Printf.printf "simulated time elapsed: %.2f ms; kernel syscalls: %d\n"
    (Time.to_ms (Kernel.now k))
    (Kernel.syscall_count k)
