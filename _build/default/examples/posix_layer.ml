(* The paper's summary claims "a minimalist translation of the UNIX
   environment to threads allows higher-level interfaces such as POSIX
   Pthreads to be implemented on top of SunOS threads".  This example is
   that claim running: a POSIX-style bounded-buffer pipeline (mutex +
   condvars + barrier + thread-specific data) plus the debugging lock
   variant catching an ABBA deadlock before it happens.

   Run with:  dune exec examples/posix_layer.exe *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Libthread = Sunos_threads.Libthread
module Lockdebug = Sunos_threads.Lockdebug
module P = Sunos_pthread.Pthread

let bounded_buffer_demo () =
  Printf.printf "-- POSIX bounded buffer (2 producers, 2 consumers) --\n";
  let m = P.Mutex.create ~kind:P.Mutex.Errorcheck () in
  let not_empty = P.Cond.create () in
  let not_full = P.Cond.create () in
  let buf = Queue.create () in
  let capacity = 4 in
  let produced = ref 0 and consumed = ref 0 in
  let name_key = P.Key.create () in

  let producer id () =
    P.Key.set name_key (Printf.sprintf "producer-%d" id);
    for i = 1 to 10 do
      P.Mutex.lock m;
      while Queue.length buf >= capacity do
        P.Cond.wait not_full m
      done;
      Queue.add (id, i) buf;
      incr produced;
      P.Cond.signal not_empty;
      P.Mutex.unlock m;
      Uctx.charge_us 150
    done
  in
  let consumer id () =
    P.Key.set name_key (Printf.sprintf "consumer-%d" id);
    for _ = 1 to 10 do
      P.Mutex.lock m;
      while Queue.is_empty buf do
        P.Cond.wait not_empty m
      done;
      ignore (Queue.take buf);
      incr consumed;
      P.Cond.signal not_full;
      P.Mutex.unlock m;
      Uctx.charge_us 200
    done
  in
  let threads =
    List.init 2 (fun i -> P.create (producer i))
    @ List.init 2 (fun i -> P.create (consumer i))
  in
  List.iter P.join threads;
  Printf.printf "produced=%d consumed=%d (buffer bounded at %d)\n" !produced
    !consumed capacity

let barrier_demo () =
  Printf.printf "\n-- POSIX barrier: 4 phases in lock step --\n";
  let n = 3 in
  let barrier = P.Barrier.create n in
  let phase_of = Array.make n 0 in
  let skew = ref 0 in
  let worker i () =
    for phase = 1 to 4 do
      Uctx.charge_us (100 * (i + 1));
      phase_of.(i) <- phase;
      ignore (P.Barrier.wait barrier);
      (* when the barrier opens, every worker has reached this phase *)
      Array.iter (fun p -> if p < phase then incr skew) phase_of
    done
  in
  let ts = List.init n (fun i -> P.create (worker i)) in
  List.iter P.join ts;
  Printf.printf "phases completed in lock step; stragglers seen: %d\n" !skew

let lockdebug_demo () =
  Printf.printf "\n-- Lockdebug: the paper's 'extra debugging' variant --\n";
  Lockdebug.reset_order_graph ();
  let cache = Lockdebug.create ~name:"cache_lock" in
  let journal = Lockdebug.create ~name:"journal_lock" in
  (* establish the sanctioned order: cache -> journal *)
  Lockdebug.enter cache;
  Lockdebug.enter journal;
  Uctx.charge_us 300;
  Lockdebug.exit journal;
  Lockdebug.exit cache;
  Printf.printf "recorded order: cache_lock -> journal_lock\n";
  (* now the bug: someone takes them the other way around *)
  Lockdebug.enter journal;
  (try
     Lockdebug.enter cache;
     Printf.printf "BUG NOT CAUGHT\n"
   with Lockdebug.Lock_order_violation (held, wanted) ->
     Printf.printf
       "caught potential ABBA deadlock: tried to take %S while holding %S\n"
       wanted held);
  Lockdebug.exit journal;
  (* and the cheap one: relocking yourself *)
  Lockdebug.enter cache;
  (try Lockdebug.enter cache
   with Lockdebug.Self_deadlock n ->
     Printf.printf "caught self-deadlock on %S\n" n);
  Lockdebug.exit cache;
  Printf.printf "stats: cache_lock acquired %d times, contended %d, max hold %s\n"
    (Lockdebug.acquisitions cache)
    (Lockdebug.contentions cache)
    (Format.asprintf "%a" Time.pp (Lockdebug.max_hold cache))

let () =
  let k = Kernel.boot ~cpus:2 () in
  ignore
    (Kernel.spawn k ~name:"posix"
       ~main:
         (Libthread.boot (fun () ->
              bounded_buffer_demo ();
              barrier_demo ();
              lockdebug_demo ())));
  Kernel.run k;
  Printf.printf "\nsimulated time: %.2f ms\n" (Time.to_ms (Kernel.now k))
