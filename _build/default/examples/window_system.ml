(* The window-system scenario from the paper's introduction, run on all
   four thread architectures.  Each widget gets an input handler and an
   output handler — hundreds of threads, almost all idle — and the
   architectures differ in what that costs.

   Run with:  dune exec examples/window_system.exe *)

module W = Sunos_workloads.Window_system

let () =
  let p = { W.default_params with widgets = 150; events = 400 } in
  Format.printf
    "Window system: %d widgets (x2 handler threads each), %d input events@\n\
     model        | threads | LWPs | p50 latency | makespan@\n\
     -------------+---------+------+-------------+---------@\n"
    p.W.widgets p.W.events;
  List.iter
    (fun (module M : Sunos_baselines.Model.S) ->
      let r = W.run (module M) ~cpus:2 p in
      let p50 =
        if Sunos_sim.Stats.Hist.count r.W.latency = 0 then nan
        else
          Sunos_sim.Time.to_ms (Sunos_sim.Stats.Hist.percentile r.W.latency 0.5)
      in
      Format.printf "%-12s | %7d | %4d | %8.2f ms | %a@\n" M.name
        r.W.threads_created r.W.lwps_created p50 Sunos_sim.Time.pp
        r.W.makespan)
    Sunos_baselines.Model.all;
  Format.printf
    "@\nReading: the M:N architecture (mt) serves hundreds of threads with \
     a couple of LWPs@\nand keeps latency low; liblwp (user-level only) \
     stalls whole-process on the wire read;@\ncthreads (1:1) pays kernel \
     synchronization on every event.@."
