(* The database scenario from the paper's Figure 1: multiple server
   processes map one file of records; each record carries its own mutex
   *inside the mapped file*, so transactions in different processes
   exclude each other record by record.

   Run with:  dune exec examples/database_server.exe *)

module D = Sunos_workloads.Database

let () =
  Format.printf
    "Database: record locks live inside the mapped file (paper Fig. 1)@\n@\n";
  let base = D.default_params in
  (* one process vs two processes on a 2-CPU machine *)
  List.iter
    (fun processes ->
      let p = { base with processes } in
      let r = D.run ~cpus:2 p in
      Format.printf "%d process(es): %a@\n" processes D.pp_results r)
    [ 1; 2 ];
  (* contention sweep: fewer records = more lock conflicts.  Disk I/O is
     turned off here so locking, not caching, is what varies. *)
  Format.printf "@\ncontention sweep (2 processes x 2 threads, 4 CPUs, no I/O):@\n";
  List.iter
    (fun records ->
      let p =
        {
          base with
          records;
          io_every = max_int;
          start_cold = false;
          threads_per_process = 2;
          compute_us = 2000;
          transactions_per_thread = 50;
        }
      in
      (* 4 CPUs for 4 workers: no CPU queueing, so locking is the only
         thing that varies *)
      let r = D.run ~cpus:4 p in
      Format.printf "  %3d records: throughput %6.0f txn/s, p99 %a@\n" records
        r.D.throughput_tps Sunos_sim.Time.pp
        (Sunos_sim.Stats.Hist.percentile r.D.latency 0.99))
    [ 64; 16; 4; 1 ];
  Format.printf
    "@\nReading: cross-process record locking works through the shared \
     mapping; as contention@\nconcentrates on fewer records, tail latency \
     grows and throughput falls toward the@\nserial rate.@."
