(* Integration tests of the kernel substrate: the fiber machinery,
   dispatcher, blocking syscalls, signals, fork/exec, faults, timers. *)

module Time = Sunos_sim.Time
module Cost = Sunos_hw.Cost_model
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Sysdefs = Sunos_kernel.Sysdefs
module Signo = Sunos_kernel.Signo
module Sigset = Sunos_kernel.Sigset
module Netchan = Sunos_kernel.Netchan
module Procfs = Sunos_kernel.Procfs
module Ktypes = Sunos_kernel.Ktypes

let span = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal
let _ = span

(* ------------------------------------------------------------------ *)

let test_spawn_run_exit () =
  let k = Kernel.boot () in
  let ran = ref false in
  let pid =
    Kernel.spawn k ~name:"hello" ~main:(fun () ->
        Uctx.charge_us 100;
        ran := true;
        Uctx.exit 7)
  in
  Kernel.run k;
  Alcotest.(check bool) "main ran" true !ran;
  Alcotest.(check (option int)) "exit status" (Some 7) (Kernel.exit_status k pid);
  Alcotest.(check bool) "time advanced" true Time.(Kernel.now k > 0L)

let test_main_return_is_exit0 () =
  let k = Kernel.boot () in
  let pid = Kernel.spawn k ~name:"ret" ~main:(fun () -> Uctx.charge_us 10) in
  Kernel.run k;
  Alcotest.(check (option int)) "status 0" (Some 0) (Kernel.exit_status k pid)

let test_getpid_getlwpid () =
  let k = Kernel.boot () in
  let seen = ref (0, 0) in
  let pid =
    Kernel.spawn k ~name:"id" ~main:(fun () ->
        seen := (Uctx.getpid (), Uctx.getlwpid ()))
  in
  Kernel.run k;
  Alcotest.(check int) "pid matches" pid (fst !seen);
  Alcotest.(check int) "first lwp id" 1 (snd !seen)

let test_charge_advances_time () =
  let k = Kernel.boot () in
  let t = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"t" ~main:(fun () ->
         Uctx.charge (Time.ms 5);
         t := Uctx.gettime ()));
  Kernel.run k;
  Alcotest.(check bool) "at least 5ms" true Time.(!t >= Time.ms 5)

let test_uniprocessor_interleaves () =
  (* two CPU hogs on one CPU: both make progress via quantum preemption *)
  let k = Kernel.boot ~cpus:1 () in
  let log = ref [] in
  let hog tag () =
    for _ = 1 to 5 do
      Uctx.charge (Time.ms 60);
      log := tag :: !log
    done
  in
  ignore (Kernel.spawn k ~name:"a" ~main:(hog "a"));
  ignore (Kernel.spawn k ~name:"b" ~main:(hog "b"));
  Kernel.run k;
  let l = List.rev !log in
  Alcotest.(check int) "all slices" 10 (List.length l);
  (* the interleaving must not be a-a-a-a-a then b-b-b-b-b *)
  let first_five = List.filteri (fun i _ -> i < 5) l in
  Alcotest.(check bool) "interleaved" true
    (List.exists (fun x -> x = "b") first_five);
  Alcotest.(check bool) "preemptions happened" true
    (Kernel.preemption_count k > 0)

let test_multiprocessor_parallelism () =
  (* same work on 1 vs 2 CPUs: 2 CPUs should be nearly twice as fast *)
  let work k =
    ignore (Kernel.spawn k ~name:"a" ~main:(fun () -> Uctx.charge (Time.ms 500)));
    ignore (Kernel.spawn k ~name:"b" ~main:(fun () -> Uctx.charge (Time.ms 500)));
    Kernel.run k;
    Kernel.now k
  in
  let t1 = work (Kernel.boot ~cpus:1 ()) in
  let t2 = work (Kernel.boot ~cpus:2 ()) in
  Alcotest.(check bool) "2 cpus meaningfully faster" true
    (Time.to_ms t2 < Time.to_ms t1 *. 0.7)

let test_nanosleep () =
  let k = Kernel.boot () in
  let woke = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"sleeper" ~main:(fun () ->
         Uctx.sleep (Time.ms 50);
         woke := Uctx.gettime ()));
  Kernel.run k;
  Alcotest.(check bool) "slept >= 50ms" true Time.(!woke >= Time.ms 50);
  Alcotest.(check bool) "but not 2x" true (Time.to_ms !woke < 100.)

(* ------------------------- LWPs ------------------------- *)

let test_lwp_create_and_shared_memory () =
  let k = Kernel.boot ~cpus:2 () in
  let r = ref 0 in
  ignore
    (Kernel.spawn k ~name:"multi" ~main:(fun () ->
         let _lid =
           Uctx.lwp_create
             ~entry:(fun () ->
               Uctx.charge_us 10;
               r := !r + 41)
             ()
         in
         Uctx.charge_us 200;
         (* both LWPs share the address space: the ref is visible *)
         r := !r + 1));
  Kernel.run k;
  Alcotest.(check int) "both updates" 42 !r;
  Alcotest.(check bool) "lwp_create counted" true (Kernel.lwp_create_count k >= 2)

let test_lwp_blocking_syscall_does_not_block_process () =
  (* one LWP sleeps on a pipe read; the other keeps computing *)
  let k = Kernel.boot ~cpus:1 () in
  let progressed = ref false and got = ref "" in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         let rfd, wfd = Uctx.pipe () in
         ignore
           (Uctx.lwp_create
              ~entry:(fun () -> got := Uctx.read rfd ~len:100)
              ());
         Uctx.charge (Time.ms 2);
         progressed := true;
         ignore (Uctx.write wfd "ping")));
  Kernel.run k;
  Alcotest.(check bool) "other LWP progressed" true !progressed;
  Alcotest.(check string) "reader woke with data" "ping" !got

let test_lwp_park_unpark () =
  let k = Kernel.boot ~cpus:2 () in
  let woke = ref false in
  ignore
    (Kernel.spawn k ~name:"park" ~main:(fun () ->
         let parker = ref 0 in
         let lid =
           Uctx.lwp_create
             ~entry:(fun () ->
               parker := Uctx.getlwpid ();
               (match Uctx.lwp_park () with `Parked | `Timeout -> ());
               woke := true)
             ()
         in
         Uctx.charge (Time.ms 1);
         Uctx.lwp_unpark lid));
  Kernel.run k;
  Alcotest.(check bool) "parked LWP woken" true !woke

let test_lwp_unpark_token_before_park () =
  let k = Kernel.boot ~cpus:1 () in
  let result = ref `Timeout in
  ignore
    (Kernel.spawn k ~name:"token" ~main:(fun () ->
         let lid = Uctx.getlwpid () in
         Uctx.lwp_unpark lid;
         (* token pending: park returns immediately *)
         result := Uctx.lwp_park ~timeout:(Time.ms 1) ()));
  Kernel.run k;
  Alcotest.(check bool) "immediate park" true (!result = `Parked)

let test_lwp_park_timeout () =
  let k = Kernel.boot () in
  let result = ref `Parked in
  ignore
    (Kernel.spawn k ~name:"pt" ~main:(fun () ->
         result := Uctx.lwp_park ~timeout:(Time.ms 5) ()));
  Kernel.run k;
  Alcotest.(check bool) "timed out" true (!result = `Timeout)

(* ------------------------- fork / exec / wait ------------------------- *)

let test_fork1_and_waitpid () =
  let k = Kernel.boot () in
  let child_ran = ref false and reaped = ref (0, 0) in
  ignore
    (Kernel.spawn k ~name:"parent" ~main:(fun () ->
         let cpid =
           Uctx.fork1 ~child_main:(fun () ->
               child_ran := true;
               Uctx.exit 3)
         in
         let pid, status = Uctx.waitpid () in
         Alcotest.(check int) "waited right child" cpid pid;
         reaped := (pid, status)));
  Kernel.run k;
  Alcotest.(check bool) "child ran" true !child_ran;
  Alcotest.(check int) "status" 3 (snd !reaped)

let test_fork_costs_more_than_fork1 () =
  (* a process with several LWPs: fork() duplicates them (cost-wise),
     fork1() doesn't *)
  let measure use_fork =
    let k = Kernel.boot () in
    let elapsed = ref 0L in
    ignore
      (Kernel.spawn k ~name:"forker" ~main:(fun () ->
           for _ = 1 to 4 do
             ignore
               (Uctx.lwp_create
                  ~entry:(fun () ->
                    match Uctx.lwp_park () with `Parked | `Timeout -> ())
                  ())
           done;
           Uctx.charge_us 10;
           let t0 = Uctx.gettime () in
           let f = if use_fork then Uctx.fork else Uctx.fork1 in
           ignore (f ~child_main:(fun () -> Uctx.exit 0));
           elapsed := Time.diff (Uctx.gettime ()) t0;
           Uctx.exit 0));
    Kernel.run k;
    !elapsed
  in
  let t_fork = measure true and t_fork1 = measure false in
  Alcotest.(check bool) "fork > 2x fork1" true
    (Int64.to_float t_fork > 2. *. Int64.to_float t_fork1)

let test_fork_interrupts_other_lwps () =
  let k = Kernel.boot ~cpus:2 () in
  let interrupted = ref false in
  ignore
    (Kernel.spawn k ~name:"f" ~main:(fun () ->
         ignore
           (Uctx.lwp_create
              ~entry:(fun () ->
                (* raw syscall so we can observe EINTR directly *)
                match Uctx.syscall (Sysdefs.Sys_nanosleep (Time.s 10)) with
                | Sysdefs.R_err Sunos_kernel.Errno.EINTR -> interrupted := true
                | _ -> ())
              ());
         Uctx.charge (Time.ms 1);
         ignore (Uctx.fork ~child_main:(fun () -> Uctx.exit 0));
         ignore (Uctx.waitpid ())));
  Kernel.run k;
  Alcotest.(check bool) "sibling EINTR'd by fork" true !interrupted

let test_exec_replaces_process () =
  let k = Kernel.boot ~cpus:2 () in
  let new_ran = ref false and after_exec = ref false in
  let pid =
    Kernel.spawn k ~name:"old" ~main:(fun () ->
        ignore
          (Uctx.lwp_create
             ~entry:(fun () ->
               match Uctx.lwp_park () with `Parked | `Timeout -> ())
             ());
        Uctx.charge_us 50;
        ignore
          (Uctx.exec ~name:"new" ~main:(fun () ->
               new_ran := true;
               Uctx.exit 11));
        after_exec := true)
  in
  Kernel.run k;
  Alcotest.(check bool) "new image ran" true !new_ran;
  Alcotest.(check bool) "old image gone" false !after_exec;
  Alcotest.(check (option int)) "status from new image" (Some 11)
    (Kernel.exit_status k pid);
  match Kernel.find_proc k pid with
  | Some p -> Alcotest.(check string) "renamed" "new" p.Ktypes.pname
  | None -> Alcotest.fail "proc disappeared"

let test_waitpid_blocks_until_child_exits () =
  let k = Kernel.boot ~cpus:1 () in
  let order = ref [] in
  ignore
    (Kernel.spawn k ~name:"p" ~main:(fun () ->
         ignore
           (Uctx.fork1 ~child_main:(fun () ->
                Uctx.charge (Time.ms 10);
                order := "child_done" :: !order;
                Uctx.exit 0));
         ignore (Uctx.waitpid ());
         order := "parent_reaped" :: !order));
  Kernel.run k;
  Alcotest.(check (list string)) "child first" [ "child_done"; "parent_reaped" ]
    (List.rev !order)

let test_waitpid_no_children () =
  let k = Kernel.boot () in
  let got_echild = ref false in
  ignore
    (Kernel.spawn k ~name:"nokids" ~main:(fun () ->
         match Uctx.syscall (Sysdefs.Sys_waitpid None) with
         | Sysdefs.R_err Sunos_kernel.Errno.ECHILD -> got_echild := true
         | _ -> ()));
  Kernel.run k;
  Alcotest.(check bool) "ECHILD" true !got_echild

(* ------------------------- files / pipes / poll ------------------------- *)

let test_file_roundtrip () =
  let k = Kernel.boot () in
  let data = ref "" in
  ignore
    (Kernel.spawn k ~name:"io" ~main:(fun () ->
         let fd = Uctx.open_file "/tmp/x" in
         ignore (Uctx.write fd "hello world");
         Uctx.lseek fd 0;
         data := Uctx.read fd ~len:5));
  Kernel.run k;
  Alcotest.(check string) "read back" "hello" !data

let test_file_shared_offset_after_fork () =
  let k = Kernel.boot () in
  let parent_read = ref "" in
  ignore
    (Kernel.spawn k ~name:"off" ~main:(fun () ->
         let fd = Uctx.open_file "/f" in
         ignore (Uctx.write fd "abcdef");
         Uctx.lseek fd 0;
         ignore
           (Uctx.fork1 ~child_main:(fun () ->
                (* child read moves the shared offset *)
                ignore (Uctx.read fd ~len:3);
                Uctx.exit 0));
         ignore (Uctx.waitpid ());
         parent_read := Uctx.read fd ~len:3));
  Kernel.run k;
  Alcotest.(check string) "offset shared with child" "def" !parent_read

let test_cold_read_blocks_only_one_lwp () =
  let k = Kernel.boot ~cpus:1 () in
  (* Pre-create a file and evict its pages so the read goes to "disk". *)
  (match Sunos_kernel.Fs.create_file (Kernel.fs k) ~path:"/big" () with
  | Ok f ->
      ignore (Sunos_kernel.Fs.write f ~pos:0 (String.make 8192 'x'));
      Sunos_hw.Shared_memory.evict_all (Sunos_kernel.Fs.segment f)
  | Error _ -> Alcotest.fail "setup");
  let reader_done = ref Time.zero and computer_done = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"fault" ~main:(fun () ->
         ignore
           (Uctx.lwp_create
              ~entry:(fun () ->
                let fd = Uctx.open_file "/big" in
                ignore (Uctx.read fd ~len:4096);
                reader_done := Uctx.gettime ())
              ());
         Uctx.charge (Time.ms 3);
         computer_done := Uctx.gettime ()));
  Kernel.run k;
  (* disk access is ~22ms; the computing LWP must finish way earlier *)
  Alcotest.(check bool) "reader hit the disk" true
    Time.(!reader_done >= Time.ms 20);
  Alcotest.(check bool) "computer not blocked by fault" true
    (Time.to_ms !computer_done < 10.)

let test_pipe_blocking_write_when_full () =
  let k = Kernel.boot ~cpus:1 () in
  let wrote_all = ref false in
  ignore
    (Kernel.spawn k ~name:"pipe" ~main:(fun () ->
         let rfd, wfd = Uctx.pipe () in
         ignore
           (Uctx.lwp_create
              ~entry:(fun () ->
                (* fill beyond capacity: must block until drained *)
                let big = String.make 6000 'y' in
                let n1 = Uctx.write wfd big in
                let n2 =
                  if n1 < 6000 then
                    Uctx.write wfd (String.sub big 0 (6000 - n1))
                  else 0
                in
                if n1 + n2 > 5120 then wrote_all := true)
              ());
         Uctx.charge (Time.ms 1);
         (* drain *)
         let rec drain acc =
           if acc >= 6000 then ()
           else
             let s = Uctx.read rfd ~len:4096 in
             if s = "" then () else drain (acc + String.length s)
         in
         drain 0));
  Kernel.run k;
  Alcotest.(check bool) "writer completed past capacity" true !wrote_all

let test_write_closed_pipe_epipe_sigpipe () =
  let k = Kernel.boot () in
  let got_epipe = ref false in
  let pid =
    Kernel.spawn k ~name:"epipe" ~main:(fun () ->
        (* SIGPIPE default would kill us; ignore it to observe EPIPE *)
        ignore (Uctx.sigaction Signo.sigpipe Sysdefs.Sig_ignore);
        let rfd, wfd = Uctx.pipe () in
        Uctx.close rfd;
        (match Uctx.syscall (Sysdefs.Sys_write (wfd, "x")) with
        | Sysdefs.R_err Sunos_kernel.Errno.EPIPE -> got_epipe := true
        | _ -> ());
        Uctx.exit 0)
  in
  Kernel.run k;
  Alcotest.(check bool) "EPIPE" true !got_epipe;
  Alcotest.(check (option int)) "survived (ignored SIGPIPE)" (Some 0)
    (Kernel.exit_status k pid)

let test_sigpipe_default_kills () =
  let k = Kernel.boot () in
  let pid =
    Kernel.spawn k ~name:"die" ~main:(fun () ->
        let rfd, wfd = Uctx.pipe () in
        Uctx.close rfd;
        ignore (Uctx.syscall (Sysdefs.Sys_write (wfd, "x")));
        Uctx.exit 0)
  in
  Kernel.run k;
  Alcotest.(check (option int)) "killed by SIGPIPE"
    (Some (128 + Signo.sigpipe))
    (Kernel.exit_status k pid)

let test_poll_timeout () =
  let k = Kernel.boot () in
  let elapsed = ref 0L in
  ignore
    (Kernel.spawn k ~name:"poll" ~main:(fun () ->
         let rfd, _wfd = Uctx.pipe () in
         let t0 = Uctx.gettime () in
         let ready =
           Uctx.poll ~timeout:(Time.ms 25)
             [ { Sysdefs.pfd = rfd; want_in = true; want_out = false } ]
         in
         Alcotest.(check (list int)) "nothing ready" [] ready;
         elapsed := Time.diff (Uctx.gettime ()) t0));
  Kernel.run k;
  Alcotest.(check bool) "waited the timeout" true Time.(!elapsed >= Time.ms 25)

let test_poll_wakes_on_data () =
  let k = Kernel.boot ~cpus:1 () in
  let ready_fds = ref [] in
  ignore
    (Kernel.spawn k ~name:"pollw" ~main:(fun () ->
         let rfd, wfd = Uctx.pipe () in
         ignore
           (Uctx.lwp_create
              ~entry:(fun () ->
                Uctx.sleep (Time.ms 5);
                ignore (Uctx.write wfd "x"))
              ());
         ready_fds :=
           Uctx.poll [ { Sysdefs.pfd = rfd; want_in = true; want_out = false } ]));
  Kernel.run k;
  Alcotest.(check int) "pipe fd became ready" 1 (List.length !ready_fds)

(* ------------------------- signals ------------------------- *)

let test_kill_default_terminates () =
  let k = Kernel.boot ~cpus:2 () in
  let victim = ref 0 in
  let vpid =
    Kernel.spawn k ~name:"victim" ~main:(fun () ->
        victim := Uctx.getpid ();
        Uctx.sleep (Time.s 100))
  in
  ignore
    (Kernel.spawn k ~name:"killer" ~main:(fun () ->
         Uctx.sleep (Time.ms 10);
         Uctx.kill ~pid:vpid Signo.sigterm));
  Kernel.run k;
  Alcotest.(check (option int)) "SIGTERM default kill"
    (Some (128 + Signo.sigterm))
    (Kernel.exit_status k vpid)

let test_handler_runs_and_interrupts_sleep () =
  let k = Kernel.boot ~cpus:2 () in
  let handled = ref false and handled_at = ref Time.zero in
  let woke = ref Time.zero in
  let vpid =
    Kernel.spawn k ~name:"h" ~main:(fun () ->
        ignore
          (Uctx.sigaction Signo.sigusr1
             (Sysdefs.Sig_handler
                (fun _ ->
                  handled := true;
                  handled_at := Uctx.gettime ())));
        (* Uctx.sleep restarts after the handler (SA_RESTART style): the
           handler runs promptly but the sleep completes its full span *)
        Uctx.sleep (Time.s 2);
        woke := Uctx.gettime ())
  in
  ignore
    (Kernel.spawn k ~name:"sender" ~main:(fun () ->
         Uctx.sleep (Time.ms 10);
         Uctx.kill ~pid:vpid Signo.sigusr1));
  Kernel.run k;
  Alcotest.(check bool) "handler ran" true !handled;
  Alcotest.(check bool) "handler ran promptly, mid-sleep" true
    (Time.to_ms !handled_at < 100.);
  Alcotest.(check bool) "sleep then completed its span" true
    (Time.to_s !woke >= 2.)

let test_masked_signal_pends_until_unmask () =
  let k = Kernel.boot ~cpus:2 () in
  let handled_at = ref Time.zero in
  let vpid =
    Kernel.spawn k ~name:"mask" ~main:(fun () ->
        ignore
          (Uctx.sigaction Signo.sigusr1
             (Sysdefs.Sig_handler (fun _ -> handled_at := Uctx.gettime ())));
        Uctx.sigprocmask Sigset.Sig_block (Sigset.of_list [ Signo.sigusr1 ]);
        Uctx.sleep (Time.ms 50);
        (* still masked here; unmask should deliver the pended signal *)
        Uctx.sigprocmask Sigset.Sig_unblock (Sigset.of_list [ Signo.sigusr1 ]))
  in
  ignore
    (Kernel.spawn k ~name:"sender" ~main:(fun () ->
         Uctx.sleep (Time.ms 5);
         Uctx.kill ~pid:vpid Signo.sigusr1));
  Kernel.run k;
  Alcotest.(check bool) "handled only after unmask" true
    Time.(!handled_at >= Time.ms 50)

let test_trap_default_kills_whole_process () =
  let k = Kernel.boot ~cpus:2 () in
  let other_survived = ref false in
  let pid =
    Kernel.spawn k ~name:"segv" ~main:(fun () ->
        ignore
          (Uctx.lwp_create
             ~entry:(fun () ->
               Uctx.sleep (Time.s 1);
               other_survived := true)
             ());
        Uctx.charge_us 10;
        Uctx.trap Signo.sigsegv;
        (* unreachable *)
        other_survived := true)
  in
  Kernel.run k;
  Alcotest.(check (option int)) "SIGSEGV core-kill"
    (Some (128 + Signo.sigsegv))
    (Kernel.exit_status k pid);
  Alcotest.(check bool) "all LWPs destroyed" false !other_survived

let test_trap_handler_runs_synchronously () =
  let k = Kernel.boot () in
  let order = ref [] in
  ignore
    (Kernel.spawn k ~name:"fpe" ~main:(fun () ->
         ignore
           (Uctx.sigaction Signo.sigfpe
              (Sysdefs.Sig_handler (fun _ -> order := "handler" :: !order)));
         order := "before" :: !order;
         Uctx.trap Signo.sigfpe;
         order := "after" :: !order));
  Kernel.run k;
  Alcotest.(check (list string)) "synchronous" [ "before"; "handler"; "after" ]
    (List.rev !order)

let test_sigwaiting_posted_when_all_lwps_block () =
  let k = Kernel.boot () in
  ignore
    (Kernel.spawn k ~name:"w" ~main:(fun () ->
         let rfd, _wfd = Uctx.pipe () in
         (* single LWP blocks indefinitely on a pipe that never fills *)
         ignore
           (Uctx.poll [ { Sysdefs.pfd = rfd; want_in = true; want_out = false } ])));
  Kernel.run k;
  Alcotest.(check bool) "SIGWAITING fired" true (Kernel.sigwaiting_count k >= 1)

let test_sigwaiting_handler_can_create_lwp () =
  (* The deadlock-avoidance pattern: a SIGWAITING handler creates a new
     LWP which then unblocks the stuck one. *)
  let k = Kernel.boot ~cpus:2 () in
  let unblocked = ref false in
  ignore
    (Kernel.spawn k ~name:"grow" ~main:(fun () ->
         let rfd, wfd = Uctx.pipe () in
         ignore
           (Uctx.sigaction Signo.sigwaiting
              (Sysdefs.Sig_handler
                 (fun _ ->
                   ignore
                     (Uctx.lwp_create
                        ~entry:(fun () -> ignore (Uctx.write wfd "go"))
                        ()))));
         let data = Uctx.read rfd ~len:10 in
         if data = "go" then unblocked := true));
  Kernel.run k;
  Alcotest.(check bool) "handler grew the pool and unblocked" true !unblocked

let test_stop_continue () =
  let k = Kernel.boot ~cpus:2 () in
  let progress = ref 0 in
  let vpid =
    Kernel.spawn k ~name:"stoppee" ~main:(fun () ->
        for _ = 1 to 100 do
          Uctx.charge (Time.ms 1);
          incr progress
        done)
  in
  ignore
    (Kernel.spawn k ~name:"stopper" ~main:(fun () ->
         Uctx.sleep (Time.ms 5);
         Uctx.kill ~pid:vpid Signo.sigstop;
         Uctx.sleep (Time.ms 50);
         let frozen = !progress in
         Uctx.sleep (Time.ms 50);
         Alcotest.(check int) "no progress while stopped" frozen !progress;
         Uctx.kill ~pid:vpid Signo.sigcont));
  Kernel.run k;
  Alcotest.(check int) "finished after continue" 100 !progress

let test_lwp_directed_signal () =
  let k = Kernel.boot ~cpus:2 () in
  let handled_by = ref 0 in
  ignore
    (Kernel.spawn k ~name:"ldir" ~main:(fun () ->
         ignore
           (Uctx.sigaction Signo.sigusr2
              (Sysdefs.Sig_handler (fun _ -> handled_by := Uctx.getlwpid ())));
         let target =
           Uctx.lwp_create ~entry:(fun () -> Uctx.sleep (Time.ms 50)) ()
         in
         Uctx.charge_us 100;
         Uctx.lwp_kill ~lwpid:target Signo.sigusr2;
         Uctx.sleep (Time.ms 100)));
  Kernel.run k;
  Alcotest.(check int) "handled by the targeted LWP" 2 !handled_by

(* ------------------------- timers, rusage, sched ------------------------- *)

let test_real_timer_sigalrm () =
  let k = Kernel.boot () in
  let fired_at = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"alrm" ~main:(fun () ->
         ignore
           (Uctx.sigaction Signo.sigalrm
              (Sysdefs.Sig_handler (fun _ -> fired_at := Uctx.gettime ())));
         Uctx.setitimer Sysdefs.Timer_real (Some (Time.ms 30));
         Uctx.sleep (Time.ms 200)));
  Kernel.run k;
  Alcotest.(check bool) "fired around 30ms" true
    (Time.to_ms !fired_at >= 30. && Time.to_ms !fired_at < 100.)

let test_virtual_timer_counts_user_time_only () =
  let k = Kernel.boot () in
  let fired = ref false in
  ignore
    (Kernel.spawn k ~name:"vt" ~main:(fun () ->
         ignore
           (Uctx.sigaction Signo.sigvtalrm
              (Sysdefs.Sig_handler (fun _ -> fired := true)));
         Uctx.setitimer Sysdefs.Timer_virtual (Some (Time.ms 10));
         (* sleeping consumes no user CPU: timer must NOT fire *)
         Uctx.sleep (Time.ms 100);
         Alcotest.(check bool) "not fired while sleeping" false !fired;
         (* now burn user CPU *)
         Uctx.charge (Time.ms 20)));
  Kernel.run k;
  Alcotest.(check bool) "fired on user time" true !fired

let test_getrusage () =
  let k = Kernel.boot () in
  let ru = ref None in
  ignore
    (Kernel.spawn k ~name:"ru" ~main:(fun () ->
         Uctx.charge (Time.ms 7);
         ru := Some (Uctx.getrusage ())));
  Kernel.run k;
  match !ru with
  | Some r ->
      Alcotest.(check bool) "utime >= 7ms" true
        Time.(r.Sysdefs.ru_utime >= Time.ms 7);
      Alcotest.(check bool) "stime > 0 (syscalls)" true
        Time.(r.Sysdefs.ru_stime > 0L);
      Alcotest.(check int) "one lwp" 1 r.Sysdefs.ru_nlwps
  | None -> Alcotest.fail "no rusage"

let test_rlimit_cpu_sigxcpu () =
  let k = Kernel.boot () in
  let got = ref false in
  ignore
    (Kernel.spawn k ~name:"lim" ~main:(fun () ->
         ignore
           (Uctx.sigaction Signo.sigxcpu
              (Sysdefs.Sig_handler (fun _ -> got := true)));
         Uctx.setrlimit_cpu (Some (Time.ms 5));
         Uctx.charge (Time.ms 20)));
  Kernel.run k;
  Alcotest.(check bool) "SIGXCPU delivered" true !got

let test_realtime_preempts_timeshare () =
  let k = Kernel.boot ~cpus:1 () in
  let finish_rt = ref Time.zero and finish_ts = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"ts" ~main:(fun () ->
         Uctx.charge (Time.ms 200);
         finish_ts := Uctx.gettime ()));
  ignore
    (Kernel.spawn k ~name:"rt" ~main:(fun () ->
         Uctx.priocntl (Sysdefs.Cls_realtime 10);
         Uctx.sleep (Time.ms 10);
         (* on wake, RT must preempt the TS hog at its next boundary *)
         Uctx.charge (Time.ms 50);
         finish_rt := Uctx.gettime ()));
  Kernel.run k;
  Alcotest.(check bool) "RT finished before TS hog" true
    Time.(!finish_rt < !finish_ts)

let test_processor_bind () =
  let k = Kernel.boot ~cpus:2 () in
  ignore
    (Kernel.spawn k ~name:"bind" ~main:(fun () ->
         Uctx.processor_bind (Some 1);
         Uctx.charge (Time.ms 5)));
  Kernel.run k;
  (* bound LWP must have run on cpu1 only: cpu1 accumulated busy time *)
  let m = Kernel.machine k in
  let busy1 =
    Sunos_hw.Cpu.busy_time m.Sunos_hw.Machine.cpus.(1) ~now:(Kernel.now k)
  in
  Alcotest.(check bool) "cpu1 did the work" true Time.(busy1 >= Time.ms 5)

let test_processor_bind_invalid () =
  let k = Kernel.boot ~cpus:1 () in
  let got = ref false in
  ignore
    (Kernel.spawn k ~name:"bad" ~main:(fun () ->
         match Uctx.syscall (Sysdefs.Sys_processor_bind (Some 7)) with
         | Sysdefs.R_err Sunos_kernel.Errno.EINVAL -> got := true
         | _ -> ()));
  Kernel.run k;
  Alcotest.(check bool) "EINVAL" true !got

(* ------------------------- kwait/kwake, mmap ------------------------- *)

let test_kwait_kwake_cross_process () =
  let k = Kernel.boot ~cpus:2 () in
  (* Both processes map the same file; one sleeps on an offset, the other
     wakes it through the mapped segment (Figure 1's mechanism). *)
  (match Sunos_kernel.Fs.create_file (Kernel.fs k) ~path:"/shared" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  let woken = ref false in
  ignore
    (Kernel.spawn k ~name:"waiter" ~main:(fun () ->
         let fd = Uctx.open_file "/shared" in
         let seg = Uctx.mmap fd in
         (match Uctx.kwait ~seg ~offset:64 () with
         | `Woken -> woken := true
         | `Timeout -> ())));
  ignore
    (Kernel.spawn k ~name:"waker" ~main:(fun () ->
         Uctx.sleep (Time.ms 20);
         let fd = Uctx.open_file "/shared" in
         let seg = Uctx.mmap fd in
         let n = Uctx.kwake ~seg ~offset:64 ~count:1 in
         Alcotest.(check int) "woke one" 1 n));
  Kernel.run k;
  Alcotest.(check bool) "cross-process wake" true !woken

let test_kwait_timeout () =
  let k = Kernel.boot () in
  let timed_out = ref false in
  ignore
    (Kernel.spawn k ~name:"kt" ~main:(fun () ->
         let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
         match Uctx.kwait ~seg ~offset:0 ~timeout:(Time.ms 5) () with
         | `Timeout -> timed_out := true
         | `Woken -> ()));
  Kernel.run k;
  Alcotest.(check bool) "timed out" true !timed_out

let test_touch_minor_and_major_fault () =
  let k = Kernel.boot () in
  (match Sunos_kernel.Fs.create_file (Kernel.fs k) ~path:"/m" () with
  | Ok f -> ignore (Sunos_kernel.Fs.write f ~pos:0 (String.make 4096 'z'))
  | Error _ -> Alcotest.fail "setup");
  let pid =
    Kernel.spawn k ~name:"faulter" ~main:(fun () ->
        let anon = Uctx.mmap_anon ~size:8192 ~shared:false in
        Uctx.touch anon ~offset:0;
        (* second touch: resident, no fault *)
        Uctx.touch anon ~offset:0;
        let fd = Uctx.open_file "/m" in
        let seg = Uctx.mmap fd in
        Sunos_hw.Shared_memory.evict_all seg;
        Uctx.touch seg ~offset:0)
  in
  Kernel.run k;
  match Kernel.find_proc k pid with
  | Some p ->
      Alcotest.(check int) "one minor fault" 1 p.Ktypes.minflt;
      Alcotest.(check int) "one major fault" 1 p.Ktypes.majflt
  | None -> Alcotest.fail "proc gone"

(* ------------------------- netchan / tty ------------------------- *)

let test_netchan_request_reply () =
  let k = Kernel.boot () in
  let chan = Netchan.create ~name:"svc" in
  let reply = ref "" in
  ignore
    (Kernel.spawn k ~name:"server" ~main:(fun () ->
         let fd = Uctx.open_net chan in
         let req = Uctx.read fd ~len:1000 in
         ignore (Uctx.write fd ("pong:" ^ req))));
  (* inject a request from "the network" after 5ms *)
  ignore
    (Sunos_sim.Eventq.after (Kernel.machine k).Sunos_hw.Machine.eventq
       (Time.ms 5) (fun () ->
         Netchan.inject chan
           { Netchan.payload = "ping"; reply_to = (fun s -> reply := s) }));
  Kernel.run k;
  Alcotest.(check string) "served" "pong:ping" !reply

let test_tty_read_blocks_then_delivers () =
  let k = Kernel.boot () in
  let line = ref "" in
  ignore
    (Kernel.spawn k ~name:"sh" ~main:(fun () ->
         let fd = Uctx.open_file "/dev/tty" in
         ignore fd;
         ()));
  (* Fd_tty isn't reachable via open; use syscall level: spawn with an
     explicit tty fd through Sys_open_net-like path is absent, so this
     test drives the tty through poll on a dedicated process. *)
  ignore
    (Kernel.spawn k ~name:"tty" ~main:(fun () ->
         (* install the tty as fd by convention: fd 0 is not auto-wired;
            use the direct syscall to read the machine tty *)
         ()));
  ignore line;
  Kernel.run k;
  ()

(* ------------------------- procfs ------------------------- *)

let test_procfs_snapshot () =
  let k = Kernel.boot ~cpus:2 () in
  ignore
    (Kernel.spawn k ~name:"watched" ~main:(fun () ->
         ignore (Uctx.lwp_create ~entry:(fun () -> Uctx.sleep (Time.ms 20)) ());
         Uctx.charge (Time.ms 5);
         (* snapshot while alive *)
         ()));
  Kernel.run ~until:(Time.ms 2) k;
  let snap = Procfs.snapshot k in
  Alcotest.(check int) "one proc" 1 (List.length snap);
  let pi = List.hd snap in
  Alcotest.(check string) "name" "watched" pi.Procfs.pi_name;
  Alcotest.(check bool) "lwps visible" true (pi.Procfs.pi_nlwps >= 1);
  Kernel.run k;
  let pi = List.hd (Procfs.snapshot k) in
  Alcotest.(check string) "zombie at end" "reaped" pi.Procfs.pi_state

let () =
  Alcotest.run "sunos_kernel"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "spawn/run/exit" `Quick test_spawn_run_exit;
          Alcotest.test_case "return is exit 0" `Quick test_main_return_is_exit0;
          Alcotest.test_case "getpid/getlwpid" `Quick test_getpid_getlwpid;
          Alcotest.test_case "charge advances time" `Quick
            test_charge_advances_time;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "uniprocessor interleaves" `Quick
            test_uniprocessor_interleaves;
          Alcotest.test_case "multiprocessor parallelism" `Quick
            test_multiprocessor_parallelism;
          Alcotest.test_case "nanosleep" `Quick test_nanosleep;
          Alcotest.test_case "RT preempts TS" `Quick
            test_realtime_preempts_timeshare;
          Alcotest.test_case "processor_bind" `Quick test_processor_bind;
          Alcotest.test_case "processor_bind invalid" `Quick
            test_processor_bind_invalid;
        ] );
      ( "lwp",
        [
          Alcotest.test_case "create + shared memory" `Quick
            test_lwp_create_and_shared_memory;
          Alcotest.test_case "blocking syscall blocks one LWP" `Quick
            test_lwp_blocking_syscall_does_not_block_process;
          Alcotest.test_case "park/unpark" `Quick test_lwp_park_unpark;
          Alcotest.test_case "unpark token" `Quick
            test_lwp_unpark_token_before_park;
          Alcotest.test_case "park timeout" `Quick test_lwp_park_timeout;
        ] );
      ( "fork_exec_wait",
        [
          Alcotest.test_case "fork1 + waitpid" `Quick test_fork1_and_waitpid;
          Alcotest.test_case "fork dearer than fork1" `Quick
            test_fork_costs_more_than_fork1;
          Alcotest.test_case "fork EINTRs siblings" `Quick
            test_fork_interrupts_other_lwps;
          Alcotest.test_case "exec replaces" `Quick test_exec_replaces_process;
          Alcotest.test_case "waitpid blocks" `Quick
            test_waitpid_blocks_until_child_exits;
          Alcotest.test_case "waitpid ECHILD" `Quick test_waitpid_no_children;
        ] );
      ( "io",
        [
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "shared offset" `Quick
            test_file_shared_offset_after_fork;
          Alcotest.test_case "cold read blocks one LWP" `Quick
            test_cold_read_blocks_only_one_lwp;
          Alcotest.test_case "pipe full blocks writer" `Quick
            test_pipe_blocking_write_when_full;
          Alcotest.test_case "EPIPE when ignored" `Quick
            test_write_closed_pipe_epipe_sigpipe;
          Alcotest.test_case "SIGPIPE default kills" `Quick
            test_sigpipe_default_kills;
          Alcotest.test_case "poll timeout" `Quick test_poll_timeout;
          Alcotest.test_case "poll wakes on data" `Quick test_poll_wakes_on_data;
          Alcotest.test_case "netchan request/reply" `Quick
            test_netchan_request_reply;
          Alcotest.test_case "tty placeholder" `Quick
            test_tty_read_blocks_then_delivers;
        ] );
      ( "signals",
        [
          Alcotest.test_case "default kill" `Quick test_kill_default_terminates;
          Alcotest.test_case "handler + EINTR" `Quick
            test_handler_runs_and_interrupts_sleep;
          Alcotest.test_case "mask pends" `Quick
            test_masked_signal_pends_until_unmask;
          Alcotest.test_case "trap default kills all" `Quick
            test_trap_default_kills_whole_process;
          Alcotest.test_case "trap handler synchronous" `Quick
            test_trap_handler_runs_synchronously;
          Alcotest.test_case "SIGWAITING posted" `Quick
            test_sigwaiting_posted_when_all_lwps_block;
          Alcotest.test_case "SIGWAITING grows pool" `Quick
            test_sigwaiting_handler_can_create_lwp;
          Alcotest.test_case "stop/continue" `Quick test_stop_continue;
          Alcotest.test_case "lwp-directed" `Quick test_lwp_directed_signal;
        ] );
      ( "timers_rusage",
        [
          Alcotest.test_case "real timer" `Quick test_real_timer_sigalrm;
          Alcotest.test_case "virtual timer" `Quick
            test_virtual_timer_counts_user_time_only;
          Alcotest.test_case "getrusage" `Quick test_getrusage;
          Alcotest.test_case "rlimit cpu" `Quick test_rlimit_cpu_sigxcpu;
        ] );
      ( "memory",
        [
          Alcotest.test_case "kwait/kwake cross-process" `Quick
            test_kwait_kwake_cross_process;
          Alcotest.test_case "kwait timeout" `Quick test_kwait_timeout;
          Alcotest.test_case "touch faults" `Quick
            test_touch_minor_and_major_fault;
        ] );
      ( "procfs",
        [ Alcotest.test_case "snapshot" `Quick test_procfs_snapshot ] );
    ]
