(* Tests of the POSIX layer built on top of the threads library. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Libthread = Sunos_threads.Libthread
module P = Sunos_pthread.Pthread

let run_app ?(cpus = 1) main =
  let k = Kernel.boot ~cpus () in
  ignore (Kernel.spawn k ~name:"papp" ~main:(Libthread.boot main));
  Kernel.run k;
  k

let test_create_join () =
  let ran = ref false in
  ignore
    (run_app (fun () ->
         let t = P.create (fun () -> ran := true) in
         P.join t));
  Alcotest.(check bool) "ran and joined" true !ran

let test_join_errors () =
  ignore
    (run_app (fun () ->
         let t = P.create (fun () -> ()) in
         P.join t;
         (try
            P.join t;
            Alcotest.fail "double join must raise"
          with Invalid_argument _ -> ());
         let d = P.create ~attr:{ P.default_attr with detached = true } (fun () -> ()) in
         try
           P.join d;
           Alcotest.fail "joining detached must raise"
         with Invalid_argument _ -> ()))

let test_detach_after_create () =
  ignore
    (run_app (fun () ->
         let t = P.create (fun () -> P.yield ()) in
         P.detach t;
         try
           P.join t;
           Alcotest.fail "join after detach must raise"
         with Invalid_argument _ -> ()))

let test_bound_attr () =
  let k =
    run_app ~cpus:2 (fun () ->
        let t =
          P.create ~attr:{ P.default_attr with bound = true } (fun () ->
              Uctx.charge_us 100)
        in
        P.join t)
  in
  Alcotest.(check bool) "bound pthread took an LWP" true
    (Kernel.lwp_create_count k >= 2)

let test_once_runs_once () =
  let count = ref 0 in
  ignore
    (run_app (fun () ->
         let o = P.once_init () in
         let ts =
           List.init 5 (fun _ ->
               P.create (fun () -> P.once o (fun () -> incr count)))
         in
         P.once o (fun () -> incr count);
         List.iter P.join ts));
  Alcotest.(check int) "exactly once" 1 !count

let test_once_waits_for_runner () =
  let order = ref [] in
  ignore
    (run_app (fun () ->
         let o = P.once_init () in
         let t1 =
           P.create (fun () ->
               P.once o (fun () ->
                   order := "init_start" :: !order;
                   Uctx.sleep (Time.ms 10);
                   order := "init_done" :: !order))
         in
         P.yield ();
         let t2 =
           P.create (fun () ->
               P.once o (fun () -> Alcotest.fail "second runner");
               order := "second_after" :: !order)
         in
         P.join t1;
         P.join t2));
  Alcotest.(check (list string)) "second waited"
    [ "init_start"; "init_done"; "second_after" ]
    (List.rev !order)

let test_mutex_errorcheck () =
  ignore
    (run_app (fun () ->
         let m = P.Mutex.create ~kind:P.Mutex.Errorcheck () in
         P.Mutex.lock m;
         (try
            P.Mutex.lock m;
            Alcotest.fail "relock must raise"
          with Invalid_argument _ -> ());
         P.Mutex.unlock m;
         try
           P.Mutex.unlock m;
           Alcotest.fail "unlock when not owner must raise"
         with Invalid_argument _ -> ()))

let test_cond_timedwait_timeout () =
  let result = ref `Signaled in
  ignore
    (run_app (fun () ->
         let m = P.Mutex.create () in
         let cv = P.Cond.create () in
         P.Mutex.lock m;
         result := P.Cond.timedwait cv m (Time.ms 20);
         P.Mutex.unlock m));
  Alcotest.(check bool) "timed out" true (!result = `Timeout)

let test_cond_timedwait_signaled () =
  let result = ref `Timeout in
  ignore
    (run_app (fun () ->
         let m = P.Mutex.create () in
         let cv = P.Cond.create () in
         let t =
           P.create (fun () ->
               Uctx.sleep (Time.ms 5);
               P.Cond.signal cv)
         in
         P.Mutex.lock m;
         result := P.Cond.timedwait cv m (Time.s 10);
         P.Mutex.unlock m;
         P.join t));
  Alcotest.(check bool) "signaled before timeout" true (!result = `Signaled)

let test_sem () =
  ignore
    (run_app (fun () ->
         let s = P.Sem.create 2 in
         Alcotest.(check int) "initial" 2 (P.Sem.getvalue s);
         P.Sem.wait s;
         Alcotest.(check bool) "trywait" true (P.Sem.trywait s);
         Alcotest.(check bool) "empty trywait" false (P.Sem.trywait s);
         P.Sem.post s;
         Alcotest.(check int) "after post" 1 (P.Sem.getvalue s)))

let test_barrier () =
  let serials = ref 0 and crossed = ref 0 in
  ignore
    (run_app (fun () ->
         let b = P.Barrier.create 4 in
         let ts =
           List.init 3 (fun _ ->
               P.create (fun () ->
                   if P.Barrier.wait b then incr serials;
                   incr crossed))
         in
         if P.Barrier.wait b then incr serials;
         incr crossed;
         List.iter P.join ts));
  Alcotest.(check int) "all crossed" 4 !crossed;
  Alcotest.(check int) "one serial thread" 1 !serials

let test_barrier_reusable () =
  let rounds = ref 0 in
  ignore
    (run_app (fun () ->
         let b = P.Barrier.create 2 in
         let t =
           P.create (fun () ->
               for _ = 1 to 3 do
                 ignore (P.Barrier.wait b)
               done)
         in
         for _ = 1 to 3 do
           ignore (P.Barrier.wait b);
           incr rounds
         done;
         P.join t));
  Alcotest.(check int) "three generations" 3 !rounds

let test_rwlock () =
  ignore
    (run_app (fun () ->
         let l = P.Rwlock.create () in
         P.Rwlock.rdlock l;
         Alcotest.(check bool) "second reader" true (P.Rwlock.tryrdlock l);
         Alcotest.(check bool) "no writer" false (P.Rwlock.trywrlock l);
         P.Rwlock.unlock l;
         P.Rwlock.unlock l;
         P.Rwlock.wrlock l;
         Alcotest.(check bool) "no reader under writer" false
           (P.Rwlock.tryrdlock l);
         P.Rwlock.unlock l))

let test_key_tsd () =
  let seen = ref [] in
  ignore
    (run_app (fun () ->
         let key = P.Key.create () in
         P.Key.set key 1;
         let t =
           P.create (fun () ->
               Alcotest.(check (option int)) "fresh thread: None" None
                 (P.Key.get key);
               P.Key.set key 2;
               seen := P.Key.get key :: !seen)
         in
         P.join t;
         seen := P.Key.get key :: !seen));
  Alcotest.(check bool) "isolated" true
    (!seen = [ Some 1; Some 2 ] || !seen = [ Some 2; Some 1 ])

let test_key_destructor_runs_at_exit () =
  let destroyed = ref [] in
  ignore
    (run_app (fun () ->
         let key = P.Key.create ~destructor:(fun v -> destroyed := v :: !destroyed) () in
         let t = P.create (fun () -> P.Key.set key 42) in
         P.join t;
         (* main thread value: destructor not run (thread still alive) *)
         P.Key.set key 7));
  Alcotest.(check (list int)) "destructor ran for the exited thread" [ 42 ]
    !destroyed

let test_key_set_twice_one_destructor () =
  let destroyed = ref [] in
  ignore
    (run_app (fun () ->
         let key = P.Key.create ~destructor:(fun v -> destroyed := v :: !destroyed) () in
         let t =
           P.create (fun () ->
               P.Key.set key 1;
               P.Key.set key 2)
         in
         P.join t));
  Alcotest.(check (list int)) "only the final value destroyed" [ 2 ] !destroyed

let test_key_delete () =
  ignore
    (run_app (fun () ->
         let key = P.Key.create () in
         P.Key.set key 9;
         P.Key.delete key;
         Alcotest.(check (option int)) "deleted reads None" None
           (P.Key.get key)))

let () =
  Alcotest.run "sunos_pthread"
    [
      ( "threads",
        [
          Alcotest.test_case "create+join" `Quick test_create_join;
          Alcotest.test_case "join errors" `Quick test_join_errors;
          Alcotest.test_case "detach" `Quick test_detach_after_create;
          Alcotest.test_case "bound attr" `Quick test_bound_attr;
        ] );
      ( "once",
        [
          Alcotest.test_case "runs once" `Quick test_once_runs_once;
          Alcotest.test_case "waits for runner" `Quick
            test_once_waits_for_runner;
        ] );
      ( "mutex_cond",
        [
          Alcotest.test_case "errorcheck" `Quick test_mutex_errorcheck;
          Alcotest.test_case "timedwait timeout" `Quick
            test_cond_timedwait_timeout;
          Alcotest.test_case "timedwait signaled" `Quick
            test_cond_timedwait_signaled;
        ] );
      ("sem", [ Alcotest.test_case "semantics" `Quick test_sem ]);
      ( "barrier",
        [
          Alcotest.test_case "serial thread" `Quick test_barrier;
          Alcotest.test_case "reusable" `Quick test_barrier_reusable;
        ] );
      ("rwlock", [ Alcotest.test_case "modes" `Quick test_rwlock ]);
      ( "tsd",
        [
          Alcotest.test_case "isolation" `Quick test_key_tsd;
          Alcotest.test_case "destructor" `Quick
            test_key_destructor_runs_at_exit;
          Alcotest.test_case "set twice" `Quick
            test_key_set_twice_one_destructor;
          Alcotest.test_case "delete" `Quick test_key_delete;
        ] );
    ]
