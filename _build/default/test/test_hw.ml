(* Tests for the hardware layer: cost model, CPUs, shared memory, devices. *)

module Time = Sunos_sim.Time
module Eventq = Sunos_sim.Eventq
module Univ = Sunos_sim.Univ
module Cost = Sunos_hw.Cost_model
module Cpu = Sunos_hw.Cpu
module Shm = Sunos_hw.Shared_memory
module Devices = Sunos_hw.Devices
module Machine = Sunos_hw.Machine

let span = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

(* --------------------------- Cost model --------------------------- *)

let test_cost_scale () =
  let c = Cost.scale 2.0 Cost.default in
  Alcotest.check span "trap doubled"
    (Int64.mul 2L Cost.default.Cost.trap_entry)
    c.Cost.trap_entry;
  Alcotest.check span "lwp_create doubled"
    (Int64.mul 2L Cost.default.Cost.lwp_create)
    c.Cost.lwp_create

let test_cost_free () =
  Alcotest.check span "free trap" 0L Cost.free.Cost.trap_entry;
  Alcotest.(check bool) "free quantum nonzero" true
    Time.(Cost.free.Cost.quantum > 0L)

let test_cost_calibration_sanity () =
  (* the component costs must preserve the paper's gross structure *)
  let c = Cost.default in
  Alcotest.(check bool) "lwp create >> user-level create path" true
    Time.(c.Cost.lwp_create > Int64.mul 20L c.Cost.tcb_init);
  Alcotest.(check bool) "kernel sleep path > user sync fast path" true
    Time.(c.Cost.sleep_enqueue > c.Cost.sync_fast)

(* --------------------------- Cpu --------------------------- *)

let test_cpu_accounting () =
  let cpu = Cpu.create ~id:0 in
  Cpu.set_occupant cpu ~now:0L (Some 1);
  Cpu.set_occupant cpu ~now:100L None;
  Cpu.set_occupant cpu ~now:150L (Some 2);
  Alcotest.check span "busy" 150L (Cpu.busy_time cpu ~now:200L);
  Alcotest.check span "idle" 50L (Cpu.idle_time cpu ~now:200L);
  Alcotest.(check (float 0.001)) "utilization" 0.75
    (Cpu.utilization cpu ~now:200L)

let test_cpu_need_resched () =
  let cpu = Cpu.create ~id:3 in
  Alcotest.(check bool) "initially false" false (Cpu.need_resched cpu);
  Cpu.set_need_resched cpu true;
  Alcotest.(check bool) "set" true (Cpu.need_resched cpu)

(* --------------------------- Shared memory --------------------------- *)

let test_shm_cells () =
  let seg = Shm.create ~name:"seg" ~size:8192 in
  let key : int Univ.key = Univ.key () in
  Shm.put seg ~offset:64 (Univ.pack key 7);
  (match Shm.get seg ~offset:64 with
  | Some u -> Alcotest.(check (option int)) "cell" (Some 7) (Univ.unpack key u)
  | None -> Alcotest.fail "expected cell");
  Alcotest.(check bool) "empty offset" true (Shm.get seg ~offset:128 = None);
  Alcotest.check_raises "occupied"
    (Invalid_argument "Shared_memory.put: offset occupied") (fun () ->
      Shm.put seg ~offset:64 (Univ.pack key 9));
  Shm.remove seg ~offset:64;
  Alcotest.(check bool) "removed" true (Shm.get seg ~offset:64 = None)

let test_shm_alloc_offsets_distinct () =
  let seg = Shm.create ~name:"seg" ~size:8192 in
  let a = Shm.alloc_offset seg in
  let b = Shm.alloc_offset seg in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "cache-line apart" true (abs (a - b) >= 64)

let test_shm_residency () =
  let seg = Shm.create ~name:"seg" ~size:(3 * 4096) in
  Alcotest.(check int) "pages" 3 (Shm.page_count seg);
  Alcotest.(check bool) "cold" false (Shm.resident seg ~page:1);
  Shm.make_resident seg ~page:1;
  Alcotest.(check bool) "warm" true (Shm.resident seg ~page:1);
  Shm.evict_all seg;
  Alcotest.(check bool) "evicted" false (Shm.resident seg ~page:1);
  Alcotest.(check int) "page_of_offset" 2 (Shm.page_of_offset ~offset:(2 * 4096))

let test_shm_unique_ids () =
  let a = Shm.create ~name:"a" ~size:4096 in
  let b = Shm.create ~name:"a" ~size:4096 in
  Alcotest.(check bool) "ids distinct" true (Shm.id a <> Shm.id b)

let test_shm_bounds () =
  let seg = Shm.create ~name:"seg" ~size:4096 in
  Alcotest.check_raises "oob" (Invalid_argument "Shared_memory: offset out of bounds")
    (fun () -> ignore (Shm.get seg ~offset:4096))

(* --------------------------- Devices --------------------------- *)

let test_disk_fifo_serial () =
  let eventq = Eventq.create () in
  let disk = Devices.Disk.create ~eventq ~access_time:(Time.ms 10) () in
  let log = ref [] in
  Devices.Disk.submit disk ~bytes_:0 ~on_complete:(fun () ->
      log := (1, Eventq.now eventq) :: !log);
  Devices.Disk.submit disk ~bytes_:0 ~on_complete:(fun () ->
      log := (2, Eventq.now eventq) :: !log);
  Alcotest.(check int) "queued" 2 (Devices.Disk.queue_length disk);
  Eventq.run eventq;
  (match List.rev !log with
  | [ (1, t1); (2, t2) ] ->
      Alcotest.check span "first at 10ms" (Time.ms 10) t1;
      Alcotest.check span "second serialized at 20ms" (Time.ms 20) t2
  | _ -> Alcotest.fail "expected two completions");
  Alcotest.(check int) "completed" 2 (Devices.Disk.completed disk)

let test_disk_transfer_time () =
  let eventq = Eventq.create () in
  let disk = Devices.Disk.create ~eventq ~access_time:(Time.ms 1) () in
  let finish = ref 0L in
  Devices.Disk.submit disk ~bytes_:4096 ~on_complete:(fun () ->
      finish := Eventq.now eventq);
  Eventq.run eventq;
  Alcotest.(check bool) "transfer adds time" true Time.(!finish > Time.ms 1)

let test_net_concurrent () =
  let eventq = Eventq.create () in
  let net = Devices.Net.create ~eventq ~rtt:(Time.ms 4) () in
  let done1 = ref 0L and done2 = ref 0L in
  Devices.Net.send net ~bytes_:0 ~on_complete:(fun () -> done1 := Eventq.now eventq);
  Devices.Net.send net ~bytes_:0 ~on_complete:(fun () -> done2 := Eventq.now eventq);
  Alcotest.(check int) "both in flight" 2 (Devices.Net.in_flight net);
  Eventq.run eventq;
  Alcotest.check span "one-way latency" (Time.ms 2) !done1;
  Alcotest.check span "concurrent (not serialized)" (Time.ms 2) !done2

let test_net_request_response () =
  let eventq = Eventq.create () in
  let net = Devices.Net.create ~eventq ~rtt:(Time.ms 4) () in
  let t = ref 0L in
  Devices.Net.request_response net ~bytes_:0 ~on_complete:(fun () ->
      t := Eventq.now eventq);
  Eventq.run eventq;
  Alcotest.check span "full rtt" (Time.ms 4) !t

let test_tty_input () =
  let eventq = Eventq.create () in
  let tty = Devices.Tty.create ~eventq ~latency:(Time.ms 1) in
  let got = ref None in
  Devices.Tty.on_data_ready tty (fun () -> got := Devices.Tty.read_input tty);
  Devices.Tty.type_input tty "hello";
  Alcotest.(check bool) "not yet" true (!got = None);
  Eventq.run eventq;
  Alcotest.(check (option string)) "line arrives" (Some "hello") !got;
  Alcotest.(check bool) "drained" false (Devices.Tty.has_input tty)

let test_tty_listener_is_oneshot () =
  let eventq = Eventq.create () in
  let tty = Devices.Tty.create ~eventq ~latency:(Time.ms 1) in
  let fires = ref 0 in
  Devices.Tty.on_data_ready tty (fun () -> incr fires);
  Devices.Tty.type_input tty "a";
  Devices.Tty.type_input tty "b";
  Eventq.run eventq;
  Alcotest.(check int) "fired once" 1 !fires

(* --------------------------- Machine --------------------------- *)

let test_machine_create () =
  let m = Machine.create ~cpus:4 () in
  Alcotest.(check int) "cpus" 4 (Machine.ncpus m);
  Alcotest.check span "boot time" 0L (Machine.now m);
  Machine.trace m ~tag:"test" "hello %d" 42;
  let recs = Sunos_sim.Tracebuf.records m.Machine.trace in
  Alcotest.(check int) "trace emitted" 1 (List.length recs)

let test_machine_zero_cpus_rejected () =
  Alcotest.check_raises "zero cpus" (Invalid_argument "Machine.create: cpus")
    (fun () -> ignore (Machine.create ~cpus:0 ()))

let () =
  Alcotest.run "sunos_hw"
    [
      ( "cost_model",
        [
          Alcotest.test_case "scale" `Quick test_cost_scale;
          Alcotest.test_case "free" `Quick test_cost_free;
          Alcotest.test_case "calibration sanity" `Quick
            test_cost_calibration_sanity;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "accounting" `Quick test_cpu_accounting;
          Alcotest.test_case "need_resched" `Quick test_cpu_need_resched;
        ] );
      ( "shared_memory",
        [
          Alcotest.test_case "cells" `Quick test_shm_cells;
          Alcotest.test_case "alloc offsets" `Quick
            test_shm_alloc_offsets_distinct;
          Alcotest.test_case "residency" `Quick test_shm_residency;
          Alcotest.test_case "unique ids" `Quick test_shm_unique_ids;
          Alcotest.test_case "bounds" `Quick test_shm_bounds;
        ] );
      ( "devices",
        [
          Alcotest.test_case "disk fifo" `Quick test_disk_fifo_serial;
          Alcotest.test_case "disk transfer" `Quick test_disk_transfer_time;
          Alcotest.test_case "net concurrent" `Quick test_net_concurrent;
          Alcotest.test_case "net rtt" `Quick test_net_request_response;
          Alcotest.test_case "tty input" `Quick test_tty_input;
          Alcotest.test_case "tty oneshot" `Quick test_tty_listener_is_oneshot;
        ] );
      ( "machine",
        [
          Alcotest.test_case "create" `Quick test_machine_create;
          Alcotest.test_case "zero cpus" `Quick test_machine_zero_cpus_rejected;
        ] );
    ]
