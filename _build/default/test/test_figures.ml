(* Acceptance tests for the paper's measured figures: the *shape* of
   Figures 5 and 6 must hold — who wins, by roughly what factor — with
   generous tolerances so legitimate cost-model adjustments don't break
   the build, while regressions that flip an ordering do. *)

module MB = Sunos_workloads.Microbench

let within ~tol expected actual =
  Float.abs (actual -. expected) <= tol *. expected

let test_figure5_shape () =
  let r = MB.creation () in
  (* paper: 56us unbound, 2327us bound, ratio 42 *)
  Alcotest.(check bool)
    (Printf.sprintf "unbound create ~56us (got %.0f)" r.MB.unbound_us)
    true
    (within ~tol:0.25 56. r.MB.unbound_us);
  Alcotest.(check bool)
    (Printf.sprintf "bound create ~2327us (got %.0f)" r.MB.bound_us)
    true
    (within ~tol:0.25 2327. r.MB.bound_us);
  let ratio = r.MB.bound_us /. r.MB.unbound_us in
  Alcotest.(check bool)
    (Printf.sprintf "ratio ~42 (got %.1f)" ratio)
    true
    (ratio > 20. && ratio < 80.)

let test_figure6_shape () =
  let r = MB.sync () in
  (* paper: 59 / 158 / 348 / 301 *)
  Alcotest.(check bool)
    (Printf.sprintf "setjmp baseline 59us (got %.0f)" r.MB.setjmp_us)
    true
    (within ~tol:0.05 59. r.MB.setjmp_us);
  Alcotest.(check bool)
    (Printf.sprintf "unbound sync ~158us (got %.0f)" r.MB.unbound_us)
    true
    (within ~tol:0.25 158. r.MB.unbound_us);
  Alcotest.(check bool)
    (Printf.sprintf "bound sync ~348us (got %.0f)" r.MB.bound_us)
    true
    (within ~tol:0.25 348. r.MB.bound_us);
  Alcotest.(check bool)
    (Printf.sprintf "cross-process ~301us (got %.0f)" r.MB.cross_process_us)
    true
    (within ~tol:0.25 301. r.MB.cross_process_us);
  (* the orderings the paper's discussion relies on *)
  Alcotest.(check bool) "setjmp < unbound" true
    (r.MB.setjmp_us < r.MB.unbound_us);
  Alcotest.(check bool) "unbound < cross-process" true
    (r.MB.unbound_us < r.MB.cross_process_us);
  Alcotest.(check bool) "cross-process < bound (paper ratio .86)" true
    (r.MB.cross_process_us < r.MB.bound_us)

let test_scaling_cost_model_scales_results () =
  (* a 2x-slower machine should produce ~2x the times: the aggregates
     really do emerge from the component model *)
  let slow = Sunos_hw.Cost_model.scale 2.0 Sunos_hw.Cost_model.default in
  let base = MB.creation () in
  let scaled = MB.creation ~cost:slow () in
  Alcotest.(check bool) "unbound scales ~2x" true
    (within ~tol:0.15 (2. *. base.MB.unbound_us) scaled.MB.unbound_us);
  Alcotest.(check bool) "bound scales ~2x" true
    (within ~tol:0.15 (2. *. base.MB.bound_us) scaled.MB.bound_us)

let () =
  Alcotest.run "figures"
    [
      ( "paper_shapes",
        [
          Alcotest.test_case "figure 5" `Quick test_figure5_shape;
          Alcotest.test_case "figure 6" `Quick test_figure6_shape;
          Alcotest.test_case "cost-model scaling" `Quick
            test_scaling_cost_model_scales_results;
        ] );
    ]
