test/test_hw.ml: Alcotest Fmt Int64 List Sunos_hw Sunos_sim
