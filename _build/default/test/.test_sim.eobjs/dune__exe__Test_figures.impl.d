test/test_figures.ml: Alcotest Float Printf Sunos_hw Sunos_workloads
