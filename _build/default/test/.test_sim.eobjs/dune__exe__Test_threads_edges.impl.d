test/test_threads_edges.ml: Alcotest List Printf Sunos_kernel Sunos_sim Sunos_threads
