test/test_sim.ml: Alcotest Array Float Fmt Format Int64 List QCheck QCheck_alcotest Sunos_sim
