test/test_pthread.mli:
