test/test_baselines.ml: Alcotest List Sunos_baselines Sunos_hw Sunos_kernel Sunos_sim Sunos_threads
