test/test_properties.ml: Alcotest Int64 List QCheck QCheck_alcotest Queue Sunos_kernel Sunos_pthread Sunos_sim Sunos_threads
