test/test_kernel_edges.ml: Alcotest Format List Printf String Sunos_hw Sunos_kernel Sunos_sim
