test/test_threads_edges.mli:
