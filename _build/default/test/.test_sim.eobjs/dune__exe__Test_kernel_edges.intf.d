test/test_kernel_edges.mli:
