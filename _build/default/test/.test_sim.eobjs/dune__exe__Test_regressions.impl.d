test/test_regressions.ml: Alcotest Array List Sunos_baselines Sunos_hw Sunos_kernel Sunos_sim Sunos_threads Sunos_workloads
