test/test_workloads.ml: Alcotest List Sunos_baselines Sunos_sim Sunos_workloads
