test/test_pthread.ml: Alcotest List Sunos_kernel Sunos_pthread Sunos_sim Sunos_threads
