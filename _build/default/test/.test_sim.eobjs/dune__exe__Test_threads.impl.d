test/test_threads.ml: Alcotest List Queue Sunos_kernel Sunos_sim Sunos_threads
