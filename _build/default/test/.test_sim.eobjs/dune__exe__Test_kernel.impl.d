test/test_kernel.ml: Alcotest Array Fmt Int64 List String Sunos_hw Sunos_kernel Sunos_sim
