test/test_threads.mli:
