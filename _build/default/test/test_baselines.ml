(* Tests of the comparison thread models and the debugging lock variant. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Libthread = Sunos_threads.Libthread
module Lockdebug = Sunos_threads.Lockdebug
module Model = Sunos_baselines.Model

let run_on (module M : Model.S) ?(cpus = 1) main =
  let k = Kernel.boot ~cpus () in
  ignore (Kernel.spawn k ~name:M.name ~main:(M.boot main));
  Kernel.run k;
  k

(* Every model must pass the same functional contract. *)
let contract (module M : Model.S) () =
  let counter = ref 0 and pingpong = ref 0 in
  ignore
    (run_on
       (module M)
       ~cpus:2
       (fun () ->
         (* spawn/join + mutex exclusion *)
         let mu = M.Mu.create () in
         let ts =
           List.init 4 (fun _ ->
               M.spawn (fun () ->
                   for _ = 1 to 10 do
                     M.Mu.lock mu;
                     incr counter;
                     M.Mu.unlock mu
                   done))
         in
         List.iter M.join ts;
         (* semaphore ping-pong *)
         let s1 = M.Sem.create 0 and s2 = M.Sem.create 0 in
         let t =
           M.spawn (fun () ->
               for _ = 1 to 5 do
                 M.Sem.p s2;
                 M.Sem.v s1
               done)
         in
         for _ = 1 to 5 do
           M.Sem.v s2;
           M.Sem.p s1;
           incr pingpong
         done;
         M.join t));
  Alcotest.(check int) (M.name ^ ": counter") 40 !counter;
  Alcotest.(check int) (M.name ^ ": pingpong") 5 !pingpong

let test_liblwp_single_lwp () =
  let k =
    run_on
      (module Sunos_baselines.Liblwp)
      (fun () ->
        let module M = Sunos_baselines.Liblwp in
        let ts = List.init 10 (fun _ -> M.spawn (fun () -> M.yield ())) in
        List.iter M.join ts)
  in
  Alcotest.(check int) "exactly one LWP ever" 1 (Kernel.lwp_create_count k)

let test_liblwp_blocking_stalls_process () =
  (* the 4.0 pathology: a blocking read stops every coroutine *)
  let progressed_during_block = ref false and woke = ref false in
  let k = Kernel.boot ~cpus:2 () in
  ignore
    (Kernel.spawn k ~name:"liblwp"
       ~main:
         (Sunos_baselines.Liblwp.boot (fun () ->
              let module M = Sunos_baselines.Liblwp in
              let rfd, wfd = Uctx.pipe () in
              ignore wfd;
              let bg =
                M.spawn (fun () ->
                    (* should run while the reader blocks — but cannot *)
                    progressed_during_block := true)
              in
              ignore bg;
              (* read before the helper ever ran: blocks the only LWP *)
              let _ = Uctx.read rfd ~len:4 in
              woke := true)));
  (* data arrives from outside after a while *)
  ignore
    (Sunos_sim.Eventq.after (Kernel.machine k).Sunos_hw.Machine.eventq
       (Time.ms 50) (fun () -> ()));
  Kernel.run ~until:(Time.ms 100) k;
  Alcotest.(check bool) "whole process stalled" false !progressed_during_block;
  Alcotest.(check bool) "reader still blocked" false !woke

let test_liblwp_mitigated_read () =
  (* the era's non-blocking I/O wrapper keeps coroutines running *)
  let progressed = ref false and got = ref "" in
  let k = Kernel.boot ~cpus:1 () in
  ignore
    (Kernel.spawn k ~name:"liblwp"
       ~main:
         (Sunos_baselines.Liblwp.boot (fun () ->
              let module M = Sunos_baselines.Liblwp in
              let rfd, wfd = Uctx.pipe () in
              let bg =
                M.spawn (fun () ->
                    progressed := true;
                    Uctx.sleep (Time.ms 5);
                    ignore (Uctx.write wfd "data"))
              in
              got := Sunos_baselines.Liblwp.read_mitigated rfd ~len:16;
              M.join bg)));
  Kernel.run k;
  Alcotest.(check bool) "coroutine ran during wait" true !progressed;
  Alcotest.(check string) "read completed" "data" !got

let test_cthreads_one_lwp_per_thread () =
  let k =
    run_on
      (module Sunos_baselines.Cthreads)
      ~cpus:2
      (fun () ->
        let module M = Sunos_baselines.Cthreads in
        let ts = List.init 5 (fun _ -> M.spawn (fun () -> Uctx.charge_us 50)) in
        List.iter M.join ts)
  in
  (* initial LWP + one per thread *)
  Alcotest.(check int) "1:1 LWP count" 6 (Kernel.lwp_create_count k)

let test_activations_overlap_io () =
  (* with per-block upcalls, compute continues across a kernel wait even
     with no SIGWAITING-style growth *)
  let computed = ref false in
  let k = Kernel.boot ~cpus:2 () in
  ignore
    (Kernel.spawn k ~name:"act"
       ~main:
         (Sunos_baselines.Activations.boot (fun () ->
              let module M = Sunos_baselines.Activations in
              let t = M.spawn (fun () -> computed := true) in
              (* block before the helper runs: the upcall must hand the
                 pool a context *)
              Uctx.sleep (Time.ms 10);
              M.join t)));
  Kernel.run ~until:(Time.ms 5) k;
  Alcotest.(check bool) "helper ran during the sleep" true !computed;
  Kernel.run k

(* ------------------------- Lockdebug ------------------------- *)

let run_mt main =
  let k = Kernel.boot () in
  ignore (Kernel.spawn k ~name:"dbg" ~main:(Libthread.boot main));
  Kernel.run k;
  k

let test_lockdebug_self_deadlock () =
  let caught = ref false in
  ignore
    (run_mt (fun () ->
         Lockdebug.reset_order_graph ();
         let m = Lockdebug.create ~name:"m" in
         Lockdebug.enter m;
         (try Lockdebug.enter m
          with Lockdebug.Self_deadlock _ -> caught := true);
         Lockdebug.exit m));
  Alcotest.(check bool) "self deadlock detected" true !caught

let test_lockdebug_order_violation () =
  let caught = ref None in
  ignore
    (run_mt (fun () ->
         Lockdebug.reset_order_graph ();
         let a = Lockdebug.create ~name:"A" in
         let b = Lockdebug.create ~name:"B" in
         (* record A -> B *)
         Lockdebug.enter a;
         Lockdebug.enter b;
         Lockdebug.exit b;
         Lockdebug.exit a;
         (* now B -> A must trip *)
         Lockdebug.enter b;
         (try Lockdebug.enter a
          with Lockdebug.Lock_order_violation (h, w) -> caught := Some (h, w));
         Lockdebug.exit b));
  Alcotest.(check (option (pair string string))) "ABBA flagged"
    (Some ("B", "A")) !caught

let test_lockdebug_stats () =
  ignore
    (run_mt (fun () ->
         Lockdebug.reset_order_graph ();
         let module T = Sunos_threads.Thread in
         let m = Lockdebug.create ~name:"stats" in
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Lockdebug.enter m;
               Uctx.charge_us 500;
               Lockdebug.exit m)
         in
         Lockdebug.enter m;
         T.yield ();
         Uctx.charge_us 100;
         Lockdebug.exit m;
         ignore (T.wait ~thread:t ());
         Alcotest.(check int) "acquisitions" 2 (Lockdebug.acquisitions m);
         Alcotest.(check bool) "contended once" true
           (Lockdebug.contentions m >= 1);
         Alcotest.(check bool) "max hold >= 500us" true
           Time.(Lockdebug.max_hold m >= Time.us 500)))

let test_lockdebug_consistent_order_ok () =
  ignore
    (run_mt (fun () ->
         Lockdebug.reset_order_graph ();
         let a = Lockdebug.create ~name:"A" in
         let b = Lockdebug.create ~name:"B" in
         for _ = 1 to 3 do
           Lockdebug.enter a;
           Lockdebug.enter b;
           Lockdebug.exit b;
           Lockdebug.exit a
         done
         (* same order every time: no exception *)))

let () =
  let model_cases =
    List.map
      (fun (module M : Model.S) ->
        Alcotest.test_case ("contract: " ^ M.name) `Quick (contract (module M)))
      Model.all
  in
  Alcotest.run "sunos_baselines"
    [
      ("contract", model_cases);
      ( "liblwp",
        [
          Alcotest.test_case "single LWP" `Quick test_liblwp_single_lwp;
          Alcotest.test_case "blocking stalls process" `Quick
            test_liblwp_blocking_stalls_process;
          Alcotest.test_case "mitigated read" `Quick test_liblwp_mitigated_read;
        ] );
      ( "cthreads",
        [
          Alcotest.test_case "one LWP per thread" `Quick
            test_cthreads_one_lwp_per_thread;
        ] );
      ( "activations",
        [
          Alcotest.test_case "overlaps I/O" `Quick test_activations_overlap_io;
        ] );
      ( "lockdebug",
        [
          Alcotest.test_case "self deadlock" `Quick test_lockdebug_self_deadlock;
          Alcotest.test_case "order violation" `Quick
            test_lockdebug_order_violation;
          Alcotest.test_case "stats" `Quick test_lockdebug_stats;
          Alcotest.test_case "consistent order ok" `Quick
            test_lockdebug_consistent_order_ok;
        ] );
    ]
