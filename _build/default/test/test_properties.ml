(* Property-based tests (qcheck): invariants of the synchronization
   primitives under randomized schedules, and algebraic properties of the
   small data structures.  Each simulated scenario derives its shape from
   the qcheck-generated seed, so hundreds of distinct interleavings are
   explored per run. *)

module Time = Sunos_sim.Time
module Rng = Sunos_sim.Rng
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Sigset = Sunos_kernel.Sigset
module Signo = Sunos_kernel.Signo
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Condvar = Sunos_threads.Condvar
module Semaphore = Sunos_threads.Semaphore
module Rwlock = Sunos_threads.Rwlock

let qt = QCheck_alcotest.to_alcotest

let run_app ?(cpus = 1) main =
  let k = Kernel.boot ~cpus () in
  Kernel.set_tracing k false;
  ignore (Kernel.spawn k ~name:"prop" ~main:(Libthread.boot main));
  Kernel.run k;
  k

(* ------------------------- sigset algebra ------------------------- *)

let valid_signals =
  List.filter (fun s -> s <> Signo.sigkill && s <> Signo.sigstop) Signo.all

let gen_sig = QCheck.Gen.oneofl valid_signals
let arb_sig = QCheck.make gen_sig
let arb_sigs = QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 8) gen_sig)

let prop_sigset_mem_add =
  QCheck.Test.make ~name:"sigset: mem after add" ~count:200
    (QCheck.pair arb_sig arb_sigs)
    (fun (s, rest) ->
      let set = Sigset.add s (Sigset.of_list rest) in
      Sigset.mem s set)

let prop_sigset_remove =
  QCheck.Test.make ~name:"sigset: not mem after remove" ~count:200
    (QCheck.pair arb_sig arb_sigs)
    (fun (s, rest) ->
      let set = Sigset.remove s (Sigset.of_list rest) in
      not (Sigset.mem s set))

let prop_sigset_roundtrip =
  QCheck.Test.make ~name:"sigset: of_list/to_list preserves membership"
    ~count:200 arb_sigs
    (fun sigs ->
      let set = Sigset.of_list sigs in
      List.for_all (fun s -> Sigset.mem s set) sigs
      && List.for_all (fun s -> List.mem s sigs) (Sigset.to_list set))

let prop_sigset_unmaskable =
  QCheck.Test.make ~name:"sigset: KILL/STOP never maskable" ~count:10
    QCheck.unit
    (fun () ->
      (not (Sigset.mem Signo.sigkill Sigset.full))
      && not (Sigset.mem Signo.sigstop Sigset.full))

let prop_sigset_apply =
  QCheck.Test.make ~name:"sigset: block then unblock restores" ~count:200
    (QCheck.pair arb_sigs arb_sigs)
    (fun (old_sigs, delta) ->
      let old = Sigset.of_list old_sigs in
      let d = Sigset.of_list delta in
      let blocked = Sigset.apply Sigset.Sig_block d ~old in
      let restored = Sigset.apply Sigset.Sig_unblock d ~old:blocked in
      Sigset.equal restored (Sigset.diff old d)
      || Sigset.equal restored (Sigset.diff blocked d))

(* ------------------------- mutex exclusion ------------------------- *)

(* Random thread counts, iteration counts and yield patterns; the
   invariant (never two threads inside) must hold in every schedule. *)
let prop_mutex_exclusion =
  QCheck.Test.make ~name:"mutex: mutual exclusion under random schedules"
    ~count:30
    QCheck.(triple (int_range 2 6) (int_range 1 8) (int_range 0 1000))
    (fun (n_threads, iters, seed) ->
      let violations = ref 0 and total = ref 0 in
      ignore
        (run_app ~cpus:2 (fun () ->
             let rng = Rng.create ~seed:(Int64.of_int seed) in
             let m = Mutex.create () in
             let inside = ref 0 in
             let worker i () =
               let rng = Rng.split rng in
               ignore i;
               for _ = 1 to iters do
                 Mutex.enter m;
                 incr inside;
                 if !inside > 1 then incr violations;
                 if Rng.bool rng then T.yield ();
                 Uctx.charge_us (1 + Rng.int rng 20);
                 incr total;
                 decr inside;
                 Mutex.exit m
               done
             in
             let ts =
               List.init n_threads (fun i ->
                   T.create ~flags:[ T.THREAD_WAIT ] (worker i))
             in
             List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
      !violations = 0 && !total = n_threads * iters)

let prop_mutex_variants_exclude =
  QCheck.Test.make ~name:"mutex: every variant excludes (2 CPUs, bound)"
    ~count:12
    QCheck.(pair (int_range 0 2) (int_range 1 5))
    (fun (variant_ix, iters) ->
      let variant =
        match variant_ix with
        | 0 -> Mutex.Sleep
        | 1 -> Mutex.Spin
        | _ -> Mutex.Adaptive
      in
      let counter = ref 0 in
      ignore
        (run_app ~cpus:2 (fun () ->
             let m = Mutex.create ~variant () in
             let worker () =
               for _ = 1 to iters do
                 Mutex.enter m;
                 let v = !counter in
                 Uctx.charge_us 3;
                 counter := v + 1;
                 Mutex.exit m
               done
             in
             let ts =
               List.init 2 (fun _ ->
                   T.create ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ] worker)
             in
             List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
      !counter = 2 * iters)

(* ------------------------- semaphore conservation ------------------ *)

let prop_semaphore_conservation =
  QCheck.Test.make ~name:"semaphore: P/V conservation" ~count:30
    QCheck.(triple (int_range 1 5) (int_range 1 10) (int_range 0 3))
    (fun (n_threads, rounds, initial) ->
      let final = ref (-1) in
      ignore
        (run_app ~cpus:2 (fun () ->
             let s = Semaphore.create ~count:initial () in
             (* every thread does rounds of v;p — net zero *)
             let worker () =
               for _ = 1 to rounds do
                 Semaphore.v s;
                 T.yield ();
                 Semaphore.p s
               done
             in
             let ts =
               List.init n_threads (fun _ ->
                   T.create ~flags:[ T.THREAD_WAIT ] worker)
             in
             List.iter (fun t -> ignore (T.wait ~thread:t ())) ts;
             final := Semaphore.count s));
      !final = initial)

let prop_semaphore_bounded_concurrency =
  QCheck.Test.make ~name:"semaphore: admission never exceeds count" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 2 8))
    (fun (permits, n_threads) ->
      let max_in = ref 0 in
      ignore
        (run_app ~cpus:2 (fun () ->
             let s = Semaphore.create ~count:permits () in
             let inside = ref 0 in
             let worker () =
               Semaphore.p s;
               incr inside;
               if !inside > !max_in then max_in := !inside;
               T.yield ();
               Uctx.charge_us 10;
               decr inside;
               Semaphore.v s
             in
             let ts =
               List.init n_threads (fun _ ->
                   T.create ~flags:[ T.THREAD_WAIT ] worker)
             in
             List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
      !max_in <= permits)

(* ------------------------- rwlock invariant ------------------------ *)

let prop_rwlock_invariant =
  QCheck.Test.make ~name:"rwlock: readers xor writer, always" ~count:20
    QCheck.(triple (int_range 1 4) (int_range 1 3) (int_range 0 1000))
    (fun (n_readers, n_writers, seed) ->
      let violations = ref 0 in
      ignore
        (run_app ~cpus:2 (fun () ->
             let rng = Rng.create ~seed:(Int64.of_int seed) in
             let l = Rwlock.create () in
             let readers_in = ref 0 and writer_in = ref false in
             let reader () =
               let rng = Rng.split rng in
               for _ = 1 to 5 do
                 Rwlock.enter l Rwlock.Reader;
                 incr readers_in;
                 if !writer_in then incr violations;
                 if Rng.bool rng then T.yield ();
                 decr readers_in;
                 Rwlock.exit l
               done
             in
             let writer () =
               let rng = Rng.split rng in
               for _ = 1 to 5 do
                 Rwlock.enter l Rwlock.Writer;
                 writer_in := true;
                 if !readers_in > 0 then incr violations;
                 if Rng.bool rng then T.yield ();
                 writer_in := false;
                 Rwlock.exit l
               done
             in
             let ts =
               List.init n_readers (fun _ ->
                   T.create ~flags:[ T.THREAD_WAIT ] reader)
               @ List.init n_writers (fun _ ->
                     T.create ~flags:[ T.THREAD_WAIT ] writer)
             in
             List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
      !violations = 0)

(* ------------------------- condvar: no lost items ------------------ *)

let prop_condvar_queue =
  QCheck.Test.make ~name:"condvar: producer/consumer conserves items"
    ~count:20
    QCheck.(triple (int_range 1 3) (int_range 1 3) (int_range 1 15))
    (fun (n_prod, n_cons, per_producer) ->
      let consumed = ref 0 in
      ignore
        (run_app ~cpus:2 (fun () ->
             let m = Mutex.create () in
             let cv = Condvar.create () in
             let q = Queue.create () in
             let produced_all = ref 0 in
             let producer () =
               for i = 1 to per_producer do
                 Mutex.enter m;
                 Queue.add i q;
                 incr produced_all;
                 Condvar.signal cv;
                 Mutex.exit m;
                 T.yield ()
               done
             in
             let total = n_prod * per_producer in
             let consumer () =
               let stop = ref false in
               while not !stop do
                 Mutex.enter m;
                 while Queue.is_empty q && !consumed + Queue.length q < total
                       && !produced_all < total do
                   Condvar.wait cv m
                 done;
                 (match Queue.take_opt q with
                 | Some _ -> incr consumed
                 | None -> if !produced_all >= total then stop := true);
                 Mutex.exit m
               done;
               (* drain leftovers *)
               Mutex.enter m;
               while not (Queue.is_empty q) do
                 ignore (Queue.take q);
                 incr consumed
               done;
               Mutex.exit m
             in
             let ps =
               List.init n_prod (fun _ ->
                   T.create ~flags:[ T.THREAD_WAIT ] producer)
             in
             let cs =
               List.init n_cons (fun _ ->
                   T.create ~flags:[ T.THREAD_WAIT ] consumer)
             in
             List.iter (fun t -> ignore (T.wait ~thread:t ())) ps;
             (* wake any consumer still parked *)
             Mutex.enter m;
             Condvar.broadcast cv;
             Mutex.exit m;
             List.iter (fun t -> ignore (T.wait ~thread:t ())) cs));
      !consumed = n_prod * per_producer)

(* ------------------------- determinism ------------------------- *)

let prop_simulation_deterministic =
  QCheck.Test.make ~name:"whole-machine determinism (same seed, same clock)"
    ~count:15
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (cpus, seed) ->
      let run () =
        let k = Kernel.boot ~cpus ~seed:(Int64.of_int seed) () in
        Kernel.set_tracing k false;
        ignore
          (Kernel.spawn k ~name:"det"
             ~main:
               (Libthread.boot (fun () ->
                    let rng = Rng.create ~seed:(Int64.of_int seed) in
                    let m = Mutex.create () in
                    let ts =
                      List.init 3 (fun _ ->
                          T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                              for _ = 1 to 5 do
                                Mutex.enter m;
                                Uctx.charge_us (1 + Rng.int rng 50);
                                Mutex.exit m;
                                T.yield ()
                              done))
                    in
                    List.iter (fun t -> ignore (T.wait ~thread:t ())) ts)));
        Kernel.run k;
        (Kernel.now k, Kernel.syscall_count k, Kernel.dispatch_count k)
      in
      run () = run ())

(* ------------------------- waitq ------------------------- *)
(* Exercised indirectly by every sync test above; the FIFO and lazy-
   cancellation behaviour also gets a direct algebraic check through the
   public Thread API: wakeup order of mutex waiters is FIFO. *)

let prop_mutex_fifo_handoff =
  QCheck.Test.make ~name:"mutex: handoff order is FIFO" ~count:20
    (QCheck.int_range 2 6)
    (fun n ->
      let order = ref [] in
      ignore
        (run_app (fun () ->
             let m = Mutex.create () in
             Mutex.enter m;
             let ts =
               List.init n (fun i ->
                   T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                       Mutex.enter m;
                       order := i :: !order;
                       Mutex.exit m))
             in
             (* let every waiter queue up in creation order *)
             T.yield ();
             Mutex.exit m;
             List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
      List.rev !order = List.init n (fun i -> i))

(* ------------------------- pthread layer ------------------------- *)

let prop_barrier_generations =
  QCheck.Test.make ~name:"pthread barrier: exactly one serial per generation"
    ~count:20
    QCheck.(pair (int_range 2 6) (int_range 1 6))
    (fun (parties, generations) ->
      let module P = Sunos_pthread.Pthread in
      let serials = ref 0 and crossings = ref 0 in
      ignore
        (run_app ~cpus:2 (fun () ->
             let b = P.Barrier.create parties in
             let worker () =
               for _ = 1 to generations do
                 if P.Barrier.wait b then incr serials;
                 incr crossings
               done
             in
             let ts = List.init parties (fun _ -> P.create worker) in
             List.iter P.join ts));
      !serials = generations && !crossings = parties * generations)

let prop_pthread_once_any_interleaving =
  QCheck.Test.make ~name:"pthread once: exactly one initializer, all wait"
    ~count:20
    QCheck.(pair (int_range 1 6) (int_range 0 500))
    (fun (racers, seed) ->
      let module P = Sunos_pthread.Pthread in
      let inits = ref 0 and after = ref 0 in
      ignore
        (run_app ~cpus:2 (fun () ->
             let rng = Rng.create ~seed:(Int64.of_int seed) in
             let o = P.once_init () in
             let racer () =
               Uctx.charge_us (Rng.int rng 200);
               P.once o (fun () ->
                   Uctx.charge_us 300;
                   incr inits);
               (* the initializer must be complete for everyone *)
               if !inits = 1 then incr after
             in
             let ts = List.init racers (fun _ -> P.create racer) in
             List.iter P.join ts));
      !inits = 1 && !after = racers)

(* ------------------------- per-thread timers ------------------------- *)

let prop_timers_wake_in_deadline_order =
  QCheck.Test.make ~name:"timers: wakeups respect deadline order" ~count:20
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8)
       (QCheck.int_range 1 40))
    (fun spans_ms ->
      let module Timers = Sunos_threads.Timers in
      let woke = ref [] in
      ignore
        (run_app (fun () ->
             let ts =
               List.map
                 (fun ms ->
                   T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                       Timers.sleep (Time.ms ms);
                       let now = Uctx.gettime () in
                       woke := (ms, now) :: !woke))
                 spans_ms
             in
             List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
      (* every sleeper slept at least its span *)
      List.for_all
        (fun (ms, at) ->
          let span = Time.ms ms in
          Time.(at >= span))
        !woke
      && List.length !woke = List.length spans_ms)

let () =
  Alcotest.run "properties"
    [
      ( "sigset",
        [
          qt prop_sigset_mem_add;
          qt prop_sigset_remove;
          qt prop_sigset_roundtrip;
          qt prop_sigset_unmaskable;
          qt prop_sigset_apply;
        ] );
      ( "mutex",
        [
          qt prop_mutex_exclusion;
          qt prop_mutex_variants_exclude;
          qt prop_mutex_fifo_handoff;
        ] );
      ( "semaphore",
        [ qt prop_semaphore_conservation; qt prop_semaphore_bounded_concurrency ]
      );
      ("rwlock", [ qt prop_rwlock_invariant ]);
      ("condvar", [ qt prop_condvar_queue ]);
      ("determinism", [ qt prop_simulation_deterministic ]);
      ( "pthread",
        [ qt prop_barrier_generations; qt prop_pthread_once_any_interleaving ]
      );
      ("timers", [ qt prop_timers_wake_in_deadline_order ]);
    ]
