(* Second-wave kernel tests: scheduler classes (incl. gang), exec
   inheritance, poll over several descriptors, file/pipe/net edge
   semantics, profiling, error paths. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Sysdefs = Sunos_kernel.Sysdefs
module Signo = Sunos_kernel.Signo
module Errno = Sunos_kernel.Errno
module Netchan = Sunos_kernel.Netchan
module Machine = Sunos_hw.Machine

let expect_err name req err =
  match Uctx.syscall req with
  | Sysdefs.R_err e when e = err -> ()
  | r ->
      Alcotest.failf "%s: expected %s, got %s" name (Errno.to_string err)
        (Format.asprintf "%a" Sysdefs.pp_sysret r)

(* ------------------------- scheduling classes ------------------------- *)

let test_gang_members_coscheduled () =
  (* two gang members on a 2-CPU machine: their start times per burst
     coincide (all-or-nothing placement) *)
  let k = Kernel.boot ~cpus:2 () in
  let starts = ref [] in
  let member () =
    Uctx.priocntl (Sysdefs.Cls_gang 7);
    for _ = 1 to 3 do
      (* gettime is a syscall (an interleaving point): bind it first so
         the shared-list update is effect-free, hence atomic *)
      let now = Uctx.gettime () in
      starts := now :: !starts;
      Uctx.charge (Time.ms 2);
      Uctx.sleep (Time.ms 5)
    done
  in
  ignore (Kernel.spawn k ~name:"g1" ~main:member);
  ignore (Kernel.spawn k ~name:"g2" ~main:member);
  Kernel.run k;
  Alcotest.(check int) "all bursts ran" 6 (List.length !starts)

let test_gang_with_insufficient_cpus_progresses () =
  (* 3 gang members, 2 CPUs: best-effort placement must not deadlock *)
  let k = Kernel.boot ~cpus:2 () in
  let finished = ref 0 in
  for i = 1 to 3 do
    ignore
      (Kernel.spawn k
         ~name:(Printf.sprintf "g%d" i)
         ~main:(fun () ->
           Uctx.priocntl (Sysdefs.Cls_gang 9);
           Uctx.charge (Time.ms 3);
           incr finished))
  done;
  Kernel.run ~until:(Time.s 2) k;
  Alcotest.(check int) "all members completed" 3 !finished

let test_rt_class_runs_to_block () =
  (* an RT LWP is not quantum-preempted by timeshare work *)
  let k = Kernel.boot ~cpus:1 () in
  let rt_done = ref Time.zero and ts_done = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"rt" ~main:(fun () ->
         Uctx.priocntl (Sysdefs.Cls_realtime 20);
         Uctx.charge (Time.ms 300);
         rt_done := Uctx.gettime ()));
  ignore
    (Kernel.spawn k ~name:"ts" ~main:(fun () ->
         Uctx.charge (Time.ms 50);
         ts_done := Uctx.gettime ()));
  Kernel.run k;
  Alcotest.(check bool) "RT ran to completion first" true
    Time.(!rt_done < !ts_done)

let test_ts_decay_lets_interactive_in () =
  (* a sleeper wakes with boosted priority and preempts the hog at the
     next boundary rather than waiting a full burst *)
  let k = Kernel.boot ~cpus:1 () in
  let wake_lag = ref Time.zero in
  ignore
    (Kernel.spawn k ~name:"hog" ~main:(fun () ->
         for _ = 1 to 100 do
           Uctx.charge (Time.ms 10)
         done));
  ignore
    (Kernel.spawn k ~name:"inter" ~main:(fun () ->
         let t0 = Uctx.gettime () in
         Uctx.sleep (Time.ms 100);
         wake_lag := Time.diff (Uctx.gettime ()) (Time.add t0 (Time.ms 100))));
  Kernel.run k;
  Alcotest.(check bool) "woke within ~one slice of nominal" true
    (Time.to_ms !wake_lag < 30.)

(* ------------------------- exec inheritance ------------------------- *)

let test_exec_keeps_fds_resets_handlers () =
  let k = Kernel.boot () in
  let got = ref "" and handler_ran = ref false in
  let pid =
    Kernel.spawn k ~name:"old" ~main:(fun () ->
        ignore
          (Uctx.sigaction Signo.sigusr1
             (Sysdefs.Sig_handler (fun _ -> handler_ran := true)));
        let fd = Uctx.open_file "/keep" in
        ignore (Uctx.write fd "inherited");
        ignore
          (Uctx.exec ~name:"new" ~main:(fun () ->
               (* fds survive exec: same descriptor, same offset object *)
               Uctx.lseek fd 0;
               got := Uctx.read fd ~len:16;
               (* handlers were reset to default: SIGUSR1 now kills *)
               Uctx.kill ~pid:(Uctx.getpid ()) Signo.sigusr1;
               Uctx.charge_us 10)))
  in
  Kernel.run k;
  Alcotest.(check string) "fd inherited across exec" "inherited" !got;
  Alcotest.(check bool) "old handler did not run" false !handler_ran;
  Alcotest.(check (option int)) "default action killed"
    (Some (128 + Signo.sigusr1))
    (Kernel.exit_status k pid)

(* ------------------------- poll over many fds ------------------------- *)

let test_poll_multiple_sources () =
  let k = Kernel.boot ~cpus:1 () in
  let ready_sets = ref [] in
  ignore
    (Kernel.spawn k ~name:"poller" ~main:(fun () ->
         let r1, w1 = Uctx.pipe () in
         let r2, w2 = Uctx.pipe () in
         ignore
           (Uctx.lwp_create
              ~entry:(fun () ->
                Uctx.sleep (Time.ms 5);
                ignore (Uctx.write w2 "b");
                Uctx.sleep (Time.ms 5);
                ignore (Uctx.write w1 "a"))
              ());
         let fds =
           [
             { Sysdefs.pfd = r1; want_in = true; want_out = false };
             { Sysdefs.pfd = r2; want_in = true; want_out = false };
           ]
         in
         let first = Uctx.poll fds in
         ready_sets := first :: !ready_sets;
         List.iter (fun fd -> ignore (Uctx.read fd ~len:4)) first;
         let second = Uctx.poll fds in
         ready_sets := second :: !ready_sets));
  Kernel.run k;
  match List.rev !ready_sets with
  | [ first; second ] ->
      Alcotest.(check int) "first wake: one fd ready" 1 (List.length first);
      Alcotest.(check int) "second wake: one fd ready" 1 (List.length second);
      Alcotest.(check bool) "different fds" true (first <> second)
  | _ -> Alcotest.fail "expected two poll results"

let test_poll_writable_side () =
  let k = Kernel.boot () in
  let ready = ref [] in
  ignore
    (Kernel.spawn k ~name:"pw" ~main:(fun () ->
         let _r, w = Uctx.pipe () in
         ready := Uctx.poll [ { Sysdefs.pfd = w; want_in = false; want_out = true } ]));
  Kernel.run k;
  Alcotest.(check int) "empty pipe is writable" 1 (List.length !ready)

(* ------------------------- file/pipe/net edges ------------------------- *)

let test_file_read_past_eof_and_hole () =
  let k = Kernel.boot () in
  let eof = ref "x" and hole = ref "" in
  ignore
    (Kernel.spawn k ~name:"eof" ~main:(fun () ->
         let fd = Uctx.open_file "/f" in
         ignore (Uctx.write fd "abc");
         (* read at EOF: empty *)
         eof := Uctx.read fd ~len:10;
         (* sparse write leaves a zero-filled hole *)
         Uctx.lseek fd 10;
         ignore (Uctx.write fd "z");
         Uctx.lseek fd 3;
         hole := Uctx.read fd ~len:7));
  Kernel.run k;
  Alcotest.(check string) "EOF read is empty" "" !eof;
  Alcotest.(check string) "hole reads as zeros" "\000\000\000\000\000\000\000"
    !hole

let test_pipe_eof_after_writer_close () =
  let k = Kernel.boot ~cpus:1 () in
  let reads = ref [] in
  ignore
    (Kernel.spawn k ~name:"eofpipe" ~main:(fun () ->
         let r, w = Uctx.pipe () in
         ignore (Uctx.write w "tail");
         Uctx.close w;
         reads := Uctx.read r ~len:10 :: !reads;
         (* every read after drain is "" = EOF, it must not block *)
         reads := Uctx.read r ~len:10 :: !reads));
  Kernel.run k;
  Alcotest.(check (list string)) "data then EOF" [ "tail"; "" ] (List.rev !reads)

let test_netchan_close_unblocks_reader () =
  let k = Kernel.boot () in
  let chan = Netchan.create ~name:"c" in
  let got = ref "x" in
  ignore
    (Kernel.spawn k ~name:"srv" ~main:(fun () ->
         let fd = Uctx.open_net chan in
         got := Uctx.read fd ~len:8));
  ignore
    (Sunos_sim.Eventq.after (Kernel.machine k).Machine.eventq (Time.ms 5)
       (fun () -> Netchan.close chan));
  Kernel.run k;
  Alcotest.(check string) "EOF on close" "" !got

let test_double_close_ebadf () =
  let k = Kernel.boot () in
  ignore
    (Kernel.spawn k ~name:"dc" ~main:(fun () ->
         let fd = Uctx.open_file "/x" in
         Uctx.close fd;
         expect_err "double close" (Sysdefs.Sys_close fd) Errno.EBADF;
         expect_err "read closed" (Sysdefs.Sys_read (fd, 1)) Errno.EBADF;
         expect_err "lseek closed" (Sysdefs.Sys_lseek (fd, 0)) Errno.EINVAL;
         expect_err "mmap closed" (Sysdefs.Sys_mmap { fd }) Errno.EBADF));
  Kernel.run k

let test_unlinked_file_segment_survives () =
  (* the paper: sync variables in files can outlive the file's name *)
  let k = Kernel.boot () in
  let still_works = ref false in
  ignore
    (Kernel.spawn k ~name:"unlink" ~main:(fun () ->
         let fd = Uctx.open_file "/gone" in
         let seg = Uctx.mmap fd in
         Uctx.unlink "/gone";
         expect_err "reopen fails"
           (Sysdefs.Sys_open ("/gone", [ Sysdefs.O_RDONLY ]))
           Errno.ENOENT;
         (* the mapping still functions *)
         (match Uctx.kwait ~seg ~offset:0 ~timeout:(Time.ms 1) () with
         | `Timeout -> still_works := true
         | `Woken -> ())));
  Kernel.run k;
  Alcotest.(check bool) "mapped segment outlives the name" true !still_works

(* ------------------------- signals / misc edges ------------------------- *)

let test_sigaction_kill_stop_rejected () =
  let k = Kernel.boot () in
  ignore
    (Kernel.spawn k ~name:"sig" ~main:(fun () ->
         expect_err "catch SIGKILL"
           (Sysdefs.Sys_sigaction (Signo.sigkill, Sysdefs.Sig_ignore))
           Errno.EINVAL;
         expect_err "catch SIGSTOP"
           (Sysdefs.Sys_sigaction (Signo.sigstop, Sysdefs.Sig_ignore))
           Errno.EINVAL));
  Kernel.run k

let test_trap_ignored_when_disposition_ignore () =
  let k = Kernel.boot () in
  let survived = ref false in
  let pid =
    Kernel.spawn k ~name:"ign" ~main:(fun () ->
        ignore (Uctx.sigaction Signo.sigsegv Sysdefs.Sig_ignore);
        Uctx.trap Signo.sigsegv;
        survived := true)
  in
  Kernel.run k;
  Alcotest.(check bool) "trap ignored" true !survived;
  Alcotest.(check (option int)) "clean exit" (Some 0) (Kernel.exit_status k pid)

let test_lwp_kill_bad_target () =
  let k = Kernel.boot () in
  ignore
    (Kernel.spawn k ~name:"badlwp" ~main:(fun () ->
         expect_err "lwp_kill nonsense"
           (Sysdefs.Sys_lwp_kill (99, Signo.sigusr1))
           Errno.ESRCH;
         expect_err "unpark nonsense" (Sysdefs.Sys_lwp_unpark 99) Errno.ESRCH));
  Kernel.run k

let test_kill_bad_pid () =
  let k = Kernel.boot () in
  ignore
    (Kernel.spawn k ~name:"badpid" ~main:(fun () ->
         expect_err "kill nonsense" (Sysdefs.Sys_kill (424242, Signo.sigterm))
           Errno.ESRCH));
  Kernel.run k

let test_waitpid_specific_child () =
  let k = Kernel.boot () in
  let reaped = ref [] in
  ignore
    (Kernel.spawn k ~name:"parent" ~main:(fun () ->
         let c1 = Uctx.fork1 ~child_main:(fun () -> Uctx.exit 11) in
         let c2 = Uctx.fork1 ~child_main:(fun () -> Uctx.exit 22) in
         (* wait for the second child specifically, then the first *)
         let p2, s2 = Uctx.waitpid ~pid:c2 () in
         let p1, s1 = Uctx.waitpid ~pid:c1 () in
         reaped := [ (p2, s2); (p1, s1) ];
         ignore (c1, c2)));
  Kernel.run k;
  match !reaped with
  | [ (_, 22); (_, 11) ] -> ()
  | l ->
      Alcotest.failf "unexpected reap order: %s"
        (String.concat ";"
           (List.map (fun (p, s) -> Printf.sprintf "(%d,%d)" p s) l))

let test_orphaned_child_keeps_running () =
  let k = Kernel.boot ~cpus:2 () in
  let child_finished = ref false in
  ignore
    (Kernel.spawn k ~name:"parent" ~main:(fun () ->
         ignore
           (Uctx.fork1 ~child_main:(fun () ->
                Uctx.sleep (Time.ms 50);
                child_finished := true;
                Uctx.exit 0));
         (* parent exits immediately; child is orphaned *)
         Uctx.exit 0));
  Kernel.run k;
  Alcotest.(check bool) "orphan completed" true !child_finished

let test_profil_counts_user_ticks () =
  let k = Kernel.boot () in
  let ticks = ref 0 in
  ignore
    (Kernel.spawn k ~name:"prof" ~main:(fun () ->
         Uctx.profil true;
         Uctx.charge (Time.ms 100);
         Uctx.profil false;
         ignore ticks));
  Kernel.run k;
  (* 100ms of user time at a 10ms clock tick = ~10 samples; verify
     through /proc totals instead of internal state *)
  let pi = List.hd (Sunos_kernel.Procfs.snapshot k) in
  Alcotest.(check bool) "utime accumulated" true
    Time.(pi.Sunos_kernel.Procfs.pi_utime >= Time.ms 100)

let test_prof_timer_counts_system_time_too () =
  let k = Kernel.boot () in
  let fired = ref false in
  ignore
    (Kernel.spawn k ~name:"ptimer" ~main:(fun () ->
         ignore
           (Uctx.sigaction Signo.sigprof
              (Sysdefs.Sig_handler (fun _ -> fired := true)));
         Uctx.setitimer Sysdefs.Timer_prof (Some (Time.ms 2));
         (* burn mostly system time through syscalls *)
         for _ = 1 to 40 do
           ignore (Uctx.getpid ())
         done;
         Uctx.charge (Time.ms 5)));
  Kernel.run k;
  Alcotest.(check bool) "SIGPROF delivered" true !fired

let test_rusage_counts_faults () =
  let k = Kernel.boot () in
  let ru = ref None in
  ignore
    (Kernel.spawn k ~name:"flt" ~main:(fun () ->
         let seg = Uctx.mmap_anon ~size:16384 ~shared:false in
         Uctx.touch seg ~offset:0;
         Uctx.touch seg ~offset:5000;
         ru := Some (Uctx.getrusage ())));
  Kernel.run k;
  match !ru with
  | Some r -> Alcotest.(check int) "two minor faults" 2 r.Sysdefs.ru_minflt
  | None -> Alcotest.fail "no rusage"

let test_tty_read_line () =
  let k = Kernel.boot () in
  let line = ref "" in
  (* wire the tty up as an fd through the syscall interface *)
  ignore
    (Kernel.spawn k ~name:"sh" ~main:(fun () ->
         (* Fd_tty has no open path of its own: use the machine tty via
            injection + poll-free blocking read through a helper chan *)
         ()));
  ignore line;
  Kernel.run k;
  (* direct device-level check instead *)
  Kernel.tty_input k "hello";
  Sunos_sim.Eventq.run (Kernel.machine k).Machine.eventq;
  Alcotest.(check bool) "tty buffered the line" true
    (Sunos_hw.Devices.Tty.has_input (Kernel.machine k).Machine.tty)

let () =
  Alcotest.run "sunos_kernel_edges"
    [
      ( "sched_classes",
        [
          Alcotest.test_case "gang coscheduled" `Quick
            test_gang_members_coscheduled;
          Alcotest.test_case "gang underprovisioned" `Quick
            test_gang_with_insufficient_cpus_progresses;
          Alcotest.test_case "RT runs to block" `Quick test_rt_class_runs_to_block;
          Alcotest.test_case "TS wake boost" `Quick
            test_ts_decay_lets_interactive_in;
        ] );
      ( "exec",
        [
          Alcotest.test_case "fds kept, handlers reset" `Quick
            test_exec_keeps_fds_resets_handlers;
        ] );
      ( "poll",
        [
          Alcotest.test_case "multiple sources" `Quick test_poll_multiple_sources;
          Alcotest.test_case "writable side" `Quick test_poll_writable_side;
        ] );
      ( "io_edges",
        [
          Alcotest.test_case "EOF and holes" `Quick
            test_file_read_past_eof_and_hole;
          Alcotest.test_case "pipe EOF" `Quick test_pipe_eof_after_writer_close;
          Alcotest.test_case "netchan close" `Quick
            test_netchan_close_unblocks_reader;
          Alcotest.test_case "double close" `Quick test_double_close_ebadf;
          Alcotest.test_case "unlinked segment survives" `Quick
            test_unlinked_file_segment_survives;
          Alcotest.test_case "tty buffers" `Quick test_tty_read_line;
        ] );
      ( "signals_misc",
        [
          Alcotest.test_case "KILL/STOP uncatchable" `Quick
            test_sigaction_kill_stop_rejected;
          Alcotest.test_case "ignored trap" `Quick
            test_trap_ignored_when_disposition_ignore;
          Alcotest.test_case "lwp_kill ESRCH" `Quick test_lwp_kill_bad_target;
          Alcotest.test_case "kill ESRCH" `Quick test_kill_bad_pid;
        ] );
      ( "process",
        [
          Alcotest.test_case "waitpid specific" `Quick
            test_waitpid_specific_child;
          Alcotest.test_case "orphan keeps running" `Quick
            test_orphaned_child_keeps_running;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "profil" `Quick test_profil_counts_user_ticks;
          Alcotest.test_case "prof timer" `Quick
            test_prof_timer_counts_system_time_too;
          Alcotest.test_case "rusage faults" `Quick test_rusage_counts_faults;
        ] );
    ]
