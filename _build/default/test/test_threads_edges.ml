(* Second-wave thread-library tests: concurrency control details, state
   machine edges, inheritance rules, process-shared rwlocks, error
   paths. *)

module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Sysdefs = Sunos_kernel.Sysdefs
module Signo = Sunos_kernel.Signo
module Sigset = Sunos_kernel.Sigset
module Fs = Sunos_kernel.Fs
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Condvar = Sunos_threads.Condvar
module Semaphore = Sunos_threads.Semaphore
module Rwlock = Sunos_threads.Rwlock
module Syncvar = Sunos_threads.Syncvar
module Tls = Sunos_threads.Tls

let run_app ?(cpus = 1) main =
  let k = Kernel.boot ~cpus () in
  ignore (Kernel.spawn k ~name:"app" ~main:(Libthread.boot main));
  Kernel.run k;
  k

(* ------------------------- concurrency control ------------------------- *)

let test_setconcurrency_shrinks () =
  ignore
    (run_app ~cpus:4 (fun () ->
         T.setconcurrency 4;
         Alcotest.(check int) "grew to 4" 4
           (Libthread.stats ()).Libthread.pool_lwps;
         T.setconcurrency 1;
         (* park/officiate a few scheduling rounds so idle LWPs notice *)
         for _ = 1 to 4 do
           Uctx.sleep (Time.ms 2)
         done;
         Alcotest.(check bool) "shrank toward 1" true
           ((Libthread.stats ()).Libthread.pool_lwps <= 2)))

let test_new_lwp_flag_grows_pool () =
  ignore
    (run_app ~cpus:2 (fun () ->
         let before = (Libthread.stats ()).Libthread.pool_lwps in
         let t =
           T.create ~flags:[ T.THREAD_NEW_LWP; T.THREAD_WAIT ] (fun () -> ())
         in
         let after = (Libthread.stats ()).Libthread.pool_lwps in
         ignore (T.wait ~thread:t ());
         Alcotest.(check int) "one more LWP" (before + 1) after))

let test_setconcurrency_zero_means_auto () =
  (* n = 0: the library is allowed to multiplex on few LWPs and grow on
     demand; it must never deadlock the pipe handshake *)
  let ok = ref false in
  ignore
    (run_app ~cpus:2 (fun () ->
         T.setconcurrency 0;
         let rfd, wfd = Uctx.pipe () in
         ignore (T.create (fun () -> ignore (Uctx.write wfd "x")));
         ok := Uctx.read rfd ~len:4 = "x"));
  Alcotest.(check bool) "auto mode made progress" true !ok

(* ------------------------- priority & state ------------------------- *)

let test_priority_returns_old () =
  ignore
    (run_app (fun () ->
         let old = T.priority 45 in
         Alcotest.(check int) "default priority" 31 old;
         Alcotest.(check int) "updated" 45 (T.priority 50);
         Alcotest.check_raises "negative rejected"
           (Invalid_argument "Thread.priority: negative priority") (fun () ->
             ignore (T.priority (-1)))))

let test_priority_inherited_by_child () =
  ignore
    (run_app (fun () ->
         ignore (T.priority 40);
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Alcotest.(check int) "child inherited 40" 40 (T.priority 40))
         in
         ignore (T.wait ~thread:t ())))

let test_sigmask_inherited_by_child () =
  ignore
    (run_app (fun () ->
         ignore (T.sigsetmask Sigset.Sig_block (Sigset.of_list [ Signo.sigusr1 ]));
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               let m = T.sigsetmask Sigset.Sig_block Sigset.empty in
               Alcotest.(check bool) "child mask includes SIGUSR1" true
                 (Sigset.mem Signo.sigusr1 m))
         in
         ignore (T.wait ~thread:t ())))

let test_state_transitions () =
  ignore
    (run_app (fun () ->
         let s = Semaphore.create () in
         let t =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () -> Semaphore.p s)
         in
         Alcotest.(check (option string)) "created runnable" (Some "runnable")
           (T.state t);
         T.yield ();
         Alcotest.(check (option string)) "blocked on sema" (Some "blocked")
           (T.state t);
         Semaphore.v s;
         Alcotest.(check (option string)) "runnable after v" (Some "runnable")
           (T.state t);
         ignore (T.wait ~thread:t ());
         Alcotest.(check (option string)) "reaped: unknown id" None (T.state t)))

let test_stop_blocked_thread_defers () =
  ignore
    (run_app (fun () ->
         let s = Semaphore.create () in
         let t = T.create ~flags:[ T.THREAD_WAIT ] (fun () -> Semaphore.p s) in
         T.yield ();
         (* stop while blocked: applied at wake time *)
         T.stop ~thread:t ();
         Semaphore.v s;
         T.yield ();
         Alcotest.(check (option string)) "stopped at wakeup" (Some "stopped")
           (T.state t);
         T.continue t;
         ignore (T.wait ~thread:t ())))

let test_kill_errors () =
  ignore
    (run_app (fun () ->
         Alcotest.check_raises "kill unknown tid"
           (Invalid_argument "Thread.kill: no such thread") (fun () ->
             T.kill 404 Signo.sigusr1)))

(* ------------------------- shared rwlock / condvar -------------------- *)

let test_shared_rwlock_across_processes () =
  let k = Kernel.boot ~cpus:2 () in
  (match Fs.create_file (Kernel.fs k) ~path:"/rw" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  let violations = ref 0 and ops = ref 0 in
  let readers_now = ref 0 and writer_now = ref false in
  let proc kind () =
    let fd = Uctx.open_file "/rw" in
    let seg = Uctx.mmap fd in
    let l = Rwlock.create_shared (Syncvar.place seg ~offset:0) in
    for _ = 1 to 10 do
      match kind with
      | `Reader ->
          Rwlock.enter l Rwlock.Reader;
          incr readers_now;
          if !writer_now then incr violations;
          Uctx.charge_us 120;
          decr readers_now;
          Rwlock.exit l;
          incr ops
      | `Writer ->
          Rwlock.enter l Rwlock.Writer;
          writer_now := true;
          if !readers_now > 0 then incr violations;
          Uctx.charge_us 150;
          writer_now := false;
          Rwlock.exit l;
          incr ops
    done
  in
  ignore (Kernel.spawn k ~name:"r" ~main:(Libthread.boot (proc `Reader)));
  ignore (Kernel.spawn k ~name:"w" ~main:(Libthread.boot (proc `Writer)));
  Kernel.run k;
  Alcotest.(check int) "all ops" 20 !ops;
  Alcotest.(check int) "no overlap across processes" 0 !violations

let test_shared_condvar_monitor_protocol () =
  (* full monitor across processes: producer posts items through shared
     memory; consumer loops on the condition *)
  let k = Kernel.boot ~cpus:2 () in
  (match Fs.create_file (Kernel.fs k) ~path:"/mon" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup");
  let consumed = ref 0 in
  let cell = ref 0 in
  (* the shared counter lives in OCaml, standing in for mapped data;
     the mutex+cv in the file order access to it *)
  ignore
    (Kernel.spawn k ~name:"consumer"
       ~main:
         (Libthread.boot (fun () ->
              let fd = Uctx.open_file "/mon" in
              let seg = Uctx.mmap fd in
              let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
              let cv = Condvar.create_shared (Syncvar.place seg ~offset:64) in
              for _ = 1 to 5 do
                Mutex.enter m;
                while !cell = 0 do
                  Condvar.wait cv m
                done;
                cell := !cell - 1;
                incr consumed;
                Mutex.exit m
              done)));
  ignore
    (Kernel.spawn k ~name:"producer"
       ~main:
         (Libthread.boot (fun () ->
              let fd = Uctx.open_file "/mon" in
              let seg = Uctx.mmap fd in
              let m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
              let cv = Condvar.create_shared (Syncvar.place seg ~offset:64) in
              for _ = 1 to 5 do
                Uctx.sleep (Time.ms 2);
                Mutex.enter m;
                cell := !cell + 1;
                Condvar.signal cv;
                Mutex.exit m
              done)));
  Kernel.run k;
  Alcotest.(check int) "all items crossed processes" 5 !consumed

let test_shared_mutex_type_confusion_rejected () =
  ignore
    (run_app (fun () ->
         let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
         let _m = Mutex.create_shared (Syncvar.place seg ~offset:0) in
         (* a different variable kind at the same offset must be refused *)
         try
           ignore (Semaphore.create_shared (Syncvar.place seg ~offset:0));
           Alcotest.fail "expected type-confusion rejection"
         with Invalid_argument _ -> ()))

(* ------------------------- misc ------------------------- *)

let test_yield_without_runnable_is_noop () =
  ignore
    (run_app (fun () ->
         let before = (Libthread.stats ()).Libthread.switches in
         T.yield ();
         T.yield ();
         let after = (Libthread.stats ()).Libthread.switches in
         Alcotest.(check int) "no switches when alone" before after))

let test_tls_many_threads () =
  let n = 50 in
  let sum = ref 0 in
  ignore
    (run_app (fun () ->
         let key = Tls.key ~default:0 in
         let ts =
           List.init n (fun i ->
               T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                   Tls.set key (i + 1);
                   T.yield ();
                   sum := !sum + Tls.get key))
         in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  Alcotest.(check int) "each thread kept its own value" (n * (n + 1) / 2) !sum

let test_caller_stack_threads_work () =
  let done_ = ref 0 in
  ignore
    (run_app (fun () ->
         let ts =
           List.init 5 (fun _ ->
               T.create ~flags:[ T.THREAD_WAIT ] ~stack:(`Caller 16384)
                 (fun () -> incr done_))
         in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) ts));
  Alcotest.(check int) "caller-stack threads ran" 5 !done_

let test_library_snapshot_matches () =
  ignore
    (run_app (fun () ->
         let s = Semaphore.create () in
         let blocked =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () -> Semaphore.p s)
         in
         let stopped =
           T.create ~flags:[ T.THREAD_STOP; T.THREAD_WAIT ] (fun () -> ())
         in
         T.yield ();
         let snap = Libthread.threads_snapshot () in
         let state_of tid = List.assoc_opt tid snap in
         Alcotest.(check (option string)) "main running" (Some "running")
           (state_of 1);
         Alcotest.(check (option string)) "blocked listed" (Some "blocked")
           (state_of blocked);
         Alcotest.(check (option string)) "stopped listed" (Some "stopped")
           (state_of stopped);
         Semaphore.v s;
         T.continue stopped;
         ignore (T.wait ~thread:blocked ());
         ignore (T.wait ~thread:stopped ())))

let test_sigaltstack_bound_only () =
  ignore
    (run_app ~cpus:2 (fun () ->
         (* unbound: refused, per the paper *)
         (try
            T.sigaltstack true;
            Alcotest.fail "unbound sigaltstack must raise"
          with Invalid_argument _ -> ());
         let b =
           T.create
             ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
             (fun () -> T.sigaltstack true (* allowed: state is the LWP's *))
         in
         ignore (T.wait ~thread:b ())))

let test_bound_thread_rt_class () =
  (* the paper's real-time mixture: a bound thread asks for the RT class
     and outruns timeshare work on the same CPU *)
  let order = ref [] in
  ignore
    (run_app ~cpus:1 (fun () ->
         let rt =
           T.create
             ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
             (fun () ->
               Uctx.priocntl (Sysdefs.Cls_realtime 30);
               Uctx.sleep (Time.ms 5);
               Uctx.charge (Time.ms 20);
               order := "rt" :: !order)
         in
         Uctx.charge (Time.ms 200);
         order := "ts" :: !order;
         ignore (T.wait ~thread:rt ())));
  Alcotest.(check (list string)) "RT bound thread finished first"
    [ "rt"; "ts" ] (List.rev !order)

(* ------------------------- debugger support ------------------------- *)

let test_debugger_attach_snapshot_detach () =
  let module Debugger = Sunos_threads.Debugger in
  let k = Kernel.boot ~cpus:2 () in
  let finished = ref false in
  let pid =
    Kernel.spawn k ~name:"inferior"
      ~main:
        (Libthread.boot (fun () ->
             let s = Semaphore.create () in
             let blocked =
               T.create ~flags:[ T.THREAD_WAIT ] (fun () -> Semaphore.p s)
             in
             let bound =
               T.create
                 ~flags:[ T.THREAD_BIND_LWP; T.THREAD_WAIT ]
                 (fun () -> Semaphore.p s)
             in
             (* compute long enough for the debugger to attach mid-run *)
             Uctx.charge (Time.ms 100);
             Semaphore.v s;
             Semaphore.v s;
             ignore (T.wait ~thread:blocked ());
             ignore (T.wait ~thread:bound ());
             finished := true))
  in
  (* let it get going, then attach *)
  Kernel.run ~until:(Time.ms 20) k;
  (match Debugger.attach k pid with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* advance: running LWPs reach their stop points; nothing progresses *)
  Kernel.run ~until:(Time.ms 60) k;
  (match Debugger.snapshot k pid with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check string) "name" "inferior" s.Debugger.d_pname;
      (* the kernel sees only LWPs; the library table has the threads *)
      Alcotest.(check bool) "lwps visible" true (List.length s.Debugger.d_lwps >= 2);
      Alcotest.(check int) "threads visible" 3
        (List.length s.Debugger.d_threads);
      let bound_views =
        List.filter (fun t -> t.Debugger.dt_bound_lwp <> None)
          s.Debugger.d_threads
      in
      Alcotest.(check int) "one bound thread mapped to its LWP" 1
        (List.length bound_views));
  Alcotest.(check bool) "stopped: no progress" false !finished;
  (match Debugger.detach k pid with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Kernel.run k;
  Alcotest.(check bool) "resumed and finished" true !finished

let test_debugger_bad_pid () =
  let module Debugger = Sunos_threads.Debugger in
  let k = Kernel.boot () in
  (match Debugger.attach k 4242 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "attach to nonsense pid must fail");
  match Debugger.snapshot k 4242 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "snapshot of nonsense pid must fail"

(* ------------------------- per-thread timers ------------------------- *)

let test_timers_many_sleepers_one_lwp () =
  (* the paper's "library routines may implement multiple per-thread
     timers using the per-address-space timer": 20 sleeping threads,
     one kernel timer, zero extra LWPs pinned *)
  let module Timers = Sunos_threads.Timers in
  let woke = ref [] in
  let k =
    run_app (fun () ->
        let ts =
          List.init 20 (fun i ->
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  Timers.sleep (Time.ms (5 + (3 * i)));
                  let now = Uctx.gettime () in
                  woke := (i, now) :: !woke))
        in
        List.iter (fun t -> ignore (T.wait ~thread:t ())) ts)
  in
  Alcotest.(check int) "all woke" 20 (List.length !woke);
  (* each slept at least its span *)
  List.iter
    (fun (i, at) ->
      Alcotest.(check bool)
        (Printf.sprintf "thread %d slept long enough" i)
        true
        Time.(at >= Time.ms (5 + (3 * i))))
    !woke;
  (* the whole point: the sleeps multiplexed over very few LWPs *)
  Alcotest.(check bool) "no LWP explosion" true (Kernel.lwp_create_count k <= 3)

let test_timers_after_and_cancel () =
  let module Timers = Sunos_threads.Timers in
  let fired = ref [] in
  ignore
    (run_app (fun () ->
         let _a = Timers.after (Time.ms 5) (fun () -> fired := 1 :: !fired) in
         let b = Timers.after (Time.ms 10) (fun () -> fired := 2 :: !fired) in
         let _c = Timers.after (Time.ms 15) (fun () -> fired := 3 :: !fired) in
         Alcotest.(check bool) "cancel pending" true (Timers.cancel b);
         Timers.sleep (Time.ms 30);
         Alcotest.(check bool) "cancel after fire" false (Timers.cancel b)));
  Alcotest.(check (list int)) "1 and 3 fired in order, 2 cancelled" [ 1; 3 ]
    (List.rev !fired)

let test_timers_sleep_orders_wakeups () =
  let module Timers = Sunos_threads.Timers in
  let order = ref [] in
  ignore
    (run_app (fun () ->
         let mk tag span =
           T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
               Timers.sleep span;
               order := tag :: !order)
         in
         let a = mk "late" (Time.ms 20) in
         let b = mk "early" (Time.ms 5) in
         let c = mk "mid" (Time.ms 12) in
         List.iter (fun t -> ignore (T.wait ~thread:t ())) [ a; b; c ]));
  Alcotest.(check (list string)) "deadline order" [ "early"; "mid"; "late" ]
    (List.rev !order)

let () =
  Alcotest.run "sunos_threads_edges"
    [
      ( "concurrency",
        [
          Alcotest.test_case "shrink" `Quick test_setconcurrency_shrinks;
          Alcotest.test_case "THREAD_NEW_LWP" `Quick test_new_lwp_flag_grows_pool;
          Alcotest.test_case "auto mode" `Quick test_setconcurrency_zero_means_auto;
        ] );
      ( "priority_state",
        [
          Alcotest.test_case "priority old value" `Quick test_priority_returns_old;
          Alcotest.test_case "priority inherited" `Quick
            test_priority_inherited_by_child;
          Alcotest.test_case "sigmask inherited" `Quick
            test_sigmask_inherited_by_child;
          Alcotest.test_case "state transitions" `Quick test_state_transitions;
          Alcotest.test_case "stop blocked defers" `Quick
            test_stop_blocked_thread_defers;
          Alcotest.test_case "kill errors" `Quick test_kill_errors;
        ] );
      ( "shared_sync",
        [
          Alcotest.test_case "shared rwlock" `Quick
            test_shared_rwlock_across_processes;
          Alcotest.test_case "shared monitor" `Quick
            test_shared_condvar_monitor_protocol;
          Alcotest.test_case "type confusion" `Quick
            test_shared_mutex_type_confusion_rejected;
        ] );
      ( "misc",
        [
          Alcotest.test_case "yield alone" `Quick
            test_yield_without_runnable_is_noop;
          Alcotest.test_case "tls many threads" `Quick test_tls_many_threads;
          Alcotest.test_case "caller stacks" `Quick
            test_caller_stack_threads_work;
          Alcotest.test_case "library snapshot" `Quick
            test_library_snapshot_matches;
          Alcotest.test_case "bound RT thread" `Quick test_bound_thread_rt_class;
          Alcotest.test_case "sigaltstack bound-only" `Quick
            test_sigaltstack_bound_only;
        ] );
      ( "debugger",
        [
          Alcotest.test_case "attach/snapshot/detach" `Quick
            test_debugger_attach_snapshot_detach;
          Alcotest.test_case "bad pid" `Quick test_debugger_bad_pid;
        ] );
      ( "timers",
        [
          Alcotest.test_case "many sleepers, one timer" `Quick
            test_timers_many_sleepers_one_lwp;
          Alcotest.test_case "after + cancel" `Quick test_timers_after_and_cancel;
          Alcotest.test_case "wake order" `Quick test_timers_sleep_orders_wakeups;
        ] );
    ]
