module Schedctl = Sunos_sim.Schedctl

type entry = { e_tcb : Ttypes.tcb; e_alive : bool ref }

(* Each queue carries a small unique id so the exploration driver can
   tell decision points apart in its logs.  Allocating it is a pure
   counter bump — schedule-invariant. *)
type t = { q : entry Queue.t; wq_id : int }

let next_id = ref 0

let create () =
  incr next_id;
  { q = Queue.create (); wq_id = !next_id }

let add t tcb =
  let alive = ref true in
  Queue.add { e_tcb = tcb; e_alive = alive } t.q;
  fun () -> alive := false

let rec pop_passive q =
  match Queue.take_opt q with
  | None -> None
  | Some e ->
      if !(e.e_alive) then begin
        e.e_alive := false;
        Some e.e_tcb
      end
      else pop_passive q

(* Driven (exploration) mode: the schedule driver picks which live
   waiter is admitted; candidate 0 is the passive FIFO head.  The chosen
   entry is dropped from wherever it sits; cancelled entries ahead of it
   stay queued and are skipped by later pops, exactly as in passive
   mode. *)
let pop_driven t =
  let cands =
    List.rev
      (Queue.fold
         (fun acc e -> if !(e.e_alive) then e :: acc else acc)
         [] t.q)
  in
  match cands with
  | [] ->
      Queue.clear t.q;
      None
  | cands ->
      let i =
        Schedctl.choose ~site:"waitq" ~obj:t.wq_id (List.length cands)
      in
      let chosen = List.nth cands i in
      chosen.e_alive := false;
      let removed = ref false in
      let rest =
        Queue.fold
          (fun acc e ->
            if (not !removed) && e == chosen then begin
              removed := true;
              acc
            end
            else e :: acc)
          [] t.q
      in
      Queue.clear t.q;
      List.iter (fun e -> Queue.add e t.q) (List.rev rest);
      Some chosen.e_tcb

let pop t = if Schedctl.active () then pop_driven t else pop_passive t.q

(* Broadcast pops stay FIFO even when driven: every live entry wakes, so
   admission order only shows up through the run queue — whose own
   decision point explores it.  Choosing here too would square the state
   space for nothing. *)
let pop_all t =
  let rec go acc =
    match pop_passive t.q with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let is_empty t = Queue.fold (fun acc e -> acc && not !(e.e_alive)) true t.q

let length t =
  Queue.fold (fun acc e -> if !(e.e_alive) then acc + 1 else acc) 0 t.q
