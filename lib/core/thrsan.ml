(* thrsan: a deterministic runtime sanitizer for the whole sync stack.

   Three capabilities, all built on pure OCaml mutation (never a charge
   or a syscall, so enabling the sanitizer cannot change the simulated
   schedule — same-seed runs stay bit-identical):

   1. A waits-for graph spanning the user-level sync objects (Mutex,
      Condvar, Semaphore, Rwlock, Syncvar).  Blocking primitives record
      "thread T waits on object O" just before suspending; acquisitions
      maintain each object's holder set.  An incremental cycle check at
      every block raises a structured {!Deadlock} report — the blocked
      thread, the object, the holder, what the holder waits on, around
      the cycle — with object names and acquisition stamps.

   2. Lock-order checking (lockdep), promoted from the opt-in
      {!Lockdebug} wrapper to a pool-wide mode that covers plain
      mutexes, rwlocks and semaphores.  The order graph uses transitive
      reachability (DFS), so an A->B->C->A three-lock cycle is caught,
      not just a direct ABBA inversion.  Lockdebug delegates to the same
      machinery (and stays usable with the sanitizer off).

   3. Hang diagnosis at event-queue drain: when the simulation runs out
      of events while threads remain [Tblocked] (or runnable with every
      LWP asleep), {!watch}'s drain hook dumps who is blocked on what
      and who last held it — turning a silent deadlock into a report.

   Cost when disabled: one [bool ref] load and branch per hook site; no
   allocation, no formatting (the PR 2 [Tracebuf.interested] pattern). *)

open Ttypes
module Machine = Sunos_hw.Machine
module Ktypes = Sunos_kernel.Ktypes

(* ------------------------------------------------------------------ *)
(* Switches                                                            *)
(* ------------------------------------------------------------------ *)

let enabled =
  ref
    (match Sys.getenv_opt "THRSAN" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let tracking () = !enabled
let enable () = enabled := true
let disable () = enabled := false

(* Pool-wide lock-order checking is a separate switch: legitimate
   programs may take locks in orders the heuristic dislikes, so THRSAN=1
   enables only the false-positive-free checks (waits-for cycles, bare
   parks, hang reports). *)
let order_mode = ref false
let set_lock_order_mode b = order_mode := b
let lock_order_mode () = !order_mode

(* ------------------------------------------------------------------ *)
(* Sanitizer objects                                                   *)
(* ------------------------------------------------------------------ *)

let next_obj_id = ref 0

(* Global acquisition sequence: a deterministic "site" stamp.  (Not
   simulated time — reading the clock is a syscall and would perturb the
   schedule.) *)
let acq_seq = ref 0

let new_obj ~kind ?name () =
  incr next_obj_id;
  let id = !next_obj_id in
  {
    so_id = id;
    so_kind = kind;
    so_name =
      (match name with Some n -> n | None -> Printf.sprintf "%s#%d" kind id);
    so_holders = [];
    so_last_holder = "";
    so_acq_seq = 0;
  }

let set_name obj name = obj.so_name <- name

(* Shared-memory sync variables, keyed by (segment name, offset) so the
   same location resolves to the same object from every process. *)
let syncvar_objs : (string * int, san_obj) Hashtbl.t = Hashtbl.create 32

let syncvar_obj ~seg ~offset =
  match Hashtbl.find_opt syncvar_objs (seg, offset) with
  | Some o -> o
  | None ->
      let o =
        new_obj ~kind:"syncvar" ~name:(Printf.sprintf "%s+%d" seg offset) ()
      in
      Hashtbl.add syncvar_objs (seg, offset) o;
      o

let thread_desc (t : tcb) = Printf.sprintf "%d/%d" t.pool.pid t.tid

(* ------------------------------------------------------------------ *)
(* Lock-order graph (transitive)                                       *)
(* ------------------------------------------------------------------ *)

exception Lock_order_violation of string * string

let order_edges : (int, int list ref) Hashtbl.t = Hashtbl.create 64
let reset_order_graph () = Hashtbl.reset order_edges

let add_edge a b =
  match Hashtbl.find_opt order_edges a with
  | Some l -> if not (List.mem b !l) then l := b :: !l
  | None -> Hashtbl.add order_edges a (ref [ b ])

(* DFS over the recorded order: is [dst] reachable from [src]? *)
let reachable src dst =
  let visited = Hashtbl.create 16 in
  let rec go n =
    if n = dst then true
    else if Hashtbl.mem visited n then false
    else begin
      Hashtbl.add visited n ();
      match Hashtbl.find_opt order_edges n with
      | None -> false
      | Some l -> List.exists go !l
    end
  in
  go src

(* Acquiring [obj] while holding [held] is a violation if the recorded
   order already puts [obj] (transitively) before [held]; otherwise the
   new edge held -> obj is recorded. *)
let check_order self obj =
  List.iter
    (fun held ->
      if held.so_id <> obj.so_id then begin
        if reachable obj.so_id held.so_id then
          raise (Lock_order_violation (held.so_name, obj.so_name));
        add_edge held.so_id obj.so_id
      end)
    self.san_held

let held_push self obj = self.san_held <- obj :: self.san_held

let held_pop self obj =
  let rec drop = function
    | [] -> []
    | o :: rest -> if o == obj then rest else o :: drop rest
  in
  self.san_held <- drop self.san_held

(* ------------------------------------------------------------------ *)
(* Waits-for graph and deadlock reports                                *)
(* ------------------------------------------------------------------ *)

type wait_link = {
  wl_pid : int;
  wl_tid : int;
  wl_obj_id : int;
  wl_obj_kind : string;
  wl_obj_name : string;
  wl_acq_seq : int;  (* acquisition stamp of the object's current hold *)
  wl_holders : (int * int) list;  (* (pid, tid) of each holder *)
}

type deadlock_report = { dl_links : wait_link list; dl_text : string }

exception Deadlock of deadlock_report

let last_deadlock_r : deadlock_report option ref = ref None
let last_deadlock () = !last_deadlock_r

(* Search the waits-for graph for a cycle through [self]: self waits on
   [root]; a holder of [root] may wait on another object, whose holder
   may wait in turn... if the chain reaches [self], the group can never
   make progress.  [skip_self_hold] exempts [self]'s own hold of the
   ROOT object only — a pending rwlock upgrader legitimately waits on a
   lock it still holds as a reader. *)
let find_cycle ~skip_self_hold self root =
  let visited = Hashtbl.create 8 in
  let rec dfs obj chain ~at_root =
    if Hashtbl.mem visited obj.so_id then None
    else begin
      Hashtbl.add visited obj.so_id ();
      let rec scan = function
        | [] -> None
        | h :: rest ->
            if h == self then
              if at_root && skip_self_hold then scan rest
              else Some (List.rev chain)
            else begin
              match h.san_waiting with
              | Some o2 -> (
                  match dfs o2 ((h, o2) :: chain) ~at_root:false with
                  | Some c -> Some c
                  | None -> scan rest)
              | None -> scan rest
            end
      in
      scan obj.so_holders
    end
  in
  dfs root [ (self, root) ] ~at_root:true

let link_of (t, o) =
  {
    wl_pid = t.pool.pid;
    wl_tid = t.tid;
    wl_obj_id = o.so_id;
    wl_obj_kind = o.so_kind;
    wl_obj_name = o.so_name;
    wl_acq_seq = o.so_acq_seq;
    wl_holders = List.map (fun h -> (h.pool.pid, h.tid)) o.so_holders;
  }

let render_deadlock links =
  let b = Buffer.create 256 in
  Buffer.add_string b "thrsan: deadlock (waits-for cycle):\n";
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "  thread %d/%d waits on %s %s (acq#%d) held by %s\n"
           l.wl_pid l.wl_tid l.wl_obj_kind l.wl_obj_name l.wl_acq_seq
           (match l.wl_holders with
           | [] -> "nobody"
           | hs ->
               String.concat ", "
                 (List.map (fun (p, t) -> Printf.sprintf "%d/%d" p t) hs))))
    links;
  Buffer.contents b

(* Hooks called by the sync primitives.  All are gated at the call site
   on [tracking ()], so the disabled cost is the caller's branch. *)

let acquiring self obj = if !order_mode then check_order self obj

let acquired self obj =
  incr acq_seq;
  obj.so_acq_seq <- !acq_seq;
  obj.so_holders <- self :: obj.so_holders;
  obj.so_last_holder <- thread_desc self;
  (* held is maintained whenever the sanitizer tracks: the order
     checker reads it, and so does the exploration driver (per-thread
     lock footprints for its partial-order reduction) *)
  held_push self obj

let released self obj =
  let rec drop = function
    | [] -> []
    | h :: rest -> if h == self then rest else h :: drop rest
  in
  obj.so_holders <- drop obj.so_holders;
  held_pop self obj

let blocked_on ?(skip_self_hold = false) self obj =
  self.san_waiting <- Some obj;
  match find_cycle ~skip_self_hold self obj with
  | None -> ()
  | Some chain ->
      let links = List.map link_of chain in
      let r = { dl_links = links; dl_text = render_deadlock links } in
      last_deadlock_r := Some r;
      (* we raise instead of parking, so we are not actually waiting *)
      self.san_waiting <- None;
      raise (Deadlock r)

let clear_wait self = self.san_waiting <- None

(* ------------------------------------------------------------------ *)
(* Bare-park audit                                                     *)
(* ------------------------------------------------------------------ *)

(* A thread that parks [Tblocked] without registering [cancel_wait] on
   any wait queue (and without telling the sanitizer what it waits on)
   is invisible to wakers and uncancellable on signal routing — the
   exact shape of the rwlock upgrader bug (BUG 14).  The scheduler calls
   this right after the park function runs. *)

let bare_parks_r : (int * int) list ref = ref []

let note_bare_park self =
  let key = (self.pool.pid, self.tid) in
  if not (List.mem key !bare_parks_r) then bare_parks_r := key :: !bare_parks_r

let bare_parks () = List.rev !bare_parks_r

(* ------------------------------------------------------------------ *)
(* Hang diagnosis at event-queue drain                                 *)
(* ------------------------------------------------------------------ *)

(* The library publishes each pool here at boot (same replace-on-boot
   semantics as Debugger.publish: the latest process under a pid wins). *)
let pools_key : (int, pool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let pools () = Domain.DLS.get pools_key
let register_pool (p : pool) = Hashtbl.replace (pools ()) p.pid p

type hung_thread = {
  ht_pid : int;
  ht_tid : int;
  ht_state : string;  (* "blocked" | "runnable" *)
  ht_on : string;  (* object description, or "" when unknown *)
  ht_holders : (int * int) list;
  ht_last_holder : string;
}

type sleeping_lwp = {
  hl_pid : int;
  hl_lid : int;
  hl_wchan : string;
  hl_indefinite : bool;
}

type hang_report = {
  hr_threads : hung_thread list;
  hr_lwps : sleeping_lwp list;
  hr_text : string;
}

let last_hang_r : hang_report option ref = ref None
let last_hang () = !last_hang_r

let render_hang threads lwps =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "thrsan: event queue drained with threads still waiting:\n";
  List.iter
    (fun t ->
      Buffer.add_string b
        (Printf.sprintf "  thread %d/%d %s%s%s\n" t.ht_pid t.ht_tid t.ht_state
           (if t.ht_on = "" then "" else " on " ^ t.ht_on)
           (if t.ht_last_holder = "" then ""
            else Printf.sprintf " (last held by %s)" t.ht_last_holder)))
    threads;
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "  lwp %d/%d asleep in kernel on %S%s\n" l.hl_pid
           l.hl_lid l.hl_wchan
           (if l.hl_indefinite then " (indefinite)" else "")))
    lwps;
  Buffer.contents b

let hang_check (k : Ktypes.kernel) =
  let threads = ref [] and lwps = ref [] in
  List.iter
    (fun (p : Ktypes.proc) ->
      if p.Ktypes.pstate = Ktypes.Palive then begin
        List.iter
          (fun (l : Ktypes.lwp) ->
            match l.Ktypes.lstate with
            | Ktypes.Lsleeping ->
                let indef =
                  match l.Ktypes.sleep with
                  | Some s -> s.Ktypes.sl_indefinite
                  | None -> true
                in
                lwps :=
                  {
                    hl_pid = p.Ktypes.pid;
                    hl_lid = l.Ktypes.lid;
                    hl_wchan = l.Ktypes.wchan;
                    hl_indefinite = indef;
                  }
                  :: !lwps
            | _ -> ())
          p.Ktypes.lwps;
        match Hashtbl.find_opt (pools ()) p.Ktypes.pid with
        | None -> ()
        | Some pool ->
            Hashtbl.iter
              (fun _ t ->
                match t.tstate with
                | Tblocked ->
                    let on, holders, last =
                      match t.san_waiting with
                      | Some o ->
                          ( Printf.sprintf "%s %s" o.so_kind o.so_name,
                            List.map
                              (fun h -> (h.pool.pid, h.tid))
                              o.so_holders,
                            o.so_last_holder )
                      | None -> ("", [], "")
                    in
                    threads :=
                      {
                        ht_pid = pool.pid;
                        ht_tid = t.tid;
                        ht_state = "blocked";
                        ht_on = on;
                        ht_holders = holders;
                        ht_last_holder = last;
                      }
                      :: !threads
                | Trunnable ->
                    (* runnable with the event queue drained: every LWP
                       of the process is asleep — starvation (the A2
                       ablation's shape) *)
                    threads :=
                      {
                        ht_pid = pool.pid;
                        ht_tid = t.tid;
                        ht_state = "runnable";
                        ht_on = "";
                        ht_holders = [];
                        ht_last_holder = "";
                      }
                      :: !threads
                | Trunning | Tstopped | Tzombie -> ())
              pool.threads
      end)
    k.Ktypes.procs;
  let threads = List.rev !threads and lwps = List.rev !lwps in
  let interesting =
    threads <> []
    || List.exists (fun l -> l.hl_indefinite && l.hl_wchan <> "lwp_park") lwps
  in
  if interesting then
    Some { hr_threads = threads; hr_lwps = lwps; hr_text = render_hang threads lwps }
  else None

let watch (k : Ktypes.kernel) =
  let m = k.Ktypes.machine in
  Sunos_sim.Eventq.on_drain m.Machine.eventq (fun () ->
      match hang_check k with
      | None -> ()
      | Some r ->
          last_hang_r := Some r;
          Machine.trace m ~tag:"thrsan" "%s" r.hr_text)

(* ------------------------------------------------------------------ *)
(* Housekeeping                                                        *)
(* ------------------------------------------------------------------ *)

let reset () =
  last_deadlock_r := None;
  last_hang_r := None;
  bare_parks_r := [];
  reset_order_graph ();
  (* drop cached syncvar objects: the exploration driver boots many
     machines in one process, and a stale object's holder list would
     let a dead run's threads leak into a fresh run's cycle search *)
  Hashtbl.reset syncvar_objs

let () =
  Printexc.register_printer (function
    | Deadlock r -> Some r.dl_text
    | Lock_order_violation (held, wanted) ->
        Some
          (Printf.sprintf
             "thrsan: taking %S while holding %S contradicts recorded order"
             wanted held)
    | _ -> None)
