open Ttypes
module Uctx = Sunos_kernel.Uctx
module Sigset = Sunos_kernel.Sigset
module Signo = Sunos_kernel.Signo
module Sysdefs = Sunos_kernel.Sysdefs
module Cost = Sunos_hw.Cost_model

type id = int

type flag = THREAD_STOP | THREAD_NEW_LWP | THREAD_BIND_LWP | THREAD_WAIT

let get_id () = (Current.get ()).tid
let self_pool () = Current.pool ()

let create ?(flags = []) ?(stack = `Default) entry =
  let self = Current.get () in
  let pool = self.pool in
  let has f = List.mem f flags in
  let bound = has THREAD_BIND_LWP in
  let stopped = has THREAD_STOP in
  let stack_kind =
    match stack with `Default -> Stack_default | `Caller n -> Stack_caller n
  in
  Pool.charge_create_costs pool stack_kind;
  let tcb =
    Pool.new_tcb pool ~entry ~prio:self.prio ~sigmask:self.tsigmask ~bound
      ~wait_flag:(has THREAD_WAIT) ~stack_kind ~stopped
  in
  if bound then begin
    pool.ctr_creates_bound <- pool.ctr_creates_bound + 1;
    (* the LWP is created with the thread and dedicated to it *)
    Pool.spawn_bound pool tcb
  end
  else begin
    pool.ctr_creates_unbound <- pool.ctr_creates_unbound + 1;
    if has THREAD_NEW_LWP then Pool.grow_pool pool;
    if not stopped then begin
      Pool.runq_push pool tcb;
      Uctx.charge pool.cost.Cost.runq_op;
      ignore (Pool.kick_idle_lwp pool)
    end
  end;
  tcb.tid

let exit () = raise Thread_exit_exn

let find pool tid = Hashtbl.find_opt pool.threads tid

(* Reap a zombie THREAD_WAIT thread: its id becomes reusable and its
   default stack is already back in the cache. *)
let reap pool tcb = Hashtbl.remove pool.threads tcb.tid

let rec wait_any self pool =
  let zombie =
    Hashtbl.fold
      (fun _ t acc ->
        match acc with
        | Some _ -> acc
        | None -> if t.wait_flag && t.exited then Some t else None)
      pool.threads None
  in
  match zombie with
  | Some t ->
      reap pool t;
      t.tid
  | None ->
      let waitable_exists =
        Hashtbl.fold
          (fun _ t acc -> acc || (t.wait_flag && t != self))
          pool.threads false
      in
      if not waitable_exists then
        invalid_arg "Thread.wait: no THREAD_WAIT thread to wait for";
      (match
         Pool.suspend ~park:(fun tcb ->
             tcb.tstate <- Tblocked;
             pool.any_waiters <- pool.any_waiters @ [ tcb ];
             tcb.cancel_wait <-
               (fun () ->
                 pool.any_waiters <-
                   List.filter (fun t -> t != tcb) pool.any_waiters))
       with
      | Wake_normal -> ()
      | Wake_signal _ -> Pool.run_pending_tsigs ());
      wait_any self pool

let rec wait_for self pool target =
  if target.exited then begin
    reap pool target;
    target.tid
  end
  else begin
    (match
       Pool.suspend ~park:(fun tcb ->
           tcb.tstate <- Tblocked;
           target.waiter <- Some tcb;
           tcb.cancel_wait <-
             (fun () ->
               match target.waiter with
               | Some w when w == tcb -> target.waiter <- None
               | Some _ | None -> ()))
     with
    | Wake_normal -> ()
    | Wake_signal _ -> Pool.run_pending_tsigs ());
    wait_for self pool target
  end

let wait ?thread () =
  let self = Current.get () in
  let pool = self.pool in
  Uctx.charge pool.cost.Cost.call;
  match thread with
  | None -> wait_any self pool
  | Some tid -> (
      match find pool tid with
      | None -> invalid_arg "Thread.wait: no such thread"
      | Some target ->
          if target == self then invalid_arg "Thread.wait: waiting for self";
          if not target.wait_flag then
            invalid_arg "Thread.wait: thread not created with THREAD_WAIT";
          if target.waiter <> None then
            invalid_arg "Thread.wait: thread already has a waiter";
          wait_for self pool target)

let sigsetmask how set =
  let self = Current.get () in
  let old = self.tsigmask in
  self.tsigmask <- Sigset.apply how set ~old;
  Sigdeliver.mask_changed self;
  old

let kill tid signo =
  let pool = Current.pool () in
  Uctx.charge pool.cost.Cost.call;
  match find pool tid with
  | None -> invalid_arg "Thread.kill: no such thread"
  | Some target -> Sigdeliver.thread_kill target signo

let sigsend_all signo = Sigdeliver.sigsend_all (Current.pool ()) signo

let stop ?thread () =
  let self = Current.get () in
  let pool = self.pool in
  Uctx.charge pool.cost.Cost.call;
  let stop_self () =
    match Pool.suspend ~park:(fun tcb -> tcb.tstate <- Tstopped) with
    | Wake_normal -> ()
    | Wake_signal _ -> Pool.run_pending_tsigs ()
  in
  match thread with
  | None -> stop_self ()
  | Some tid when tid = self.tid -> stop_self ()
  | Some tid -> (
      match find pool tid with
      | None -> invalid_arg "Thread.stop: no such thread"
      | Some target -> (
          match target.tstate with
          | Trunnable -> target.tstate <- Tstopped (* runq entry goes stale *)
          | Trunning | Tblocked -> target.stop_requested <- true
          | Tstopped | Tzombie -> ()))

let continue tid =
  let pool = Current.pool () in
  Uctx.charge pool.cost.Cost.call;
  match find pool tid with
  | None -> invalid_arg "Thread.continue: no such thread"
  | Some target -> (
      target.stop_requested <- false;
      match target.tstate with
      | Tstopped ->
          target.tstate <- Trunnable;
          if target.bound then Pool.unpark_bound pool target
          else begin
            (* preserve the wake_reason recorded when it was stopped *)
            Pool.runq_push pool target;
            Uctx.charge pool.cost.Cost.runq_op;
            ignore (Pool.kick_idle_lwp pool)
          end
      | Trunnable | Trunning | Tblocked | Tzombie -> ())

let priority ?thread prio =
  let self = Current.get () in
  let pool = self.pool in
  if prio < 0 then invalid_arg "Thread.priority: negative priority";
  let target =
    match thread with
    | None -> self
    | Some tid -> (
        match find pool tid with
        | Some t -> t
        | None -> invalid_arg "Thread.priority: no such thread")
  in
  let old = target.prio in
  target.prio <- min max_prio prio;
  old

let setconcurrency n =
  let pool = Current.pool () in
  if n < 0 then invalid_arg "Thread.setconcurrency: negative";
  pool.concurrency_target <- n;
  if n = 0 then () (* automatic: SIGWAITING growth takes over *)
  else if n > pool.n_pool_lwps then
    for _ = pool.n_pool_lwps + 1 to n do
      Pool.grow_pool pool
    done
  else if n < pool.n_pool_lwps then begin
    pool.shrink_lwps <- pool.shrink_lwps + (pool.n_pool_lwps - n);
    (* poke idle LWPs so they notice and retire *)
    ignore (Pool.kick_idle_lwp pool)
  end

let yield () =
  let self = Current.get () in
  let pool = self.pool in
  Pool.thread_checkpoint ();
  if live_runnable pool && not self.bound then begin
    match
      Pool.suspend ~park:(fun tcb ->
          tcb.tstate <- Trunnable;
          Pool.runq_push pool tcb)
    with
    | Wake_normal -> ()
    | Wake_signal _ -> Pool.run_pending_tsigs ()
  end
  else Uctx.charge pool.cost.Cost.call

let sigaction signo disp =
  Sigdeliver.set_disposition (Current.pool ()) signo disp

let sigaltstack enabled =
  let self = Current.get () in
  (* the paper: alternate-stack state belongs to the LWP, so only bound
     threads may use one — giving it to unbound threads would cost a
     system call on every thread context switch *)
  if not self.bound then
    invalid_arg "Thread.sigaltstack: only bound threads may use one";
  match Uctx.syscall (Sysdefs.Sys_sigaltstack enabled) with
  | Sysdefs.R_ok -> ()
  | _ -> invalid_arg "Thread.sigaltstack"

let state tid =
  match find (Current.pool ()) tid with
  | None -> None
  | Some t ->
      Some
        (match t.tstate with
        | Trunnable -> "runnable"
        | Trunning -> "running"
        | Tblocked -> "blocked"
        | Tstopped -> "stopped"
        | Tzombie -> "zombie")
