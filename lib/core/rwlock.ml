open Ttypes
module Uctx = Sunos_kernel.Uctx
module Robust = Sunos_kernel.Robust
module Univ = Sunos_sim.Univ
module Cost = Sunos_hw.Cost_model
module Shm = Sunos_hw.Shared_memory

type rw = Reader | Writer

type priv = {
  mutable readers : tcb list;  (* current reader holders *)
  mutable writer : tcb option;
  mutable upgrader : tcb option;  (* reader waiting to become writer *)
  rq : Waitq.t;
  wq : Waitq.t;
  uq : Waitq.t;  (* the (single) pending upgrader parks here so signal
                    routing and the promotion wake can find it *)
  mutable san : san_obj option;
}

type shared_state = {
  mutable s_readers : int;
  mutable s_writer : bool;
  mutable s_writer_pid : int;
  mutable s_writer_tid : int;
  mutable s_wwaiters : int;
  mutable s_robust : bool;
  mutable s_ownerdead : bool;
  mutable s_san : san_obj option;
}

type t =
  | Private of priv
  | Shared of { state : shared_state; at : Syncvar.place }

let shared_key : shared_state Univ.key = Univ.key ()

let create () =
  Private
    { readers = []; writer = None; upgrader = None; rq = Waitq.create ();
      wq = Waitq.create (); uq = Waitq.create (); san = None }

let create_shared ?(robust = false) at =
  let state =
    Syncvar.locate at ~key:shared_key ~make:(fun () ->
        { s_readers = 0; s_writer = false; s_writer_pid = 0; s_writer_tid = 0;
          s_wwaiters = 0; s_robust = false; s_ownerdead = false; s_san = None })
  in
  if robust then state.s_robust <- true;
  Shared { state; at }

let rsan s =
  match s.san with
  | Some o -> o
  | None ->
      let o = Thrsan.new_obj ~kind:"rwlock" () in
      s.san <- Some o;
      o

let rssan st (at : Syncvar.place) =
  match st.s_san with
  | Some o -> o
  | None ->
      let o =
        Thrsan.new_obj ~kind:"rwlock(shared)"
          ~name:(Printf.sprintf "%s+%d" (Shm.name at.Syncvar.seg) at.offset)
          ()
      in
      st.s_san <- Some o;
      o

exception Owner_dead

let () =
  Printexc.register_printer (function
    | Owner_dead ->
        Some
          "Rwlock: robust lock's writer died; acquire with enter_robust and \
           repair"
    | _ -> None)

(* --- robust-list bookkeeping (see Mutex for the protocol) ------------- *)

let robust_reg st (at : Syncvar.place) self ~on_death =
  if st.s_robust then
    Robust.register ~seg_id:(Shm.id at.Syncvar.seg) ~offset:at.offset
      ~pid:self.pool.pid ~tid:self.tid
      ~owner_dead:(fun () -> self.exited || self.tstate = Tzombie)
      ~on_death

(* A dead writer may have left the protected state torn: flag OWNERDEAD
   for the next acquirer to repair. *)
let robust_reg_writer st at self =
  robust_reg st at self ~on_death:(fun () ->
      st.s_writer <- false;
      st.s_writer_pid <- 0;
      st.s_writer_tid <- 0;
      st.s_ownerdead <- true;
      match st.s_san with Some o -> o.so_holders <- [] | None -> ())

(* A dead reader cannot have corrupted anything; just drop its hold so
   writers stop waiting for a ghost. *)
let robust_reg_reader st at self =
  robust_reg st at self ~on_death:(fun () ->
      st.s_readers <- max 0 (st.s_readers - 1);
      match st.s_san with
      | Some o -> o.so_holders <- List.filter (fun t -> t != self) o.so_holders
      | None -> ())

let robust_unreg st (at : Syncvar.place) self =
  if st.s_robust then
    Robust.unregister ~seg_id:(Shm.id at.Syncvar.seg) ~offset:at.offset
      ~pid:self.pool.pid ~tid:self.tid

(* Seeded-bug knob for the exploration suite (test-only, default off):
   revert the upgrader to its pre-fix BUG 14 shape — a bare park with no
   uq registration, promoted by waking the TCB directly whether or not
   it is parked.  The explorer must re-find the phantom-runq-entry
   crash that shape causes. *)
let bug14_bare_upgrader = ref false

(* Writer preference: new readers are admitted only when no writer holds
   or waits and no upgrade is pending. *)
let can_read s =
  s.writer = None && s.upgrader = None && Waitq.is_empty s.wq

let can_write s = s.writer = None && s.readers = [] && s.upgrader = None

let rec block_on ~self ~san ~waitq ~can ~admit =
  if can () then begin
    admit ();
    if Thrsan.tracking () then Thrsan.acquired self (san ())
  end
  else begin
    if Thrsan.tracking () then Thrsan.blocked_on self (san ());
    match
      Pool.suspend ~park:(fun tcb ->
          tcb.tstate <- Tblocked;
          tcb.cancel_wait <- Waitq.add waitq tcb)
    with
    | Wake_normal -> block_on ~self ~san ~waitq ~can ~admit
    | Wake_signal _ ->
        Pool.run_pending_tsigs ();
        block_on ~self ~san ~waitq ~can ~admit
  end

(* Wake policy on release: one waiting writer first; with none, every
   waiting reader (they re-validate on wake). *)
let wake_next s =
  match Waitq.pop s.wq with
  | Some w -> Pool.make_ready w Wake_normal
  | None ->
      List.iter
        (fun r -> Pool.make_ready r Wake_normal)
        (Waitq.pop_all s.rq)

let enter_priv s self kind =
  if Thrsan.tracking () then Thrsan.acquiring self (rsan s);
  match kind with
  | Reader ->
      block_on ~self ~san:(fun () -> rsan s) ~waitq:s.rq
        ~can:(fun () -> can_read s)
        ~admit:(fun () -> s.readers <- self :: s.readers)
  | Writer ->
      block_on ~self ~san:(fun () -> rsan s) ~waitq:s.wq
        ~can:(fun () -> can_write s)
        ~admit:(fun () -> s.writer <- Some self)

let exit_priv s self =
  let is_writer = match s.writer with Some w -> w == self | None -> false in
  if is_writer then begin
    s.writer <- None;
    if Thrsan.tracking () then Thrsan.released self (rsan s);
    wake_next s
  end
  else if List.memq self s.readers then begin
    s.readers <- List.filter (fun t -> t != self) s.readers;
    if Thrsan.tracking () then Thrsan.released self (rsan s);
    match (s.readers, s.upgrader) with
    | [ last ], Some up when last == up ->
        if !bug14_bare_upgrader then Pool.make_ready up Wake_normal
        else (
          (* the upgrader is the only reader left: promote it — but only
             if it is actually parked.  Waking it via its TCB regardless
             (the old code) re-readied an upgrader that had been woken
             for a signal and was not parked at all, planting a phantom
             runq entry that an idle LWP later dispatched with no
             continuation (BUG 14). *)
          match Waitq.pop s.uq with
          | Some u -> Pool.make_ready u Wake_normal
          | None -> () (* between wakeups; it will re-check only_self *))
    | [], _ -> wake_next s
    | _ :: _, _ -> ()
  end
  else failwith "Rwlock.exit: calling thread holds neither side"

let downgrade_priv s self =
  (match s.writer with
  | Some w when w == self -> ()
  | Some _ | None ->
      failwith "Rwlock.downgrade: calling thread is not the writer");
  s.writer <- None;
  s.readers <- [ self ];
  (* waiting writers remain waiting; with none, admit pending readers *)
  if Waitq.is_empty s.wq then
    List.iter (fun r -> Pool.make_ready r Wake_normal) (Waitq.pop_all s.rq)

let try_upgrade_priv s self =
  if not (List.memq self s.readers) then
    failwith "Rwlock.try_upgrade: calling thread is not a reader";
  if s.upgrader <> None || not (Waitq.is_empty s.wq) then false
  else begin
    match s.readers with
    | [ only ] when only == self ->
        s.readers <- [];
        s.writer <- Some self;
        true
    | _ ->
        (* wait for the other readers to drain; upgrade pends block new
           readers (can_read) so this terminates *)
        s.upgrader <- Some self;
        let rec wait () =
          let only_self =
            match s.readers with [ only ] -> only == self | _ -> false
          in
          if only_self then begin
            s.readers <- [];
            s.upgrader <- None;
            s.writer <- Some self
          end
          else begin
            (* we still hold the lock as a reader, so exempt our own
               hold at the root of the cycle check *)
            if Thrsan.tracking () then
              Thrsan.blocked_on ~skip_self_hold:true self (rsan s);
            match
              Pool.suspend ~park:(fun tcb ->
                  tcb.tstate <- Tblocked;
                  if not !bug14_bare_upgrader then
                    tcb.cancel_wait <- Waitq.add s.uq tcb)
            with
            | Wake_normal -> wait ()
            | Wake_signal _ ->
                Pool.run_pending_tsigs ();
                wait ()
          end
        in
        wait ();
        true
  end

(* --- shared variant: loops over kwait with a broadcast wake ---------- *)

(* Returns [`Owner_dead] when a robust lock's writer died: regardless of
   the requested side the acquirer is then admitted as the WRITER, since
   repairing the protected state needs exclusive access.  After
   [set_consistent] it may [downgrade] back to reading. *)
let rec enter_shared st at self kind =
  if Thrsan.tracking () then Thrsan.acquiring self (rssan st at);
  if st.s_robust && st.s_ownerdead then begin
    if (not st.s_writer) && st.s_readers = 0 then begin
      st.s_writer <- true;
      st.s_writer_pid <- self.pool.pid;
      st.s_writer_tid <- self.tid;
      robust_reg_writer st at self;
      if Thrsan.tracking () then Thrsan.acquired self (rssan st at);
      `Owner_dead
    end
    else begin
      if Thrsan.tracking () then Thrsan.blocked_on self (rssan st at);
      (match
         Syncvar.wait at ~expect:(fun () -> st.s_writer || st.s_readers > 0) ()
       with
      | `Woken | `Timeout -> ());
      if Thrsan.tracking () then Thrsan.clear_wait self;
      enter_shared st at self kind
    end
  end
  else
    match kind with
    | Reader ->
        if (not st.s_writer) && st.s_wwaiters = 0 then begin
          st.s_readers <- st.s_readers + 1;
          robust_reg_reader st at self;
          if Thrsan.tracking () then Thrsan.acquired self (rssan st at);
          `Locked
        end
        else begin
          if Thrsan.tracking () then Thrsan.blocked_on self (rssan st at);
          (match
             Syncvar.wait at
               ~expect:(fun () -> st.s_writer || st.s_wwaiters > 0)
               ()
           with
          | `Woken | `Timeout -> ());
          if Thrsan.tracking () then Thrsan.clear_wait self;
          enter_shared st at self kind
        end
    | Writer ->
        if (not st.s_writer) && st.s_readers = 0 then begin
          st.s_writer <- true;
          st.s_writer_pid <- self.pool.pid;
          st.s_writer_tid <- self.tid;
          robust_reg_writer st at self;
          if Thrsan.tracking () then Thrsan.acquired self (rssan st at);
          `Locked
        end
        else begin
          st.s_wwaiters <- st.s_wwaiters + 1;
          if Thrsan.tracking () then Thrsan.blocked_on self (rssan st at);
          (match
             Syncvar.wait at
               ~expect:(fun () -> st.s_writer || st.s_readers > 0)
               ()
           with
          | `Woken | `Timeout -> ());
          if Thrsan.tracking () then Thrsan.clear_wait self;
          st.s_wwaiters <- st.s_wwaiters - 1;
          enter_shared st at self kind
        end

let exit_shared st at self =
  if st.s_writer && st.s_writer_pid = self.pool.pid
     && st.s_writer_tid = self.tid
  then begin
    robust_unreg st at self;
    st.s_writer <- false;
    st.s_writer_pid <- 0;
    st.s_writer_tid <- 0;
    if Thrsan.tracking () then Thrsan.released self (rssan st at);
    ignore (Syncvar.wake_all at)
  end
  else if st.s_readers > 0 then begin
    robust_unreg st at self;
    st.s_readers <- st.s_readers - 1;
    if Thrsan.tracking () then Thrsan.released self (rssan st at);
    if st.s_readers = 0 then ignore (Syncvar.wake_all at)
  end
  else failwith "Rwlock.exit: lock not held"

(* --- public ---------------------------------------------------------- *)

let charge_op () =
  Uctx.charge (Current.pool ()).cost.Cost.sync_fast

let enter l kind =
  let self = Current.get () in
  charge_op ();
  Pool.thread_checkpoint ();
  match l with
  | Private s -> enter_priv s self kind
  | Shared { state; at } -> (
      match enter_shared state at self kind with
      | `Locked -> ()
      | `Owner_dead ->
          (* plain entry cannot return the recovery obligation; release
             the write side we were handed and refuse *)
          exit_shared state at self;
          raise Owner_dead)

let enter_robust l kind =
  let self = Current.get () in
  charge_op ();
  Pool.thread_checkpoint ();
  match l with
  | Private s ->
      enter_priv s self kind;
      `Locked
  | Shared { state; at } -> enter_shared state at self kind

let set_consistent l =
  let self = Current.get () in
  match l with
  | Private _ -> ()
  | Shared { state; _ } ->
      if not (state.s_writer && state.s_writer_pid = self.pool.pid
              && state.s_writer_tid = self.tid)
      then failwith "Rwlock.set_consistent: calling thread is not the writer";
      state.s_ownerdead <- false

let exit l =
  let self = Current.get () in
  charge_op ();
  match l with
  | Private s -> exit_priv s self
  | Shared { state; at } -> exit_shared state at self

let try_enter l kind =
  let self = Current.get () in
  charge_op ();
  (* try-paths run signal checkpoints too: a thread spinning on
     try_enter must not starve its pending thread-directed signals *)
  Pool.thread_checkpoint ();
  match l with
  | Private s -> (
      match kind with
      | Reader ->
          if can_read s then begin
            if Thrsan.tracking () then begin
              Thrsan.acquiring self (rsan s);
              Thrsan.acquired self (rsan s)
            end;
            s.readers <- self :: s.readers;
            true
          end
          else false
      | Writer ->
          if can_write s then begin
            if Thrsan.tracking () then begin
              Thrsan.acquiring self (rsan s);
              Thrsan.acquired self (rsan s)
            end;
            s.writer <- Some self;
            true
          end
          else false)
  | Shared { state; at } -> (
      if state.s_robust && state.s_ownerdead then false
        (* un-repaired: only enter_robust hands the lock out *)
      else
        match kind with
        | Reader ->
            if (not state.s_writer) && state.s_wwaiters = 0 then begin
              if Thrsan.tracking () then begin
                Thrsan.acquiring self (rssan state at);
                Thrsan.acquired self (rssan state at)
              end;
              state.s_readers <- state.s_readers + 1;
              robust_reg_reader state at self;
              true
            end
            else false
        | Writer ->
            if (not state.s_writer) && state.s_readers = 0 then begin
              if Thrsan.tracking () then begin
                Thrsan.acquiring self (rssan state at);
                Thrsan.acquired self (rssan state at)
              end;
              state.s_writer <- true;
              state.s_writer_pid <- self.pool.pid;
              state.s_writer_tid <- self.tid;
              robust_reg_writer state at self;
              true
            end
            else false)

let downgrade l =
  let self = Current.get () in
  charge_op ();
  match l with
  | Private s -> downgrade_priv s self
  | Shared { state; at } ->
      if not (state.s_writer && state.s_writer_pid = self.pool.pid
              && state.s_writer_tid = self.tid)
      then failwith "Rwlock.downgrade: calling thread is not the writer";
      robust_unreg state at self;
      state.s_writer <- false;
      state.s_writer_pid <- 0;
      state.s_writer_tid <- 0;
      state.s_readers <- 1;
      robust_reg_reader state at self;
      if state.s_wwaiters = 0 then ignore (Syncvar.wake_all at)

let try_upgrade l =
  let self = Current.get () in
  charge_op ();
  Pool.thread_checkpoint ();
  match l with
  | Private s -> try_upgrade_priv s self
  | Shared { state; at } ->
      (* stricter than the private variant: succeeds only when we are
         the sole reader right now (no cross-process upgrade waiting) *)
      if state.s_readers = 1 && (not state.s_writer) && state.s_wwaiters = 0
         && not (state.s_robust && state.s_ownerdead)
      then begin
        robust_unreg state at self;
        state.s_readers <- 0;
        state.s_writer <- true;
        state.s_writer_pid <- self.pool.pid;
        state.s_writer_tid <- self.tid;
        robust_reg_writer state at self;
        true
      end
      else false

let readers = function
  | Private s -> List.length s.readers
  | Shared { state; _ } -> state.s_readers

let has_writer = function
  | Private s -> s.writer <> None
  | Shared { state; _ } -> state.s_writer

let owner_dead = function
  | Private _ -> false
  | Shared { state; _ } -> state.s_robust && state.s_ownerdead
