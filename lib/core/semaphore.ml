open Ttypes
module Uctx = Sunos_kernel.Uctx
module Univ = Sunos_sim.Univ
module Cost = Sunos_hw.Cost_model

type shared_state = { mutable s_count : int }

type t =
  | Private of { mutable count : int; waitq : Waitq.t;
                 mutable san : san_obj option }
  | Shared of { state : shared_state; at : Syncvar.place }

let shared_key : shared_state Univ.key = Univ.key ()

let create ?(count = 0) () =
  Private { count; waitq = Waitq.create (); san = None }

let create_shared ?(count = 0) at =
  let state =
    Syncvar.locate at ~key:shared_key ~make:(fun () -> { s_count = count })
  in
  Shared { state; at }

let p sem =
  let self = Current.get () in
  let c = self.pool.cost in
  Uctx.charge c.Cost.sync_fast;
  Pool.thread_checkpoint ();
  match sem with
  | Private s ->
      (* order edges only: a semaphore's unit is often produced by
         another thread, so treating p() as a held lock would flood the
         waits-for graph with false positives *)
      let san () =
        match s.san with
        | Some o -> o
        | None ->
            let o = Thrsan.new_obj ~kind:"semaphore" () in
            s.san <- Some o;
            o
      in
      if Thrsan.tracking () then Thrsan.acquiring self (san ());
      if s.count > 0 then s.count <- s.count - 1
      else begin
        Uctx.charge c.Cost.sync_slow_extra;
        let rec block () =
          if s.count > 0 then s.count <- s.count - 1
          else begin
            if Thrsan.tracking () then Thrsan.blocked_on self (san ());
            match
              Pool.suspend ~park:(fun tcb ->
                  tcb.tstate <- Tblocked;
                  tcb.cancel_wait <- Waitq.add s.waitq tcb)
            with
            | Wake_normal -> () (* v() handed its unit directly to us *)
            | Wake_signal _ ->
                Pool.run_pending_tsigs ();
                block ()
          end
        in
        block ()
      end
  | Shared { state; at } ->
      let rec loop () =
        if state.s_count > 0 then state.s_count <- state.s_count - 1
        else begin
          (match Syncvar.wait at ~expect:(fun () -> state.s_count = 0) () with
          | `Woken | `Timeout -> ());
          loop ()
        end
      in
      loop ()

let v sem =
  let c = (Current.pool ()).cost in
  Uctx.charge c.Cost.sync_fast;
  match sem with
  | Private s -> (
      match Waitq.pop s.waitq with
      | Some t ->
          (* direct handoff: the unit goes to the waiter, not the count *)
          Pool.make_ready t Wake_normal
      | None -> s.count <- s.count + 1)
  | Shared { state; at } ->
      state.s_count <- state.s_count + 1;
      ignore (Syncvar.wake at ~count:1)

let try_p sem =
  let c = (Current.pool ()).cost in
  Uctx.charge c.Cost.sync_fast;
  Pool.thread_checkpoint ();
  match sem with
  | Private s ->
      if s.count > 0 then begin
        s.count <- s.count - 1;
        true
      end
      else false
  | Shared { state; _ } ->
      if state.s_count > 0 then begin
        state.s_count <- state.s_count - 1;
        true
      end
      else false

let count = function
  | Private s -> s.count
  | Shared { state; _ } -> state.s_count
