(* The M:N scheduler: threads multiplexed on a pool of LWPs.

   Each pool LWP runs [lwp_main]: pick a thread from the user-level run
   queue, load its state, run it until it suspends (Figure 2 of the
   paper), save its state, pick another.  No kernel call is involved in
   any of that; the kernel is entered only when a thread blocks *in* the
   kernel (syscalls pass through transparently thanks to nested effect
   handlers), when an idle LWP parks, or when a waker unparks one.

   THE COMMIT RULE (lost-wakeup freedom): a blocking primitive must
   perform no effect (no charge, no syscall) between reading the state
   that makes it decide to block and performing [Suspend]; and the
   scheduler saves the continuation and runs the park function with no
   intervening effect.  Simulated interleaving happens only at effect
   boundaries, so decision + suspension + waitq insertion are atomic —
   the simulation analogue of holding the queue's dispatcher lock. *)

open Ttypes
module Uctx = Sunos_kernel.Uctx
module Errno = Sunos_kernel.Errno
module Cost = Sunos_hw.Cost_model

(* the "registered on no wait queue" sentinel for [cancel_wait]: a
   single shared closure, so the bare-park audit can test it with
   physical equality ([ignore] itself is a primitive and makes a fresh
   closure at every value use) *)
let no_cancel : unit -> unit = fun () -> ()
module Time = Sunos_sim.Time

let charge = Uctx.charge

(* ------------------------------------------------------------------ *)
(* Pool construction                                                   *)
(* ------------------------------------------------------------------ *)

let make_pool ~pid ~cost ~auto_grow =
  {
    pid;
    cost;
    runq = Array.init (max_prio + 1) (fun _ -> Queue.create ());
    runq_count = 0;
    threads = Hashtbl.create 64;
    next_tid = 1;
    live_threads = 0;
    n_pool_lwps = 1;
    idle_lwps = [];
    concurrency_target = 0;
    shrink_lwps = 0;
    stack_cached = 0;
    stack_hits = 0;
    stack_misses = 0;
    handlers = Array.make (Sunos_kernel.Signo.max_sig + 1) Sysdefs.Sig_default;
    proc_pending_tsigs = [];
    any_waiters = [];
    auto_grow;
    timer_slot = None;
    ctr_creates_unbound = 0;
    ctr_creates_bound = 0;
    ctr_switches = 0;
    ctr_lwp_grown = 0;
  }

(* ------------------------------------------------------------------ *)
(* Run queue (user level)                                              *)
(* ------------------------------------------------------------------ *)

let runq_push pool tcb =
  Queue.add tcb pool.runq.(max 0 (min max_prio tcb.prio));
  pool.runq_count <- pool.runq_count + 1

(* Driven (exploration) variant: enumerate the live entries of the
   highest non-empty priority and let the schedule driver choose;
   candidate 0 is the passive FIFO pick.  Candidate footprints are the
   locks each thread currently holds (thrsan's held-set bookkeeping),
   which is what the explorer's partial-order reduction keys on:
   reordering two ready threads whose lock footprints are disjoint
   commutes at the sync-object level. *)
let runq_pop_driven pool =
  let rec top prio =
    if prio < 0 then None
    else
      let q = pool.runq.(prio) in
      match Queue.peek_opt q with
      | None -> top (prio - 1)
      | Some tcb when tcb.tstate <> Trunnable ->
          ignore (Queue.pop q);
          pool.runq_count <- pool.runq_count - 1;
          top prio (* stale front, dropped like the passive pop *)
      | Some _ -> Some prio
  in
  match top max_prio with
  | None -> None
  | Some prio ->
      let q = pool.runq.(prio) in
      let cands =
        List.rev
          (Queue.fold
             (fun acc t -> if t.tstate = Trunnable then t :: acc else acc)
             [] q)
      in
      let foot i =
        List.map (fun o -> o.so_id) (List.nth cands i).san_held
      in
      let i =
        Sunos_sim.Schedctl.choose ~site:"runq" ~obj:pool.pid ~foot
          (List.length cands)
      in
      let chosen = List.nth cands i in
      let removed = ref false in
      let rest =
        Queue.fold
          (fun acc t ->
            if (not !removed) && t == chosen then begin
              removed := true;
              acc
            end
            else t :: acc)
          [] q
      in
      Queue.clear q;
      List.iter (fun t -> Queue.add t q) (List.rev rest);
      pool.runq_count <- pool.runq_count - 1;
      Some chosen

let runq_pop pool =
  if Sunos_sim.Schedctl.active () then runq_pop_driven pool
  else
    let rec at prio =
      if prio < 0 then None
      else
        match Queue.take_opt pool.runq.(prio) with
        | Some tcb ->
            pool.runq_count <- pool.runq_count - 1;
            if tcb.tstate = Trunnable then Some tcb else at prio (* stale *)
        | None -> at (prio - 1)
    in
    at max_prio

(* ------------------------------------------------------------------ *)
(* Suspension and wakeup                                               *)
(* ------------------------------------------------------------------ *)

let suspend ~park = Effect.perform (Suspend park)

(* Pop an idle pool LWP and unpark it so it notices new work.  Returns
   whether a live LWP was actually kicked: under fault injection an LWP
   can be reaped by the kernel while it sits on the idle list, in which
   case its unpark raises ESRCH — repair the pool accounting and try the
   next candidate.  Callers that must guarantee capacity (the SIGWAITING
   handler) grow the pool when this returns [false]. *)
let rec kick_idle_lwp pool =
  match pool.idle_lwps with
  | [] -> false
  | lid :: rest -> (
      pool.idle_lwps <- rest;
      try
        Uctx.lwp_unpark lid;
        true
      with Errno.Unix_error (Errno.ESRCH, _) ->
        pool.n_pool_lwps <- pool.n_pool_lwps - 1;
        kick_idle_lwp pool)

(* Forward declaration: respawning the dedicated LWP of a bound thread
   whose LWP was reaped while parked.  Set to the real implementation
   once [bound_main] exists (the let-rec chain cannot reach it here). *)
let bound_rescue : (pool -> tcb -> unit) ref =
  ref (fun _ _ -> failwith "bound_rescue: not initialised")

let unpark_bound pool tcb =
  try Uctx.lwp_unpark tcb.bound_lwp
  with Errno.Unix_error (Errno.ESRCH, _) -> !bound_rescue pool tcb

let make_ready tcb reason =
  let pool = tcb.pool in
  tcb.cancel_wait ();
  tcb.cancel_wait <- no_cancel;
  (* a woken thread is no longer waiting: clear its waits-for edge so
     the sanitizer never walks a stale one (single store; kept
     unconditional so toggling thrsan mid-run stays sound) *)
  tcb.san_waiting <- None;
  tcb.wake_reason <- reason;
  if tcb.stop_requested then begin
    tcb.stop_requested <- false;
    tcb.tstate <- Tstopped
  end
  else begin
    tcb.tstate <- Trunnable;
    if tcb.bound then begin
      (* the dedicated LWP sleeps in the kernel: waking a bound thread
         means library bookkeeping plus a kernel round trip (the paper's
         bound-thread synchronization premium) *)
      charge pool.cost.Cost.sync_slow_extra;
      unpark_bound pool tcb
    end
    else begin
      runq_push pool tcb;
      charge pool.cost.Cost.runq_op;
      ignore (kick_idle_lwp pool)
    end
  end

(* ------------------------------------------------------------------ *)
(* Thread-level signal pickup                                          *)
(* ------------------------------------------------------------------ *)

(* Run the handlers for any thread-directed signals pending on the
   current thread.  Runs inside the thread's own fiber, so handlers may
   block, make system calls, etc. *)
let rec run_pending_tsigs () =
  let tcb = Current.get () in
  let pool = tcb.pool in
  match Queue.take_opt tcb.pending_tsigs with
  | None -> ()
  | Some signo ->
      (match pool.handlers.(signo) with
      | Sysdefs.Sig_handler h ->
          charge pool.cost.Cost.signal_deliver;
          h signo
      | Sysdefs.Sig_default | Sysdefs.Sig_ignore -> ());
      run_pending_tsigs ()

(* A cooperative delivery point: primitives call this so running threads
   notice thread_kill()s and routed interrupts promptly. *)
let thread_checkpoint () =
  match Current.get_opt () with
  | Some tcb when not (Queue.is_empty tcb.pending_tsigs) ->
      run_pending_tsigs ()
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Running one thread on the current LWP                               *)
(* ------------------------------------------------------------------ *)

let run_thread_fiber entry =
  let open Effect.Deep in
  match_with entry ()
    {
      retc = (fun () -> T_done);
      exnc =
        (fun e ->
          match e with Thread_exit_exn -> T_done | e -> T_raised e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend park ->
              Some (fun (k : (a, tstep) continuation) -> T_suspended (park, k))
          | _ -> None);
    }

(* Reclaim what thread_exit leaves behind.  Default stacks go back to
   the library cache; joinable (THREAD_WAIT) threads linger as zombies
   until waited for. *)
let thread_finish pool tcb =
  tcb.exited <- true;
  tcb.tstate <- Tzombie;
  pool.live_threads <- pool.live_threads - 1;
  (match tcb.stack_kind with
  | Stack_default -> pool.stack_cached <- pool.stack_cached + 1
  | Stack_caller _ -> ());
  if tcb.wait_flag then begin
    match tcb.waiter with
    | Some w ->
        tcb.waiter <- None;
        make_ready w Wake_normal
    | None -> (
        match pool.any_waiters with
        | w :: rest ->
            pool.any_waiters <- rest;
            make_ready w Wake_normal
        | [] -> ())
  end
  else Hashtbl.remove pool.threads tcb.tid;
  if pool.live_threads = 0 then
    (* the last thread is gone: the process's work is done *)
    Uctx.exit 0

(* Run [tcb] until it gives the LWP back.  [my_cur] is this LWP's slot
   behind the kernel resume hook. *)
let run_thread pool my_cur tcb =
  charge pool.cost.Cost.user_ctx_restore;
  my_cur := Some tcb;
  Current.set (Some tcb);
  tcb.tstate <- Trunning;
  pool.ctr_switches <- pool.ctr_switches + 1;
  let step =
    match tcb.entry with
    | Some f ->
        tcb.entry <- None;
        run_thread_fiber (fun () ->
            if not (Queue.is_empty tcb.pending_tsigs) then
              run_pending_tsigs ();
            f ())
    | None -> (
        match tcb.kont with
        | Some kont ->
            tcb.kont <- None;
            Effect.Deep.continue kont tcb.wake_reason
        | None -> assert false)
  in
  my_cur := None;
  Current.set None;
  match step with
  | T_done -> thread_finish pool tcb
  | T_raised e ->
      (* an uncaught exception in a thread takes the process down, like
         an unhandled trap *)
      raise e
  | T_suspended (park, kont) ->
      (* no effect between saving the continuation and parking: commit
         rule (see the header comment) *)
      tcb.kont <- Some kont;
      park tcb;
      (* bare-park audit: blocked, yet registered on no wait queue and
         known to no waits-for edge — no waker can find this thread *)
      if
        Thrsan.tracking ()
        && tcb.tstate = Tblocked
        && tcb.san_waiting = None
        && tcb.cancel_wait == no_cancel
      then Thrsan.note_bare_park tcb;
      charge pool.cost.Cost.user_ctx_save

(* ------------------------------------------------------------------ *)
(* LWP bodies                                                          *)
(* ------------------------------------------------------------------ *)

(* Body of a pool LWP serving unbound threads. *)
let lwp_main pool () =
  let my_cur = ref None in
  Uctx.set_resume_hook (fun () -> Current.set !my_cur);
  let my_lid = Uctx.getlwpid () in
  let rec loop () =
    if pool.shrink_lwps > 0 && pool.n_pool_lwps > 1 then begin
      pool.shrink_lwps <- pool.shrink_lwps - 1;
      pool.n_pool_lwps <- pool.n_pool_lwps - 1;
      Uctx.lwp_exit ()
    end
    else
      match runq_pop pool with
      | Some tcb ->
          run_thread pool my_cur tcb;
          loop ()
      | None ->
          (* idle: advertise, then re-check before parking (the waker
             pops us from idle_lwps before unparking, so a wakeup that
             races with this window leaves us an unpark token) *)
          pool.idle_lwps <- my_lid :: pool.idle_lwps;
          if live_runnable pool then begin
            pool.idle_lwps <-
              List.filter (fun l -> l <> my_lid) pool.idle_lwps;
            loop ()
          end
          else begin
            (match Uctx.lwp_park () with `Parked | `Timeout -> ());
            pool.idle_lwps <- List.filter (fun l -> l <> my_lid) pool.idle_lwps;
            loop ()
          end
  in
  loop ()

(* Body of an LWP permanently bound to one thread (THREAD_BIND_LWP).
   When its thread blocks at user level, the LWP parks in the kernel —
   which is precisely why bound-thread synchronization costs kernel
   round trips (Figure 6, row 3). *)
let bound_main pool tcb () =
  let my_cur = ref None in
  Uctx.set_resume_hook (fun () -> Current.set !my_cur);
  tcb.bound_lwp <- Uctx.getlwpid ();
  let rec loop () =
    match tcb.tstate with
    | Trunnable ->
        run_thread pool my_cur tcb;
        if tcb.tstate = Tzombie then Uctx.lwp_exit () else loop ()
    | Tblocked | Tstopped ->
        (match Uctx.lwp_park () with `Parked | `Timeout -> ());
        loop ()
    | Trunning | Tzombie -> Uctx.lwp_exit ()
  in
  loop ()

(* Add an LWP to the pool (thread_setconcurrency, THREAD_NEW_LWP, or
   SIGWAITING growth).

   LWP creation can fail with a transient ENOMEM under fault injection.
   Growth must eventually happen: by the time the SIGWAITING handler
   calls us the edge trigger has been consumed, so giving up would
   leave the process one all-blocked transition away from a silent
   deadlock.  Retry with capped exponential backoff — the backoff
   sleeps complete with ordinary wakeups, which re-arm the SIGWAITING
   edge, so the process stays recoverable while we wait out the
   pressure. *)
let lwp_create_retry entry =
  let rec attempt backoff =
    match Uctx.lwp_create ~entry () with
    | _lid -> ()
    | exception Errno.Unix_error (Errno.ENOMEM, _) ->
        Uctx.sleep backoff;
        attempt (Time.min (Time.ms 10) (Int64.mul backoff 2L))
  in
  attempt (Time.us 100)

let grow_pool pool =
  lwp_create_retry (lwp_main pool);
  pool.n_pool_lwps <- pool.n_pool_lwps + 1

let spawn_bound pool tcb = lwp_create_retry (bound_main pool tcb)

(* The forward declaration above can now point at the real thing: a
   bound thread whose LWP was reaped gets a fresh dedicated LWP, which
   re-reads [tcb.tstate] and runs it. *)
let () = bound_rescue := spawn_bound

(* ------------------------------------------------------------------ *)
(* Thread construction                                                 *)
(* ------------------------------------------------------------------ *)

let alloc_tid pool =
  let tid = pool.next_tid in
  pool.next_tid <- pool.next_tid + 1;
  tid

(* Charge the paper's unbound-creation path: TCB from the free list,
   stack from the cache (or a cold allocation + TLS zeroing). *)
let charge_create_costs pool stack_kind =
  let c = pool.cost in
  charge c.Cost.call;
  charge c.Cost.tcb_alloc;
  charge c.Cost.tcb_init;
  match stack_kind with
  | Stack_caller _ -> () (* programmer-supplied storage: nothing to do *)
  | Stack_default ->
      if pool.stack_cached > 0 then begin
        pool.stack_cached <- pool.stack_cached - 1;
        pool.stack_hits <- pool.stack_hits + 1;
        charge c.Cost.stack_cache_hit
      end
      else begin
        pool.stack_misses <- pool.stack_misses + 1;
        charge c.Cost.stack_alloc_cold;
        charge c.Cost.tls_zero
      end

let new_tcb pool ~entry ~prio ~sigmask ~bound ~wait_flag ~stack_kind ~stopped =
  let tcb =
    {
      tid = alloc_tid pool;
      pool;
      tstate = (if stopped then Tstopped else Trunnable);
      prio;
      tsigmask = sigmask;
      kont = None;
      wake_reason = Wake_normal;
      entry = Some entry;
      bound;
      bound_lwp = 0;
      wait_flag;
      stack_kind;
      tls = Array.make 8 None;
      waiter = None;
      cancel_wait = no_cancel;
      pending_tsigs = Queue.create ();
      stop_requested = false;
      exited = false;
      san_waiting = None;
      san_held = [];
    }
  in
  Hashtbl.replace pool.threads tcb.tid tcb;
  pool.live_threads <- pool.live_threads + 1;
  tcb
