module Shm = Sunos_hw.Shared_memory
module Univ = Sunos_sim.Univ
module Uctx = Sunos_kernel.Uctx

type place = { seg : Shm.t; offset : int }

let place seg ~offset = { seg; offset }
let place_auto seg = { seg; offset = Shm.alloc_offset seg }

let locate p ~key ~make =
  match Shm.get p.seg ~offset:p.offset with
  | Some u -> (
      match Univ.unpack key u with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf
               "Syncvar.locate: offset %d of %s holds a different variable"
               p.offset (Shm.name p.seg)))
  | None ->
      let v = make () in
      Shm.put p.seg ~offset:p.offset (Univ.pack key v);
      v

let wait p ?timeout ~expect () =
  (* delivery point: the shared primitives (mutex, rwlock, semaphore)
     re-enter here from their retry loops on every wakeup, and a thread
     blocked in kwait keeps tstate Trunning — thread_kill cannot wake
     it, only queue the signal.  Running pending thread-directed
     signals here keeps a kwait-looping thread from starving them (the
     missing-checkpoint class of BUG 13/14). *)
  Pool.thread_checkpoint ();
  (* auto-instrument bare syncvar waits for the sanitizer; primitives
     built on syncvars (shared mutex/rwlock) record their own richer
     edge first, which we must not overwrite — hence the [san_waiting]
     emptiness check.  No edge survives the wait: kernel wakeups bypass
     [Pool.make_ready], so clear it ourselves. *)
  if Thrsan.tracking () then begin
    match Current.get_opt () with
    | Some self when self.Ttypes.san_waiting = None ->
        Thrsan.blocked_on self
          (Thrsan.syncvar_obj ~seg:(Shm.name p.seg) ~offset:p.offset);
        let r = Uctx.kwait ~seg:p.seg ~offset:p.offset ?timeout ~expect () in
        Thrsan.clear_wait self;
        r
    | _ -> Uctx.kwait ~seg:p.seg ~offset:p.offset ?timeout ~expect ()
  end
  else Uctx.kwait ~seg:p.seg ~offset:p.offset ?timeout ~expect ()

let wake p ~count = Uctx.kwake ~seg:p.seg ~offset:p.offset ~count
let wake_all p = wake p ~count:max_int
