module Time = Sunos_sim.Time
module Uctx = Sunos_kernel.Uctx
module Cost = Sunos_hw.Cost_model

type t = {
  name : string;
  san : Ttypes.san_obj;  (* identity in the pool-wide thrsan graphs *)
  mu : Mutex.t;
  mutable acquisitions : int;
  mutable contentions : int;
  mutable acquired_at : Time.t;
  mutable max_hold : Time.span;
}

exception Self_deadlock of string

(* The order check itself lives in Thrsan, so lock-order edges recorded
   through Lockdebug locks and through sanitizer-tracked plain mutexes
   land in the one pool-wide graph, checked transitively. *)
exception Lock_order_violation = Thrsan.Lock_order_violation

let () =
  Printexc.register_printer (function
    | Self_deadlock n -> Some (Printf.sprintf "Lockdebug: relock of %S" n)
    | _ -> None)

let reset_order_graph = Thrsan.reset_order_graph

let create ~name =
  {
    name;
    san = Thrsan.new_obj ~kind:"lockdebug" ~name ();
    mu = Mutex.create ();
    acquisitions = 0;
    contentions = 0;
    acquired_at = Time.zero;
    max_hold = 0L;
  }

(* One sanitizer identity per shared lock word, not per handle: every
   process that wraps the same (segment, offset) must land its order
   edges on the same graph node, or a cross-process ABBA would never
   close a cycle. *)
let shared_sans : (string * int, Ttypes.san_obj) Hashtbl.t = Hashtbl.create 16

let create_shared ?robust ~name (at : Syncvar.place) =
  let key =
    (Sunos_hw.Shared_memory.name at.Syncvar.seg, at.Syncvar.offset)
  in
  let san =
    match Hashtbl.find_opt shared_sans key with
    | Some o -> o
    | None ->
        let o = Thrsan.new_obj ~kind:"lockdebug(shared)" ~name () in
        Hashtbl.add shared_sans key o;
        o
  in
  {
    name;
    san;
    mu = Mutex.create_shared ?robust at;
    acquisitions = 0;
    contentions = 0;
    acquired_at = Time.zero;
    max_hold = 0L;
  }

let name t = t.name
let held_by_self t = Mutex.holding t.mu

let charge_check () =
  (* the debugging variant pays for its bookkeeping *)
  Uctx.charge (Current.pool ()).Ttypes.cost.Cost.sync_slow_extra

let check_order t = Thrsan.check_order (Current.get ()) t.san

let note_acquired t =
  t.acquisitions <- t.acquisitions + 1;
  t.acquired_at <- Uctx.gettime ();
  Thrsan.held_push (Current.get ()) t.san

let enter t =
  charge_check ();
  if Mutex.holding t.mu then raise (Self_deadlock t.name);
  check_order t;
  if not (Mutex.try_enter t.mu) then begin
    t.contentions <- t.contentions + 1;
    Mutex.enter t.mu
  end;
  note_acquired t

let try_enter t =
  charge_check ();
  if Mutex.holding t.mu then raise (Self_deadlock t.name);
  if Mutex.try_enter t.mu then begin
    check_order t;
    note_acquired t;
    true
  end
  else false

let exit t =
  charge_check ();
  let hold = Time.diff (Uctx.gettime ()) t.acquired_at in
  if Time.(hold > t.max_hold) then t.max_hold <- hold;
  Thrsan.held_pop (Current.get ()) t.san;
  Mutex.exit t.mu

let acquisitions t = t.acquisitions
let contentions t = t.contentions
let max_hold t = t.max_hold
