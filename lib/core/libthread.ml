open Ttypes
module Uctx = Sunos_kernel.Uctx
module Sigset = Sunos_kernel.Sigset
module Signo = Sunos_kernel.Signo
module Sysdefs = Sunos_kernel.Sysdefs

let boot ?(cost = Sunos_hw.Cost_model.default) ?(concurrency = 0)
    ?(auto_grow = true) ?(activations = false) main () =
  let pool = Pool.make_pool ~pid:(Uctx.getpid ()) ~cost ~auto_grow in
  pool.concurrency_target <- concurrency;
  (* publish the thread table for debuggers (the paper's /proc + library
     cooperation) *)
  Debugger.publish pool;
  (* same replace-on-boot registry for the sanitizer's hang diagnosis *)
  Thrsan.register_pool pool;
  if activations then
    (* scheduler-activations mode: on every application block the kernel
       hands us a context; fresh activations enter our LWP main loop *)
    Uctx.upcall_on_block true
      ~activation_entry:(fun () ->
        pool.n_pool_lwps <- pool.n_pool_lwps + 1;
        pool.ctr_lwp_grown <- pool.ctr_lwp_grown + 1;
        Pool.lwp_main pool ());
  if auto_grow then
    (* SIGWAITING: all LWPs are blocked in indefinite waits; if threads
       are runnable, add an LWP so they can run (deadlock avoidance) *)
    ignore
      (Uctx.sigaction Signo.sigwaiting
         (Sysdefs.Sig_handler
            (fun _ ->
              (* grow only when runnable threads exist AND no already-
                 idle LWP could take them (idle ones just need a kick);
                 without the idle check, activations-style per-block
                 upcalls would grow the pool without bound *)
              if live_runnable pool then
                if pool.idle_lwps = [] || not (Pool.kick_idle_lwp pool)
                then begin
                  (* no idle LWP — or every "idle" entry was an LWP the
                     kernel reaped (chaos): kick repaired the accounting
                     and found nobody to wake, so real growth is due *)
                  pool.ctr_lwp_grown <- pool.ctr_lwp_grown + 1;
                  Pool.grow_pool pool
                end)));
  let main_tcb =
    Pool.new_tcb pool
      ~entry:(fun () ->
        main ();
        (* returning from main is exit(): all threads are destroyed *)
        Uctx.exit 0)
      ~prio:default_prio ~sigmask:Sigset.empty ~bound:false ~wait_flag:false
      ~stack_kind:Stack_default ~stopped:false
  in
  Pool.runq_push pool main_tcb;
  for _ = 2 to concurrency do
    Pool.grow_pool pool
  done;
  (* this initial LWP becomes pool LWP #1 and dispatches the main thread *)
  Pool.lwp_main pool ()

type stats = {
  creates_unbound : int;
  creates_bound : int;
  switches : int;
  lwps_grown : int;
  pool_lwps : int;
  live_threads : int;
  runnable : int;
  stack_cache_hits : int;
  stack_cache_misses : int;
}

let stats () =
  let pool = Current.pool () in
  {
    creates_unbound = pool.ctr_creates_unbound;
    creates_bound = pool.ctr_creates_bound;
    switches = pool.ctr_switches;
    lwps_grown = pool.ctr_lwp_grown;
    pool_lwps = pool.n_pool_lwps;
    live_threads = pool.live_threads;
    runnable = pool.runq_count;
    stack_cache_hits = pool.stack_hits;
    stack_cache_misses = pool.stack_misses;
  }

let threads_snapshot () =
  let pool = Current.pool () in
  Hashtbl.fold
    (fun tid t acc ->
      let s =
        match t.tstate with
        | Trunnable -> "runnable"
        | Trunning -> "running"
        | Tblocked -> "blocked"
        | Tstopped -> "stopped"
        | Tzombie -> "zombie"
      in
      (tid, s) :: acc)
    pool.threads []
  |> List.sort compare
