(** thrsan: a deterministic runtime sanitizer for the sync stack.

    Three capabilities, all pure OCaml mutation (never a charge or a
    syscall), so enabling the sanitizer cannot perturb the simulated
    schedule — same-seed runs stay bit-identical:

    - a {b waits-for graph} over every user-level sync object (mutex,
      condvar, semaphore, rwlock, syncvar), with an incremental cycle
      check at each block that raises a structured {!Deadlock} report
      (blocked thread → object → holder chain, with object names and
      acquisition stamps);
    - pool-wide {b lock-order checking} (transitive DFS, not just direct
      ABBA) shared with {!Lockdebug};
    - {b hang diagnosis}: {!watch} hooks the machine's event-queue drain
      and reports who is still blocked on what, and who last held it.

    Enable with the [THRSAN] environment variable (the [@sanitize] dune
    alias does this) or programmatically with {!enable}.  When disabled,
    every hook site costs one [bool] load and branch — no allocation, no
    formatting. *)

(** {1 Switches} *)

val tracking : unit -> bool
(** Whether the sanitizer is on ([THRSAN] env var, {!enable}). *)

val enable : unit -> unit
val disable : unit -> unit

val set_lock_order_mode : bool -> unit
(** Pool-wide lock-order checking over plain mutexes, rwlocks and
    semaphores.  Separate switch from {!enable}: ordering heuristics can
    reject legitimate programs, so [THRSAN=1] alone enables only the
    false-positive-free checks. *)

val lock_order_mode : unit -> bool

(** {1 Sanitizer objects} *)

val new_obj : kind:string -> ?name:string -> unit -> Ttypes.san_obj
(** Allocate a sanitizer identity for one sync object.  Primitives do
    this lazily, on the first tracked operation. *)

val set_name : Ttypes.san_obj -> string -> unit

val syncvar_obj : seg:string -> offset:int -> Ttypes.san_obj
(** The shared identity of a kernel sync variable, keyed by (segment
    name, offset) so every process resolves the same location to the
    same object. *)

(** {1 Waits-for graph} *)

type wait_link = {
  wl_pid : int;
  wl_tid : int;
  wl_obj_id : int;
  wl_obj_kind : string;
  wl_obj_name : string;
  wl_acq_seq : int;  (** acquisition stamp of the object's current hold *)
  wl_holders : (int * int) list;  (** (pid, tid) of each holder *)
}

type deadlock_report = { dl_links : wait_link list; dl_text : string }

exception Deadlock of deadlock_report

val last_deadlock : unit -> deadlock_report option
(** The most recent deadlock report (also carried by the exception; the
    process dies of it like any uncaught error, so tests read it here). *)

val acquiring : Ttypes.tcb -> Ttypes.san_obj -> unit
(** About to acquire: runs the lock-order check when order mode is on.
    @raise Lock_order_violation on a recorded-order inversion. *)

val acquired : Ttypes.tcb -> Ttypes.san_obj -> unit
(** Acquisition succeeded: records the holder and the acquisition
    stamp. *)

val released : Ttypes.tcb -> Ttypes.san_obj -> unit

val blocked_on : ?skip_self_hold:bool -> Ttypes.tcb -> Ttypes.san_obj -> unit
(** About to block on the object: records the waits-for edge and runs
    the cycle check.  [skip_self_hold] exempts the caller's own hold of
    this object only (a pending rwlock upgrader waits on a lock it still
    holds as a reader).
    @raise Deadlock when the edge closes a cycle. *)

val clear_wait : Ttypes.tcb -> unit
(** Clear the waits-for edge (kernel-wait paths, where no
    [Pool.make_ready] runs on wakeup). *)

(** {1 Lock-order graph (shared with Lockdebug)} *)

exception Lock_order_violation of string * string
(** [(held, wanted)]: acquiring [wanted] while holding [held]
    contradicts the recorded order, transitively. *)

val check_order : Ttypes.tcb -> Ttypes.san_obj -> unit
(** Unconditional order check + edge recording (Lockdebug's always-on
    path; {!acquiring} is the order-mode-gated variant). *)

val held_push : Ttypes.tcb -> Ttypes.san_obj -> unit
val held_pop : Ttypes.tcb -> Ttypes.san_obj -> unit
val reset_order_graph : unit -> unit

(** {1 Bare-park audit} *)

val note_bare_park : Ttypes.tcb -> unit
(** Called by the scheduler when a thread parks [Tblocked] without
    registering [cancel_wait] anywhere and without a waits-for edge —
    invisible to wakers, uncancellable on signal routing. *)

val bare_parks : unit -> (int * int) list
(** (pid, tid) of every thread caught bare-parking, oldest first. *)

(** {1 Hang diagnosis} *)

type hung_thread = {
  ht_pid : int;
  ht_tid : int;
  ht_state : string;  (** ["blocked"] or ["runnable"] (starved) *)
  ht_on : string;  (** object description, [""] when unknown *)
  ht_holders : (int * int) list;
  ht_last_holder : string;
}

type sleeping_lwp = {
  hl_pid : int;
  hl_lid : int;
  hl_wchan : string;
  hl_indefinite : bool;
}

type hang_report = {
  hr_threads : hung_thread list;
  hr_lwps : sleeping_lwp list;
  hr_text : string;
}

val register_pool : Ttypes.pool -> unit
(** Publish a pool for hang diagnosis (called by [Libthread.boot];
    replace-on-boot semantics like [Debugger.publish]). *)

val watch : Sunos_kernel.Ktypes.kernel -> unit
(** Install a drain hook on the kernel's event queue: when the queue
    empties while threads remain blocked (or runnable with every LWP
    asleep), build a {!hang_report}, store it for {!last_hang} and emit
    it on the trace under tag ["thrsan"]. *)

val hang_check : Sunos_kernel.Ktypes.kernel -> hang_report option
val last_hang : unit -> hang_report option

(** {1 Housekeeping} *)

val reset : unit -> unit
(** Clear reports, the bare-park list and the order graph (tests). *)
