(** Debugging variant of mutual-exclusion locks.

    The paper lets the programmer pick "extra debugging" implementations
    when a synchronization variable is initialized; this module is that
    variant: a mutex that additionally

    - detects self-deadlock (relocking a lock the thread already holds)
      and raises instead of hanging;
    - tracks the process-wide lock-order graph (shared with {!Thrsan},
      so edges from sanitizer-tracked plain mutexes and rwlocks land in
      the same graph) and raises on an acquisition that closes an
      ordering cycle — checked transitively, so A→B→C→A is caught, not
      just direct ABBA — naming the two locks involved;
    - keeps statistics: acquisitions, contended acquisitions, and the
      longest hold time.

    The checks cost extra user-level work (charged to the simulated
    clock), which is exactly why they are an opt-in variant. *)

type t

exception Self_deadlock of string
exception Lock_order_violation of string * string
    (** [(held, wanted)]: acquiring [wanted] while holding [held]
        contradicts a previously recorded order, transitively.  The
        same exception as {!Thrsan.Lock_order_violation}. *)

val create : name:string -> t

val create_shared : ?robust:bool -> name:string -> Syncvar.place -> t
(** A debugging wrapper over [Mutex.create_shared] at this placement.
    All processes wrapping the same (segment, offset) share one node in
    the lock-order graph, so cross-process ordering cycles are caught;
    statistics stay per-handle (each process sees its own counts). *)

val name : t -> string

val enter : t -> unit
val exit : t -> unit
val try_enter : t -> bool

val held_by_self : t -> bool

val acquisitions : t -> int
val contentions : t -> int
val max_hold : t -> Sunos_sim.Time.span

val reset_order_graph : unit -> unit
(** Forget recorded lock orderings (for tests; process-global). *)
