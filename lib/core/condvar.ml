open Ttypes
module Uctx = Sunos_kernel.Uctx
module Univ = Sunos_sim.Univ
module Cost = Sunos_hw.Cost_model

type shared_state = { mutable s_seq : int }

type t =
  | Private of { waitq : Waitq.t; mutable san : san_obj option }
  | Shared of { state : shared_state; at : Syncvar.place }

let shared_key : shared_state Univ.key = Univ.key ()

let create () = Private { waitq = Waitq.create (); san = None }

let create_shared at =
  let state =
    Syncvar.locate at ~key:shared_key ~make:(fun () -> { s_seq = 0 })
  in
  Shared { state; at }

let wait cv m =
  let self = Current.get () in
  let c = self.pool.cost in
  Uctx.charge c.Cost.sync_fast;
  Pool.thread_checkpoint ();
  (match cv with
  | Private p -> (
      if Thrsan.tracking () then begin
        let o =
          match p.san with
          | Some o -> o
          | None ->
              let o = Thrsan.new_obj ~kind:"condvar" () in
              p.san <- Some o;
              o
        in
        Thrsan.blocked_on self o
      end;
      let waitq = p.waitq in
      (* the park function enqueues us on the condvar and only THEN
         releases the mutex — a signaller that sneaks in after the
         release necessarily finds us queued (no lost signal) *)
      match
        Pool.suspend ~park:(fun tcb ->
            tcb.tstate <- Tblocked;
            tcb.cancel_wait <- Waitq.add waitq tcb;
            Mutex.release_from m tcb)
      with
      | Wake_normal -> ()
      | Wake_signal _ -> Pool.run_pending_tsigs ()
      (* spurious from the caller's viewpoint: it re-tests the condition *))
  | Shared { state; at } ->
      let seq0 = state.s_seq in
      Mutex.exit m;
      (* the sequence check plays the role of the queue: if a signal
         arrived between the release and the sleep, we don't sleep *)
      (match Syncvar.wait at ~expect:(fun () -> state.s_seq = seq0) () with
      | `Woken | `Timeout -> ()));
  Mutex.enter m

let signal cv =
  let c = (Current.pool ()).cost in
  Uctx.charge c.Cost.sync_fast;
  match cv with
  | Private { waitq; _ } -> (
      match Waitq.pop waitq with
      | Some t -> Pool.make_ready t Wake_normal
      | None -> ())
  | Shared { state; at } ->
      state.s_seq <- state.s_seq + 1;
      ignore (Syncvar.wake at ~count:1)

let broadcast cv =
  let c = (Current.pool ()).cost in
  Uctx.charge c.Cost.sync_fast;
  match cv with
  | Private { waitq; _ } ->
      List.iter (fun t -> Pool.make_ready t Wake_normal) (Waitq.pop_all waitq)
  | Shared { state; at } ->
      state.s_seq <- state.s_seq + 1;
      ignore (Syncvar.wake_all at)
