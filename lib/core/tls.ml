module Univ = Sunos_sim.Univ
module Cost = Sunos_hw.Cost_model

type 'a key = { index : int; default : 'a; ukey : 'a Univ.key }

(* keys may be created from any domain under the bench runner's [-j N] *)
let next_index = Atomic.make 0

let key ~default =
  let index = Atomic.fetch_and_add next_index 1 in
  { index; default; ukey = Univ.key () }

let slot tcb index =
  let open Ttypes in
  if index >= Array.length tcb.tls then begin
    let bigger = Array.make (max (index + 1) (2 * Array.length tcb.tls)) None in
    Array.blit tcb.tls 0 bigger 0 (Array.length tcb.tls);
    tcb.tls <- bigger
  end;
  tcb.tls

let get k =
  let tcb = Current.get () in
  Sunos_kernel.Uctx.charge tcb.Ttypes.pool.Ttypes.cost.Cost.tls_access;
  let tls = slot tcb k.index in
  match tls.(k.index) with
  | None -> k.default
  | Some u -> (
      match Univ.unpack k.ukey u with Some v -> v | None -> k.default)

let set k v =
  let tcb = Current.get () in
  Sunos_kernel.Uctx.charge tcb.Ttypes.pool.Ttypes.cost.Cost.tls_access;
  let tls = slot tcb k.index in
  tls.(k.index) <- Some (Univ.pack k.ukey v)

let errno = key ~default:0
