(* Core types of the threads library: the thread control block, the
   per-process pool that multiplexes threads over LWPs, and the effect
   through which a thread gives its LWP back to the scheduler.

   Layering reminder: everything in this library is *user code* in the
   simulation — it runs inside LWP fibers and talks to the kernel only
   through Sunos_kernel.Uctx.  The one nesting trick: each thread body is
   itself a fiber whose handler (in Pool) catches [Suspend]; kernel
   effects (Charge/Sys) pass through to the kernel handler, which is
   exactly how a thread stays bound to its LWP for the duration of a
   system call. *)

module Sigset = Sunos_kernel.Sigset
module Signo = Sunos_kernel.Signo
module Sysdefs = Sunos_kernel.Sysdefs
module Cost = Sunos_hw.Cost_model

type tstate =
  | Trunnable
  | Trunning
  | Tblocked
  | Tstopped
  | Tzombie

type wake_reason =
  | Wake_normal
  | Wake_signal of Signo.t
      (* woken to run a signal handler; blocking primitives re-block (or
         report a spurious wakeup) after the handler runs *)

type stack_kind =
  | Stack_default  (* library-managed, cached *)
  | Stack_caller of int  (* programmer-supplied storage of given size *)

type tstep =
  | T_done
  | T_raised of exn
  | T_suspended of (tcb -> unit) * (wake_reason, tstep) Effect.Deep.continuation

and tcb = {
  tid : int;
  pool : pool;
  mutable tstate : tstate;
  mutable prio : int;
  mutable tsigmask : Sigset.t;
  mutable kont : (wake_reason, tstep) Effect.Deep.continuation option;
  mutable wake_reason : wake_reason;
  mutable entry : (unit -> unit) option;  (* consumed at first dispatch *)
  bound : bool;
  mutable bound_lwp : int;  (* kernel lwpid when [bound] *)
  wait_flag : bool;  (* THREAD_WAIT: joinable; tid not reused until waited *)
  stack_kind : stack_kind;
  mutable tls : Sunos_sim.Univ.t option array;
  mutable waiter : tcb option;  (* the (single) thread_wait()er *)
  mutable cancel_wait : unit -> unit;
      (* deregister from whatever wait queue holds us; installed by the
         park function, invoked before an out-of-band wakeup (signal) *)
  pending_tsigs : Signo.t Queue.t;  (* thread-directed, not yet handled *)
  mutable stop_requested : bool;
  mutable exited : bool;
  (* thrsan bookkeeping (see Thrsan): pure-mutation fields, written only
     when the sanitizer is enabled (except the [None] clear in
     make_ready, a single store) *)
  mutable san_waiting : san_obj option;
      (* the sync object this thread is blocked on right now; edge of
         the waits-for graph *)
  mutable san_held : san_obj list;
      (* locks currently held, most recent first (lock-order checking) *)
}

(* A sanitizer's view of one synchronization object (mutex, condvar,
   semaphore, rwlock, syncvar, lockdebug lock).  Allocated lazily, only
   when the sanitizer first sees the object while enabled. *)
and san_obj = {
  so_id : int;
  so_kind : string;
  mutable so_name : string;
  mutable so_holders : tcb list;  (* current owners (readers, or the one
                                     owner); empty for condvars/semaphores *)
  mutable so_last_holder : string;  (* "pid/tid" of the last acquirer *)
  mutable so_acq_seq : int;  (* global acquisition sequence stamp of the
                                most recent acquisition (the "site") *)
}

and pool = {
  pid : int;
  cost : Cost.t;
      (* the library's own path-length calibration; see DESIGN.md *)
  runq : tcb Queue.t array;  (* per-priority FIFO, index = priority *)
  mutable runq_count : int;
  threads : (int, tcb) Hashtbl.t;
  mutable next_tid : int;
  mutable live_threads : int;
  mutable n_pool_lwps : int;  (* LWPs serving unbound threads *)
  mutable idle_lwps : int list;  (* parked pool LWPs (lwpids) *)
  mutable concurrency_target : int;  (* thread_setconcurrency; 0 = auto *)
  mutable shrink_lwps : int;  (* LWPs asked to exit when they next idle *)
  mutable stack_cached : int;  (* default stacks in the cache *)
  mutable stack_hits : int;
  mutable stack_misses : int;
  handlers : Sysdefs.disposition array;
      (* library mirror of the process signal vector: the thread-level
         dispositions that Sigdeliver routes by thread masks *)
  mutable proc_pending_tsigs : Signo.t list;
      (* process-directed signals every current thread masks *)
  mutable any_waiters : tcb list;  (* thread_wait(NULL) sleepers *)
  mutable auto_grow : bool;  (* create an LWP on SIGWAITING *)
  mutable timer_slot : Sunos_sim.Univ.t option;
      (* per-pool state of the Timers module (per-thread timers
         multiplexed over the process real timer) *)
  (* statistics, exposed through Libthread.stats *)
  mutable ctr_creates_unbound : int;
  mutable ctr_creates_bound : int;
  mutable ctr_switches : int;  (* user-level thread context switches *)
  mutable ctr_lwp_grown : int;  (* LWPs added by SIGWAITING growth *)
}

type _ Effect.t +=
  | Suspend : (tcb -> unit) -> wake_reason Effect.t
        (* give up the LWP: the scheduler saves our continuation in the
           TCB, runs the argument (which parks the TCB somewhere), and
           picks another thread.  The resume value says why we woke. *)

exception Thread_exit_exn
(* raised by Thread.exit; translated to a clean T_done by the scheduler *)

let max_prio = 63
let default_prio = 31

let live_runnable pool = pool.runq_count > 0
