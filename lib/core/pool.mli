(** The M:N scheduler engine (library-internal).

    Threads are multiplexed over a pool of LWPs: each pool LWP runs
    {!lwp_main} — pick a thread from the user-level run queue, load its
    state, run it until it suspends, save its state, pick another
    (Figure 2 of the paper) — with no kernel involvement except when a
    thread blocks {e in} the kernel, an idle LWP parks, or a waker
    unparks one.

    THE COMMIT RULE (lost-wakeup freedom): a blocking primitive must
    perform no effect between reading the state that makes it decide to
    block and performing {!suspend}; the scheduler saves the continuation
    and runs the park function with no intervening effect.  Simulated
    interleaving happens only at effect boundaries, so decision +
    suspension + waitq insertion are atomic. *)

open Ttypes

val make_pool :
  pid:int -> cost:Sunos_hw.Cost_model.t -> auto_grow:bool -> pool

(** {1 Run queue} *)

val runq_push : pool -> tcb -> unit
val runq_pop : pool -> tcb option

(** {1 Suspension and wakeup} *)

val suspend : park:(tcb -> unit) -> wake_reason
(** Give the LWP back to the scheduler.  [park] runs after the
    continuation is saved (commit rule) and must record the TCB wherever
    its waker will look, setting [tstate] and [cancel_wait]. *)

val make_ready : tcb -> wake_reason -> unit
(** Wake a blocked thread: cancels its wait registration, then either
    requeues it (unbound; kicks an idle LWP) or unparks its dedicated LWP
    (bound).  A pending stop request diverts it to [Tstopped]. *)

val unpark_bound : pool -> tcb -> unit
(** Unpark a bound thread's dedicated LWP; if the LWP was reaped by
    fault injection while parked (ESRCH), respawn it via
    {!spawn_bound}. *)

val kick_idle_lwp : pool -> bool
(** Unpark one parked pool LWP, if any; [false] when no live idle LWP
    exists (the list was empty, or every candidate had been reaped by
    fault injection — dead entries repair [n_pool_lwps] on the way). *)

(** {1 Signals} *)

val run_pending_tsigs : unit -> unit
(** Run handlers for the current thread's pending thread-directed
    signals; must be called from inside the thread's own fiber. *)

val thread_checkpoint : unit -> unit
(** Cooperative delivery point: drains pending signals if any. *)

(** {1 LWP bodies} *)

val lwp_main : pool -> unit -> unit
(** Body of a pool LWP serving unbound threads (never returns normally;
    may [lwp_exit] when the pool shrinks). *)

val bound_main : pool -> tcb -> unit -> unit
(** Body of an LWP permanently bound to one thread. *)

val grow_pool : pool -> unit
(** Add one pool LWP ([thread_setconcurrency] / THREAD_NEW_LWP /
    SIGWAITING growth).  Retries with capped exponential backoff on a
    (fault-injected) transient ENOMEM: growth is a liveness obligation
    once the SIGWAITING edge has been consumed. *)

val spawn_bound : pool -> tcb -> unit
(** Create the dedicated LWP of a bound thread (same ENOMEM retry
    policy as {!grow_pool}).  Also the rescue path when a bound
    thread's LWP is reaped while parked. *)

(** {1 Thread construction} *)

val charge_create_costs : pool -> stack_kind -> unit
(** The paper's creation path: TCB allocation plus a stack-cache hit or
    a cold allocation with TLS zeroing. *)

val new_tcb :
  pool ->
  entry:(unit -> unit) ->
  prio:int ->
  sigmask:Sunos_kernel.Sigset.t ->
  bound:bool ->
  wait_flag:bool ->
  stack_kind:stack_kind ->
  stopped:bool ->
  tcb

(** {1 Internals exposed for the scheduler composition} *)

val run_thread : pool -> tcb option ref -> tcb -> unit
val thread_finish : pool -> tcb -> unit
val run_thread_fiber : (unit -> unit) -> tstep
val alloc_tid : pool -> int
