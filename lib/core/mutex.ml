open Ttypes
module Uctx = Sunos_kernel.Uctx
module Robust = Sunos_kernel.Robust
module Univ = Sunos_sim.Univ
module Time = Sunos_sim.Time
module Cost = Sunos_hw.Cost_model
module Shm = Sunos_hw.Shared_memory

type variant = Sleep | Spin | Adaptive

type priv_state = {
  variant : variant;
  mutable owner : tcb option;
  waitq : Waitq.t;
  mutable san : san_obj option;  (* thrsan identity, allocated lazily *)
}

(* Cross-process state: identified by (pid, tid) numbers since TCBs are
   meaningless in other processes. *)
type shared_state = {
  mutable s_locked : bool;
  mutable s_owner_pid : int;
  mutable s_owner_tid : int;
  mutable s_robust : bool;
  mutable s_ownerdead : bool;
  mutable s_san : san_obj option;
}

type t =
  | Private of priv_state
  | Shared of { state : shared_state; at : Syncvar.place }

let shared_key : shared_state Univ.key = Univ.key ()

let create ?(variant = Sleep) () =
  Private { variant; owner = None; waitq = Waitq.create (); san = None }

let create_shared ?(robust = false) at =
  let state =
    Syncvar.locate at ~key:shared_key ~make:(fun () ->
        {
          s_locked = false;
          s_owner_pid = 0;
          s_owner_tid = 0;
          s_robust = false;
          s_ownerdead = false;
          s_san = None;
        })
  in
  (* robustness is a property of the lock word, not the handle: any
     process asking for it turns it on for every mapper *)
  if robust then state.s_robust <- true;
  Shared { state; at }

let cost_of (tcb : tcb) = tcb.pool.cost

let msan s =
  match s.san with
  | Some o -> o
  | None ->
      let o = Thrsan.new_obj ~kind:"mutex" () in
      s.san <- Some o;
      o

(* Shared lock identity for the sanitizer: named after the home address
   so a report from any process points at the same lock word. *)
let mssan st (at : Syncvar.place) =
  match st.s_san with
  | Some o -> o
  | None ->
      let o =
        Thrsan.new_obj ~kind:"mutex(shared)"
          ~name:(Printf.sprintf "%s+%d" (Shm.name at.Syncvar.seg) at.offset)
          ()
      in
      st.s_san <- Some o;
      o

exception Not_owner
exception Owner_dead

let () =
  Printexc.register_printer (function
    | Not_owner -> Some "Mutex: releasing a lock not held by this thread"
    | Owner_dead ->
        Some
          "Mutex: robust lock's owner died; acquire with enter_robust and \
           repair"
    | _ -> None)

(* --- robust-list bookkeeping ------------------------------------------ *)

(* On every robust acquisition, register the (owner, repair closure)
   with the kernel's robust registry; the kernel runs the closure if the
   owner dies holding the lock, then wakes the wait channel, so the next
   acquirer finds the lock free but flagged OWNERDEAD. *)
let robust_register st (at : Syncvar.place) self =
  if st.s_robust then
    Robust.register ~seg_id:(Shm.id at.Syncvar.seg) ~offset:at.offset
      ~pid:self.pool.pid ~tid:self.tid
      ~owner_dead:(fun () -> self.exited || self.tstate = Tzombie)
      ~on_death:(fun () ->
        st.s_locked <- false;
        st.s_owner_pid <- 0;
        st.s_owner_tid <- 0;
        st.s_ownerdead <- true;
        match st.s_san with Some o -> o.so_holders <- [] | None -> ())

let robust_unregister st (at : Syncvar.place) self =
  if st.s_robust then
    Robust.unregister ~seg_id:(Shm.id at.Syncvar.seg) ~offset:at.offset
      ~pid:self.pool.pid ~tid:self.tid

(* --- private (within-process) --------------------------------------- *)

(* Spin until the lock frees.  Each probe is a charge, so ownership is
   re-examined at every simulated-time boundary; on a uniprocessor the
   spinner eventually exhausts its quantum and the owner runs. *)
let rec spin_until_free c s =
  if s.owner <> None then begin
    Uctx.charge c.Cost.sync_fast;
    spin_until_free c s
  end

(* Record an uncontended (or post-spin) acquisition with the sanitizer.
   Handoff acquisitions are recorded by the releaser in [exit_private],
   so the holder set is correct the instant ownership changes. *)
let san_take s self =
  if Thrsan.tracking () then Thrsan.acquired self (msan s)

let rec sleep_until_owned s self =
  if s.owner = None then begin
    s.owner <- Some self;
    san_take s self
  end
  else begin
    if Thrsan.tracking () then Thrsan.blocked_on self (msan s);
    (* commit rule: no effect between this check and the Suspend *)
    match
      Pool.suspend ~park:(fun tcb ->
          tcb.tstate <- Tblocked;
          tcb.cancel_wait <- Waitq.add s.waitq tcb)
    with
    | Wake_normal ->
        (* handoff: the releaser made us the owner *)
        assert (match s.owner with Some o -> o == self | None -> false)
    | Wake_signal _ ->
        Pool.run_pending_tsigs ();
        sleep_until_owned s self
  end

let enter_private s self =
  let c = cost_of self in
  Uctx.charge c.Cost.sync_fast;
  Pool.thread_checkpoint ();
  if Thrsan.tracking () then Thrsan.acquiring self (msan s);
  if s.owner = None then begin
    s.owner <- Some self;
    san_take s self
  end
  else begin
    Uctx.charge c.Cost.sync_slow_extra;
    match s.variant with
    | Spin ->
        spin_until_free c s;
        s.owner <- Some self;
        san_take s self
    | Adaptive ->
        (* spin briefly while the owner is on a CPU, else sleep; the
           budget lives in the cost model so ablations can sweep it *)
        let spins = ref 0 in
        let limit = c.Cost.adaptive_spin_limit in
        let owner_running () =
          match s.owner with
          | Some o -> o.tstate = Trunning
          | None -> false
        in
        while s.owner <> None && owner_running () && !spins < limit do
          Uctx.charge c.Cost.sync_fast;
          incr spins
        done;
        if s.owner = None then begin
          s.owner <- Some self;
          san_take s self
        end
        else sleep_until_owned s self
    | Sleep -> sleep_until_owned s self
  end

let exit_private s self =
  (match s.owner with
  | Some o when o == self -> ()
  | Some _ | None -> raise Not_owner);
  let c = cost_of self in
  Uctx.charge c.Cost.sync_fast;
  match Waitq.pop s.waitq with
  | Some next ->
      (* direct handoff keeps the bracketing invariant simple *)
      s.owner <- Some next;
      if Thrsan.tracking () then begin
        Thrsan.released self (msan s);
        Thrsan.acquired next (msan s)
      end;
      Pool.make_ready next Wake_normal
  | None ->
      s.owner <- None;
      if Thrsan.tracking () then Thrsan.released self (msan s)

(* --- shared (between processes) -------------------------------------- *)

let rec enter_shared st at self =
  let c = cost_of self in
  Uctx.charge c.Cost.sync_fast;
  (* same delivery point the private path has (enter_private): without
     it a thread looping on a contended shared lock starves its pending
     thread-directed signals — the missing-checkpoint class of
     BUG 13/14, which the try_* audit found here too *)
  Pool.thread_checkpoint ();
  if Thrsan.tracking () then Thrsan.acquiring self (mssan st at);
  if not st.s_locked then begin
    st.s_locked <- true;
    st.s_owner_pid <- self.pool.pid;
    st.s_owner_tid <- self.tid;
    robust_register st at self;
    if Thrsan.tracking () then Thrsan.acquired self (mssan st at)
  end
  else begin
    if Thrsan.tracking () then Thrsan.blocked_on self (mssan st at);
    (* kwait's expect closes the check-then-sleep race *)
    (match Syncvar.wait at ~expect:(fun () -> st.s_locked) () with
    | `Woken | `Timeout -> ());
    if Thrsan.tracking () then Thrsan.clear_wait self;
    enter_shared st at self
  end

let exit_shared st at self =
  if not (st.s_locked && st.s_owner_pid = self.pool.pid
          && st.s_owner_tid = self.tid)
  then raise Not_owner;
  let c = cost_of self in
  Uctx.charge c.Cost.sync_fast;
  robust_unregister st at self;
  st.s_locked <- false;
  st.s_owner_pid <- 0;
  st.s_owner_tid <- 0;
  if Thrsan.tracking () then Thrsan.released self (mssan st at);
  ignore (Syncvar.wake at ~count:1)

(* --- public ----------------------------------------------------------- *)

let enter m =
  let self = Current.get () in
  match m with
  | Private s -> enter_private s self
  | Shared { state; at } ->
      enter_shared state at self;
      if state.s_robust && state.s_ownerdead then begin
        (* the plain entry point cannot return the recovery obligation;
           refuse the lock (use [enter_robust] to repair) *)
        exit_shared state at self;
        raise Owner_dead
      end

let enter_robust m =
  let self = Current.get () in
  match m with
  | Private s ->
      enter_private s self;
      `Locked
  | Shared { state; at } ->
      enter_shared state at self;
      if state.s_robust && state.s_ownerdead then `Owner_dead else `Locked

let exit m =
  let self = Current.get () in
  match m with
  | Private s -> exit_private s self
  | Shared { state; at } -> exit_shared state at self

let set_consistent m =
  let self = Current.get () in
  match m with
  | Private _ -> ()
  | Shared { state; _ } ->
      if not (state.s_locked && state.s_owner_pid = self.pool.pid
              && state.s_owner_tid = self.tid)
      then raise Not_owner;
      state.s_ownerdead <- false

let try_enter m =
  let self = Current.get () in
  let c = cost_of self in
  Uctx.charge c.Cost.sync_fast;
  Pool.thread_checkpoint ();
  match m with
  | Private s ->
      if s.owner = None then begin
        if Thrsan.tracking () then Thrsan.acquiring self (msan s);
        s.owner <- Some self;
        san_take s self;
        true
      end
      else false
  | Shared { state; at } ->
      if (not state.s_locked) && not (state.s_robust && state.s_ownerdead)
      then begin
        if Thrsan.tracking () then Thrsan.acquiring self (mssan state at);
        state.s_locked <- true;
        state.s_owner_pid <- self.pool.pid;
        state.s_owner_tid <- self.tid;
        robust_register state at self;
        if Thrsan.tracking () then Thrsan.acquired self (mssan state at);
        true
      end
      else false

let is_locked = function
  | Private s -> s.owner <> None
  | Shared { state; _ } -> state.s_locked

let owner_dead = function
  | Private _ -> false
  | Shared { state; _ } -> state.s_robust && state.s_ownerdead

let holding m =
  let self = Current.get () in
  match m with
  | Private s -> (match s.owner with Some o -> o == self | None -> false)
  | Shared { state; _ } ->
      state.s_locked && state.s_owner_pid = self.pool.pid
      && state.s_owner_tid = self.tid

(* internal: used by Condvar to release while parking (no Current) *)
let release_from m tcb =
  match m with
  | Private s -> exit_private s tcb
  | Shared { state; at } -> exit_shared state at tcb
