open Ttypes
module Kernel = Sunos_kernel.Kernel
module Procfs = Sunos_kernel.Procfs

type thread_view = {
  dt_tid : int;
  dt_state : string;
  dt_bound_lwp : int option;
}

type snapshot = {
  d_pid : int;
  d_pname : string;
  d_lwps : Procfs.lwp_info list;
  d_threads : thread_view list;
}

(* The "published thread table": the library registers a reader closure
   per pid at boot (the analogue of the debugger knowing where
   libthread's tables live in the inferior).  Sequential simulations
   reuse pids; boot overwrites, so the registry always reflects the
   latest process under that pid. *)
let registry_key : (int, unit -> thread_view list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let registry () = Domain.DLS.get registry_key

let publish pool =
  Hashtbl.replace (registry ()) pool.pid (fun () ->
      Hashtbl.fold
        (fun tid t acc ->
          {
            dt_tid = tid;
            dt_state =
              (match t.tstate with
              | Trunnable -> "runnable"
              | Trunning -> "running"
              | Tblocked -> "blocked"
              | Tstopped -> "stopped"
              | Tzombie -> "zombie");
            dt_bound_lwp = (if t.bound then Some t.bound_lwp else None);
          }
          :: acc)
        pool.threads []
      |> List.sort (fun a b -> compare a.dt_tid b.dt_tid))

let with_proc k pid f =
  match Kernel.find_proc k pid with
  | None -> Error (Printf.sprintf "no such process: %d" pid)
  | Some proc -> Ok (f proc)

let attach k pid =
  with_proc k pid (fun proc -> Sunos_kernel.Signal_impl.stop_proc k proc)

let detach k pid =
  with_proc k pid (fun proc -> Sunos_kernel.Signal_impl.cont_proc k proc)

let snapshot k pid =
  match Procfs.proc k pid with
  | None -> Error (Printf.sprintf "no such process: %d" pid)
  | Some pi ->
      let threads =
        match Hashtbl.find_opt (registry ()) pid with
        | Some read -> read ()
        | None -> []
      in
      Ok
        {
          d_pid = pid;
          d_pname = pi.Procfs.pi_name;
          d_lwps = pi.Procfs.pi_lwps;
          d_threads = threads;
        }

let pp_snapshot ppf s =
  Format.fprintf ppf "pid %d (%s)@." s.d_pid s.d_pname;
  Format.fprintf ppf "  kernel view (/proc): %d LWP(s)@."
    (List.length s.d_lwps);
  List.iter
    (fun (li : Procfs.lwp_info) ->
      Format.fprintf ppf "    lwp %d %s %s@." li.Procfs.li_lwpid
        li.Procfs.li_state li.Procfs.li_class)
    s.d_lwps;
  Format.fprintf ppf "  library view (thread table): %d thread(s)@."
    (List.length s.d_threads);
  List.iter
    (fun t ->
      Format.fprintf ppf "    thread %d %s%s@." t.dt_tid t.dt_state
        (match t.dt_bound_lwp with
        | Some l -> Printf.sprintf " (bound to lwp %d)" l
        | None -> ""))
    s.d_threads
