(* The current-thread register, one per domain: each simulated machine
   is single-threaded, but the bench runner's [-j N] mode runs
   independent machines on separate domains, so the register must not
   be shared between them. *)
let cur_key : Ttypes.tcb option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cur () = Domain.DLS.get cur_key

let get () =
  match !(cur ()) with
  | Some t -> t
  | None -> failwith "Sunos_threads: no current thread (Libthread.boot missing?)"

let get_opt () = !(cur ())
let set t = cur () := t
let pool () = (get ()).Ttypes.pool
