(** Multiple-readers, single-writer locks ([rw_enter] / [rw_exit] /
    [rw_tryenter] / [rw_downgrade] / [rw_tryupgrade]).

    Many simultaneous readers or one writer; good for objects searched
    far more often than changed.  Waiting writers block new readers
    (writer preference), so readers cannot starve writers. *)

type t

type rw = Reader | Writer

val create : unit -> t

val create_shared : ?robust:bool -> Syncvar.place -> t
(** The rwlock at this shared placement (creating on first look).
    [~robust:true]: if the writer's process or LWP dies holding the
    lock, the kernel clears ownership, flags [OWNERDEAD] and wakes all
    contenders; the next acquirer — via {!enter_robust}, whichever side
    it asked for — is admitted as the {e writer} so it can repair the
    protected state, then {!set_consistent} (and possibly {!downgrade}).
    A dead {e reader}'s hold is simply dropped (readers cannot have
    corrupted anything).  Sticky, as with [Mutex.create_shared]. *)

val enter : t -> rw -> unit
val exit : t -> unit
(** Releases whichever side the calling thread holds.  Raises
    [Mutex.Not_owner]-style [Failure] if it holds neither. *)

val enter_robust : t -> rw -> [ `Locked | `Owner_dead ]
(** Like {!enter}, but an [OWNERDEAD] robust lock is handed out anyway:
    the caller gets [`Owner_dead] holding the {e write} side regardless
    of the side requested, repairs, then {!set_consistent}.  Private
    rwlocks always return [`Locked]. *)

val set_consistent : t -> unit
(** Clear the [OWNERDEAD] flag; caller must hold the write side. *)

exception Owner_dead
(** Raised by plain {!enter} on a robust lock in [OWNERDEAD] state. *)

val try_enter : t -> rw -> bool
(** Refuses an un-repaired robust lock ([OWNERDEAD] pending). *)

val downgrade : t -> unit
(** Atomically turn the calling thread's writer lock into a reader lock.
    Waiting writers keep waiting; with no waiting writer, pending readers
    are admitted. *)

val try_upgrade : t -> bool
(** Attempt to turn a reader lock into a writer lock atomically.  Fails
    (returning [false], still holding the reader lock) when another
    upgrade is in progress or writers are waiting. *)

val readers : t -> int
val has_writer : t -> bool

val bug14_bare_upgrader : bool ref
(** Seeded-bug knob for the schedule explorer: [true] reverts the BUG 14
    fix (the pending upgrader parks bare and promotion re-readies it
    through its TCB even when it is awake in a signal handler).  The
    explorer's rwlock-upgrade scenario must find a failing schedule with
    this on and none with it off.  Tests only. *)

val owner_dead : t -> bool
(** Racy snapshot of the [OWNERDEAD] flag. *)
