(** Mutual exclusion locks ([mutex_enter] / [mutex_exit] /
    [mutex_tryenter]).

    Low overhead in space and time; strictly bracketing — releasing a
    lock the calling thread does not hold raises.  The implementation
    variant is chosen at initialization, as in the paper:

    - [Sleep] (the default): contenders context-switch away at user
      level.
    - [Spin]: contenders burn CPU until the lock frees.  Only sensible
      for bound threads on a multiprocessor.
    - [Adaptive]: spin briefly while the owner is running on another
      LWP, otherwise sleep — the classic SunOS adaptive lock.

    A mutex created with {!create_shared} lives in a shared segment or
    mapped file and synchronizes threads across processes; contended
    operations then go through the kernel ([kwait]/[kwake]). *)

type t

type variant = Sleep | Spin | Adaptive

val create : ?variant:variant -> unit -> t
(** A process-private mutex ("statically allocated as zero": usable
    immediately, default variant). *)

val create_shared : ?robust:bool -> Syncvar.place -> t
(** The mutex at this shared placement — creating it if this is the
    first process to look, finding the existing state otherwise.

    [~robust:true] makes the lock robust: if its owner's process (or
    LWP) dies holding it, the kernel clears ownership, marks the lock
    word [OWNERDEAD] and wakes all contenders; the next acquirer — via
    {!enter_robust} — gets [`Owner_dead] {e with the lock held} and must
    repair the protected state, then call {!set_consistent}.
    Robustness is sticky: once any mapper asks for it, the lock word
    stays robust for everyone. *)

val enter : t -> unit
val exit : t -> unit
val try_enter : t -> bool
(** [try_enter] refuses an un-repaired robust lock ([`Owner_dead]
    pending) — only {!enter_robust} hands those out. *)

val enter_robust : t -> [ `Locked | `Owner_dead ]
(** Like {!enter}, but on a robust lock whose previous owner died the
    caller acquires anyway and is told [`Owner_dead]: it now holds the
    lock over possibly-inconsistent protected state and should repair
    it, then {!set_consistent}.  Private mutexes always return
    [`Locked]. *)

val set_consistent : t -> unit
(** Clear the [OWNERDEAD] flag; caller must hold the lock (raises
    {!Not_owner} otherwise). *)

val is_locked : t -> bool
(** Racy snapshot; for tests and assertions. *)

val owner_dead : t -> bool
(** Racy snapshot of the [OWNERDEAD] flag. *)

val holding : t -> bool
(** Whether the calling thread owns the mutex. *)

exception Not_owner
(** Raised by {!exit} when the caller does not hold the lock (mutexes
    are strictly bracketing). *)

exception Owner_dead
(** Raised by plain {!enter} on a robust lock in [OWNERDEAD] state:
    recovery requires the {!enter_robust} entry point. *)

(**/**)

val release_from : t -> Ttypes.tcb -> unit
(** Internal (Condvar): release on behalf of [tcb] while it parks. *)
