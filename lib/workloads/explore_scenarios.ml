(* Explorable synchronization scenarios.

   Each scenario is a small, closed multi-thread program (2-3 threads,
   one or two sync objects) bundled with a pass/fail judgement, written
   as a pure function of the installed schedule: boot a fresh machine,
   run it to a horizon, inspect.  {!Sunos_sim.Explore} re-runs the
   function once per interleaving, so the judgement must depend on
   nothing but the decision vector — every ref is allocated inside the
   run, and the sanitizer is reset around it.

   The set re-verifies the repo's schedule-sensitive fixes by
   exhaustion: the rwlock-upgrade scenario is the BUG 14 shape, the
   sigwaiting-rearm scenario the chaos-EINTR re-arm fix, and the
   lock-chain pair shows the explorer finding a real three-lock
   deadlock (expected failures) that the consistently-ordered variant
   never exhibits. *)

module Time = Sunos_sim.Time
module Explore = Sunos_sim.Explore
module Faultgen = Sunos_sim.Faultgen
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Signo = Sunos_kernel.Signo
module Sigset = Sunos_kernel.Sigset
module Sysdefs = Sunos_kernel.Sysdefs
module Errno = Sunos_kernel.Errno
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Condvar = Sunos_threads.Condvar
module Rwlock = Sunos_threads.Rwlock
module Semaphore = Sunos_threads.Semaphore
module Syncvar = Sunos_threads.Syncvar
module Thrsan = Sunos_threads.Thrsan

type t = {
  sc_name : string;
  sc_descr : string;
  sc_expect_fail : bool;
  sc_run : unit -> Explore.outcome;
}

(* ------------------------- shared plumbing --------------------------- *)

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Every explored schedule runs sanitized; reset keeps state (order
   graph, reports, shared-object registry) from leaking between the
   thousands of boots one exhaustion performs. *)
let with_san f =
  Thrsan.reset ();
  Thrsan.enable ();
  Fun.protect
    ~finally:(fun () ->
      Thrsan.set_lock_order_mode false;
      Thrsan.disable ())
    f

(* Judge a finished run.  Priority: a still-alive scenario process is a
   hang (the sanitizer's drain hook usually has the detail); a non-zero
   exit is a crash or an in-fiber sanitizer report; exit 0 defers to the
   scenario's own invariants. *)
let judge k ~pid invariants =
  if Kernel.proc_alive k pid then
    match Thrsan.last_hang () with
    | Some h -> Explore.Fail ("hang: " ^ first_line h.Thrsan.hr_text)
    | None -> Explore.Fail "hang: scenario process alive at horizon"
  else
    match Kernel.exit_status k pid with
    | Some 0 -> (
        match List.find_opt (fun (_, ok) -> not ok) invariants with
        | Some (what, _) -> Explore.Fail ("invariant: " ^ what)
        | None -> Explore.Pass)
    | Some s -> (
        match Thrsan.last_deadlock () with
        | Some d ->
            Explore.Fail
              (Printf.sprintf "exit %d: %s" s (first_line d.Thrsan.dl_text))
        | None -> Explore.Fail (Printf.sprintf "exit status %d" s))
    | None -> Explore.Fail "scenario process never finished"

(* Boot-run-judge for threads-library scenarios.  [invariants] is read
   after the run so the refs the main closure writes are settled. *)
let run_app ?(cpus = 1) ?(until = Time.ms 100) ~main ~invariants () =
  with_san (fun () ->
      let k = Kernel.boot ~cpus () in
      Thrsan.watch k;
      let pid = Kernel.spawn k ~name:"sc" ~main:(Libthread.boot main) in
      Kernel.run ~until ~max_events:500_000 k;
      judge k ~pid (invariants ()))

(* --------------------------- scenarios ------------------------------- *)

let sc_mutex_condvar =
  {
    sc_name = "mutex-condvar";
    sc_descr = "producer/consumer handshake over a mutex and condvar";
    sc_expect_fail = false;
    sc_run =
      (fun () ->
        let got = ref false in
        run_app
          ~main:(fun () ->
            let m = Mutex.create () and cv = Condvar.create () in
            let ready = ref false in
            let consumer =
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  Mutex.enter m;
                  while not !ready do
                    Condvar.wait cv m
                  done;
                  got := true;
                  Mutex.exit m)
            in
            let producer =
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  Mutex.enter m;
                  ready := true;
                  Condvar.signal cv;
                  Mutex.exit m)
            in
            ignore (T.wait ~thread:consumer ());
            ignore (T.wait ~thread:producer ()))
          ~invariants:(fun () -> [ ("consumer observed the flag", !got) ])
          ());
  }

let sc_semaphore_handoff =
  {
    sc_name = "semaphore-handoff";
    sc_descr = "two consumers drain exactly the two tokens one producer posts";
    sc_expect_fail = false;
    sc_run =
      (fun () ->
        let served = ref 0 in
        run_app
          ~main:(fun () ->
            let sem = Semaphore.create () in
            let consumer () =
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  Semaphore.p sem;
                  incr served)
            in
            let c1 = consumer () and c2 = consumer () in
            let producer =
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  Semaphore.v sem;
                  T.yield ();
                  Semaphore.v sem)
            in
            ignore (T.wait ~thread:c1 ());
            ignore (T.wait ~thread:c2 ());
            ignore (T.wait ~thread:producer ());
            (* both tokens consumed, none conjured *)
            assert (Semaphore.count sem = 0))
          ~invariants:(fun () -> [ ("both consumers served", !served = 2) ])
          ());
  }

(* The BUG 14 shape (test_regressions has the narrative): a reader
   holds the lock while a second reader upgrades — the upgrader parks
   pending promotion — and a thread-directed signal lands on the parked
   upgrader just as the last reader's exit promotes it.  The helper
   publishes "I am reading" through a semaphore so every schedule
   reaches the contended-upgrade window; with [Rwlock.bug14_bare_upgrader]
   on, some interleaving loses the handler or dispatches a phantom runq
   entry, and exhaustion must find it. *)
let sc_rwlock_upgrade =
  {
    sc_name = "rwlock-upgrade";
    sc_descr = "signal lands on a parked rwlock upgrader during promotion";
    sc_expect_fail = false;
    sc_run =
      (fun () ->
        let upgraded = ref false and handler_ran = ref false in
        run_app ~cpus:2
          ~main:(fun () ->
            (* two LWPs under four threads: the pool run queue is where
               the contention lives, so the explorer's thread-level
               choices (the site with lock footprints) get exercised *)
            T.setconcurrency 2;
            ignore
              (T.sigaction Signo.sigusr1
                 (Sysdefs.Sig_handler
                    (fun _ ->
                      handler_ran := true;
                      Uctx.charge_us 3000)));
            let rw = Rwlock.create () in
            let reading = Semaphore.create () in
            let w =
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  (* only upgrade against a lock both readers hold *)
                  Semaphore.p reading;
                  Semaphore.p reading;
                  Rwlock.enter rw Rwlock.Reader;
                  if Rwlock.try_upgrade rw then upgraded := true;
                  Rwlock.exit rw)
            in
            (* second reader: its exit order against the killer reader
               varies with the schedule, so the promotion (last reader
               out) slides across the signal window *)
            let helper2 =
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  Rwlock.enter rw Rwlock.Reader;
                  Semaphore.v reading;
                  for _ = 1 to 2 do
                    Uctx.charge_us 500
                  done;
                  Rwlock.exit rw)
            in
            let helper =
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  Rwlock.enter rw Rwlock.Reader;
                  Semaphore.v reading;
                  (* chunked charges: each boundary is a dispatch
                     choice, so the explorer can slide the upgrader's
                     park anywhere inside the read window *)
                  for _ = 1 to 4 do
                    Uctx.charge_us 500
                  done;
                  (* this reader still holds the lock, so w cannot have
                     upgraded yet: the signal always lands on a live
                     thread, in every schedule *)
                  T.kill w Signo.sigusr1;
                  Uctx.charge_us 50;
                  Rwlock.exit rw)
            in
            ignore (T.wait ~thread:helper ());
            ignore (T.wait ~thread:helper2 ());
            ignore (T.wait ~thread:w ()))
          ~invariants:(fun () ->
            [
              ("upgrade completed", !upgraded);
              ("signal handler ran", !handler_ran);
            ])
          ());
  }

let sc_robust_ownerdead =
  {
    sc_name = "robust-ownerdead";
    sc_descr = "OWNERDEAD repair of a shared robust mutex whose holder died";
    sc_expect_fail = false;
    sc_run =
      (fun () ->
        let repaired = ref 0 and acquired = ref 0 in
        run_app
          ~main:(fun () ->
            let seg = Uctx.mmap_anon ~size:4096 ~shared:true in
            let m =
              Mutex.create_shared ~robust:true (Syncvar.place seg ~offset:0)
            in
            let pid =
              (* the child dies holding the lock *)
              Uctx.fork1
                ~child_main:(Libthread.boot (fun () -> Mutex.enter m))
            in
            ignore (Uctx.waitpid ~pid ());
            (* two survivors race for the dead owner's lock: exactly one
               sees OWNERDEAD and repairs, the other gets it clean *)
            let survivor () =
              T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
                  (match Mutex.enter_robust m with
                  | `Owner_dead ->
                      incr repaired;
                      Mutex.set_consistent m
                  | `Locked -> ());
                  incr acquired;
                  Mutex.exit m)
            in
            let s1 = survivor () and s2 = survivor () in
            ignore (T.wait ~thread:s1 ());
            ignore (T.wait ~thread:s2 ()))
          ~invariants:(fun () ->
            [
              ("exactly one survivor repaired", !repaired = 1);
              ("both survivors acquired after the death", !acquired = 2);
            ])
          ());
  }

(* Three threads, three locks, circular acquisition order: t1 takes
   A then B, t2 B then C, t3 C then A.  Most schedules complete; the
   ones that park all three mid-chain close the waits-for cycle and the
   sanitizer kills the process (exit 139).  Exhaustion must FIND those
   schedules — this is the real-deadlock companion to the BUG 13
   transitive order check, run with order mode off so only the actual
   cycle (not the potential) trips. *)
let lock_chain_run ~third () =
  run_app
    ~main:(fun () ->
      let a = Mutex.create ()
      and b = Mutex.create ()
      and c = Mutex.create () in
      let grab x y =
        T.create ~flags:[ T.THREAD_WAIT ] (fun () ->
            Mutex.enter x;
            T.yield ();
            Mutex.enter y;
            Mutex.exit y;
            Mutex.exit x)
      in
      let t1 = grab a b
      and t2 = grab b c
      and t3 = (match third with `Cyclic -> grab c a | `Ordered -> grab a c) in
      ignore (T.wait ~thread:t1 ());
      ignore (T.wait ~thread:t2 ());
      ignore (T.wait ~thread:t3 ()))
    ~invariants:(fun () -> [])
    ()

let sc_lock_chain =
  {
    sc_name = "lock-chain";
    sc_descr = "three-lock circular order: some schedules truly deadlock";
    sc_expect_fail = true;
    sc_run = lock_chain_run ~third:`Cyclic;
  }

let sc_lock_ordered =
  {
    sc_name = "lock-ordered";
    sc_descr = "same three locks in one global order: no schedule deadlocks";
    sc_expect_fail = false;
    sc_run = lock_chain_run ~third:`Ordered;
  }

(* The SIGWAITING re-arm scenario from the chaos suite, judged as an
   explorable outcome: a chaos-EINTR'd sleep (timeout path) must re-arm
   the all-LWPs-blocked edge so it fires a second time.  Raw kernel
   code, no thread library; the schedule choices are kernel dispatch
   and wakeup order. *)
let eintr_all = { Faultgen.off with label = "eintr-all"; eintr_sleep = 1.0 }

let sc_sigwaiting_rearm =
  {
    sc_name = "sigwaiting-rearm";
    sc_descr = "timeout-EINTR re-arms the SIGWAITING all-blocked edge";
    sc_expect_fail = false;
    sc_run =
      (fun () ->
        let got_eintr = ref false in
        with_san (fun () ->
            let k = Kernel.boot ~cpus:1 ~chaos:eintr_all () in
            Thrsan.watch k;
            (* judge on the blocker's OWN edges: the global counter also
               counts the watcher's indefinite sleep firing the watcher's
               edge, which would mask a missing re-arm in the blocker *)
            Kernel.set_tracing k true;
            Kernel.set_trace_tags k (Some [ "sigwaiting" ]);
            let target_pid = ref 0 in
            let main () =
              ignore
                (Uctx.sigaction Signo.sigusr1
                   (Sysdefs.Sig_handler (fun _ -> ())));
              let b_r, _b_w = Uctx.pipe () in
              let a_r, _a_w = Uctx.pipe () in
              ignore
                (Uctx.lwp_create
                   ~entry:(fun () ->
                     Uctx.sigprocmask Sigset.Sig_block
                       (Sigset.of_list [ Signo.sigusr1 ]);
                     ignore (Uctx.read b_r ~len:1))
                   ());
              (match Uctx.syscall (Sysdefs.Sys_read (a_r, 1)) with
              | Sysdefs.R_err Errno.EINTR -> got_eintr := true
              | _ -> ());
              (* long enough for Uctx.sleep to retry: the SIGUSR1 is
                 still deliverable at sleep entry (the raw read above
                 has no checkpoint), so the first nanosleep fails on
                 the signal path (no re-arm, by design) — the retry
                 after its checkpoint is the pure timeout-EINTR whose
                 re-arm is under test *)
              Uctx.sleep (Time.ms 1);
              ignore (Uctx.syscall (Sysdefs.Sys_read (a_r, 1)))
            in
            target_pid := Kernel.spawn k ~name:"blocker" ~main;
            ignore
              (Kernel.spawn k ~name:"watcher" ~main:(fun () ->
                   Uctx.sleep (Time.ms 2);
                   Uctx.kill ~pid:!target_pid Signo.sigusr1));
            Kernel.run ~max_events:500_000 k;
            let prefix = Printf.sprintf "pid%d:" !target_pid in
            let plen = String.length prefix in
            let blocker_edges =
              List.length
                (List.filter
                   (fun r ->
                     let m = r.Sunos_sim.Tracebuf.msg in
                     String.length m >= plen && String.sub m 0 plen = prefix)
                   (Kernel.trace_records k))
            in
            if not !got_eintr then
              Explore.Fail "signal did not interrupt the pipe read"
            else if blocker_edges < 2 then
              Explore.Fail "all-blocked edge not re-armed after timeout-EINTR"
            else Explore.Pass));
  }

(* --------------------------- registry -------------------------------- *)

let all =
  [
    sc_mutex_condvar;
    sc_semaphore_handoff;
    sc_rwlock_upgrade;
    sc_robust_ownerdead;
    sc_lock_chain;
    sc_lock_ordered;
    sc_sigwaiting_rearm;
  ]

let find name = List.find_opt (fun sc -> sc.sc_name = name) all

(* --------------------------- driving --------------------------------- *)

let explore ?dpor ?max_schedules ?stop_on_first_failure ?(repro_dir = ".") sc =
  let stats =
    Explore.explore ?dpor ?max_schedules ?stop_on_first_failure sc.sc_run
  in
  (match stats.Explore.failures with
  | f :: _ when not sc.sc_expect_fail ->
      (* unexpected: leave a standalone-replayable repro behind *)
      let path =
        Filename.concat repro_dir (Explore.repro_path ~scenario:sc.sc_name)
      in
      Explore.write_repro ~path ~scenario:sc.sc_name
        ~reason:f.Explore.f_reason ~vector:f.Explore.f_vector
  | _ -> ());
  stats

let replay sc ~vector =
  let outcome, _log, diverged = Explore.run_vector ~vector sc.sc_run in
  (outcome, diverged)
