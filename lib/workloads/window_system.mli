(** The window-system workload from the paper's introduction: "a window
    system can treat each widget as a separate entity", with "one input
    handler and one output handler" per widget — thousands of mostly-idle
    threads, only a few active at any instant.

    Input events arrive from outside the process (a network channel
    standing in for the X wire); a reader thread demultiplexes them to
    the target widget's input handler, which computes and hands off to
    the widget's output handler, which renders and completes the event.

    Runs on any {!Sunos_baselines.Model.S} implementation, which is the
    point: with 2×widgets+1 threads, the M:N architecture pays a couple
    of LWPs, the 1:1 architecture pays one kernel thread per handler. *)

type params = {
  widgets : int;
  events : int;
  input_compute_us : int;  (** input-handler work per event *)
  render_compute_us : int;  (** output-handler work per event *)
  mean_interarrival_us : int;  (** Poisson arrivals *)
  seed : int64;
}

val default_params : params

type results = {
  handled : int;
  latency : Sunos_sim.Stats.Hist.t;  (** inject-to-render-complete *)
  makespan : Sunos_sim.Time.span;
  lwps_created : int;  (** kernel threads the process consumed *)
  threads_created : int;
}

val run :
  (module Sunos_baselines.Model.S) ->
  ?cpus:int ->
  ?cost:Sunos_hw.Cost_model.t ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  ?trace:bool ->
  ?debrief:(Sunos_kernel.Kernel.t -> unit) ->
  params ->
  results
(** Boots a fresh machine, runs the workload to completion.  [chaos],
    [trace] and [debrief] as in {!Net_server.run}. *)

val pp_results : Format.formatter -> results -> unit
