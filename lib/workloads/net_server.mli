(** The network-server workload from the paper's introduction, rebuilt
    as a proper event-driven server over the kernel socket subsystem.

    Two server architectures share the protocol.  The legacy server
    (the default) runs an acceptor thread, a poller thread that rebuilds
    and rescans the whole [poll] set on every wakeup — O(connections)
    per event — and a fixed worker pool fed through a mutex-protected
    queue.  With [epoll] set, the server shards into [pollers]
    independent acceptor/poller LWPs, each owning a private epoll
    instance, self-pipe and preallocated integer work ring with its
    slice of the worker pool: readiness arrives as edge-triggered
    events pushed by the kernel at state transitions, per-wakeup work
    is O(ready), per-connection state is one ONESHOT interest entry
    (no closures, threads or lists per connection), and there is no
    central lock.

    Two load generators, also sharing the protocol.  The closed-loop
    generator (default) runs a thread per connection issuing
    synchronous request/reply rounds with exponential think time —
    faithful to the paper, but its arrival rate slows with the server
    (coordinated omission).  With [open_loop] set, a single sender
    issues Poisson arrivals at a fixed offered rate onto pre-opened
    connections (compact timestamp-ring records, [max_pending] deep)
    and [pollers] reader shards collect replies via client-side epoll;
    latency is recorded in per-shard mergeable log-bucketed histograms
    ({!Sunos_sim.Histogram}).

    Each request costs parse CPU, a file read (cold every
    [disk_every]-th request, hitting the disk), reply CPU, and the
    reply write — which can block on socket backpressure when the
    client is slow.

    With [hardened] set, both sides degrade gracefully under fault
    injection ({!Sunos_sim.Faultgen}): clients bound their connect
    retries (exponential backoff with deterministic jitter), abandon a
    request past [request_deadline_us] instead of waiting forever, and
    walk away from reset connections; the server sheds load with cheap
    "busy" replies once its work queue is [shed_queue_limit] deep
    (recording each shed where /proc can see it) and retires
    connections that die mid-request.  Every request is accounted for:
    [served + shed + aborted = issued = connections * requests_per_conn]
    in every mode.

    Runs on any {!Sunos_baselines.Model.S}: M:N serves cheap concurrency
    with a few LWPs; the user-level-only model stalls the whole server
    on every cold read; 1:1 pays an LWP per thread on both sides. *)

type params = {
  connections : int;  (** concurrent client connections *)
  requests_per_conn : int;
      (** closed loop: synchronous rounds per connection; open loop:
          multiplier for the total arrival count *)
  request_bytes : int;  (** fixed request frame size *)
  reply_bytes : int;  (** fixed reply frame size *)
  parse_compute_us : int;
  reply_compute_us : int;
  think_time_us : int;  (** mean client think time between requests *)
  connect_stagger_us : int;
      (** arrival ramp: client [i] delays its connect by [i * this] *)
  compute_steps : int;
      (** compute-phase granularity: 1 charges parse/reply each as one
          span; > 1 models a tokenizing parser — the span is split into
          that many charges, each preceded by a shared stats-counter
          bump under an uncontended process mutex (cheap user-level
          sync on the hot path).  Total charged time is unchanged. *)
  work_spin : int;
      (** iterations of {e real} busy-work ({!Sunos_sim.Parexec.spin})
          behind each compute phase, offloaded to the machine's
          worker-domain pool while the simulation keeps advancing.
          0 (default): compute is purely simulated, and [compute_steps]
          applies.  The simulated schedule is bit-identical either way,
          for any domain count. *)
  disk_every : int;  (** every n-th request needs a cold file read *)
  workers : int;  (** server worker-pool size (split across shards) *)
  concurrency : int;  (** server LWP-pool hint *)
  client_concurrency : int;
      (** load-generator LWP-pool hint (0 = same as [concurrency] for
          the closed loop; readers + connectors + 2 for the open loop).
          A closed-loop client thread holds an LWP while sleeping or
          awaiting a reply, so modelling [connections] truly
          independent clients needs a pool that size. *)
  listen_backlog : int;
  hardened : bool;
      (** enable bounded retry, deadlines, shedding and abort paths;
          off (the default) reproduces the legacy workload exactly *)
  connect_retry_limit : int;
      (** hardened: connect attempts before giving up (0 = unbounded) *)
  retry_base_us : int;
      (** hardened: backoff base; attempt [n] sleeps
          [base * 2^min(n,6) + jitter(base)] *)
  request_deadline_us : int;
      (** hardened closed loop: a client abandons its connection when a
          reply misses this deadline (0 = wait forever) *)
  shed_queue_limit : int;
      (** hardened: the server sheds new requests once its dispatch
          queue (ring, per shard when [epoll]) is this deep (0 = never
          shed) *)
  epoll : bool;
      (** server uses sharded edge-triggered epoll readiness instead of
          the central poll scan; off (the default) is byte-identical to
          the legacy server *)
  pollers : int;
      (** shard count: server acceptor/poller LWPs when [epoll], and
          client reader LWPs when [open_loop] *)
  open_loop : bool;
      (** replace the closed-loop generator with Poisson arrivals at a
          fixed offered rate (client always uses epoll readers) *)
  arrival_rate_rps : float;
      (** open loop: offered request rate; 0 (default) derives the rate
          [connections / think_time] an ideal closed loop would offer *)
  max_pending : int;
      (** open loop: per-connection pipeline depth — an arrival finding
          every connection at this depth is aborted (client-side shed) *)
  drain_grace_us : int;
      (** open loop: how long after the last arrival to wait for
          straggler replies before counting them aborted *)
  connectors : int;  (** open loop: connection-establishment threads *)
  seed : int64;
}

val default_params : params

type results = {
  issued : int;  (** total requests offered: connections * requests_per_conn *)
  served : int;  (** complete replies received by clients *)
  shed : int;  (** "busy" replies: server refused the work under load *)
  aborted : int;  (** requests abandoned: reset, EOF, deadline, give-up,
                      no free pipeline slot, or lost to the drain grace *)
  gaveup : int;  (** connections never admitted within the retry bound *)
  refused : int;  (** connect refusals (each may be retried) *)
  max_concurrent : int;  (** peak simultaneously-accepted connections *)
  latency : Sunos_sim.Histogram.t;
      (** client-side request round trip (log-bucketed; per-shard
          histograms merged when [open_loop]) *)
  makespan : Sunos_sim.Time.span;
  throughput_rps : float;
  lwps_created : int;
  syscalls : int;
  epoll_stats : Sunos_kernel.Procfs.epoll_info list;
      (** per-epoll readiness counters snapshotted at teardown (server
          shards first, then client readers); [[]] when neither side
          used epoll *)
}

val run :
  (module Sunos_baselines.Model.S) ->
  ?cpus:int ->
  ?cost:Sunos_hw.Cost_model.t ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  ?domains:int ->
  ?trace:bool ->
  ?debrief:(Sunos_kernel.Kernel.t -> unit) ->
  params ->
  results
(** [chaos] selects the kernel's fault-injection profile (default: the
    [SUNOS_CHAOS] environment variable, else off).  [domains] the
    worker-domain count for offloaded compute (default [SUNOS_DOMAINS],
    else 1); the pool is joined before the results are returned.  [trace] keeps the
    kernel trace ring enabled (default false: workloads run untraced).
    [debrief] runs against the live kernel after the run, before results
    are computed — determinism tests read counters and the trace ring
    through it, and chaos runs report injected-fault counts. *)

val pp_results : Format.formatter -> results -> unit
