(** The network-server workload from the paper's introduction, rebuilt
    as a proper event-driven server over the kernel socket subsystem.

    The server process runs an acceptor thread (blocking [accept] loop),
    a poller thread that multiplexes idle connections with [poll] (plus
    a self-pipe so workers can wake it), and a fixed pool of worker
    threads.  Each request costs parse CPU, a file read (cold every
    [disk_every]-th request, hitting the disk), reply CPU, and the reply
    write — which can block on socket backpressure when the client is
    slow.  A separate load-generator process opens [connections]
    concurrent connections, each issuing [requests_per_conn] synchronous
    request/reply rounds with exponential think time; refused connects
    (backlog overflow) back off and retry.

    With [hardened] set, both sides degrade gracefully under fault
    injection ({!Sunos_sim.Faultgen}): clients bound their connect
    retries (exponential backoff with deterministic jitter), abandon a
    request past [request_deadline_us] instead of waiting forever, and
    walk away from reset connections; the server sheds load with cheap
    "busy" replies once its work queue is [shed_queue_limit] deep
    (recording each shed where /proc can see it) and retires
    connections that die mid-request.  Every request is accounted for:
    [served + shed + aborted = connections * requests_per_conn].

    Runs on any {!Sunos_baselines.Model.S}: M:N serves cheap concurrency
    with a few LWPs; the user-level-only model stalls the whole server
    on every cold read; 1:1 pays an LWP per thread on both sides. *)

type params = {
  connections : int;  (** concurrent client connections *)
  requests_per_conn : int;
  request_bytes : int;  (** fixed request frame size *)
  reply_bytes : int;  (** fixed reply frame size *)
  parse_compute_us : int;
  reply_compute_us : int;
  think_time_us : int;  (** mean client think time between requests *)
  connect_stagger_us : int;
      (** arrival ramp: client [i] delays its connect by [i * this] *)
  compute_steps : int;
      (** compute-phase granularity: 1 charges parse/reply each as one
          span; > 1 models a tokenizing parser — the span is split into
          that many charges, each preceded by a shared stats-counter
          bump under an uncontended process mutex (cheap user-level
          sync on the hot path).  Total charged time is unchanged. *)
  work_spin : int;
      (** iterations of {e real} busy-work ({!Sunos_sim.Parexec.spin})
          behind each compute phase, offloaded to the machine's
          worker-domain pool while the simulation keeps advancing.
          0 (default): compute is purely simulated, and [compute_steps]
          applies.  The simulated schedule is bit-identical either way,
          for any domain count. *)
  disk_every : int;  (** every n-th request needs a cold file read *)
  workers : int;  (** server worker-pool size *)
  concurrency : int;  (** server LWP-pool hint *)
  client_concurrency : int;
      (** load-generator LWP-pool hint (0 = same as [concurrency]).
          A client thread holds an LWP while sleeping or awaiting a
          reply, so modelling [connections] truly independent clients
          needs a pool that size. *)
  listen_backlog : int;
  hardened : bool;
      (** enable bounded retry, deadlines, shedding and abort paths;
          off (the default) reproduces the legacy workload exactly *)
  connect_retry_limit : int;
      (** hardened: connect attempts before giving up (0 = unbounded) *)
  retry_base_us : int;
      (** hardened: backoff base; attempt [n] sleeps
          [base * 2^min(n,6) + jitter(base)] *)
  request_deadline_us : int;
      (** hardened: a client abandons its connection when a reply misses
          this deadline (0 = wait forever) *)
  shed_queue_limit : int;
      (** hardened: the server sheds new requests once its dispatch
          queue is this deep (0 = never shed) *)
  seed : int64;
}

val default_params : params

type results = {
  served : int;  (** complete replies received by clients *)
  shed : int;  (** "busy" replies: server refused the work under load *)
  aborted : int;  (** requests abandoned: reset, EOF, deadline, give-up *)
  gaveup : int;  (** connections never admitted within the retry bound *)
  refused : int;  (** connect refusals (each may be retried) *)
  max_concurrent : int;  (** peak simultaneously-accepted connections *)
  latency : Sunos_sim.Stats.Hist.t;  (** client-side request round trip *)
  makespan : Sunos_sim.Time.span;
  throughput_rps : float;
  lwps_created : int;
  syscalls : int;
}

val run :
  (module Sunos_baselines.Model.S) ->
  ?cpus:int ->
  ?cost:Sunos_hw.Cost_model.t ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  ?domains:int ->
  ?trace:bool ->
  ?debrief:(Sunos_kernel.Kernel.t -> unit) ->
  params ->
  results
(** [chaos] selects the kernel's fault-injection profile (default: the
    [SUNOS_CHAOS] environment variable, else off).  [domains] the
    worker-domain count for offloaded compute (default [SUNOS_DOMAINS],
    else 1); the pool is joined before the results are returned.  [trace] keeps the
    kernel trace ring enabled (default false: workloads run untraced).
    [debrief] runs against the live kernel after the run, before results
    are computed — determinism tests read counters and the trace ring
    through it, and chaos runs report injected-fault counts. *)

val pp_results : Format.formatter -> results -> unit
