module Time = Sunos_sim.Time
module Hist = Sunos_sim.Stats.Hist
module Rng = Sunos_sim.Rng
module Shm = Sunos_hw.Shared_memory
module Parexec = Sunos_sim.Parexec
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Errno = Sunos_kernel.Errno
module Sysdefs = Sunos_kernel.Sysdefs
module Fs = Sunos_kernel.Fs

type params = {
  connections : int;
  requests_per_conn : int;
  request_bytes : int;
  reply_bytes : int;
  parse_compute_us : int;
  reply_compute_us : int;
  think_time_us : int;
  connect_stagger_us : int;
  compute_steps : int;
  work_spin : int;
      (* iterations of real busy-work ([Parexec.spin]) behind each
         compute phase, offloaded to the machine's worker-domain pool.
         0 (default): compute is purely simulated.  The simulated
         schedule is identical either way *)
  disk_every : int;
  workers : int;
  concurrency : int;
  client_concurrency : int;
  listen_backlog : int;
  hardened : bool;
  connect_retry_limit : int;
  retry_base_us : int;
  request_deadline_us : int;
  shed_queue_limit : int;
  seed : int64;
}

let default_params =
  {
    connections = 40;
    requests_per_conn = 3;
    request_bytes = 64;
    reply_bytes = 512;
    parse_compute_us = 150;
    reply_compute_us = 100;
    think_time_us = 2_000;
    connect_stagger_us = 0;
    compute_steps = 1;
    work_spin = 0;
    disk_every = 4;
    workers = 8;
    concurrency = 4;
    client_concurrency = 0;
    listen_backlog = 16;
    hardened = false;
    connect_retry_limit = 10;
    retry_base_us = 500;
    request_deadline_us = 0;
    shed_queue_limit = 0;
    seed = 31L;
  }

type results = {
  served : int;
  shed : int;
  aborted : int;
  gaveup : int;
  refused : int;
  max_concurrent : int;
  latency : Hist.t;
  makespan : Time.span;
  throughput_rps : float;
  lwps_created : int;
  syscalls : int;
}

let data_path = "/srv/data"
let service_name = "svc"

let pad msg len =
  if String.length msg >= len then String.sub msg 0 len
  else msg ^ String.make (len - String.length msg) '.'

let is_busy reply = String.length reply >= 4 && String.sub reply 0 4 = "busy"

(* A work item handed from the poller to the worker pool.  [Shed] is the
   hardened server's overload answer: the request frame is drained and a
   cheap "busy" reply sent with no parse/disk/reply work — rejection must
   cost less than service or shedding cannot shed load. *)
type job = Stop | Work of int | Shed of int

(* The server process: an acceptor thread feeds connections into a
   polled set; a poller thread multiplexes the idle connections (plus a
   self-pipe so workers can kick it) and dispatches readable ones to a
   fixed worker pool through a mutex-protected queue.  One request in
   flight per connection: a dispatched fd leaves the polled set until
   its worker has written the reply. *)
let server (module M : Sunos_baselines.Model.S) k p
    ~(note_conn : int -> unit) () =
  M.set_concurrency p.concurrency;
  let lfd = Uctx.listen ~name:service_name ~backlog:p.listen_backlog in
  let self_r, self_w = Uctx.pipe () in
  let data_fd = Uctx.open_file data_path in
  let file =
    match Fs.lookup (Kernel.fs k) data_path with
    | Some f -> f
    | None -> assert false
  in
  let mu = M.Mu.create () in
  (* Compute granularity: [compute_steps] = 1 charges each compute
     phase as one span (the original behavior).  > 1 models a
     tokenizing parser: per-chunk charges interleaved with a shared
     request-stats counter bumped under a process mutex — the paper's
     cheap uncontended user-level sync in its natural habitat.  The
     mutex only exists (and the total span is only split) when
     requested, so default runs are charge-for-charge identical. *)
  let stats_mu = if p.compute_steps > 1 then Some (M.Mu.create ()) else None in
  let stats_ops = ref 0 in
  let spin_sink = ref 0 in
  let compute_phase us =
    if p.work_spin > 0 then begin
      (* real work behind the simulated span: the thunk writes only its
         own cell; the fold into [spin_sink] happens fiber-side, after
         the await, in simulated order *)
      let cell = ref 0 in
      Uctx.offload ~cost:(Time.us us) (fun () ->
          cell := Parexec.spin ~seed:us p.work_spin);
      spin_sink := !spin_sink lxor !cell
    end
    else
    match stats_mu with
    | None -> Uctx.charge_us us
    | Some smu ->
        let steps = p.compute_steps in
        let chunk = us / steps in
        for i = 1 to steps do
          M.Mu.lock smu;
          incr stats_ops;
          M.Mu.unlock smu;
          Uctx.charge_us
            (if i = steps then us - (chunk * (steps - 1)) else chunk)
        done
  in
  ignore (stats_ops : int ref);
  ignore (spin_sink : int ref);
  let qsem = M.Sem.create 0 in
  let asem = M.Sem.create 0 in
  let workq : job Queue.t = Queue.create () in
  let polled : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let active = ref 0 and closed = ref 0 in
  let accepting = ref true in
  let accept_inflight = ref false in
  let wake_pending = ref false in
  (* Wake the poller at most once per poll cycle: set the dedup flag
     under the lock, write the self-pipe byte outside it. *)
  let signal_change mutate =
    M.Mu.lock mu;
    mutate ();
    let need_byte = not !wake_pending in
    wake_pending := true;
    M.Mu.unlock mu;
    if need_byte then ignore (Uctx.write self_w "!")
  in
  (* The acceptor never enters a blocking kernel accept: the poller
     watches the listening fd and posts [asem] when a connection is
     pending, and each credit is drained with non-blocking accepts until
     the backlog is empty.  Draining matters at scale — poll is O(fds),
     so at a thousand connections one readiness round trip per accept
     would cap the accept rate far below the arrival rate. *)
  let acceptor () =
    let taken = ref 0 in
    while !taken < p.connections do
      M.Sem.p asem;
      let rec drain () =
        if !taken < p.connections then
          match Uctx.accept_nb lfd with
          | `Conn fd ->
              incr taken;
              let last = !taken = p.connections in
              signal_change (fun () ->
                  if last then accepting := false;
                  incr active;
                  note_conn !active;
                  Hashtbl.replace polled fd ());
              drain ()
          | `Again -> ()
          | `Aborted ->
              (* listener torn down under us: no more connections will
                 ever arrive, stop asking *)
              taken := p.connections
      in
      drain ();
      signal_change (fun () -> accept_inflight := false)
    done;
    Uctx.close lfd
  in
  let nreq = ref 0 in
  let worker () =
    (* a connection that died under us (client gone, mid-stream reset)
       is retired exactly like an orderly close: the other connections'
       service must not depend on this one's fate *)
    let retire fd =
      Uctx.close fd;
      signal_change (fun () ->
          decr active;
          incr closed)
    in
    let read_frame fd =
      let first = Uctx.read fd ~len:p.request_bytes in
      if first = "" then None
      else begin
        (* delivery may have split the frame: finish it *)
        let got = String.length first in
        if got < p.request_bytes then
          ignore (Uctx.read_exact fd ~len:(p.request_bytes - got));
        Some ()
      end
    in
    let serve fd =
      match read_frame fd with
      | None -> retire fd (* client closed: retire the connection *)
      | Some () ->
          compute_phase p.parse_compute_us;
          incr nreq;
          let off = !nreq * 512 mod 65536 in
          if p.disk_every > 0 && !nreq mod p.disk_every = 0 then
            (* cold read: evict the page so the disk path is real *)
            Shm.evict (Fs.segment file)
              ~page:(Shm.page_of_offset ~offset:off);
          Uctx.lseek data_fd off;
          ignore (Uctx.read data_fd ~len:512);
          compute_phase p.reply_compute_us;
          Uctx.write_all fd (pad "done" p.reply_bytes);
          signal_change (fun () -> Hashtbl.replace polled fd ())
    in
    let shed fd =
      match read_frame fd with
      | None -> retire fd
      | Some () ->
          (* overload: drain the frame, record the shed where /proc can
             see it, answer "busy" — no parse, no disk, no reply work *)
          Uctx.note_shed ();
          Uctx.write_all fd (pad "busy" p.reply_bytes);
          signal_change (fun () -> Hashtbl.replace polled fd ())
    in
    let rec loop () =
      M.Sem.p qsem;
      M.Mu.lock mu;
      let job = Queue.pop workq in
      M.Mu.unlock mu;
      match job with
      | Stop -> ()
      | Work fd ->
          (try serve fd
           with Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _) ->
             retire fd);
          loop ()
      | Shed fd ->
          (try shed fd
           with Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _) ->
             retire fd);
          loop ()
    in
    loop ()
  in
  let poller () =
    let rec loop () =
      M.Mu.lock mu;
      wake_pending := false;
      let base =
        (* watch the listening fd while the acceptor is idle and still
           has connections to take; an un-polled listening fd would
           strand pending connections on a single-LWP server *)
        if !accepting && not !accept_inflight then
          [
            { Sysdefs.pfd = self_r; want_in = true; want_out = false };
            { Sysdefs.pfd = lfd; want_in = true; want_out = false };
          ]
        else [ { Sysdefs.pfd = self_r; want_in = true; want_out = false } ]
      in
      let fds =
        Hashtbl.fold
          (fun fd () acc ->
            { Sysdefs.pfd = fd; want_in = true; want_out = false } :: acc)
          polled base
      in
      let finished = !closed = p.connections in
      M.Mu.unlock mu;
      if not finished then begin
        let ready = Uctx.poll fds in
        if List.mem self_r ready then ignore (Uctx.read self_r ~len:4096);
        M.Mu.lock mu;
        let do_accept =
          !accepting && (not !accept_inflight) && List.mem lfd ready
        in
        if do_accept then accept_inflight := true;
        let dispatched =
          List.filter (fun fd -> fd <> self_r && Hashtbl.mem polled fd) ready
        in
        List.iter
          (fun fd ->
            Hashtbl.remove polled fd;
            (* load shedding decides at dispatch time: a queue already
               [shed_queue_limit] deep means the workers are behind by a
               full burst — adding real work would only grow the backlog
               the clients are already timing out on *)
            if
              p.hardened && p.shed_queue_limit > 0
              && Queue.length workq >= p.shed_queue_limit
            then Queue.add (Shed fd) workq
            else Queue.add (Work fd) workq)
          dispatched;
        M.Mu.unlock mu;
        if do_accept then M.Sem.v asem;
        List.iter (fun _ -> M.Sem.v qsem) dispatched;
        (* let the workers drain before re-polling — on a single-LWP
           model the poll below would otherwise block the whole process
           while work sits in the queue *)
        M.yield ();
        loop ()
      end
    in
    loop ();
    M.Mu.lock mu;
    for _ = 1 to p.workers do
      Queue.add Stop workq
    done;
    M.Mu.unlock mu;
    for _ = 1 to p.workers do
      M.Sem.v qsem
    done;
    Uctx.close self_r;
    Uctx.close self_w
  in
  let threads =
    M.spawn acceptor :: M.spawn poller
    :: List.init p.workers (fun _ -> M.spawn worker)
  in
  List.iter M.join threads

exception Conn_dead

(* Hardened reply read: poll with the remaining budget, then drain
   non-blockingly.  Returning a short string signals the deadline (or
   EOF) to the caller, which abandons the connection — a client that
   waits forever on a struggling server is how one overload becomes a
   whole-fleet overload. *)
let deadline_read fd ~len ~deadline =
  let buf = Buffer.create len in
  let rec go () =
    if Buffer.length buf >= len then Buffer.contents buf
    else
      let now = Uctx.gettime () in
      if Time.(now >= deadline) then Buffer.contents buf
      else
        let ready =
          Uctx.poll
            ~timeout:(Time.diff deadline now)
            [ { Sysdefs.pfd = fd; want_in = true; want_out = false } ]
        in
        if ready = [] then Buffer.contents buf (* timed out *)
        else
          match Uctx.try_read fd ~len:(len - Buffer.length buf) with
          | `Data s ->
              Buffer.add_string buf s;
              go ()
          | `Again -> go () (* spurious not-ready: re-poll *)
          | `Eof -> Buffer.contents buf
          | `Reset -> raise (Errno.Unix_error (Errno.ECONNRESET, "read"))
  in
  go ()

(* The load generator: one client thread per connection, each running a
   synchronous request/reply loop with exponential think time.  A
   refused connect (no listener yet, or backlog full) backs off and
   retries, so the arrival process adapts to the server exactly the way
   a real client's SYN retransmit does.  In hardened mode the retry is
   bounded with exponential backoff plus deterministic jitter, replies
   carry a per-request deadline, and a dead connection aborts its
   remaining requests instead of hanging the thread. *)
let client (module M : Sunos_baselines.Model.S) p ~latency ~served ~shed
    ~aborted ~gaveup ~refused () =
  (* every client thread holds an LWP while it sleeps or awaits a reply,
     so modelling [connections] independent clients needs a pool that
     size — otherwise the load generator, not the server, is the
     bottleneck *)
  M.set_concurrency
    (if p.client_concurrency > 0 then p.client_concurrency
     else p.concurrency);
  (* legacy SYN-retransmit: fixed 2ms pause, retry forever *)
  let rec connect_forever () =
    match Uctx.connect service_name with
    | fd -> fd
    | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
        incr refused;
        Uctx.sleep (Time.ms 2);
        connect_forever ()
  in
  let one cid () =
    let rng =
      Rng.create ~seed:(Int64.add p.seed (Int64.of_int (7919 * cid)))
    in
    (* arrival ramp: spreading connects keeps the backlog (and the
       retry traffic) from swamping admission at time zero *)
    if p.connect_stagger_us > 0 then
      Uctx.sleep (Time.us (p.connect_stagger_us * (cid - 1)));
    let rec connect_bounded attempt =
      match Uctx.connect service_name with
      | fd -> Some fd
      | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
          incr refused;
          if p.connect_retry_limit > 0 && attempt >= p.connect_retry_limit
          then begin
            incr gaveup;
            None
          end
          else begin
            (* exponential backoff, capped at 64x the base, plus
               deterministic jitter from the client's own stream so
               synchronized refusals decorrelate without forking the
               run's determinism *)
            let base = max 1 p.retry_base_us in
            let backoff = base * (1 lsl min attempt 6) in
            Uctx.sleep (Time.us (backoff + Rng.int rng base));
            connect_bounded (attempt + 1)
          end
    in
    let conn =
      if p.hardened then connect_bounded 0 else Some (connect_forever ())
    in
    match conn with
    | None ->
        (* never admitted: every request of this connection is abandoned *)
        aborted := !aborted + p.requests_per_conn
    | Some fd -> (
        let done_reqs = ref 0 in
        try
          for r = 1 to p.requests_per_conn do
            if p.think_time_us > 0 then
              Uctx.sleep
                (Time.us_f
                   (Rng.exponential rng
                      ~mean:(float_of_int p.think_time_us)));
            let t0 = Uctx.gettime () in
            Uctx.write_all fd
              (pad (Printf.sprintf "r%d.%d" cid r) p.request_bytes);
            let reply =
              if p.hardened && p.request_deadline_us > 0 then
                deadline_read fd ~len:p.reply_bytes
                  ~deadline:(Time.add t0 (Time.us p.request_deadline_us))
              else Uctx.read_exact fd ~len:p.reply_bytes
            in
            if String.length reply = p.reply_bytes then begin
              if is_busy reply then incr shed
              else begin
                Hist.add latency (Time.diff (Uctx.gettime ()) t0);
                incr served
              end;
              incr done_reqs
            end
            else if p.hardened then
              (* deadline expired or EOF mid-frame: walk away *)
              raise Conn_dead
          done;
          Uctx.close fd
        with
        | Conn_dead | Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _)
        ->
          aborted := !aborted + (p.requests_per_conn - !done_reqs);
          Uctx.close fd)
  in
  let ts = List.init p.connections (fun cid -> M.spawn (one (cid + 1))) in
  List.iter M.join ts;
  (* Abandoned slots would strand the server: its accept loop expects
     [connections] arrivals.  Drain them with bare connect/close pairs
     (unbounded retry — the load is gone, admission is a matter of time)
     so the server observes every slot and can terminate. *)
  for _ = 1 to !gaveup do
    let fd = connect_forever () in
    Uctx.close fd
  done

let run (module M : Sunos_baselines.Model.S) ?(cpus = 1) ?cost ?chaos
    ?domains ?(trace = false) ?debrief p =
  let k = Kernel.boot ~cpus ?cost ?chaos ?domains () in
  if not trace then Kernel.set_tracing k false;
  (match Fs.create_file (Kernel.fs k) ~path:data_path () with
  | Ok f ->
      ignore (Fs.write f ~pos:0 (String.make 65536 's'));
      Shm.evict_all (Fs.segment f)
  | Error _ -> invalid_arg "Net_server.run: setup failed");
  let latency = Hist.create "request latency" in
  let served = ref 0 and refused = ref 0 in
  let shed = ref 0 and aborted = ref 0 and gaveup = ref 0 in
  let max_concurrent = ref 0 in
  let makespan = ref Time.zero in
  let note_conn n = if n > !max_concurrent then max_concurrent := n in
  let finishing body () =
    body ();
    let t = Uctx.gettime () in
    if Time.(t > !makespan) then makespan := t
  in
  ignore
    (Kernel.spawn k ~name:"net-server"
       ~main:(M.boot ?cost (finishing (server (module M) k p ~note_conn))));
  ignore
    (Kernel.spawn k ~name:"loadgen"
       ~main:
         (M.boot ?cost
            (finishing
               (client (module M) p ~latency ~served ~shed ~aborted ~gaveup
                  ~refused))));
  Kernel.run k;
  (* [debrief] runs against the still-live kernel: determinism tests read
     counters and the trace ring before the results are boxed up *)
  (match debrief with Some f -> f k | None -> ());
  Kernel.shutdown k;
  {
    served = !served;
    shed = !shed;
    aborted = !aborted;
    gaveup = !gaveup;
    refused = !refused;
    max_concurrent = !max_concurrent;
    latency;
    makespan = !makespan;
    throughput_rps =
      (if Time.(!makespan > 0L) then
         float_of_int !served /. Time.to_s !makespan
       else 0.);
    lwps_created = Kernel.lwp_create_count k;
    syscalls = Kernel.syscall_count k;
  }

let pp_results ppf r =
  Format.fprintf ppf
    "served=%d refused=%d peak_conns=%d makespan=%a throughput=%.0f req/s \
     lwps=%d latency: %a"
    r.served r.refused r.max_concurrent Time.pp r.makespan r.throughput_rps
    r.lwps_created Hist.pp_summary r.latency;
  if r.shed > 0 || r.aborted > 0 || r.gaveup > 0 then
    Format.fprintf ppf " shed=%d aborted=%d gaveup=%d" r.shed r.aborted
      r.gaveup
