module Time = Sunos_sim.Time
module Histo = Sunos_sim.Histogram
module Rng = Sunos_sim.Rng
module Shm = Sunos_hw.Shared_memory
module Parexec = Sunos_sim.Parexec
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Errno = Sunos_kernel.Errno
module Sysdefs = Sunos_kernel.Sysdefs
module Procfs = Sunos_kernel.Procfs
module Fs = Sunos_kernel.Fs

type params = {
  connections : int;
  requests_per_conn : int;
  request_bytes : int;
  reply_bytes : int;
  parse_compute_us : int;
  reply_compute_us : int;
  think_time_us : int;
  connect_stagger_us : int;
  compute_steps : int;
  work_spin : int;
      (* iterations of real busy-work ([Parexec.spin]) behind each
         compute phase, offloaded to the machine's worker-domain pool.
         0 (default): compute is purely simulated.  The simulated
         schedule is identical either way *)
  disk_every : int;
  workers : int;
  concurrency : int;
  client_concurrency : int;
  listen_backlog : int;
  hardened : bool;
  connect_retry_limit : int;
  retry_base_us : int;
  request_deadline_us : int;
  shed_queue_limit : int;
  epoll : bool;
  pollers : int;
  open_loop : bool;
  arrival_rate_rps : float;
  max_pending : int;
  drain_grace_us : int;
  connectors : int;
  seed : int64;
}

let default_params =
  {
    connections = 40;
    requests_per_conn = 3;
    request_bytes = 64;
    reply_bytes = 512;
    parse_compute_us = 150;
    reply_compute_us = 100;
    think_time_us = 2_000;
    connect_stagger_us = 0;
    compute_steps = 1;
    work_spin = 0;
    disk_every = 4;
    workers = 8;
    concurrency = 4;
    client_concurrency = 0;
    listen_backlog = 16;
    hardened = false;
    connect_retry_limit = 10;
    retry_base_us = 500;
    request_deadline_us = 0;
    shed_queue_limit = 0;
    epoll = false;
    pollers = 1;
    open_loop = false;
    arrival_rate_rps = 0.;
    max_pending = 4;
    drain_grace_us = 200_000;
    connectors = 4;
    seed = 31L;
  }

type results = {
  issued : int;
  served : int;
  shed : int;
  aborted : int;
  gaveup : int;
  refused : int;
  max_concurrent : int;
  latency : Histo.t;
  makespan : Time.span;
  throughput_rps : float;
  lwps_created : int;
  syscalls : int;
  epoll_stats : Procfs.epoll_info list;
}

let data_path = "/srv/data"
let service_name = "svc"

(* epoll_wait / dispatch batch size: bounds the per-wakeup work on both
   sides to O(min(ready, batch)), never O(connections) *)
let poll_batch = 64

let pad msg len =
  if String.length msg >= len then String.sub msg 0 len
  else msg ^ String.make (len - String.length msg) '.'

let is_busy reply = String.length reply >= 4 && String.sub reply 0 4 = "busy"

(* A work item handed from the poller to the worker pool.  [Shed] is the
   hardened server's overload answer: the request frame is drained and a
   cheap "busy" reply sent with no parse/disk/reply work — rejection must
   cost less than service or shedding cannot shed load. *)
type job = Stop | Work of int | Shed of int

(* The legacy server process: an acceptor thread feeds connections into
   a polled set; a poller thread multiplexes the idle connections (plus
   a self-pipe so workers can kick it) and dispatches readable ones to a
   fixed worker pool through a mutex-protected queue.  One request in
   flight per connection: a dispatched fd leaves the polled set until
   its worker has written the reply.  Every wakeup rebuilds and rescans
   the whole polled set — O(connections) per event, which is what the
   epoll server below exists to avoid. *)
let server (module M : Sunos_baselines.Model.S) k p
    ~(note_conn : int -> unit) () =
  M.set_concurrency p.concurrency;
  let lfd = Uctx.listen ~name:service_name ~backlog:p.listen_backlog in
  let self_r, self_w = Uctx.pipe () in
  let data_fd = Uctx.open_file data_path in
  let file =
    match Fs.lookup (Kernel.fs k) data_path with
    | Some f -> f
    | None -> assert false
  in
  let mu = M.Mu.create () in
  (* Compute granularity: [compute_steps] = 1 charges each compute
     phase as one span (the original behavior).  > 1 models a
     tokenizing parser: per-chunk charges interleaved with a shared
     request-stats counter bumped under a process mutex — the paper's
     cheap uncontended user-level sync in its natural habitat.  The
     mutex only exists (and the total span is only split) when
     requested, so default runs are charge-for-charge identical. *)
  let stats_mu = if p.compute_steps > 1 then Some (M.Mu.create ()) else None in
  let stats_ops = ref 0 in
  let spin_sink = ref 0 in
  let compute_phase us =
    if p.work_spin > 0 then begin
      (* real work behind the simulated span: the thunk writes only its
         own cell; the fold into [spin_sink] happens fiber-side, after
         the await, in simulated order *)
      let cell = ref 0 in
      Uctx.offload ~cost:(Time.us us) (fun () ->
          cell := Parexec.spin ~seed:us p.work_spin);
      spin_sink := !spin_sink lxor !cell
    end
    else
    match stats_mu with
    | None -> Uctx.charge_us us
    | Some smu ->
        let steps = p.compute_steps in
        let chunk = us / steps in
        for i = 1 to steps do
          M.Mu.lock smu;
          incr stats_ops;
          M.Mu.unlock smu;
          Uctx.charge_us
            (if i = steps then us - (chunk * (steps - 1)) else chunk)
        done
  in
  ignore (stats_ops : int ref);
  ignore (spin_sink : int ref);
  let qsem = M.Sem.create 0 in
  let asem = M.Sem.create 0 in
  let workq : job Queue.t = Queue.create () in
  let polled : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let active = ref 0 and closed = ref 0 in
  let accepting = ref true in
  let accept_inflight = ref false in
  let wake_pending = ref false in
  (* Wake the poller at most once per poll cycle: set the dedup flag
     under the lock, write the self-pipe byte outside it. *)
  let signal_change mutate =
    M.Mu.lock mu;
    mutate ();
    let need_byte = not !wake_pending in
    wake_pending := true;
    M.Mu.unlock mu;
    if need_byte then ignore (Uctx.write self_w "!")
  in
  (* The acceptor never enters a blocking kernel accept: the poller
     watches the listening fd and posts [asem] when a connection is
     pending, and each credit is drained with non-blocking accepts until
     the backlog is empty.  Draining matters at scale — poll is O(fds),
     so at a thousand connections one readiness round trip per accept
     would cap the accept rate far below the arrival rate. *)
  let acceptor () =
    let taken = ref 0 in
    while !taken < p.connections do
      M.Sem.p asem;
      let rec drain () =
        if !taken < p.connections then
          match Uctx.accept_nb lfd with
          | `Conn fd ->
              incr taken;
              let last = !taken = p.connections in
              signal_change (fun () ->
                  if last then accepting := false;
                  incr active;
                  note_conn !active;
                  Hashtbl.replace polled fd ());
              drain ()
          | `Again -> ()
          | `Aborted ->
              (* listener torn down under us: no more connections will
                 ever arrive, stop asking *)
              taken := p.connections
      in
      drain ();
      signal_change (fun () -> accept_inflight := false)
    done;
    Uctx.close lfd
  in
  let nreq = ref 0 in
  let worker () =
    (* a connection that died under us (client gone, mid-stream reset)
       is retired exactly like an orderly close: the other connections'
       service must not depend on this one's fate *)
    let retire fd =
      Uctx.close fd;
      signal_change (fun () ->
          decr active;
          incr closed)
    in
    let read_frame fd =
      let first = Uctx.read fd ~len:p.request_bytes in
      if first = "" then None
      else begin
        (* delivery may have split the frame: finish it *)
        let got = String.length first in
        if got < p.request_bytes then
          ignore (Uctx.read_exact fd ~len:(p.request_bytes - got));
        Some ()
      end
    in
    let serve fd =
      match read_frame fd with
      | None -> retire fd (* client closed: retire the connection *)
      | Some () ->
          compute_phase p.parse_compute_us;
          incr nreq;
          let off = !nreq * 512 mod 65536 in
          if p.disk_every > 0 && !nreq mod p.disk_every = 0 then
            (* cold read: evict the page so the disk path is real *)
            Shm.evict (Fs.segment file)
              ~page:(Shm.page_of_offset ~offset:off);
          Uctx.lseek data_fd off;
          ignore (Uctx.read data_fd ~len:512);
          compute_phase p.reply_compute_us;
          Uctx.write_all fd (pad "done" p.reply_bytes);
          signal_change (fun () -> Hashtbl.replace polled fd ())
    in
    let shed fd =
      match read_frame fd with
      | None -> retire fd
      | Some () ->
          (* overload: drain the frame, record the shed where /proc can
             see it, answer "busy" — no parse, no disk, no reply work *)
          Uctx.note_shed ();
          Uctx.write_all fd (pad "busy" p.reply_bytes);
          signal_change (fun () -> Hashtbl.replace polled fd ())
    in
    let rec loop () =
      M.Sem.p qsem;
      M.Mu.lock mu;
      let job = Queue.pop workq in
      M.Mu.unlock mu;
      match job with
      | Stop -> ()
      | Work fd ->
          (try serve fd
           with Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _) ->
             retire fd);
          loop ()
      | Shed fd ->
          (try shed fd
           with Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _) ->
             retire fd);
          loop ()
    in
    loop ()
  in
  let poller () =
    let rec loop () =
      M.Mu.lock mu;
      wake_pending := false;
      let base =
        (* watch the listening fd while the acceptor is idle and still
           has connections to take; an un-polled listening fd would
           strand pending connections on a single-LWP server *)
        if !accepting && not !accept_inflight then
          [
            { Sysdefs.pfd = self_r; want_in = true; want_out = false };
            { Sysdefs.pfd = lfd; want_in = true; want_out = false };
          ]
        else [ { Sysdefs.pfd = self_r; want_in = true; want_out = false } ]
      in
      let fds =
        Hashtbl.fold
          (fun fd () acc ->
            { Sysdefs.pfd = fd; want_in = true; want_out = false } :: acc)
          polled base
      in
      let finished = !closed = p.connections in
      M.Mu.unlock mu;
      if not finished then begin
        let ready = Uctx.poll fds in
        if List.mem self_r ready then ignore (Uctx.read self_r ~len:4096);
        M.Mu.lock mu;
        let do_accept =
          !accepting && (not !accept_inflight) && List.mem lfd ready
        in
        if do_accept then accept_inflight := true;
        let dispatched =
          List.filter (fun fd -> fd <> self_r && Hashtbl.mem polled fd) ready
        in
        List.iter
          (fun fd ->
            Hashtbl.remove polled fd;
            (* load shedding decides at dispatch time: a queue already
               [shed_queue_limit] deep means the workers are behind by a
               full burst — adding real work would only grow the backlog
               the clients are already timing out on *)
            if
              p.hardened && p.shed_queue_limit > 0
              && Queue.length workq >= p.shed_queue_limit
            then Queue.add (Shed fd) workq
            else Queue.add (Work fd) workq)
          dispatched;
        M.Mu.unlock mu;
        if do_accept then M.Sem.v asem;
        List.iter (fun _ -> M.Sem.v qsem) dispatched;
        (* let the workers drain before re-polling — on a single-LWP
           model the poll below would otherwise block the whole process
           while work sits in the queue *)
        M.yield ();
        loop ()
      end
    in
    loop ();
    M.Mu.lock mu;
    for _ = 1 to p.workers do
      Queue.add Stop workq
    done;
    M.Mu.unlock mu;
    for _ = 1 to p.workers do
      M.Sem.v qsem
    done;
    Uctx.close self_r;
    Uctx.close self_w
  in
  let threads =
    M.spawn acceptor :: M.spawn poller
    :: List.init p.workers (fun _ -> M.spawn worker)
  in
  List.iter M.join threads

(* --- the C100k epoll server ------------------------------------------- *)

(* Sharded, edge-triggered server: [pollers] shards, each owning its own
   epoll instance, self-pipe and preallocated integer work ring, with a
   private slice of the worker pool.  There is no central lock and no
   per-wakeup O(connections) scan: readiness arrives as edges pushed by
   the kernel at state transitions, epoll_wait returns only ready fds,
   and per-connection state is a ONESHOT interest entry plus the ring
   slot — no closures, thread stacks or lists per connection.

   Dispatch protocol: every shard registers the listening fd in its
   epoll (a shared-backlog accept spreads connections across shards);
   accepted fds join the accepting shard with a ONESHOT interest.  The
   poller encodes jobs as ints in the ring — [fd+1] serve, [-(fd+1)]
   shed, [0] stop — so dispatch allocates nothing.  A worker drains the
   connection to EAGAIN (serving every complete frame behind one edge),
   then re-arms with epoll_mod; the kernel re-checks readiness at re-arm
   time, so a frame that landed while the entry was disarmed is never
   lost.  Global accounting (accepted/closed) is touched once per
   connection lifetime, never per event. *)

let server_epoll (module M : Sunos_baselines.Model.S) k p
    ~(note_conn : int -> unit)
    ~(epoll_stats : Procfs.epoll_info list ref) () =
  M.set_concurrency p.concurrency;
  let shards = max 1 p.pollers in
  let wps = max 1 (p.workers / shards) in
  let lfd = Uctx.listen ~name:service_name ~backlog:p.listen_backlog in
  let data_fd = Uctx.open_file data_path in
  let file =
    match Fs.lookup (Kernel.fs k) data_path with
    | Some f -> f
    | None -> assert false
  in
  (* replies are constant: build each once, not per request *)
  let reply_done = pad "done" p.reply_bytes in
  let reply_busy = pad "busy" p.reply_bytes in
  let stats_mu = if p.compute_steps > 1 then Some (M.Mu.create ()) else None in
  let stats_ops = ref 0 in
  let spin_sink = ref 0 in
  let compute_phase us =
    if p.work_spin > 0 then begin
      let cell = ref 0 in
      Uctx.offload ~cost:(Time.us us) (fun () ->
          cell := Parexec.spin ~seed:us p.work_spin);
      spin_sink := !spin_sink lxor !cell
    end
    else
    match stats_mu with
    | None -> Uctx.charge_us us
    | Some smu ->
        let steps = p.compute_steps in
        let chunk = us / steps in
        for i = 1 to steps do
          M.Mu.lock smu;
          incr stats_ops;
          M.Mu.unlock smu;
          Uctx.charge_us
            (if i = steps then us - (chunk * (steps - 1)) else chunk)
        done
  in
  ignore (stats_ops : int ref);
  ignore (spin_sink : int ref);
  (* global accounting: one lock, touched at accept and retire only *)
  let gmu = M.Mu.create () in
  let taken = ref 0 and closed = ref 0 in
  let accepting = ref true in
  let all_done = ref false in
  if p.connections = 0 then begin
    accepting := false;
    all_done := true
  end;
  (* per-shard machinery *)
  let ring_cap = p.connections + wps + 4 in
  let rings = Array.init shards (fun _ -> Array.make ring_cap 0) in
  let heads = Array.make shards 0 in
  let tails = Array.make shards 0 in
  let mus = Array.init shards (fun _ -> M.Mu.create ()) in
  let qsems = Array.init shards (fun _ -> M.Sem.create 0) in
  let epfds = Array.init shards (fun _ -> Uctx.epoll_create ()) in
  let self_r = Array.make shards (-1) in
  let self_w = Array.make shards (-1) in
  for s = 0 to shards - 1 do
    let r, w = Uctx.pipe () in
    self_r.(s) <- r;
    self_w.(s) <- w;
    Uctx.epoll_add epfds.(s) r ~want_in:true ();
    Uctx.epoll_add epfds.(s) lfd ~want_in:true ()
  done;
  let kick_all () = Array.iter (fun w -> ignore (Uctx.write w "!")) self_w in
  let finish_check () =
    M.Mu.lock gmu;
    let fin =
      (not !accepting) && !closed >= p.connections && not !all_done
    in
    if fin then all_done := true;
    M.Mu.unlock gmu;
    if fin then kick_all ()
  in
  let tolerant_del s fd =
    try Uctx.epoll_del epfds.(s) fd
    with Errno.Unix_error ((Errno.ENOENT | Errno.EBADF), _) -> ()
  in
  let retire s fd =
    tolerant_del s fd;
    Uctx.close fd;
    M.Mu.lock gmu;
    incr closed;
    M.Mu.unlock gmu;
    finish_check ()
  in
  let worker s () =
    let rearm fd =
      try Uctx.epoll_mod epfds.(s) fd ~want_in:true ~oneshot:true ()
      with Errno.Unix_error ((Errno.ENOENT | Errno.EBADF), _) -> ()
    in
    (* per-worker request counter: the disk cadence needs no shared
       state on the hot path *)
    let nreq = ref 0 in
    let serve_frames fd =
      (* edge-triggered contract: drain every complete frame behind this
         edge, then re-arm.  Spurious readiness (chaos EAGAIN, a stale
         edge) simply re-arms. *)
      let rec go () =
        match Uctx.try_read fd ~len:p.request_bytes with
        | `Again -> rearm fd
        | `Eof | `Reset -> retire s fd
        | `Data first ->
            let got = String.length first in
            if got < p.request_bytes then
              ignore (Uctx.read_exact fd ~len:(p.request_bytes - got));
            compute_phase p.parse_compute_us;
            incr nreq;
            let off = !nreq * 512 mod 65536 in
            if p.disk_every > 0 && !nreq mod p.disk_every = 0 then
              Shm.evict (Fs.segment file)
                ~page:(Shm.page_of_offset ~offset:off);
            Uctx.lseek data_fd off;
            ignore (Uctx.read data_fd ~len:512);
            compute_phase p.reply_compute_us;
            Uctx.write_all fd reply_done;
            go ()
      in
      go ()
    in
    let shed_frames fd =
      let rec go () =
        match Uctx.try_read fd ~len:p.request_bytes with
        | `Again -> rearm fd
        | `Eof | `Reset -> retire s fd
        | `Data first ->
            let got = String.length first in
            if got < p.request_bytes then
              ignore (Uctx.read_exact fd ~len:(p.request_bytes - got));
            Uctx.note_shed ();
            Uctx.write_all fd reply_busy;
            go ()
      in
      go ()
    in
    let rec loop () =
      M.Sem.p qsems.(s);
      M.Mu.lock mus.(s);
      let v = rings.(s).(heads.(s) mod ring_cap) in
      heads.(s) <- heads.(s) + 1;
      M.Mu.unlock mus.(s);
      if v <> 0 then begin
        let fd = abs v - 1 in
        (try if v > 0 then serve_frames fd else shed_frames fd
         with Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _) ->
           retire s fd);
        loop ()
      end
    in
    loop ()
  in
  let poller s () =
    let accepting_here = ref true in
    let accept_drain () =
      let continue = ref true in
      while !continue do
        match Uctx.accept_nb lfd with
        | `Conn fd ->
            Uctx.epoll_add epfds.(s) fd ~want_in:true ~oneshot:true ();
            M.Mu.lock gmu;
            incr taken;
            let last = !taken >= p.connections in
            if last then accepting := false;
            let act = !taken - !closed in
            M.Mu.unlock gmu;
            note_conn act;
            if last then begin
              accepting_here := false;
              (* the shard that takes the last slot closes the listener;
                 the other shards observe EBADF/`Aborted and stand down,
                 and their stale interest entries are collected by the
                 kernel at the next epoll_wait *)
              (try Uctx.close lfd
               with Errno.Unix_error (Errno.EBADF, _) -> ());
              continue := false
            end
        | `Again -> continue := false
        | `Aborted ->
            accepting_here := false;
            continue := false
        | exception Errno.Unix_error (Errno.EBADF, _) ->
            accepting_here := false;
            continue := false
      done
    in
    let rec ploop () =
      if not !all_done then begin
        let ready = Uctx.epoll_wait epfds.(s) ~max_events:poll_batch in
        let dispatched = ref 0 in
        List.iter
          (fun fd ->
            if fd = self_r.(s) then
              (* a kick byte is guaranteed present behind the edge: only
                 this poller drains its own self-pipe *)
              ignore (Uctx.read self_r.(s) ~len:64)
            else if fd = lfd then begin
              if !accepting_here then accept_drain ()
            end
            else begin
              M.Mu.lock mus.(s);
              let depth = tails.(s) - heads.(s) in
              let v =
                if
                  p.hardened && p.shed_queue_limit > 0
                  && depth >= p.shed_queue_limit
                then -(fd + 1)
                else fd + 1
              in
              rings.(s).(tails.(s) mod ring_cap) <- v;
              tails.(s) <- tails.(s) + 1;
              M.Mu.unlock mus.(s);
              incr dispatched
            end)
          ready;
        for _ = 1 to !dispatched do
          M.Sem.v qsems.(s)
        done;
        M.yield ();
        ploop ()
      end
    in
    ploop ();
    M.Mu.lock mus.(s);
    for _ = 1 to wps do
      rings.(s).(tails.(s) mod ring_cap) <- 0;
      tails.(s) <- tails.(s) + 1
    done;
    M.Mu.unlock mus.(s);
    for _ = 1 to wps do
      M.Sem.v qsems.(s)
    done
  in
  let pollers_t = List.init shards (fun s -> M.spawn (poller s)) in
  let workers_t =
    List.concat
      (List.init shards (fun s ->
           List.init wps (fun _ -> M.spawn (worker s))))
  in
  List.iter M.join pollers_t;
  List.iter M.join workers_t;
  (* debrief: snapshot this process's epoll counters before teardown
     (process exit clears the fd table, so post-run /proc shows nothing) *)
  let me = Uctx.getpid () in
  epoll_stats :=
    !epoll_stats
    @ List.filter (fun e -> e.Procfs.ei_pid = me) (Procfs.epolls k);
  Array.iter Uctx.close epfds;
  Array.iter Uctx.close self_r;
  Array.iter Uctx.close self_w

exception Conn_dead

(* Hardened reply read: poll with the remaining budget, then drain
   non-blockingly.  Returning a short string signals the deadline (or
   EOF) to the caller, which abandons the connection — a client that
   waits forever on a struggling server is how one overload becomes a
   whole-fleet overload. *)
let deadline_read fd ~len ~deadline =
  let buf = Buffer.create len in
  let rec go () =
    if Buffer.length buf >= len then Buffer.contents buf
    else
      let now = Uctx.gettime () in
      if Time.(now >= deadline) then Buffer.contents buf
      else
        let ready =
          Uctx.poll
            ~timeout:(Time.diff deadline now)
            [ { Sysdefs.pfd = fd; want_in = true; want_out = false } ]
        in
        if ready = [] then Buffer.contents buf (* timed out *)
        else
          match Uctx.try_read fd ~len:(len - Buffer.length buf) with
          | `Data s ->
              Buffer.add_string buf s;
              go ()
          | `Again -> go () (* spurious not-ready: re-poll *)
          | `Eof -> Buffer.contents buf
          | `Reset -> raise (Errno.Unix_error (Errno.ECONNRESET, "read"))
  in
  go ()

(* The closed-loop load generator: one client thread per connection,
   each running a synchronous request/reply loop with exponential think
   time.  A refused connect (no listener yet, or backlog full) backs off
   and retries, so the arrival process adapts to the server exactly the
   way a real client's SYN retransmit does.  In hardened mode the retry
   is bounded with exponential backoff plus deterministic jitter,
   replies carry a per-request deadline, and a dead connection aborts
   its remaining requests instead of hanging the thread. *)
let client (module M : Sunos_baselines.Model.S) p ~latency ~served ~shed
    ~aborted ~gaveup ~refused () =
  (* every client thread holds an LWP while it sleeps or awaits a reply,
     so modelling [connections] independent clients needs a pool that
     size — otherwise the load generator, not the server, is the
     bottleneck *)
  M.set_concurrency
    (if p.client_concurrency > 0 then p.client_concurrency
     else p.concurrency);
  (* legacy SYN-retransmit: fixed 2ms pause, retry forever *)
  let rec connect_forever () =
    match Uctx.connect service_name with
    | fd -> fd
    | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
        incr refused;
        Uctx.sleep (Time.ms 2);
        connect_forever ()
  in
  let one cid () =
    let rng =
      Rng.create ~seed:(Int64.add p.seed (Int64.of_int (7919 * cid)))
    in
    (* arrival ramp: spreading connects keeps the backlog (and the
       retry traffic) from swamping admission at time zero *)
    if p.connect_stagger_us > 0 then
      Uctx.sleep (Time.us (p.connect_stagger_us * (cid - 1)));
    let rec connect_bounded attempt =
      match Uctx.connect service_name with
      | fd -> Some fd
      | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
          incr refused;
          if p.connect_retry_limit > 0 && attempt >= p.connect_retry_limit
          then begin
            incr gaveup;
            None
          end
          else begin
            (* exponential backoff, capped at 64x the base, plus
               deterministic jitter from the client's own stream so
               synchronized refusals decorrelate without forking the
               run's determinism *)
            let base = max 1 p.retry_base_us in
            let backoff = base * (1 lsl min attempt 6) in
            Uctx.sleep (Time.us (backoff + Rng.int rng base));
            connect_bounded (attempt + 1)
          end
    in
    let conn =
      if p.hardened then connect_bounded 0 else Some (connect_forever ())
    in
    match conn with
    | None ->
        (* never admitted: every request of this connection is abandoned *)
        aborted := !aborted + p.requests_per_conn
    | Some fd -> (
        let done_reqs = ref 0 in
        try
          for r = 1 to p.requests_per_conn do
            if p.think_time_us > 0 then
              Uctx.sleep
                (Time.us_f
                   (Rng.exponential rng
                      ~mean:(float_of_int p.think_time_us)));
            let t0 = Uctx.gettime () in
            Uctx.write_all fd
              (pad (Printf.sprintf "r%d.%d" cid r) p.request_bytes);
            let reply =
              if p.hardened && p.request_deadline_us > 0 then
                deadline_read fd ~len:p.reply_bytes
                  ~deadline:(Time.add t0 (Time.us p.request_deadline_us))
              else Uctx.read_exact fd ~len:p.reply_bytes
            in
            if String.length reply = p.reply_bytes then begin
              if is_busy reply then incr shed
              else begin
                Histo.add latency (Time.diff (Uctx.gettime ()) t0);
                incr served
              end;
              incr done_reqs
            end
            else if p.hardened then
              (* deadline expired or EOF mid-frame: walk away *)
              raise Conn_dead
          done;
          Uctx.close fd
        with
        | Conn_dead | Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _)
        ->
          aborted := !aborted + (p.requests_per_conn - !done_reqs);
          Uctx.close fd)
  in
  let ts = List.init p.connections (fun cid -> M.spawn (one (cid + 1))) in
  List.iter M.join ts;
  (* Abandoned slots would strand the server: its accept loop expects
     [connections] arrivals.  Drain them with bare connect/close pairs
     (unbounded retry — the load is gone, admission is a matter of time)
     so the server observes every slot and can terminate. *)
  for _ = 1 to !gaveup do
    let fd = connect_forever () in
    Uctx.close fd
  done

(* --- the open-loop load generator ------------------------------------- *)

(* Poisson arrivals at a fixed offered rate, independent of server
   progress — the closed-loop generator above slows down with the server
   (coordinated omission) and so cannot show a latency knee.  One sender
   thread draws inter-arrival gaps from a salted exponential stream and
   stamps each request onto a connection with a free pipeline slot;
   [pollers] reader shards collect replies through client-side epoll.
   Connection state is compact parallel arrays — a timestamp ring of
   [max_pending] slots, a have-bytes counter and a head-byte class per
   connection; no thread, closure or list per connection.

   Accounting: issued = connections * requests_per_conn arrivals, each
   of which ends served (reply "done"), shed (reply "busy"), or aborted
   (no free slot at arrival, write to a dead connection, reset/EOF with
   replies outstanding, or still unanswered when the post-send drain
   grace expires).  served + shed + aborted = issued, always. *)
let client_open_loop (module M : Sunos_baselines.Model.S) k p ~latency
    ~served ~shed ~aborted ~gaveup ~refused
    ~(epoll_stats : Procfs.epoll_info list ref) () =
  let shards = max 1 p.pollers in
  let connectors = max 1 p.connectors in
  M.set_concurrency
    (if p.client_concurrency > 0 then p.client_concurrency
     else shards + connectors + 2);
  let n = p.connections in
  let cap = max 1 p.max_pending in
  let fds = Array.make (max 1 n) (-1) in
  let alive = Array.make (max 1 n) false in
  let sent = Array.make (max 1 (n * cap)) Time.zero in
  let rhead = Array.make (max 1 n) 0 in
  let npend = Array.make (max 1 n) 0 in
  let have = Array.make (max 1 n) 0 in
  let busy = Array.make (max 1 n) false in
  let pending = Array.make shards 0 in
  let sending_done = ref false in
  let drain_over = ref false in
  let epfds = Array.init shards (fun _ -> Uctx.epoll_create ()) in
  let self_r = Array.make shards (-1) in
  let self_w = Array.make shards (-1) in
  for s = 0 to shards - 1 do
    let r, w = Uctx.pipe () in
    self_r.(s) <- r;
    self_w.(s) <- w;
    Uctx.epoll_add epfds.(s) r ~want_in:true ()
  done;
  let fdmap = Array.init shards (fun _ -> Hashtbl.create 64) in
  let kick_all () = Array.iter (fun w -> ignore (Uctx.write w "!")) self_w in
  let rec connect_forever () =
    match Uctx.connect service_name with
    | fd -> fd
    | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
        incr refused;
        Uctx.sleep (Time.ms 2);
        connect_forever ()
  in
  let rec connect_bounded rng attempt =
    match Uctx.connect service_name with
    | fd -> Some fd
    | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
        incr refused;
        if p.connect_retry_limit > 0 && attempt >= p.connect_retry_limit
        then None
        else begin
          let base = max 1 p.retry_base_us in
          let backoff = base * (1 lsl min attempt 6) in
          Uctx.sleep (Time.us (backoff + Rng.int rng base));
          connect_bounded rng (attempt + 1)
        end
  in
  (* connection establishment, striped across [connectors] threads;
     the stagger ramp is honored per slot index *)
  let connector j () =
    let rng =
      Rng.create ~seed:(Int64.add p.seed (Int64.of_int (104729 + j)))
    in
    let i = ref j in
    while !i < n do
      let idx = !i in
      if p.connect_stagger_us > 0 then begin
        let target =
          Time.add Time.zero (Time.us (p.connect_stagger_us * idx))
        in
        let now = Uctx.gettime () in
        if Time.(target > now) then Uctx.sleep (Time.diff target now)
      end;
      let conn =
        if p.hardened then connect_bounded rng 0
        else Some (connect_forever ())
      in
      (match conn with
      | None -> incr gaveup
      | Some fd ->
          let s = idx mod shards in
          fds.(idx) <- fd;
          alive.(idx) <- true;
          Hashtbl.replace fdmap.(s) fd idx;
          Uctx.epoll_add epfds.(s) fd ~want_in:true ());
      i := !i + connectors
    done
  in
  let shard_hist =
    Array.init shards (fun s ->
        Histo.create (Printf.sprintf "latency-shard%d" s))
  in
  let reader s () =
    (* byte-counting frame reassembly: a chunk may span replies; the
       first byte of each frame classifies it ('b' = busy) *)
    let consume i chunk =
      let len = String.length chunk in
      let off = ref 0 in
      while !off < len do
        if have.(i) = 0 then busy.(i) <- chunk.[!off] = 'b';
        let need = p.reply_bytes - have.(i) in
        let take = min need (len - !off) in
        have.(i) <- have.(i) + take;
        off := !off + take;
        if have.(i) = p.reply_bytes then begin
          have.(i) <- 0;
          if npend.(i) > 0 then begin
            let t0 = sent.((i * cap) + rhead.(i)) in
            rhead.(i) <- (rhead.(i) + 1) mod cap;
            npend.(i) <- npend.(i) - 1;
            pending.(s) <- pending.(s) - 1;
            if busy.(i) then incr shed
            else begin
              Histo.add shard_hist.(s) (Time.diff (Uctx.gettime ()) t0);
              incr served
            end
          end
        end
      done
    in
    let kill_conn i =
      if alive.(i) then begin
        alive.(i) <- false;
        Hashtbl.remove fdmap.(s) fds.(i);
        aborted := !aborted + npend.(i);
        pending.(s) <- pending.(s) - npend.(i);
        npend.(i) <- 0;
        have.(i) <- 0;
        try Uctx.close fds.(i)
        with Errno.Unix_error (Errno.EBADF, _) -> ()
      end
    in
    let drain_conn i =
      let continue = ref true in
      while !continue && alive.(i) do
        match Uctx.try_read fds.(i) ~len:8192 with
        | `Data chunk -> consume i chunk
        | `Again -> continue := false
        | `Eof | `Reset -> kill_conn i
      done
    in
    let finished = ref false in
    while not !finished do
      let ready = Uctx.epoll_wait epfds.(s) ~max_events:poll_batch in
      List.iter
        (fun fd ->
          if fd = self_r.(s) then ignore (Uctx.read self_r.(s) ~len:64)
          else
            match Hashtbl.find_opt fdmap.(s) fd with
            | Some i -> drain_conn i
            | None -> ())
        ready;
      if !drain_over then begin
        (* grace expired: whatever is still outstanding is lost *)
        for i = 0 to n - 1 do
          if i mod shards = s && alive.(i) then kill_conn i
        done;
        finished := true
      end
      else if !sending_done && pending.(s) = 0 then begin
        for i = 0 to n - 1 do
          if i mod shards = s && alive.(i) then begin
            alive.(i) <- false;
            Hashtbl.remove fdmap.(s) fds.(i);
            Uctx.close fds.(i)
          end
        done;
        finished := true
      end
    done
  in
  let sender () =
    let rng = Rng.create ~seed:(Int64.add p.seed 15485863L) in
    let total = n * p.requests_per_conn in
    let mean_us =
      if p.arrival_rate_rps > 0. then 1e6 /. p.arrival_rate_rps
      else
        (* default offered load: what [connections] closed-loop clients
           with this think time would present to an infinitely fast
           server *)
        float_of_int p.think_time_us /. float_of_int (max 1 n)
    in
    (* request content is never parsed, only counted: one constant frame *)
    let frame = pad "r" p.request_bytes in
    let rr = ref 0 in
    (* arrivals live on an absolute schedule: the next arrival time
       advances by an exponential gap independent of how long the
       previous send took.  The sender sleeps only when it is ahead of
       the schedule — when it is behind (each sleep/wake cycle has a
       scheduling cost far above a sub-millisecond gap) it sends the
       overdue arrivals back to back.  Sleeping per arrival would
       silently cap the offered rate at the scheduler's wakeup rate,
       which is coordinated omission all over again. *)
    let next_arrival = ref (Uctx.gettime ()) in
    for _ = 1 to total do
      let d = Rng.exponential rng ~mean:mean_us in
      next_arrival := Time.add !next_arrival (Time.us_f d);
      let now = Uctx.gettime () in
      if Time.(!next_arrival > now) then
        Uctx.sleep (Time.diff !next_arrival now);
      (* round-robin probe for a connection with a free pipeline slot;
         an arrival that finds none is shed at the client — in an open
         system load does not wait for capacity *)
      let placed = ref false in
      let tries = ref 0 in
      while (not !placed) && !tries < n do
        let i = !rr in
        rr := (!rr + 1) mod n;
        incr tries;
        if alive.(i) && npend.(i) < cap then begin
          let t0 = Uctx.gettime () in
          match Uctx.write_all fds.(i) frame with
          | () ->
              sent.((i * cap) + ((rhead.(i) + npend.(i)) mod cap)) <- t0;
              npend.(i) <- npend.(i) + 1;
              pending.(i mod shards) <- pending.(i mod shards) + 1;
              placed := true
          | exception
              Errno.Unix_error
                ((Errno.ECONNRESET | Errno.EPIPE | Errno.EBADF), _) ->
              (* the connection died under the write (the reader may
                 even have closed it while we blocked): the arrival
                 happened and was lost *)
              incr aborted;
              placed := true
        end
      done;
      if not !placed then incr aborted
    done;
    sending_done := true;
    kick_all ();
    let deadline =
      Time.add (Uctx.gettime ()) (Time.us (max 0 p.drain_grace_us))
    in
    let total_pending () = Array.fold_left ( + ) 0 pending in
    while total_pending () > 0 && Time.(Uctx.gettime () < deadline) do
      Uctx.sleep (Time.ms 1)
    done;
    drain_over := true;
    kick_all ()
  in
  let readers_t = List.init shards (fun s -> M.spawn (reader s)) in
  let conns_t = List.init connectors (fun j -> M.spawn (connector j)) in
  List.iter M.join conns_t;
  sender ();
  List.iter M.join readers_t;
  let me = Uctx.getpid () in
  epoll_stats :=
    !epoll_stats
    @ List.filter (fun e -> e.Procfs.ei_pid = me) (Procfs.epolls k);
  Array.iter Uctx.close epfds;
  Array.iter Uctx.close self_r;
  Array.iter Uctx.close self_w;
  Array.iter (fun h -> Histo.merge ~into:latency h) shard_hist;
  (* the server's accept loop still expects [connections] arrivals *)
  for _ = 1 to !gaveup do
    let fd = connect_forever () in
    Uctx.close fd
  done

let run (module M : Sunos_baselines.Model.S) ?(cpus = 1) ?cost ?chaos
    ?domains ?(trace = false) ?debrief p =
  let k = Kernel.boot ~cpus ?cost ?chaos ?domains () in
  if not trace then Kernel.set_tracing k false;
  (match Fs.create_file (Kernel.fs k) ~path:data_path () with
  | Ok f ->
      ignore (Fs.write f ~pos:0 (String.make 65536 's'));
      Shm.evict_all (Fs.segment f)
  | Error _ -> invalid_arg "Net_server.run: setup failed");
  let latency = Histo.create "request latency" in
  let served = ref 0 and refused = ref 0 in
  let shed = ref 0 and aborted = ref 0 and gaveup = ref 0 in
  let max_concurrent = ref 0 in
  let makespan = ref Time.zero in
  let epoll_stats = ref [] in
  let note_conn n = if n > !max_concurrent then max_concurrent := n in
  let finishing body () =
    body ();
    let t = Uctx.gettime () in
    if Time.(t > !makespan) then makespan := t
  in
  let server_fn =
    if p.epoll then server_epoll (module M) k p ~note_conn ~epoll_stats
    else server (module M) k p ~note_conn
  in
  let client_fn =
    if p.open_loop then
      client_open_loop (module M) k p ~latency ~served ~shed ~aborted
        ~gaveup ~refused ~epoll_stats
    else
      client (module M) p ~latency ~served ~shed ~aborted ~gaveup ~refused
  in
  ignore
    (Kernel.spawn k ~name:"net-server"
       ~main:(M.boot ?cost (finishing server_fn)));
  ignore
    (Kernel.spawn k ~name:"loadgen" ~main:(M.boot ?cost (finishing client_fn)));
  Kernel.run k;
  (* [debrief] runs against the still-live kernel: determinism tests read
     counters and the trace ring before the results are boxed up *)
  (match debrief with Some f -> f k | None -> ());
  Kernel.shutdown k;
  {
    issued = p.connections * p.requests_per_conn;
    served = !served;
    shed = !shed;
    aborted = !aborted;
    gaveup = !gaveup;
    refused = !refused;
    max_concurrent = !max_concurrent;
    latency;
    makespan = !makespan;
    throughput_rps =
      (if Time.(!makespan > 0L) then
         float_of_int !served /. Time.to_s !makespan
       else 0.);
    lwps_created = Kernel.lwp_create_count k;
    syscalls = Kernel.syscall_count k;
    epoll_stats = !epoll_stats;
  }

let pp_results ppf r =
  Format.fprintf ppf
    "served=%d refused=%d peak_conns=%d makespan=%a throughput=%.0f req/s \
     lwps=%d latency: %a"
    r.served r.refused r.max_concurrent Time.pp r.makespan r.throughput_rps
    r.lwps_created Histo.pp_summary r.latency;
  if r.shed > 0 || r.aborted > 0 || r.gaveup > 0 then
    Format.fprintf ppf " shed=%d aborted=%d gaveup=%d" r.shed r.aborted
      r.gaveup;
  if r.epoll_stats <> [] then begin
    Format.fprintf ppf "@.";
    List.iter
      (fun ei -> Format.fprintf ppf "  %a" Procfs.pp_epoll ei)
      r.epoll_stats
  end
