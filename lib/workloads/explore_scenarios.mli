(** Explorable synchronization scenarios: small multi-thread programs
    bundled with a pass/fail judgement, each a pure function of the
    installed schedule so {!Sunos_sim.Explore} can enumerate every
    interleaving.  The set re-verifies the schedule-sensitive fixes
    (BUG 14's rwlock upgrader promotion, the SIGWAITING timeout-EINTR
    re-arm) and demonstrates real-deadlock discovery on a three-lock
    cycle.  See DESIGN.md, "Schedule exploration". *)

type t = {
  sc_name : string;  (** registry key; also names the repro file *)
  sc_descr : string;
  sc_expect_fail : bool;
      (** exhaustion is {e expected} to find failing schedules (the
          lock-chain deadlock); no repro file is written for these *)
  sc_run : unit -> Sunos_sim.Explore.outcome;
      (** boot, run, judge — pure in the schedule *)
}

val all : t list
val find : string -> t option

val explore :
  ?dpor:bool ->
  ?max_schedules:int ->
  ?stop_on_first_failure:bool ->
  ?repro_dir:string ->
  t ->
  Sunos_sim.Explore.stats
(** Exhaust the scenario's schedules.  On the first {e unexpected}
    failure (a scenario with [sc_expect_fail = false]), writes the
    decision vector to [repro_dir]/[explore-failure-<name>.repro] for
    standalone replay (default dir: ["."]). *)

val replay : t -> vector:int array -> Sunos_sim.Explore.outcome * string option
(** Run one recorded schedule; returns the outcome and any divergence
    diagnostic (the vector no longer matching the program is reported,
    not fatal). *)
