module Kernel = Sunos_kernel.Kernel
module Procfs = Sunos_kernel.Procfs
module Faultgen = Sunos_sim.Faultgen

let pp ppf k =
  let label = Kernel.chaos_label k in
  let total = Kernel.chaos_total k in
  if total = 0 then Format.fprintf ppf "chaos[%s]: no faults injected" label
  else begin
    Format.fprintf ppf "chaos[%s]: %d faults" label total;
    List.iter
      (fun (site, n) -> Format.fprintf ppf " %s=%d" site n)
      (Kernel.chaos_counts k);
    (* the /proc view of load shedding: per-process shed counters *)
    List.iter
      (fun pi ->
        if pi.Procfs.pi_shed > 0 then
          Format.fprintf ppf " shed(%s)=%d" pi.Procfs.pi_name
            pi.Procfs.pi_shed)
      (Procfs.snapshot k)
  end

let print k = Format.printf "%a@." pp k

let debrief_if_enabled k =
  if Faultgen.enabled (Kernel.chaos k) then print k
