module Time = Sunos_sim.Time
module Hist = Sunos_sim.Stats.Hist
module Rng = Sunos_sim.Rng
module Shm = Sunos_hw.Shared_memory
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Fs = Sunos_kernel.Fs
module Parexec = Sunos_sim.Parexec
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Syncvar = Sunos_threads.Syncvar

type params = {
  processes : int;
  threads_per_process : int;
  records : int;
  transactions_per_thread : int;
  compute_us : int;
  io_every : int;
  start_cold : bool;
  mmap_io : bool;
  work_spin : int;
      (* iterations of real busy-work ([Parexec.spin]) behind each
         compute phase, offloaded to the machine's worker-domain pool.
         0 (default): compute is purely simulated, as always.  The
         simulated schedule is identical either way *)
  seed : int64;
}

let default_params =
  {
    processes = 2;
    threads_per_process = 8;
    records = 32;
    transactions_per_thread = 25;
    compute_us = 300;
    io_every = 10;
    start_cold = true;
    mmap_io = false;
    work_spin = 0;
    seed = 23L;
  }

type results = {
  committed : int;
  makespan : Sunos_sim.Time.span;
  throughput_tps : float;
  latency : Hist.t;
  majflt : int;
}

let record_size = 512
let db_path = "/db/records"

(* A record's lock lives at the start of the record, inside the mapped
   file — Figure 1 of the paper, literally. *)
let lock_offset r = r * record_size

let run ?(cpus = 2) ?cost ?chaos ?domains ?(trace = false) ?debrief p =
  let k = Kernel.boot ~cpus ?cost ?chaos ?domains () in
  if not trace then Kernel.set_tracing k false;
  (* create and populate the database file *)
  (match Fs.create_file (Kernel.fs k) ~path:db_path () with
  | Ok f ->
      ignore (Fs.write f ~pos:0 (String.make (p.records * record_size) 'd'));
      if p.start_cold then
        (* reads hit the disk until the page cache warms *)
        Shm.evict_all (Fs.segment f)
      else
        let seg = Fs.segment f in
        for page = 0 to Shm.page_count seg - 1 do
          Shm.make_resident seg ~page
        done
  | Error _ -> invalid_arg "Database.run: setup failed");
  let committed = ref 0 in
  let spin_sink = ref 0 in
  (* the transaction's compute phase: simulated always; with real work
     behind it (offloaded to the worker pool) when [work_spin] > 0.
     Each thunk writes only its own cell; the fold into [spin_sink]
     happens fiber-side, after the await, in simulated order *)
  let compute_phase ~salt us =
    if p.work_spin > 0 then begin
      let cell = ref 0 in
      Uctx.offload ~cost:(Time.us us) (fun () ->
          cell := Parexec.spin ~seed:salt p.work_spin);
      spin_sink := !spin_sink lxor !cell
    end
    else Uctx.charge_us us
  in
  let latency = Hist.create "txn latency" in
  let makespan = ref Time.zero in
  let server id () =
    (* size the pool so worker threads run concurrently from the start
       (otherwise a CPU-bound worker monopolizes the single LWP until
       its first kernel block) *)
    T.setconcurrency (min p.threads_per_process 4);
    let rng = Rng.create ~seed:(Int64.add p.seed (Int64.of_int id)) in
    let fd = Uctx.open_file db_path in
    let seg = Uctx.mmap fd in
    let locks =
      Array.init p.records (fun r ->
          Mutex.create_shared (Syncvar.place seg ~offset:(lock_offset r)))
    in
    let worker wid () =
      let rng = Rng.split rng in
      ignore wid;
      for txn = 1 to p.transactions_per_thread do
        let r = Rng.int rng p.records in
        if p.mmap_io then begin
          (* Figure-1 literal mode: the thread locks the record and
             works on it THROUGH THE MAPPING — no read/write system
             calls for warm data, so an uncontended transaction is pure
             user-level work (lock, copy, compute, unlock).  Every
             [io_every]-th transaction evicts its page and faults it
             back in, keeping the disk path honest; those sampled
             transactions also carry the latency histogram (gettime is
             a system call — timing every warm transaction would
             syscall-bound the very path this mode exists to expose). *)
          let sampled = txn mod p.io_every = 0 in
          let t0 = if sampled then Uctx.gettime () else Time.zero in
          Mutex.enter locks.(r);
          if sampled then begin
            Shm.evict seg ~page:(Shm.page_of_offset ~offset:(lock_offset r));
            Uctx.touch seg ~offset:(lock_offset r)
          end;
          (* record copy in/out of the mapping, at the cost model's
             per-KiB copy rate (512-byte record = ~half [copy_per_kb]) *)
          Uctx.charge_us 28;
          compute_phase ~salt:r p.compute_us;
          Uctx.charge_us 14;
          Mutex.exit locks.(r);
          if sampled then
            Hist.add latency (Time.diff (Uctx.gettime ()) t0);
          incr committed
        end
        else begin
          let t0 = Uctx.gettime () in
          Mutex.enter locks.(r);
          if txn mod p.io_every = 0 then begin
            (* cold read: evict then read so the disk path is exercised *)
            Shm.evict seg ~page:(Shm.page_of_offset ~offset:(lock_offset r));
            Uctx.lseek fd (lock_offset r);
            ignore (Uctx.read fd ~len:record_size)
          end
          else begin
            Uctx.lseek fd (lock_offset r);
            ignore (Uctx.read fd ~len:record_size)
          end;
          compute_phase ~salt:r p.compute_us;
          Uctx.lseek fd (lock_offset r);
          ignore (Uctx.write fd (String.make 32 'w'));
          Mutex.exit locks.(r);
          Hist.add latency (Time.diff (Uctx.gettime ()) t0);
          incr committed
        end
      done
    in
    let ts =
      List.init p.threads_per_process (fun w ->
          T.create ~flags:[ T.THREAD_WAIT ] (worker w))
    in
    List.iter (fun t -> ignore (T.wait ~thread:t ())) ts;
    makespan := Time.max !makespan (Uctx.gettime ())
  in
  for id = 1 to p.processes do
    ignore
      (Kernel.spawn k
         ~name:(Printf.sprintf "dbserver%d" id)
         ~main:(Libthread.boot (server id)))
  done;
  Kernel.run k;
  (* [debrief] runs against the still-live kernel: determinism tests read
     counters and the trace ring before the results are boxed up *)
  (match debrief with Some f -> f k | None -> ());
  Kernel.shutdown k;
  ignore (spin_sink : int ref);
  let majflt =
    List.fold_left
      (fun acc pi -> acc + pi.Sunos_kernel.Procfs.pi_majflt)
      0
      (Sunos_kernel.Procfs.snapshot k)
  in
  {
    committed = !committed;
    makespan = !makespan;
    throughput_tps =
      (if Time.(!makespan > 0L) then
         float_of_int !committed /. Time.to_s !makespan
       else 0.);
    latency;
    majflt;
  }

let pp_results ppf r =
  Format.fprintf ppf
    "committed=%d makespan=%a throughput=%.0f txn/s majflt=%d latency: %a"
    r.committed Time.pp r.makespan r.throughput_tps r.majflt Hist.pp_summary
    r.latency
