(** Chaos debrief: a one-line summary of what the fault injector did to
    a run — profile label, per-site injected-fault counts, and the
    /proc-visible load-shedding counters.  Workload drivers pass
    {!print} (or compose {!pp}) as their [debrief] so chaos runs end
    with an account of the weather they survived. *)

val pp : Format.formatter -> Sunos_kernel.Kernel.t -> unit
val print : Sunos_kernel.Kernel.t -> unit

val debrief_if_enabled : Sunos_kernel.Kernel.t -> unit
(** [print], but only when fault injection is active — safe to wire
    unconditionally into CLI drivers without polluting clean runs. *)
