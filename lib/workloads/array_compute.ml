module Time = Sunos_sim.Time
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Sysdefs = Sunos_kernel.Sysdefs
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Condvar = Sunos_threads.Condvar

type mode = Unbound of int | Bound | Bound_gang

type params = {
  rows : int;
  row_compute_us : int;
  sweeps : int;
  mode : mode;
  spin_barrier : bool;
}

let default_params =
  { rows = 64; row_compute_us = 400; sweeps = 10; mode = Bound;
    spin_barrier = false }

type results = {
  makespan : Sunos_sim.Time.span;
  thread_switches : int;
  lwps_created : int;
}

(* Classic sense-reversing barrier on a mutex + condvar. *)
let make_blocking_barrier n =
  let m = Mutex.create () in
  let cv = Condvar.create () in
  let count = ref 0 and generation = ref 0 in
  fun () ->
    Mutex.enter m;
    let gen = !generation in
    incr count;
    if !count = n then begin
      count := 0;
      incr generation;
      Condvar.broadcast cv
    end
    else
      while !generation = gen do
        Condvar.wait cv m
      done;
    Mutex.exit m

(* Spinning barrier: arrivals burn CPU probing the generation counter —
   the fine-grain style whose pathology gang scheduling exists to fix. *)
let make_spin_barrier n =
  let m = Mutex.create ~variant:Mutex.Spin () in
  let count = ref 0 and generation = ref 0 in
  fun () ->
    Mutex.enter m;
    let gen = !generation in
    incr count;
    if !count = n then begin
      count := 0;
      incr generation
    end;
    Mutex.exit m;
    while !generation = gen do
      Uctx.charge_us 5
    done

let run ?(cpus = 4) ?cost ?chaos ?(background_load = false) p =
  let k = Kernel.boot ~cpus ?cost ?chaos () in
  Kernel.set_tracing k false;
  let makespan = ref Time.zero and switches = ref 0 in
  let app () =
    let n_threads, flags, gang =
      match p.mode with
      | Unbound n -> (n, [ T.THREAD_WAIT ], false)
      | Bound -> (cpus, [ T.THREAD_BIND_LWP; T.THREAD_WAIT ], false)
      | Bound_gang -> (cpus, [ T.THREAD_BIND_LWP; T.THREAD_WAIT ], true)
    in
    (match p.mode with
    | Unbound _ -> T.setconcurrency cpus
    | Bound | Bound_gang -> ());
    let barrier =
      if p.spin_barrier then make_spin_barrier n_threads
      else make_blocking_barrier n_threads
    in
    let rows_of i =
      (* static row partition *)
      let per = p.rows / n_threads and extra = p.rows mod n_threads in
      per + (if i < extra then 1 else 0)
    in
    let worker i () =
      if gang then Uctx.priocntl (Sysdefs.Cls_gang 1);
      for _sweep = 1 to p.sweeps do
        for _row = 1 to rows_of i do
          Uctx.charge_us p.row_compute_us
        done;
        barrier ()
      done
    in
    let ts = List.init n_threads (fun i -> T.create ~flags (worker i)) in
    List.iter (fun t -> ignore (T.wait ~thread:t ())) ts;
    switches := (Libthread.stats ()).Libthread.switches;
    makespan := Uctx.gettime ()
  in
  ignore (Kernel.spawn k ~name:"array" ~main:(Libthread.boot app));
  if background_load then
    ignore
      (Kernel.spawn k ~name:"load" ~main:(fun () ->
           (* a CPU hog that competes for one processor until the array
              job is done; it stops when the simulation drains *)
           let rec burn () =
             Uctx.charge (Time.ms 5);
             if Time.(Uctx.gettime () < Time.s 10) then burn ()
           in
           burn ()));
  Kernel.run k;
  {
    makespan = !makespan;
    thread_switches = !switches;
    lwps_created = Kernel.lwp_create_count k;
  }

let pp_results ppf r =
  Format.fprintf ppf "makespan=%a switches=%d lwps=%d" Time.pp r.makespan
    r.thread_switches r.lwps_created
