(** The database workload from the paper's introduction and Figure 1: a
    file of records, each guarded by a mutual-exclusion lock {e stored in
    the record itself}; server processes map the file and their threads
    lock individual records to execute transactions.

    Exercises, in one scenario: synchronization variables in mapped files
    shared between processes, blocking file I/O that stalls only the
    issuing LWP, and many-threads-per-process concurrency. *)

type params = {
  processes : int;
  threads_per_process : int;
  records : int;
  transactions_per_thread : int;
  compute_us : int;  (** CPU work inside the critical section *)
  io_every : int;  (** every n-th transaction re-reads its record cold *)
  start_cold : bool;
      (** start with no record pages in the page cache (first touches go
          to disk); [false] pre-warms so only [io_every] evictions cost
          disk time *)
  mmap_io : bool;
      (** [false] (default): each transaction reads and writes its
          record with lseek/read/write system calls and is timed with
          gettime — the original, syscall-per-transaction shape.
          [true]: the Figure-1 literal shape — threads work on records
          {e through the mapping}, so a warm uncontended transaction is
          pure user-level work (lock, copy charges, compute, unlock);
          every [io_every]-th transaction evicts and faults its page
          back in and carries the (syscall-timed) latency sample. *)
  work_spin : int;
      (** iterations of {e real} busy-work ({!Sunos_sim.Parexec.spin})
          behind each compute phase, offloaded to the machine's
          worker-domain pool while the simulation keeps advancing.
          0 (default): compute is purely simulated.  The simulated
          schedule is bit-identical either way, for any domain count. *)
  seed : int64;
}

val default_params : params

type results = {
  committed : int;
  makespan : Sunos_sim.Time.span;
  throughput_tps : float;  (** committed / simulated second *)
  latency : Sunos_sim.Stats.Hist.t;
  majflt : int;  (** cold-record disk reads across all processes *)
}

val run :
  ?cpus:int ->
  ?cost:Sunos_hw.Cost_model.t ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  ?domains:int ->
  ?trace:bool ->
  ?debrief:(Sunos_kernel.Kernel.t -> unit) ->
  params ->
  results
(** [chaos], [trace] and [debrief] as in {!Net_server.run};
    [domains] as in {!Sunos_kernel.Kernel.boot} (the pool is joined
    before returning).  The
    workload is chaos-hardened from below: every blocking {!Uctx}
    wrapper it relies on (read, write, kwait, park) retries injected
    EINTR, and the threads library replaces LWPs the injector kills and
    retries transient ENOMEM on LWP creation with capped backoff. *)

val pp_results : Format.formatter -> results -> unit
