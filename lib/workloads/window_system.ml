module Time = Sunos_sim.Time
module Hist = Sunos_sim.Stats.Hist
module Rng = Sunos_sim.Rng
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Errno = Sunos_kernel.Errno

type params = {
  widgets : int;
  events : int;
  input_compute_us : int;
  render_compute_us : int;
  mean_interarrival_us : int;
  seed : int64;
}

let default_params =
  {
    widgets = 100;
    events = 500;
    input_compute_us = 120;
    render_compute_us = 250;
    mean_interarrival_us = 1500;
    seed = 11L;
  }

type results = {
  handled : int;
  latency : Hist.t;
  makespan : Time.span;
  lwps_created : int;
  threads_created : int;
}

(* Events travel as fixed 32-byte frames "widget stamp" (space padded)
   so the reader can reframe the byte stream exactly.  Two control
   frames ride the same wire: on every accept the server sends "R n"
   (resume: n event frames received so far) so a client reconnecting
   after a dropped connection resends exactly the lost tail, and "F"
   (fin) once every event has arrived so the client can stop. *)
let frame_len = 32
let pad s = s ^ String.make (frame_len - String.length s) ' '
let frame w stamp = pad (Printf.sprintf "%d %Ld" w stamp)
let resume_frame n = pad (Printf.sprintf "R %d" n)
let fin_frame = pad "F"

(* One widget = an input handler and an output handler, coupled by a
   semaphore pair and a mailbox of pending event timestamps.  The X
   server side listens on a socket; a client process connects and
   writes the event stream with Poisson spacing. *)
let run (module M : Sunos_baselines.Model.S) ?(cpus = 1) ?cost ?chaos
    ?(trace = false) ?debrief p =
  let k = Kernel.boot ~cpus ?cost ?chaos () in
  if not trace then Kernel.set_tracing k false;
  let latency = Hist.create "event latency" in
  let handled = ref 0 in
  let threads_created = ref 0 in
  let makespan = ref Time.zero in
  let app () =
    let lfd = Uctx.listen ~name:"xwire" ~backlog:1 in
    (* per-widget plumbing *)
    let in_sem = Array.init p.widgets (fun _ -> M.Sem.create 0) in
    let out_sem = Array.init p.widgets (fun _ -> M.Sem.create 0) in
    let in_box = Array.make p.widgets [] in
    let out_box = Array.make p.widgets [] in
    let input_handler w () =
      let rec loop () =
        M.Sem.p in_sem.(w);
        match in_box.(w) with
        | [] ->
            (* shutdown: forward it down the pipeline so the output
               handler drains every forwarded event first *)
            M.Sem.v out_sem.(w)
        | stamp :: rest ->
            in_box.(w) <- rest;
            Uctx.charge_us p.input_compute_us;
            out_box.(w) <- out_box.(w) @ [ stamp ];
            M.Sem.v out_sem.(w);
            loop ()
      in
      loop ()
    in
    let output_handler w () =
      let rec loop () =
        M.Sem.p out_sem.(w);
        match out_box.(w) with
        | [] -> ()
        | stamp :: rest ->
            out_box.(w) <- rest;
            Uctx.charge_us p.render_compute_us;
            Hist.add latency (Time.diff (Uctx.gettime ()) stamp);
            incr handled;
            loop ()
      in
      loop ()
    in
    let handlers =
      List.concat_map
        (fun w ->
          [ M.spawn (input_handler w); M.spawn (output_handler w) ])
        (List.init p.widgets (fun w -> w))
    in
    (* both process mains plus the handler pairs *)
    threads_created := (2 * p.widgets) + 2;
    (* the wire reader: demultiplex events to widgets.  A connection
       can die under fault injection (RST mid-stream); the reader then
       re-accepts and tells the client where to resume, so no event is
       lost — merely re-sent. *)
    let received = ref 0 in
    let fd = ref (Uctx.accept lfd) in
    let conn_dead = function
      | Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _) -> true
      | _ -> false
    in
    let rec greet () =
      try Uctx.write_all !fd (resume_frame !received)
      with e when conn_dead e ->
        Uctx.close !fd;
        fd := Uctx.accept lfd;
        greet ()
    in
    greet ();
    let rec serve () =
      if !received < p.events then begin
        match Uctx.read_exact !fd ~len:frame_len with
        | msg when String.length msg < frame_len ->
            (* peer closed mid-frame: wait for the reconnect *)
            Uctx.close !fd;
            fd := Uctx.accept lfd;
            greet ();
            serve ()
        | msg ->
            (match String.split_on_char ' ' (String.trim msg) with
            | [ ws; ts ] -> (
                match (int_of_string_opt ws, Int64.of_string_opt ts) with
                | Some w, Some stamp when w >= 0 && w < p.widgets ->
                    in_box.(w) <- in_box.(w) @ [ stamp ];
                    M.Sem.v in_sem.(w);
                    incr received
                | _ -> ())
            | _ -> ());
            serve ()
        | exception e when conn_dead e ->
            Uctx.close !fd;
            fd := Uctx.accept lfd;
            greet ();
            serve ()
      end
    in
    serve ();
    (* fin handshake: tell the client everything arrived and wait for
       its close.  If the fin itself is lost to an injected reset the
       client reconnects, so re-accept — but only for a bounded window,
       because the client may instead have exited already. *)
    let rec fin () =
      let ok =
        try
          Uctx.write_all !fd fin_frame;
          ignore (Uctx.read !fd ~len:1);
          true
        with e when conn_dead e -> false
      in
      if not ok then begin
        Uctx.close !fd;
        let rec reaccept n =
          if n > 0 then
            match Uctx.accept_nb lfd with
            | `Conn c ->
                fd := c;
                fin ()
            | `Again ->
                Uctx.sleep (Time.ms 5);
                reaccept (n - 1)
            | `Aborted -> ()
        in
        reaccept 40
      end
    in
    fin ();
    Uctx.close !fd;
    Uctx.close lfd;
    (* drain: an empty-box wakeup is the shutdown token; it propagates
       through each widget's pipeline *)
    for w = 0 to p.widgets - 1 do
      M.Sem.v in_sem.(w)
    done;
    List.iter M.join handlers;
    makespan := Uctx.gettime ()
  in
  (* event injection: a client process with Poisson arrivals addressed
     to random widgets *)
  let injector () =
    let rng = Rng.create ~seed:p.seed in
    let wrote_all = ref false in
    (* Unbounded retry while events remain to deliver (the server is
       certainly still listening).  Once every event has been written
       the only reason to reconnect is a lost fin — and the server
       holds its post-fin accept window open only briefly — so give up
       after a bounded number of refusals instead of spinning against
       a closed listener forever. *)
    let rec connect_retry attempts =
      match Uctx.connect "xwire" with
      | fd -> Some fd
      | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
          if !wrote_all && attempts >= 100 then None
          else begin
            Uctx.sleep (Time.us 200);
            connect_retry (attempts + 1)
          end
    in
    let conn_dead = function
      | Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _) -> true
      | _ -> false
    in
    let rec session () =
      match connect_retry 0 with
      | None -> ()
      | Some fd -> (
          match
            let greeting = Uctx.read_exact fd ~len:frame_len in
            match String.split_on_char ' ' (String.trim greeting) with
            | [ "F" ] -> `Done
            | [ "R"; n ] -> (
                match int_of_string_opt n with
                | Some n when n >= p.events -> `Done
                | Some n ->
                    for _ = n + 1 to p.events do
                      Uctx.sleep
                        (Time.us_f
                           (Rng.exponential rng
                              ~mean:(float_of_int p.mean_interarrival_us)));
                      Uctx.write_all fd
                        (frame (Rng.int rng p.widgets) (Uctx.gettime ()))
                    done;
                    wrote_all := true;
                    (* await the fin; a short read is a dead conn *)
                    let fin = Uctx.read_exact fd ~len:frame_len in
                    if String.length fin = frame_len then `Done else `Retry
                | None -> `Retry)
            | _ -> `Retry
          with
          | `Done -> Uctx.close fd
          | `Retry ->
              Uctx.close fd;
              session ()
          | exception e when conn_dead e ->
              Uctx.close fd;
              session ())
    in
    session ()
  in
  ignore (Kernel.spawn k ~name:"windows" ~main:(M.boot ?cost app));
  ignore (Kernel.spawn k ~name:"xclient" ~main:(M.boot ?cost injector));
  Kernel.run k;
  (match debrief with Some f -> f k | None -> ());
  {
    handled = !handled;
    latency;
    makespan = !makespan;
    lwps_created = Kernel.lwp_create_count k;
    threads_created = !threads_created;
  }

let pp_results ppf r =
  Format.fprintf ppf
    "handled=%d threads=%d lwps=%d makespan=%a latency: %a" r.handled
    r.threads_created r.lwps_created Time.pp r.makespan Hist.pp_summary
    r.latency
