(** The parallel-array workload from the paper's "why have both threads
    and LWPs" discussion: rows of an array divided among threads, with a
    barrier between sweeps (a stencil-style computation).

    The paper's argument, reproduced as modes:
    - [Unbound n]: n threads multiplexed on the LWP pool.  With more
      threads than processors, each sweep pays user-level switches for
      nothing — "it would be better to know there is one thread per LWP".
    - [Bound]: one thread per CPU, each permanently bound to its own LWP
      (the paper's recommendation for this shape of program).
    - [Bound_gang]: like [Bound], in the gang scheduling class — the
      members dispatch together, which matters when the machine is shared
      with other work. *)

type mode = Unbound of int | Bound | Bound_gang

type params = {
  rows : int;
  row_compute_us : int;
  sweeps : int;
  mode : mode;
  spin_barrier : bool;
      (** spin (burn CPU) at the sweep barrier instead of blocking —
          typical of fine-grain parallel runtimes, and the case where
          gang scheduling pays: without co-scheduling, spinners burn
          their processors waiting for a preempted member *)
}

val default_params : params

type results = {
  makespan : Sunos_sim.Time.span;
  thread_switches : int;  (** user-level context switches consumed *)
  lwps_created : int;
}

val run :
  ?cpus:int ->
  ?cost:Sunos_hw.Cost_model.t ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  ?background_load:bool ->
  params ->
  results
(** [chaos] as in {!Net_server.run}.  [background_load] adds a
    competing CPU-bound process (for the gang ablation). *)

val pp_results : Format.formatter -> results -> unit
