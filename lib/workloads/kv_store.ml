(* A sharded key-value store spread across forked server processes —
   the workload the USYNC_PROCESS subsystem exists for.

   One master process creates a shared anonymous control segment and a
   mapped backing file, then forks N server processes.  Every server
   maps both; hash shards in the control segment are guarded by robust
   process-shared rwlocks (many readers per shard, one writer), each
   shard carrying a small LRU cache over the file and a dirty list that
   is write-batched to the backing file in one syscall per batch.  A
   separate load-generator process drives the fleet through the socket
   layer with the hardened client protocol (bounded connect retry,
   per-request deadlines, abort-on-dead-connection).

   Under chaos [proc-kill], a server dies at a syscall boundary — by
   construction often inside a shard critical section (the batched flush
   syscalls run holding the shard lock: the write side under the legacy
   [flush_under_write] placement, the read side after the default
   downgrade).  The robust-lock protocol
   then marks the shard lock OWNERDEAD; the next acquirer from a
   surviving server repairs the shard (re-flushes the dirty list, which
   is idempotent, and reconciles the torn epoch) instead of the whole
   shard deadlocking.

   Conservation is classified entirely client-side so it stays a
   checkable identity even when replies are lost mid-kill: every issued
   put (and get) ends up exactly one of applied/served, shed, or
   aborted.  Servers separately count the puts they applied; under
   proc-kill [server_applied] may exceed client-acked [puts_applied]
   (a reply died with its server) — reported, never silently lost. *)

module Time = Sunos_sim.Time
module Hist = Sunos_sim.Stats.Hist
module Rng = Sunos_sim.Rng
module Univ = Sunos_sim.Univ
module Shm = Sunos_hw.Shared_memory
module Parexec = Sunos_sim.Parexec
module Kernel = Sunos_kernel.Kernel
module Uctx = Sunos_kernel.Uctx
module Errno = Sunos_kernel.Errno
module Sysdefs = Sunos_kernel.Sysdefs
module Fs = Sunos_kernel.Fs
module T = Sunos_threads.Thread
module Libthread = Sunos_threads.Libthread
module Mutex = Sunos_threads.Mutex
module Rwlock = Sunos_threads.Rwlock
module Semaphore = Sunos_threads.Semaphore
module Syncvar = Sunos_threads.Syncvar

type params = {
  server_procs : int;  (* forked server processes *)
  shards : int;  (* hash shards in the shared segment *)
  lwps_per_server : int;  (* setconcurrency per server *)
  workers_per_server : int;  (* worker threads per server *)
  clients : int;  (* client connections (round-robin over servers) *)
  requests_per_client : int;
  read_pct : int;  (* 0..100: share of gets in the mix *)
  keys : int;  (* key space *)
  value_bytes : int;
  lru_capacity : int;  (* cached values per shard *)
  batch : int;  (* dirty puts per write-batch flush *)
  think_time_us : int;  (* mean client think time *)
  shed_queue_limit : int;  (* queued conns before the server says busy *)
  listen_backlog : int;
  connect_retry_limit : int;
  retry_base_us : int;
  request_deadline_us : int;
  client_lwps : int;  (* 0 = one LWP per client *)
  robust : bool;  (* robust shard locks (required under proc-kill) *)
  flush_under_write : bool;
      (* legacy flush placement: run the batched disk write with the
         shard WRITE lock held, so every get queues behind the flush —
         the p99 tail the default (downgrade-to-reader) placement
         removes.  Kept for the bench contrast *)
  work_spin : int;
      (* iterations of real busy-work ([Parexec.spin]) behind each
         serve compute phase, offloaded to the worker-domain pool.
         0 (default): compute is purely simulated *)
  seed : int64;
}

let default_params =
  {
    server_procs = 2;
    shards = 4;
    lwps_per_server = 3;
    workers_per_server = 4;
    clients = 8;
    requests_per_client = 6;
    read_pct = 70;
    keys = 64;
    value_bytes = 128;
    lru_capacity = 8;
    batch = 4;
    think_time_us = 1_000;
    shed_queue_limit = 6;
    listen_backlog = 32;
    connect_retry_limit = 8;
    retry_base_us = 500;
    request_deadline_us = 100_000;
    client_lwps = 0;
    robust = true;
    flush_under_write = false;
    work_spin = 0;
    seed = 47L;
  }

type results = {
  gets_ok : int;
  gets_shed : int;
  gets_aborted : int;
  gets_issued : int;
  puts_applied : int;
  puts_shed : int;
  puts_aborted : int;
  puts_issued : int;
  server_applied : int;
  recoveries : int;  (* OWNERDEAD repairs performed *)
  torn_repaired : int;  (* repairs that found a torn epoch *)
  flushes : int;
  cache_hits : int;
  cache_misses : int;
  gaveup : int;
  refused : int;
  killed : int;  (* servers lost to chaos proc-kill *)
  makespan : Time.span;
  throughput_rps : float;
  latency : Hist.t;
  lwps_created : int;
  syscalls : int;
}

let puts_conserved r =
  r.puts_applied + r.puts_shed + r.puts_aborted = r.puts_issued

let gets_conserved r = r.gets_ok + r.gets_shed + r.gets_aborted = r.gets_issued

(* --- wire protocol (fixed-size frames) ------------------------------- *)

let req_bytes = 32
let reply_bytes = 32

let pad s len =
  if String.length s >= len then String.sub s 0 len
  else s ^ String.make (len - String.length s) ' '

let is_reply tag reply =
  String.length reply >= String.length tag
  && String.sub reply 0 (String.length tag) = tag

(* --- shared-segment layout -------------------------------------------- *)

(* Control segment: shard [s] owns the 256-byte slot at [s*256] — the
   robust rwlock word at +0, the shard record cell at +64.  The
   store-wide meta slot (robust mutex + flush counter) sits after the
   last shard.  The backing file gives each shard one page. *)
let slot = 256
let lock_off s = s * slot
let data_off s = (s * slot) + 64
let meta_lock_off p = p.shards * slot
let meta_data_off p = (p.shards * slot) + 64
let ctl_size p = (p.shards + 1) * slot
let file_page = 4096
let file_off s = s * file_page
let kv_path = "/kv/store"

type shard_data = {
  cache : (int, string) Hashtbl.t;
  mutable lru : int list;  (* MRU-first keys currently cached *)
  mutable dirty : (int * string) list;  (* newest-first pending batch *)
  mutable epoch_start : int;  (* bumped entering a put *)
  mutable epoch_done : int;  (* bumped leaving it; torn when behind *)
}

type meta_data = { mutable total_flushes : int }

let shard_key : shard_data Univ.key = Univ.key ()
let meta_key : meta_data Univ.key = Univ.key ()

let shard_at ctl s =
  Syncvar.locate
    (Syncvar.place ctl ~offset:(data_off s))
    ~key:shard_key
    ~make:(fun () ->
      {
        cache = Hashtbl.create 16;
        lru = [];
        dirty = [];
        epoch_start = 0;
        epoch_done = 0;
      })

let meta_at p ctl =
  Syncvar.locate
    (Syncvar.place ctl ~offset:(meta_data_off p))
    ~key:meta_key
    ~make:(fun () -> { total_flushes = 0 })

let svc i = Printf.sprintf "kv%d" i

(* --- server process --------------------------------------------------- *)

type job = Stop | Work of Sysdefs.fd | Shed of Sysdefs.fd

let server p ctl ~idx ~assigned ~counters () =
  let ( cache_hits,
        cache_misses,
        flushes,
        recoveries,
        torn_repaired,
        server_applied ) =
    counters
  in
  T.setconcurrency (max 1 p.lwps_per_server);
  let fd_file = Uctx.open_file kv_path in
  let fileseg = Uctx.mmap fd_file in
  let locks =
    Array.init p.shards (fun s ->
        Rwlock.create_shared ~robust:p.robust
          (Syncvar.place ctl ~offset:(lock_off s)))
  in
  let shards = Array.init p.shards (fun s -> shard_at ctl s) in
  let meta_mu =
    Mutex.create_shared ~robust:p.robust
      (Syncvar.place ctl ~offset:(meta_lock_off p))
  in
  let meta = meta_at p ctl in
  (* One write syscall per batch — the point of batching.  Runs with the
     shard write lock held, so a chaos proc-kill at the lseek/write
     boundary dies mid-critical-section with a non-empty dirty list. *)
  let flush_shard s sd =
    if sd.dirty <> [] then begin
      let n = List.length sd.dirty in
      Uctx.lseek fd_file (file_off s);
      ignore (Uctx.write fd_file (String.make (n * p.value_bytes) 'w'));
      incr flushes;
      sd.dirty <- [];
      (* store-wide flush counter under the robust meta mutex; lock
         order is always shard -> meta *)
      (match Mutex.enter_robust meta_mu with
      | `Locked -> ()
      | `Owner_dead ->
          (* a counter cannot tear; just take the repair credit *)
          incr recoveries;
          Mutex.set_consistent meta_mu);
      meta.total_flushes <- meta.total_flushes + 1;
      Mutex.exit meta_mu
    end
  in
  (* Robust acquisition: on OWNERDEAD we hold the write side over
     possibly-torn shard state — re-flush the dirty list (idempotent:
     every entry still carries its value), reconcile the epoch, then
     declare the shard consistent and drop to the side we wanted. *)
  let lock_shard s kind =
    match Rwlock.enter_robust locks.(s) kind with
    | `Locked -> ()
    | `Owner_dead ->
        let sd = shards.(s) in
        if sd.epoch_start <> sd.epoch_done then incr torn_repaired;
        flush_shard s sd;
        sd.epoch_done <- sd.epoch_start;
        incr recoveries;
        Rwlock.set_consistent locks.(s);
        (match kind with
        | Rwlock.Reader -> Rwlock.downgrade locks.(s)
        | Rwlock.Writer -> ())
  in
  (* serve-side compute: simulated always; with real busy-work behind it
     (offloaded to the worker-domain pool) when [work_spin] > 0.  The
     thunk writes only its own cell; the fold into [spin_sink] happens
     fiber-side, after the await, in simulated order. *)
  let spin_sink = ref 0 in
  let compute_us ~salt us =
    if p.work_spin > 0 then begin
      let cell = ref 0 in
      Uctx.offload ~cost:(Time.us us) (fun () ->
          cell := Parexec.spin ~seed:salt p.work_spin);
      spin_sink := !spin_sink lxor !cell
    end
    else Uctx.charge_us us
  in
  ignore (spin_sink : int ref);
  let cache_insert sd key v =
    if not (Hashtbl.mem sd.cache key) then begin
      sd.lru <- key :: sd.lru;
      if List.length sd.lru > p.lru_capacity then begin
        match List.rev sd.lru with
        | last :: _ ->
            Hashtbl.remove sd.cache last;
            sd.lru <- List.filter (fun k -> k <> last) sd.lru
        | [] -> ()
      end
    end;
    Hashtbl.replace sd.cache key v
  in
  let serve_get key =
    let s = key mod p.shards in
    lock_shard s Rwlock.Reader;
    let sd = shards.(s) in
    if Hashtbl.mem sd.cache key then begin
      incr cache_hits;
      compute_us ~salt:key 5;
      Rwlock.exit locks.(s)
    end
    else begin
      incr cache_misses;
      (* promote to the write side to fill the cache from the mapping *)
      Rwlock.exit locks.(s);
      lock_shard s Rwlock.Writer;
      Uctx.touch fileseg ~offset:(file_off s);
      compute_us ~salt:key (5 + (p.value_bytes / 32));
      cache_insert sd key (Printf.sprintf "v%d" key);
      Rwlock.exit locks.(s)
    end
  in
  let serve_put key v =
    let s = key mod p.shards in
    lock_shard s Rwlock.Writer;
    let sd = shards.(s) in
    sd.epoch_start <- sd.epoch_start + 1;
    cache_insert sd key v;
    sd.dirty <- (key, v) :: sd.dirty;
    compute_us ~salt:key (5 + (p.value_bytes / 32));
    (* The put's mutation is complete: close the epoch BEFORE any flush,
       so a server killed mid-flush no longer presents a torn epoch —
       the dirty list alone carries the recovery (re-flush is
       idempotent: entries keep their values until the write returns). *)
    sd.epoch_done <- sd.epoch_done + 1;
    if List.length sd.dirty >= p.batch then
      if p.flush_under_write then begin
        (* legacy placement: the disk write runs with the write lock
           held and every reader on the shard queues behind it *)
        flush_shard s sd;
        Rwlock.exit locks.(s)
      end
      else begin
        (* Drop to the read side for the flush: gets proceed during the
           disk write, while writers stay excluded — nobody can mutate
           [dirty] under us, and the writer-held invariants of
           OWNERDEAD repair are untouched (a dead reader's hold is
           simply dropped; the intact dirty list makes the next flush
           redo the work). *)
        Rwlock.downgrade locks.(s);
        flush_shard s sd;
        Rwlock.exit locks.(s)
      end
    else Rwlock.exit locks.(s);
    incr server_applied
  in
  (* frame dispatch: "G <key>" / "P <key> <n>" *)
  let handle req =
    match String.split_on_char ' ' (String.trim req) with
    | "G" :: key :: _ ->
        serve_get (int_of_string key);
        pad "val" reply_bytes
    | "P" :: key :: n :: _ ->
        serve_put (int_of_string key) (pad (Printf.sprintf "v%s.%s" key n)
                                         p.value_bytes);
        pad "ok" reply_bytes
    | _ -> pad "err" reply_bytes
  in
  let qmu = Mutex.create () in
  let qsem = Semaphore.create () in
  let workq = Queue.create () in
  let worker () =
    let rec serve_conn fd busy =
      let req =
        try Uctx.read_exact fd ~len:req_bytes
        with Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _) -> ""
      in
      if String.length req < req_bytes then Uctx.close fd
      else begin
        Uctx.charge_us 3 (* parse *);
        let reply =
          if busy then begin
            Uctx.note_shed ();
            pad "busy" reply_bytes
          end
          else handle req
        in
        match Uctx.write_all fd reply with
        | () -> serve_conn fd busy
        | exception Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _)
          ->
            Uctx.close fd
      end
    in
    let rec loop () =
      Semaphore.p qsem;
      Mutex.enter qmu;
      let job = Queue.pop workq in
      Mutex.exit qmu;
      match job with
      | Stop -> ()
      | Work fd ->
          serve_conn fd false;
          loop ()
      | Shed fd ->
          serve_conn fd true;
          loop ()
    in
    loop ()
  in
  let acceptor () =
    let lfd = Uctx.listen ~name:(svc idx) ~backlog:p.listen_backlog in
    for _ = 1 to assigned do
      let fd = Uctx.accept lfd in
      Mutex.enter qmu;
      (* shed at admission: a queue this deep means the workers are a
         full burst behind — answer busy instead of growing the backlog *)
      let job =
        if p.shed_queue_limit > 0 && Queue.length workq >= p.shed_queue_limit
        then Shed fd
        else Work fd
      in
      Queue.add job workq;
      Mutex.exit qmu;
      Semaphore.v qsem
    done;
    Mutex.enter qmu;
    for _ = 1 to p.workers_per_server do
      Queue.add Stop workq
    done;
    Mutex.exit qmu;
    for _ = 1 to p.workers_per_server do
      Semaphore.v qsem
    done;
    Uctx.close lfd
  in
  let ts =
    T.create ~flags:[ T.THREAD_WAIT ] acceptor
    :: List.init p.workers_per_server (fun _ ->
           T.create ~flags:[ T.THREAD_WAIT ] worker)
  in
  List.iter (fun t -> ignore (T.wait ~thread:t ())) ts

(* --- client / load generator ------------------------------------------ *)

exception Conn_dead

(* Reply read with a hard deadline (see Net_server): a client that waits
   forever on a killed server would turn one proc-kill into a hung
   fleet. *)
let deadline_read fd ~len ~deadline =
  let buf = Buffer.create len in
  let rec go () =
    if Buffer.length buf >= len then Buffer.contents buf
    else
      let now = Uctx.gettime () in
      if Time.(now >= deadline) then Buffer.contents buf
      else
        let ready =
          Uctx.poll
            ~timeout:(Time.diff deadline now)
            [ { Sysdefs.pfd = fd; want_in = true; want_out = false } ]
        in
        if ready = [] then Buffer.contents buf
        else
          match Uctx.try_read fd ~len:(len - Buffer.length buf) with
          | `Data s ->
              Buffer.add_string buf s;
              go ()
          | `Again -> go ()
          | `Eof -> Buffer.contents buf
          | `Reset -> raise (Errno.Unix_error (Errno.ECONNRESET, "read"))
  in
  go ()

type op = Get of int | Put of int

let loadgen p ~latency ~tallies ~gaveup_per () =
  let ( gets_ok,
        gets_shed,
        gets_aborted,
        puts_applied,
        puts_shed,
        puts_aborted,
        gaveup,
        refused ) =
    tallies
  in
  T.setconcurrency
    (if p.client_lwps > 0 then p.client_lwps else max 1 p.clients);
  let one cid () =
    let rng =
      Rng.create ~seed:(Int64.add p.seed (Int64.of_int (7919 * cid)))
    in
    (* the op mix is drawn up front so an aborted remainder still knows
       what it was — conservation must classify never-sent requests *)
    let ops =
      Array.init p.requests_per_client (fun _ ->
          if Rng.int rng 100 < p.read_pct then Get (Rng.int rng p.keys)
          else Put (Rng.int rng p.keys))
    in
    let abort_from j =
      for r = j to p.requests_per_client - 1 do
        match ops.(r) with
        | Get _ -> incr gets_aborted
        | Put _ -> incr puts_aborted
      done
    in
    let target = (cid - 1) mod p.server_procs in
    let rec connect_bounded attempt =
      match Uctx.connect (svc target) with
      | fd -> Some fd
      | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
          incr refused;
          if attempt >= p.connect_retry_limit then begin
            incr gaveup;
            gaveup_per.(target) <- gaveup_per.(target) + 1;
            None
          end
          else begin
            let base = max 1 p.retry_base_us in
            let backoff = base * (1 lsl min attempt 6) in
            Uctx.sleep (Time.us (backoff + Rng.int rng base));
            connect_bounded (attempt + 1)
          end
    in
    match connect_bounded 0 with
    | None -> abort_from 0
    | Some fd -> (
        let done_reqs = ref 0 in
        try
          Array.iteri
            (fun r op ->
              ignore r;
              if p.think_time_us > 0 then
                Uctx.sleep
                  (Time.us_f
                     (Rng.exponential rng
                        ~mean:(float_of_int p.think_time_us)));
              let frame =
                match op with
                | Get key -> pad (Printf.sprintf "G %d" key) req_bytes
                | Put key -> pad (Printf.sprintf "P %d %d" key r) req_bytes
              in
              let t0 = Uctx.gettime () in
              Uctx.write_all fd frame;
              let reply =
                deadline_read fd ~len:reply_bytes
                  ~deadline:(Time.add t0 (Time.us p.request_deadline_us))
              in
              if String.length reply < reply_bytes then raise Conn_dead;
              (if is_reply "busy" reply then
                 match op with
                 | Get _ -> incr gets_shed
                 | Put _ -> incr puts_shed
               else begin
                 Hist.add latency (Time.diff (Uctx.gettime ()) t0);
                 match op with
                 | Get _ -> incr gets_ok
                 | Put _ -> incr puts_applied
               end);
              incr done_reqs)
            ops;
          Uctx.close fd
        with
        | Conn_dead
        | Errno.Unix_error ((Errno.ECONNRESET | Errno.EPIPE), _)
        ->
          abort_from !done_reqs;
          Uctx.close fd)
  in
  let ts =
    List.init p.clients (fun cid ->
        T.create ~flags:[ T.THREAD_WAIT ] (one (cid + 1)))
  in
  List.iter (fun t -> ignore (T.wait ~thread:t ())) ts;
  (* A live server's acceptor expects every assigned slot; gave-up slots
     are drained with bare connect/close.  Bounded: a killed server's
     listener refuses forever, and nobody is waiting on it anyway. *)
  Array.iteri
    (fun i n ->
      for _ = 1 to n do
        let rec drain attempt =
          if attempt < 25 then
            match Uctx.connect (svc i) with
            | fd -> Uctx.close fd
            | exception Errno.Unix_error (Errno.ECONNREFUSED, _) ->
                Uctx.sleep (Time.ms 2);
                drain (attempt + 1)
        in
        drain 0
      done)
    gaveup_per

(* --- the run ----------------------------------------------------------- *)

let run ?(cpus = 2) ?cost ?chaos ?domains ?(trace = false) ?debrief p =
  if p.server_procs < 1 || p.shards < 1 || p.clients < 1 then
    invalid_arg "Kv_store.run: params";
  let k = Kernel.boot ~cpus ?cost ?chaos ?domains () in
  if not trace then Kernel.set_tracing k false;
  (match Fs.create_file (Kernel.fs k) ~path:kv_path () with
  | Ok f ->
      ignore (Fs.write f ~pos:0 (String.make (p.shards * file_page) 'd'));
      (* start cold so get-misses pay the disk *)
      Shm.evict_all (Fs.segment f)
  | Error _ -> invalid_arg "Kv_store.run: setup failed");
  let latency = Hist.create "kv latency" in
  let gets_ok = ref 0 and gets_shed = ref 0 and gets_aborted = ref 0 in
  let puts_applied = ref 0 and puts_shed = ref 0 and puts_aborted = ref 0 in
  let gaveup = ref 0 and refused = ref 0 in
  let cache_hits = ref 0 and cache_misses = ref 0 in
  let flushes = ref 0 and recoveries = ref 0 and torn_repaired = ref 0 in
  let server_applied = ref 0 in
  let killed = ref 0 in
  let makespan = ref Time.zero in
  let finishing body () =
    body ();
    let t = Uctx.gettime () in
    if Time.(t > !makespan) then makespan := t
  in
  let gaveup_per = Array.make p.server_procs 0 in
  let assigned = Array.make p.server_procs 0 in
  for cid = 1 to p.clients do
    let t = (cid - 1) mod p.server_procs in
    assigned.(t) <- assigned.(t) + 1
  done;
  let counters =
    (cache_hits, cache_misses, flushes, recoveries, torn_repaired,
     server_applied)
  in
  let master () =
    let ctl = Uctx.mmap_anon ~size:(ctl_size p) ~shared:true in
    (* pre-create every lock word and record so the segment layout is
       fixed before any server races to look *)
    for s = 0 to p.shards - 1 do
      ignore
        (Rwlock.create_shared ~robust:p.robust
           (Syncvar.place ctl ~offset:(lock_off s)));
      ignore (shard_at ctl s)
    done;
    ignore
      (Mutex.create_shared ~robust:p.robust
         (Syncvar.place ctl ~offset:(meta_lock_off p)));
    ignore (meta_at p ctl);
    for i = 0 to p.server_procs - 1 do
      ignore
        (Uctx.fork1
           ~child_main:
             (Libthread.boot
                (finishing
                   (server p ctl ~idx:i ~assigned:(assigned.(i) + gaveup_per.(i))
                      ~counters))))
    done;
    (* reap the fleet; 137 = killed by chaos *)
    for _ = 1 to p.server_procs do
      let _, status = Uctx.waitpid () in
      if status = 137 then incr killed
    done;
    let t = Uctx.gettime () in
    if Time.(t > !makespan) then makespan := t
  in
  ignore (Kernel.spawn k ~name:"kv-master" ~main:master);
  let tallies =
    ( gets_ok,
      gets_shed,
      gets_aborted,
      puts_applied,
      puts_shed,
      puts_aborted,
      gaveup,
      refused )
  in
  ignore
    (Kernel.spawn k ~name:"kv-loadgen"
       ~main:
         (Libthread.boot
            (finishing (loadgen p ~latency ~tallies ~gaveup_per))));
  Kernel.run k;
  (match debrief with Some f -> f k | None -> ());
  Kernel.shutdown k;
  let gets_issued = !gets_ok + !gets_shed + !gets_aborted in
  let puts_issued = !puts_applied + !puts_shed + !puts_aborted in
  ignore gets_issued;
  ignore puts_issued;
  (* issued counts are reconstructed from the pre-drawn mix: every op of
     every client is classified exactly once by construction; recompute
     them from the client parameters as the independent side of the
     conservation identity *)
  let total_issued = p.clients * p.requests_per_client in
  let served = !gets_ok + !puts_applied in
  {
    gets_ok = !gets_ok;
    gets_shed = !gets_shed;
    gets_aborted = !gets_aborted;
    gets_issued = total_issued - puts_issued;
    puts_applied = !puts_applied;
    puts_shed = !puts_shed;
    puts_aborted = !puts_aborted;
    puts_issued = total_issued - gets_issued;
    server_applied = !server_applied;
    recoveries = !recoveries;
    torn_repaired = !torn_repaired;
    flushes = !flushes;
    cache_hits = !cache_hits;
    cache_misses = !cache_misses;
    gaveup = !gaveup;
    refused = !refused;
    killed = !killed;
    makespan = !makespan;
    throughput_rps =
      (if Time.(!makespan > 0L) then
         float_of_int served /. Time.to_s !makespan
       else 0.);
    latency;
    lwps_created = Kernel.lwp_create_count k;
    syscalls = Kernel.syscall_count k;
  }

let pp_results ppf r =
  Format.fprintf ppf
    "gets=%d/%d puts=%d/%d shed=%d aborted=%d makespan=%a throughput=%.0f \
     req/s cache=%d/%d flushes=%d lwps=%d latency: %a"
    r.gets_ok r.gets_issued r.puts_applied r.puts_issued
    (r.gets_shed + r.puts_shed)
    (r.gets_aborted + r.puts_aborted)
    Time.pp r.makespan r.throughput_rps r.cache_hits
    (r.cache_hits + r.cache_misses)
    r.flushes r.lwps_created Hist.pp_summary r.latency;
  if r.killed > 0 || r.recoveries > 0 then
    Format.fprintf ppf " killed=%d recoveries=%d torn=%d applied-unacked=%d"
      r.killed r.recoveries r.torn_repaired
      (r.server_applied - r.puts_applied)
