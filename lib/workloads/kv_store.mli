(** A sharded key-value store spread over forked server processes — the
    showcase workload for process-shared ([USYNC_PROCESS])
    synchronization.

    A master process creates one shared anonymous control segment and a
    mapped backing file, then forks [server_procs] servers that all map
    both.  Hash shards live in the control segment, each guarded by a
    {e robust process-shared rwlock} and carrying a small LRU cache over
    the backing file plus a dirty list that is write-batched to disk in
    one syscall per [batch] puts.  A separate load-generator process
    drives the servers through the socket layer with the hardened client
    protocol: bounded connect retries with exponential backoff,
    per-request deadlines, and abort-on-dead-connection.

    Under chaos [proc-kill] a server dies at a syscall boundary — often
    inside a shard critical section, since the batched flush issues its
    syscalls with the write lock held.  The robust-lock protocol marks
    the shard lock [OWNERDEAD]; the next acquirer (from any surviving
    server) is admitted as the writer, re-flushes the shard's dirty list
    (idempotent), reconciles the torn epoch, declares the lock
    consistent, and the store keeps serving.  Without [robust], the same
    kill leaves the shard lock held forever: contenders block, clients
    deadline out, and the run completes with the shard's traffic
    aborted — failed-safe, but dead.

    Conservation is classified client-side so it remains a checkable
    identity even when replies die with their server: every issued
    request ends up exactly one of served/applied, shed, or aborted
    (see {!puts_conserved} / {!gets_conserved}).  Servers separately
    count applied puts; under kills [server_applied] may exceed the
    client-acked [puts_applied] — reported, never silently lost. *)

type params = {
  server_procs : int;  (** forked server processes *)
  shards : int;  (** hash shards in the shared segment *)
  lwps_per_server : int;  (** LWP-pool hint per server *)
  workers_per_server : int;  (** worker threads per server *)
  clients : int;  (** client connections, round-robin over servers *)
  requests_per_client : int;
  read_pct : int;  (** 0..100: share of gets in the op mix *)
  keys : int;  (** key space (shard = key mod shards) *)
  value_bytes : int;
  lru_capacity : int;  (** cached values per shard *)
  batch : int;  (** dirty puts buffered before one batched write *)
  think_time_us : int;  (** mean client think time *)
  shed_queue_limit : int;
      (** connections queued at a server before it answers "busy"
          (0 = never shed) *)
  listen_backlog : int;
  connect_retry_limit : int;
  retry_base_us : int;
  request_deadline_us : int;
  client_lwps : int;  (** load-generator LWP pool (0 = one per client) *)
  robust : bool;
      (** robust shard locks; required for recovery under proc-kill *)
  flush_under_write : bool;
      (** legacy flush placement: run the batched disk write with the
          shard {e write} lock held, so every get on the shard queues
          behind the flush and the tail latency carries the disk time.
          [false] (default): the writer downgrades to the read side
          before flushing — gets proceed during the disk write, writers
          stay excluded, and OWNERDEAD re-flush idempotence is
          untouched (the dirty list is cleared only after the write
          returns).  Kept for the bench tail-latency contrast. *)
  work_spin : int;
      (** iterations of {e real} busy-work ({!Sunos_sim.Parexec.spin})
          behind each serve compute phase, offloaded to the machine's
          worker-domain pool.  0 (default): compute is purely
          simulated.  Bit-identical schedule for any domain count. *)
  seed : int64;
}

val default_params : params

type results = {
  gets_ok : int;
  gets_shed : int;
  gets_aborted : int;
  gets_issued : int;
  puts_applied : int;  (** puts acked to a client *)
  puts_shed : int;
  puts_aborted : int;
  puts_issued : int;
  server_applied : int;  (** puts the servers applied (ack may have died) *)
  recoveries : int;  (** [OWNERDEAD] repairs performed *)
  torn_repaired : int;  (** repairs that found a torn shard epoch *)
  flushes : int;  (** batched writes to the backing file *)
  cache_hits : int;
  cache_misses : int;
  gaveup : int;
  refused : int;
  killed : int;  (** servers lost to chaos proc-kill *)
  makespan : Sunos_sim.Time.span;
  throughput_rps : float;
  latency : Sunos_sim.Stats.Hist.t;  (** client round trip, non-shed *)
  lwps_created : int;
  syscalls : int;
}

val puts_conserved : results -> bool
(** [puts_applied + puts_shed + puts_aborted = puts_issued]. *)

val gets_conserved : results -> bool

val run :
  ?cpus:int ->
  ?cost:Sunos_hw.Cost_model.t ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  ?domains:int ->
  ?trace:bool ->
  ?debrief:(Sunos_kernel.Kernel.t -> unit) ->
  params ->
  results
(** [chaos], [trace] and [debrief] as in {!Net_server.run}; [domains]
    as in {!Sunos_kernel.Kernel.boot} (the pool is joined before the
    results are returned). *)

val pp_results : Format.formatter -> results -> unit
