(** The machine cost model: simulated duration of every architectural
    operation, calibrated to the paper's platform (SPARCstation 1+,
    25 MHz SPARC, SunOS prototype, 1991).

    The model is a plain record so experiments can perturb individual
    costs (e.g. "what if traps were free?") without touching code.  All
    values are {!Sunos_sim.Time.span}s.  Aggregate costs (thread creation,
    synchronization round trips) are {e not} in this table — they emerge
    from the simulation by summing the component paths, and the benchmark
    harness checks the emergent values against the paper's Figures 5/6. *)

type t = {
  (* --- user-level (library) path components ------------------------- *)
  call : Sunos_sim.Time.span;  (** procedure call + register shuffle *)
  tcb_alloc : Sunos_sim.Time.span;  (** TCB from the library free list *)
  tcb_init : Sunos_sim.Time.span;  (** fill thread state, link lists *)
  stack_cache_hit : Sunos_sim.Time.span;  (** pop a cached default stack *)
  stack_alloc_cold : Sunos_sim.Time.span;  (** heap-allocate + zero TLS *)
  tls_zero : Sunos_sim.Time.span;  (** zero thread-local storage *)
  runq_op : Sunos_sim.Time.span;  (** insert/remove on the user run queue *)
  setjmp_longjmp : Sunos_sim.Time.span;
      (** the Figure 6 baseline: register-window flush dominated *)
  user_ctx_save : Sunos_sim.Time.span;  (** save thread registers to TCB *)
  user_ctx_restore : Sunos_sim.Time.span;  (** load registers from TCB *)
  sync_fast : Sunos_sim.Time.span;  (** uncontended ldstub + few insns *)
  sync_slow_extra : Sunos_sim.Time.span;
      (** extra user-level bookkeeping on the contended path *)
  tls_access : Sunos_sim.Time.span;
  (* --- kernel path components --------------------------------------- *)
  trap_entry : Sunos_sim.Time.span;  (** user->kernel crossing *)
  trap_exit : Sunos_sim.Time.span;  (** kernel->user crossing *)
  syscall_fixed : Sunos_sim.Time.span;  (** argument copy, dispatch table *)
  kernel_dispatch : Sunos_sim.Time.span;  (** pick next LWP + switch *)
  sleep_enqueue : Sunos_sim.Time.span;  (** put LWP on a sleep queue *)
  wakeup : Sunos_sim.Time.span;  (** move LWP to a run queue *)
  lwp_create : Sunos_sim.Time.span;
      (** kernel stack + u-area allocation + scheduler insertion *)
  lwp_destroy : Sunos_sim.Time.span;
  fork_base : Sunos_sim.Time.span;  (** duplicate address space skeleton *)
  fork_per_lwp : Sunos_sim.Time.span;  (** replicate one LWP in the child *)
  exec_cost : Sunos_sim.Time.span;
  signal_post : Sunos_sim.Time.span;  (** mark pending, find eligible LWP *)
  signal_deliver : Sunos_sim.Time.span;  (** build handler frame *)
  kwait_fixed : Sunos_sim.Time.span;
      (** kernel block on a shared-memory sync variable (futex-style) *)
  kwake_fixed : Sunos_sim.Time.span;
  pagefault_service : Sunos_sim.Time.span;  (** minor fault: map a page *)
  pipe_op : Sunos_sim.Time.span;
  sock_listen : Sunos_sim.Time.span;
      (** allocate + register a listening endpoint (PCB setup) *)
  sock_connect : Sunos_sim.Time.span;
      (** client-side protocol processing for connection setup; the
          three-way-handshake wire time is charged separately through
          the net device's round trip *)
  sock_accept : Sunos_sim.Time.span;
      (** dequeue an established connection, allocate its fd state *)
  sock_op : Sunos_sim.Time.span;
      (** per-call protocol processing on an established stream
          (header handling, buffer bookkeeping); data copy is charged
          per KiB on top *)
  poll_fixed : Sunos_sim.Time.span;
  poll_per_fd : Sunos_sim.Time.span;
  fs_op : Sunos_sim.Time.span;  (** namei + inode manipulation *)
  copy_per_kb : Sunos_sim.Time.span;  (** kernel/user data copy, per KiB *)
  (* --- devices ------------------------------------------------------- *)
  disk_access : Sunos_sim.Time.span;  (** mean rotational + seek + transfer *)
  net_rtt : Sunos_sim.Time.span;  (** LAN round trip *)
  tty_latency : Sunos_sim.Time.span;
  (* --- scheduler parameters ------------------------------------------ *)
  quantum : Sunos_sim.Time.span;  (** timeshare scheduling quantum *)
  clock_tick : Sunos_sim.Time.span;  (** 100 Hz clock *)
  adaptive_spin_limit : int;
      (** probes an adaptive mutex makes while the owner is on a CPU
          before it gives up and sleeps.  A count, not a duration —
          [scale] leaves it unchanged; ablations sweep it *)
  coalesce : bool;
      (** run-ahead charge coalescing (on by default): the kernel
          grants each resumed fiber a time budget bounded by the event
          queue's next pending event, and [Uctx.charge] accumulates
          spans in a user-context ledger instead of performing an
          effect per charge — one settle event per window.  Strictly
          behavior-preserving (see DESIGN.md); the toggle exists for
          the ablation and the A/B equivalence suite *)
  coalesce_window : Sunos_sim.Time.span;
      (** upper bound on a single run-ahead grant, independent of the
          remaining quantum and the event horizon; [scale] scales it *)
  coalesce_min_window : Sunos_sim.Time.span;
      (** floor under which a run-ahead grant is skipped: when the
          remaining quantum (or the coalesce window) is already below
          this, the budget arithmetic costs more than the events it
          would save — the dispatch-storm pathology.  Skipping is
          behavior-identical (equivalent to coalescing off for that
          dispatch, which the equivalence suite pins).  [scale] scales
          it *)
}

val default : t
(** Calibrated to the paper's SPARCstation 1+.  See DESIGN.md. *)

val free : t
(** Everything costs zero — for semantic tests where time is noise. *)

val scale : float -> t -> t
(** Multiply every cost by a factor (device times and quantum included;
    [adaptive_spin_limit] is a count and is left unchanged). *)
