(** The machine: CPUs + devices + cost model + the event queue that drives
    them.  One [Machine.t] per simulation. *)

type t = {
  eventq : Sunos_sim.Eventq.t;
  cpus : Cpu.t array;
  disk : Devices.Disk.t;
  net : Devices.Net.t;
  tty : Devices.Tty.t;
  cost : Cost_model.t;
  trace : Sunos_sim.Tracebuf.t;
  rng : Sunos_sim.Rng.t;
  chaos : Sunos_sim.Faultgen.t;
}

val create :
  ?cpus:int ->
  ?cost:Cost_model.t ->
  ?seed:int64 ->
  ?trace_capacity:int ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  unit ->
  t
(** Defaults: 1 CPU (the paper's measurement platform was a uniprocessor),
    {!Cost_model.default}, seed 1, chaos profile from [SUNOS_CHAOS]
    (off when unset).  The chaos stream is seeded independently of the
    machine's workload stream. *)

val now : t -> Sunos_sim.Time.t
val ncpus : t -> int

val trace : t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Emit a trace record stamped with the current time. *)

val run : ?until:Sunos_sim.Time.t -> ?max_events:int -> t -> unit
(** Drain the event queue (see {!Sunos_sim.Eventq.run}). *)
