(** The machine: CPUs + devices + cost model + the event queue that drives
    them.  One [Machine.t] per simulation. *)

type t = {
  eventq : Sunos_sim.Eventq.t;
  cpus : Cpu.t array;
  disk : Devices.Disk.t;
  net : Devices.Net.t;
  tty : Devices.Tty.t;
  cost : Cost_model.t;
  trace : Sunos_sim.Tracebuf.t;
  rng : Sunos_sim.Rng.t;
  chaos : Sunos_sim.Faultgen.t;
  pool : Sunos_sim.Parexec.t;
      (** worker domains for offloaded compute (see
          {!Sunos_sim.Parexec}); the simulation itself always advances
          on the calling domain *)
}

val create :
  ?cpus:int ->
  ?cost:Cost_model.t ->
  ?seed:int64 ->
  ?trace_capacity:int ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  ?domains:int ->
  unit ->
  t
(** Defaults: 1 CPU (the paper's measurement platform was a uniprocessor),
    {!Cost_model.default}, seed 1, chaos profile from [SUNOS_CHAOS]
    (off when unset), [domains] from [SUNOS_DOMAINS] (1 when unset: no
    worker domains, the fully inline engine).  The chaos stream is
    seeded independently of the machine's workload stream.  The event
    queue is created with [cpus + 1] shards: shard 0 for kernel-wide
    and device events, shard [id + 1] for CPU [id].  Simulated results
    are bit-identical for every [domains] value. *)

val now : t -> Sunos_sim.Time.t
val ncpus : t -> int

val domains : t -> int
(** Domain count of the worker pool (1 = no workers). *)

val shutdown : t -> unit
(** Join the worker pool.  Idempotent; an [at_exit] sweep catches
    machines never shut down explicitly, but long-lived processes that
    create many machines should call this. *)

val trace : t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Emit a trace record stamped with the current time. *)

val run : ?until:Sunos_sim.Time.t -> ?max_events:int -> t -> unit
(** Drain the event queue (see {!Sunos_sim.Eventq.run}). *)
