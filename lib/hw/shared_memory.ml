let page_size = 4096

type t = {
  id : int;
  name : string;
  size : int;
  mutable anon_private : bool;
  clone_of : int option;
  cells : (int, Sunos_sim.Univ.t) Hashtbl.t;
  mutable resident : bool array;
  mutable next_offset : int;
  mutable map_count : int;
}

(* segment ids only need uniqueness; Atomic keeps them unique across
   the bench runner's worker domains *)
let next_id = Atomic.make 0

let create ~name ~size =
  if size <= 0 then invalid_arg "Shared_memory.create: size";
  let pages = (size + page_size - 1) / page_size in
  {
    id = 1 + Atomic.fetch_and_add next_id 1;
    name;
    size;
    anon_private = false;
    clone_of = None;
    cells = Hashtbl.create 16;
    resident = Array.make pages false;
    next_offset = 0;
    map_count = 0;
  }

let clone t =
  {
    id = 1 + Atomic.fetch_and_add next_id 1;
    name = t.name;
    size = t.size;
    anon_private = t.anon_private;
    clone_of = Some t.id;
    cells = Hashtbl.copy t.cells;
    resident = Array.copy t.resident;
    next_offset = t.next_offset;
    map_count = 0;
  }

let id t = t.id
let name t = t.name
let size t = t.size
let anon_private t = t.anon_private
let mark_anon_private t = t.anon_private <- true
let clone_of t = t.clone_of
let page_count t = Array.length t.resident

let check_offset t offset =
  if offset < 0 || offset >= t.size then
    invalid_arg "Shared_memory: offset out of bounds"

let put t ~offset u =
  check_offset t offset;
  if Hashtbl.mem t.cells offset then
    invalid_arg "Shared_memory.put: offset occupied";
  Hashtbl.replace t.cells offset u

let get t ~offset =
  check_offset t offset;
  Hashtbl.find_opt t.cells offset

let remove t ~offset = Hashtbl.remove t.cells offset

let alloc_offset t =
  let rec fresh () =
    let o = t.next_offset in
    t.next_offset <- t.next_offset + 64;
    if t.next_offset > t.size then
      invalid_arg "Shared_memory.alloc_offset: segment full";
    if Hashtbl.mem t.cells o then fresh () else o
  in
  fresh ()

let resident t ~page = t.resident.(page)
let make_resident t ~page = t.resident.(page) <- true
let evict t ~page = t.resident.(page) <- false
let evict_all t = Array.fill t.resident 0 (Array.length t.resident) false
let page_of_offset ~offset = offset / page_size
let map_count t = t.map_count
let incr_map_count t = t.map_count <- t.map_count + 1
let decr_map_count t = t.map_count <- max 0 (t.map_count - 1)
