module Time = Sunos_sim.Time

type t = {
  call : Time.span;
  tcb_alloc : Time.span;
  tcb_init : Time.span;
  stack_cache_hit : Time.span;
  stack_alloc_cold : Time.span;
  tls_zero : Time.span;
  runq_op : Time.span;
  setjmp_longjmp : Time.span;
  user_ctx_save : Time.span;
  user_ctx_restore : Time.span;
  sync_fast : Time.span;
  sync_slow_extra : Time.span;
  tls_access : Time.span;
  trap_entry : Time.span;
  trap_exit : Time.span;
  syscall_fixed : Time.span;
  kernel_dispatch : Time.span;
  sleep_enqueue : Time.span;
  wakeup : Time.span;
  lwp_create : Time.span;
  lwp_destroy : Time.span;
  fork_base : Time.span;
  fork_per_lwp : Time.span;
  exec_cost : Time.span;
  signal_post : Time.span;
  signal_deliver : Time.span;
  kwait_fixed : Time.span;
  kwake_fixed : Time.span;
  pagefault_service : Time.span;
  pipe_op : Time.span;
  sock_listen : Time.span;
  sock_connect : Time.span;
  sock_accept : Time.span;
  sock_op : Time.span;
  poll_fixed : Time.span;
  poll_per_fd : Time.span;
  fs_op : Time.span;
  copy_per_kb : Time.span;
  disk_access : Time.span;
  net_rtt : Time.span;
  tty_latency : Time.span;
  quantum : Time.span;
  clock_tick : Time.span;
  adaptive_spin_limit : int;
      (* probes an adaptive mutex makes while the owner runs before it
         gives up and sleeps; a count, not a time, so [scale] leaves it
         alone (ablations sweep it per the lock-algorithms literature) *)
  coalesce : bool;
      (* run-ahead charge coalescing: batch CPU-time accounting into a
         per-LWP ledger, settling with one event per grant window
         instead of one per [Uctx.charge].  Behavior-preserving (the
         budget never crosses the event queue's next pending event);
         the toggle exists for ablations and for A/B equivalence
         tests, not because off is ever better *)
  coalesce_window : Time.span;
      (* upper bound on a single run-ahead grant, independent of the
         quantum and the event horizon; sweepable in ablations *)
  coalesce_min_window : Time.span;
      (* grants below this aren't worth the ledger bookkeeping: under a
         dispatch storm the quantum remainder (or the gap to the next
         pending event) shrinks toward zero and per-dispatch budget
         computation becomes pure overhead — the 0.88x regression in
         the dispatch-storm bench section.  Below the floor the
         dispatcher skips the grant entirely and charges fall through
         to the plain event path, which is behavior-identical (the
         coalesce on/off equivalence is golden-tested for any budget) *)
}

(* Calibration notes.  Component values are 1991-plausible path lengths at
   25 MHz (40 ns/cycle; ~50 instructions/us with cache misses).  They were
   then nudged so the *emergent* aggregates measured by bench/main.exe land
   near the paper's Figure 5/6 rows:
     unbound create 56us, bound create 2327us (ratio 42)
     setjmp/longjmp 59us, unbound sync 158us, bound sync 348us,
     cross-process sync 301us.
   The emergent values are measured, not asserted, so changing a component
   changes the aggregates coherently. *)
let default =
  {
    call = Time.us 2;
    tcb_alloc = Time.us 16;
    tcb_init = Time.us 22;
    stack_cache_hit = Time.us 16;
    stack_alloc_cold = Time.us 420;
    tls_zero = Time.us 30;
    runq_op = Time.us 10;
    setjmp_longjmp = Time.us 59;
    user_ctx_save = Time.us 52;
    user_ctx_restore = Time.us 50;
    sync_fast = Time.us 9;
    sync_slow_extra = Time.us 26;
    tls_access = Time.us 3;
    trap_entry = Time.us 20;
    trap_exit = Time.us 16;
    syscall_fixed = Time.us 12;
    kernel_dispatch = Time.us 75;
    sleep_enqueue = Time.us 78;
    wakeup = Time.us 72;
    lwp_create = Time.us 2210;
    lwp_destroy = Time.us 800;
    fork_base = Time.us 6200;
    fork_per_lwp = Time.us 2400;
    exec_cost = Time.us 9000;
    signal_post = Time.us 45;
    signal_deliver = Time.us 90;
    kwait_fixed = Time.us 0;
    kwake_fixed = Time.us 5;
    pagefault_service = Time.us 350;
    pipe_op = Time.us 40;
    sock_listen = Time.us 60;
    sock_connect = Time.us 250;
    sock_accept = Time.us 130;
    sock_op = Time.us 70;
    poll_fixed = Time.us 55;
    poll_per_fd = Time.us 6;
    fs_op = Time.us 120;
    copy_per_kb = Time.us 55;
    disk_access = Time.ms 22;
    net_rtt = Time.ms 3;
    tty_latency = Time.ms 1;
    quantum = Time.ms 100;
    clock_tick = Time.ms 10;
    adaptive_spin_limit = 5;
    coalesce = true;
    coalesce_window = Time.ms 100;
    coalesce_min_window = Time.us 50;
  }

let free =
  {
    call = 0L;
    tcb_alloc = 0L;
    tcb_init = 0L;
    stack_cache_hit = 0L;
    stack_alloc_cold = 0L;
    tls_zero = 0L;
    runq_op = 0L;
    setjmp_longjmp = 0L;
    user_ctx_save = 0L;
    user_ctx_restore = 0L;
    sync_fast = 0L;
    sync_slow_extra = 0L;
    tls_access = 0L;
    trap_entry = 0L;
    trap_exit = 0L;
    syscall_fixed = 0L;
    kernel_dispatch = 0L;
    sleep_enqueue = 0L;
    wakeup = 0L;
    lwp_create = 0L;
    lwp_destroy = 0L;
    fork_base = 0L;
    fork_per_lwp = 0L;
    exec_cost = 0L;
    signal_post = 0L;
    signal_deliver = 0L;
    kwait_fixed = 0L;
    kwake_fixed = 0L;
    pagefault_service = 0L;
    pipe_op = 0L;
    sock_listen = 0L;
    sock_connect = 0L;
    sock_accept = 0L;
    sock_op = 0L;
    poll_fixed = 0L;
    poll_per_fd = 0L;
    fs_op = 0L;
    copy_per_kb = 0L;
    disk_access = 0L;
    net_rtt = 0L;
    tty_latency = 0L;
    quantum = Time.ms 100;
    clock_tick = Time.ms 10;
    adaptive_spin_limit = 5;
    coalesce = true;
    coalesce_window = Time.ms 100;
    coalesce_min_window = 0L;
  }

let scale f c =
  let s v = Int64.of_float (Float.round (Int64.to_float v *. f)) in
  {
    call = s c.call;
    tcb_alloc = s c.tcb_alloc;
    tcb_init = s c.tcb_init;
    stack_cache_hit = s c.stack_cache_hit;
    stack_alloc_cold = s c.stack_alloc_cold;
    tls_zero = s c.tls_zero;
    runq_op = s c.runq_op;
    setjmp_longjmp = s c.setjmp_longjmp;
    user_ctx_save = s c.user_ctx_save;
    user_ctx_restore = s c.user_ctx_restore;
    sync_fast = s c.sync_fast;
    sync_slow_extra = s c.sync_slow_extra;
    tls_access = s c.tls_access;
    trap_entry = s c.trap_entry;
    trap_exit = s c.trap_exit;
    syscall_fixed = s c.syscall_fixed;
    kernel_dispatch = s c.kernel_dispatch;
    sleep_enqueue = s c.sleep_enqueue;
    wakeup = s c.wakeup;
    lwp_create = s c.lwp_create;
    lwp_destroy = s c.lwp_destroy;
    fork_base = s c.fork_base;
    fork_per_lwp = s c.fork_per_lwp;
    exec_cost = s c.exec_cost;
    signal_post = s c.signal_post;
    signal_deliver = s c.signal_deliver;
    kwait_fixed = s c.kwait_fixed;
    kwake_fixed = s c.kwake_fixed;
    pagefault_service = s c.pagefault_service;
    pipe_op = s c.pipe_op;
    sock_listen = s c.sock_listen;
    sock_connect = s c.sock_connect;
    sock_accept = s c.sock_accept;
    sock_op = s c.sock_op;
    poll_fixed = s c.poll_fixed;
    poll_per_fd = s c.poll_per_fd;
    fs_op = s c.fs_op;
    copy_per_kb = s c.copy_per_kb;
    disk_access = s c.disk_access;
    net_rtt = s c.net_rtt;
    tty_latency = s c.tty_latency;
    quantum = s c.quantum;
    clock_tick = s c.clock_tick;
    adaptive_spin_limit = c.adaptive_spin_limit;
    coalesce = c.coalesce;
    coalesce_window = s c.coalesce_window;
    coalesce_min_window = s c.coalesce_min_window;
  }
