module Sim = Sunos_sim

type t = {
  eventq : Sim.Eventq.t;
  cpus : Cpu.t array;
  disk : Devices.Disk.t;
  net : Devices.Net.t;
  tty : Devices.Tty.t;
  cost : Cost_model.t;
  trace : Sim.Tracebuf.t;
  rng : Sim.Rng.t;
  chaos : Sim.Faultgen.t;
  pool : Sim.Parexec.t;
      (* worker domains for offloaded compute; [Parexec.domains pool = 1]
         means no workers and fully inline execution *)
}

let create ?(cpus = 1) ?(cost = Cost_model.default) ?(seed = 1L)
    ?trace_capacity ?chaos ?domains () =
  if cpus <= 0 then invalid_arg "Machine.create: cpus";
  let chaos =
    match chaos with
    | Some p -> Sim.Faultgen.create ~seed p
    | None -> Sim.Faultgen.of_env ~seed ()
  in
  let domains =
    match domains with Some d -> d | None -> Sim.Parexec.default_domains ()
  in
  (* shard 0: kernel-wide + device events; shard [id + 1]: CPU [id]'s
     busy/charge/dispatch traffic *)
  let eventq = Sim.Eventq.create ~shards:(cpus + 1) () in
  {
    eventq;
    cpus = Array.init cpus (fun id -> Cpu.create ~id);
    disk = Devices.Disk.create ~eventq ~access_time:cost.Cost_model.disk_access ();
    net = Devices.Net.create ~eventq ~rtt:cost.Cost_model.net_rtt ();
    tty = Devices.Tty.create ~eventq ~latency:cost.Cost_model.tty_latency;
    cost;
    trace = Sim.Tracebuf.create ?capacity:trace_capacity ();
    rng = Sim.Rng.create ~seed;
    chaos;
    pool = Sim.Parexec.create ~domains;
  }

let now t = Sim.Eventq.now t.eventq
let ncpus t = Array.length t.cpus
let domains t = Sim.Parexec.domains t.pool
let shutdown t = Sim.Parexec.shutdown t.pool

(* The interest check runs before kasprintf builds anything: with tracing
   disabled (or the tag filtered out) the format args are swallowed by
   ikfprintf and the hot paths pay no string formatting at all. *)
let trace t ~tag fmt =
  if Sim.Tracebuf.interested t.trace ~tag then
    Format.kasprintf
      (fun msg -> Sim.Tracebuf.emit t.trace ~time:(now t) ~tag msg)
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let run ?until ?max_events t = Sim.Eventq.run ?until ?max_events t.eventq
