(** Shared-memory segments: the home of process-shared data.

    A segment is a named array of pages plus a table of typed cells at
    byte offsets.  "Mapping" a segment gives a process a handle to the
    very same cells, which is how synchronization variables placed in
    shared memory (or in mapped files — a file's backing store is a
    segment) are seen by every mapping process, regardless of the virtual
    address each maps it at (cells are keyed by segment offset).

    Page residency is tracked so the VM layer can charge page faults. *)

type t

val create : name:string -> size:int -> t
(** [size] in bytes; pages are 4 KiB. *)

val clone : t -> t
(** A copy-on-fork snapshot: fresh id, same name/size, cell table and
    residency copied, map count zero.  {!clone_of} on the copy records
    the source segment's id so the kernel can translate stale parent
    handles held by forked children. *)

val id : t -> int
(** Unique across all segments ever created; keys the kernel's wait table. *)

val anon_private : t -> bool

val mark_anon_private : t -> unit
(** Tag a private anonymous mapping: at [fork] the kernel replaces it in
    the child's mapping table with a {!clone}, so writes stop aliasing
    across the process boundary.  Named/file/shared segments stay
    system-wide objects and are never marked. *)

val clone_of : t -> int option

val name : t -> string
val size : t -> int
val page_count : t -> int

val put : t -> offset:int -> Sunos_sim.Univ.t -> unit
(** Install a cell at [offset].  Raises [Invalid_argument] if out of
    bounds or if a cell already occupies the offset. *)

val get : t -> offset:int -> Sunos_sim.Univ.t option

val remove : t -> offset:int -> unit

val alloc_offset : t -> int
(** A fresh, never-used offset for dynamically placed variables.  Offsets
    are handed out 64 bytes apart (one 1991 cache line each). *)

val resident : t -> page:int -> bool
val make_resident : t -> page:int -> unit
val evict : t -> page:int -> unit
val evict_all : t -> unit
val page_of_offset : offset:int -> int

val map_count : t -> int
val incr_map_count : t -> unit
val decr_map_count : t -> unit
(** Reference count of live mappings — informational; segments persist
    regardless (files outlive their mappers, as in the paper). *)
