(** Simulated I/O devices with service-time queues.

    Each device accepts requests and invokes a completion callback from
    the event queue after its modeled service time.  The kernel layer
    turns completions into LWP wakeups (interrupt handling cost is charged
    there). *)

module Disk : sig
  (** Single-spindle disk: FIFO, one request in service at a time. *)

  type t

  val create :
    eventq:Sunos_sim.Eventq.t ->
    access_time:Sunos_sim.Time.span ->
    ?jitter:Sunos_sim.Rng.t ->
    unit ->
    t
  (** With [jitter], service time is exponentially distributed around
      [access_time]; without, it is exactly [access_time]. *)

  val submit : t -> bytes_:int -> on_complete:(unit -> unit) -> unit
  (** [bytes_] adds transfer time at 1 MiB/s (a 1991 SCSI disk). *)

  val queue_length : t -> int
  val completed : t -> int
end

module Net : sig
  (** Network interface: unlimited concurrency, per-message latency. *)

  type t

  val create :
    eventq:Sunos_sim.Eventq.t ->
    rtt:Sunos_sim.Time.span ->
    ?jitter:Sunos_sim.Rng.t ->
    unit ->
    t

  val send : t -> bytes_:int -> on_complete:(unit -> unit) -> unit
  (** Completion fires after one-way latency (rtt/2) + transfer time. *)

  val request_response : t -> bytes_:int -> on_complete:(unit -> unit) -> unit
  (** Completion fires after a full round trip. *)

  val in_flight : t -> int
  val completed : t -> int

  val now : t -> Sunos_sim.Time.t

  val delay : t -> Sunos_sim.Time.span -> (unit -> unit) -> unit
  (** Re-schedule a deferred delivery after [span]; counted in flight
      like a transfer.  Used for fault-injected peer stalls. *)
end

module Tty : sig
  (** Terminal: an input queue fed by the workload.  The kernel registers
      a listener that fires when input arrives (interrupt). *)

  type t

  val create : eventq:Sunos_sim.Eventq.t -> latency:Sunos_sim.Time.span -> t

  val type_input : t -> string -> unit
  (** Enqueue a line of input; the data-ready listener fires after the
      device latency. *)

  val read_input : t -> string option
  (** Dequeue buffered input, if any. *)

  val has_input : t -> bool

  val on_data_ready : t -> (unit -> unit) -> unit
  (** One-shot: fires once when input is (or becomes) available, then is
      dropped; re-register to keep listening. *)
end
