module Time = Sunos_sim.Time
module Eventq = Sunos_sim.Eventq
module Rng = Sunos_sim.Rng

(* Transfer rate for byte-count-dependent service times: 1 MiB/s (a 1991
   SCSI disk / thin Ethernet), i.e. ~954 ns per byte. *)
let transfer_span bytes_ = Time.ns (bytes_ * 954)

let jittered jitter base =
  match jitter with
  | None -> base
  | Some rng ->
      let mean = Int64.to_float base in
      Int64.of_float (Rng.exponential rng ~mean)

module Disk = struct
  type req = { bytes_ : int; on_complete : unit -> unit }

  type t = {
    eventq : Eventq.t;
    access_time : Time.span;
    jitter : Rng.t option;
    queue : req Queue.t;
    mutable busy : bool;
    mutable completed : int;
  }

  let create ~eventq ~access_time ?jitter () =
    { eventq; access_time; jitter; queue = Queue.create (); busy = false;
      completed = 0 }

  let service_time t bytes_ =
    Int64.add (jittered t.jitter t.access_time) (transfer_span bytes_)

  let rec start_next t =
    match Queue.take_opt t.queue with
    | None -> t.busy <- false
    | Some req ->
        t.busy <- true;
        ignore
          (Eventq.after t.eventq (service_time t req.bytes_) (fun () ->
               t.completed <- t.completed + 1;
               req.on_complete ();
               start_next t))

  let submit t ~bytes_ ~on_complete =
    Queue.add { bytes_; on_complete } t.queue;
    if not t.busy then start_next t

  let queue_length t = Queue.length t.queue + if t.busy then 1 else 0
  let completed t = t.completed
end

module Net = struct
  type t = {
    eventq : Eventq.t;
    rtt : Time.span;
    jitter : Rng.t option;
    mutable in_flight : int;
    mutable completed : int;
  }

  let create ~eventq ~rtt ?jitter () =
    { eventq; rtt; jitter; in_flight = 0; completed = 0 }

  let fire t span on_complete =
    t.in_flight <- t.in_flight + 1;
    ignore
      (Eventq.after t.eventq span (fun () ->
           t.in_flight <- t.in_flight - 1;
           t.completed <- t.completed + 1;
           on_complete ()))

  let send t ~bytes_ ~on_complete =
    let one_way = Int64.div (jittered t.jitter t.rtt) 2L in
    fire t (Int64.add one_way (transfer_span bytes_)) on_complete

  let request_response t ~bytes_ ~on_complete =
    fire t (Int64.add (jittered t.jitter t.rtt) (transfer_span bytes_))
      on_complete

  let in_flight t = t.in_flight
  let completed t = t.completed
  let now t = Eventq.now t.eventq

  (* Bare rescheduling, for deliveries deferred by a fault (a stalled
     peer): counted in_flight like any transfer so the queue stays live
     while the delivery is pending. *)
  let delay t span on_complete = fire t span on_complete
end

module Tty = struct
  type t = {
    eventq : Eventq.t;
    latency : Time.span;
    input : string Queue.t;
    mutable listeners : (unit -> unit) list;
  }

  let create ~eventq ~latency =
    { eventq; latency; input = Queue.create (); listeners = [] }

  let type_input t line =
    ignore
      (Eventq.after t.eventq t.latency (fun () ->
           Queue.add line t.input;
           let ls = List.rev t.listeners in
           t.listeners <- [];
           List.iter (fun f -> f ()) ls))

  let read_input t = Queue.take_opt t.input
  let has_input t = not (Queue.is_empty t.input)

  let on_data_ready t f =
    if has_input t then f () else t.listeners <- f :: t.listeners
end
