(** Deterministic fault injection ("chaos").

    A fault generator couples a profile — a flat record of per-site
    fault rates, in the style of {!Cost_model} — with a private
    {!Rng} stream derived from, but independent of, the workload seed.
    Kernel decision points ask {!fire} whether a fault should trigger;
    the answer is a pure function of [(seed, profile, call sequence)],
    so equal seeds and profiles replay bit-identical fault schedules.

    A disabled generator (profile {!off}, or any zero-rate site) never
    draws from the stream, so chaos-off runs are byte-identical to runs
    without any chaos plumbing. *)

type profile = {
  label : string;
  eintr_sleep : float;   (** early EINTR on an armed nanosleep *)
  eagain_sock : float;   (** spurious EAGAIN on non-blocking socket ops *)
  enomem_lwp : float;    (** ENOMEM on LWP creation *)
  conn_refuse : float;   (** refuse a connect at SYN arrival *)
  backlog_drop : float;  (** drop an admitted conn before accept *)
  conn_rst : float;      (** mid-stream RST on an established conn *)
  peer_stall : float;    (** peer stops draining for a while *)
  stall_us : int;        (** ceiling on the stall duration, µs *)
  preempt_storm : float; (** dispatch with a storm-shrunken quantum *)
  lwp_reap : float;      (** kill an idle-parking pool LWP *)
  proc_kill : float;     (** kill a forked process at a syscall boundary *)
  fault_spike : float;   (** latency spike on a page-fault transfer *)
  spike_factor : int;    (** transfer-size multiplier during a spike *)
  timer_jitter : float;  (** late delivery of a real interval timer *)
  jitter_us : int;       (** ceiling on the added delay, µs *)
  burst_period_us : int; (** burst window period; 0 = always eligible *)
  burst_len_us : int;    (** active prefix of each burst window *)
}

val off : profile
val light : profile
val network_heavy : profile
val scheduler_heavy : profile

val profiles : profile list
(** All canned profiles, [off] first. *)

val profile_of_string : string -> profile option
(** Case-insensitive; underscores accepted for dashes. *)

type t

val create : seed:int64 -> profile -> t
(** The generator's stream is seeded from a salted mix of [seed] and the
    profile label: independent of the machine's own {!Rng} stream. *)

val of_env : seed:int64 -> unit -> t
(** Profile from [SUNOS_CHAOS] (off when unset/unknown, with a warning
    on stderr for unknown names). *)

val profile : t -> profile
val label : t -> string
val enabled : t -> bool

val fire : t -> now:Time.t -> site:string -> float -> bool
(** [fire t ~now ~site rate] rolls the site's fault.  Counts the hit
    under [site].  Never draws when disabled, when [rate <= 0], or
    outside the profile's burst window. *)

val draw_us : t -> lo:int -> hi:int -> int
(** Uniform µs draw for fault parameters (stall length, jitter). *)

val draw_span : t -> max_span:Time.span -> Time.span
(** Uniform span in [1, max_span] nanoseconds. *)

val count : t -> string -> int
val counts : t -> (string * int) list
(** Per-site hit counts, sorted by site name. *)

val total : t -> int
