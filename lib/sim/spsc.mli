(** Bounded single-producer/single-consumer lock-free ring.

    The inter-domain handoff queue under {!Parexec}: exactly one domain
    may push (the coordinator) and exactly one may pop (the lane's
    worker).  Payload slots are plain; publication happens through the
    release/acquire index pair, per the OCaml 5 memory model. *)

type 'a t

val create : size:int -> 'a t
(** Capacity is rounded up to the next power of two. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Producer only.  [false] when full (caller handles overflow, e.g. by
    running the task inline). *)

val try_pop : 'a t -> 'a option
(** Consumer only. *)

val length : 'a t -> int
(** Racy snapshot; exact only from one of the two owning domains. *)

val is_empty : 'a t -> bool
