(** Imperative pairing heap (min-heap).

    Used as the backing store of the event queue.  Amortized O(1) insert
    and O(log n) delete-min.  Elements are ordered by the comparison
    function supplied at creation; ties are broken by insertion order only
    if the comparison says so (the event queue encodes a sequence number
    in its keys for that purpose). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val insert : 'a t -> 'a -> unit
val peek_min : 'a t -> 'a option
val pop_min : 'a t -> 'a option

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Build a heap from the elements; O(n) (n O(1) inserts).  Used by the
    event queue to rebuild itself when compacting away cancelled
    entries. *)

val to_list_unordered : 'a t -> 'a list
(** All elements, in unspecified order; O(n). For tests and introspection. *)
