type record = { time : Time.t; tag : string; msg : string }

type t = {
  buf : record option array;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable dropped : int;
  mutable enabled : bool;
  mutable interest : (string, unit) Hashtbl.t option;
      (* None = every tag; Some set = only those tags are recorded *)
  tags : (string, string) Hashtbl.t;
      (* intern table: records share one string per distinct tag *)
}

let create ?(capacity = 65536) () =
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
    enabled = true;
    interest = None;
    tags = Hashtbl.create 32;
  }

let intern t tag =
  match Hashtbl.find_opt t.tags tag with
  | Some s -> s
  | None ->
      Hashtbl.add t.tags tag tag;
      tag

(* The emit-side gate: callers (Machine.trace) check this *before*
   formatting, so uninterested records cost neither the format nor the
   allocation — the hot dispatch/syscall/wakeup paths trace for free when
   nothing will read the buffer. *)
let interested t ~tag =
  t.enabled
  &&
  match t.interest with
  | None -> true
  | Some set -> Hashtbl.mem set tag

let set_interest t tags =
  t.interest <-
    (match tags with
    | None -> None
    | Some l ->
        let set = Hashtbl.create (List.length l) in
        List.iter (fun tag -> Hashtbl.replace set tag ()) l;
        Some set)

let emit t ~time ~tag msg =
  if interested t ~tag then begin
    let tag = intern t tag in
    let cap = Array.length t.buf in
    if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
    t.buf.(t.head) <- Some { time; tag; msg };
    t.head <- (t.head + 1) mod cap
  end

let emitf t ~time ~tag fmt =
  if interested t ~tag then
    Format.kasprintf (fun msg -> emit t ~time ~tag msg) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let records t =
  let cap = Array.length t.buf in
  let start = (t.head - t.len + cap) mod cap in
  let rec go i acc =
    if i = t.len then List.rev acc
    else
      match t.buf.((start + i) mod cap) with
      | None -> go (i + 1) acc
      | Some r -> go (i + 1) (r :: acc)
  in
  go 0 []

let find t ~tag = List.filter (fun r -> r.tag = tag) (records t)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let dropped t = t.dropped

let pp ppf t =
  List.iter
    (fun r -> Format.fprintf ppf "[%a] %-12s %s@." Time.pp r.time r.tag r.msg)
    (records t)

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
