(* Deterministic fault injection ("chaos").

   A [t] is a fault schedule: a profile of per-site rates plus a private
   splitmix64 stream derived from — but independent of — the workload
   seed.  Call sites in the kernel ask [fire] at existing decision
   points (sleep arming, SYN admission, dispatch, park, ...); the answer
   is a pure function of (seed, profile, call sequence), so the same
   (seed, profile) pair replays a bit-identical fault schedule, and a
   disabled generator never draws from the stream at all — chaos off is
   provably inert.

   Policy-free by design: this module decides *whether* a fault fires
   and records that it did; the kernel decides what the fault *means*
   (which errno, which event to reschedule).  Mirrors the Cost_model
   pattern: a flat record of knobs with canned presets. *)

type profile = {
  label : string;
  (* syscall-level *)
  eintr_sleep : float;   (* early EINTR on an armed nanosleep *)
  eagain_sock : float;   (* spurious EAGAIN on non-blocking socket ops *)
  enomem_lwp : float;    (* ENOMEM on LWP creation *)
  (* socket-level *)
  conn_refuse : float;   (* refuse a connect at SYN arrival *)
  backlog_drop : float;  (* drop an admitted conn before accept (overflow) *)
  conn_rst : float;      (* mid-stream RST on an established conn *)
  peer_stall : float;    (* peer stops draining for a while *)
  stall_us : int;        (* ceiling on the stall duration *)
  (* scheduling *)
  preempt_storm : float; (* dispatch with a storm-shrunken quantum *)
  lwp_reap : float;      (* kill an idle-parking pool LWP *)
  (* process-level *)
  proc_kill : float;     (* kill a forked process at a syscall boundary *)
  (* timing *)
  fault_spike : float;   (* latency spike on a page-fault disk transfer *)
  spike_factor : int;    (* transfer-size multiplier during a spike *)
  timer_jitter : float;  (* late delivery of a real interval timer *)
  jitter_us : int;       (* ceiling on the added delay *)
  (* burst gating: faults only fire inside the first [burst_len_us] of
     every [burst_period_us] window; 0 period = always eligible *)
  burst_period_us : int;
  burst_len_us : int;
}

let off =
  {
    label = "off";
    eintr_sleep = 0.;
    eagain_sock = 0.;
    enomem_lwp = 0.;
    conn_refuse = 0.;
    backlog_drop = 0.;
    conn_rst = 0.;
    peer_stall = 0.;
    stall_us = 0;
    preempt_storm = 0.;
    lwp_reap = 0.;
    proc_kill = 0.;
    fault_spike = 0.;
    spike_factor = 1;
    timer_jitter = 0.;
    jitter_us = 0;
    burst_period_us = 0;
    burst_len_us = 0;
  }

let light =
  {
    off with
    label = "light";
    eintr_sleep = 0.10;
    eagain_sock = 0.05;
    enomem_lwp = 0.05;
    conn_refuse = 0.05;
    conn_rst = 0.02;
    peer_stall = 0.02;
    stall_us = 500;
    preempt_storm = 0.05;
    fault_spike = 0.05;
    spike_factor = 4;
    timer_jitter = 0.10;
    jitter_us = 200;
  }

let network_heavy =
  {
    off with
    label = "network-heavy";
    eagain_sock = 0.20;
    conn_refuse = 0.25;
    backlog_drop = 0.10;
    conn_rst = 0.10;
    peer_stall = 0.10;
    stall_us = 2_000;
    eintr_sleep = 0.05;
  }

let scheduler_heavy =
  {
    off with
    label = "scheduler-heavy";
    preempt_storm = 0.40;
    lwp_reap = 0.08;
    enomem_lwp = 0.15;
    eintr_sleep = 0.20;
    fault_spike = 0.10;
    spike_factor = 8;
    timer_jitter = 0.20;
    jitter_us = 500;
  }

let profiles = [ off; light; network_heavy; scheduler_heavy ]

let profile_of_string s =
  let canon =
    String.map (function '_' -> '-' | c -> Char.lowercase_ascii c) s
  in
  List.find_opt (fun p -> p.label = canon) profiles

type t = {
  profile : profile;
  rng : Rng.t;
  enabled : bool;
  counts : (string, int ref) Hashtbl.t;
}

(* The chaos stream must not perturb (or be perturbed by) the machine's
   workload stream: mix the seed with a fixed salt and the profile label
   so that each (seed, profile) pair owns an independent splitmix64
   sequence. *)
let chaos_salt = 0x43A05C4FD1C0FFEEL

let create ~seed profile =
  let mix =
    Int64.logxor
      (Int64.add seed chaos_salt)
      (Int64.of_int (Hashtbl.hash profile.label))
  in
  {
    profile;
    rng = Rng.create ~seed:mix;
    enabled = profile.label <> "off";
    counts = Hashtbl.create 16;
  }

let of_env ~seed () =
  match Sys.getenv_opt "SUNOS_CHAOS" with
  | None | Some "" -> create ~seed off
  | Some s -> (
      match profile_of_string s with
      | Some p -> create ~seed p
      | None ->
          Printf.eprintf
            "SUNOS_CHAOS=%s: unknown profile (try off, light, network-heavy, \
             scheduler-heavy)\n%!"
            s;
          create ~seed off)

let profile t = t.profile
let label t = t.profile.label
let enabled t = t.enabled

let in_burst t (now : Time.t) =
  let p = t.profile in
  if p.burst_period_us <= 0 then true
  else
    let period = Int64.of_int (p.burst_period_us * 1000) in
    let len = Int64.of_int (p.burst_len_us * 1000) in
    Int64.unsigned_rem now period < len

let fire t ~now ~site rate =
  (* Disabled or zero-rate sites never touch the stream: chaos=off runs
     are bit-identical to runs with no chaos plumbing at all. *)
  if (not t.enabled) || rate <= 0. then false
  else if not (in_burst t now) then false
  else if Rng.float t.rng 1.0 < rate then begin
    (match Hashtbl.find_opt t.counts site with
    | Some r -> incr r
    | None -> Hashtbl.replace t.counts site (ref 1));
    true
  end
  else false

let draw_us t ~lo ~hi =
  if hi <= lo then lo else lo + Rng.int t.rng (hi - lo + 1)

let draw_span t ~max_span:(m : Time.span) : Time.span =
  if Int64.compare m 1L <= 0 then 1L
  else Int64.add 1L (Int64.unsigned_rem (Rng.int64 t.rng) m)

let count t site =
  match Hashtbl.find_opt t.counts site with Some r -> !r | None -> 0

let counts t =
  Hashtbl.fold (fun site r acc -> (site, !r) :: acc) t.counts []
  |> List.sort compare

let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t.counts 0
