type handle = {
  time : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable fired : bool;
  owner : t;
}

and t = {
  mutable heap : handle Pheap.t;
  mutable now : Time.t;
  mutable next_seq : int;
  mutable live : int;
  mutable cancelled_in_heap : int;
  mutable fired_count : int;
  mutable drain_hooks : (unit -> unit) list;
      (* fired by [run] when the queue empties; diagnostic observers
         (e.g. the thread sanitizer's hang check).  Kept in REVERSE
         registration order — consing is O(1) per registration — and
         reversed once at fire time *)
  mutable run_horizon : Time.t option;
      (* the [until] of the [run] currently draining this queue, if
         any: [next_time] clamps to it so run-ahead accounting never
         outruns a horizon-limited run *)
}

let cmp a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    heap = Pheap.create ~cmp;
    now = Time.zero;
    next_seq = 0;
    live = 0;
    cancelled_in_heap = 0;
    fired_count = 0;
    drain_hooks = [];
    run_horizon = None;
  }

let on_drain q f = q.drain_hooks <- f :: q.drain_hooks

let now q = q.now

let at q time action =
  if Time.(time < q.now) then
    invalid_arg "Eventq.at: scheduling in the past";
  let h =
    { time; seq = q.next_seq; action; cancelled = false; fired = false;
      owner = q }
  in
  q.next_seq <- q.next_seq + 1;
  Pheap.insert q.heap h;
  q.live <- q.live + 1;
  h

let after q d action = at q (Time.add q.now d) action

(* Rebuild the heap from its live population.  Cancellation is lazy (the
   heap keeps cancelled handles until they surface), so a cancel-heavy
   workload — timer re-arms, poll timeouts — would otherwise carry an
   arbitrarily large dead population through every merge.  Compaction
   runs when the dead outnumber the live (> ~50% of the population),
   which keeps the heap within 2x of the live set and costs O(live)
   amortized against the cancels that triggered it.  Pop order is
   unaffected: the (time, seq) key is a total order, so any heap shape
   pops the same sequence. *)
let compact q =
  let keep =
    List.filter (fun h -> not h.cancelled) (Pheap.to_list_unordered q.heap)
  in
  q.heap <- Pheap.of_list ~cmp keep;
  q.cancelled_in_heap <- 0

let cancel h =
  if (not h.cancelled) && not h.fired then begin
    h.cancelled <- true;
    let q = h.owner in
    q.live <- q.live - 1;
    q.cancelled_in_heap <- q.cancelled_in_heap + 1;
    if q.cancelled_in_heap > 64 && q.cancelled_in_heap > q.live then compact q
  end

let is_pending h = (not h.cancelled) && not h.fired

(* Lazy deletion: cancelled events that reach the heap top are skipped
   when popped (compaction bounds how many can be in flight). *)
let rec run_one q =
  match Pheap.pop_min q.heap with
  | None -> false
  | Some h ->
      if h.cancelled then begin
        q.cancelled_in_heap <- q.cancelled_in_heap - 1;
        run_one q
      end
      else begin
        q.now <- h.time;
        h.fired <- true;
        q.live <- q.live - 1;
        q.fired_count <- q.fired_count + 1;
        h.action ();
        true
      end

let rec peek_live q =
  match Pheap.peek_min q.heap with
  | None -> None
  | Some h ->
      if h.cancelled then begin
        ignore (Pheap.pop_min q.heap);
        q.cancelled_in_heap <- q.cancelled_in_heap - 1;
        peek_live q
      end
      else Some h

(* Earliest instant at which anything can happen: the first live event,
   clamped to the horizon of the [run] currently draining us.  [None]
   means nothing is pending and no horizon binds — the caller may run
   ahead arbitrarily far. *)
let next_time q =
  let ev = match peek_live q with Some h -> Some h.time | None -> None in
  match (ev, q.run_horizon) with
  | None, h -> h
  | t, None -> t
  | Some t, Some h -> Some (Time.min t h)

let run ?until ?max_events q =
  let saved_horizon = q.run_horizon in
  (match until with Some h -> q.run_horizon <- Some h | None -> ());
  Fun.protect ~finally:(fun () -> q.run_horizon <- saved_horizon)
  @@ fun () ->
  let fired = ref 0 in
  let continue () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let rec loop () =
    if continue () then
      match peek_live q with
      | None -> ()
      | Some h -> (
          match until with
          | Some horizon when Time.(h.time > horizon) -> q.now <- horizon
          | _ ->
              if run_one q then begin
                incr fired;
                loop ()
              end)
  in
  loop ();
  (* If we stopped on the horizon with an empty queue, still advance. *)
  (match until with
  | Some horizon when Pheap.is_empty q.heap && Time.(q.now < horizon) ->
      q.now <- horizon
  | _ -> ());
  (* Queue drained (not horizon- or budget-limited): let observers look
     at the stalled machine.  A hook may schedule new events; we do not
     re-enter the loop for them — this is a post-mortem, not a phase. *)
  if q.drain_hooks <> [] && peek_live q = None then
    List.iter (fun f -> f ()) (List.rev q.drain_hooks)

(* [live] is exact: cancels decrement it immediately. *)
let pending_count q = q.live

let heap_population q = Pheap.size q.heap
let events_fired q = q.fired_count
