(* The event queue, sharded.

   Events live in per-shard pairing heaps — shard 0 is the global
   (kernel/device) shard; the machine gives each simulated CPU its own
   shard for the busy/charge events that dominate event traffic.  The
   pop order is the *global* (time, seq) total order, computed as a
   min-merge over the shard heads, so sharding is invisible to
   execution: any routing of events to shards fires the exact same
   sequence as the single-heap queue did.  What sharding buys is
   structure — per-shard frontiers (the conservative-lookahead bound a
   parallel advance is entitled to), per-shard fired/pending stats, and
   a cross-shard traffic count (events scheduled into a shard from
   another shard's callback: IPIs, wakeups, shared-runq dispatch), all
   surfaced through /proc and the parallel-scaling figure. *)

type handle = {
  time : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable fired : bool;
  owner : t;
  shard : int;
}

and shard = {
  mutable heap : handle Pheap.t;
  mutable s_live : int;
  mutable s_cancelled : int;  (* cancelled handles still in this heap *)
  mutable s_fired : int;
  mutable s_xin : int;
      (* events scheduled into this shard while another shard's event
         was firing — the cross-shard synchronization traffic *)
}

and t = {
  shards : shard array;
  mutable now : Time.t;
  mutable next_seq : int;
  mutable live : int;
  mutable fired_count : int;
  mutable firing_shard : int;  (* shard of the event being fired; -1 outside *)
  mutable drain_hooks : (unit -> unit) list;
      (* fired by [run] when the queue empties; diagnostic observers
         (e.g. the thread sanitizer's hang check).  Kept in REVERSE
         registration order — consing is O(1) per registration — and
         reversed once at fire time *)
  mutable run_horizon : Time.t option;
      (* the [until] of the [run] currently draining this queue, if
         any: [next_time] clamps to it so run-ahead accounting never
         outruns a horizon-limited run *)
}

let cmp a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let fresh_shard () =
  { heap = Pheap.create ~cmp; s_live = 0; s_cancelled = 0; s_fired = 0;
    s_xin = 0 }

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Eventq.create: shards";
  {
    shards = Array.init shards (fun _ -> fresh_shard ());
    now = Time.zero;
    next_seq = 0;
    live = 0;
    fired_count = 0;
    firing_shard = -1;
    drain_hooks = [];
    run_horizon = None;
  }

let on_drain q f = q.drain_hooks <- f :: q.drain_hooks

let now q = q.now

let at ?(shard = 0) q time action =
  if Time.(time < q.now) then
    invalid_arg "Eventq.at: scheduling in the past";
  if shard < 0 || shard >= Array.length q.shards then
    invalid_arg "Eventq.at: shard";
  let h =
    { time; seq = q.next_seq; action; cancelled = false; fired = false;
      owner = q; shard }
  in
  q.next_seq <- q.next_seq + 1;
  let sh = q.shards.(shard) in
  if q.firing_shard >= 0 && q.firing_shard <> shard then
    sh.s_xin <- sh.s_xin + 1;
  Pheap.insert sh.heap h;
  sh.s_live <- sh.s_live + 1;
  q.live <- q.live + 1;
  h

let after ?shard q d action = at ?shard q (Time.add q.now d) action

(* Rebuild a shard's heap from its live population.  Cancellation is lazy
   (the heap keeps cancelled handles until they surface), so a
   cancel-heavy workload — timer re-arms, poll timeouts — would otherwise
   carry an arbitrarily large dead population through every merge.
   Compaction runs when a shard's dead outnumber its live (> ~50% of its
   population), which keeps the heap within 2x of the live set and costs
   O(live) amortized against the cancels that triggered it.  Pop order is
   unaffected: the (time, seq) key is a total order, so any heap shape
   pops the same sequence. *)
let compact sh =
  let keep =
    List.filter (fun h -> not h.cancelled) (Pheap.to_list_unordered sh.heap)
  in
  sh.heap <- Pheap.of_list ~cmp keep;
  sh.s_cancelled <- 0

let cancel h =
  if (not h.cancelled) && not h.fired then begin
    h.cancelled <- true;
    let q = h.owner in
    let sh = q.shards.(h.shard) in
    q.live <- q.live - 1;
    sh.s_live <- sh.s_live - 1;
    sh.s_cancelled <- sh.s_cancelled + 1;
    if sh.s_cancelled > 64 && sh.s_cancelled > sh.s_live then compact sh
  end

let is_pending h = (not h.cancelled) && not h.fired

(* Live head of one shard; cancelled events that surface are dropped
   (lazy deletion — compaction bounds how many can be in flight). *)
let rec shard_peek sh =
  match Pheap.peek_min sh.heap with
  | None -> None
  | Some h ->
      if h.cancelled then begin
        ignore (Pheap.pop_min sh.heap);
        sh.s_cancelled <- sh.s_cancelled - 1;
        shard_peek sh
      end
      else Some h

(* The global head: min-merge over the shard heads by (time, seq).  The
   shard count is the CPU count plus one, so the scan is a handful of
   O(1) peeks per pop. *)
let peek_live q =
  let best = ref None in
  Array.iter
    (fun sh ->
      match shard_peek sh with
      | None -> ()
      | Some h -> (
          match !best with
          | Some b when cmp b h <= 0 -> ()
          | _ -> best := Some h))
    q.shards;
  !best

let run_one q =
  match peek_live q with
  | None -> false
  | Some h ->
      let sh = q.shards.(h.shard) in
      ignore (Pheap.pop_min sh.heap) (* [h]: shard_peek cleaned the top *);
      q.now <- h.time;
      h.fired <- true;
      sh.s_live <- sh.s_live - 1;
      sh.s_fired <- sh.s_fired + 1;
      q.live <- q.live - 1;
      q.fired_count <- q.fired_count + 1;
      q.firing_shard <- h.shard;
      h.action ();
      q.firing_shard <- -1;
      true

(* Earliest instant at which anything can happen: the first live event,
   clamped to the horizon of the [run] currently draining us.  [None]
   means nothing is pending and no horizon binds — the caller may run
   ahead arbitrarily far. *)
let next_time q =
  let ev = match peek_live q with Some h -> Some h.time | None -> None in
  match (ev, q.run_horizon) with
  | None, h -> h
  | t, None -> t
  | Some t, Some h -> Some (Time.min t h)

let run ?until ?max_events q =
  let saved_horizon = q.run_horizon in
  (match until with Some h -> q.run_horizon <- Some h | None -> ());
  Fun.protect ~finally:(fun () -> q.run_horizon <- saved_horizon)
  @@ fun () ->
  let fired = ref 0 in
  let continue () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let rec loop () =
    if continue () then
      match peek_live q with
      | None -> ()
      | Some h -> (
          match until with
          | Some horizon when Time.(h.time > horizon) -> q.now <- horizon
          | _ ->
              if run_one q then begin
                incr fired;
                loop ()
              end)
  in
  loop ();
  (* If we stopped on the horizon with an empty queue, still advance. *)
  (match until with
  | Some horizon when q.live = 0 && Time.(q.now < horizon) -> q.now <- horizon
  | _ -> ());
  (* Queue drained (not horizon- or budget-limited): let observers look
     at the stalled machine.  A hook may schedule new events; we do not
     re-enter the loop for them — this is a post-mortem, not a phase. *)
  if q.drain_hooks <> [] && peek_live q = None then
    List.iter (fun f -> f ()) (List.rev q.drain_hooks)

(* [live] is exact: cancels decrement it immediately. *)
let pending_count q = q.live

let heap_population q =
  Array.fold_left (fun acc sh -> acc + Pheap.size sh.heap) 0 q.shards

let events_fired q = q.fired_count

(* --- per-shard introspection (procfs, parallel-scaling figure) -------- *)

let shard_count q = Array.length q.shards

(* A shard's frontier: the earliest instant anything can happen *in that
   shard* — its conservative-lookahead bound.  [None]: shard empty, no
   bound of its own. *)
let shard_next_time q i = Option.map (fun h -> h.time) (shard_peek q.shards.(i))

let shard_pending q i = q.shards.(i).s_live
let shard_fired q i = q.shards.(i).s_fired
let shard_cross_in q i = q.shards.(i).s_xin
