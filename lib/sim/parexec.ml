(* Worker-domain pool for offloaded compute.

   The simulation engine stays a single coordinator domain: every event
   fires there, in (time, seq) order, so kernel state never sees real
   concurrency and determinism is structural.  What parallelizes is the
   *real* CPU work inside a simulated compute phase: a workload hands
   the kernel a pure thunk together with its simulated cost
   ({!Sunos_kernel.Uctx.offload}); the kernel launches the thunk here
   and accounts the cost through the ordinary busy-event machinery.  By
   the time the charge completes in simulated time the thunk must have
   completed in real time — [await] enforces that, stealing the task
   inline if no worker picked it up yet.

   Layout: one SPSC ring per worker domain ({!Spsc}).  The coordinator
   is the only producer on every lane, each worker the only consumer of
   its own lane, so handoff is lock-free both ways.  Tasks are claimed
   by a state CAS (pending -> running -> done); the claim is what makes
   inline stealing race-free — whoever wins the CAS runs the thunk,
   the other side waits on the done flag (awaits of still-pending tasks
   steal rather than wait, so a sleeping worker can never stall the
   coordinator).  Idle waits block rather than burn: an idle worker
   parks on a condition after a short spin, and an await of a mid-flight
   task parks on the retire signal — so a pool wider than the real
   machine degrades to sequential speed instead of thrashing it.

   Determinism: simulated results depend only on the thunk's own output
   and its declared cost, never on which domain ran it or when — the
   pool is execution resources, not semantics.  Same seed, any domain
   count, bit-identical run. *)

type task = {
  run : unit -> unit;
  state : int Atomic.t;  (* 0 pending / 1 running / 2 done *)
  t_time : Time.t;  (* simulated completion instant (lane frontier) *)
  t_lane : int;  (* -1 when executed inline with no pool *)
}

type lane = {
  ring : task Spsc.t;
  frontier : Time.t Atomic.t;
      (* latest simulated completion instant this lane has retired;
         the per-shard committed-time the procfs stats expose *)
  submitted : int Atomic.t;
  completed : int Atomic.t;
  stalls : int Atomic.t;  (* awaits that had to wait on (or steal) a task *)
  overflows : int Atomic.t;  (* ring-full submits run inline instead *)
}

type t = {
  nworkers : int;
  lanes : lane array;
  mutable workers : unit Domain.t array;
  stop : bool Atomic.t;
  joined : bool Atomic.t;
  (* Parking, for machines with fewer real cores than domains: an idle
     worker spins briefly then blocks on [work_cond]; a coordinator
     awaiting a mid-flight task blocks on [done_cond].  The counters
     implement the classic flag/check handshake — the waiter registers
     (SC increment) before re-checking its predicate, the signaller
     updates the predicate before reading the counter, so sequential
     consistency guarantees at least one side sees the other and no
     wakeup is lost. *)
  mu : Stdlib.Mutex.t;
  work_cond : Stdlib.Condition.t;
  done_cond : Stdlib.Condition.t;
  sleepers : int Atomic.t;  (* workers parked on work_cond *)
  awaiters : int Atomic.t;  (* coordinators parked on done_cond *)
}

let frontier_raise lane time =
  let rec go () =
    let cur = Atomic.get lane.frontier in
    if Time.(time > cur) && not (Atomic.compare_and_set lane.frontier cur time)
    then go ()
  in
  go ()

(* Run a claimed task to completion and publish it. *)
let finish pool task =
  task.run ();
  Atomic.set task.state 2;
  if task.t_lane >= 0 then begin
    let lane = pool.lanes.(task.t_lane) in
    Atomic.incr lane.completed;
    frontier_raise lane task.t_time
  end;
  if Atomic.get pool.awaiters > 0 then begin
    Stdlib.Mutex.lock pool.mu;
    Stdlib.Condition.broadcast pool.done_cond;
    Stdlib.Mutex.unlock pool.mu
  end

let exec pool task =
  if Atomic.compare_and_set task.state 0 1 then finish pool task

let worker pool i () =
  let lane = pool.lanes.(i) in
  let rec loop spins =
    match Spsc.try_pop lane.ring with
    | Some task ->
        exec pool task;
        loop 0
    | None ->
        if not (Atomic.get pool.stop) then
          if spins < 64 then begin
            Domain.cpu_relax ();
            loop (spins + 1)
          end
          else begin
            (* park: register, then re-check the ring under the lock so a
               concurrent submit either sees the sleeper or we see its
               push *)
            Atomic.incr pool.sleepers;
            Stdlib.Mutex.lock pool.mu;
            while Spsc.is_empty lane.ring && not (Atomic.get pool.stop) do
              Stdlib.Condition.wait pool.work_cond pool.mu
            done;
            Stdlib.Mutex.unlock pool.mu;
            Atomic.decr pool.sleepers;
            loop 0
          end
        (* stop is only set after the coordinator stops producing, so an
           empty ring under [stop] is empty for good *)
  in
  loop 0

(* Pools must be joined before process exit (the runtime waits for every
   domain); workload drivers shut down eagerly, and the registry catches
   any machine a test forgot. *)
let registry : t list ref = ref []
let registry_mu = Stdlib.Mutex.create ()

let shutdown pool =
  if not (Atomic.exchange pool.joined true) then begin
    Atomic.set pool.stop true;
    Stdlib.Mutex.lock pool.mu;
    Stdlib.Condition.broadcast pool.work_cond;
    Stdlib.Mutex.unlock pool.mu;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||];
    Stdlib.Mutex.lock registry_mu;
    registry := List.filter (fun p -> p != pool) !registry;
    Stdlib.Mutex.unlock registry_mu
  end

let () = Stdlib.at_exit (fun () -> List.iter shutdown !registry)

let ring_size = 64

let create ~domains =
  if domains < 1 then invalid_arg "Parexec.create: domains";
  let nworkers = domains - 1 in
  let lanes =
    Array.init nworkers (fun _ ->
        {
          ring = Spsc.create ~size:ring_size;
          frontier = Atomic.make Time.zero;
          submitted = Atomic.make 0;
          completed = Atomic.make 0;
          stalls = Atomic.make 0;
          overflows = Atomic.make 0;
        })
  in
  let pool =
    { nworkers; lanes; workers = [||]; stop = Atomic.make false;
      joined = Atomic.make false; mu = Stdlib.Mutex.create ();
      work_cond = Stdlib.Condition.create ();
      done_cond = Stdlib.Condition.create ();
      sleepers = Atomic.make 0; awaiters = Atomic.make 0 }
  in
  pool.workers <- Array.init nworkers (fun i -> Domain.spawn (worker pool i));
  if nworkers > 0 then begin
    Stdlib.Mutex.lock registry_mu;
    registry := pool :: !registry;
    Stdlib.Mutex.unlock registry_mu
  end;
  pool

let domains pool = pool.nworkers + 1

(* Submit a pure thunk with its simulated completion instant; lanes are
   keyed by simulated CPU so one CPU's offloads stay in order. *)
let submit pool ~lane ~time run =
  if pool.nworkers = 0 then begin
    (* no pool: the offload degenerates to inline execution at launch,
       i.e. exactly the pre-parallel engine *)
    let task = { run; state = Atomic.make 2; t_time = time; t_lane = -1 } in
    run ();
    task
  end
  else begin
    let li = lane mod pool.nworkers in
    let l = pool.lanes.(li) in
    let task = { run; state = Atomic.make 0; t_time = time; t_lane = li } in
    Atomic.incr l.submitted;
    if not (Spsc.try_push l.ring task) then begin
      Atomic.incr l.overflows;
      exec pool task
    end
    else if Atomic.get pool.sleepers > 0 then begin
      Stdlib.Mutex.lock pool.mu;
      Stdlib.Condition.broadcast pool.work_cond;
      Stdlib.Mutex.unlock pool.mu
    end;
    task
  end

(* Block (the coordinator) until [task] has completed.  A still-pending
   task is stolen and run inline — the coordinator never waits on a
   worker that hasn't started; a running one is spun on briefly (the
   thunk is already mid-flight on another domain, and offload thunks are
   short), then parked on the retire signal — on a machine with fewer
   real cores than domains, spinning here would steal the timeslice of
   the very worker being waited for. *)
let await pool task =
  match Atomic.get task.state with
  | 2 -> ()
  | _ ->
      if task.t_lane >= 0 then
        Atomic.incr pool.lanes.(task.t_lane).stalls;
      if Atomic.compare_and_set task.state 0 1 then finish pool task
      else begin
        let spins = ref 0 in
        while Atomic.get task.state <> 2 && !spins < 256 do
          Domain.cpu_relax ();
          incr spins
        done;
        if Atomic.get task.state <> 2 then begin
          Atomic.incr pool.awaiters;
          Stdlib.Mutex.lock pool.mu;
          while Atomic.get task.state <> 2 do
            Stdlib.Condition.wait pool.done_cond pool.mu
          done;
          Stdlib.Mutex.unlock pool.mu;
          Atomic.decr pool.awaiters
        end
      end

let is_done task = Atomic.get task.state = 2

type lane_stats = {
  ls_submitted : int;
  ls_completed : int;
  ls_stalls : int;
  ls_overflows : int;
  ls_frontier : Time.t;
}

let lane_stats pool =
  Array.map
    (fun l ->
      {
        ls_submitted = Atomic.get l.submitted;
        ls_completed = Atomic.get l.completed;
        ls_stalls = Atomic.get l.stalls;
        ls_overflows = Atomic.get l.overflows;
        ls_frontier = Atomic.get l.frontier;
      })
    pool.lanes

(* SUNOS_DOMAINS selects the default domain count (1 = today's engine). *)
let default_domains () =
  match Stdlib.Sys.getenv_opt "SUNOS_DOMAINS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)
  | None -> 1

(* Deterministic busy-work kernel for workload compute phases: an FNV-1a
   style mix over the iteration counter.  Pure, allocation-free, and a
   function of [n] and [seed] alone — offloading it to any domain yields
   the same value, which is what lets real parallel execution hide under
   a bit-identical simulation. *)
let spin ~seed n =
  let h = ref (0x811c9dc5 lxor seed) in
  for i = 1 to n do
    h := (!h lxor (i land 0xff)) * 0x01000193 land 0x3fffffff
  done;
  !h
