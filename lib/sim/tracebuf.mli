(** Bounded execution trace.

    The kernel and the threads library emit tagged trace records; tests
    assert on them (e.g. the Figure 2 pick/run/save/pick sequence) and the
    CLI prints them.  The buffer is a ring: old records are dropped first. *)

type record = { time : Time.t; tag : string; msg : string }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 65536 records. *)

val emit : t -> time:Time.t -> tag:string -> string -> unit

val emitf :
  t -> time:Time.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** Oldest first. *)

val find : t -> tag:string -> record list
val clear : t -> unit
val dropped : t -> int
val pp : Format.formatter -> t -> unit

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Disabling makes [emit] a no-op; benchmarks disable tracing. *)

val interested : t -> tag:string -> bool
(** [enabled] and (when an interest set is installed) [tag] is in it.
    Emitters check this {e before} formatting a message, so records
    nobody will read cost neither the format nor the allocation. *)

val set_interest : t -> string list option -> unit
(** [Some tags] records only those tags; [None] (the default) records
    every tag.  Tags are interned, so the ring shares one string per
    distinct tag. *)
