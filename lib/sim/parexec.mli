(** Worker-domain pool for offloaded compute.

    The simulation advances on one coordinator domain — every event
    fires there, in (time, seq) order, so determinism is structural.
    What runs in parallel is the {e real} CPU work inside simulated
    compute phases: pure thunks submitted here with their simulated
    cost, executed on [domains - 1] worker domains while the
    coordinator keeps firing other shards' events, and awaited before
    the charge's continuation resumes.  Handoff is one {!Spsc} ring per
    worker; completion is a claim CAS, so an unstarted task can always
    be stolen and run inline by the awaiting coordinator (no deadlock,
    no unbounded wait).

    Simulated results never depend on which domain ran a thunk: the
    pool is execution resources, not semantics.  [domains = 1] runs
    every thunk inline at submit — exactly the pre-parallel engine. *)

type t

type task

val create : domains:int -> t
(** Spawns [domains - 1] worker domains ([domains >= 1]).  Pools must be
    {!shutdown} (workload drivers do this eagerly; an [at_exit] sweep
    catches stragglers so a forgotten pool can never hang exit). *)

val shutdown : t -> unit
(** Drain, stop and join the workers.  Idempotent. *)

val domains : t -> int

val submit : t -> lane:int -> time:Time.t -> (unit -> unit) -> task
(** Hand a pure thunk to lane [lane mod (domains - 1)] with simulated
    completion instant [time].  The thunk must not touch simulation
    state — its only outputs are its own closure cells.  Runs inline
    when there are no workers or the lane's ring is full. *)

val await : t -> task -> unit
(** Ensure the task has completed: steal-and-run it if still pending,
    spin briefly if mid-flight on a worker, return immediately if done. *)

val is_done : task -> bool

type lane_stats = {
  ls_submitted : int;
  ls_completed : int;
  ls_stalls : int;  (** awaits that found the task unfinished *)
  ls_overflows : int;  (** ring-full submits executed inline *)
  ls_frontier : Time.t;  (** latest simulated instant the lane retired *)
}

val lane_stats : t -> lane_stats array
(** One entry per worker domain (empty when [domains = 1]). *)

val default_domains : unit -> int
(** The [SUNOS_DOMAINS] environment knob; 1 (today's engine) when unset
    or unparsable. *)

val spin : seed:int -> int -> int
(** Deterministic allocation-free busy-work kernel (FNV-style mix over
    the iteration counter): the real work that workload compute phases
    offload.  A pure function of [seed] and [n]. *)
