(* Explore: stateless model checking over the deterministic engine.

   ROADMAP item 4's observation is that the hard part of a model checker
   is already built: a run is a pure function of its inputs, so a
   *schedule* is fully described by the vector of tie-break choices the
   engine consulted Schedctl for.  This module enumerates those vectors.

   The search is a DFS over decision-vector prefixes (the DSCheck /
   Sthread shape).  Running prefix [p] means: replay the first |p|
   choices, take the engine default (0) everywhere beyond, and log every
   decision.  From the completed log we expand alternatives only at
   indices >= |p| — the positions this run is the first to reach with
   this prefix.  Positions inside [p] were expanded by an ancestor run;
   never revisiting them is the classic sleep-set discipline expressed
   structurally, and it makes the search tree exact: every leaf (full
   choice vector) is executed exactly once.

   Partial-order reduction: each decision logs, per candidate, the set
   of sync objects the candidate is tied to — the object being decided
   over (wait queues, futex channels: all candidates share it) or, for
   run-queue picks, the locks the candidate thread currently holds
   (thrsan's order bookkeeping knows object identity).  An alternative
   whose footprint is disjoint from the taken candidate's commutes with
   it at the sync-object level, so its subtree is skipped and counted in
   [pruned].  Candidates with an empty (unknown) footprint are never
   pruned.  The reduction is exact for scenarios whose cross-thread
   communication flows through tracked sync objects — which is what the
   bundled scenarios are — and [explore ~dpor:false] re-runs the full
   tree for when that assumption is in doubt (the test suite checks both
   modes find the same failures).

   Each run is the caller's closure: boot a machine, run it, check
   invariants, report Pass or Fail.  The explorer only owns the frontier
   and the Schedctl driver lifecycle, so it lives in [lib/sim] with no
   upward dependencies. *)

type outcome = Pass | Fail of string

type failure = {
  f_vector : int array;  (* replayable decision vector *)
  f_reason : string;
  f_decisions : int;  (* decisions the failing run consumed *)
}

type stats = {
  explored : int;  (* schedules actually executed *)
  pruned : int;  (* alternatives skipped by the reduction *)
  failures : failure list;  (* chronological *)
  max_decisions : int;  (* deepest decision sequence seen *)
  capped : bool;  (* hit max_schedules with frontier non-empty *)
}

let disjoint a b = not (List.exists (fun x -> List.mem x b) a)

(* Can the alternative [alt] at decision [d] be skipped?  Only when both
   its footprint and the taken candidate's are known (non-empty) and
   share no sync object. *)
let prunable (d : Schedctl.decision) alt =
  Array.length d.d_foot > 0
  &&
  let taken = d.d_foot.(d.d_choice) and other = d.d_foot.(alt) in
  taken <> [] && other <> [] && disjoint taken other

let explore ?(dpor = true) ?(max_schedules = 100_000)
    ?(stop_on_first_failure = false) run =
  let frontier = ref [ [||] ] in
  let explored = ref 0 in
  let pruned = ref 0 in
  let failures = ref [] in
  let max_decisions = ref 0 in
  let capped = ref false in
  let stop = ref false in
  while (not !stop) && !frontier <> [] do
    if !explored >= max_schedules then begin
      capped := true;
      stop := true
    end
    else begin
      let prefix, rest =
        match !frontier with p :: r -> (p, r) | [] -> assert false
      in
      frontier := rest;
      Schedctl.begin_run ~vector:prefix;
      let outcome =
        try run ()
        with e ->
          (* a scenario bug, not a scheduling outcome — don't bury it *)
          Schedctl.abort_run ();
          raise e
      in
      let log, diverged = Schedctl.end_run () in
      incr explored;
      let ds = Array.of_list log in
      let n = Array.length ds in
      if n > !max_decisions then max_decisions := n;
      let fail reason =
        failures :=
          { f_vector = prefix; f_reason = reason; f_decisions = n }
          :: !failures;
        if stop_on_first_failure then stop := true
      in
      (match diverged with
      | Some msg -> fail ("schedctl divergence (nondeterminism): " ^ msg)
      | None -> (
          match outcome with Pass -> () | Fail reason -> fail reason));
      (* Expand the untaken branches this run is the first to reach.
         Deeper positions are pushed first so the shallower alternatives
         sit on top of the stack: the DFS stays near the root where
         schedules differ early, which keeps replayed prefixes short. *)
      if not !stop then
        for j = n - 1 downto Array.length prefix do
          let d = ds.(j) in
          for alt = 1 to d.d_arity - 1 do
            if dpor && prunable d alt then incr pruned
            else begin
              let v = Array.init (j + 1) (fun i -> ds.(i).d_choice) in
              v.(j) <- alt;
              frontier := v :: !frontier
            end
          done
        done
    end
  done;
  {
    explored = !explored;
    pruned = !pruned;
    failures = List.rev !failures;
    max_decisions = !max_decisions;
    capped = !capped;
  }

(* Run one schedule standalone (the replay path). *)
let run_vector ~vector run =
  Schedctl.begin_run ~vector;
  let outcome =
    try run ()
    with e ->
      Schedctl.abort_run ();
      raise e
  in
  let log, diverged = Schedctl.end_run () in
  (outcome, log, diverged)

(* ------------------------------------------------------------------ *)
(* Repro files                                                         *)
(* ------------------------------------------------------------------ *)

(* A failing schedule is dumped as a small text file:

     # sunos-mt schedule repro v1
     scenario: rwlock-upgrade
     reason: <first line of the failure reason>
     vector: 0 1 2 0 1

   `sunos-mt replay <file>` re-runs it standalone. *)

let repro_path ~scenario = Printf.sprintf "explore-failure-%s.repro" scenario

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let write_repro ~path ~scenario ~reason ~vector =
  let oc = open_out path in
  Printf.fprintf oc "# sunos-mt schedule repro v1\n";
  Printf.fprintf oc "scenario: %s\n" scenario;
  Printf.fprintf oc "reason: %s\n" (first_line reason);
  Printf.fprintf oc "vector:%s\n"
    (String.concat ""
       (List.map (Printf.sprintf " %d") (Array.to_list vector)));
  close_out oc

let read_repro path =
  let ic = open_in path in
  let scenario = ref None and vector = ref None in
  (try
     while true do
       let line = input_line ic in
       let pfx p =
         if String.length line >= String.length p
            && String.sub line 0 (String.length p) = p
         then
           Some
             (String.trim
                (String.sub line (String.length p)
                   (String.length line - String.length p)))
         else None
       in
       match pfx "scenario:" with
       | Some s -> scenario := Some s
       | None -> (
           match pfx "vector:" with
           | Some s ->
               vector :=
                 Some
                   (String.split_on_char ' ' s
                   |> List.filter (fun t -> t <> "")
                   |> List.map int_of_string |> Array.of_list)
           | None -> ())
     done
   with End_of_file -> close_in ic);
  match (!scenario, !vector) with
  | Some s, Some v -> (s, v)
  | _ -> failwith (path ^ ": not a sunos-mt schedule repro file")
