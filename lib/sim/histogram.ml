(* Fixed log-bucketed histogram (HdrHistogram-style).

   Layout: values 0..63 land in exact buckets 0..63.  For v >= 64 let k
   be the index of v's most significant bit (k >= 6); the 64 subbuckets
   of power-of-two range k are indexed by the 6 bits below the msb:

     idx = (k - 5) * 64 + ((v lsr (k - 6)) - 64)

   so bucket widths double every 64 buckets and the relative error of a
   bucket's upper bound is < 1/64.  Spans are int64 microseconds-scale
   ticks but always fit OCaml's 63-bit int, so the bucket math is plain
   int. *)

let subbits = 6
let sub = 1 lsl subbits (* 64 *)

(* Highest k we can need: OCaml ints are 63-bit, msb index <= 62. *)
let nbuckets = (62 - (subbits - 1)) * sub + sub (* 3712 *)

type t = {
  name : string;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : int;
  mutable max_v : int;
}

let create name =
  {
    name;
    buckets = Array.make nbuckets 0;
    count = 0;
    sum = 0.;
    min_v = max_int;
    max_v = min_int;
  }

let msb v =
  (* v >= sub here, so the loop terminates with k >= subbits. *)
  let k = ref 0 in
  let v = ref v in
  while !v > 1 do
    v := !v lsr 1;
    incr k
  done;
  !k

let index v =
  if v < sub then v
  else
    let k = msb v in
    ((k - (subbits - 1)) * sub) + ((v lsr (k - subbits)) - sub)

(* Largest value that maps to [idx] — the bucket's inclusive upper
   bound, what [percentile] reports. *)
let bucket_upper idx =
  if idx < sub then idx
  else
    let k = (idx / sub) + (subbits - 1) in
    let s = idx mod sub in
    (((sub + s) lsl (k - subbits)) + (1 lsl (k - subbits))) - 1

let add t span =
  let v = Stdlib.max 0 (Int64.to_int span) in
  t.buckets.(index v) <- t.buckets.(index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. float_of_int v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min t = Int64.of_int t.min_v
let max t = Int64.of_int t.max_v

let percentile t p =
  if t.count = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile: fraction";
  let rank =
    Stdlib.max 1 (int_of_float (Float.ceil (p *. float_of_int t.count)))
  in
  let idx = ref 0 in
  let seen = ref t.buckets.(0) in
  while !seen < rank do
    incr idx;
    seen := !seen + t.buckets.(!idx)
  done;
  Int64.of_int (Stdlib.min (bucket_upper !idx) t.max_v)

let merge ~into src =
  for i = 0 to nbuckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let name t = t.name

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0.;
  t.min_v <- max_int;
  t.max_v <- min_int

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "%s: (no samples)" t.name
  else
    Format.fprintf ppf "%s: n=%d mean=%.2fus p50=%a p95=%a p99=%a max=%a"
      t.name t.count
      (mean t /. 1_000.)
      Time.pp_us (percentile t 0.5) Time.pp_us (percentile t 0.95)
      Time.pp_us (percentile t 0.99) Time.pp_us
      (Int64.of_int t.max_v)
