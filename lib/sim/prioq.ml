(* Priority-indexed multi-queue with an occupancy bitmask.

   One FIFO bucket per priority level plus a bitmask of the non-empty
   buckets, so "highest occupied priority" is a find-highest-set over a
   couple of words instead of a scan of every level.  Consumers that use
   lazy deletion (the dispatcher's stale run-queue entries) prune dead
   entries from bucket fronts through [peek_live]; the mask tracks
   non-emptiness exactly, and is therefore only conservative about
   *liveness* — a set bit may cover a bucket holding nothing but stale
   entries until a prune drains it.  Every pruned entry was pushed once,
   so all operations stay O(1) amortized. *)

(* 62 bits per word keeps the arithmetic safely inside an OCaml int on
   any platform dune supports. *)
let bits_per_word = 62

type 'a t = {
  buckets : 'a Queue.t array;
  mask : int array;  (* bit p%62 of word p/62 set iff buckets.(p) non-empty *)
}

let create ~levels =
  if levels <= 0 then invalid_arg "Prioq.create: levels";
  {
    buckets = Array.init levels (fun _ -> Queue.create ());
    mask = Array.make ((levels + bits_per_word - 1) / bits_per_word) 0;
  }

let levels t = Array.length t.buckets

let set_bit t p =
  t.mask.(p / bits_per_word) <-
    t.mask.(p / bits_per_word) lor (1 lsl (p mod bits_per_word))

let clear_bit t p =
  t.mask.(p / bits_per_word) <-
    t.mask.(p / bits_per_word) land lnot (1 lsl (p mod bits_per_word))

let push t prio x =
  let q = t.buckets.(prio) in
  if Queue.is_empty q then set_bit t prio;
  Queue.add x q

(* Index of the highest set bit of [w > 0]: branchless-ish binary probe. *)
let highest_bit w =
  let r = ref 0 and w = ref w in
  if !w lsr 32 <> 0 then begin w := !w lsr 32; r := !r + 32 end;
  if !w lsr 16 <> 0 then begin w := !w lsr 16; r := !r + 16 end;
  if !w lsr 8 <> 0 then begin w := !w lsr 8; r := !r + 8 end;
  if !w lsr 4 <> 0 then begin w := !w lsr 4; r := !r + 4 end;
  if !w lsr 2 <> 0 then begin w := !w lsr 2; r := !r + 2 end;
  if !w lsr 1 <> 0 then incr r;
  !r

(* Highest non-empty priority <= [p], or -1. *)
let top_below t p =
  let p = min p (levels t - 1) in
  if p < 0 then -1
  else begin
    let wi = p / bits_per_word in
    (* mask off bits above p in its own word, then walk down *)
    let w0 = t.mask.(wi) land ((1 lsl (p mod bits_per_word + 1)) - 1) in
    if w0 <> 0 then (wi * bits_per_word) + highest_bit w0
    else begin
      let rec down i =
        if i < 0 then -1
        else if t.mask.(i) <> 0 then (i * bits_per_word) + highest_bit t.mask.(i)
        else down (i - 1)
      in
      down (wi - 1)
    end
  end

let top t = top_below t (levels t - 1)

(* Drop entries failing [keep] from the front of bucket [prio]; return the
   first surviving entry without removing it.  Clears the occupancy bit if
   the prune empties the bucket. *)
let peek_live t prio ~keep =
  let q = t.buckets.(prio) in
  let rec go () =
    match Queue.peek_opt q with
    | None ->
        clear_bit t prio;
        None
    | Some x -> if keep x then Some x else (ignore (Queue.pop q); go ())
  in
  go ()

let drop_front t prio =
  let q = t.buckets.(prio) in
  ignore (Queue.pop q);
  if Queue.is_empty q then clear_bit t prio

(* Exploration support (Schedctl driven mode): the systematic
   dispatcher enumerates a bucket's live entries and removes the chosen
   one from wherever it sits.  Passive dispatch never calls these — its
   peek_live/drop_front path is untouched. *)

let live_entries t prio ~keep =
  List.rev
    (Queue.fold
       (fun acc x -> if keep x then x :: acc else acc)
       [] t.buckets.(prio))

let remove t prio x =
  let q = t.buckets.(prio) in
  let removed = ref false in
  let rest =
    Queue.fold
      (fun acc y ->
        if (not !removed) && y == x then begin
          removed := true;
          acc
        end
        else y :: acc)
      [] q
  in
  Queue.clear q;
  List.iter (fun y -> Queue.add y q) (List.rev rest);
  if Queue.is_empty q then clear_bit t prio;
  !removed

let length t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.buckets

let is_empty t = Array.for_all (fun w -> w = 0) t.mask
