(** Priority-indexed multi-queue with an occupancy bitmask.

    One FIFO bucket per priority level; a bitmask of non-empty buckets
    makes "highest occupied priority" a find-highest-set over a couple of
    words rather than a scan of every level.  Built for the dispatcher's
    run queues: consumers using lazy deletion prune stale entries from
    bucket fronts via {!peek_live}, keeping every operation O(1)
    amortized.  The mask is exact about bucket non-emptiness and
    conservative about liveness (a set bit may cover only stale entries
    until a prune drains them). *)

type 'a t

val create : levels:int -> 'a t
(** [levels] priority slots, [0 .. levels-1].  Raises [Invalid_argument]
    when [levels <= 0]. *)

val levels : 'a t -> int

val push : 'a t -> int -> 'a -> unit
(** FIFO append at the given priority. *)

val top : 'a t -> int
(** Highest non-empty priority, or [-1] when all buckets are empty. *)

val top_below : 'a t -> int -> int
(** [top_below t p]: highest non-empty priority [<= p], or [-1]. *)

val peek_live : 'a t -> int -> keep:('a -> bool) -> 'a option
(** [peek_live t prio ~keep] discards entries failing [keep] from the
    front of the bucket and returns the first surviving entry (without
    removing it), or [None] if the bucket drains. *)

val drop_front : 'a t -> int -> unit
(** Remove the front entry of the bucket (raises [Queue.Empty] if the
    bucket is empty). *)

val live_entries : 'a t -> int -> keep:('a -> bool) -> 'a list
(** All entries of the bucket passing [keep], front first, without
    mutating the queue.  Exploration support; O(bucket). *)

val remove : 'a t -> int -> 'a -> bool
(** Remove the first physically-equal occurrence of the entry from the
    bucket; returns whether one was found.  Exploration support;
    O(bucket). *)

val length : 'a t -> int
(** Total queued entries, including stale ones; O(levels). *)

val is_empty : 'a t -> bool
