(** Log-bucketed latency histogram: constant-size, mergeable, allocation-free
    on the record path.

    {!Stats.Hist} keeps a sample reservoir — fine for a few thousand
    samples, but at 100k+ connections the reservoir either thins out
    (losing the tail) or dominates minor allocation.  This histogram
    instead keeps fixed power-of-two buckets with 64 linear subbuckets
    each (HdrHistogram-style): values 0..63 are exact, above that the
    relative bucket error is < 1/64 (~1.6%), which is far below
    scheduling noise for latency percentiles.

    Buckets are plain [int array] counters, so {!add} allocates nothing
    and two histograms recorded by different poller shards {!merge}
    exactly (elementwise add) — the merged percentiles are identical to
    recording into one histogram, which a reservoir cannot promise. *)

type t

val create : string -> t
(** All buckets zero.  The bucket array is ~3.7k ints (one-time). *)

val add : t -> Time.span -> unit
(** Record one value (negative values clamp to 0).  O(1), no allocation. *)

val count : t -> int
val mean : t -> float
(** [nan] when empty. *)

val min : t -> Time.span
(** Exact (tracked outside the buckets).  Undefined when empty. *)

val max : t -> Time.span
(** Exact (tracked outside the buckets).  Undefined when empty. *)

val percentile : t -> float -> Time.span
(** [percentile t p] for p in [0,1]: an upper bound on the p-quantile,
    exact below 64 and within 1/64 relative error above, clamped to the
    observed {!max}.  Monotone in [p].  Raises [Invalid_argument] when
    empty or [p] out of range. *)

val merge : into:t -> t -> unit
(** Elementwise-add [src] into [into]; equivalent to having recorded
    every sample of both into [into]. *)

val name : t -> string
val reset : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One line: n, mean, p50/p95/p99, max — the server-scaling figure
    row format. *)
