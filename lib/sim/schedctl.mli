(** The schedule-control seam: tie-break points in the engine (CPU
    dispatch within a priority, futex wakeup order, user-level run-queue
    pick, wait-queue admission) consult [choose].  Passive mode (no
    driver) always answers 0 and callers keep their original code path —
    byte-identical to the engine without the seam, pinned by the
    determinism goldens.  A driver installed by {!begin_run} replays a
    recorded choice vector and logs every decision for the explorer. *)

type decision = {
  d_site : string;
  d_obj : int;
  d_arity : int;
  d_choice : int;
  d_foot : int list array;
      (** per-candidate sync-object footprints ([[||]] when unreported);
          the explorer prunes alternatives whose footprint is disjoint
          from the taken candidate's *)
}

val active : unit -> bool
(** One ref load; callers gate their candidate enumeration on this. *)

val choose : site:string -> obj:int -> ?foot:(int -> int list) -> int -> int
(** [choose ~site ~obj ~foot n] picks a candidate index in [0, n).
    Passive: 0.  Driven: the vector's prescription for this position, or
    0 beyond the vector.  Single-candidate decisions are not recorded. *)

val begin_run : vector:int array -> unit
(** Install a driver for one run.  Raises if one is already installed. *)

val end_run : unit -> decision list * string option
(** Harvest the decision log (chronological) and the divergence
    diagnostic, if replay could not honor the vector.  Uninstalls. *)

val abort_run : unit -> unit
(** Uninstall without harvesting (exception cleanup). *)
