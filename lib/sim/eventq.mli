(** The discrete-event core: a clock and a queue of timed callbacks.

    Every activity in the simulated machine — CPU cost charging, device
    completion interrupts, timer expiry, preemption — is an event.  Events
    scheduled for the same instant fire in scheduling order (FIFO), which
    makes whole-machine runs deterministic. *)

type t

type handle
(** A scheduled event.  Cancelling is O(1) (lazy deletion). *)

val create : ?shards:int -> unit -> t
(** [shards] (default 1) partitions the queue into per-shard heaps —
    the machine uses one shard per simulated CPU plus a global shard 0
    for kernel-wide and device events.  Sharding never changes firing
    order: events pop in the global (time, seq) total order via a
    min-merge over the shard heads, bit-identical to a single heap.  It
    exists for structure — per-shard frontiers, stats and cross-shard
    traffic counts for the parallel engine and /proc. *)

val now : t -> Time.t
(** Current simulated time. *)

val at : ?shard:int -> t -> Time.t -> (unit -> unit) -> handle
(** [at q time f] schedules [f] to run at absolute [time], in [shard]
    (default 0, the global shard).  Scheduling in the past or into an
    out-of-range shard raises [Invalid_argument]. *)

val after : ?shard:int -> t -> Time.span -> (unit -> unit) -> handle
(** [after q d f] = [at q (now q + d) f]. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_pending : handle -> bool

val run_one : t -> bool
(** Fire the next event, advancing the clock.  [false] if queue empty. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain the queue.  Stops when empty, when the next event lies beyond
    [until] (clock is then left at [until]), or after [max_events]. *)

val on_drain : t -> (unit -> unit) -> unit
(** Register a hook fired by {!run} when it stops because the queue is
    truly empty (not horizon- or budget-limited).  Diagnostic observers
    — e.g. the thread sanitizer's hang check — inspect the stalled
    machine here.  Hooks run in registration order; events a hook
    schedules are left queued, not run. *)

val next_time : t -> Time.t option
(** Earliest instant at which anything can happen: the time of the first
    live event, clamped to the [until] horizon of the {!run} currently
    draining this queue (if any).  [None] when nothing is pending and no
    horizon binds.  Used by run-ahead accounting to bound how far a
    fiber may execute without settling: no event can fire strictly
    before this instant, so no simulated observer exists inside the
    window. *)

val pending_count : t -> int
(** Number of live (non-cancelled, unfired) events still queued.  Exact:
    cancellation is accounted immediately even though the heap deletes
    lazily. *)

val heap_population : t -> int
(** Entries physically in the heap, including cancelled ones awaiting
    lazy deletion.  Compaction keeps this within ~2x of
    [pending_count]; exposed for the cancel-churn tests. *)

val events_fired : t -> int
(** Total events fired since creation (for stats and loop-bound tests). *)

(** {2 Per-shard introspection}

    Indexed [0 .. shard_count - 1]; shard 0 is the global shard. *)

val shard_count : t -> int

val shard_next_time : t -> int -> Time.t option
(** The shard's frontier: earliest instant anything can happen in that
    shard — the conservative-lookahead bound the parallel engine (and
    /proc) report per shard.  [None] when the shard is empty. *)

val shard_pending : t -> int -> int
(** Live events queued in the shard. *)

val shard_fired : t -> int -> int
(** Events fired from the shard since creation. *)

val shard_cross_in : t -> int -> int
(** Events scheduled {e into} the shard from another shard's callback —
    the cross-shard synchronization traffic (IPIs, wakeups, dispatches
    onto another CPU). *)
