(** Stateless model checking over the deterministic engine: enumerate
    every schedule (vector of {!Schedctl} tie-break choices) of a
    scenario by DFS over decision-vector prefixes, with a sync-object
    footprint partial-order reduction.  See DESIGN.md, "Schedule
    exploration". *)

type outcome = Pass | Fail of string

type failure = {
  f_vector : int array;  (** replayable decision vector *)
  f_reason : string;
  f_decisions : int;  (** decisions the failing run consumed *)
}

type stats = {
  explored : int;  (** schedules actually executed *)
  pruned : int;  (** alternatives skipped by the reduction *)
  failures : failure list;  (** chronological *)
  max_decisions : int;  (** deepest decision sequence seen *)
  capped : bool;  (** hit [max_schedules] with work remaining *)
}

val explore :
  ?dpor:bool ->
  ?max_schedules:int ->
  ?stop_on_first_failure:bool ->
  (unit -> outcome) ->
  stats
(** [explore run] executes [run] once per schedule.  [run] must be a
    pure function of the installed schedule: boot a fresh machine, run
    it, judge the result.  Defaults: [dpor:true],
    [max_schedules:100_000]. *)

val run_vector :
  vector:int array ->
  (unit -> outcome) ->
  outcome * Schedctl.decision list * string option
(** Execute one schedule standalone (the replay path); returns the
    outcome, the decision log, and any divergence diagnostic. *)

val repro_path : scenario:string -> string
(** [explore-failure-<scenario>.repro] *)

val write_repro :
  path:string -> scenario:string -> reason:string -> vector:int array -> unit

val read_repro : string -> string * int array
(** Parse a repro file back into (scenario, vector).  Raises
    [Failure] on malformed input. *)
