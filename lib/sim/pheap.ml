(* Classic pairing heap with a two-pass merge for delete-min.  Purely
   functional nodes under a mutable root so the interface is imperative. *)

type 'a node = Node of 'a * 'a node list

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable root : 'a node option;
  mutable size : int;
}

let create ~cmp = { cmp; root = None; size = 0 }
let is_empty h = h.root = None
let size h = h.size

let merge cmp a b =
  let (Node (xa, ca)) = a and (Node (xb, cb)) = b in
  if cmp xa xb <= 0 then Node (xa, b :: ca) else Node (xb, a :: cb)

let insert h x =
  let n = Node (x, []) in
  (h.root <-
     (match h.root with None -> Some n | Some r -> Some (merge h.cmp r n)));
  h.size <- h.size + 1

let peek_min h = match h.root with None -> None | Some (Node (x, _)) -> Some x

(* Two-pass pairing: merge children pairwise left-to-right, then fold the
   results right-to-left.  Written with an explicit accumulator to stay
   tail-recursive on the first pass; the second pass depth is the number
   of pairs, i.e. half the child count, which is fine in practice. *)
let rec merge_pairs cmp = function
  | [] -> None
  | [ n ] -> Some n
  | a :: b :: rest -> (
      let ab = merge cmp a b in
      match merge_pairs cmp rest with
      | None -> Some ab
      | Some r -> Some (merge cmp ab r))

let pop_min h =
  match h.root with
  | None -> None
  | Some (Node (x, children)) ->
      h.root <- merge_pairs h.cmp children;
      h.size <- h.size - 1;
      Some x

let of_list ~cmp xs =
  let h = create ~cmp in
  List.iter (insert h) xs;
  h

let to_list_unordered h =
  let rec go acc = function
    | [] -> acc
    | Node (x, children) :: rest -> go (x :: acc) (children @ rest)
  in
  match h.root with None -> [] | Some r -> go [] [ r ]
