(* Schedctl: the schedule-control seam between the deterministic engine
   and the exploration driver (Explore).

   Every place where the engine breaks a tie among equally-eligible
   work — which LWP a CPU dispatches within a priority, which futex
   waiter a kwake hands the word to, which user thread an LWP runs
   next, which waiter a sync primitive admits — calls [choose] with the
   candidate count.  In the default (passive) mode [choose] is a single
   ref load returning 0, and callers are written so that "candidate 0"
   IS today's behavior down to the byte: the passive path does not even
   enumerate the candidates, it runs the pre-existing code.  The
   determinism goldens pin this.

   In driven mode (installed by [begin_run]) the first [vector] choices
   replay a prescribed prefix and everything beyond it takes the
   default; every consulted decision is recorded, along with each
   candidate's sync-object footprint, so the explorer can enumerate the
   untaken branches afterwards.  Decisions with a single candidate are
   not recorded — they carry no information and would only bloat the
   replay vectors.

   One driver at a time, in one domain: exploration re-runs the machine
   from boot sequentially.  (The worker-domain offload pool never
   consults Schedctl — offloaded compute is schedule-free by
   construction.) *)

type decision = {
  d_site : string;  (* which choice point: "dispatch", "runq", "waitq", "kwake" *)
  d_obj : int;  (* identity of the queue/object being decided over *)
  d_arity : int;  (* how many candidates were eligible *)
  d_choice : int;  (* index actually taken (0 = the engine's default) *)
  d_foot : int list array;
      (* per-candidate sync-object footprint for the explorer's
         partial-order reduction; [||] when the site reports none *)
}

type driver = {
  vector : int array;  (* prescribed choices; beyond it, the default *)
  mutable pos : int;  (* decisions consumed so far *)
  mutable log : decision list;  (* reverse-chronological record *)
  mutable diverged : string option;
      (* set when replay asks for a choice the run cannot honor: the
         engine produced a different decision sequence than the run the
         vector was recorded against (a determinism bug) *)
}

let driver_r : driver option ref = ref None

let active () = !driver_r <> None

let choose ~site ~obj ?foot n =
  match !driver_r with
  | None -> 0
  | Some d ->
      if n <= 1 then 0
      else begin
        let i = d.pos in
        d.pos <- i + 1;
        let c =
          if i < Array.length d.vector then begin
            let c = d.vector.(i) in
            if c < 0 || c >= n then begin
              (if d.diverged = None then
                 d.diverged <-
                   Some
                     (Printf.sprintf
                        "decision %d at %s#%d: vector says %d but arity is %d"
                        i site obj c n));
              0
            end
            else c
          end
          else 0
        in
        let foot = match foot with Some f -> Array.init n f | None -> [||] in
        d.log <-
          { d_site = site; d_obj = obj; d_arity = n; d_choice = c;
            d_foot = foot }
          :: d.log;
        c
      end

let begin_run ~vector =
  (match !driver_r with
  | Some _ -> invalid_arg "Schedctl.begin_run: a driver is already installed"
  | None -> ());
  driver_r := Some { vector; pos = 0; log = []; diverged = None }

let end_run () =
  match !driver_r with
  | None -> invalid_arg "Schedctl.end_run: no driver installed"
  | Some d ->
      driver_r := None;
      (List.rev d.log, d.diverged)

(* Abandon the driver without harvesting (cleanup on exceptions). *)
let abort_run () = driver_r := None
