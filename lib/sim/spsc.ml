(* Bounded single-producer/single-consumer ring.

   The inter-domain handoff primitive under {!Parexec}: the coordinator
   domain (sole producer per lane) publishes offloaded compute tasks to
   one worker domain (sole consumer).  Lock-free in the classic ring
   idiom: the producer owns [tail], the consumer owns [head], and each
   side reads the other's index with an acquire load.  A slot's payload
   is written plainly and then published by the index bump (release
   store), so the consumer's acquire of [tail] establishes the
   happens-before edge that makes the plain payload read race-free
   under the OCaml 5 memory model.

   Capacity is rounded up to a power of two so the index masks are a
   single [land].  Indices grow monotonically (they wrap the ring via
   the mask, not via modulo reset), so full/empty tests are plain
   subtraction and immune to ABA. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next slot to consume; owned by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; owned by the producer *)
}

let create ~size =
  if size <= 0 then invalid_arg "Spsc.create: size";
  let cap =
    let c = ref 1 in
    while !c < size do
      c := !c * 2
    done;
    !c
  in
  {
    buf = Array.make cap None;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity q = q.mask + 1

(* Producer side.  [false] when the ring is full — the caller falls back
   to running the task inline (safe: tasks are pure closures). *)
let try_push q v =
  let tail = Atomic.get q.tail in
  let head = Atomic.get q.head in
  if tail - head > q.mask then false
  else begin
    q.buf.(tail land q.mask) <- Some v;
    (* release: publishes the slot write above *)
    Atomic.set q.tail (tail + 1);
    true
  end

(* Consumer side. *)
let try_pop q =
  let head = Atomic.get q.head in
  let tail = Atomic.get q.tail in
  if tail - head <= 0 then None
  else begin
    let slot = head land q.mask in
    let v = q.buf.(slot) in
    (* drop the reference so the payload doesn't outlive its consumption
       by a full ring revolution *)
    q.buf.(slot) <- None;
    Atomic.set q.head (head + 1);
    v
  end

let length q = max 0 (Atomic.get q.tail - Atomic.get q.head)
let is_empty q = length q = 0
