type message = { payload : string; reply_to : string -> unit }

type t = {
  name : string;
  inbox : message Queue.t;
  replies : (string -> unit) Queue.t;
      (* reply functions of taken-but-unanswered messages, FIFO *)
  mutable waiters : (unit -> unit) list;
  mutable closed : bool;
}

let create ~name =
  {
    name;
    inbox = Queue.create ();
    replies = Queue.create ();
    waiters = [];
    closed = false;
  }
let name t = t.name

let fire t =
  let ws = List.rev t.waiters in
  t.waiters <- [];
  List.iter (fun f -> f ()) ws

let inject t m =
  if not t.closed then begin
    Queue.add m t.inbox;
    fire t
  end

let take t =
  match Queue.take_opt t.inbox with
  | None -> None
  | Some m ->
      Queue.add m.reply_to t.replies;
      Some m

let pop_reply t = Queue.take_opt t.replies
let readable t = (not (Queue.is_empty t.inbox)) || t.closed
let pending t = Queue.length t.inbox
let on_readable t f =
  if readable t then f () else t.waiters <- f :: t.waiters

let close t =
  t.closed <- true;
  fire t

let closed t = t.closed
