(* Connection-oriented stream sockets for the simulated kernel.

   This module is pure mechanism, in the style of Pipe: bounded buffers,
   closed flags and one-shot readiness callbacks.  What is new relative
   to a pipe is that the two endpoints live in different processes and
   every byte crosses the simulated network: a successful [write] only
   *accepts* the data into the sender's window; delivery into the peer's
   receive buffer happens a transfer time plus half a round trip later,
   through [Devices.Net.send].  The write window is
   [capacity - delivered - in_flight], so a writer stalls exactly when
   the receiver is slow to drain — TCP-style backpressure with a fixed
   window.

   Determinism: the net device of the simulated machine carries no
   jitter and the event queue breaks timestamp ties in insertion order,
   so deliveries on one direction arrive in the order they were sent and
   a whole run is a pure function of the workload's seeds. *)

module Net = Sunos_hw.Devices.Net
module Time = Sunos_sim.Time

(* A persistent readiness watch: unlike the one-shot waiter lists below
   it stays registered across firings and is detached explicitly (or
   lazily, via the active flag, when the owner disappears first).  This
   is the edge-notification primitive the epoll object builds on: the
   callback fires at every state transition that may have made the
   object ready, and the subscriber is responsible for deduplication —
   spurious firings are part of the contract. *)
type watch = { w_fire : unit -> unit; mutable w_active : bool }

let unwatch w = w.w_active <- false

(* Fire the live watches and prune the dead ones.  Watch lists are tiny
   (one epoll interest per fd side in practice), so the rebuild is
   cheaper than bookkeeping a doubly-linked list. *)
let fire_watches ws =
  List.iter (fun w -> if w.w_active then w.w_fire ()) ws;
  List.filter (fun w -> w.w_active) ws

type dir = {
  capacity : int;
  buf : Buffer.t;  (* delivered, not yet read by the receiver *)
  mutable in_flight : int;  (* accepted from the sender, still on the wire *)
  mutable wclosed : bool;  (* sender closed: EOF once [buf] drains *)
  mutable rclosed : bool;  (* receiver closed: further writes are resets *)
  mutable stall_until : Time.t;  (* fault injection: peer not draining *)
  mutable read_waiters : (unit -> unit) list;
  mutable write_waiters : (unit -> unit) list;
  mutable read_watches : watch list;  (* persistent: epoll edges *)
  mutable write_watches : watch list;
}

type conn = {
  net : Net.t;
  c2s : dir;  (* client -> server *)
  s2c : dir;  (* server -> client *)
  mutable reset : bool;
}

type side = Client | Server
type endpoint = { conn : conn; side : side }

type listener = {
  lname : string;
  backlog : int;
  capacity : int;  (* per-direction buffer size of accepted connections *)
  pending : endpoint Queue.t;  (* established, not yet accepted *)
  mutable accept_waiters : (unit -> unit) list;
  mutable accept_watches : watch list;
  mutable lclosed : bool;
  registry : registry;
}

and registry = (string, listener) Hashtbl.t

let default_capacity = 8192
let create_registry () : registry = Hashtbl.create 16

(* ---- directions ----------------------------------------------------- *)

let mk_dir capacity =
  {
    capacity;
    buf = Buffer.create 256;
    in_flight = 0;
    wclosed = false;
    rclosed = false;
    stall_until = Time.zero;
    read_waiters = [];
    write_waiters = [];
    read_watches = [];
    write_watches = [];
  }

let buffered (d : dir) = Buffer.length d.buf
let window (d : dir) = d.capacity - buffered d - d.in_flight

(* Waiters are pushed in reverse and fired oldest-first: registration
   must be O(1) because a poller re-registers on every idle fd it
   watches on every poll cycle — appending to the list tail would make
   an idle connection cost quadratic time between readiness events. *)
(* One-shot waiters fire before persistent watches so the pre-epoll
   blocking paths observe exactly the wakeup order they always have —
   with no watches registered these functions are byte-identical to
   their old selves, which is what keeps the legacy goldens valid. *)
let fire_read_waiters d =
  let ws = List.rev d.read_waiters in
  d.read_waiters <- [];
  List.iter (fun f -> f ()) ws;
  if d.read_watches <> [] then d.read_watches <- fire_watches d.read_watches

let fire_write_waiters d =
  let ws = List.rev d.write_waiters in
  d.write_waiters <- [];
  List.iter (fun f -> f ()) ws;
  if d.write_watches <> [] then
    d.write_watches <- fire_watches d.write_watches

(* ---- endpoints ------------------------------------------------------ *)

let outgoing ep = match ep.side with Client -> ep.conn.c2s | Server -> ep.conn.s2c
let incoming ep = match ep.side with Client -> ep.conn.s2c | Server -> ep.conn.c2s

(* EOF is ordered after data: the close flag only becomes readable once
   every chunk accepted before the close has been delivered. *)
let at_eof d = d.wclosed && buffered d = 0 && d.in_flight = 0

let readable ep =
  ep.conn.reset || buffered (incoming ep) > 0 || at_eof (incoming ep)

let writable ep =
  ep.conn.reset || (outgoing ep).rclosed || window (outgoing ep) > 0

let peer_closed ep = (incoming ep).wclosed

let read ep ~len =
  if ep.conn.reset then `Reset
  else
    let d = incoming ep in
    let n = min len (buffered d) in
    if n > 0 then begin
      let all = Buffer.contents d.buf in
      let out = String.sub all 0 n in
      Buffer.clear d.buf;
      Buffer.add_substring d.buf all n (String.length all - n);
      (* the window just opened: let the peer's writers at it *)
      fire_write_waiters d;
      `Data out
    end
    else if at_eof d then `Eof
    else `Empty

(* Delivery completion for one chunk: runs off the event queue a
   transfer time + half an RTT after the write was accepted.

   A stalled direction (fault injection: the peer stopped draining)
   defers the completion to [stall_until].  Order is preserved: every
   deferred chunk lands at the same instant and the event queue breaks
   timestamp ties in insertion order, while chunks whose natural arrival
   is later than the stall deadline were sent later and stay later.  The
   chunk stays in_flight across the deferral, so the sender's window
   remains closed — a stall is backpressure, not loss. *)
let rec deliver conn d chunk =
  let nnow = Net.now conn.net in
  if (not (d.rclosed || conn.reset)) && Time.(nnow < d.stall_until) then
    Net.delay conn.net (Time.diff d.stall_until nnow) (fun () ->
        deliver conn d chunk)
  else begin
    d.in_flight <- d.in_flight - String.length chunk;
    if not (d.rclosed || conn.reset) then begin
      Buffer.add_string d.buf chunk;
      fire_read_waiters d
    end
    else if d.in_flight = 0 && d.wclosed then
      (* last straggler of an already-closed stream: readers blocked for
         the ordered EOF can now see it *)
      fire_read_waiters d
  end

let stall ep ~until =
  let d = outgoing ep in
  d.stall_until <- Time.max d.stall_until until

(* Abortive teardown from the outside (fault injection: a mid-stream
   RST).  Both streams die instantly; every waiter is fired so blocked
   readers, writers and pollers re-examine the endpoint and observe the
   reset. *)
let abort ep =
  let c = ep.conn in
  if not c.reset then begin
    c.reset <- true;
    Buffer.clear c.c2s.buf;
    Buffer.clear c.s2c.buf;
    fire_read_waiters c.c2s;
    fire_write_waiters c.c2s;
    fire_read_waiters c.s2c;
    fire_write_waiters c.s2c
  end

let write ep data =
  if ep.conn.reset || (outgoing ep).rclosed then `Reset
  else
    let d = outgoing ep in
    let n = min (window d) (String.length data) in
    if n = 0 then `Full
    else begin
      let chunk = String.sub data 0 n in
      d.in_flight <- d.in_flight + n;
      Net.send ep.conn.net ~bytes_:n ~on_complete:(fun () ->
          deliver ep.conn d chunk);
      `Accepted n
    end

let close ep =
  let out = outgoing ep and inc = incoming ep in
  if not (out.wclosed && inc.rclosed) then begin
    out.wclosed <- true;
    inc.rclosed <- true;
    (* closing with undelivered inbound data is an abortive close: the
       peer learns nobody read its bytes (RST), both streams die *)
    if buffered inc > 0 || inc.in_flight > 0 then begin
      ep.conn.reset <- true;
      Buffer.clear inc.buf;
      Buffer.clear out.buf
    end;
    fire_read_waiters out;
    fire_write_waiters out;
    fire_read_waiters inc;
    fire_write_waiters inc
  end

let on_readable ep f =
  if readable ep then f ()
  else
    let d = incoming ep in
    d.read_waiters <- f :: d.read_waiters

let on_writable ep f =
  if writable ep then f ()
  else
    let d = outgoing ep in
    d.write_waiters <- f :: d.write_waiters

(* Persistent watches do NOT check current readiness at registration:
   the epoll layer performs its own level check when an interest is
   added or re-armed, and only the subsequent transitions come through
   here.  Splitting it this way is what makes the lost-wakeup argument
   local (see DESIGN.md). *)
let watch_readable ep f =
  let w = { w_fire = f; w_active = true } in
  let d = incoming ep in
  d.read_watches <- w :: d.read_watches;
  w

let watch_writable ep f =
  let w = { w_fire = f; w_active = true } in
  let d = outgoing ep in
  d.write_watches <- w :: d.write_watches;
  w

(* ---- listeners ------------------------------------------------------ *)

let listen registry ~name ~backlog ?(capacity = default_capacity) () =
  if Hashtbl.mem registry name then Error `Addr_in_use
  else begin
    let l =
      {
        lname = name;
        backlog = max 1 backlog;
        capacity;
        pending = Queue.create ();
        accept_waiters = [];
        accept_watches = [];
        lclosed = false;
        registry;
      }
    in
    Hashtbl.replace registry name l;
    Ok l
  end

let lookup registry name : listener option = Hashtbl.find_opt registry name
let listener_closed l = l.lclosed
let listener_name l = l.lname
let pending_count l = Queue.length l.pending
let acceptable l = l.lclosed || not (Queue.is_empty l.pending)

let fire_accept_waiters l =
  let ws = List.rev l.accept_waiters in
  l.accept_waiters <- [];
  List.iter (fun f -> f ()) ws;
  if l.accept_watches <> [] then
    l.accept_watches <- fire_watches l.accept_watches

(* SYN arrival: admit a connection if the listener still exists and the
   backlog has room.  Returns the client endpoint; the matching server
   endpoint waits on the pending queue for an accept. *)
let try_admit l ~net =
  if l.lclosed || Queue.length l.pending >= l.backlog then None
  else begin
    let conn =
      { net; c2s = mk_dir l.capacity; s2c = mk_dir l.capacity; reset = false }
    in
    Queue.add { conn; side = Server } l.pending;
    fire_accept_waiters l;
    Some { conn; side = Client }
  end

let accept l = Queue.take_opt l.pending

let on_acceptable l f =
  if acceptable l then f () else l.accept_waiters <- f :: l.accept_waiters

let watch_acceptable l f =
  let w = { w_fire = f; w_active = true } in
  l.accept_watches <- w :: l.accept_watches;
  w

let close_listener l =
  if not l.lclosed then begin
    l.lclosed <- true;
    Hashtbl.remove l.registry l.lname;
    (* connections sitting in the backlog were never accepted: abort
       them so the far side sees a reset rather than a silent hang *)
    Queue.iter close l.pending;
    Queue.clear l.pending;
    fire_accept_waiters l
  end

(* A socketpair without the listen/connect dance — for shims and tests. *)
let pair ~net ?(capacity = default_capacity) () =
  let conn = { net; c2s = mk_dir capacity; s2c = mk_dir capacity; reset = false } in
  ({ conn; side = Client }, { conn; side = Server })
