(** /proc: introspection snapshots of kernel process state.

    The paper extends /proc so debuggers can control LWPs while the
    threads library handles user threads; here the same split appears as
    kernel-level snapshots (this module, LWPs only — the kernel cannot
    see user threads) that the threads library complements with its own
    thread tables. *)

type lwp_info = {
  li_lwpid : int;
  li_state : string;  (** "running(cpuN)" | "runnable" | "sleeping" | ... *)
  li_class : string;  (** "TS" | "RT" | "GANG" *)
  li_prio : int;  (** global dispatch priority *)
  li_wchan : string;  (** wait channel when sleeping *)
  li_parked : bool;  (** parked by lwp_park (idle pool LWP) *)
  li_sleep_indefinite : bool;  (** sleeping with no timeout *)
  li_sleep_interruptible : bool;  (** sleep breakable by a signal *)
  li_utime : Sunos_sim.Time.span;
  li_stime : Sunos_sim.Time.span;
  li_bound_cpu : int option;
}

type proc_info = {
  pi_pid : int;
  pi_name : string;
  pi_state : string;  (** "alive" | "stopped" | "zombie" | "reaped" *)
  pi_parent : int option;
  pi_nlwps : int;
  pi_lwps : lwp_info list;
  pi_utime : Sunos_sim.Time.span;
  pi_stime : Sunos_sim.Time.span;
  pi_minflt : int;
  pi_majflt : int;
  pi_shed : int;  (** connections refused under overload (load shedding) *)
  pi_nfds : int;
  pi_nsocks : int;  (** open connected socket fds *)
  pi_nlisten : int;  (** open listening socket fds *)
}

val snapshot : Ktypes.kernel -> proc_info list
(** All processes, ordered by pid. *)

val proc : Ktypes.kernel -> int -> proc_info option
val pp_proc : Format.formatter -> proc_info -> unit
val pp : Format.formatter -> Ktypes.kernel -> unit
(** A ps(1)-style table of every process and LWP. *)

type wchan_info = {
  wc_seg_id : int;
  wc_seg_name : string;
  wc_offset : int;
  wc_waiters : (int * int) list;  (** (pid, lwpid) pairs, sorted *)
}

val wait_channels : Ktypes.kernel -> wchan_info list
(** The kernel's shared-object wait channels — one entry per
    (segment, offset) with at least one live sleeping waiter, ordered by
    (segment id, offset).  This is how a USYNC_PROCESS block shows up
    from outside: the blocked LWP's wchan says ["kwait"]; this table
    says on which lock word of which segment. *)

val pp_wait_channels : Format.formatter -> Ktypes.kernel -> unit

(** {1 Epoll objects}

    Readiness-delivery stats, one row per open epoll fd: interest-set
    size, current ready-queue depth, and the lifetime edge/coalesce/
    wakeup/delivery counters.  [ei_coalesced] is the figure of merit for
    edge dedup — edges absorbed because the entry was already queued —
    and [ei_delivered / ei_wakeups] is the batching ratio a wait
    achieves. *)

type epoll_info = {
  ei_pid : int;
  ei_fd : int;
  ei_interest : int;  (** registered fds *)
  ei_ready : int;  (** current ready-queue depth *)
  ei_edges : int;  (** entries enqueued over the object's lifetime *)
  ei_coalesced : int;  (** edges absorbed by an already-queued entry *)
  ei_wakeups : int;  (** blocked epoll_wait callers woken *)
  ei_delivered : int;  (** entries handed to epoll_wait callers *)
}

val epolls : Ktypes.kernel -> epoll_info list
(** Every open epoll fd, ordered by (pid, fd). *)

val pp_epoll : Format.formatter -> epoll_info -> unit
val pp_epolls : Format.formatter -> Ktypes.kernel -> unit

(** {1 Parallel engine}

    The sharded event queue and the worker-domain pool, from outside:
    per-shard frontier time (the earliest instant anything can happen
    in that shard — the conservative-lookahead bound), traffic counts,
    and the cross-shard message count (events scheduled into a shard by
    another shard's callback). *)

type shard_info = {
  sh_id : int;  (** 0 = global/kernel/devices, [i + 1] = CPU [i] *)
  sh_frontier : Sunos_sim.Time.t option;  (** earliest pending event *)
  sh_pending : int;
  sh_fired : int;
  sh_cross_in : int;  (** events scheduled in from other shards *)
}

val shards : Ktypes.kernel -> shard_info list
(** One entry per event-queue shard, in shard order. *)

val pool_lanes : Ktypes.kernel -> Sunos_sim.Parexec.lane_stats array
(** Offload-pool lane counters (empty when [domains = 1]): submissions,
    completions, coordinator stalls, ring overflows and each lane's
    retired-work frontier. *)

val pp_shards : Format.formatter -> Ktypes.kernel -> unit
(** Shard table followed by pool-lane table. *)
