(** User context: the "instruction set" available to simulated user code.

    Code running on an LWP (directly, or as a thread multiplexed on one)
    interacts with the machine through exactly two effects: {!Charge}
    (consume simulated CPU time) and {!Sys} (a system call).  The kernel
    installs the handler ({!run_fiber} builds the fiber; the kernel owns
    the returned {!step} values).

    Everything else in this module is typed wrappers over those effects —
    the libc of the simulation.  Wrappers pick up deliverable signals at
    the documented delivery points (return from a charge that reports a
    pending signal; return from an interrupted system call), mirroring
    delivery on return-to-user-mode. *)

type _ Effect.t +=
  | Charge : Sunos_sim.Time.span -> bool Effect.t
        (** Result [true] means deliverable signals are pending. *)
  | Sys : Sysdefs.sysreq -> Sysdefs.sysret Effect.t
  | Offload : Sunos_sim.Time.span * (unit -> unit) -> bool Effect.t
        (** A charge with real work attached: the kernel launches the
            thunk on the machine's worker pool and awaits it before the
            charge's continuation resumes.  Result as for {!Charge}. *)

type step =
  | Step_done
  | Step_raised of exn * Printexc.raw_backtrace
  | Step_charge of
      Sunos_sim.Time.span * (bool, step) Effect.Deep.continuation
  | Step_sys of
      Sysdefs.sysreq * (Sysdefs.sysret, step) Effect.Deep.continuation
  | Step_offload of
      Sunos_sim.Time.span
      * (unit -> unit)
      * (bool, step) Effect.Deep.continuation

val run_fiber : (unit -> unit) -> step
(** Start running [f] as a fiber; returns at its first effect (or
    completion).  Kernel-internal. *)

exception Process_killed
(** Used by the kernel to discontinue fibers of a dying process. *)

(** {1 Run-ahead accounting (kernel-internal)} *)

val grant : budget:Sunos_sim.Time.span -> unit
(** Open a run-ahead window: subsequent {!charge}s accumulate in a
    domain-local ledger instead of performing effects, until the
    running total would reach [budget] (that charge performs).  A zero
    or negative budget closes any open window — every charge then
    performs directly.  Called by the kernel just before continuing a
    fiber; the budget never exceeds the time to the event queue's next
    pending event, which is what makes coalescing unobservable. *)

val unsettled : unit -> Sunos_sim.Time.span
(** Collect and reset the coalesced-but-unaccounted charge total, and
    close the window.  Called by the kernel at every fiber step (charge
    perform, syscall, completion) before acting on it. *)

(** {1 Core} *)

val charge : Sunos_sim.Time.span -> unit
(** Consume CPU; runs any deliverable signal handlers before returning. *)

val charge_us : int -> unit
val compute : Sunos_sim.Time.span -> unit
(** Alias of {!charge} for application compute phases. *)

val offload : cost:Sunos_sim.Time.span -> (unit -> unit) -> unit
(** A compute phase with real work behind it: [f] runs on the machine's
    worker-domain pool (inline when [domains = 1]) while the simulation
    keeps advancing, and is guaranteed complete by the time this call
    returns.  [f] must be pure — it may write only its own closure
    cells, never simulation state — so the simulated outcome depends
    only on [cost] and the caller's own data: bit-identical for every
    domain count.  Signal handlers run before returning, as for
    {!charge}. *)

val syscall : Sysdefs.sysreq -> Sysdefs.sysret
(** Raw system call; no signal pickup, no error decoding. *)

val checkpoint : unit -> unit
(** Explicitly collect and run deliverable signal handlers. *)

(** {1 Identity and time} *)

val getpid : unit -> int
val getlwpid : unit -> int
val gettime : unit -> Sunos_sim.Time.t

(** {1 Process control} *)

val exit : int -> 'a
val fork : child_main:(unit -> unit) -> int
val fork1 : child_main:(unit -> unit) -> int
val exec : name:string -> main:(unit -> unit) -> 'a
val waitpid : ?pid:int -> unit -> int * int
val sleep : Sunos_sim.Time.span -> unit
(** Returns early (after running handlers) if a signal arrives. *)

(** {1 Files, pipes, polling} *)

val open_file : ?flags:Sysdefs.open_flag list -> string -> Sysdefs.fd
val open_net : Netchan.t -> Sysdefs.fd
val close : Sysdefs.fd -> unit
val read : Sysdefs.fd -> len:int -> string
val write : Sysdefs.fd -> string -> int
val lseek : Sysdefs.fd -> int -> unit
val unlink : string -> unit
val pipe : unit -> Sysdefs.fd * Sysdefs.fd

(** {1 Sockets} *)

val listen : name:string -> backlog:int -> Sysdefs.fd
(** Register a listening socket under a service name; raises
    [Unix_error (EADDRINUSE, _)] if the name is taken. *)

val connect : string -> Sysdefs.fd
(** Connect to a named listener; blocks one network round trip.  Raises
    [Unix_error (ECONNREFUSED, _)] when there is no listener or its
    backlog is full (callers typically back off and retry). *)

val accept : Sysdefs.fd -> Sysdefs.fd
(** Next established connection on a listening fd; blocks while the
    backlog is empty.  Raises [Unix_error (ECONNABORTED, _)] if the
    listening fd is closed underneath the wait. *)

val accept_nb : Sysdefs.fd -> [ `Conn of Sysdefs.fd | `Again | `Aborted ]
(** Non-blocking {!accept}: [`Again] while the backlog is empty,
    [`Aborted] once the listener is closed (so a drain loop terminates
    instead of spinning on a fd that can never produce a connection).
    An event-driven server calls this in a loop after {!poll} reports
    the listening fd readable, draining every pending connection behind
    a single readiness event instead of paying a poll round trip each. *)

val try_read :
  Sysdefs.fd -> len:int -> [ `Data of string | `Eof | `Again | `Reset ]
(** Non-blocking socket read with distinguishable outcomes: data, clean
    EOF, not-ready and connection-reset are four different answers (an
    option type would conflate the last three).  Only valid on stream
    socket fds. *)

val note_shed : unit -> unit
(** Account one load-shed connection against the calling process; the
    count is visible in /proc ({!Procfs.proc_info}). *)

val write_all : Sysdefs.fd -> string -> unit
(** Loop {!write} until every byte is accepted (blocking on
    backpressure as needed). *)

val read_exact : Sysdefs.fd -> len:int -> string
(** Loop {!read} until exactly [len] bytes arrive; a short string means
    the peer closed mid-frame. *)

val poll :
  ?timeout:Sunos_sim.Time.span -> Sysdefs.poll_fd list -> Sysdefs.fd list
(** Restarted after signal handlers run; [[]] only on timeout. *)

(** {1 Epoll: edge-triggered readiness}

    O(ready) event delivery for servers holding many connections; the
    legacy {!poll} rescans its whole set per wakeup, epoll does not.
    Edge-triggered: after a delivery, drain with the non-blocking ops
    ({!try_read}, {!accept_nb}) until [`Again], and for ONESHOT
    interests re-arm with {!epoll_mod} when ready for the next event. *)

val epoll_create : unit -> Sysdefs.fd

val epoll_add :
  Sysdefs.fd ->
  Sysdefs.fd ->
  ?want_in:bool ->
  ?want_out:bool ->
  ?oneshot:bool ->
  unit ->
  unit
(** Register interest of the second fd on the first (epoll) fd.  Raises
    [EEXIST] if already registered, [EINVAL] on objects without edge
    sources (plain files, net channels, ttys, epolls). *)

val epoll_mod :
  Sysdefs.fd ->
  Sysdefs.fd ->
  ?want_in:bool ->
  ?want_out:bool ->
  ?oneshot:bool ->
  unit ->
  unit
(** Update mask and re-arm (with a readiness re-check, so edges that
    fired while a ONESHOT entry was disarmed are not lost). *)

val epoll_del : Sysdefs.fd -> Sysdefs.fd -> unit

val epoll_wait :
  ?timeout:Sunos_sim.Time.span -> Sysdefs.fd -> max_events:int -> Sysdefs.fd list
(** Up to [max_events] ready fds; blocks while none are ready (restarted
    after signal handlers run).  [[]] only on timeout.  Readiness may be
    stale (edge recorded before a competing consumer drained): treat
    [`Again] from the subsequent non-blocking op as normal. *)

(** {1 Memory} *)

val mmap : Sysdefs.fd -> Sunos_hw.Shared_memory.t
val mmap_anon : size:int -> shared:bool -> Sunos_hw.Shared_memory.t
val munmap : Sunos_hw.Shared_memory.t -> unit
val touch : Sunos_hw.Shared_memory.t -> offset:int -> unit

(** {1 Signals} *)

val kill : pid:int -> Signo.t -> unit
val lwp_kill : lwpid:int -> Signo.t -> unit
val sigaction : Signo.t -> Sysdefs.disposition -> Sysdefs.disposition
val sigprocmask : Sigset.how -> Sigset.t -> unit
val trap : Signo.t -> unit
(** Raise a synchronous fault in the current thread. *)

(** {1 LWP control} *)

val lwp_create :
  ?cls:Sysdefs.sched_class_req -> entry:(unit -> unit) -> unit -> int

val lwp_exit : unit -> 'a

val lwp_park :
  ?timeout:Sunos_sim.Time.span -> unit -> [ `Parked | `Timeout ]
(** Returns [`Parked] on unpark (including a pending unpark token) and
    after signal handlers ran (spurious returns allowed: callers loop). *)

val lwp_unpark : int -> unit

(** {1 Shared-memory waiting (sync-variable support)} *)

val kwait :
  seg:Sunos_hw.Shared_memory.t ->
  offset:int ->
  ?timeout:Sunos_sim.Time.span ->
  ?expect:(unit -> bool) ->
  unit ->
  [ `Woken | `Timeout ]
(** Spurious wakeups allowed (signals); callers re-check their predicate.
    [expect] is the futex compare: evaluated atomically at sleep time,
    [false] means return immediately. *)

val kwake : seg:Sunos_hw.Shared_memory.t -> offset:int -> count:int -> int
(** Returns the number of waiters woken. *)

(** {1 Scheduling, timers, accounting} *)

val setitimer : Sysdefs.which_timer -> Sunos_sim.Time.span option -> unit
val priocntl : Sysdefs.sched_class_req -> unit
val set_priority : int -> unit
val processor_bind : int option -> unit
val getrusage : unit -> Sysdefs.rusage
val setrlimit_cpu : Sunos_sim.Time.span option -> unit
val profil : bool -> unit

val set_resume_hook : (unit -> unit) -> unit
(** Install this LWP's context-restore hook (see
    {!Sysdefs.sysreq.Sys_set_resume_hook}). *)

val upcall_on_block : ?activation_entry:(unit -> unit) -> bool -> unit
(** Toggle scheduler-activations mode: on every application block, the
    kernel unparks an idle LWP or creates a fresh activation running
    [activation_entry]. *)
