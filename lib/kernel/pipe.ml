(* Persistent readiness watch — same contract as Socket.watch: fires at
   every transition until unwatched, no readiness check at registration,
   spurious firings allowed.  The epoll object subscribes through these. *)
type watch = { w_fire : unit -> unit; mutable w_active : bool }

let unwatch w = w.w_active <- false

let fire_watches ws =
  List.iter (fun w -> if w.w_active then w.w_fire ()) ws;
  List.filter (fun w -> w.w_active) ws

type t = {
  capacity : int;
  buf : Buffer.t;
  mutable read_closed : bool;
  mutable write_closed : bool;
  mutable read_waiters : (unit -> unit) list;
  mutable write_waiters : (unit -> unit) list;
  mutable read_watches : watch list;
  mutable write_watches : watch list;
}

let default_capacity = 5120

let create ?(capacity = default_capacity) () =
  {
    capacity;
    buf = Buffer.create 256;
    read_closed = false;
    write_closed = false;
    read_waiters = [];
    write_waiters = [];
    read_watches = [];
    write_watches = [];
  }

let buffered t = Buffer.length t.buf
let readable t = buffered t > 0 || t.write_closed
let writable t = buffered t < t.capacity || t.read_closed
let read_closed t = t.read_closed
let write_closed t = t.write_closed

(* registration is O(1) (prepend), firing reverses to oldest-first —
   pollers re-register each cycle, so tail-append would go quadratic *)
let fire_read_waiters t =
  let ws = List.rev t.read_waiters in
  t.read_waiters <- [];
  List.iter (fun f -> f ()) ws;
  if t.read_watches <> [] then t.read_watches <- fire_watches t.read_watches

let fire_write_waiters t =
  let ws = List.rev t.write_waiters in
  t.write_waiters <- [];
  List.iter (fun f -> f ()) ws;
  if t.write_watches <> [] then
    t.write_watches <- fire_watches t.write_watches

let read t ~len =
  let n = min len (buffered t) in
  if n = 0 then ""
  else begin
    let all = Buffer.contents t.buf in
    let out = String.sub all 0 n in
    Buffer.clear t.buf;
    Buffer.add_substring t.buf all n (String.length all - n);
    fire_write_waiters t;
    out
  end

let write t s =
  let room = t.capacity - buffered t in
  let n = min room (String.length s) in
  if n > 0 then begin
    Buffer.add_substring t.buf s 0 n;
    fire_read_waiters t
  end;
  n

let close_read t =
  t.read_closed <- true;
  fire_write_waiters t

let close_write t =
  t.write_closed <- true;
  fire_read_waiters t

let on_readable t f =
  if readable t then f () else t.read_waiters <- f :: t.read_waiters

let on_writable t f =
  if writable t then f () else t.write_waiters <- f :: t.write_waiters

let watch_readable t f =
  let w = { w_fire = f; w_active = true } in
  t.read_watches <- w :: t.read_watches;
  w

let watch_writable t f =
  let w = { w_fire = f; w_active = true } in
  t.write_watches <- w :: t.write_watches;
  w
