type fd = int

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC

type disposition = Sig_default | Sig_ignore | Sig_handler of (Signo.t -> unit)

type which_timer = Timer_real | Timer_virtual | Timer_prof

type sched_class_req = Cls_timeshare | Cls_realtime of int | Cls_gang of int

type poll_fd = { pfd : fd; want_in : bool; want_out : bool }

(* epoll_ctl operations.  Add/Mod carry the interest mask plus the
   ONESHOT flag (deliver once, disarm until the next Mod re-arms). *)
type epoll_op =
  | Ep_add of { want_in : bool; want_out : bool; oneshot : bool }
  | Ep_mod of { want_in : bool; want_out : bool; oneshot : bool }
  | Ep_del

type rusage = {
  ru_utime : Sunos_sim.Time.span;
  ru_stime : Sunos_sim.Time.span;
  ru_nlwps : int;
  ru_minflt : int;
  ru_majflt : int;
}

type sysreq =
  | Sys_getpid
  | Sys_getlwpid
  | Sys_gettime
  | Sys_nanosleep of Sunos_sim.Time.span
  | Sys_exit of int
  | Sys_fork of { child_main : unit -> unit; all_lwps : bool }
  | Sys_exec of { name : string; main : unit -> unit }
  | Sys_waitpid of int option
  | Sys_open of string * open_flag list
  | Sys_open_net of Netchan.t
  | Sys_close of fd
  | Sys_read of fd * int
  | Sys_read_nb of fd * int  (* non-blocking socket read *)
  | Sys_write of fd * string
  | Sys_lseek of fd * int
  | Sys_unlink of string
  | Sys_mmap of { fd : fd }
  | Sys_mmap_anon of { size : int; shared : bool }
  | Sys_munmap of Sunos_hw.Shared_memory.t
  | Sys_touch of Sunos_hw.Shared_memory.t * int
  | Sys_pipe
  | Sys_listen of { name : string; backlog : int }
  | Sys_connect of string
  | Sys_accept of fd * bool (* nonblock *)
  | Sys_note_shed  (* account one load-shed connection in /proc *)
  | Sys_poll of poll_fd list * Sunos_sim.Time.span option
  | Sys_epoll_create
  | Sys_epoll_ctl of fd * fd * epoll_op  (* epoll fd, target fd, op *)
  | Sys_epoll_wait of fd * int * Sunos_sim.Time.span option
      (* epoll fd, max events, timeout (None = indefinite) *)
  | Sys_kill of int * Signo.t
  | Sys_lwp_kill of int * Signo.t
  | Sys_sigaction of Signo.t * disposition
  | Sys_sigprocmask of Sigset.how * Sigset.t
  | Sys_sigaltstack of bool
  | Sys_sig_pickup
  | Sys_trap of Signo.t
  | Sys_lwp_create of { entry : unit -> unit; cls : sched_class_req option }
  | Sys_lwp_exit
  | Sys_lwp_park of Sunos_sim.Time.span option
  | Sys_lwp_unpark of int
  | Sys_kwait of {
      seg : Sunos_hw.Shared_memory.t;
      offset : int;
      timeout : Sunos_sim.Time.span option;
      expect : (unit -> bool) option;
    }
  | Sys_kwake of { seg : Sunos_hw.Shared_memory.t; offset : int; count : int }
  | Sys_setitimer of which_timer * Sunos_sim.Time.span option
  | Sys_priocntl of sched_class_req
  | Sys_prio_set of int
  | Sys_processor_bind of int option
  | Sys_getrusage
  | Sys_setrlimit_cpu of Sunos_sim.Time.span option
  | Sys_profil of bool
  | Sys_set_resume_hook of (unit -> unit)
  | Sys_upcall_on_block of { enabled : bool; activation_entry : (unit -> unit) option }

type sysret =
  | R_ok
  | R_int of int
  | R_err of Errno.t
  | R_bytes of string
  | R_fds of fd * fd
  | R_poll of fd list
  | R_wait of int * int
  | R_time of Sunos_sim.Time.t
  | R_seg of Sunos_hw.Shared_memory.t
  | R_sigs of (Signo.t * disposition) list
  | R_disp of disposition
  | R_rusage of rusage

let sysreq_name = function
  | Sys_getpid -> "getpid"
  | Sys_getlwpid -> "getlwpid"
  | Sys_gettime -> "gettime"
  | Sys_nanosleep _ -> "nanosleep"
  | Sys_exit _ -> "exit"
  | Sys_fork { all_lwps = true; _ } -> "fork"
  | Sys_fork { all_lwps = false; _ } -> "fork1"
  | Sys_exec _ -> "exec"
  | Sys_waitpid _ -> "waitpid"
  | Sys_open _ -> "open"
  | Sys_open_net _ -> "open_net"
  | Sys_close _ -> "close"
  | Sys_read _ -> "read"
  | Sys_read_nb _ -> "read_nb"
  | Sys_write _ -> "write"
  | Sys_lseek _ -> "lseek"
  | Sys_unlink _ -> "unlink"
  | Sys_mmap _ -> "mmap"
  | Sys_mmap_anon _ -> "mmap_anon"
  | Sys_munmap _ -> "munmap"
  | Sys_touch _ -> "touch"
  | Sys_pipe -> "pipe"
  | Sys_listen _ -> "listen"
  | Sys_connect _ -> "connect"
  | Sys_accept _ -> "accept"
  | Sys_note_shed -> "note_shed"
  | Sys_poll _ -> "poll"
  | Sys_epoll_create -> "epoll_create"
  | Sys_epoll_ctl _ -> "epoll_ctl"
  | Sys_epoll_wait _ -> "epoll_wait"
  | Sys_kill _ -> "kill"
  | Sys_lwp_kill _ -> "lwp_kill"
  | Sys_sigaction _ -> "sigaction"
  | Sys_sigprocmask _ -> "sigprocmask"
  | Sys_sigaltstack _ -> "sigaltstack"
  | Sys_sig_pickup -> "sig_pickup"
  | Sys_trap _ -> "trap"
  | Sys_lwp_create _ -> "lwp_create"
  | Sys_lwp_exit -> "lwp_exit"
  | Sys_lwp_park _ -> "lwp_park"
  | Sys_lwp_unpark _ -> "lwp_unpark"
  | Sys_kwait _ -> "kwait"
  | Sys_kwake _ -> "kwake"
  | Sys_setitimer _ -> "setitimer"
  | Sys_priocntl _ -> "priocntl"
  | Sys_prio_set _ -> "prio_set"
  | Sys_processor_bind _ -> "processor_bind"
  | Sys_getrusage -> "getrusage"
  | Sys_setrlimit_cpu _ -> "setrlimit_cpu"
  | Sys_profil _ -> "profil"
  | Sys_set_resume_hook _ -> "set_resume_hook"
  | Sys_upcall_on_block _ -> "upcall_on_block"

let pp_sysret ppf = function
  | R_ok -> Format.pp_print_string ppf "R_ok"
  | R_int n -> Format.fprintf ppf "R_int %d" n
  | R_err e -> Format.fprintf ppf "R_err %a" Errno.pp e
  | R_bytes s -> Format.fprintf ppf "R_bytes %S" s
  | R_fds (a, b) -> Format.fprintf ppf "R_fds (%d,%d)" a b
  | R_poll fds ->
      Format.fprintf ppf "R_poll [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           Format.pp_print_int)
        fds
  | R_wait (p, s) -> Format.fprintf ppf "R_wait (%d,%d)" p s
  | R_time t -> Format.fprintf ppf "R_time %a" Sunos_sim.Time.pp t
  | R_seg s -> Format.fprintf ppf "R_seg %s" (Sunos_hw.Shared_memory.name s)
  | R_sigs l -> Format.fprintf ppf "R_sigs (%d)" (List.length l)
  | R_disp _ -> Format.pp_print_string ppf "R_disp"
  | R_rusage _ -> Format.pp_print_string ppf "R_rusage"
