(** The kernel: public entry points.

    [boot] wires the mechanism (dispatcher, sleep/wake), the signal policy
    and the syscall table together over a machine; [spawn] starts a
    process whose main function runs as user code (see {!Uctx});
    [run] drives the event queue.

    The representation is transparent ([= Ktypes.kernel]) so that
    introspection ({!Procfs}), tests and benchmarks can examine kernel
    state directly; simulated user code must go through {!Uctx} only. *)

type t = Ktypes.kernel

val boot :
  ?cpus:int ->
  ?cost:Sunos_hw.Cost_model.t ->
  ?seed:int64 ->
  ?trace_capacity:int ->
  ?chaos:Sunos_sim.Faultgen.profile ->
  ?domains:int ->
  unit ->
  t
(** Build a machine and boot a kernel on it.  [chaos] selects the fault
    injection profile (default: [SUNOS_CHAOS] env, else off);
    [domains] the worker-domain count for offloaded compute (default:
    [SUNOS_DOMAINS] env, else 1 — no workers).  Simulated results are
    bit-identical for every [domains] value; see
    {!Sunos_sim.Parexec}. *)

val boot_on : Sunos_hw.Machine.t -> t
(** Boot on an existing machine. *)

val machine : t -> Sunos_hw.Machine.t
val fs : t -> Fs.t

val domains : t -> int
(** Domain count of the machine's worker pool (1 = fully inline). *)

val shutdown : t -> unit
(** Join the machine's worker pool.  Idempotent; call when done with a
    kernel (the workload drivers do). *)

val spawn : t -> name:string -> main:(unit -> unit) -> int
(** Create a process with one LWP executing [main]; returns its pid.
    [main] runs as simulated user code: it may call anything in
    {!Uctx}. *)

val run : ?until:Sunos_sim.Time.t -> ?max_events:int -> t -> unit
(** Drive the simulation until the event queue drains (all processes
    finished or deadlocked asleep), the horizon, or the event budget. *)

val now : t -> Sunos_sim.Time.t

val find_proc : t -> int -> Ktypes.proc option
val proc_alive : t -> int -> bool

val exit_status : t -> int -> int option
(** Exit status of a finished (zombie or reaped) process. *)

val tty_input : t -> string -> unit
(** Type a line on the machine's terminal. *)

val trace_records : t -> Sunos_sim.Tracebuf.record list
val set_tracing : t -> bool -> unit

val set_trace_tags : t -> string list option -> unit
(** Restrict tracing to the given tags ([None], the default, records
    all).  Message formatting is skipped entirely for filtered-out tags,
    so a narrow filter keeps tracing cheap on hot paths. *)

val bug_sigwaiting_no_rearm : bool ref
(** Seeded-bug knob for the schedule explorer: [true] reverts the
    SIGWAITING re-arm fix (any EINTR wake — timeout- or signal-caused —
    skips re-arming the all-LWPs-blocked edge).  Tests only. *)

val syscall_count : t -> int
val dispatch_count : t -> int
val preemption_count : t -> int
val sigwaiting_count : t -> int
val lwp_create_count : t -> int

(** {1 Chaos introspection} *)

val chaos : t -> Sunos_sim.Faultgen.t
val chaos_label : t -> string

val chaos_counts : t -> (string * int) list
(** Injected-fault counts per site, sorted by site name — the basis for
    the chaos goldens and the workloads' chaos debrief. *)

val chaos_total : t -> int
