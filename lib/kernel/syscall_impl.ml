(* The system-call table.  [execute k lwp req] runs at the point where the
   trap-entry cost has been charged; it mutates kernel state and finishes
   by either completing the call (K.complete, which charges the per-call
   operation cost and the trap exit) or blocking the LWP (K.block plus a
   registered wakeup path). *)

open Ktypes
open Sysdefs
module K = Kernel_impl
module Sig = Signal_impl
module Time = Sunos_sim.Time
module Shm = Sunos_hw.Shared_memory
module Cost = Sunos_hw.Cost_model
module Machine = Sunos_hw.Machine
module Disk = Sunos_hw.Devices.Disk
module Tty = Sunos_hw.Devices.Tty

let copy_cost (c : Cost.t) bytes_ =
  Int64.mul c.Cost.copy_per_kb (Int64.of_int ((bytes_ + 1023) / 1024))

(* Chaos profile of the machine, for fault-rate lookups at the injection
   sites below.  [K.chaos_roll] never draws when chaos is off. *)
let chp k = K.Faultgen.profile (K.chaos k)

let lookup_fd proc fd = Hashtbl.find_opt proc.fdtab fd

let install_fd proc fdobj =
  let fd = proc.next_fd in
  proc.next_fd <- proc.next_fd + 1;
  Hashtbl.replace proc.fdtab fd fdobj;
  fd

(* --- readiness, shared by read/write/poll --------------------------- *)

let in_ready k fdobj =
  match fdobj with
  | Fd_file _ -> true
  | Fd_pipe_r p -> Pipe.readable p
  | Fd_pipe_w _ -> false
  | Fd_net ch -> Netchan.readable ch
  | Fd_tty -> Tty.has_input k.machine.Machine.tty
  | Fd_sock ep -> Socket.readable ep
  | Fd_sock_listen l -> Socket.acceptable l
  | Fd_epoll ep -> Epoll.ready_depth ep > 0 || Epoll.closed ep

let out_ready fdobj =
  match fdobj with
  | Fd_file _ | Fd_tty | Fd_net _ -> true
  | Fd_pipe_w p -> Pipe.writable p
  | Fd_pipe_r _ -> false
  | Fd_sock ep -> Socket.writable ep
  | Fd_sock_listen _ | Fd_epoll _ -> false

(* Register a one-shot "something changed" callback on a pollable object.
   File fds are always ready so they never need registration. *)
let register_ready k fdobj ~want_in ~want_out f =
  match fdobj with
  | Fd_pipe_r p -> if want_in then Pipe.on_readable p f
  | Fd_pipe_w p -> if want_out then Pipe.on_writable p f
  | Fd_net ch -> if want_in then Netchan.on_readable ch f
  | Fd_tty -> if want_in then Tty.on_data_ready k.machine.Machine.tty f
  | Fd_sock ep ->
      if want_in then Socket.on_readable ep f;
      if want_out then Socket.on_writable ep f
  | Fd_sock_listen l -> if want_in then Socket.on_acceptable l f
  | Fd_epoll ep -> if want_in then Epoll.add_waiter ep f
  | Fd_file _ -> ()

(* --- file I/O -------------------------------------------------------- *)

(* Pages of [file] covered by the range that are not yet in the "page
   cache" (segment residency). *)
let missing_pages file ~pos ~len =
  let seg = Fs.segment file in
  List.filter
    (fun p -> p < Shm.page_count seg && not (Shm.resident seg ~page:p))
    (Fs.pages_touched ~pos ~len)

let file_read k lwp file ~pos ~set_pos ~len =
  let c = K.cost k in
  let finish () =
    let data = Fs.read file ~pos ~len in
    set_pos (pos + String.length data);
    K.complete k lwp
      ~op_cost:(Int64.add c.Cost.fs_op (copy_cost c (String.length data)))
      (R_bytes data)
  in
  match missing_pages file ~pos ~len with
  | [] -> finish ()
  | missing ->
      (* major fault path: block (uninterruptibly, like the classic "D"
         state) until the disk delivers the pages; only this LWP waits *)
      lwp.proc.majflt <- lwp.proc.majflt + List.length missing;
      K.block k lwp ~wchan:"disk" ~interruptible:false ~indefinite:false
        ~cancel:(fun () -> ());
      let spike =
        if K.chaos_roll k ~site:"fault-spike" (chp k).fault_spike then
          max 1 (chp k).spike_factor
        else 1
      in
      Disk.submit k.machine.Machine.disk
        ~bytes_:(List.length missing * 4096 * spike)
        ~on_complete:(fun () ->
          let seg = Fs.segment file in
          List.iter (fun p -> Shm.make_resident seg ~page:p) missing;
          match lwp.sleep with
          | Some _ ->
              let data = Fs.read file ~pos ~len in
              set_pos (pos + String.length data);
              K.wake k lwp (R_bytes data)
          | None -> ())

let file_write k lwp file ~pos ~set_pos data =
  let c = K.cost k in
  let n = Fs.write file ~pos data in
  set_pos (pos + n);
  (* write-allocate: pages become resident; write-behind hides the disk *)
  let seg = Fs.segment file in
  List.iter
    (fun p -> if p < Shm.page_count seg then Shm.make_resident seg ~page:p)
    (Fs.pages_touched ~pos ~len:n);
  K.complete k lwp ~op_cost:(Int64.add c.Cost.fs_op (copy_cost c n)) (R_int n)

(* --- pipe I/O -------------------------------------------------------- *)

let rec pipe_read_blocking k lwp p ~len ~alive =
  Pipe.on_readable p (fun () ->
      if !alive then
        match lwp.sleep with
        | Some _ ->
            let data = Pipe.read p ~len in
            if data = "" && not (Pipe.write_closed p) then
              (* another reader drained it first: keep sleeping *)
              pipe_read_blocking k lwp p ~len ~alive
            else begin
              alive := false;
              K.wake k lwp (R_bytes data)
            end
        | None -> alive := false)

let rec pipe_write_blocking k lwp p data ~alive =
  Pipe.on_writable p (fun () ->
      if !alive then
        match lwp.sleep with
        | Some _ ->
            if Pipe.read_closed p then begin
              alive := false;
              Sig.post_lwp k lwp Signo.sigpipe;
              K.wake k lwp (R_err Errno.EPIPE)
            end
            else begin
              let n = Pipe.write p data in
              if n = 0 then pipe_write_blocking k lwp p data ~alive
              else begin
                alive := false;
                K.wake k lwp (R_int n)
              end
            end
        | None -> alive := false)

(* --- net channel ------------------------------------------------------ *)

let rec net_read_blocking k lwp ch ~alive =
  Netchan.on_readable ch (fun () ->
      if !alive then
        match lwp.sleep with
        | Some _ -> (
            match Netchan.take ch with
            | Some m ->
                alive := false;
                K.wake k lwp (R_bytes m.Netchan.payload)
            | None ->
                if Netchan.closed ch then begin
                  alive := false;
                  K.wake k lwp (R_bytes "")
                end
                else net_read_blocking k lwp ch ~alive)
        | None -> alive := false)

(* --- sockets ---------------------------------------------------------- *)

let rec sock_read_blocking k lwp ep ~len ~alive =
  Socket.on_readable ep (fun () ->
      if !alive then
        match lwp.sleep with
        | Some _ -> (
            match Socket.read ep ~len with
            | `Data s ->
                alive := false;
                K.wake k lwp (R_bytes s)
            | `Eof ->
                alive := false;
                K.wake k lwp (R_bytes "")
            | `Reset ->
                alive := false;
                K.wake k lwp (R_err Errno.ECONNRESET)
            | `Empty ->
                (* another reader of the same fd drained it first *)
                sock_read_blocking k lwp ep ~len ~alive)
        | None -> alive := false)

let rec sock_write_blocking k lwp ep data ~alive =
  Socket.on_writable ep (fun () ->
      if !alive then
        match lwp.sleep with
        | Some _ -> (
            match Socket.write ep data with
            | `Accepted n ->
                alive := false;
                K.wake k lwp (R_int n)
            | `Reset ->
                alive := false;
                K.wake k lwp (R_err Errno.ECONNRESET)
            | `Full -> sock_write_blocking k lwp ep data ~alive)
        | None -> alive := false)

let rec sock_accept_blocking k lwp l ~alive =
  Socket.on_acceptable l (fun () ->
      if !alive then
        match lwp.sleep with
        | Some _ ->
            if Socket.listener_closed l then begin
              alive := false;
              K.wake k lwp (R_err Errno.ECONNABORTED)
            end
            else (
              match Socket.accept l with
              | Some ep ->
                  alive := false;
                  let fd = install_fd lwp.proc (Fd_sock ep) in
                  K.trace k "accept" "pid%d accepts on %s -> fd%d"
                    lwp.proc.pid (Socket.listener_name l) fd;
                  K.wake k lwp (R_int fd)
              | None ->
                  (* another acceptor got there first *)
                  sock_accept_blocking k lwp l ~alive)
        | None -> alive := false)

(* --- poll ------------------------------------------------------------- *)

let poll_ready k proc fds =
  List.filter_map
    (fun { pfd; want_in; want_out } ->
      match lookup_fd proc pfd with
      | None -> Some pfd (* bad fds report as "ready" so callers notice *)
      | Some o ->
          if (want_in && in_ready k o) || (want_out && out_ready o) then
            Some pfd
          else None)
    fds

let rec poll_register k lwp fds ~alive =
  let on_change () =
    if !alive then
      match lwp.sleep with
      | Some _ ->
          let ready = poll_ready k lwp.proc fds in
          if ready <> [] then begin
            alive := false;
            K.wake k lwp (R_poll ready)
          end
          else poll_register k lwp fds ~alive
      | None -> alive := false
  in
  List.iter
    (fun { pfd; want_in; want_out } ->
      match lookup_fd lwp.proc pfd with
      | Some o -> register_ready k o ~want_in ~want_out on_change
      | None -> ())
    fds

(* --- epoll ------------------------------------------------------------ *)

(* Attach persistent watches matching the entry's interest mask and
   store their detach closure.  Returns false on objects that have no
   edge sources (plain files, net channels, ttys, other epolls) — epoll
   interest on those is refused rather than silently level-polled. *)
let epoll_attach ep (e : Epoll.entry) fdobj =
  let fire () = Epoll.note_edge ep e in
  match fdobj with
  | Fd_sock sep ->
      let r =
        if e.Epoll.e_want_in then Some (Socket.watch_readable sep fire)
        else None
      and w =
        if e.Epoll.e_want_out then Some (Socket.watch_writable sep fire)
        else None
      in
      e.Epoll.e_unwatch <-
        (fun () ->
          Option.iter Socket.unwatch r;
          Option.iter Socket.unwatch w);
      true
  | Fd_sock_listen l ->
      if e.Epoll.e_want_in then begin
        let w = Socket.watch_acceptable l fire in
        e.Epoll.e_unwatch <- (fun () -> Socket.unwatch w)
      end;
      true
  | Fd_pipe_r p ->
      if e.Epoll.e_want_in then begin
        let w = Pipe.watch_readable p fire in
        e.Epoll.e_unwatch <- (fun () -> Pipe.unwatch w)
      end;
      true
  | Fd_pipe_w p ->
      if e.Epoll.e_want_out then begin
        let w = Pipe.watch_writable p fire in
        e.Epoll.e_unwatch <- (fun () -> Pipe.unwatch w)
      end;
      true
  | Fd_file _ | Fd_net _ | Fd_tty | Fd_epoll _ -> false

(* Drain up to [max] live entries off the ready queue.  This is the
   whole point of the design: cost is O(returned), never O(interest).
   Entries whose fd was closed without a ctl(DEL) are collected here
   (their watches died with the object; the interest record is garbage).
   Readiness may be stale by delivery — the edge-trigger contract makes
   that the consumer's problem (drain until EAGAIN). *)
let epoll_collect proc ep ~max =
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match Epoll.pop ep with
      | None -> List.rev acc
      | Some e -> (
          match lookup_fd proc e.Epoll.e_fd with
          | None ->
              Epoll.kill_entry ep e;
              go acc n
          | Some _ ->
              Epoll.note_delivered ep e;
              go (e.Epoll.e_fd :: acc) (n - 1))
  in
  go [] max

let rec epoll_wait_blocking k lwp ep ~maxev ~alive =
  Epoll.add_waiter ep (fun () ->
      if !alive then
        match lwp.sleep with
        | Some _ ->
            if Epoll.closed ep then begin
              alive := false;
              K.wake k lwp (R_err Errno.EBADF)
            end
            else
              let fds = epoll_collect lwp.proc ep ~max:maxev in
              if fds <> [] then begin
                alive := false;
                K.wake k lwp (R_poll fds)
              end
              else epoll_wait_blocking k lwp ep ~maxev ~alive
        | None -> alive := false)

(* --- fork / exec ------------------------------------------------------ *)

let do_fork k lwp ~child_main ~all_lwps =
  let c = K.cost k in
  let proc = lwp.proc in
  let n_lwps = List.length (live_lwps proc) in
  let child = K.make_proc k ~name:proc.pname ~parent:(Some proc) in
  (* The child shares open file descriptions (same fdobj records: shared
     offsets, as in UNIX) and keeps shared mappings shared. *)
  Hashtbl.iter (fun fd o -> Hashtbl.replace child.fdtab fd o) proc.fdtab;
  child.next_fd <- proc.next_fd;
  child.cwd <- proc.cwd;
  child.uid <- proc.uid;
  child.gid <- proc.gid;
  Array.blit proc.handlers 0 child.handlers 0 (Array.length proc.handlers);
  (* Shared mappings stay shared; private anonymous ones are snapshot-
     copied (the model's copy-on-write) so post-fork writes stop
     aliasing across the process boundary.  [resolve_seg] translates
     the parent handles a forked closure still holds. *)
  child.mappings <-
    List.map
      (fun seg -> if Shm.anon_private seg then Shm.clone seg else seg)
      proc.mappings;
  List.iter Shm.incr_map_count child.mappings;
  let clwp =
    K.make_lwp k child ~entry:child_main ~cls:(Sc_timeshare { ts_pri = 29 })
  in
  K.make_runnable k clwp;
  if all_lwps then
    (* fork() may cause interruptible syscalls of the other LWPs to
       return EINTR (the paper calls this out explicitly) *)
    List.iter
      (fun l -> if l != lwp then K.interrupt_sleep k l)
      proc.lwps;
  let lwp_cost = if all_lwps then n_lwps else 1 in
  let op_cost =
    Int64.add c.Cost.fork_base
      (Int64.mul c.Cost.fork_per_lwp (Int64.of_int lwp_cost))
  in
  K.complete k lwp ~op_cost (R_int child.pid)

let do_exec k lwp ~name ~main =
  let c = K.cost k in
  let proc = lwp.proc in
  (* destroy every other LWP; the caller becomes the single fresh LWP *)
  List.iter (fun l -> if l != lwp then K.destroy_lwp k l) proc.lwps;
  proc.lwps <- [ lwp ];
  Array.fill proc.handlers 0 (Array.length proc.handlers) Sig_default;
  proc.proc_sig_pending <- [];
  Queue.clear lwp.deliverable;
  lwp.lwp_sig_pending <- [];
  lwp.on_resume <- ignore;
  proc.pname <- name;
  K.trace k "exec" "pid%d becomes %s" proc.pid name;
  let cpu = K.cpu_of k lwp in
  K.busy k cpu lwp c.Cost.exec_cost (fun () ->
      lwp.in_kernel <- false;
      lwp.pending <- P_start main;
      K.resume k cpu lwp)

(* --- waitpid ----------------------------------------------------------- *)

let do_waitpid k lwp pid_filter =
  let proc = lwp.proc in
  let matches child =
    match pid_filter with None -> true | Some p -> child.pid = p
  in
  let candidates = List.filter matches proc.children in
  if candidates = [] then K.complete k lwp (R_err Errno.ECHILD)
  else
    match List.find_opt (fun ch -> ch.pstate = Pzombie) candidates with
    | Some zombie ->
        zombie.pstate <- Preaped;
        proc.children <- List.filter (fun ch -> ch != zombie) proc.children;
        K.complete k lwp (R_wait (zombie.pid, zombie.exit_status))
    | None ->
        proc.waitpid_waiters <- lwp :: proc.waitpid_waiters;
        K.block k lwp ~wchan:"waitpid" ~interruptible:true ~indefinite:true
          ~cancel:(fun () ->
            proc.waitpid_waiters <-
              List.filter (fun l -> l != lwp) proc.waitpid_waiters)

(* --- segment handle translation ---------------------------------------- *)

(* A forked child's closures still hold the parent's handles for private
   anonymous mappings that fork replaced with snapshot clones.  Kernel
   entry points that take a segment resolve such a stale handle to the
   calling process's own clone, the way an address means a different
   page through a different address space. *)
let resolve_seg proc seg =
  if List.memq seg proc.mappings then seg
  else
    let sid = Shm.id seg in
    match
      List.find_opt (fun s -> Shm.clone_of s = Some sid) proc.mappings
    with
    | Some s -> s
    | None -> seg

(* --- the table --------------------------------------------------------- *)

let execute k lwp req =
  let c = K.cost k in
  let proc = lwp.proc in
  match req with
  (* chaos: kill a forked process outright at a syscall boundary — the
     simulated analogue of a server child segfaulting or being OOM-killed
     mid-request.  Only forked children are eligible (the workload's root
     processes host the harness itself), and the exit/fork syscalls are
     exempt so every kill lands where the process still has work in
     flight.  Status 137 = SIGKILL. *)
  | _
    when proc.parent <> None
         && (match req with Sys_exit _ | Sys_fork _ -> false | _ -> true)
         && K.chaos_roll k ~site:"proc-kill" (chp k).proc_kill ->
      K.trace k "chaos" "proc-kill pid%d (%s) in %s" proc.pid proc.pname
        (sysreq_name req);
      K.proc_exit k proc ~status:137
  | Sys_getpid -> K.complete k lwp (R_int proc.pid)
  | Sys_getlwpid -> K.complete k lwp (R_int lwp.lid)
  | Sys_gettime -> K.complete k lwp (R_time (K.now k))
  | Sys_nanosleep span ->
      (* A user-specified duration can be arbitrarily long, so it counts
         as an "indefinite" wait for SIGWAITING purposes — otherwise a
         long sleep pins its LWP while runnable threads starve (the
         paper's "supposedly short term blocking may take a long time"
         remark). *)
      K.block k lwp ~wchan:"nanosleep" ~interruptible:true ~indefinite:true
        ~cancel:(fun () -> ());
      if K.chaos_roll k ~site:"eintr-sleep" (chp k).eintr_sleep then
        (* Early EINTR, at least half the requested span in: the
           user-side retry loop re-sleeps the remainder, which at least
           halves every round, so the retry chain is O(log span) and
           always reaches the deadline — no Zeno schedules. *)
        let half = Int64.div span 2L in
        let frac =
          Time.min span
            (Int64.add half
               (K.Faultgen.draw_span (K.chaos k) ~max_span:(Time.max 1L half)))
        in
        K.set_sleep_timeout k lwp frac (R_err Errno.EINTR)
      else K.set_sleep_timeout k lwp span R_ok
  | Sys_exit status -> K.proc_exit k proc ~status
  | Sys_fork { child_main; all_lwps } -> do_fork k lwp ~child_main ~all_lwps
  | Sys_exec { name; main } -> do_exec k lwp ~name ~main
  | Sys_waitpid pid_filter -> do_waitpid k lwp pid_filter
  | Sys_open (path, flags) -> (
      let has f = List.mem f flags in
      match Fs.lookup k.fs path with
      | Some file ->
          let fd = install_fd proc (Fd_file { file; pos = 0 }) in
          K.complete k lwp ~op_cost:c.Cost.fs_op (R_int fd)
      | None ->
          if has O_CREAT then (
            match Fs.create_file k.fs ~path () with
            | Ok file ->
                let fd = install_fd proc (Fd_file { file; pos = 0 }) in
                K.complete k lwp ~op_cost:c.Cost.fs_op (R_int fd)
            | Error e -> K.complete k lwp (R_err e))
          else K.complete k lwp (R_err Errno.ENOENT))
  | Sys_open_net ch ->
      let fd = install_fd proc (Fd_net ch) in
      K.complete k lwp (R_int fd)
  | Sys_close fd -> (
      match lookup_fd proc fd with
      | None -> K.complete k lwp (R_err Errno.EBADF)
      | Some o ->
          Hashtbl.remove proc.fdtab fd;
          K.close_fdobj o;
          K.complete k lwp ~op_cost:c.Cost.fs_op R_ok)
  | Sys_read (fd, len) -> (
      match lookup_fd proc fd with
      | None -> K.complete k lwp (R_err Errno.EBADF)
      | Some (Fd_file f) ->
          file_read k lwp f.file ~pos:f.pos ~set_pos:(fun p -> f.pos <- p)
            ~len
      | Some (Fd_pipe_r p) ->
          let data = Pipe.read p ~len in
          if data <> "" || Pipe.write_closed p then
            K.complete k lwp ~op_cost:c.Cost.pipe_op (R_bytes data)
          else begin
            let alive = ref true in
            K.block k lwp ~wchan:"pipe_read" ~interruptible:true
              ~indefinite:true
              ~cancel:(fun () -> alive := false);
            pipe_read_blocking k lwp p ~len ~alive
          end
      | Some (Fd_pipe_w _) -> K.complete k lwp (R_err Errno.EBADF)
      | Some (Fd_net ch) -> (
          match Netchan.take ch with
          | Some m ->
              K.complete k lwp ~op_cost:c.Cost.pipe_op
                (R_bytes m.Netchan.payload)
          | None ->
              if Netchan.closed ch then
                K.complete k lwp ~op_cost:c.Cost.pipe_op (R_bytes "")
              else begin
                let alive = ref true in
                K.block k lwp ~wchan:"net_read" ~interruptible:true
                  ~indefinite:true
                  ~cancel:(fun () -> alive := false);
                net_read_blocking k lwp ch ~alive
              end)
      | Some (Fd_sock ep) -> (
          match Socket.read ep ~len with
          | `Data s ->
              K.complete k lwp
                ~op_cost:(Int64.add c.Cost.sock_op (copy_cost c (String.length s)))
                (R_bytes s)
          | `Eof -> K.complete k lwp ~op_cost:c.Cost.sock_op (R_bytes "")
          | `Reset -> K.complete k lwp (R_err Errno.ECONNRESET)
          | `Empty ->
              let alive = ref true in
              K.block k lwp ~wchan:"sock_read" ~interruptible:true
                ~indefinite:true
                ~cancel:(fun () -> alive := false);
              sock_read_blocking k lwp ep ~len ~alive)
      | Some (Fd_sock_listen _) -> K.complete k lwp (R_err Errno.ENOTCONN)
      | Some (Fd_epoll _) -> K.complete k lwp (R_err Errno.EBADF)
      | Some Fd_tty -> (
          match Tty.read_input k.machine.Machine.tty with
          | Some line ->
              K.complete k lwp ~op_cost:c.Cost.pipe_op (R_bytes line)
          | None ->
              let alive = ref true in
              K.block k lwp ~wchan:"tty_read" ~interruptible:true
                ~indefinite:true
                ~cancel:(fun () -> alive := false);
              let rec wait_input () =
                Tty.on_data_ready k.machine.Machine.tty (fun () ->
                    if !alive then
                      match lwp.sleep with
                      | Some _ -> (
                          match Tty.read_input k.machine.Machine.tty with
                          | Some line ->
                              alive := false;
                              K.wake k lwp (R_bytes line)
                          | None -> wait_input ())
                      | None -> alive := false)
              in
              wait_input ()))
  | Sys_read_nb (fd, len) -> (
      (* Non-blocking socket read with distinguishable outcomes: data,
         EOF (empty R_bytes), EAGAIN (not ready) and ECONNRESET are four
         different answers — callers must not have to guess which of
         "no data yet" and "no data ever" an empty result means. *)
      match lookup_fd proc fd with
      | None -> K.complete k lwp (R_err Errno.EBADF)
      | Some (Fd_sock ep) ->
          if K.chaos_roll k ~site:"eagain-sock" (chp k).eagain_sock then
            (* spurious not-ready; the data stays buffered for the next
               attempt *)
            K.complete k lwp (R_err Errno.EAGAIN)
          else (
            match Socket.read ep ~len with
            | `Data s ->
                K.complete k lwp
                  ~op_cost:
                    (Int64.add c.Cost.sock_op (copy_cost c (String.length s)))
                  (R_bytes s)
            | `Eof -> K.complete k lwp ~op_cost:c.Cost.sock_op (R_bytes "")
            | `Reset -> K.complete k lwp (R_err Errno.ECONNRESET)
            | `Empty -> K.complete k lwp (R_err Errno.EAGAIN))
      | Some _ -> K.complete k lwp (R_err Errno.EINVAL))
  | Sys_note_shed ->
      proc.shed_count <- proc.shed_count + 1;
      K.trace k "shed" "pid%d sheds a connection (total %d)" proc.pid
        proc.shed_count;
      K.complete k lwp R_ok
  | Sys_write (fd, data) -> (
      match lookup_fd proc fd with
      | None -> K.complete k lwp (R_err Errno.EBADF)
      | Some (Fd_file f) ->
          file_write k lwp f.file ~pos:f.pos
            ~set_pos:(fun p -> f.pos <- p)
            data
      | Some (Fd_pipe_w p) ->
          if Pipe.read_closed p then begin
            Sig.post_lwp k lwp Signo.sigpipe;
            K.complete k lwp (R_err Errno.EPIPE)
          end
          else
            let n = Pipe.write p data in
            if n > 0 then K.complete k lwp ~op_cost:c.Cost.pipe_op (R_int n)
            else begin
              let alive = ref true in
              K.block k lwp ~wchan:"pipe_write" ~interruptible:true
                ~indefinite:true
                ~cancel:(fun () -> alive := false);
              pipe_write_blocking k lwp p data ~alive
            end
      | Some (Fd_pipe_r _) -> K.complete k lwp (R_err Errno.EBADF)
      | Some (Fd_net ch) ->
          (match Netchan.pop_reply ch with
          | Some reply -> reply data
          | None -> ());
          K.complete k lwp
            ~op_cost:(Int64.add c.Cost.pipe_op (copy_cost c (String.length data)))
            (R_int (String.length data))
      | Some (Fd_sock ep) ->
          if K.chaos_roll k ~site:"conn-rst" (chp k).conn_rst then begin
            (* mid-stream RST: the connection dies under the writer *)
            Socket.abort ep;
            K.complete k lwp (R_err Errno.ECONNRESET)
          end
          else begin
            if K.chaos_roll k ~site:"peer-stall" (chp k).peer_stall then begin
              let us =
                K.Faultgen.draw_us (K.chaos k) ~lo:1
                  ~hi:(max 1 (chp k).stall_us)
              in
              Socket.stall ep ~until:(Time.add (K.now k) (Time.us us))
            end;
            match Socket.write ep data with
            | `Accepted n ->
                K.complete k lwp
                  ~op_cost:(Int64.add c.Cost.sock_op (copy_cost c n))
                  (R_int n)
            | `Reset -> K.complete k lwp (R_err Errno.ECONNRESET)
            | `Full ->
                let alive = ref true in
                K.block k lwp ~wchan:"sock_write" ~interruptible:true
                  ~indefinite:true
                  ~cancel:(fun () -> alive := false);
                sock_write_blocking k lwp ep data ~alive
          end
      | Some (Fd_sock_listen _) -> K.complete k lwp (R_err Errno.ENOTCONN)
      | Some (Fd_epoll _) -> K.complete k lwp (R_err Errno.EBADF)
      | Some Fd_tty ->
          K.complete k lwp
            ~op_cost:(copy_cost c (String.length data))
            (R_int (String.length data)))
  | Sys_lseek (fd, pos) -> (
      match lookup_fd proc fd with
      | Some (Fd_file f) ->
          f.pos <- pos;
          K.complete k lwp R_ok
      | Some
          (Fd_pipe_r _ | Fd_pipe_w _ | Fd_net _ | Fd_tty | Fd_sock _
          | Fd_sock_listen _ | Fd_epoll _)
      | None ->
          K.complete k lwp (R_err Errno.EINVAL))
  | Sys_unlink path -> (
      match Fs.unlink k.fs path with
      | Ok () -> K.complete k lwp ~op_cost:c.Cost.fs_op R_ok
      | Error e -> K.complete k lwp (R_err e))
  | Sys_mmap { fd } -> (
      match lookup_fd proc fd with
      | Some (Fd_file f) ->
          let seg = Fs.segment f.file in
          proc.mappings <- seg :: proc.mappings;
          Shm.incr_map_count seg;
          K.complete k lwp ~op_cost:c.Cost.fs_op (R_seg seg)
      | Some
          (Fd_pipe_r _ | Fd_pipe_w _ | Fd_net _ | Fd_tty | Fd_sock _
          | Fd_sock_listen _ | Fd_epoll _)
      | None ->
          K.complete k lwp (R_err Errno.EBADF))
  | Sys_mmap_anon { size; shared } ->
      (* MAP_SHARED anon segments are system-wide objects (fork children
         alias them); MAP_PRIVATE ones are snapshot-cloned at fork. *)
      let seg = Shm.create ~name:"[anon]" ~size in
      if not shared then Shm.mark_anon_private seg;
      proc.mappings <- seg :: proc.mappings;
      Shm.incr_map_count seg;
      K.complete k lwp ~op_cost:c.Cost.fs_op (R_seg seg)
  | Sys_munmap seg ->
      let seg = resolve_seg proc seg in
      let removed = ref false in
      proc.mappings <-
        List.filter
          (fun s ->
            if (not !removed) && s == seg then begin
              removed := true;
              false
            end
            else true)
          proc.mappings;
      if !removed then Shm.decr_map_count seg;
      K.complete k lwp (if !removed then R_ok else R_err Errno.EINVAL)
  | Sys_touch (seg, offset) ->
      let seg = resolve_seg proc seg in
      let page = Shm.page_of_offset ~offset in
      if page >= Shm.page_count seg then K.complete k lwp (R_err Errno.EINVAL)
      else if Shm.resident seg ~page then K.complete k lwp R_ok
      else begin
        (* Is the segment file-backed?  Then the fault reads from disk
           and blocks only this LWP. *)
        let file_backed =
          match Fs.lookup k.fs (Shm.name seg) with
          | Some file -> Fs.segment file == seg
          | None -> false
        in
        if file_backed then begin
          proc.majflt <- proc.majflt + 1;
          K.block k lwp ~wchan:"pagefault" ~interruptible:false
            ~indefinite:false
            ~cancel:(fun () -> ());
          let spike =
            if K.chaos_roll k ~site:"fault-spike" (chp k).fault_spike then
              max 1 (chp k).spike_factor
            else 1
          in
          Disk.submit k.machine.Machine.disk ~bytes_:(4096 * spike)
            ~on_complete:(fun () ->
              Shm.make_resident seg ~page;
              K.wake k lwp R_ok)
        end
        else begin
          proc.minflt <- proc.minflt + 1;
          Shm.make_resident seg ~page;
          K.complete k lwp ~op_cost:c.Cost.pagefault_service R_ok
        end
      end
  | Sys_pipe ->
      let p = Pipe.create () in
      let rfd = install_fd proc (Fd_pipe_r p) in
      let wfd = install_fd proc (Fd_pipe_w p) in
      K.complete k lwp ~op_cost:c.Cost.pipe_op (R_fds (rfd, wfd))
  | Sys_listen { name; backlog } -> (
      match Socket.listen k.sockets ~name ~backlog () with
      | Error `Addr_in_use -> K.complete k lwp (R_err Errno.EADDRINUSE)
      | Ok l ->
          let fd = install_fd proc (Fd_sock_listen l) in
          K.trace k "listen" "pid%d listens on %s backlog=%d fd%d" proc.pid
            name backlog fd;
          K.complete k lwp ~op_cost:c.Cost.sock_listen (R_int fd))
  | Sys_connect name ->
      (* Pay the client-side protocol processing, then wait out the
         handshake round trip.  Admission is decided when the SYN
         arrives at the listener — a connect racing a listen within one
         RTT therefore succeeds, and a full backlog refuses it. *)
      let cpu = K.cpu_of k lwp in
      K.busy k cpu lwp c.Cost.sock_connect (fun () ->
          K.block k lwp ~wchan:"connect" ~interruptible:false
            ~indefinite:false
            ~cancel:(fun () -> ());
          Sunos_hw.Devices.Net.request_response k.machine.Machine.net
            ~bytes_:64 ~on_complete:(fun () ->
              match lwp.sleep with
              | None -> ()
              | Some _ -> (
                  let refused () =
                    K.trace k "connect" "pid%d -> %s refused" proc.pid name;
                    K.wake k lwp (R_err Errno.ECONNREFUSED)
                  in
                  if K.chaos_roll k ~site:"conn-refuse" (chp k).conn_refuse
                  then refused ()
                  else if
                    (* modelled as a SYN-queue overflow drop: the
                       admission never happens, the client sees a
                       refusal — distinguishable from conn-refuse only
                       by its fault counter *)
                    K.chaos_roll k ~site:"backlog-drop" (chp k).backlog_drop
                  then refused ()
                  else
                  match Socket.lookup k.sockets name with
                  | None -> refused ()
                  | Some l -> (
                      match Socket.try_admit l ~net:k.machine.Machine.net with
                      | None -> refused ()
                      | Some client_ep ->
                          let fd = install_fd proc (Fd_sock client_ep) in
                          K.trace k "connect" "pid%d -> %s fd%d" proc.pid
                            name fd;
                          K.wake k lwp (R_int fd)))))
  | Sys_accept (fd, nonblock) -> (
      match lookup_fd proc fd with
      | Some (Fd_sock_listen l) ->
          if nonblock && K.chaos_roll k ~site:"eagain-sock" (chp k).eagain_sock
          then
            (* spurious not-ready: the connection (if any) stays pending,
               so the caller's next poll round collects it *)
            K.complete k lwp (R_err Errno.EAGAIN)
          else (
            match Socket.accept l with
            | Some ep ->
                let nfd = install_fd proc (Fd_sock ep) in
                K.trace k "accept" "pid%d accepts on %s -> fd%d" proc.pid
                  (Socket.listener_name l) nfd;
                K.complete k lwp ~op_cost:c.Cost.sock_accept (R_int nfd)
            | None when Socket.listener_closed l ->
                (* a closed listener can never produce a connection:
                   EAGAIN here would send a non-blocking acceptor into a
                   poll/EAGAIN spin forever (another LWP may close the
                   listening fd while we race toward it) *)
                K.complete k lwp (R_err Errno.ECONNABORTED)
            | None when nonblock -> K.complete k lwp (R_err Errno.EAGAIN)
            | None ->
                let alive = ref true in
                K.block k lwp ~wchan:"accept" ~interruptible:true
                  ~indefinite:true
                  ~cancel:(fun () -> alive := false);
                sock_accept_blocking k lwp l ~alive)
      | Some _ -> K.complete k lwp (R_err Errno.EINVAL)
      | None -> K.complete k lwp (R_err Errno.EBADF))
  | Sys_poll (fds, timeout) -> (
      let op_cost =
        Int64.add c.Cost.poll_fixed
          (Int64.mul c.Cost.poll_per_fd (Int64.of_int (List.length fds)))
      in
      let ready = poll_ready k proc fds in
      match (ready, timeout) with
      | _ :: _, _ -> K.complete k lwp ~op_cost (R_poll ready)
      | [], Some t when Time.(t <= 0L) -> K.complete k lwp ~op_cost (R_poll [])
      | [], _ ->
          let alive = ref true in
          K.block k lwp ~wchan:"poll" ~interruptible:true ~indefinite:true
            ~cancel:(fun () -> alive := false);
          poll_register k lwp fds ~alive;
          (match timeout with
          | Some t -> K.set_sleep_timeout k lwp t (R_poll [])
          | None -> ()))
  | Sys_epoll_create ->
      let ep = Epoll.create ~id:proc.next_fd in
      let fd = install_fd proc (Fd_epoll ep) in
      K.trace k "epoll" "pid%d epoll_create -> fd%d" proc.pid fd;
      K.complete k lwp ~op_cost:c.Cost.sock_op (R_int fd)
  | Sys_epoll_ctl (epfd, fd, op) -> (
      match lookup_fd proc epfd with
      | Some (Fd_epoll ep) when not (Epoll.closed ep) -> (
          match op with
          | Ep_add { want_in; want_out; oneshot } -> (
              match Epoll.find ep fd with
              | Some _ -> K.complete k lwp (R_err Errno.EEXIST)
              | None -> (
                  match lookup_fd proc fd with
                  | None -> K.complete k lwp (R_err Errno.EBADF)
                  | Some o ->
                      let e =
                        Epoll.register ep ~fd ~want_in ~want_out ~oneshot
                      in
                      if epoll_attach ep e o then begin
                        (* arm-time level check: interest added on an
                           already-ready object queues immediately —
                           the edge happened before we were listening *)
                        if
                          (want_in && in_ready k o)
                          || (want_out && out_ready o)
                        then Epoll.note_edge ep e;
                        K.complete k lwp ~op_cost:c.Cost.sock_op R_ok
                      end
                      else begin
                        Epoll.kill_entry ep e;
                        K.complete k lwp (R_err Errno.EINVAL)
                      end))
          | Ep_mod { want_in; want_out; oneshot } -> (
              match Epoll.find ep fd with
              | None -> K.complete k lwp (R_err Errno.ENOENT)
              | Some e -> (
                  match lookup_fd proc fd with
                  | None ->
                      Epoll.kill_entry ep e;
                      K.complete k lwp (R_err Errno.EBADF)
                  | Some o ->
                      e.Epoll.e_unwatch ();
                      e.Epoll.e_want_in <- want_in;
                      e.Epoll.e_want_out <- want_out;
                      e.Epoll.e_oneshot <- oneshot;
                      e.Epoll.e_armed <- true;
                      ignore (epoll_attach ep e o : bool);
                      (* re-arm level check: an edge swallowed while the
                         entry was disarmed must resurface now, or a
                         ONESHOT consumer that drained to EAGAIN after
                         new data arrived would sleep forever *)
                      if
                        (want_in && in_ready k o)
                        || (want_out && out_ready o)
                      then Epoll.note_edge ep e;
                      K.complete k lwp ~op_cost:c.Cost.sock_op R_ok))
          | Ep_del -> (
              match Epoll.find ep fd with
              | None -> K.complete k lwp (R_err Errno.ENOENT)
              | Some e ->
                  Epoll.kill_entry ep e;
                  K.complete k lwp ~op_cost:c.Cost.sock_op R_ok))
      | Some _ | None -> K.complete k lwp (R_err Errno.EBADF))
  | Sys_epoll_wait (epfd, maxev, timeout) -> (
      match lookup_fd proc epfd with
      | Some (Fd_epoll ep) ->
          if Epoll.closed ep then K.complete k lwp (R_err Errno.EBADF)
          else begin
            let maxev = max 1 maxev in
            let op_cost n =
              Int64.add c.Cost.poll_fixed
                (Int64.mul c.Cost.poll_per_fd (Int64.of_int n))
            in
            let fds = epoll_collect proc ep ~max:maxev in
            match (fds, timeout) with
            | _ :: _, _ ->
                K.complete k lwp
                  ~op_cost:(op_cost (List.length fds))
                  (R_poll fds)
            | [], Some t when Time.(t <= 0L) ->
                K.complete k lwp ~op_cost:(op_cost 0) (R_poll [])
            | [], _ ->
                let alive = ref true in
                K.block k lwp ~wchan:"epoll" ~interruptible:true
                  ~indefinite:true
                  ~cancel:(fun () -> alive := false);
                epoll_wait_blocking k lwp ep ~maxev ~alive;
                (match timeout with
                | Some t -> K.set_sleep_timeout k lwp t (R_poll [])
                | None -> ())
          end
      | Some _ | None -> K.complete k lwp (R_err Errno.EBADF))
  | Sys_kill (pid, signo) -> (
      match K.find_proc k pid with
      | Some target ->
          Sig.post_proc k target signo;
          K.complete k lwp ~op_cost:c.Cost.signal_post R_ok
      | None -> K.complete k lwp (R_err Errno.ESRCH))
  | Sys_lwp_kill (lid, signo) -> (
      match K.find_lwp proc lid with
      | Some target ->
          Sig.post_lwp k target signo;
          K.complete k lwp ~op_cost:c.Cost.signal_post R_ok
      | None -> K.complete k lwp (R_err Errno.ESRCH))
  | Sys_sigaction (signo, disp) ->
      if signo = Signo.sigkill || signo = Signo.sigstop then
        K.complete k lwp (R_err Errno.EINVAL)
      else begin
        let old = proc.handlers.(signo) in
        proc.handlers.(signo) <- disp;
        K.complete k lwp (R_disp old)
      end
  | Sys_sigprocmask (how, set) ->
      lwp.sigmask <- Sigset.apply how set ~old:lwp.sigmask;
      Sig.mask_changed k lwp;
      K.complete k lwp R_ok
  | Sys_sigaltstack enabled ->
      lwp.altstack <- enabled;
      K.complete k lwp R_ok
  | Sys_sig_pickup ->
      let sigs = Sig.pickup k lwp in
      let op_cost =
        Int64.mul c.Cost.signal_deliver (Int64.of_int (List.length sigs))
      in
      K.complete k lwp ~op_cost (R_sigs sigs)
  | Sys_trap signo -> (
      (* synchronous fault: handled only by the faulting thread *)
      match proc.handlers.(signo) with
      | Sig_handler _ as d ->
          K.complete k lwp ~op_cost:c.Cost.signal_deliver (R_sigs [ (signo, d) ])
      | Sig_ignore -> K.complete k lwp R_ok
      | Sig_default ->
          Sig.default_action k proc signo;
          K.complete k lwp R_ok (* no-op if the action killed us *))
  | Sys_lwp_create { entry; cls } ->
      if K.chaos_roll k ~site:"enomem-lwp" (chp k).enomem_lwp then
        (* transient kernel memory pressure: the caller is expected to
           back off and retry (see Pool.grow_pool) *)
        K.complete k lwp (R_err Errno.ENOMEM)
      else
        let cls =
          match cls with
          | None | Some Cls_timeshare -> Sc_timeshare { ts_pri = 29 }
          | Some (Cls_realtime p) -> Sc_realtime p
          | Some (Cls_gang g) -> Sc_gang g
        in
        let nlwp = K.spawn_lwp k proc ~entry ~cls in
        K.complete k lwp ~op_cost:c.Cost.lwp_create (R_int nlwp.lid)
  | Sys_lwp_exit ->
      (* charge the destruction before the LWP disappears *)
      let cpu = K.cpu_of k lwp in
      K.busy k cpu lwp c.Cost.lwp_destroy (fun () ->
          K.lwp_exit_internal k lwp)
  | Sys_lwp_park timeout ->
      if lwp.park_token then begin
        lwp.park_token <- false;
        K.complete k lwp ~op_cost:c.Cost.sleep_enqueue R_ok
      end
      else begin
        (* pay for the sleep-queue insertion before giving up the CPU *)
        let cpu = K.cpu_of k lwp in
        K.busy k cpu lwp c.Cost.sleep_enqueue (fun () ->
            (* an unpark may have landed during the enqueue interval: it
               saw parked=false and left a token.  Consume it instead of
               blocking, or the wakeup is lost for good — nothing ever
               re-examines the token once the LWP is asleep. *)
            if lwp.park_token then begin
              lwp.park_token <- false;
              K.complete k lwp R_ok
            end
            else if
              (* chaos: asynchronous LWP death, injected at the moment
                 the LWP would go idle — the paper's SIGWAITING story is
                 that the pool recovers by growing a replacement.  Only
                 with a sibling alive (killing the last LWP kills the
                 process: that is Sys_exit, not a recoverable fault),
                 and only after the token re-check so no wakeup is
                 owed to the dying LWP. *)
              List.length (live_lwps proc) > 1
              && K.chaos_roll k ~site:"lwp-reap" (chp k).lwp_reap
            then begin
              lwp.parked <- false;
              K.trace k "chaos" "lwp-reap kills pid%d/lwp%d" proc.pid lwp.lid;
              K.lwp_exit_internal k lwp
            end
            else begin
              lwp.parked <- true;
              K.block k lwp ~wchan:"lwp_park" ~interruptible:true
                ~indefinite:(timeout = None)
                ~cancel:(fun () -> lwp.parked <- false);
              match timeout with
              | Some t ->
                  K.set_sleep_timeout k lwp t (R_err Errno.ETIMEDOUT)
              | None -> ()
            end)
      end
  | Sys_lwp_unpark lid -> (
      match K.find_lwp proc lid with
      | None -> K.complete k lwp (R_err Errno.ESRCH)
      | Some target ->
          if target.parked then begin
            (match target.sleep with
            | Some sl -> sl.sl_cancel ()
            | None -> ());
            K.wake k target R_ok
          end
          else target.park_token <- true;
          (* unpark = dequeue from the park sleep queue + generic wakeup *)
          K.complete k lwp
            ~op_cost:(Int64.add c.Cost.wakeup c.Cost.sleep_enqueue)
            R_ok)
  | Sys_kwait { seg; offset; timeout; expect } -> (
      (* futex compare: evaluated atomically here, before sleeping *)
      match expect with
      | Some p when not (p ()) ->
          K.complete k lwp ~op_cost:c.Cost.kwait_fixed R_ok
      | Some _ | None ->
          let seg = resolve_seg proc seg in
          Hashtbl.replace k.futex_names (Shm.id seg) (Shm.name seg);
          let key = (Shm.id seg, offset) in
          let q =
            match Hashtbl.find_opt k.futex key with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.replace k.futex key q;
                q
          in
          let waiter = { fw_lwp = lwp; fw_alive = ref true } in
          Queue.add waiter q;
          K.block k lwp ~wchan:"kwait" ~interruptible:true ~indefinite:true
            ~cancel:(fun () -> waiter.fw_alive := false);
          (match timeout with
          | Some t -> K.set_sleep_timeout k lwp t (R_err Errno.ETIMEDOUT)
          | None -> ()))
  | Sys_kwake { seg; offset; count } ->
      let seg = resolve_seg proc seg in
      let key = (Shm.id seg, offset) in
      let woken = ref 0 in
      (match Hashtbl.find_opt k.futex key with
      | None -> ()
      | Some q when Sunos_sim.Schedctl.active () ->
          (* driven (exploration) mode: when the wake is selective
             (fewer wakeups than live waiters), the schedule driver
             picks who gets the word; candidate 0 is the passive FIFO
             head.  A wake-all is order-free here — every waiter wakes
             and the dispatch site explores their run order. *)
          let live () =
            List.rev
              (Queue.fold
                 (fun acc w ->
                   if !(w.fw_alive) && w.fw_lwp.lstate = Lsleeping then
                     w :: acc
                   else acc)
                 [] q)
          in
          let remove chosen =
            let rest =
              Queue.fold
                (fun acc w -> if w == chosen then acc else w :: acc)
                [] q
            in
            Queue.clear q;
            List.iter (fun w -> Queue.add w q) (List.rev rest)
          in
          let draining = ref true in
          while !draining && !woken < count do
            match live () with
            | [] ->
                Queue.clear q;
                draining := false
            | cands ->
                let n = List.length cands in
                let i =
                  if count - !woken >= n then 0
                  else Sunos_sim.Schedctl.choose ~site:"kwake" ~obj:offset n
                in
                let w = List.nth cands i in
                w.fw_alive := false;
                remove w;
                incr woken;
                K.wake k w.fw_lwp R_ok
          done
      | Some q ->
          while !woken < count && not (Queue.is_empty q) do
            let w = Queue.pop q in
            if !(w.fw_alive) && w.fw_lwp.lstate = Lsleeping then begin
              w.fw_alive := false;
              incr woken;
              K.wake k w.fw_lwp R_ok
            end
          done);
      (* a futex wake is a directed handoff straight onto the run queue:
         its cost is folded into the fixed part *)
      let op_cost = c.Cost.kwake_fixed in
      K.complete k lwp ~op_cost (R_int !woken)
  | Sys_setitimer (which, span) -> (
      match which with
      | Timer_real ->
          (match proc.rtimer with
          | Some h -> Sunos_sim.Eventq.cancel h
          | None -> ());
          proc.rtimer <- None;
          (match span with
          | Some t ->
              (* chaos: clock jitter delivers the tick late (never
                 early — a timer that fires before its deadline would
                 violate itimer semantics, not just degrade them) *)
              let t =
                if K.chaos_roll k ~site:"timer-jitter" (chp k).timer_jitter
                then
                  Time.add t
                    (Time.us
                       (K.Faultgen.draw_us (K.chaos k) ~lo:1
                          ~hi:(max 1 (chp k).jitter_us)))
                else t
              in
              let h =
                Sunos_sim.Eventq.after k.machine.Machine.eventq t (fun () ->
                    proc.rtimer <- None;
                    Sig.post_proc k proc Signo.sigalrm)
              in
              proc.rtimer <- Some h
          | None -> ());
          K.complete k lwp R_ok
      | Timer_virtual ->
          lwp.vtimer_left <- span;
          K.complete k lwp R_ok
      | Timer_prof ->
          lwp.ptimer_left <- span;
          K.complete k lwp R_ok)
  | Sys_priocntl cls_req ->
      K.gang_remove k lwp;
      (lwp.cls <-
        (match cls_req with
        | Cls_timeshare -> Sc_timeshare { ts_pri = 29 }
        | Cls_realtime p -> Sc_realtime p
        | Cls_gang g -> Sc_gang g));
      (match lwp.cls with
      | Sc_gang gid ->
          let members =
            match Hashtbl.find_opt k.gangs gid with
            | Some m -> m
            | None ->
                let m = ref [] in
                Hashtbl.replace k.gangs gid m;
                m
          in
          members := !members @ [ lwp ]
      | Sc_timeshare _ | Sc_realtime _ -> ());
      K.complete k lwp R_ok
  | Sys_prio_set p ->
      lwp.prio_user <- p;
      K.complete k lwp R_ok
  | Sys_processor_bind cpu_opt -> (
      match cpu_opt with
      | Some cid when cid < 0 || cid >= Array.length k.machine.Machine.cpus ->
          K.complete k lwp (R_err Errno.EINVAL)
      | _ ->
          lwp.bound_cpu <- cpu_opt;
          K.complete k lwp R_ok)
  | Sys_getrusage ->
      let utime, stime =
        List.fold_left
          (fun (u, s) l -> (Int64.add u l.utime, Int64.add s l.stime))
          (proc.dead_utime, proc.dead_stime)
          proc.lwps
      in
      K.complete k lwp
        (R_rusage
           {
             ru_utime = utime;
             ru_stime = stime;
             ru_nlwps = List.length (live_lwps proc);
             ru_minflt = proc.minflt;
             ru_majflt = proc.majflt;
           })
  | Sys_setrlimit_cpu span ->
      proc.cpu_limit <- span;
      K.complete k lwp R_ok
  | Sys_profil enabled ->
      lwp.prof_on <- enabled;
      K.complete k lwp R_ok
  | Sys_set_resume_hook hook ->
      lwp.on_resume <- hook;
      K.complete k lwp R_ok
  | Sys_upcall_on_block { enabled; activation_entry } ->
      proc.upcall_on_block <- enabled;
      proc.activation_entry <- activation_entry;
      K.complete k lwp R_ok

let install k = k.syscall_exec <- execute k
