(** System-call request and result types.

    These are the wire format between user code (fibers) and the kernel:
    a fiber performs [Uctx.Sys req] and receives a {!sysret}.  Typed
    wrappers in {!Uctx} hide the variant plumbing from applications. *)

type fd = int

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC

type disposition =
  | Sig_default
  | Sig_ignore
  | Sig_handler of (Signo.t -> unit)
      (** Handlers are closures run in the receiving thread's context;
          they may perform charges and system calls. *)

type which_timer = Timer_real | Timer_virtual | Timer_prof

type sched_class_req =
  | Cls_timeshare
  | Cls_realtime of int  (** fixed priority, 0..59 *)
  | Cls_gang of int  (** gang group id; members dispatch together *)

type poll_fd = { pfd : fd; want_in : bool; want_out : bool }

type epoll_op =
  | Ep_add of { want_in : bool; want_out : bool; oneshot : bool }
      (** Register interest.  [oneshot]: disarm on delivery until the
          next [Ep_mod] re-arms (EPOLLONESHOT).  [EEXIST] if already
          registered, [EBADF] on an unpollable fd. *)
  | Ep_mod of { want_in : bool; want_out : bool; oneshot : bool }
      (** Update the mask and re-arm; readiness is re-checked at re-arm
          time so an edge that fired while disarmed is not lost.
          [ENOENT] if not registered. *)
  | Ep_del  (** Drop interest; pending readiness is discarded. *)

type rusage = {
  ru_utime : Sunos_sim.Time.span;  (** user CPU, all LWPs, incl. dead *)
  ru_stime : Sunos_sim.Time.span;  (** system CPU, all LWPs, incl. dead *)
  ru_nlwps : int;  (** live LWPs *)
  ru_minflt : int;
  ru_majflt : int;
}

type sysreq =
  | Sys_getpid
  | Sys_getlwpid
  | Sys_gettime
  | Sys_nanosleep of Sunos_sim.Time.span
  | Sys_exit of int
  | Sys_fork of { child_main : unit -> unit; all_lwps : bool }
      (** [all_lwps = true] is [fork()]; [false] is [fork1()].  See
          DESIGN.md: execution of duplicated LWPs is not reproduced
          (one-shot continuations), but the cost model and the EINTR
          side effect on the parent's other LWPs are. *)
  | Sys_exec of { name : string; main : unit -> unit }
  | Sys_waitpid of int option  (** None: any child *)
  | Sys_open of string * open_flag list
  | Sys_open_net of Netchan.t
  | Sys_close of fd
  | Sys_read of fd * int
  | Sys_read_nb of fd * int  (* non-blocking socket read *)
  | Sys_write of fd * string
  | Sys_lseek of fd * int
  | Sys_unlink of string
  | Sys_mmap of { fd : fd }
      (** Shared mapping of the file's backing segment (MAP_SHARED). *)
  | Sys_mmap_anon of { size : int; shared : bool }
  | Sys_munmap of Sunos_hw.Shared_memory.t
  | Sys_touch of Sunos_hw.Shared_memory.t * int
      (** Reference offset in a mapping: the page-fault path.  Resident:
          free.  Non-resident: minor fault, plus disk I/O (blocking this
          LWP only) when file-backed. *)
  | Sys_pipe
  | Sys_listen of { name : string; backlog : int }
      (** Register a listening socket under a service name.  Returns the
          listening fd; [EADDRINUSE] if the name is taken. *)
  | Sys_connect of string
      (** Open a connection to a named listener.  Blocks for the network
          round trip; admission (or refusal: no/closed listener, full
          backlog) is decided when the SYN arrives.  Returns the
          connected fd or [ECONNREFUSED]. *)
  | Sys_accept of fd * bool
  | Sys_note_shed
      (** Take the next established connection off a listening fd's
          backlog.  With the flag false, blocks (interruptibly) while
          the backlog is empty; closing the listening fd fails blocked
          acceptors with [ECONNABORTED].  With the flag true
          (non-blocking), an empty backlog returns [EAGAIN] instead —
          this is how an event-driven server drains every pending
          connection behind one poll readiness event. *)
  | Sys_poll of poll_fd list * Sunos_sim.Time.span option
      (** No timeout = indefinite wait (counts toward SIGWAITING). *)
  | Sys_epoll_create
      (** New epoll object; returns its fd.  Edge-triggered readiness
          delivery: a wait costs O(ready), not O(interest). *)
  | Sys_epoll_ctl of fd * fd * epoll_op  (** epoll fd, target fd, op *)
  | Sys_epoll_wait of fd * int * Sunos_sim.Time.span option
      (** Up to [max] ready fds ([R_poll]); blocks while none (no
          timeout = indefinite, counts toward SIGWAITING).  Readiness is
          edge-recorded and may be stale by delivery — consumers drain
          non-blocking until [EAGAIN]. *)
  | Sys_kill of int * Signo.t
  | Sys_lwp_kill of int * Signo.t  (** LWP-directed, own process only *)
  | Sys_sigaction of Signo.t * disposition
  | Sys_sigprocmask of Sigset.how * Sigset.t
  | Sys_sigaltstack of bool
  | Sys_sig_pickup
      (** Collect deliverable signals for the current LWP (the
          return-to-user-mode delivery point). *)
  | Sys_trap of Signo.t
      (** Synchronous fault raised by the current instruction stream. *)
  | Sys_lwp_create of { entry : unit -> unit; cls : sched_class_req option }
  | Sys_lwp_exit
  | Sys_lwp_park of Sunos_sim.Time.span option
      (** Sleep until {!Sys_lwp_unpark}; a pending unpark token makes it
          return immediately.  No timeout = indefinite. *)
  | Sys_lwp_unpark of int
  | Sys_kwait of {
      seg : Sunos_hw.Shared_memory.t;
      offset : int;
      timeout : Sunos_sim.Time.span option;
      expect : (unit -> bool) option;
    }
      (** Block on a shared-memory sync variable (futex-style).  When
          [expect] is given, it is evaluated atomically at sleep time; if
          it returns [false] the call returns immediately instead of
          sleeping (the futex "compare" that closes the lost-wakeup
          race). *)
  | Sys_kwake of { seg : Sunos_hw.Shared_memory.t; offset : int; count : int }
  | Sys_setitimer of which_timer * Sunos_sim.Time.span option
  | Sys_priocntl of sched_class_req
  | Sys_prio_set of int
  | Sys_processor_bind of int option
  | Sys_getrusage
  | Sys_setrlimit_cpu of Sunos_sim.Time.span option
  | Sys_profil of bool
  | Sys_set_resume_hook of (unit -> unit)
      (** Install a per-LWP hook run whenever the kernel resumes this LWP
          — the simulation analogue of the current-thread register
          (SPARC %g7) being part of the restored context.  Free. *)
  | Sys_upcall_on_block of {
      enabled : bool;
      activation_entry : (unit -> unit) option;
    }
      (** Scheduler-activations mode: on every application block the
          kernel hands the library a running context — an unparked idle
          LWP, or a fresh "activation" LWP executing [activation_entry]
          (the paper's "faster events" future work / the University of
          Washington comparison). *)

type sysret =
  | R_ok
  | R_int of int
  | R_err of Errno.t
  | R_bytes of string
  | R_fds of fd * fd
  | R_poll of fd list
  | R_wait of int * int  (** pid, exit status *)
  | R_time of Sunos_sim.Time.t
  | R_seg of Sunos_hw.Shared_memory.t
  | R_sigs of (Signo.t * disposition) list
  | R_disp of disposition
  | R_rusage of rusage

val sysreq_name : sysreq -> string
val pp_sysret : Format.formatter -> sysret -> unit
