(** A network endpoint: a message queue fed from outside the process.

    {b Deprecated.} New code should use the connection-oriented socket
    layer ({!Socket}, via [Uctx.listen] / [Uctx.connect] /
    [Uctx.accept]) instead: it gives per-connection full-duplex byte
    streams with bounded buffers, backpressure, and EOF/reset
    semantics, where Netchan only offers a one-way message queue with a
    reply side-channel.  Netchan remains for message-style injection
    from event-queue callbacks (no peer process required) and for the
    existing kernel tests; no workload uses it any more.

    Workload generators inject request messages (optionally through the
    simulated network device for latency); server code reads them through
    the fd layer ([read] returns one whole message) and replies with
    [reply], which the workload observes via its completion callback.
    This stands in for the socket layer the 1991 network-server
    motivation needs, without modeling TCP. *)

type t

type message = { payload : string; reply_to : string -> unit }

val create : name:string -> t
val name : t -> string

val inject : t -> message -> unit
(** Called by workloads (typically from an event-queue callback). *)

val take : t -> message option
(** Also queues the message's [reply_to] for FIFO correlation with a
    later {!pop_reply} (responses are pipelined in take order). *)

val pop_reply : t -> (string -> unit) option
val readable : t -> bool
val pending : t -> int

val on_readable : t -> (unit -> unit) -> unit
(** One-shot readiness callback, as in {!Pipe}. *)

val close : t -> unit
val closed : t -> bool
