open Ktypes

type lwp_info = {
  li_lwpid : int;
  li_state : string;
  li_class : string;
  li_prio : int;
  li_wchan : string;
  li_parked : bool;
  li_sleep_indefinite : bool;
  li_sleep_interruptible : bool;
  li_utime : Sunos_sim.Time.span;
  li_stime : Sunos_sim.Time.span;
  li_bound_cpu : int option;
}

type proc_info = {
  pi_pid : int;
  pi_name : string;
  pi_state : string;
  pi_parent : int option;
  pi_nlwps : int;
  pi_lwps : lwp_info list;
  pi_utime : Sunos_sim.Time.span;
  pi_stime : Sunos_sim.Time.span;
  pi_minflt : int;
  pi_majflt : int;
  pi_shed : int;
  pi_nfds : int;
  pi_nsocks : int;
  pi_nlisten : int;
}

let lwp_state_string l =
  match l.lstate with
  | Lrunning c -> Printf.sprintf "running(cpu%d)" c
  | Lrunnable -> "runnable"
  | Lsleeping -> "sleeping"
  | Lstopped -> "stopped"
  | Lzombie -> "zombie"

let class_string l =
  match l.cls with
  | Sc_timeshare _ -> "TS"
  | Sc_realtime _ -> "RT"
  | Sc_gang g -> Printf.sprintf "GANG%d" g

let lwp_info l =
  {
    li_lwpid = l.lid;
    li_state = lwp_state_string l;
    li_class = class_string l;
    li_prio = global_prio l;
    li_wchan = l.wchan;
    li_parked = l.parked;
    li_sleep_indefinite =
      (match l.sleep with Some s -> s.sl_indefinite | None -> false);
    li_sleep_interruptible =
      (match l.sleep with Some s -> s.sl_interruptible | None -> false);
    li_utime = l.utime;
    li_stime = l.stime;
    li_bound_cpu = l.bound_cpu;
  }

let proc_info p =
  let utime, stime =
    List.fold_left
      (fun (u, s) l -> (Int64.add u l.utime, Int64.add s l.stime))
      (p.dead_utime, p.dead_stime)
      p.lwps
  in
  {
    pi_pid = p.pid;
    pi_name = p.pname;
    pi_state =
      (match p.pstate with
      | Palive -> if p.stopped then "stopped" else "alive"
      | Pzombie -> "zombie"
      | Preaped -> "reaped");
    pi_parent = Option.map (fun pp -> pp.pid) p.parent;
    pi_nlwps = List.length (live_lwps p);
    pi_lwps = List.map lwp_info p.lwps;
    pi_utime = utime;
    pi_stime = stime;
    pi_minflt = p.minflt;
    pi_majflt = p.majflt;
    pi_shed = p.shed_count;
    pi_nfds = Hashtbl.length p.fdtab;
    pi_nsocks =
      Hashtbl.fold
        (fun _ o n -> match o with Fd_sock _ -> n + 1 | _ -> n)
        p.fdtab 0;
    pi_nlisten =
      Hashtbl.fold
        (fun _ o n -> match o with Fd_sock_listen _ -> n + 1 | _ -> n)
        p.fdtab 0;
  }

let snapshot k =
  k.procs |> List.map proc_info
  |> List.sort (fun a b -> compare a.pi_pid b.pi_pid)

let proc k pid =
  match Kernel_impl.find_proc k pid with
  | Some p -> Some (proc_info p)
  | None -> None

let pp_proc ppf pi =
  Format.fprintf ppf
    "pid %d (%s) %s nlwps=%d utime=%a stime=%a flt=%d/%d socks=%d/%d%s@."
    pi.pi_pid pi.pi_name pi.pi_state pi.pi_nlwps Sunos_sim.Time.pp pi.pi_utime
    Sunos_sim.Time.pp pi.pi_stime pi.pi_minflt pi.pi_majflt pi.pi_nsocks
    pi.pi_nlisten
    (* shed connections only appear under load shedding; keep the
       happy-path line format unchanged *)
    (if pi.pi_shed > 0 then Printf.sprintf " shed=%d" pi.pi_shed else "");
  List.iter
    (fun li ->
      Format.fprintf ppf "  lwp %d %-16s %-6s prio=%-3d %s%s@." li.li_lwpid
        li.li_state li.li_class li.li_prio
        (if li.li_wchan = "" then "" else "wchan=" ^ li.li_wchan)
        (match li.li_bound_cpu with
        | Some c -> Printf.sprintf " bound=cpu%d" c
        | None -> ""))
    pi.pi_lwps

let pp ppf k = List.iter (pp_proc ppf) (snapshot k)

(* --- shared-object wait channels -------------------------------------- *)

type wchan_info = {
  wc_seg_id : int;
  wc_seg_name : string;
  wc_offset : int;
  wc_waiters : (int * int) list; (* (pid, lwpid), sorted *)
}

let wait_channels k =
  Hashtbl.fold
    (fun (seg_id, offset) q acc ->
      let waiters =
        Queue.fold
          (fun ws w ->
            if !(w.fw_alive) && w.fw_lwp.lstate = Lsleeping then
              (w.fw_lwp.proc.pid, w.fw_lwp.lid) :: ws
            else ws)
          [] q
      in
      if waiters = [] then acc
      else
        {
          wc_seg_id = seg_id;
          wc_seg_name =
            (match Hashtbl.find_opt k.futex_names seg_id with
            | Some n -> n
            | None -> "?");
          wc_offset = offset;
          wc_waiters = List.sort compare waiters;
        }
        :: acc)
    k.futex []
  |> List.sort (fun a b ->
         compare (a.wc_seg_id, a.wc_offset) (b.wc_seg_id, b.wc_offset))

let pp_wait_channels ppf k =
  List.iter
    (fun wc ->
      Format.fprintf ppf "wchan %s(seg%d)+%d:%s@." wc.wc_seg_name wc.wc_seg_id
        wc.wc_offset
        (String.concat ""
           (List.map
              (fun (pid, lid) -> Printf.sprintf " pid%d/lwp%d" pid lid)
              wc.wc_waiters)))
    (wait_channels k)

(* --- epoll objects ---------------------------------------------------- *)

type epoll_info = {
  ei_pid : int;
  ei_fd : int;
  ei_interest : int;  (* registered fds *)
  ei_ready : int;  (* current ready-queue depth *)
  ei_edges : int;  (* entries enqueued over the object's lifetime *)
  ei_coalesced : int;  (* edges absorbed by an already-queued entry *)
  ei_wakeups : int;  (* blocked epoll_wait callers woken *)
  ei_delivered : int;  (* entries handed to epoll_wait callers *)
}

let epolls k =
  List.concat_map
    (fun p ->
      Hashtbl.fold
        (fun fd o acc ->
          match o with
          | Fd_epoll ep ->
              {
                ei_pid = p.pid;
                ei_fd = fd;
                ei_interest = Epoll.interest_count ep;
                ei_ready = Epoll.ready_depth ep;
                ei_edges = Epoll.edges ep;
                ei_coalesced = Epoll.coalesced ep;
                ei_wakeups = Epoll.wakeups ep;
                ei_delivered = Epoll.delivered ep;
              }
              :: acc
          | _ -> acc)
        p.fdtab [])
    k.procs
  |> List.sort (fun a b -> compare (a.ei_pid, a.ei_fd) (b.ei_pid, b.ei_fd))

let pp_epoll ppf ei =
  Format.fprintf ppf
    "epoll pid%d/fd%d interest=%d ready=%d edges=%d coalesced=%d wakeups=%d \
     delivered=%d@."
    ei.ei_pid ei.ei_fd ei.ei_interest ei.ei_ready ei.ei_edges ei.ei_coalesced
    ei.ei_wakeups ei.ei_delivered

let pp_epolls ppf k = List.iter (pp_epoll ppf) (epolls k)

(* --- parallel engine: event-queue shards and the worker pool ---------- *)

type shard_info = {
  sh_id : int;
  sh_frontier : Sunos_sim.Time.t option;
  sh_pending : int;
  sh_fired : int;
  sh_cross_in : int;
}

let shards k =
  let q = k.machine.Sunos_hw.Machine.eventq in
  List.init (Sunos_sim.Eventq.shard_count q) (fun i ->
      {
        sh_id = i;
        sh_frontier = Sunos_sim.Eventq.shard_next_time q i;
        sh_pending = Sunos_sim.Eventq.shard_pending q i;
        sh_fired = Sunos_sim.Eventq.shard_fired q i;
        sh_cross_in = Sunos_sim.Eventq.shard_cross_in q i;
      })

let pool_lanes k =
  Sunos_sim.Parexec.lane_stats k.machine.Sunos_hw.Machine.pool

let pp_shards ppf k =
  List.iter
    (fun sh ->
      Format.fprintf ppf "shard %d (%s) frontier=%s pending=%d fired=%d xin=%d@."
        sh.sh_id
        (if sh.sh_id = 0 then "global" else Printf.sprintf "cpu%d" (sh.sh_id - 1))
        (match sh.sh_frontier with
        | Some t -> Format.asprintf "%a" Sunos_sim.Time.pp t
        | None -> "-")
        sh.sh_pending sh.sh_fired sh.sh_cross_in)
    (shards k);
  Array.iteri
    (fun i (ls : Sunos_sim.Parexec.lane_stats) ->
      Format.fprintf ppf
        "lane %d submitted=%d completed=%d stalls=%d overflows=%d frontier=%a@."
        i ls.ls_submitted ls.ls_completed ls.ls_stalls ls.ls_overflows
        Sunos_sim.Time.pp ls.ls_frontier)
    (pool_lanes k)
