(** Kernel pipe: a bounded byte buffer with readiness callbacks.

    The pipe knows nothing about LWPs; the syscall layer registers
    one-shot callbacks that it uses to wake sleepers.  This keeps the
    module free of kernel-type cycles and reusable by [poll]. *)

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t

val read : t -> len:int -> string
(** Up to [len] buffered bytes; [""] when empty (caller blocks/polls). *)

val write : t -> string -> int
(** Bytes accepted (bounded by free space); 0 when full. *)

val readable : t -> bool
(** Data buffered, or no writer left (EOF is readable). *)

val writable : t -> bool
val buffered : t -> int

val close_read : t -> unit
val close_write : t -> unit
val read_closed : t -> bool
val write_closed : t -> bool

val on_readable : t -> (unit -> unit) -> unit
(** One-shot: fires once at the next transition that could make a reader
    make progress (data written or writers closed), then is dropped. *)

val on_writable : t -> (unit -> unit) -> unit

(** {1 Persistent readiness watches (epoll support)}

    Same contract as {!Socket.watch}: fires at every transition until
    unwatched, no readiness check at registration, spurious firings
    allowed. *)

type watch

val watch_readable : t -> (unit -> unit) -> watch
val watch_writable : t -> (unit -> unit) -> watch
val unwatch : watch -> unit
