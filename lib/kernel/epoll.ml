(* The epoll kernel object: an interest set plus a bounded ready queue.

   The legacy [poll] syscall re-examines every fd in its set on every
   wakeup — O(connections) work per event, which is exactly the wall the
   C10k literature hit.  This object inverts the direction: each
   interested fd holds a persistent {!Socket.watch}/{!Pipe.watch} that
   pushes the fd's interest entry onto the ready queue at the state
   transition itself, so a wait costs O(ready), independent of how many
   connections are held.

   Edge-triggered with explicit re-arm: an entry is queued at most once
   (the [e_queued] flag bounds the ready queue by the interest size and
   counts coalesced edges), and a ONESHOT entry disarms on delivery
   until the consumer re-arms it with ctl(MOD).  Readiness is only
   {e level}-checked at arm time (add and re-arm) — that check, plus the
   fact that watches fire on every subsequent transition, is the
   lost-wakeup argument (DESIGN.md).  Spurious readiness is allowed:
   consumers drain with non-blocking ops until [`Again].

   Like Socket and Pipe this module is pure mechanism: no LWPs, no
   costs, no errnos.  The syscall layer validates fds against the fdtab
   at delivery time, which is how entries whose fd was closed without a
   ctl(DEL) get collected. *)

type entry = {
  e_fd : int;
  mutable e_want_in : bool;
  mutable e_want_out : bool;
  mutable e_oneshot : bool;
  mutable e_armed : bool;  (* eligible to queue; ONESHOT clears on delivery *)
  mutable e_queued : bool;  (* sitting in [ready]: dedups edges *)
  mutable e_dead : bool;  (* removed from interest; skipped at pop *)
  mutable e_unwatch : unit -> unit;  (* detaches the object watches *)
}

type t = {
  id : int;  (* the owning fd number, for /proc and traces *)
  interest : (int, entry) Hashtbl.t;
  ready : entry Queue.t;
  mutable wait_waiters : (unit -> unit) list;  (* one-shot, socket-style *)
  mutable closed : bool;
  (* stats, surfaced via procfs pp_epoll and the net_server debrief *)
  mutable edges : int;  (* entries enqueued *)
  mutable coalesced : int;  (* edges absorbed by an already-queued entry *)
  mutable wakeups : int;  (* blocked waiters woken *)
  mutable delivered : int;  (* entries handed to epoll_wait callers *)
}

let create ~id =
  {
    id;
    interest = Hashtbl.create 64;
    ready = Queue.create ();
    wait_waiters = [];
    closed = false;
    edges = 0;
    coalesced = 0;
    wakeups = 0;
    delivered = 0;
  }

let id t = t.id
let closed t = t.closed
let find t fd = Hashtbl.find_opt t.interest fd
let interest_count t = Hashtbl.length t.interest
let ready_depth t = Queue.length t.ready
let edges t = t.edges
let coalesced t = t.coalesced
let wakeups t = t.wakeups
let delivered t = t.delivered

let fire_waiters t =
  match t.wait_waiters with
  | [] -> ()
  | ws ->
      t.wait_waiters <- [];
      t.wakeups <- t.wakeups + List.length ws;
      List.iter (fun f -> f ()) (List.rev ws)

let add_waiter t f = t.wait_waiters <- f :: t.wait_waiters

let register t ~fd ~want_in ~want_out ~oneshot =
  let e =
    {
      e_fd = fd;
      e_want_in = want_in;
      e_want_out = want_out;
      e_oneshot = oneshot;
      e_armed = true;
      e_queued = false;
      e_dead = false;
      e_unwatch = (fun () -> ());
    }
  in
  Hashtbl.replace t.interest fd e;
  e

(* An edge (or an arm-time level check) on [e]: queue it unless the
   entry is disarmed, already queued, dead, or the epoll is gone.  The
   disarmed case is NOT a lost wakeup — re-arming re-checks readiness. *)
let note_edge t e =
  if not (t.closed || e.e_dead || not e.e_armed) then
    if e.e_queued then t.coalesced <- t.coalesced + 1
    else begin
      e.e_queued <- true;
      Queue.add e t.ready;
      t.edges <- t.edges + 1;
      fire_waiters t
    end

(* Remove [e] from the interest set.  It may still sit in the ready
   queue; [pop] skips dead entries, which is the "interest removal with
   pending readiness" case. *)
let kill_entry t e =
  if not e.e_dead then begin
    e.e_dead <- true;
    e.e_unwatch ();
    Hashtbl.remove t.interest e.e_fd
  end

let rec pop t =
  match Queue.take_opt t.ready with
  | None -> None
  | Some e ->
      e.e_queued <- false;
      if e.e_dead then pop t else Some e

(* Called by the syscall layer when it hands [e] to an epoll_wait
   caller: ONESHOT entries disarm until ctl(MOD) re-arms them. *)
let note_delivered t e =
  t.delivered <- t.delivered + 1;
  if e.e_oneshot then e.e_armed <- false

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.iter (fun _ e -> e.e_dead <- true; e.e_unwatch ()) t.interest;
    Hashtbl.reset t.interest;
    Queue.clear t.ready;
    (* a waiter blocked on a concurrently-closed epoll fd re-checks and
       fails out rather than sleeping forever *)
    fire_waiters t
  end
