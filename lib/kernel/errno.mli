(** UNIX error numbers (the subset the simulated syscalls can return). *)

type t =
  | EINTR  (** interrupted system call *)
  | EBADF  (** bad file descriptor *)
  | ENOENT  (** no such file or directory *)
  | EEXIST  (** file exists *)
  | EINVAL  (** invalid argument *)
  | EAGAIN  (** resource temporarily unavailable *)
  | ECHILD  (** no child processes *)
  | ESRCH  (** no such process / LWP / thread *)
  | EPIPE  (** broken pipe *)
  | EDEADLK  (** deadlock would occur *)
  | ENOMEM  (** out of memory *)
  | EPERM  (** operation not permitted *)
  | ENOSYS  (** not implemented *)
  | ETIMEDOUT  (** timed out *)
  | EADDRINUSE  (** service name already has a listener *)
  | ECONNREFUSED  (** no listener, listener closed, or backlog full *)
  | ECONNRESET  (** connection reset by peer *)
  | ECONNABORTED  (** listening fd closed under a blocked accept *)
  | ENOTCONN  (** stream operation on a listening socket *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

exception Unix_error of t * string
(** Raised by the user-side syscall wrappers; the string names the call. *)
