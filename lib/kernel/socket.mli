(** Connection-oriented stream sockets (kernel mechanism).

    A connection is a pair of bounded byte streams between two endpoints,
    one per direction.  A [write] accepts at most
    [capacity - buffered - in_flight] bytes into the sender's window and
    delivers them into the peer's receive buffer after a transfer time
    plus half a network round trip ({!Sunos_hw.Devices.Net.send}); the
    window reopens only when the receiver drains — which is what gives a
    fast writer backpressure against a slow reader.  EOF is ordered
    after all in-flight data.  Closing an endpoint whose receive side
    still holds undelivered data aborts the connection: the peer's
    subsequent reads and writes fail with a reset.

    Listeners live in a per-kernel {!registry} under a string service
    name.  Connection admission happens when the (simulated) SYN arrives
    at the listener: if the listener is gone or its backlog is full the
    connect is refused, otherwise the server endpoint joins the pending
    queue until an [accept] collects it.

    Like {!Pipe}, this module is policy-free: no LWPs, no costs, no
    errnos — just state transitions and one-shot readiness callbacks the
    syscall layer builds blocking semantics from. *)

type endpoint
type listener
type registry

val create_registry : unit -> registry
val default_capacity : int

(** {1 Listeners} *)

val listen :
  registry ->
  name:string ->
  backlog:int ->
  ?capacity:int ->
  unit ->
  (listener, [ `Addr_in_use ]) result

val lookup : registry -> string -> listener option

val try_admit : listener -> net:Sunos_hw.Devices.Net.t -> endpoint option
(** Admission at SYN arrival.  [None] = refused (closed listener or full
    backlog); [Some client_ep] = the connection is established and its
    server endpoint queued for accept. *)

val accept : listener -> endpoint option
val acceptable : listener -> bool
val on_acceptable : listener -> (unit -> unit) -> unit
(** One-shot: fires when the pending queue is non-empty {e or} the
    listener closes (so blocked acceptors can fail out). *)

val close_listener : listener -> unit
(** Deregisters the name and aborts never-accepted pending connections. *)

val listener_closed : listener -> bool
val listener_name : listener -> string
val pending_count : listener -> int

(** {1 Endpoints} *)

val read : endpoint -> len:int -> [ `Data of string | `Eof | `Empty | `Reset ]
val write : endpoint -> string -> [ `Accepted of int | `Full | `Reset ]
val close : endpoint -> unit

val abort : endpoint -> unit
(** Abortive teardown (fault injection: mid-stream RST).  Both streams
    die instantly and every registered waiter fires, so blocked readers,
    writers and pollers observe the reset. *)

val stall : endpoint -> until:Sunos_sim.Time.t -> unit
(** Fault injection: the peer of [endpoint] stops draining — deliveries
    on the endpoint's outgoing direction are deferred to [until] (byte
    order preserved, window stays closed: a stall is backpressure, not
    loss). *)

val readable : endpoint -> bool
val writable : endpoint -> bool
val peer_closed : endpoint -> bool
val on_readable : endpoint -> (unit -> unit) -> unit
val on_writable : endpoint -> (unit -> unit) -> unit

(** {1 Persistent readiness watches (epoll support)}

    Unlike the one-shot [on_*] callbacks, a {!watch} survives firings:
    it is called at {e every} state transition that may have made the
    object ready (data delivery, window opening, EOF, reset, close)
    until {!unwatch}ed.  Registration performs no readiness check — the
    subscriber (the epoll object) does its own level check at
    registration time, so the split of responsibility is: watches carry
    edges, the subscriber handles the initial level and deduplicates.
    Spurious firings are part of the contract. *)

type watch

val watch_readable : endpoint -> (unit -> unit) -> watch
val watch_writable : endpoint -> (unit -> unit) -> watch
val watch_acceptable : listener -> (unit -> unit) -> watch
(** Fires on pending-queue arrivals {e and} on listener close. *)

val unwatch : watch -> unit
(** Detach; idempotent.  O(1) (lazy removal via an active flag). *)

val pair :
  net:Sunos_hw.Devices.Net.t -> ?capacity:int -> unit -> endpoint * endpoint
(** A connected pair without the listen/connect handshake. *)
