(* Kernel mechanism: dispatching LWP fibers onto CPUs, charging simulated
   time, sleeping/waking, and process/LWP lifecycle.  Policy (signals) and
   the syscall table are layered on top through the kernel's service
   vector (hook_* / syscall_exec fields), installed by Boot.

   Execution model invariants:
   - an LWP's fiber runs only while its [lstate] is [Lrunning cpu];
   - all state transitions happen inside event callbacks, so they are
     totally ordered by simulated time;
   - a [busy] interval models the CPU being held; completion callbacks
     check the LWP is still running on that CPU (kills and stops may have
     intervened) before acting. *)

open Ktypes
module Time = Sunos_sim.Time
module Eventq = Sunos_sim.Eventq
module Counter = Sunos_sim.Stats.Counter
module Machine = Sunos_hw.Machine
module Cpu = Sunos_hw.Cpu
module Cost = Sunos_hw.Cost_model
module Prioq = Sunos_sim.Prioq
module Parexec = Sunos_sim.Parexec

let cost k = k.machine.Machine.cost
let now k = Machine.now k.machine
let eventq k = k.machine.Machine.eventq
let pool k = k.machine.Machine.pool

(* [shard] routes the event to a per-CPU heap (shard [cpu id + 1]);
   kernel-wide events default to the global shard 0.  Routing never
   affects firing order — see {!Sunos_sim.Eventq}. *)
let schedule ?shard k span f = ignore (Eventq.after ?shard (eventq k) span f)
let trace k tag fmt = Machine.trace k.machine ~tag fmt

(* ------------------------------------------------------------------ *)
(* Chaos (deterministic fault injection)                               *)
(* ------------------------------------------------------------------ *)

module Faultgen = Sunos_sim.Faultgen

let chaos k = k.machine.Machine.chaos

(* Roll a fault at an existing decision point.  Every hit is traced
   under the "chaos" tag so an injected fault is always observable in
   the record; with chaos off this never draws from the stream. *)
let chaos_roll k ~site rate =
  if Faultgen.fire (chaos k) ~now:(now k) ~site rate then begin
    trace k "chaos" "%s" site;
    true
  end
  else false

(* Seeded-bug knob for the exploration suite (test-only, default off):
   revert the SIGWAITING re-arm to its pre-fix shape — skip the re-arm
   on ANY EINTR wakeup, not just signal-caused ones, so a timeout-EINTR
   leaves pool growth disarmed.  The explorer must re-find that bug. *)
let bug_sigwaiting_no_rearm = ref false

let create ~machine =
  {
    machine;
    fs = Fs.create ();
    sockets = Socket.create_registry ();
    procs = [];
    next_pid = 1;
    runq = Prioq.create ~levels:(max_global_prio + 1);
    cpu_runqs =
      Array.init
        (Array.length machine.Machine.cpus)
        (fun _ -> Prioq.create ~levels:(max_global_prio + 1));
    runq_seq = 0;
    gangs = Hashtbl.create 8;
    futex = Hashtbl.create 64;
    futex_names = Hashtbl.create 16;
    ctr_syscalls = Counter.create "syscalls";
    ctr_dispatches = Counter.create "dispatches";
    ctr_preemptions = Counter.create "preemptions";
    ctr_sigwaiting = Counter.create "sigwaiting";
    ctr_lwp_creates = Counter.create "lwp_creates";
    hook_post_proc = (fun _ _ -> ());
    hook_post_lwp = (fun _ _ -> ());
    syscall_exec = (fun _ _ -> failwith "no syscall table installed");
  }

let sig_flag lwp = not (Queue.is_empty lwp.deliverable)

let is_running_on lwp cpu =
  match lwp.lstate with Lrunning c -> c = Cpu.id cpu | _ -> false

let cpu_of k lwp =
  match lwp.lstate with
  | Lrunning c -> k.machine.Machine.cpus.(c)
  | _ -> invalid_arg "cpu_of: LWP not running"

let release_cpu k cpu = Cpu.set_occupant cpu ~now:(now k) None

(* ------------------------------------------------------------------ *)
(* Run queues                                                          *)
(* ------------------------------------------------------------------ *)

(* An LWP bound to a CPU is routed to that CPU's side queue at enqueue
   time (binding only ever changes while the LWP is running, never while
   it sits queued), so picks never have to skip over — let alone rebuild
   around — entries another CPU owns.  The kernel-wide [runq_seq] stamps
   every entry so the unbound queue and a CPU's side queue stay in
   global FIFO order within a priority. *)
let enqueue k lwp =
  lwp.runq_gen <- lwp.runq_gen + 1;
  match lwp.cls with
  | Sc_gang _ -> ()  (* gang members are placed by gang_place *)
  | Sc_timeshare _ | Sc_realtime _ ->
      let seq = k.runq_seq in
      k.runq_seq <- seq + 1;
      let entry = (lwp, lwp.runq_gen, seq) in
      let q =
        match lwp.bound_cpu with
        | Some c -> k.cpu_runqs.(c)
        | None -> k.runq
      in
      Prioq.push q (global_prio lwp) entry

(* A queue entry is dead once the LWP was re-enqueued (newer generation),
   ran (state change), or changed priority; pruning them at the bucket
   front is the lazy half of the O(1) dequeue. *)
let entry_live prio (lwp, gen, _seq) =
  lwp.runq_gen = gen && lwp.lstate = Lrunnable && global_prio lwp = prio

(* Exploration (Schedctl-driven) variant of [pick]: enumerate every
   live entry at the winning priority across both queues in enqueue-
   sequence order and let the schedule driver choose.  Candidate 0 is
   exactly the passive pick (each bucket is FIFO in seq, so the merged
   head is the smaller of the two live fronts).  Removal is O(bucket);
   exploration scenarios are tiny. *)
let pick_driven k side =
  let rec at_prio limit =
    if limit < 0 then None
    else
      let prio =
        max (Prioq.top_below k.runq limit) (Prioq.top_below side limit)
      in
      if prio < 0 then None
      else begin
        let keep = entry_live prio in
        (* prune dead fronts so the occupancy masks stay honest, exactly
           as the passive peek does *)
        ignore (Sunos_sim.Prioq.peek_live k.runq prio ~keep);
        ignore (Sunos_sim.Prioq.peek_live side prio ~keep);
        let cands =
          List.merge
            (fun (_, _, s1) (_, _, s2) -> compare (s1 : int) s2)
            (Prioq.live_entries k.runq prio ~keep)
            (Prioq.live_entries side prio ~keep)
        in
        match cands with
        | [] -> at_prio (prio - 1)
        | cands ->
            let i =
              Sunos_sim.Schedctl.choose ~site:"dispatch" ~obj:prio
                (List.length cands)
            in
            let ((lwp, _, _) as entry) = List.nth cands i in
            if not (Prioq.remove k.runq prio entry) then
              ignore (Prioq.remove side prio entry);
            Some lwp
      end
  in
  at_prio max_global_prio

(* Pop the best eligible LWP for [cpu]: the highest occupied priority
   across the unbound queue and this CPU's side queue (two find-highest-
   set probes), FIFO within the priority by enqueue sequence.  O(1)
   amortized — no scanning, no skip-and-restore. *)
let pick k cpu =
  let side = k.cpu_runqs.(Cpu.id cpu) in
  if Sunos_sim.Schedctl.active () then pick_driven k side
  else
  let rec at_prio limit =
    if limit < 0 then None
    else
      let prio = max (Prioq.top_below k.runq limit) (Prioq.top_below side limit) in
      if prio < 0 then None
      else
        let keep = entry_live prio in
        match
          (Prioq.peek_live k.runq prio ~keep, Prioq.peek_live side prio ~keep)
        with
        | None, None -> at_prio (prio - 1)
        | Some (lwp, _, _), None ->
            Prioq.drop_front k.runq prio;
            Some lwp
        | None, Some (lwp, _, _) ->
            Prioq.drop_front side prio;
            Some lwp
        | Some (lg, _, sg), Some (ls, _, ss) ->
            if sg < ss then begin
              Prioq.drop_front k.runq prio;
              Some lg
            end
            else begin
              Prioq.drop_front side prio;
              Some ls
            end
  in
  at_prio max_global_prio

(* Cheap idle/preemption probe: stops at the first live entry instead of
   walking every queue (the bitmask skips empty priorities entirely). *)
let runnable_exists_for k cpu =
  let side = k.cpu_runqs.(Cpu.id cpu) in
  let rec at_prio limit =
    if limit < 0 then false
    else
      let prio = max (Prioq.top_below k.runq limit) (Prioq.top_below side limit) in
      prio >= 0
      && (let keep = entry_live prio in
          Prioq.peek_live k.runq prio ~keep <> None
          || Prioq.peek_live side prio ~keep <> None
          || at_prio (prio - 1))
  in
  at_prio max_global_prio

(* ------------------------------------------------------------------ *)
(* The dispatch / step machine                                         *)
(* ------------------------------------------------------------------ *)

let quantum_for k lwp =
  match lwp.cls with
  | Sc_realtime _ -> Time.s 3600  (* effectively until it blocks *)
  | Sc_timeshare _ | Sc_gang _ -> (cost k).Cost.quantum

(* Environment kill switch for run-ahead coalescing (diagnostics: rule
   the optimization in or out of a misbehaving run without a rebuild). *)
let no_coalesce_env =
  match Stdlib.Sys.getenv_opt "SUNOS_NO_COALESCE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* Open a run-ahead window for the fiber we are about to continue: how
   far may it charge before settling with the kernel?

   The budget is min(remaining quantum, time to the event queue's next
   pending event, coalesce_window).  The horizon cap is the exactness
   argument: no event fires strictly before [next_time], so nothing in
   the simulated machine can observe the fiber between the grant and its
   settle — coalescing N charge events into one is invisible.  The
   budget comparison in [Uctx.charge] is strict (acc < budget), so the
   quantum can never expire inside the window and an event lying exactly
   on the window's edge still fires before the settle event (smaller
   seq), exactly as it fired before the final charge boundary in the
   per-charge regime.

   Eligibility is conservative: any condition the per-charge regime
   would have re-examined at each boundary — pending deliverable
   signals, an armed virtual/profiling timer, profil(2) ticks, a CPU
   rlimit, a posted stop, a pending preemption, a stale CPU binding —
   forces a zero budget, reproducing the old behavior bit-for-bit.
   None of these can *appear* inside the window (only events create
   them), so checking at grant time covers the whole window. *)
let grant_budget k cpu lwp =
  let c = cost k in
  let budget =
    if
      c.Cost.coalesce
      && (not no_coalesce_env)
      && Time.(lwp.quantum_left > 0L)
      && (not lwp.prof_on)
      && lwp.vtimer_left = None
      && lwp.ptimer_left = None
      && lwp.proc.cpu_limit = None
      && (not lwp.proc.stopped)
      && (not (sig_flag lwp))
      && (not (Cpu.need_resched cpu))
      && (match lwp.bound_cpu with
         | Some b -> b = Cpu.id cpu
         | None -> true)
    then begin
      let cap = Time.min lwp.quantum_left c.Cost.coalesce_window in
      (* Grants below the floor aren't worth the ledger bookkeeping —
         under a dispatch storm the quantum remainder shrinks toward
         zero and the budget arithmetic (notably the event-queue peek
         below) becomes pure overhead on every dispatch.  Checking
         [cap] first skips the peek entirely; zeroing a post-clamp
         sliver catches a near event.  Both are behavior-identical:
         a zero budget is just coalescing off for this window, and the
         on/off equivalence is golden-tested for any budget. *)
      if Time.(cap < c.Cost.coalesce_min_window) then 0L
      else
        let b =
          match Eventq.next_time (eventq k) with
          | Some t -> Time.min cap (Time.diff t (now k))
          | None -> cap
        in
        if Time.(b < c.Cost.coalesce_min_window) then 0L else b
    end
    else 0L
  in
  Uctx.grant ~budget

let rec kick k =
  gang_place k;
  Array.iter
    (fun cpu -> if Cpu.occupant cpu = None then try_dispatch k cpu)
    k.machine.Machine.cpus

and try_dispatch k cpu =
  if Cpu.occupant cpu = None then
    match pick k cpu with
    | None -> Cpu.set_need_resched cpu false
    | Some lwp -> place k cpu lwp

and place k cpu lwp =
  Cpu.set_occupant cpu ~now:(now k) (Some lwp.lid);
  Cpu.set_need_resched cpu false;
  lwp.lstate <- Lrunning (Cpu.id cpu);
  lwp.quantum_left <- quantum_for k lwp;
  (* Chaos: a preemption storm dispatches with a sliver of a quantum, so
     the LWP is preempted almost immediately.  Shrinking quantum_left is
     all it takes — run-ahead coalescing caps its budget by quantum_left,
     so the storm composes with coalescing for free. *)
  (match lwp.cls with
  | Sc_timeshare _ | Sc_gang _ ->
      if chaos_roll k ~site:"preempt-storm" (Faultgen.profile (chaos k)).preempt_storm
      then
        lwp.quantum_left <-
          Time.max (Time.us 20)
            (Faultgen.draw_span (chaos k)
               ~max_span:(Int64.div lwp.quantum_left 8L))
  | Sc_realtime _ -> ());
  Counter.incr k.ctr_dispatches;
  trace k "dispatch" "cpu%d <- pid%d/lwp%d" (Cpu.id cpu) lwp.proc.pid lwp.lid;
  (* Going through the dispatcher costs a kernel context switch. *)
  schedule ~shard:(Cpu.id cpu + 1) k (cost k).Cost.kernel_dispatch (fun () ->
      if is_running_on lwp cpu then resume k cpu lwp)

(* Best-effort gang scheduling: the RUNNABLE members of a gang are placed
   all-or-nothing, so a barrier-released burst starts simultaneously on
   its CPUs; members that are blocked or already running are exempt
   (space sharing), which keeps gangs deadlock-free when members sleep at
   different times.  See DESIGN.md. *)
and gang_place k =
  let idle_cpus () =
    Array.to_list k.machine.Machine.cpus
    |> List.filter (fun c -> Cpu.occupant c = None)
  in
  Hashtbl.iter
    (fun _gid members ->
      let ready = List.filter (fun l -> l.lstate = Lrunnable) !members in
      let n = List.length ready in
      let idle = idle_cpus () in
      if n > 0 && n <= List.length idle then begin
        let rec go cpus lwps =
          match (cpus, lwps) with
          | cpu :: cpus', lwp :: lwps' ->
              place k cpu lwp;
              go cpus' lwps'
          | _, [] -> ()
          | [], _ :: _ -> assert false
        in
        go idle ready
      end)
    k.gangs

and resume k cpu lwp =
  if not (lwp_alive lwp) then begin
    release_cpu k cpu;
    kick k
  end
  else begin
    lwp.on_resume ();
    match lwp.pending with
    | P_start f ->
        lwp.pending <- P_dead;
        grant_budget k cpu lwp;
        step k cpu lwp (Uctx.run_fiber f)
    | P_charge (remaining, kont) ->
        if Time.(remaining > 0L) then charge_slice k cpu lwp remaining kont
        else continue_charge k cpu lwp kont
    | P_sysret (kont, ret) -> deliver_sysret k cpu lwp kont ret
    | P_syswait _ | P_dead ->
        (* nothing to run: stale dispatch *)
        release_cpu k cpu;
        kick k
  end

(* Every fiber step settles the run-ahead ledger first: the coalesced
   prefix becomes one busy event.  The prefix is strictly below the
   granted budget, which was itself capped at the remaining quantum and
   the event horizon — so the quantum cannot expire here, no
   stop/preempt condition can have arisen (those need events, and none
   fired), and the settle completion runs before any foreign event.
   The step itself is then dispatched at the settled instant, exactly
   when the per-charge regime would have reached it. *)
and step k cpu lwp (s : Uctx.step) =
  let prefix = Uctx.unsettled () in
  if Time.(prefix > 0L) then
    busy k cpu lwp prefix (fun () ->
        lwp.quantum_left <- Time.diff lwp.quantum_left prefix;
        dispatch_step k cpu lwp s)
  else dispatch_step k cpu lwp s

and dispatch_step k cpu lwp (s : Uctx.step) =
  match s with
  | Uctx.Step_done -> lwp_exit_internal k lwp
  | Uctx.Step_raised (Uctx.Process_killed, _) ->
      (* teardown path: the fiber acknowledged its death *)
      release_cpu k cpu;
      kick k
  | Uctx.Step_raised (e, bt) ->
      trace k "panic" "pid%d/lwp%d uncaught exception: %s" lwp.proc.pid
        lwp.lid (Printexc.to_string e);
      ignore bt;
      proc_exit k lwp.proc ~status:139
  | Uctx.Step_charge (span, kont) -> charge_slice k cpu lwp span kont
  | Uctx.Step_offload (span, thunk, kont) ->
      (* Launch the real work on the pool now; the simulated cost goes
         through the ordinary charge machinery.  The await lives in
         [continue_charge], i.e. at the instant the charge completes —
         however the charge is sliced by preemption, stops or
         migration, the LWP carries the task with it.  If the process
         dies first the task is simply never awaited: thunks are pure,
         a worker finishing one late writes only its own closure. *)
      lwp.offload <- Some (Parexec.submit (pool k) ~lane:(Cpu.id cpu)
                             ~time:(Time.add (now k) span) thunk);
      charge_slice k cpu lwp span kont
  | Uctx.Step_sys (req, kont) ->
      lwp.in_kernel <- true;
      lwp.pending <- P_syswait kont;
      Counter.incr k.ctr_syscalls;
      let c = cost k in
      busy k cpu lwp
        (Int64.add c.Cost.trap_entry c.Cost.syscall_fixed)
        (fun () -> k.syscall_exec lwp req)

(* Resume a charge continuation whose span is fully accounted.  If the
   charge carried offloaded real work, this is the event horizon where
   the simulation needs its effects: await it (stealing it inline if no
   worker started it) before user code runs another instruction. *)
and continue_charge k cpu lwp kont =
  (match lwp.offload with
  | Some task ->
      lwp.offload <- None;
      Parexec.await (pool k) task
  | None -> ());
  lwp.pending <- P_dead;
  grant_budget k cpu lwp;
  step k cpu lwp (Effect.Deep.continue kont (sig_flag lwp))

(* Hold the CPU for [span], accounting it to the LWP, then run [fin].
   If the LWP lost the CPU meanwhile (kill, stop at a boundary), the
   completion is dropped — whoever took the CPU away owns the next move.
   Busy intervals are this CPU's own traffic: they live in its shard. *)
and busy k cpu lwp span fin =
  schedule ~shard:(Cpu.id cpu + 1) k span (fun () ->
      if is_running_on lwp cpu then begin
        account k lwp span;
        (* other LWPs may have run during this interval: restore this
           LWP's register context (current-thread pointer) before any of
           its code continues *)
        lwp.on_resume ();
        fin ()
      end)

and charge_slice k cpu lwp span kont =
  let misplaced_now =
    match lwp.bound_cpu with Some c -> c <> Cpu.id cpu | None -> false
  in
  if misplaced_now then begin
    (* newly bound elsewhere: migrate before burning any time here *)
    lwp.pending <- P_charge (span, kont);
    lwp.lstate <- Lrunnable;
    enqueue k lwp;
    release_cpu k cpu;
    kick k
  end
  else
  let slice = Time.min span lwp.quantum_left in
  let slice = if Time.(slice <= 0L) then span else slice in
  busy k cpu lwp slice (fun () ->
      let remaining = Time.diff span slice in
      lwp.quantum_left <- Time.diff lwp.quantum_left slice;
      if lwp.proc.stopped then begin
        (* stop takes effect at the charge boundary *)
        lwp.pending <- P_charge (remaining, kont);
        lwp.lstate <- Lstopped;
        release_cpu k cpu;
        try_dispatch k cpu
      end
      else
        let quantum_expired = Time.(lwp.quantum_left <= 0L) in
        let misplaced =
          match lwp.bound_cpu with
          | Some c -> c <> Cpu.id cpu
          | None -> false
        in
        let should_preempt =
          misplaced
          || (Cpu.need_resched cpu || quantum_expired)
             && runnable_exists_for k cpu
        in
        if should_preempt then begin
          Counter.incr k.ctr_preemptions;
          if quantum_expired then ts_penalty lwp;
          trace k "preempt" "cpu%d drops pid%d/lwp%d" (Cpu.id cpu)
            lwp.proc.pid lwp.lid;
          lwp.pending <- P_charge (remaining, kont);
          lwp.lstate <- Lrunnable;
          enqueue k lwp;
          release_cpu k cpu;
          kick k
        end
        else begin
          if quantum_expired then lwp.quantum_left <- quantum_for k lwp;
          if Time.(remaining > 0L) then charge_slice k cpu lwp remaining kont
          else continue_charge k cpu lwp kont
        end)

and deliver_sysret k cpu lwp kont ret =
  busy k cpu lwp (cost k).Cost.trap_exit (fun () ->
      lwp.in_kernel <- false;
      lwp.pending <- P_dead;
      grant_budget k cpu lwp;
      step k cpu lwp (Effect.Deep.continue kont ret))

(* CPU-time accounting: drives virtual/profiling interval timers, the
   profil(2) tick counter and the CPU resource limit. *)
and account k lwp span =
  if lwp.in_kernel then lwp.stime <- Int64.add lwp.stime span
  else begin
    lwp.utime <- Int64.add lwp.utime span;
    match lwp.vtimer_left with
    | Some left ->
        let left = Time.diff left span in
        if Time.(left <= 0L) then begin
          lwp.vtimer_left <- None;
          k.hook_post_lwp lwp Signo.sigvtalrm
        end
        else lwp.vtimer_left <- Some left
    | None -> ()
  end;
  (match lwp.ptimer_left with
  | Some left ->
      let left = Time.diff left span in
      if Time.(left <= 0L) then begin
        lwp.ptimer_left <- None;
        k.hook_post_lwp lwp Signo.sigprof
      end
      else lwp.ptimer_left <- Some left
  | None -> ());
  if lwp.prof_on && not lwp.in_kernel then
    lwp.prof_ticks <-
      lwp.prof_ticks + Int64.to_int (Int64.div span (cost k).Cost.clock_tick);
  match lwp.proc.cpu_limit with
  | Some limit ->
      let total =
        List.fold_left
          (fun acc l -> Int64.add acc (Int64.add l.utime l.stime))
          (Int64.add lwp.proc.dead_utime lwp.proc.dead_stime)
          lwp.proc.lwps
      in
      if Time.(total > limit) then begin
        lwp.proc.cpu_limit <- None;
        k.hook_post_lwp lwp Signo.sigxcpu
      end
  | None -> ()

and ts_penalty lwp =
  match lwp.cls with
  | Sc_timeshare ts -> ts.ts_pri <- max 0 (ts.ts_pri - 10)
  | Sc_realtime _ | Sc_gang _ -> ()

(* ------------------------------------------------------------------ *)
(* Runnable / preemption                                               *)
(* ------------------------------------------------------------------ *)

and make_runnable k lwp =
  if lwp.proc.stopped then lwp.lstate <- Lstopped
  else begin
    lwp.lstate <- Lrunnable;
    enqueue k lwp;
    preempt_check k lwp;
    kick k
  end

and preempt_check k lwp =
  (* If every CPU is busy and some CPU runs lower-priority work, ask it
     to reschedule at its next charge boundary. *)
  let prio = global_prio lwp in
  let best : (Cpu.t * int) option ref = ref None in
  Array.iter
    (fun cpu ->
      match Cpu.occupant cpu with
      | None -> ()
      | Some lid -> (
          match find_lwp_by_lid k lwp.proc lid with
          | Some running when global_prio running < prio -> (
              let eligible =
                match lwp.bound_cpu with
                | Some c -> c = Cpu.id cpu
                | None -> true
              in
              if eligible then
                match !best with
                | Some (_, p) when p <= global_prio running -> ()
                | _ -> best := Some (cpu, global_prio running))
          | _ -> ()))
    k.machine.Machine.cpus;
  match !best with
  | Some (cpu, _) -> Cpu.set_need_resched cpu true
  | None -> ()

(* Occupants may belong to any process; search the whole table. *)
and find_lwp_by_lid k _hint lid =
  let rec in_procs = function
    | [] -> None
    | p :: rest -> (
        match List.find_opt (fun l -> l.lid = lid) p.lwps with
        | Some l -> Some l
        | None -> in_procs rest)
  in
  in_procs k.procs

(* ------------------------------------------------------------------ *)
(* Sleep and wakeup                                                    *)
(* ------------------------------------------------------------------ *)

(* Block the LWP that is currently executing a system call.  The caller
   has already registered the means of wakeup; [cancel] deregisters it.
   Detects the paper's SIGWAITING condition: every live LWP of the
   process asleep in an indefinite wait. *)
and block k lwp ~wchan ~interruptible ~indefinite ~cancel =
  let cpu = cpu_of k lwp in
  lwp.sleep <-
    Some
      {
        sl_interruptible = interruptible;
        sl_indefinite = indefinite;
        sl_cancel = cancel;
        sl_timeout = None;
      };
  lwp.wchan <- wchan;
  lwp.lstate <- Lsleeping;
  trace k "sleep" "pid%d/lwp%d on %s%s" lwp.proc.pid lwp.lid wchan
    (if indefinite then " (indefinite)" else "");
  release_cpu k cpu;
  if interruptible && sig_flag lwp then
    (* a signal became deliverable while we were running: an
       interruptible sleep must not begin — fail it with EINTR right
       away, as a real kernel checks pending signals on sleep entry *)
    interrupt_sleep k lwp;
  if lwp.proc.upcall_on_block && wchan <> "lwp_park" then
    (* Scheduler-activations mode: an application thread just lost its
       virtual processor to a kernel wait.  Give the library a context
       to keep running threads on: unpark an idle LWP if one exists,
       otherwise create a fresh activation running the library's
       registered entry.  (lwp_park itself is the library going idle,
       not an application block, so it never triggers an upcall.) *)
    upcall_block k lwp.proc
  else if indefinite then check_sigwaiting k lwp.proc;
  try_dispatch k cpu;
  kick k

and upcall_block k proc =
  Counter.incr k.ctr_sigwaiting;
  let parked =
    List.find_opt
      (fun l -> l.parked && l.lstate = Lsleeping)
      proc.lwps
  in
  match parked with
  | Some l -> (
      match l.sleep with
      | Some sl ->
          sl.sl_cancel ();
          wake k l Sysdefs.R_ok
      | None -> ())
  | None ->
      (* an LWP that is runnable (or mid-way into a park) will look at
         the run queue soon anyway — creating another activation would
         only inflate the pool *)
      let spare_exists =
        List.exists
          (fun l ->
            match l.lstate with
            | Lrunnable -> true
            | Lrunning _ -> l.parked (* unwinding from a cancelled park *)
            | Lsleeping | Lstopped | Lzombie -> false)
          proc.lwps
      in
      if not spare_exists then
        match proc.activation_entry with
        | Some entry ->
            ignore
              (spawn_lwp k proc ~entry ~cls:(Sc_timeshare { ts_pri = 29 }))
        | None -> ()

and check_sigwaiting k proc =
  (* scheduler-activations processes get a blocking upcall instead;
     posting SIGWAITING too would interrupt their indefinite waits
     (poll, accept) in a storm: the upcall unparks an idle LWP, the
     unpark re-arms the edge, the LWP re-parks, SIGWAITING fires ... *)
  if proc.upcall_on_block then ()
  else
  let live = live_lwps proc in
  let all_indefinite =
    live <> []
    && List.for_all
         (fun l ->
           match (l.lstate, l.sleep) with
           | Lsleeping, Some sl -> sl.sl_indefinite
           | _ -> false)
         live
  in
  if all_indefinite && proc.sigwaiting_armed then begin
    proc.sigwaiting_armed <- false;
    Counter.incr k.ctr_sigwaiting;
    trace k "sigwaiting" "pid%d: all %d LWPs in indefinite waits" proc.pid
      (List.length live);
    k.hook_post_proc proc Signo.sigwaiting
  end

(* Arm a wakeup-with-[ret] after [span] unless the sleep ends first. *)
and set_sleep_timeout k lwp span ret =
  match lwp.sleep with
  | None -> ()
  | Some sl ->
      let h =
        Eventq.after (eventq k) span (fun () ->
            match lwp.sleep with
            | Some sl' when sl' == sl ->
                sl.sl_cancel ();
                wake k lwp ret
            | _ -> ())
      in
      sl.sl_timeout <- Some h

and wake ?(sig_eintr = false) k lwp ret =
  match lwp.sleep with
  | None -> ()
  | Some sl ->
      (match sl.sl_timeout with
      | Some h -> Eventq.cancel h
      | None -> ());
      lwp.sleep <- None;
      lwp.wchan <- "";
      (match lwp.pending with
      | P_syswait kont -> lwp.pending <- P_sysret (kont, ret)
      | _ -> assert false);
      (* a real wakeup re-arms the SIGWAITING edge trigger; the EINTR
         that signal delivery itself causes must not, or a process whose
         SIGWAITING handler cannot make progress would be stormed.  Only
         the signal path ([interrupt_sleep]) is exempt: an EINTR that
         arrives by timeout (chaos-injected) is an ordinary wakeup, and
         skipping the re-arm for it could miss the next all-blocked edge
         entirely (the woken LWP re-blocks, nobody re-arms, no
         SIGWAITING, deadlock). *)
      (if !bug_sigwaiting_no_rearm then begin
         match ret with
         | Sysdefs.R_err e when e = Errno.EINTR -> ()
         | _ -> lwp.proc.sigwaiting_armed <- true
       end
       else if not sig_eintr then lwp.proc.sigwaiting_armed <- true);
      (* Wakeup boost keeps interactive timeshare LWPs responsive. *)
      (match lwp.cls with
      | Sc_timeshare ts -> ts.ts_pri <- min 59 (ts.ts_pri + 12)
      | Sc_realtime _ | Sc_gang _ -> ());
      if lwp.lstate = Lsleeping then make_runnable k lwp

and interrupt_sleep k lwp =
  match lwp.sleep with
  | Some sl when sl.sl_interruptible ->
      sl.sl_cancel ();
      wake ~sig_eintr:true k lwp (Sysdefs.R_err Errno.EINTR)
  | Some _ | None -> ()

(* Wake every live waiter parked on a shared-object wait channel (the
   kwake syscall wakes [count]; robust-owner death wakes everyone so all
   contenders re-examine the lock word and observe OWNERDEAD). *)
and futex_wake_all k ~seg_id ~offset =
  match Hashtbl.find_opt k.futex (seg_id, offset) with
  | None -> 0
  | Some q ->
      let woken = ref 0 in
      while not (Queue.is_empty q) do
        let w = Queue.pop q in
        if !(w.fw_alive) && w.fw_lwp.lstate = Lsleeping then begin
          w.fw_alive := false;
          wake k w.fw_lwp Sysdefs.R_ok;
          incr woken
        end
      done;
      !woken

(* Robust USYNC_PROCESS sweep: repair locks whose owner just died and
   wake their wait channels so the next acquirer sees OWNERDEAD instead
   of blocking forever on a lock nobody will release. *)
and robust_sweep k channels =
  List.iter
    (fun (seg_id, offset) ->
      let woken = futex_wake_all k ~seg_id ~offset in
      trace k "ownerdead" "seg%d+%d woke=%d" seg_id offset woken)
    channels

(* ------------------------------------------------------------------ *)
(* Syscall completion                                                  *)
(* ------------------------------------------------------------------ *)

(* Finish a syscall for an LWP that kept its CPU: charge the operation
   cost, then return to user mode (or get preempted holding the ready
   result). *)
and complete k lwp ?(op_cost = 0L) ret =
  match lwp.lstate with
  | Lrunnable | Lsleeping | Lstopped | Lzombie ->
      () (* the syscall killed / blocked the caller; nothing to deliver *)
  | Lrunning _ ->
  let cpu = cpu_of k lwp in
  busy k cpu lwp op_cost (fun () ->
      match lwp.pending with
      | P_syswait kont ->
          if lwp.proc.stopped then begin
            lwp.pending <- P_sysret (kont, ret);
            lwp.lstate <- Lstopped;
            release_cpu k cpu;
            try_dispatch k cpu
          end
          else if Cpu.need_resched cpu && runnable_exists_for k cpu then begin
            Counter.incr k.ctr_preemptions;
            lwp.pending <- P_sysret (kont, ret);
            lwp.lstate <- Lrunnable;
            enqueue k lwp;
            release_cpu k cpu;
            try_dispatch k cpu
          end
          else deliver_sysret k cpu lwp kont ret
      | P_dead | P_start _ | P_charge _ | P_sysret _ -> ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

and next_pid k =
  let pid = k.next_pid in
  k.next_pid <- k.next_pid + 1;
  pid

and make_proc k ~name ~parent =
  let proc =
    {
      pid = next_pid k;
      pname = name;
      parent;
      children = [];
      lwps = [];
      next_lid = 1;
      fdtab = Hashtbl.create 8;
      next_fd = 3;
      cwd = "/";
      uid = 0;
      gid = 0;
      handlers = Array.make (Signo.max_sig + 1) Sysdefs.Sig_default;
      proc_sig_pending = [];
      pstate = Palive;
      waitpid_waiters = [];
      rtimer = None;
      mappings = [];
      cpu_limit = None;
      dead_utime = 0L;
      dead_stime = 0L;
      minflt = 0;
      majflt = 0;
      shed_count = 0;
      stopped = false;
      exit_status = 0;
      upcall_on_block = false;
      activation_entry = None;
      sigwaiting_armed = true;
    }
  in
  (match parent with Some p -> p.children <- proc :: p.children | None -> ());
  k.procs <- proc :: k.procs;
  proc

and make_lwp k proc ~entry ~cls =
  let lid = proc.next_lid in
  proc.next_lid <- proc.next_lid + 1;
  Counter.incr k.ctr_lwp_creates;
  proc.sigwaiting_armed <- true (* new capacity: re-arm the edge *);
  let lwp =
    {
      lid;
      proc;
      lstate = Lrunnable;
      cls;
      prio_user = 0;
      bound_cpu = None;
      sigmask = Sigset.empty;
      altstack = false;
      deliverable = Queue.create ();
      lwp_sig_pending = [];
      pending = P_start entry;
      on_resume = ignore;
      wchan = "";
      sleep = None;
      park_token = false;
      parked = false;
      utime = 0L;
      stime = 0L;
      in_kernel = false;
      quantum_left = 0L;
      vtimer_left = None;
      ptimer_left = None;
      prof_on = false;
      prof_ticks = 0;
      runq_gen = 0;
      offload = None;
    }
  in
  proc.lwps <- proc.lwps @ [ lwp ];
  (match cls with
  | Sc_gang gid ->
      let members =
        match Hashtbl.find_opt k.gangs gid with
        | Some m -> m
        | None ->
            let m = ref [] in
            Hashtbl.replace k.gangs gid m;
            m
      in
      members := !members @ [ lwp ]
  | Sc_timeshare _ | Sc_realtime _ -> ());
  lwp

and spawn_process k ~name ~main =
  let proc = make_proc k ~name ~parent:None in
  let lwp = make_lwp k proc ~entry:main ~cls:(Sc_timeshare { ts_pri = 29 }) in
  trace k "spawn" "pid%d (%s) created with lwp%d" proc.pid name lwp.lid;
  make_runnable k lwp;
  proc

and spawn_lwp k proc ~entry ~cls =
  let lwp = make_lwp k proc ~entry ~cls in
  make_runnable k lwp;
  lwp

and gang_remove k lwp =
  match lwp.cls with
  | Sc_gang gid -> (
      match Hashtbl.find_opt k.gangs gid with
      | Some members -> members := List.filter (fun l -> l != lwp) !members
      | None -> ())
  | Sc_timeshare _ | Sc_realtime _ -> ()

and lwp_exit_internal k lwp =
  let cpu = try Some (cpu_of k lwp) with Invalid_argument _ -> None in
  lwp.proc.dead_utime <- Int64.add lwp.proc.dead_utime lwp.utime;
  lwp.proc.dead_stime <- Int64.add lwp.proc.dead_stime lwp.stime;
  lwp.lstate <- Lzombie;
  lwp.pending <- P_dead;
  gang_remove k lwp;
  lwp.proc.lwps <- List.filter (fun l -> l != lwp) lwp.proc.lwps;
  trace k "lwp_exit" "pid%d/lwp%d" lwp.proc.pid lwp.lid;
  (match cpu with
  | Some c -> release_cpu k c
  | None -> ());
  if live_lwps lwp.proc = [] && lwp.proc.pstate = Palive then
    proc_exit k lwp.proc ~status:lwp.proc.exit_status
  else begin
    (* The process survives this LWP: robust locks whose registering
       thread died with it (e.g. a chaos-reaped pool LWP holding a
       shard lock) must still be repaired. *)
    robust_sweep k (Robust.sweep_dead_owners lwp.proc.pid);
    (* the remaining LWPs may now all be in indefinite waits *)
    if lwp.proc.pstate = Palive then check_sigwaiting k lwp.proc;
    kick k
  end

(* Tear one LWP down (exec path and proc_exit share this). *)
and destroy_lwp k l =
  (match l.lstate with
  | Lrunning c -> release_cpu k k.machine.Machine.cpus.(c)
  | Lsleeping -> (
      (match l.sleep with
      | Some sl -> (
          sl.sl_cancel ();
          match sl.sl_timeout with
          | Some h -> Eventq.cancel h
          | None -> ())
      | None -> ());
      l.sleep <- None)
  | Lrunnable | Lstopped | Lzombie -> ());
  l.proc.dead_utime <- Int64.add l.proc.dead_utime l.utime;
  l.proc.dead_stime <- Int64.add l.proc.dead_stime l.stime;
  gang_remove k l;
  l.lstate <- Lzombie;
  l.pending <- P_dead

and close_fdobj fdobj =
  match fdobj with
  | Fd_pipe_r p -> Pipe.close_read p
  | Fd_pipe_w p -> Pipe.close_write p
  | Fd_sock ep -> Socket.close ep
  | Fd_sock_listen l -> Socket.close_listener l
  | Fd_epoll ep -> Epoll.close ep
  | Fd_file _ | Fd_net _ | Fd_tty -> ()

and proc_exit k proc ~status =
  if proc.pstate = Palive then begin
    proc.exit_status <- status;
    proc.pstate <- Pzombie;
    proc.stopped <- false;
    trace k "exit" "pid%d (%s) status=%d" proc.pid proc.pname status;
    (* Tear down every LWP.  Sleeping ones are deregistered from their
       wait structures; running ones lose their CPUs; queued ones become
       stale entries. *)
    List.iter (fun l -> destroy_lwp k l) proc.lwps;
    proc.lwps <- [];
    (* Robust USYNC_PROCESS cleanup — after the LWP teardown so the dead
       process's own futex waiters are already cancelled and only other
       processes' contenders get woken to observe OWNERDEAD. *)
    robust_sweep k (Robust.sweep_pid proc.pid);
    Hashtbl.iter (fun _ fdobj -> close_fdobj fdobj) proc.fdtab;
    Hashtbl.reset proc.fdtab;
    List.iter Sunos_hw.Shared_memory.decr_map_count proc.mappings;
    proc.mappings <- [];
    (match proc.rtimer with
    | Some h -> Eventq.cancel h
    | None -> ());
    proc.rtimer <- None;
    List.iter (fun child -> child.parent <- None) proc.children;
    (match proc.parent with
    | Some pp when pp.pstate = Palive ->
        k.hook_post_proc pp Signo.sigchld;
        (* wake the parent's waitpid sleepers; they rescan and reap *)
        let waiters = pp.waitpid_waiters in
        List.iter (fun l -> interrupt_sleep k l) waiters
    | Some _ | None -> proc.pstate <- Preaped);
    kick k
  end

let find_proc k pid = List.find_opt (fun p -> p.pid = pid) k.procs

let find_lwp proc lid = List.find_opt (fun l -> l.lid = lid) proc.lwps
