(** The epoll kernel object: interest set + edge-triggered ready queue.

    Sockets and pipes push interest entries onto the ready queue at the
    state transition itself (via their persistent watches), so a wait
    costs O(ready) instead of the legacy poll's O(connections) rescan.
    Edge-triggered with arm-time level checks; ONESHOT entries disarm on
    delivery until re-armed by ctl(MOD).  The [e_queued] flag bounds the
    ready queue by the interest size and counts coalesced edges.

    Pure mechanism (no LWPs, costs or errnos) in the style of {!Socket}
    and {!Pipe}; the syscall layer owns fd validation and blocking. *)

type entry = {
  e_fd : int;
  mutable e_want_in : bool;
  mutable e_want_out : bool;
  mutable e_oneshot : bool;
  mutable e_armed : bool;
  mutable e_queued : bool;
  mutable e_dead : bool;
  mutable e_unwatch : unit -> unit;
}

type t

val create : id:int -> t
(** [id] is the owning fd number (for /proc and traces). *)

val id : t -> int
val closed : t -> bool
val find : t -> int -> entry option

val register : t -> fd:int -> want_in:bool -> want_out:bool -> oneshot:bool -> entry
(** Insert an armed, unqueued entry; the caller attaches the object
    watches and stores their detach closure in [e_unwatch], then runs
    the arm-time readiness check ({!note_edge} on a ready level). *)

val note_edge : t -> entry -> unit
(** An edge (or arm-time level hit) on an entry: enqueue it unless
    disarmed, already queued (counted as coalesced), dead, or the epoll
    is closed.  Fires blocked waiters on a genuine enqueue. *)

val kill_entry : t -> entry -> unit
(** Detach watches, mark dead, drop from the interest set.  A dead entry
    still in the ready queue is skipped by {!pop} — the
    removal-with-pending-readiness case. *)

val pop : t -> entry option
(** Next live ready entry (dead ones are discarded in passing); clears
    its queued flag.  [None] when the queue is empty. *)

val note_delivered : t -> entry -> unit
(** Delivery accounting; disarms ONESHOT entries. *)

val add_waiter : t -> (unit -> unit) -> unit
(** One-shot waiter, fired (socket-style, oldest first) when an entry is
    enqueued or the epoll closes. *)

val close : t -> unit
(** Detach every watch, clear interest and ready, wake blocked waiters. *)

(** {1 Stats (procfs [pp_epoll], net_server debrief)} *)

val interest_count : t -> int
val ready_depth : t -> int
val edges : t -> int
val coalesced : t -> int
val wakeups : t -> int
val delivered : t -> int
