module Machine = Sunos_hw.Machine
module Counter = Sunos_sim.Stats.Counter

type t = Ktypes.kernel

let boot_on machine =
  let k = Kernel_impl.create ~machine in
  Signal_impl.install k;
  Syscall_impl.install k;
  k

let boot ?cpus ?cost ?seed ?trace_capacity ?chaos ?domains () =
  boot_on (Machine.create ?cpus ?cost ?seed ?trace_capacity ?chaos ?domains ())

let machine (k : t) = k.Ktypes.machine
let fs (k : t) = k.Ktypes.fs
let domains k = Machine.domains (machine k)
let shutdown k = Machine.shutdown (machine k)

let spawn k ~name ~main =
  let proc = Kernel_impl.spawn_process k ~name ~main in
  proc.Ktypes.pid

let run ?until ?max_events k = Machine.run ?until ?max_events (machine k)
let now k = Machine.now (machine k)
let find_proc = Kernel_impl.find_proc

let proc_alive k pid =
  match find_proc k pid with
  | Some p -> p.Ktypes.pstate = Ktypes.Palive
  | None -> false

let exit_status k pid =
  match find_proc k pid with
  | Some p -> (
      match p.Ktypes.pstate with
      | Ktypes.Pzombie | Ktypes.Preaped -> Some p.Ktypes.exit_status
      | Ktypes.Palive -> None)
  | None -> None

let tty_input k line = Sunos_hw.Devices.Tty.type_input (machine k).Machine.tty line
let trace_records k = Sunos_sim.Tracebuf.records (machine k).Machine.trace
let set_tracing k b = Sunos_sim.Tracebuf.set_enabled (machine k).Machine.trace b

let set_trace_tags k tags =
  Sunos_sim.Tracebuf.set_interest (machine k).Machine.trace tags
let syscall_count (k : t) = Counter.value k.Ktypes.ctr_syscalls
let dispatch_count (k : t) = Counter.value k.Ktypes.ctr_dispatches
let preemption_count (k : t) = Counter.value k.Ktypes.ctr_preemptions
let sigwaiting_count (k : t) = Counter.value k.Ktypes.ctr_sigwaiting
let lwp_create_count (k : t) = Counter.value k.Ktypes.ctr_lwp_creates

let bug_sigwaiting_no_rearm = Kernel_impl.bug_sigwaiting_no_rearm
let chaos k = (machine k).Machine.chaos
let chaos_label k = Sunos_sim.Faultgen.label (chaos k)
let chaos_counts k = Sunos_sim.Faultgen.counts (chaos k)
let chaos_total k = Sunos_sim.Faultgen.total (chaos k)
